// Benchmarks regenerating each of the paper's tables and figures at
// CI-friendly scales (cmd/reproduce runs the full sweeps). Each benchmark
// reports the figure's headline quantity as custom metrics in virtual time,
// alongside the usual real-time cost of simulating it.
package main

import (
	"testing"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/apps/heat2d"
	"goshmem/internal/apps/nas"
	"goshmem/internal/bench"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// BenchmarkFig1InitBreakdownStatic regenerates Figure 1: the static design's
// start_pes breakdown; reported metrics are the dominant buckets at N=128.
func BenchmarkFig1InitBreakdownStatic(b *testing.B) {
	var pts []bench.BreakdownPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.InitBreakdown(gasnet.Static, []int{128}, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].ConnectionSetup, "conn-setup-s")
	b.ReportMetric(pts[0].PMIExchange, "pmi-s")
	b.ReportMetric(pts[0].Total, "total-s")
}

// BenchmarkFig5bInitBreakdownOnDemand regenerates Figure 5(b).
func BenchmarkFig5bInitBreakdownOnDemand(b *testing.B) {
	var pts []bench.BreakdownPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.InitBreakdown(gasnet.OnDemand, []int{128}, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].ConnectionSetup, "conn-setup-s")
	b.ReportMetric(pts[0].PMIExchange, "pmi-s")
	b.ReportMetric(pts[0].Total, "total-s")
}

// BenchmarkFig5aStartup regenerates Figure 5(a) at N=256: start_pes and
// Hello World times for both designs, plus the speedups.
func BenchmarkFig5aStartup(b *testing.B) {
	var pts []bench.StartupPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Startup([]int{256}, 16, 256)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := pts[0]
	b.ReportMetric(p.InitStatic, "init-static-s")
	b.ReportMetric(p.InitOnDemand, "init-ondemand-s")
	b.ReportMetric(p.InitStatic/p.InitOnDemand, "init-speedup")
	b.ReportMetric(p.HelloStatic/p.HelloOnDemand, "hello-speedup")
}

// BenchmarkFig6PutGetLatency regenerates Figure 6(a)/(b) at 8 B and 64 KiB.
func BenchmarkFig6PutGetLatency(b *testing.B) {
	var pts []bench.LatencyPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.PutGetLatency([]int{8, 65536}, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].PutStatic, "put8-static-us")
	b.ReportMetric(pts[0].PutOD, "put8-ondemand-us")
	b.ReportMetric(pts[0].GetStatic, "get8-static-us")
	b.ReportMetric(pts[0].GetOD, "get8-ondemand-us")
}

// BenchmarkFig6Atomics regenerates Figure 6(c).
func BenchmarkFig6Atomics(b *testing.B) {
	var pts []bench.AtomicPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.AtomicLatency(200)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.OnDemand, p.Op+"-us")
	}
}

// BenchmarkFig7Collectives regenerates Figure 7(a)/(b) at 64 PEs, 256 B.
func BenchmarkFig7Collectives(b *testing.B) {
	var pts []bench.CollPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.CollectiveLatency(64, []int{256}, 5, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].CollectOD, "collect-us")
	b.ReportMetric(pts[0].ReduceOD, "reduce-us")
	b.ReportMetric(pts[0].CollectOD/pts[0].ReduceOD, "dense-sparse-ratio")
}

// BenchmarkFig7Barrier regenerates Figure 7(c) at 64 PEs.
func BenchmarkFig7Barrier(b *testing.B) {
	var pts []bench.BarrierPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.BarrierLatency([]int{64}, 10, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Static, "barrier-static-us")
	b.ReportMetric(pts[0].OnDemand, "barrier-ondemand-us")
}

// BenchmarkFig8aNAS regenerates Figure 8(a) at 16 PEs, class S.
func BenchmarkFig8aNAS(b *testing.B) {
	var pts []bench.NASPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.NASExecution(16, 8, nas.ClassA)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.ImprovementPct, p.App+"-improv-pct")
	}
}

// BenchmarkFig8bGraph500 regenerates Figure 8(b) at 16 PEs.
func BenchmarkFig8bGraph500(b *testing.B) {
	var pts []bench.G500Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Graph500Execution([]int{16}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Static, "static-s")
	b.ReportMetric(pts[0].OnDemand, "ondemand-s")
	b.ReportMetric(pts[0].DiffPct, "diff-pct")
}

// BenchmarkTable1Peers regenerates Table I at 64 PEs.
func BenchmarkTable1Peers(b *testing.B) {
	var pts []bench.PeerPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.PeersAt(64, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.AvgPeers, p.App+"-peers")
	}
}

// BenchmarkFig9Endpoints regenerates Figure 9 (sizes 16/64/256, projection
// to 1024) and reports the endpoint reduction for 2D-Heat.
func BenchmarkFig9Endpoints(b *testing.B) {
	var series map[string][]bench.PeerPoint
	var proj map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		series, proj, err = bench.ResourceUsage([]int{16, 64, 256}, 8, 1024)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, pts := range series {
		last := pts[len(pts)-1]
		b.ReportMetric(last.Endpoints, name+"-ep256")
		b.ReportMetric((1-last.Endpoints/last.StaticEP)*100, name+"-reduction-pct")
	}
	_ = proj
}

// BenchmarkAblationPiggyback compares first-communication latency with and
// without the piggybacked segment exchange (section IV-C ablation).
func BenchmarkAblationPiggyback(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Ablations(16, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Unit == "us" {
			b.ReportMetric(r.Value, metricName(r.Name)+"-us")
		}
	}
}

// metricName compresses a human-readable ablation row name into a metric
// unit token (no whitespace allowed by testing.B).
func metricName(s string) string {
	out := make([]rune, 0, 44)
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ',' || r == '-':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
		if len(out) >= 44 {
			break
		}
	}
	return string(out)
}

// BenchmarkBarrierAllMicro is a plain hot-loop microbenchmark of the
// runtime's dissemination barrier at 32 PEs (real + virtual time).
func BenchmarkBarrierAllMicro(b *testing.B) {
	var virt float64
	_, err := cluster.Run(cluster.Config{NP: 32, PPN: 8, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			c.BarrierAll()
			t0 := c.Clock().Now()
			for i := 0; i < b.N; i++ {
				c.BarrierAll()
			}
			if c.Me() == 0 {
				virt = float64(c.Clock().Now()-t0) / float64(b.N)
			}
		})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(virt/1000, "virtual-us/op")
}

// BenchmarkPutQuietMicro is a plain hot-loop microbenchmark of an 8-byte
// put+quiet between two PEs.
func BenchmarkPutQuietMicro(b *testing.B) {
	var virt float64
	_, err := cluster.Run(cluster.Config{NP: 2, PPN: 1, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
			if c.Me() == 0 {
				t0 := c.Clock().Now()
				for i := 0; i < b.N; i++ {
					c.PutMem(a, buf, 1)
					c.Quiet()
				}
				virt = float64(c.Clock().Now()-t0) / float64(b.N)
			}
			c.BarrierAll()
		})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(virt/1000, "virtual-us/op")
}

// BenchmarkHybridBFSMicro runs one small hybrid BFS per iteration.
func BenchmarkHybridBFSMicro(b *testing.B) {
	p := graph500.Params{Scale: 6, EdgeFactor: 8, Roots: 1, Seed: 5}
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(cluster.Config{NP: 4, PPN: 4, Mode: gasnet.OnDemand, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				m := mpi.New(c.Conduit())
				if r := graph500.Run(c, m, p); !r.ValidationOK {
					b.Error("validation failed")
				}
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeat2DMicro runs one small heat solve per iteration and reports
// the virtual job time.
func BenchmarkHeat2DMicro(b *testing.B) {
	var jobVT int64
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cluster.Config{NP: 8, PPN: 4, Mode: gasnet.OnDemand},
			func(c *shmem.Ctx) {
				heat2d.Run(c, heat2d.Params{NX: 32, NY: 64, MaxIters: 20})
			})
		if err != nil {
			b.Fatal(err)
		}
		jobVT = res.JobVT
	}
	b.ReportMetric(vclock.Seconds(jobVT), "job-virtual-s")
}

// BenchmarkPutBandwidth measures windowed put bandwidth (OSU osu_oshm_put_bw
// analogue) and reports MiB/s at 4 KiB and 64 KiB.
func BenchmarkPutBandwidth(b *testing.B) {
	var pts []bench.BWPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.PutBandwidth([]int{4096, 65536}, 16, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].OnDemandMBps, "bw4k-MiBps")
	b.ReportMetric(pts[1].OnDemandMBps, "bw64k-MiBps")
	b.ReportMetric(pts[0].MsgRateOnDemandK, "rate4k-kmsgs")
}
