module goshmem

go 1.22
