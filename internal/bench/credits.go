package bench

import (
	"fmt"
	"sync"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

// CreditPoint is one receive-queue depth of the credit-stall suite.
type CreditPoint struct {
	RQDepth      int     // 0 = unbounded receive queue
	BurstPutNS   float64 // virtual ns per put-with-signal inside a burst
	CreditStalls int64
	RNRNaks      int64
}

// CreditStallLatency measures the tax a finite receive budget levies on a
// signal-heavy stream. PE 0 bursts put-with-signal operations at PE 1 —
// each signal is a send that consumes one receive-queue slot on the target,
// unlike the RDMA data it announces — and fences with Quiet after every
// burst. With an unbounded receive queue the burst pipelines freely; under
// a finite depth the sender's credit gate and the RNR NAK/backoff path
// serialize it, and the per-op virtual latency together with the stall/NAK
// counters reports how hard. Depth 0 is the unbounded baseline.
func CreditStallLatency(depths []int, burst, iters int) ([]CreditPoint, error) {
	var out []CreditPoint
	for _, depth := range depths {
		var mu sync.Mutex
		var perOp float64
		total := int64(iters * burst)
		res, err := cluster.Run(cluster.Config{
			NP: 2, PPN: 1, Mode: gasnet.OnDemand, SkipLaunchCost: true,
			HeapSize: 4096, RQDepth: depth,
		}, func(c *shmem.Ctx) {
			data := c.Malloc(8)
			sig := c.Malloc(8)
			// Warm up: one signal establishes the connection so the
			// handshake is outside the timing loop.
			if c.Me() == 0 {
				c.P64Signal(data, 0, sig, 1, 1)
				c.Quiet()
			} else {
				c.WaitUntilInt64(sig, shmem.CmpGE, 1)
			}
			c.BarrierAll()
			if c.Me() == 0 {
				t0 := c.Clock().Now()
				for it := 0; it < iters; it++ {
					for b := 0; b < burst; b++ {
						c.P64Signal(data, int64(it), sig, 1, 1)
					}
					c.Quiet()
				}
				mu.Lock()
				perOp = float64(c.Clock().Now()-t0) / float64(total)
				mu.Unlock()
			} else {
				c.WaitUntilInt64(sig, shmem.CmpGE, 1+total)
			}
			c.BarrierAll()
		})
		if err != nil {
			return nil, fmt.Errorf("credit-stall suite at rq-depth %d: %w", depth, err)
		}
		ctr := res.Counters()
		out = append(out, CreditPoint{
			RQDepth:      depth,
			BurstPutNS:   perOp,
			CreditStalls: int64(ctr.CreditStalls),
			RNRNaks:      int64(ctr.RNRNaks),
		})
	}
	return out, nil
}

// CreditTable renders the credit-stall suite.
func CreditTable(pts []CreditPoint) *Table {
	t := &Table{
		Title:   "Credit-stall tax: burst put-with-signal latency vs receive-queue depth",
		Headers: []string{"rq-depth", "ns/op", "credit stalls", "rnr naks"},
	}
	for _, p := range pts {
		depth := fmt.Sprintf("%d", p.RQDepth)
		if p.RQDepth == 0 {
			depth = "unbounded"
		}
		t.Rows = append(t.Rows, []string{
			depth, f1(p.BurstPutNS), fmt.Sprintf("%d", p.CreditStalls), fmt.Sprintf("%d", p.RNRNaks),
		})
	}
	t.Notes = append(t.Notes, "signals are sends and consume receive slots; data-plane RDMA bypasses the RQ")
	return t
}
