package bench

import (
	"testing"

	"goshmem/internal/gasnet"
)

// The paper's headline shapes, asserted at small scale so regressions in
// the runtime or cost model are caught by `go test` long before anyone
// re-runs the full sweeps.

func TestShapeOnDemandInitConstant(t *testing.T) {
	pts, err := InitBreakdown(gasnet.OnDemand, []int{8, 32, 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := pts[0].Total
	for _, p := range pts {
		if diff := (p.Total - base) / base; diff > 0.02 || diff < -0.02 {
			t.Fatalf("on-demand init not constant: %.4f at N=%d vs %.4f at N=%d",
				p.Total, p.N, base, pts[0].N)
		}
		if p.ConnectionSetup > 0.001 || p.PMIExchange > 0.001 {
			t.Fatalf("on-demand init spends time in conn/PMI at N=%d: %+v", p.N, p)
		}
	}
}

func TestShapeStaticInitGrows(t *testing.T) {
	pts, err := InitBreakdown(gasnet.Static, []int{8, 32, 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Total <= pts[i-1].Total {
			t.Fatalf("static init not growing: %.4f at N=%d vs %.4f at N=%d",
				pts[i].Total, pts[i].N, pts[i-1].Total, pts[i-1].N)
		}
		if pts[i].ConnectionSetup <= pts[i-1].ConnectionSetup {
			t.Fatalf("static conn setup not growing with N")
		}
	}
	// Registration is independent of job size.
	if d := pctDiff(pts[0].MemoryReg, pts[len(pts)-1].MemoryReg); d > 1 {
		t.Fatalf("memory registration should be constant: %.1f%% drift", d)
	}
}

func TestShapePutLatencyModeParity(t *testing.T) {
	pts, err := PutGetLatency([]int{8, 65536}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if d := pctDiff(p.PutStatic, p.PutOD); d > 3 {
			t.Fatalf("put designs differ by %.1f%% at %dB (paper bound: 3%%)", d, p.Size)
		}
		if d := pctDiff(p.GetStatic, p.GetOD); d > 3 {
			t.Fatalf("get designs differ by %.1f%% at %dB", d, p.Size)
		}
	}
}

func TestShapeAtomicsModeParity(t *testing.T) {
	pts, err := AtomicLatency(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if d := pctDiff(p.Static, p.OnDemand); d > 3 {
			t.Fatalf("%s differs by %.1f%%", p.Op, d)
		}
	}
}

func TestShapeEndpointSavingsAtSmallScale(t *testing.T) {
	series, proj, err := ResourceUsage([]int{16, 64}, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range series {
		last := pts[len(pts)-1]
		reduction := 1 - last.Endpoints/last.StaticEP
		if reduction < 0.5 {
			t.Errorf("%s: only %.0f%% endpoint reduction at N=64", name, reduction*100)
		}
		if proj[name] <= 0 {
			t.Errorf("%s: non-positive projection", name)
		}
	}
}

func TestShapeBandwidthSaturates(t *testing.T) {
	pts, err := PutBandwidth([]int{512, 65536}, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].OnDemandMBps <= pts[0].OnDemandMBps {
		t.Fatalf("large-message bandwidth (%.0f) should exceed small (%.0f)",
			pts[1].OnDemandMBps, pts[0].OnDemandMBps)
	}
	// 64 KiB puts should approach the modeled 3.5 GB/s wire.
	if pts[1].OnDemandMBps < 1500 {
		t.Fatalf("64KiB bandwidth %.0f MiB/s suspiciously low", pts[1].OnDemandMBps)
	}
	if d := pctDiff(pts[1].StaticMBps, pts[1].OnDemandMBps); d > 3 {
		t.Fatalf("bandwidth differs %.1f%% between designs", d)
	}
}

func TestShapeGraph500Parity(t *testing.T) {
	pts, err := Graph500Execution([]int{16}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].DiffPct > 3 {
		t.Fatalf("hybrid graph500 differs %.1f%% at 16 PEs", pts[0].DiffPct)
	}
}

func TestShapeCreditStallTaxGrows(t *testing.T) {
	pts, err := CreditStallLatency([]int{0, 4, 1}, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	free, tight, tighter := pts[0], pts[1], pts[2]
	if free.CreditStalls != 0 || free.RNRNaks != 0 {
		t.Fatalf("unbounded RQ reported backpressure: %+v", free)
	}
	if tight.CreditStalls == 0 && tight.RNRNaks == 0 {
		t.Fatalf("depth-4 RQ reported no backpressure: %+v", tight)
	}
	if tight.BurstPutNS <= free.BurstPutNS {
		t.Fatalf("depth-4 burst latency %.1f not above unbounded %.1f",
			tight.BurstPutNS, free.BurstPutNS)
	}
	if tighter.BurstPutNS <= tight.BurstPutNS {
		t.Fatalf("depth-1 burst latency %.1f not above depth-4 %.1f",
			tighter.BurstPutNS, tight.BurstPutNS)
	}
}
