package bench

import (
	"fmt"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
)

// PhasePoint is one job size of the observability-plane startup breakdown:
// per-phase average and per-phase worst-PE virtual seconds, in the order the
// runtime emits the phases.
type PhasePoint struct {
	N      int
	Names  []string
	AvgSec map[string]float64
	MaxSec map[string]float64
}

// PhaseBreakdown runs empty jobs with the observability plane enabled and
// returns the startup-phase breakdown recorded by obs.InitPhase. Unlike
// InitBreakdown (which reads the legacy InitBreakdown struct), this view is
// produced by the unified plane and has the finer-grained phase set
// (conn-setup and rkey-exchange are separate, qp-setup is split from other).
func PhaseBreakdown(mode gasnet.Mode, sizes []int, ppn int) ([]PhasePoint, error) {
	var out []PhasePoint
	for _, n := range sizes {
		res, err := cluster.Run(cluster.Config{
			NP: n, PPN: ppn, Mode: mode,
			HeapSize: ActualHeap, DeclaredHeapSize: DeclaredHeap,
			Obs: obs.Config{Metrics: true},
		}, func(c *shmem.Ctx) {})
		if err != nil {
			return nil, err
		}
		names, sums, maxes := obs.PhaseTotals(res.Obs.StartupPhases())
		p := PhasePoint{
			N:      n,
			Names:  names,
			AvgSec: make(map[string]float64, len(names)),
			MaxSec: make(map[string]float64, len(names)),
		}
		for _, name := range names {
			p.AvgSec[name] = float64(sums[name]) / float64(n) / 1e9
			p.MaxSec[name] = float64(maxes[name]) / 1e9
		}
		out = append(out, p)
	}
	return out, nil
}

// PhaseTable renders the plane-derived startup breakdown, one row per job
// size and one column per phase (average across PEs; the worst single PE is
// shown for the total).
func PhaseTable(title string, pts []PhasePoint) *Table {
	if len(pts) == 0 {
		return &Table{Title: title}
	}
	names := pts[0].Names
	t := &Table{Title: title, Headers: []string{"nprocs"}}
	for _, n := range names {
		t.Headers = append(t.Headers, n+"(s)")
	}
	t.Headers = append(t.Headers, "total(s)", "worst-pe(s)")
	for _, p := range pts {
		row := []string{fmt.Sprintf("%d", p.N)}
		var total, worst float64
		for _, n := range names {
			row = append(row, f3(p.AvgSec[n]))
			total += p.AvgSec[n]
			worst += p.MaxSec[n]
		}
		row = append(row, f3(total), f3(worst))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"phases recorded by the obs plane; they tile start_pes exactly, so total == average init time")
	return t
}
