package bench

import (
	"fmt"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/apps/heat2d"
	"goshmem/internal/apps/nas"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// NASPoint is one bar pair of Figure 8(a).
type NASPoint struct {
	App              string
	Static, OnDemand float64 // job execution time, seconds
	ImprovementPct   float64
}

// appRunner launches one of the paper's applications.
type appRunner func(c *shmem.Ctx)

// nasApps returns the four OpenSHMEM NAS kernels for a class.
func nasApps(class nas.Class) map[string]appRunner {
	return map[string]appRunner{
		"BT": func(c *shmem.Ctx) { nas.BT(c, class) },
		"EP": func(c *shmem.Ctx) { nas.EP(c, nas.EPParamsFor(class)) },
		"MG": func(c *shmem.Ctx) { nas.MG(c, nas.MGParamsFor(class)) },
		"SP": func(c *shmem.Ctx) { nas.SP(c, class) },
	}
}

// NASExecution reproduces Figure 8(a): total execution time (as reported by
// the job launcher — launch + init + kernel + finalize) of the OpenSHMEM
// NAS kernels with static and on-demand connections.
func NASExecution(np, ppn int, class nas.Class) ([]NASPoint, error) {
	apps := nasApps(class)
	order := []string{"BT", "EP", "MG", "SP"}
	var out []NASPoint
	for _, name := range order {
		app := apps[name]
		st, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.Static,
			HeapSize: 4 << 20, DeclaredHeapSize: DeclaredHeap}, app)
		if err != nil {
			return nil, fmt.Errorf("%s static: %w", name, err)
		}
		od, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.OnDemand,
			HeapSize: 4 << 20, DeclaredHeapSize: DeclaredHeap}, app)
		if err != nil {
			return nil, fmt.Errorf("%s on-demand: %w", name, err)
		}
		s := vclock.Seconds(st.JobVT)
		o := vclock.Seconds(od.JobVT)
		out = append(out, NASPoint{App: name, Static: s, OnDemand: o,
			ImprovementPct: (s - o) / s * 100})
	}
	return out, nil
}

// NASTable renders Figure 8(a).
func NASTable(np int, class nas.Class, pts []NASPoint) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 8(a): NAS (OpenSHMEM) execution time, class %c, %d PEs", class, np),
		Headers: []string{"app", "static(s)", "on-demand(s)", "improvement %"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.App, f2(p.Static), f2(p.OnDemand), f1(p.ImprovementPct)})
	}
	t.Notes = append(t.Notes, "paper reports improvements of 18%-35% at 256 processes, class B")
	return t
}

// G500Point is one x of Figure 8(b).
type G500Point struct {
	N                int
	Static, OnDemand float64
	DiffPct          float64
}

// Graph500Execution reproduces Figure 8(b): hybrid MPI+OpenSHMEM Graph500
// total execution time (including generation and validation) at several
// process counts, both connection modes.
func Graph500Execution(sizes []int, ppn int) ([]G500Point, error) {
	p := graph500.DefaultParams()
	run := func(np int, mode gasnet.Mode) (float64, error) {
		res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: mode,
			HeapSize: 1 << 20, DeclaredHeapSize: DeclaredHeap},
			func(c *shmem.Ctx) {
				m := mpi.New(c.Conduit())
				r := graph500.Run(c, m, p)
				if !r.ValidationOK {
					panic("graph500: BFS validation failed")
				}
			})
		if err != nil {
			return 0, err
		}
		return vclock.Seconds(res.JobVT), nil
	}
	var out []G500Point
	for _, n := range sizes {
		s, err := run(n, gasnet.Static)
		if err != nil {
			return nil, err
		}
		o, err := run(n, gasnet.OnDemand)
		if err != nil {
			return nil, err
		}
		out = append(out, G500Point{N: n, Static: s, OnDemand: o, DiffPct: pctDiff(s, o)})
	}
	return out, nil
}

// Graph500Table renders Figure 8(b).
func Graph500Table(pts []G500Point) *Table {
	t := &Table{
		Title:   "Figure 8(b): hybrid MPI+OpenSHMEM Graph500 execution time (2^10 vertices, 2^14 edges)",
		Headers: []string{"nprocs", "static(s)", "on-demand(s)", "diff %"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p.N), f2(p.Static), f2(p.OnDemand), f2(p.DiffPct)})
	}
	t.Notes = append(t.Notes, "paper reports <2% difference between the two schemes")
	return t
}

// tinyApps returns cheap variants of the Table I / Figure 9 applications so
// resource-usage sweeps to 1024+ PEs stay tractable; the communication
// topology (which determines peers and endpoints) is identical to the full
// kernels'.
func tinyApps() (order []string, apps map[string]appRunner) {
	order = []string{"2DHeat", "BT", "EP", "MG", "SP"}
	apps = map[string]appRunner{
		"2DHeat": func(c *shmem.Ctx) {
			heat2d.Run(c, heat2d.Params{NX: 8, NY: 4 * c.NPEs(), MaxIters: 4, CheckEvery: 2, Tol: 0, NoChecksum: true})
		},
		"BT": func(c *shmem.Ctx) {
			nas.BT(c, nas.ClassS)
		},
		"EP": func(c *shmem.Ctx) {
			nas.EP(c, nas.EPParams{LogPairs: 10, ComputeScale: 1})
		},
		"MG": func(c *shmem.Ctx) {
			nas.MG(c, nas.MGParams{LocalN: 4, Levels: 2, Cycles: 1, ComputeScale: 1})
		},
		"SP": func(c *shmem.Ctx) {
			nas.SP(c, nas.ClassS)
		},
	}
	return order, apps
}

// PeerPoint is one Table I / Figure 9 cell.
type PeerPoint struct {
	App       string
	N         int
	AvgPeers  float64
	Endpoints float64 // RC endpoints created per PE (on-demand)
	StaticEP  float64 // endpoints per PE under the static design (= N)
}

// PeersTable reproduces Table I: average communicating peers per process for
// each application at the given size.
func PeersAt(np, ppn int) ([]PeerPoint, error) {
	order, apps := tinyApps()
	var out []PeerPoint
	for _, name := range order {
		if (name == "BT" || name == "SP") && !isSquare(np) {
			continue
		}
		res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.OnDemand,
			HeapSize: 8 << 20}, apps[name])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, PeerPoint{App: name, N: np, AvgPeers: res.AvgPeers(),
			Endpoints: res.AvgEndpoints(), StaticEP: float64(np)})
	}
	return out, nil
}

// PeersTableRender renders Table I.
func PeersTableRender(np int, pts []PeerPoint) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Table I: average communicating peers per process (%d PEs)", np),
		Headers: []string{"application", "avg peers"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.App, f1(p.AvgPeers)})
	}
	t.Notes = append(t.Notes,
		"paper (256 procs): BT 11.9, EP 4.5, MG 9.5, SP 11.8, 2D-Heat 3.0")
	return t
}

// ResourceUsage reproduces Figure 9: average RC endpoints created per
// process for each application across job sizes, plus a linear-regression
// projection to projN (the paper projects 4,096 from 64/256/1,024).
func ResourceUsage(sizes []int, ppn, projN int) (map[string][]PeerPoint, map[string]float64, error) {
	order, apps := tinyApps()
	series := map[string][]PeerPoint{}
	for _, np := range sizes {
		for _, name := range order {
			if (name == "BT" || name == "SP") && !isSquare(np) {
				continue
			}
			res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.OnDemand,
				HeapSize: 8 << 20}, apps[name])
			if err != nil {
				return nil, nil, fmt.Errorf("%s at %d: %w", name, np, err)
			}
			series[name] = append(series[name], PeerPoint{App: name, N: np,
				AvgPeers: res.AvgPeers(), Endpoints: res.AvgEndpoints(), StaticEP: float64(np)})
		}
	}
	proj := map[string]float64{}
	for name, pts := range series {
		proj[name] = linearProject(pts, projN)
	}
	return series, proj, nil
}

// linearProject fits endpoints = a + b*n by least squares and evaluates at n.
func linearProject(pts []PeerPoint, n int) float64 {
	if len(pts) == 0 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := float64(p.N), p.Endpoints
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	k := float64(len(pts))
	den := k*sxx - sx*sx
	if den == 0 {
		return pts[len(pts)-1].Endpoints
	}
	b := (k*sxy - sx*sy) / den
	a := (sy - b*sx) / k
	return a + b*float64(n)
}

// ResourceTable renders Figure 9.
func ResourceTable(series map[string][]PeerPoint, proj map[string]float64, sizes []int, projN int) *Table {
	order := []string{"2DHeat", "BT", "EP", "MG", "SP"}
	headers := []string{"application"}
	for _, n := range sizes {
		headers = append(headers, fmt.Sprintf("EP/proc @%d", n))
	}
	headers = append(headers, fmt.Sprintf("projected @%d", projN), "reduction vs static")
	t := &Table{Title: "Figure 9: average endpoints created per process (on-demand)", Headers: headers}
	for _, name := range order {
		pts := series[name]
		if len(pts) == 0 {
			continue
		}
		row := []string{name}
		for _, n := range sizes {
			val := "-"
			for _, p := range pts {
				if p.N == n {
					val = f1(p.Endpoints)
				}
			}
			row = append(row, val)
		}
		row = append(row, f1(proj[name]))
		last := pts[len(pts)-1]
		row = append(row, f1((1-last.Endpoints/last.StaticEP)*100)+"%")
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"static design creates N endpoints per process; reduction column compares at the largest measured size",
		"paper reports >90% reduction at 1,024 processes")
	return t
}

func isSquare(n int) bool {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return true
		}
	}
	return false
}

// SummaryTable derives Figure 2's qualitative radar (closer to 1.0 = better,
// normalized to the worse design per axis) from measured results.
func SummaryTable(startup []StartupPoint, nasPts []NASPoint, res map[string][]PeerPoint) *Table {
	t := &Table{
		Title:   "Figure 2: qualitative summary (proposed design relative to current; lower = better share of current design's cost)",
		Headers: []string{"aspect", "current", "proposed (fraction of current)"},
	}
	// Startup: last size with both measurements.
	for i := len(startup) - 1; i >= 0; i-- {
		if startup[i].InitStatic > 0 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("startup time @%d", startup[i].N), "1.00",
				f2(startup[i].InitOnDemand / startup[i].InitStatic)})
			break
		}
	}
	if len(nasPts) > 0 {
		avg := 0.0
		for _, p := range nasPts {
			avg += p.OnDemand / p.Static
		}
		avg /= float64(len(nasPts))
		t.Rows = append(t.Rows, []string{"execution time (NAS avg)", "1.00", f2(avg)})
	}
	// Resource usage at the largest measured size.
	var frac float64
	var cnt int
	for _, pts := range res {
		if len(pts) > 0 {
			p := pts[len(pts)-1]
			frac += p.Endpoints / p.StaticEP
			cnt++
		}
	}
	if cnt > 0 {
		t.Rows = append(t.Rows, []string{"resource usage (endpoints)", "1.00", f2(frac / float64(cnt))})
	}
	return t
}
