package bench

import (
	"sync"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// AblationRow is one design-choice isolation result.
type AblationRow struct {
	Name   string
	Value  float64
	Unit   string
	Detail string
}

// Ablations isolates the contribution of each design element the paper
// combines (sections IV-C, IV-D, IV-E) plus the HCA endpoint-cache
// sensitivity that motivates reducing live connections (section I, item 3).
func Ablations(np, ppn int) ([]AblationRow, error) {
	var rows []AblationRow

	// --- IV-D: non-blocking vs blocking PMI exchange (on-demand mode) ---
	initOf := func(blocking, globalBars bool, segEx shmem.SegExchange) (float64, float64, error) {
		res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.OnDemand,
			BlockingPMI: blocking, GlobalInitBarriers: globalBars, SegEx: segEx,
			HeapSize: ActualHeap, DeclaredHeapSize: DeclaredHeap},
			func(c *shmem.Ctx) {})
		if err != nil {
			return 0, 0, err
		}
		return vclock.Seconds(res.InitAvg), res.AvgEndpoints(), nil
	}
	nb, nbEP, err := initOf(false, false, shmem.SegAuto)
	if err != nil {
		return nil, err
	}
	bl, _, err := initOf(true, false, shmem.SegAuto)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{"init, non-blocking PMI (proposed)", nb, "s", "PMIX_Iallgather launched, completion deferred"},
		AblationRow{"init, blocking PMI (ablation IV-D)", bl, "s", "Put-Fence-Get on the critical path"})

	// --- IV-E: intra-node vs global barriers during init ---
	gb, gbEP, err := initOf(false, true, shmem.SegAuto)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{"init, global init barriers (ablation IV-E)", gb, "s",
			"global barrier during start_pes"},
		AblationRow{"endpoints/PE after init, intra-node barriers (proposed)", nbEP, "QPs",
			"no connections exist when start_pes returns"},
		AblationRow{"endpoints/PE after init, global barriers (ablation IV-E)", gbEP, "QPs",
			"the barrier alone forced O(log P) connections"})

	// --- IV-C: piggybacked vs explicit segment exchange: latency of the
	// first put to a fresh peer ---
	firstPut := func(segEx shmem.SegExchange) (float64, error) {
		var lat float64
		var mu sync.Mutex
		_, err := cluster.Run(cluster.Config{NP: 2, PPN: 1, Mode: gasnet.OnDemand,
			SegEx: segEx, SkipLaunchCost: true, HeapSize: 4096},
			func(c *shmem.Ctx) {
				a := c.Malloc(64)
				if c.Me() == 0 {
					t0 := c.Clock().Now()
					c.PutMem(a, []byte{1, 2, 3, 4}, 1)
					c.Quiet()
					mu.Lock()
					lat = float64(c.Clock().Now()-t0) / 1000
					mu.Unlock()
				}
				c.BarrierAll()
			})
		return lat, err
	}
	pg, err := firstPut(shmem.SegPiggyback)
	if err != nil {
		return nil, err
	}
	am, err := firstPut(shmem.SegAMOnDemand)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{"first-communication latency, piggybacked segments (proposed)", pg, "us",
			"segment triplets ride the connect handshake"},
		AblationRow{"first-communication latency, explicit segment AM (ablation IV-C)", am, "us",
			"extra request/reply round-trip after connect"})

	// --- HCA endpoint cache sensitivity (section I item 3) ---
	cacheLat := func(cacheQPs int) (float64, error) {
		model := vclock.Default()
		model.HCACacheQPs = cacheQPs
		var lat float64
		var mu sync.Mutex
		_, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.Static,
			Model: model, SkipLaunchCost: true, HeapSize: 4096},
			func(c *shmem.Ctx) {
				a := c.Malloc(64)
				// Cross-node target: intra-node loopback bypasses the wire
				// (and therefore the endpoint cache).
				peer := (c.Me() + ppn) % c.NPEs()
				const iters = 50
				c.BarrierAll()
				t0 := c.Clock().Now()
				for i := 0; i < iters; i++ {
					c.PutMem(a, []byte{9}, peer)
					c.Quiet()
				}
				if c.Me() == 0 {
					mu.Lock()
					lat = float64(c.Clock().Now()-t0) / iters / 1000
					mu.Unlock()
				}
				c.BarrierAll()
			})
		return lat, err
	}
	big, err := cacheLat(1 << 20) // cache never oversubscribed
	if err != nil {
		return nil, err
	}
	small, err := cacheLat(8) // fully connected group thrashes the cache
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{"put latency, static, large HCA endpoint cache", big, "us", "all QP contexts cached"},
		AblationRow{"put latency, static, tiny HCA endpoint cache", small, "us",
			"fully connected group thrashes the context cache"})
	return rows, nil
}

// AblationTable renders the ablations.
func AblationTable(rows []AblationRow) *Table {
	t := &Table{
		Title:   "Ablations: isolating each design element",
		Headers: []string{"configuration", "value", "unit", "detail"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f3(r.Value), r.Unit, r.Detail})
	}
	return t
}
