package bench

import (
	"fmt"
	"io"
	"sort"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// The footprint suite is the engine's scaling trajectory: bytes-per-PE and
// goroutines-per-PE versus job size in both connection modes, measured by
// the footprint census at the init-done boundary (the point Fig. 5(a)'s
// memory curve is defined at). ROADMAP item 1 — the sharded event engine —
// will be judged against exactly these numbers, so every PR commits them to
// BENCH_<date>.json and `bench -check` warns when they regress.

// FootprintPoint is one (np, mode) sample of the engine scaling sweep.
type FootprintPoint struct {
	N    int    `json:"np"`
	Mode string `json:"mode"`

	// BytesPerPE is the measured job-owned heap growth (init-done census
	// heap minus baseline) divided by np; ModeledBytesPerPE is the census
	// attribution total for the same boundary. The two agreeing (Reconciled)
	// is what makes the first number trustworthy.
	BytesPerPE        float64 `json:"bytes_per_pe"`
	ModeledBytesPerPE float64 `json:"modeled_bytes_per_pe"`
	GoroutinesPerPE   float64 `json:"goroutines_per_pe"`
	Reconciled        bool    `json:"reconciled"`

	// StartupS is the average start_pes time (virtual seconds) of the same
	// run, so the memory/startup trade-off stays one record.
	StartupS float64 `json:"startup_s"`

	// SubsystemBytesPerPE attributes BytesPerPE: modeled on-heap bytes per
	// subsystem divided by np, at the init-done boundary.
	SubsystemBytesPerPE map[string]float64 `json:"subsystem_bytes_per_pe"`

	// WallNS is the real cost of producing this point.
	WallNS int64 `json:"wall_ns"`
}

// FootprintSweep measures the engine footprint across job sizes in one
// connection mode. Like Startup, it allocates ActualHeap per PE while
// modeling DeclaredHeap for registration cost — and it subtracts the
// symmetric-heap backing (np × ActualHeap, a measurement artifact of the
// shrunken heaps) from BytesPerPE so the reported curve is the engine's own
// per-PE cost: connection state, queue pairs, endpoint directories,
// telemetry. Static points above maxStatic are skipped (same rationale as
// Startup: the O(np²) connection mesh at full scale is the pressure under
// study, not a number this harness needs minutes to reproduce).
func FootprintSweep(mode gasnet.Mode, sizes []int, ppn, maxStatic int) ([]FootprintPoint, error) {
	var out []FootprintPoint
	for _, n := range sizes {
		if mode == gasnet.Static && maxStatic > 0 && n > maxStatic {
			continue
		}
		res, err := cluster.Run(cluster.Config{
			NP: n, PPN: ppn, Mode: mode,
			HeapSize: ActualHeap, DeclaredHeapSize: DeclaredHeap,
			Obs: obs.Config{Footprint: true},
		}, func(c *shmem.Ctx) {})
		if err != nil {
			return nil, err
		}
		p, err := footprintPoint(res, n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func footprintPoint(res *cluster.Result, n int) (FootprintPoint, error) {
	fp := res.Footprint
	if fp == nil || len(fp.Snapshots) == 0 {
		return FootprintPoint{}, fmt.Errorf("footprint: census missing from run at np=%d", n)
	}
	var base, init *obs.CensusSnapshot
	for i := range fp.Snapshots {
		switch fp.Snapshots[i].Label {
		case "baseline":
			base = &fp.Snapshots[i]
		case "init-done":
			init = &fp.Snapshots[i]
		}
	}
	if base == nil || init == nil {
		return FootprintPoint{}, fmt.Errorf("footprint: baseline/init-done snapshots missing at np=%d", n)
	}
	heapArtifact := int64(n) * ActualHeap // shrunken symmetric heaps (see doc)
	p := FootprintPoint{
		N:                   n,
		Mode:                fmt.Sprint(res.Cfg.Mode),
		BytesPerPE:          float64(init.HeapBytes-base.HeapBytes-heapArtifact) / float64(n),
		ModeledBytesPerPE:   float64(init.ModeledHeapBytes()-heapArtifact) / float64(n),
		GoroutinesPerPE:     float64(init.Goroutines) / float64(n),
		Reconciled:          fp.Reconciled,
		StartupS:            vclock.Seconds(res.InitAvg),
		SubsystemBytesPerPE: map[string]float64{},
		WallNS:              res.Wall.Nanoseconds(),
	}
	for sub, b := range init.SubsystemHeapBytes() {
		if sub == "ib" {
			b -= heapArtifact
		}
		p.SubsystemBytesPerPE[sub] = float64(b) / float64(n)
	}
	return p, nil
}

// FootprintTable renders the sweep as the Fig. 5(a)-shaped memory curve:
// static per-PE bytes grow linearly with np (the O(np²) job-wide mesh) while
// on-demand stays flat — the asymmetry the paper's design exists to buy.
func FootprintTable(static, onDemand []FootprintPoint) *Table {
	byN := map[int]*[2]FootprintPoint{}
	for _, p := range static {
		e := byN[p.N]
		if e == nil {
			e = &[2]FootprintPoint{}
			byN[p.N] = e
		}
		e[0] = p
	}
	for _, p := range onDemand {
		e := byN[p.N]
		if e == nil {
			e = &[2]FootprintPoint{}
			byN[p.N] = e
		}
		e[1] = p
	}
	var ns []int
	for n := range byN {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	t := &Table{
		Title: "Engine footprint vs job size (census at init-done; heap-artifact bytes excluded)",
		Headers: []string{"nprocs", "static B/PE", "ondemand B/PE", "ratio",
			"static gor/PE", "ondemand gor/PE", "static init(s)", "ondemand init(s)"},
		Notes: []string{
			"static bytes/PE grow with np (O(np^2) connection mesh job-wide); on-demand stays near-flat — the Fig. 5(a) memory story",
			"every point census-reconciled against runtime.ReadMemStats (drift within tolerance)",
		},
	}
	for _, n := range ns {
		e := byN[n]
		st, od := "-", "-"
		ratio, sg, og, si, oi := "-", "-", "-", "-", "-"
		if e[0].N != 0 {
			st = f0(e[0].BytesPerPE)
			sg = f1(e[0].GoroutinesPerPE)
			si = f3(e[0].StartupS)
		}
		if e[1].N != 0 {
			od = f0(e[1].BytesPerPE)
			og = f1(e[1].GoroutinesPerPE)
			oi = f3(e[1].StartupS)
		}
		if e[0].N != 0 && e[1].N != 0 && e[1].BytesPerPE > 0 {
			ratio = f1(e[0].BytesPerPE / e[1].BytesPerPE)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), st, od, ratio, sg, og, si, oi,
		})
	}
	return t
}

// WriteFootprintCSV renders sweep points as stable CSV for the nightly
// artifact: one row per (np, mode), sorted by (mode, np).
func WriteFootprintCSV(w io.Writer, pts []FootprintPoint) error {
	sorted := append([]FootprintPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Mode != sorted[j].Mode {
			return sorted[i].Mode < sorted[j].Mode
		}
		return sorted[i].N < sorted[j].N
	})
	if _, err := fmt.Fprintln(w, "mode,np,bytes_per_pe,modeled_bytes_per_pe,goroutines_per_pe,startup_s,reconciled,wall_ns"); err != nil {
		return err
	}
	for _, p := range sorted {
		if _, err := fmt.Fprintf(w, "%s,%d,%.0f,%.0f,%.2f,%.6f,%v,%d\n",
			p.Mode, p.N, p.BytesPerPE, p.ModeledBytesPerPE, p.GoroutinesPerPE,
			p.StartupS, p.Reconciled, p.WallNS); err != nil {
			return err
		}
	}
	return nil
}

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
