package bench

import (
	"fmt"
	"sync"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

// LatencyPoint is one message size of Figure 6(a)/(b) (microseconds).
type LatencyPoint struct {
	Size             int
	PutStatic, PutOD float64
	GetStatic, GetOD float64
}

// PutGetLatency reproduces Figure 6(a)/(b): OSU-style shmem_put and
// shmem_get latency between two PEs on two nodes, for both connection
// modes. Following the paper's methodology, the on-demand numbers include
// connection establishment inside the (amortized) timing loop, while static
// connections pre-exist.
func PutGetLatency(sizes []int, iters int) ([]LatencyPoint, error) {
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	measure := func(mode gasnet.Mode) (put, get map[int]float64, err error) {
		put = map[int]float64{}
		get = map[int]float64{}
		var mu sync.Mutex
		_, err = cluster.Run(cluster.Config{
			NP: 2, PPN: 1, Mode: mode, SkipLaunchCost: true,
			HeapSize: 2 * maxSize,
		}, func(c *shmem.Ctx) {
			buf := c.Malloc(maxSize)
			src := make([]byte, maxSize)
			dst := make([]byte, maxSize)
			for _, size := range sizes {
				if c.Me() == 0 {
					t0 := c.Clock().Now()
					for i := 0; i < iters; i++ {
						c.PutMem(buf, src[:size], 1)
						c.Quiet()
					}
					mu.Lock()
					put[size] = float64(c.Clock().Now()-t0) / float64(iters)
					mu.Unlock()
					t0 = c.Clock().Now()
					for i := 0; i < iters; i++ {
						c.GetMem(dst[:size], buf, 1)
					}
					mu.Lock()
					get[size] = float64(c.Clock().Now()-t0) / float64(iters)
					mu.Unlock()
				}
				c.BarrierAll()
			}
		})
		return put, get, err
	}
	sPut, sGet, err := measure(gasnet.Static)
	if err != nil {
		return nil, err
	}
	oPut, oGet, err := measure(gasnet.OnDemand)
	if err != nil {
		return nil, err
	}
	var out []LatencyPoint
	for _, s := range sizes {
		out = append(out, LatencyPoint{
			Size:      s,
			PutStatic: sPut[s] / 1000, PutOD: oPut[s] / 1000,
			GetStatic: sGet[s] / 1000, GetOD: oGet[s] / 1000,
		})
	}
	return out, nil
}

// PutGetTable renders Figure 6(a)/(b).
func PutGetTable(pts []LatencyPoint) *Table {
	t := &Table{
		Title:   "Figure 6(a)/(b): shmem_get / shmem_put latency (us), static vs on-demand",
		Headers: []string{"size(B)", "get static", "get on-demand", "put static", "put on-demand", "max diff %"},
	}
	for _, p := range pts {
		dg := pctDiff(p.GetStatic, p.GetOD)
		dp := pctDiff(p.PutStatic, p.PutOD)
		if dp > dg {
			dg = dp
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Size), f2(p.GetStatic), f2(p.GetOD),
			f2(p.PutStatic), f2(p.PutOD), f2(dg),
		})
	}
	t.Notes = append(t.Notes, "paper reports <3% difference between the two approaches at every size")
	return t
}

func pctDiff(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	d := (b - a) / a * 100
	if d < 0 {
		d = -d
	}
	return d
}

// AtomicPoint is one operation of Figure 6(c) (microseconds).
type AtomicPoint struct {
	Op               string
	Static, OnDemand float64
}

// AtomicLatency reproduces Figure 6(c): latency of fadd, finc, add, inc,
// cswap and swap between two PEs, both modes.
func AtomicLatency(iters int) ([]AtomicPoint, error) {
	ops := []string{"fadd", "finc", "add", "inc", "cswap", "swap"}
	measure := func(mode gasnet.Mode) (map[string]float64, error) {
		res := map[string]float64{}
		var mu sync.Mutex
		_, err := cluster.Run(cluster.Config{
			NP: 2, PPN: 1, Mode: mode, SkipLaunchCost: true, HeapSize: 4096,
		}, func(c *shmem.Ctx) {
			v := c.Malloc(8)
			run := func(op string) {
				t0 := c.Clock().Now()
				for i := 0; i < iters; i++ {
					switch op {
					case "fadd":
						c.FetchAddInt64(v, 1, 1)
					case "finc":
						c.FetchIncInt64(v, 1)
					case "add":
						c.AddInt64(v, 1, 1)
					case "inc":
						c.IncInt64(v, 1)
					case "cswap":
						c.CompareSwapInt64(v, 0, 1, 1)
					case "swap":
						c.SwapInt64(v, 7, 1)
					}
				}
				mu.Lock()
				res[op] = float64(c.Clock().Now()-t0) / float64(iters) / 1000
				mu.Unlock()
			}
			for _, op := range ops {
				if c.Me() == 0 {
					run(op)
				}
				c.BarrierAll()
			}
		})
		return res, err
	}
	s, err := measure(gasnet.Static)
	if err != nil {
		return nil, err
	}
	o, err := measure(gasnet.OnDemand)
	if err != nil {
		return nil, err
	}
	var out []AtomicPoint
	for _, op := range ops {
		out = append(out, AtomicPoint{Op: op, Static: s[op], OnDemand: o[op]})
	}
	return out, nil
}

// AtomicTable renders Figure 6(c).
func AtomicTable(pts []AtomicPoint) *Table {
	t := &Table{
		Title:   "Figure 6(c): shmem atomics latency (us), static vs on-demand",
		Headers: []string{"op", "static", "on-demand", "diff %"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.Op, f2(p.Static), f2(p.OnDemand), f2(pctDiff(p.Static, p.OnDemand))})
	}
	return t
}

// CollPoint is one size of Figure 7(a)/(b) (microseconds).
type CollPoint struct {
	Size                     int
	CollectStatic, CollectOD float64
	ReduceStatic, ReduceOD   float64
}

// CollectiveLatency reproduces Figure 7(a)/(b): shmem_collect (dense) and
// shmem_reduce (sparse) latency versus per-PE message size at np PEs, for
// both connection modes. On-demand includes amortized connection setup, as
// in the paper.
func CollectiveLatency(np int, sizes []int, iters, ppn int) ([]CollPoint, error) {
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	measure := func(mode gasnet.Mode) (map[int]float64, map[int]float64, error) {
		coll := map[int]float64{}
		red := map[int]float64{}
		var mu sync.Mutex
		_, err := cluster.Run(cluster.Config{
			NP: np, PPN: ppn, Mode: mode, SkipLaunchCost: true, HeapSize: 4096,
		}, func(c *shmem.Ctx) {
			contrib := make([]byte, maxSize)
			fcontrib := make([]float64, (maxSize+7)/8)
			// Warm up: establish the collectives' connectivity and let the
			// handshake-completion spread settle (the paper amortizes this
			// over 1,000 timed iterations; see EXPERIMENTS.md).
			c.FCollectBytes(contrib[:1])
			c.ReduceFloat64(shmem.OpSum, fcontrib[:1])
			c.BarrierAll()
			c.BarrierAll()
			for _, size := range sizes {
				c.BarrierAll()
				t0 := c.Clock().Now()
				for i := 0; i < iters; i++ {
					c.FCollectBytes(contrib[:size])
				}
				if c.Me() == 0 {
					mu.Lock()
					coll[size] = float64(c.Clock().Now()-t0) / float64(iters)
					mu.Unlock()
				}
				c.BarrierAll()
				n64 := (size + 7) / 8
				if n64 == 0 {
					n64 = 1
				}
				t0 = c.Clock().Now()
				for i := 0; i < iters; i++ {
					c.ReduceFloat64(shmem.OpSum, fcontrib[:n64])
				}
				if c.Me() == 0 {
					mu.Lock()
					red[size] = float64(c.Clock().Now()-t0) / float64(iters)
					mu.Unlock()
				}
			}
		})
		return coll, red, err
	}
	sc, sr, err := measure(gasnet.Static)
	if err != nil {
		return nil, err
	}
	oc, or, err := measure(gasnet.OnDemand)
	if err != nil {
		return nil, err
	}
	var out []CollPoint
	for _, s := range sizes {
		out = append(out, CollPoint{Size: s,
			CollectStatic: sc[s] / 1000, CollectOD: oc[s] / 1000,
			ReduceStatic: sr[s] / 1000, ReduceOD: or[s] / 1000})
	}
	return out, nil
}

// CollectiveTable renders Figure 7(a)/(b).
func CollectiveTable(np int, pts []CollPoint) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 7(a)/(b): shmem_collect and shmem_reduce latency (us) with %d PEs", np),
		Headers: []string{"size(B)", "collect static", "collect on-demand", "reduce static", "reduce on-demand"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Size), f2(p.CollectStatic), f2(p.CollectOD),
			f2(p.ReduceStatic), f2(p.ReduceOD),
		})
	}
	return t
}

// BarrierPoint is one x of Figure 7(c) (microseconds).
type BarrierPoint struct {
	N                int
	Static, OnDemand float64
}

// BarrierLatency reproduces Figure 7(c): shmem_barrier_all latency versus
// PE count, both modes.
func BarrierLatency(sizes []int, iters, ppn int) ([]BarrierPoint, error) {
	measure := func(mode gasnet.Mode, np int) (float64, error) {
		var out float64
		var mu sync.Mutex
		_, err := cluster.Run(cluster.Config{
			NP: np, PPN: ppn, Mode: mode, SkipLaunchCost: true, HeapSize: 4096,
		}, func(c *shmem.Ctx) {
			// Two warmups: the first establishes the dissemination pattern's
			// connections, the second absorbs the handshake-completion
			// spread (amortized over the paper's 1,000-iteration loop).
			c.BarrierAll()
			c.BarrierAll()
			t0 := c.Clock().Now()
			for i := 0; i < iters; i++ {
				c.BarrierAll()
			}
			if c.Me() == 0 {
				mu.Lock()
				out = float64(c.Clock().Now()-t0) / float64(iters) / 1000
				mu.Unlock()
			}
		})
		return out, err
	}
	var out []BarrierPoint
	for _, n := range sizes {
		s, err := measure(gasnet.Static, n)
		if err != nil {
			return nil, err
		}
		o, err := measure(gasnet.OnDemand, n)
		if err != nil {
			return nil, err
		}
		out = append(out, BarrierPoint{N: n, Static: s, OnDemand: o})
	}
	return out, nil
}

// BarrierTable renders Figure 7(c).
func BarrierTable(pts []BarrierPoint) *Table {
	t := &Table{
		Title:   "Figure 7(c): shmem_barrier_all latency (us) vs PE count",
		Headers: []string{"nprocs", "static", "on-demand", "diff %"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N), f2(p.Static), f2(p.OnDemand), f2(pctDiff(p.Static, p.OnDemand)),
		})
	}
	return t
}

// BWPoint is one size of the put-bandwidth microbenchmark (OSU
// osu_oshm_put_bw analogue; not a paper figure but part of the suite the
// paper draws its microbenchmarks from).
type BWPoint struct {
	Size             int
	StaticMBps       float64
	OnDemandMBps     float64
	MsgRateStaticK   float64 // thousand messages/s at this size
	MsgRateOnDemandK float64
}

// PutBandwidth measures streaming put bandwidth between two PEs on two
// nodes: a window of puts followed by one quiet, repeated.
func PutBandwidth(sizes []int, window, iters int) ([]BWPoint, error) {
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	measure := func(mode gasnet.Mode) (map[int]float64, error) {
		bw := map[int]float64{}
		var mu sync.Mutex
		_, err := cluster.Run(cluster.Config{
			NP: 2, PPN: 1, Mode: mode, SkipLaunchCost: true,
			HeapSize: maxSize * window,
		}, func(c *shmem.Ctx) {
			buf := c.Malloc(maxSize * window)
			src := make([]byte, maxSize)
			for _, size := range sizes {
				c.BarrierAll()
				if c.Me() == 0 {
					t0 := c.Clock().Now()
					for it := 0; it < iters; it++ {
						for w := 0; w < window; w++ {
							c.PutMem(buf+shmem.SymAddr(w*size), src[:size], 1)
						}
						c.Quiet()
					}
					dt := float64(c.Clock().Now() - t0) // virtual ns
					bytes := float64(size) * float64(window) * float64(iters)
					mu.Lock()
					bw[size] = bytes / dt * 1e9 / (1 << 20) // MiB/s
					mu.Unlock()
				}
				c.BarrierAll()
			}
		})
		return bw, err
	}
	s, err := measure(gasnet.Static)
	if err != nil {
		return nil, err
	}
	o, err := measure(gasnet.OnDemand)
	if err != nil {
		return nil, err
	}
	var out []BWPoint
	for _, size := range sizes {
		out = append(out, BWPoint{
			Size: size, StaticMBps: s[size], OnDemandMBps: o[size],
			MsgRateStaticK:   s[size] * (1 << 20) / float64(size) / 1e3,
			MsgRateOnDemandK: o[size] * (1 << 20) / float64(size) / 1e3,
		})
	}
	return out, nil
}

// BandwidthTable renders the put-bandwidth results.
func BandwidthTable(pts []BWPoint) *Table {
	t := &Table{
		Title:   "Put bandwidth (windowed puts + quiet), static vs on-demand",
		Headers: []string{"size(B)", "static MiB/s", "on-demand MiB/s", "msg-rate static k/s", "msg-rate on-demand k/s"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Size), f1(p.StaticMBps), f1(p.OnDemandMBps),
			f1(p.MsgRateStaticK), f1(p.MsgRateOnDemandK),
		})
	}
	return t
}
