// Package bench contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (section V). Each driver runs
// simulated jobs through internal/cluster and returns typed rows; Table
// renders them as aligned text for cmd/reproduce and EXPERIMENTS.md.
//
// Mapping (see DESIGN.md for the full index):
//
//	Fig. 1   InitBreakdown(Static)      Fig. 5b  InitBreakdown(OnDemand)
//	Fig. 5a  Startup                    Fig. 6   PutGetLatency, AtomicLatency
//	Fig. 7   CollectiveLatency, BarrierLatency
//	Fig. 8a  NASExecution               Fig. 8b  Graph500Execution
//	Fig. 9   ResourceUsage              Table I  PeersTable
//	Fig. 2   Summary (derived)          §IV ablations: Ablations
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// us formats a virtual-nanosecond duration in microseconds.
func us(ns float64) string { return fmt.Sprintf("%.2f", ns/1000) }
