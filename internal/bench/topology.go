package bench

import (
	"fmt"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
)

// TopologyPoint is one application's row of the flow-telemetry view of
// Table I: the communicating-peer count derived from the recorded flow
// matrix, side by side with the conduit's own peer-set count, plus the
// degree distribution and the QP waste attribution.
type TopologyPoint struct {
	App string
	N   int

	// AvgPeersConduit is Table I's metric as the conduit reports it
	// (distinct peers in the peer set); AvgPeersMatrix is the same metric
	// recomputed from the per-pair flow matrix. The two must agree.
	AvgPeersConduit float64
	AvgPeersMatrix  float64

	Degree obs.DegreeDist

	QPsEstablished int
	QPsUsed        int
	QPsWasted      int
}

// TopologyAt reruns the Table I applications with flow recording enabled
// and reduces each run's communication matrix. Apps whose layout needs a
// square PE grid are skipped at non-square sizes (as in PeersAt).
func TopologyAt(np, ppn int) ([]TopologyPoint, error) {
	order, apps := tinyApps()
	var out []TopologyPoint
	for _, name := range order {
		if (name == "BT" || name == "SP") && !isSquare(np) {
			continue
		}
		res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: gasnet.OnDemand,
			HeapSize: 8 << 20, Obs: obs.Config{Flows: true}}, apps[name])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		top := cluster.BuildTopology(res)
		if top == nil {
			return nil, fmt.Errorf("%s: no flow matrix recorded", name)
		}
		pt := TopologyPoint{
			App:             name,
			N:               np,
			AvgPeersConduit: res.AvgPeers(),
			AvgPeersMatrix:  top.Degree.Avg,
			Degree:          top.Degree,
			QPsEstablished:  top.QPsEstablished,
			QPsUsed:         top.QPsUsed,
			QPsWasted:       top.QPsWasted,
		}
		out = append(out, pt)
	}
	return out, nil
}

// TopologyTable renders the flow-telemetry reproduction of Table I.
func TopologyTable(np int, pts []TopologyPoint) *Table {
	t := &Table{
		Title: fmt.Sprintf("Table I (flow matrix): communicating peers per process from recorded traffic (%d PEs)", np),
		Headers: []string{"application", "peers (conduit)", "peers (matrix)",
			"min", "p50", "p95", "max", "QPs est", "used", "wasted"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			p.App, f1(p.AvgPeersConduit), f1(p.AvgPeersMatrix),
			fmt.Sprintf("%d", p.Degree.Min), fmt.Sprintf("%d", p.Degree.P50),
			fmt.Sprintf("%d", p.Degree.P95), fmt.Sprintf("%d", p.Degree.Max),
			fmt.Sprintf("%d", p.QPsEstablished), fmt.Sprintf("%d", p.QPsUsed),
			fmt.Sprintf("%d", p.QPsWasted),
		})
	}
	t.Notes = append(t.Notes,
		"peers (matrix) is recomputed from per-pair send counters and must match the conduit's peer sets",
		"QPs est counts completed RC handshakes (reconnects included); used counts pair-slots that carried data")
	return t
}
