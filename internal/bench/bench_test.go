package bench

import (
	"bytes"
	"strings"
	"testing"

	"goshmem/internal/gasnet"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"## Demo", "a    bbbb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestInitBreakdownTiny(t *testing.T) {
	pts, err := InitBreakdown(gasnet.OnDemand, []int{8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Total <= 0 {
		t.Fatal("zero total")
	}
	sum := p.ConnectionSetup + p.PMIExchange + p.MemoryReg + p.SharedMemSetup + p.Other
	if diff := sum - p.Total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("buckets %.9f != total %.9f", sum, p.Total)
	}
	if p.ConnectionSetup > p.Total/10 {
		t.Fatal("on-demand connection setup should be negligible")
	}
}

func TestStartupTiny(t *testing.T) {
	pts, err := Startup([]int{16}, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.InitStatic <= p.InitOnDemand {
		t.Fatalf("static init %.3f should exceed on-demand %.3f", p.InitStatic, p.InitOnDemand)
	}
	if p.HelloStatic <= p.HelloOnDemand {
		t.Fatalf("static hello %.3f should exceed on-demand %.3f", p.HelloStatic, p.HelloOnDemand)
	}
}

func TestPutGetLatencyTiny(t *testing.T) {
	pts, err := PutGetLatency([]int{8, 4096}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.PutStatic <= 0 || p.PutOD <= 0 || p.GetStatic <= 0 || p.GetOD <= 0 {
			t.Fatalf("non-positive latency: %+v", p)
		}
		// Get (round trip) must cost more than put (one way + ack wait is
		// hidden until quiet; measured put includes quiet so compare loosely).
		if p.GetOD < p.PutOD/4 {
			t.Fatalf("get suspiciously cheap: %+v", p)
		}
	}
	if pts[1].PutOD <= pts[0].PutOD {
		t.Fatal("4KB put should cost more than 8B put")
	}
	// The paper's claim: both designs within a few percent once amortized.
	if d := pctDiff(pts[0].PutStatic, pts[0].PutOD); d > 10 {
		t.Fatalf("put designs differ by %.1f%%", d)
	}
}

func TestLinearProject(t *testing.T) {
	pts := []PeerPoint{{N: 1, Endpoints: 3}, {N: 2, Endpoints: 5}, {N: 3, Endpoints: 7}}
	if got := linearProject(pts, 10); got < 20.9 || got > 21.1 {
		t.Fatalf("projection = %v, want 21", got)
	}
	if got := linearProject(nil, 10); got != 0 {
		t.Fatalf("empty projection = %v", got)
	}
}

func TestIsSquare(t *testing.T) {
	for n, want := range map[int]bool{1: true, 4: true, 16: true, 64: true, 2: false, 15: false} {
		if isSquare(n) != want {
			t.Fatalf("isSquare(%d) != %v", n, want)
		}
	}
}
