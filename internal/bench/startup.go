package bench

import (
	"fmt"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// DeclaredHeap is the symmetric-heap size modeled for registration cost in
// the startup experiments (a realistic 1 GiB per PE), while only ActualHeap
// bytes are really allocated so 8K-PE sweeps fit in memory.
const (
	DeclaredHeap = 1 << 30
	ActualHeap   = 64 << 10
)

// BreakdownPoint is one bar of Figure 1 / Figure 5(b) (seconds).
type BreakdownPoint struct {
	N               int
	ConnectionSetup float64
	PMIExchange     float64
	MemoryReg       float64
	SharedMemSetup  float64
	Other           float64
	Total           float64
}

// InitBreakdown reproduces Figure 1 (mode == Static) and Figure 5(b)
// (mode == OnDemand): the per-phase breakdown of start_pes averaged over
// PEs, versus job size, at the paper's 16 processes per node.
func InitBreakdown(mode gasnet.Mode, sizes []int, ppn int) ([]BreakdownPoint, error) {
	var out []BreakdownPoint
	for _, n := range sizes {
		res, err := cluster.Run(cluster.Config{
			NP: n, PPN: ppn, Mode: mode,
			HeapSize: ActualHeap, DeclaredHeapSize: DeclaredHeap,
		}, func(c *shmem.Ctx) {})
		if err != nil {
			return nil, err
		}
		var b shmem.InitBreakdown
		for _, p := range res.PEs {
			b.ConnectionSetup += p.Breakdown.ConnectionSetup
			b.PMIExchange += p.Breakdown.PMIExchange
			b.MemoryReg += p.Breakdown.MemoryReg
			b.SharedMemSetup += p.Breakdown.SharedMemSetup
			b.Other += p.Breakdown.Other
			b.Total += p.Breakdown.Total
		}
		d := float64(n) * 1e9
		out = append(out, BreakdownPoint{
			N:               n,
			ConnectionSetup: float64(b.ConnectionSetup) / d,
			PMIExchange:     float64(b.PMIExchange) / d,
			MemoryReg:       float64(b.MemoryReg) / d,
			SharedMemSetup:  float64(b.SharedMemSetup) / d,
			Other:           float64(b.Other) / d,
			Total:           float64(b.Total) / d,
		})
	}
	return out, nil
}

// BreakdownTable renders breakdown points.
func BreakdownTable(title string, pts []BreakdownPoint) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"nprocs", "conn-setup(s)", "pmi(s)", "memreg(s)", "shmem(s)", "other(s)", "total(s)"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N), f3(p.ConnectionSetup), f3(p.PMIExchange),
			f3(p.MemoryReg), f3(p.SharedMemSetup), f3(p.Other), f3(p.Total),
		})
	}
	return t
}

// StartupPoint is one x of Figure 5(a) (seconds; zero when not measured).
type StartupPoint struct {
	N             int
	InitStatic    float64 // start_pes, current design
	InitOnDemand  float64 // start_pes, proposed design
	HelloStatic   float64 // job wall time of Hello World, current design
	HelloOnDemand float64
}

// Startup reproduces Figure 5(a): average start_pes time and Hello World
// job time for both designs across job sizes. Static points above
// maxStatic are skipped (the fully connected model at 8K PEs needs ~67M
// queue pairs — the memory pressure the paper criticizes; the shape is
// established by the smaller points).
func Startup(sizes []int, ppn, maxStatic int) ([]StartupPoint, error) {
	var out []StartupPoint
	for _, n := range sizes {
		p := StartupPoint{N: n}
		od, err := cluster.Run(cluster.Config{
			NP: n, PPN: ppn, Mode: gasnet.OnDemand,
			HeapSize: ActualHeap, DeclaredHeapSize: DeclaredHeap,
		}, func(c *shmem.Ctx) {})
		if err != nil {
			return nil, err
		}
		p.InitOnDemand = vclock.Seconds(od.InitAvg)
		p.HelloOnDemand = vclock.Seconds(od.JobVT)
		if maxStatic <= 0 || n <= maxStatic {
			st, err := cluster.Run(cluster.Config{
				NP: n, PPN: ppn, Mode: gasnet.Static,
				HeapSize: ActualHeap, DeclaredHeapSize: DeclaredHeap,
			}, func(c *shmem.Ctx) {})
			if err != nil {
				return nil, err
			}
			p.InitStatic = vclock.Seconds(st.InitAvg)
			p.HelloStatic = vclock.Seconds(st.JobVT)
		}
		out = append(out, p)
	}
	return out, nil
}

// StartupTable renders Figure 5(a).
func StartupTable(pts []StartupPoint) *Table {
	t := &Table{
		Title: "Figure 5(a): start_pes and Hello World, current (static) vs proposed (on-demand)",
		Headers: []string{"nprocs", "start_pes static(s)", "start_pes on-demand(s)",
			"hello static(s)", "hello on-demand(s)", "init speedup", "hello speedup"},
	}
	for _, p := range pts {
		is, hs := "-", "-"
		spI, spH := "-", "-"
		if p.InitStatic > 0 {
			is, hs = f3(p.InitStatic), f3(p.HelloStatic)
			spI = f1(p.InitStatic / p.InitOnDemand)
			spH = f1(p.HelloStatic / p.HelloOnDemand)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N), is, f3(p.InitOnDemand), hs, f3(p.HelloOnDemand), spI, spH,
		})
	}
	return t
}
