// Package pmi simulates the Process Management Interface: the out-of-band
// (TCP, through the job launcher) channel HPC middlewares use to bootstrap
// in-band communication. It provides the PMI2 core operations — a global
// key-value store with Put/Get and a synchronizing Fence — plus the
// extensions the paper builds on:
//
//   - PMIX_Iallgather: a non-blocking allgather that fuses the common
//     Put-Fence-Get sequence into one symmetric exchange (Chakraborty et al.,
//     EuroMPI'14 / CCGrid'15);
//   - PMIX_Wait (AllgatherOp.Wait here): completion of outstanding
//     non-blocking operations;
//   - PMIX_Ring: exchanges values with the left/right neighbours only.
//
// The server is an in-process object; costs are charged in virtual time from
// the shared CostModel, with the cost of blocking operations paid on the
// calling PE's critical path while non-blocking operations complete in
// background virtual time and can be overlapped with other work.
package pmi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// Server is the process manager's PMI endpoint for one job.
type Server struct {
	n     int
	model *vclock.CostModel

	mu    sync.Mutex
	kvs   map[string]string
	bytes int // total bytes Put since the last fence epoch; sizes fence cost

	// unfenced tracks keys published since the last completed Fence — the
	// epoch an injected server crash discards. lost remembers keys that were
	// discarded that way, so Lookup can tell "never published" from "lost to
	// fault" (PMI2 offers no such distinction; the simulator does, for
	// debuggability of injected-fault runs).
	unfenced map[string]struct{}
	lost     map[string]struct{}

	fence *vclock.VBarrier

	ag     map[int]*AllgatherOp // allgather round -> op
	ring   map[int]*ringOp
	closed bool

	faults *FaultInjector

	abort *AbortNotice
}

// AbortNotice describes a job abort raised through the PMI control channel —
// the out-of-band path a launcher uses to tear down a job whose in-band
// fabric can no longer be trusted (a peer died, a watchdog fired).
type AbortNotice struct {
	Origin int    // rank that raised the abort (-1: the launcher/watchdog)
	Dead   int    // rank confirmed dead, -1 when the abort is not a PE failure
	Code   int    // suggested exit code for surviving PEs
	Reason string
}

// NewServer creates a PMI server for a job of n processes.
func NewServer(n int, model *vclock.CostModel) *Server {
	if model == nil {
		model = vclock.Default()
	}
	return &Server{
		n:        n,
		model:    model,
		kvs:      make(map[string]string),
		unfenced: make(map[string]struct{}),
		lost:     make(map[string]struct{}),
		fence:    vclock.NewVBarrier(n),
		ag:       make(map[int]*AllgatherOp),
		ring:     make(map[int]*ringOp),
	}
}

// NProcs returns the job size.
func (s *Server) NProcs() int { return s.n }

// SetFaults installs the control-plane fault injector. Call before the job
// starts; a nil injector (the default) keeps the server perfectly reliable.
// The abort channel (RaiseAbort/Aborted) is deliberately NOT fault-injected:
// the launcher's kill path is assumed reliable even when its KVS service
// degrades, which keeps abort semantics simple and bounded.
func (s *Server) SetFaults(fi *FaultInjector) { s.faults = fi }

// Faults returns the installed control-plane fault injector (nil if none).
func (s *Server) Faults() *FaultInjector { return s.faults }

// Client returns the PMI client handle for the given rank. clk is the PE's
// virtual clock; all blocking PMI costs are charged to it.
func (s *Server) Client(rank int, clk *vclock.Clock) *Client {
	if rank < 0 || rank >= s.n {
		panic(fmt.Sprintf("pmi: rank %d out of range [0,%d)", rank, s.n))
	}
	return &Client{s: s, rank: rank, clk: clk, retry: RetryConfig{}.withDefaults()}
}

// Client is one process's connection to the PMI server.
type Client struct {
	s       *Server
	rank    int
	clk     *vclock.Clock
	obs     *obs.PE
	agSeq   int
	ringSeq int

	retry    RetryConfig
	retries  atomic.Int64 // transient-failure retries performed
	timeouts atomic.Int64 // ops that failed permanently (budget exhausted)
}

// SetObs binds the PE's observability recorder; PMI operations then emit
// pmi-layer spans and feed the pmi.* latency histograms.
func (c *Client) SetObs(rec *obs.PE) { c.obs = rec }

// Rank returns the client's process rank.
func (c *Client) Rank() int { return c.rank }

// Put publishes a key-value pair. Visibility to other processes is only
// guaranteed after a Fence (PMI2 semantics). Under an injected fault plane
// the op is retried with virtual backoff; a non-nil return means the control
// plane is permanently unreachable (the error wraps ErrTimeout).
func (c *Client) Put(key, value string) error {
	c.clk.Advance(c.s.model.PMIPut)
	if err := c.withRetry("put", key); err != nil {
		return err
	}
	c.s.mu.Lock()
	c.s.kvs[key] = value
	c.s.bytes += len(key) + len(value)
	c.s.unfenced[key] = struct{}{}
	delete(c.s.lost, key) // re-publishing resurrects a crash-lost key
	c.s.mu.Unlock()
	return nil
}

// Get retrieves a value from the global KVS. It reports only presence; use
// Lookup when the caller needs to distinguish why a key is missing.
func (c *Client) Get(key string) (string, bool) {
	v, err := c.Lookup(key)
	return v, err == nil
}

// Lookup retrieves a value from the global KVS, returning a typed error on
// a miss: ErrNeverPublished for a key no process ever Put, ErrLostToFault
// for one that was published but discarded (un-fenced) by an injected
// server crash, or an *OpError (wrapping ErrTimeout) when the server itself
// is unreachable.
func (c *Client) Lookup(key string) (string, error) {
	c.clk.Advance(c.s.model.PMIGet)
	if err := c.withRetry("get", key); err != nil {
		return "", err
	}
	c.s.mu.Lock()
	v, ok := c.s.kvs[key]
	_, wasLost := c.s.lost[key]
	c.s.mu.Unlock()
	switch {
	case ok:
		return v, nil
	case wasLost:
		return "", fmt.Errorf("%w: %q", ErrLostToFault, key)
	default:
		return "", fmt.Errorf("%w: %q", ErrNeverPublished, key)
	}
}

// Fence is the blocking synchronizing collective: it blocks until every
// process in the job has called it, and all Puts before the Fence are
// visible to all Gets after it. Its virtual cost models the process
// manager's tree-based all-to-all KVS distribution and grows with both the
// job size and the amount of data published this epoch — the scalability
// problem the paper's Figure 1 attributes to "PMI Exchange".
//
// A non-nil return means the fence could not complete: the server is
// permanently unreachable (error wraps ErrTimeout) or the job was aborted
// while blocked in the barrier (error wraps ErrAborted).
func (c *Client) Fence() error {
	start := c.clk.Now()
	if err := c.withRetry("fence", ""); err != nil {
		return err
	}
	c.s.mu.Lock()
	perProc := 0
	if c.s.n > 0 {
		perProc = c.s.bytes / c.s.n
	}
	c.s.mu.Unlock()
	cost := c.s.model.FenceCost(c.s.n, perProc)
	c.s.fence.Wait(c.clk, cost)
	c.s.mu.Lock()
	aborted := c.s.abort != nil
	if !aborted {
		c.s.bytes = 0
		// Everything published this epoch is now durable: an injected
		// server crash can no longer discard it.
		for k := range c.s.unfenced {
			delete(c.s.unfenced, k)
		}
	}
	c.s.mu.Unlock()
	if aborted {
		return fmt.Errorf("%w: fence released by abort", ErrAborted)
	}
	end := c.clk.Now()
	c.obs.Span(start, end, obs.LayerPMI, "fence", -1, 0)
	c.obs.Observe("pmi.fence_ns", end-start)
	return nil
}

// RaiseAbort records a job abort and releases every blocked PMI operation:
// the fence barrier and all outstanding allgather/ring waiters return
// immediately. The first notice wins; later ones are dropped.
func (s *Server) RaiseAbort(n AbortNotice) {
	s.mu.Lock()
	if s.abort != nil {
		s.mu.Unlock()
		return
	}
	s.abort = &n
	ags := make([]*AllgatherOp, 0, len(s.ag))
	for _, op := range s.ag {
		ags = append(ags, op)
	}
	rings := make([]*ringOp, 0, len(s.ring))
	for _, op := range s.ring {
		rings = append(rings, op)
	}
	s.mu.Unlock()
	s.fence.Abort()
	for _, op := range ags {
		op.abort()
	}
	for _, op := range rings {
		op.abort()
	}
}

// Aborted returns the job-abort notice, if one has been raised.
func (s *Server) Aborted() (AbortNotice, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abort == nil {
		return AbortNotice{}, false
	}
	return *s.abort, true
}

// RaiseAbort raises a job abort from this client's rank (PMI2_Abort).
func (c *Client) RaiseAbort(n AbortNotice) { c.s.RaiseAbort(n) }

// Aborted returns the job-abort notice, if one has been raised.
func (c *Client) Aborted() (AbortNotice, bool) { return c.s.Aborted() }

// KeyFor builds the conventional per-rank KVS key.
func KeyFor(prefix string, rank int) string { return fmt.Sprintf("%s-%d", prefix, rank) }
