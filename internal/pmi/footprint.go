package pmi

import (
	"unsafe"

	"goshmem/internal/obs"
)

// Footprint models the PMI server's retained memory for the engine census
// (obs.FootprintReporter). One server exists per job. The interesting row is
// the allgather state: a completed PMIX_Iallgather round retains its gathered
// values for the job's lifetime, and every conduit's endpoint directory is a
// reference to that one shared slice — the np string headers and their
// encoded-Dest backing are allocated exactly once, here, which is why the
// gasnet reporter does NOT charge directory contents per PE (doing so
// over-modeled the job by np× the directory size before this reporter
// existed; the census drift check caught it).
//
// All quantities are object counts × struct sizes plus exact lengths (len,
// never cap), keeping modeled numbers byte-stable across identical runs.
func (s *Server) Footprint() []obs.FootprintItem {
	kvs := obs.FootprintItem{Subsystem: "pmi", Category: "kvs"}
	ag := obs.FootprintItem{Subsystem: "pmi", Category: "allgather"}

	s.mu.Lock()
	for k, v := range s.kvs {
		kvs.Objects++
		kvs.Bytes += 2*int64(unsafe.Sizeof("")) + int64(len(k)) + int64(len(v)) + mapEntryOverhead
	}
	kvs.Bytes += int64(len(s.unfenced)+len(s.lost)) * (int64(unsafe.Sizeof("")) + mapEntryOverhead)
	for _, op := range s.ag {
		ag.Objects++
		ag.Bytes += int64(unsafe.Sizeof(AllgatherOp{})) + mapEntryOverhead
		op.mu.Lock()
		ag.Bytes += int64(len(op.vals)) * int64(unsafe.Sizeof(""))
		for _, v := range op.vals {
			ag.Bytes += int64(len(v))
		}
		op.mu.Unlock()
	}
	for _, op := range s.ring {
		ag.Objects++
		ag.Bytes += int64(unsafe.Sizeof(ringOp{})) + mapEntryOverhead
		op.mu.Lock()
		ag.Bytes += int64(len(op.vals)) * int64(unsafe.Sizeof(""))
		for _, v := range op.vals {
			ag.Bytes += int64(len(v))
		}
		op.mu.Unlock()
	}
	s.mu.Unlock()

	return []obs.FootprintItem{kvs, ag}
}

// mapEntryOverhead mirrors obs.mapEntryOverhead: the estimated per-entry
// cost of a Go map beyond key and value.
const mapEntryOverhead = 48
