package pmi

import (
	"errors"
	"fmt"

	"goshmem/internal/obs"
)

// Typed control-plane errors. All permanent failures returned by client ops
// wrap one of these sentinels, so callers can errors.Is their way to a
// decision (retry further up, fall back, or abort) without string matching.
var (
	// ErrUnavailable: the server refused the op (crash window, unavailability
	// window, or a deterministically denied extension). Transient in
	// principle — the retry loop keeps trying until its budget runs out.
	ErrUnavailable = errors.New("pmi: server unavailable")

	// ErrTimeout: the retry budget for one op is exhausted; the control
	// plane is considered permanently unreachable for this op.
	ErrTimeout = errors.New("pmi: operation timed out (retries exhausted)")

	// ErrNeverPublished: Get/Lookup found no value and the key was never
	// Put — a protocol-level bug in the caller, not a fault-plane artifact.
	ErrNeverPublished = errors.New("pmi: key never published")

	// ErrLostToFault: Get/Lookup found no value for a key that WAS published
	// but had not been fenced when the injected server crash discarded the
	// un-fenced epoch. Distinguishing this from ErrNeverPublished is what
	// lets a trace reader tell "startup bug" from "injected fault".
	ErrLostToFault = errors.New("pmi: key lost to injected server crash (published but un-fenced)")

	// ErrExchangeLost: an in-flight IAllgather cannot complete (server
	// crashed mid-exchange or a participant's launch exhausted its retries).
	// The caller is expected to take the Put-Fence-Get fallback ladder.
	ErrExchangeLost = errors.New("pmi: allgather exchange lost")

	// ErrAborted: the job-abort notice fired while the op was blocked.
	ErrAborted = errors.New("pmi: job aborted")

	// errDropped is internal to the retry loop: the request (or its reply)
	// was lost and the client saw nothing but silence until its op timeout.
	errDropped = errors.New("pmi: request dropped")
)

// OpError is the permanent failure of one PMI client operation after the
// retry budget ran out. It wraps the sentinel describing the final cause.
type OpError struct {
	Op       string // "put", "get", "fence", "iallgather"
	Key      string // KVS key, when the op has one
	Rank     int
	Attempts int
	Cause    error // wraps ErrTimeout; Last holds the final per-try fault
	Last     error
}

func (e *OpError) Error() string {
	k := ""
	if e.Key != "" {
		k = fmt.Sprintf(" key %q", e.Key)
	}
	return fmt.Sprintf("pmi: %s%s failed on rank %d after %d attempts: %v (last: %v)",
		e.Op, k, e.Rank, e.Attempts, e.Cause, e.Last)
}

func (e *OpError) Unwrap() error { return e.Cause }

// RetryConfig bounds the client-side retry/timeout/backoff loop that guards
// every PMI op, analogous to gasnet.RetransConfig for the in-band fabric.
// All durations are virtual nanoseconds: a "timed-out" try charges OpTimeout
// to the calling PE's clock, and the k-th retry is preceded by an
// exponentially growing backoff (Backoff << min(k, MaxShift)). Because the
// waiting is virtual, a retry storm costs nothing in real time — but the
// advancing clock is exactly what carries a PE across a crash/unavailability
// window, or into the watchdog's jaws if the failure is permanent.
type RetryConfig struct {
	Attempts  int   // total tries per op before giving up (default 10)
	OpTimeout int64 // virtual ns charged per failed try (default 200µs)
	Backoff   int64 // base virtual backoff before a retry (default 500µs)
	MaxShift  int   // cap on the exponential doubling (default 8)
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.Attempts <= 0 {
		rc.Attempts = 10
	}
	if rc.OpTimeout <= 0 {
		rc.OpTimeout = 200_000
	}
	if rc.Backoff <= 0 {
		rc.Backoff = 500_000
	}
	if rc.MaxShift <= 0 {
		rc.MaxShift = 8
	}
	return rc
}

// SetRetry overrides the client's retry policy; zero fields keep defaults.
func (c *Client) SetRetry(rc RetryConfig) { c.retry = rc.withDefaults() }

// RetryStats returns this client's resilience counters: how many retries it
// performed and how many ops failed permanently (timed out).
func (c *Client) RetryStats() (retries, timeouts int) {
	return int(c.retries.Load()), int(c.timeouts.Load())
}

// withRetry runs the fault gate for one op, retrying transient failures with
// exponential virtual backoff. It returns nil once the server accepts the
// op, or an *OpError wrapping ErrTimeout when the budget is exhausted. On a
// fault-free server (no injector) it is a single branch.
func (c *Client) withRetry(op, key string) error {
	if !c.s.faults.Faulty() {
		return nil
	}
	rc := c.retry
	var last error
	for attempt := 0; attempt < rc.Attempts; attempt++ {
		if attempt > 0 {
			shift := attempt - 1
			if shift > rc.MaxShift {
				shift = rc.MaxShift
			}
			c.clk.Advance(rc.Backoff << shift)
			c.retries.Add(1)
			c.obs.Emit(c.clk.Now(), obs.LayerPMI, "pmi-retry", -1, 0,
				obs.Attr{Key: "op", Val: op})
			// The retry is the client-side detection of the previous try's
			// silent failure (a dropped request or an unreachable server).
			c.obs.Ledger().Detect("pmi", c.rank, c.clk.Now(), "retry")
		}
		f := c.s.admit(c, op)
		if f == nil {
			return nil
		}
		last = f
		// The client cannot tell a dropped request from a slow reply: it
		// waits out its per-try timeout before concluding the try failed.
		c.clk.Advance(rc.OpTimeout)
	}
	c.timeouts.Add(1)
	c.obs.Emit(c.clk.Now(), obs.LayerPMI, "pmi-timeout", -1, 0,
		obs.Attr{Key: "op", Val: op})
	c.obs.Ledger().Act("pmi", c.rank, c.clk.Now(), "op-timeout")
	return &OpError{
		Op: op, Key: key, Rank: c.rank, Attempts: rc.Attempts,
		Cause: ErrTimeout, Last: last,
	}
}

// admit consults the fault plane for one client op, applying crash damage
// to the KVS when the op trips an armed crash. A nil return admits the op.
func (s *Server) admit(c *Client, op string) error {
	led := c.obs.Ledger()
	f := s.faults.fate(op, c.clk.Now())
	if f.slow > 0 {
		c.clk.Advance(f.slow)
		c.obs.Emit(c.clk.Now(), obs.LayerPMI, "pmi-fault-slow", -1, 0,
			obs.Attr{Key: "op", Val: op})
		led.OpenAbsorbed("pmi", "slow", c.rank, obs.InstJob, c.clk.Now(), "latency-absorbed")
	}
	if f.crash {
		s.crashNow(c)
		// The crash is job-wide (every client sees the lost epoch), detected
		// synchronously by the op that trips it.
		led.OpenDetected("pmi", "crash", obs.InstJob, obs.InstJob, c.clk.Now(), "server-crash")
	}
	if f.dup {
		led.OpenAbsorbed("pmi", "dup", c.rank, obs.InstJob, c.clk.Now(), "idempotent")
	}
	if f.unavail {
		led.Open("pmi", "unavail", c.rank, obs.InstJob, c.clk.Now())
		return ErrUnavailable
	}
	if f.drop {
		led.Open("pmi", "drop", c.rank, obs.InstJob, c.clk.Now())
		return errDropped
	}
	// An admitted op proves the control plane reachable again: close this
	// client's open incidents and any job-wide crash incident.
	led.CloseAll("pmi", nil, c.rank, obs.InstJob, c.clk.Now(), "op-admitted")
	led.CloseAll("pmi", nil, obs.InstJob, obs.InstJob, c.clk.Now(), "op-admitted")
	return nil
}

// crashNow applies the damage of the injected server crash: every KVS entry
// published since the last Fence is discarded (and remembered in the lost
// set so later Lookups can attribute the miss), and every incomplete
// allgather round fails with ErrExchangeLost.
func (s *Server) crashNow(c *Client) {
	s.mu.Lock()
	nLost := len(s.unfenced)
	for k := range s.unfenced {
		delete(s.kvs, k)
		s.lost[k] = struct{}{}
		delete(s.unfenced, k)
	}
	s.bytes = 0
	var pending []*AllgatherOp
	for _, op := range s.ag {
		pending = append(pending, op)
	}
	s.mu.Unlock()
	for _, op := range pending {
		op.fail(ErrExchangeLost) // no-op on rounds that already completed
	}
	c.obs.Emit(c.clk.Now(), obs.LayerPMI, "pmi-server-crash", -1, int64(nLost))
}
