package pmi

import (
	"fmt"
	"sync"

	"goshmem/internal/obs"
)

// AllgatherOp is an outstanding PMIX_Iallgather. The initiating call returns
// immediately after charging only the launch cost; the exchange completes in
// background virtual time, so a PE that performs enough independent work
// (memory registration, segment setup, application compute) before calling
// Wait observes no additional critical-path cost — the overlap effect the
// paper exploits in section IV-D.
type AllgatherOp struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	vals    []string
	got     int
	maxT    int64 // max contribution virtual time
	bytes   int
	cost    int64 // filled when complete
	doneAt  int64
	done    bool
	aborted bool
	lost    bool // exchange failed (server crash / launch exhaustion)
	lostErr error
}

// abort releases every waiter; Wait then returns nil instead of values.
func (op *AllgatherOp) abort() {
	op.mu.Lock()
	op.aborted = true
	op.cond.Broadcast()
	op.mu.Unlock()
}

// fail marks the exchange lost and releases every waiter. The lost state is
// sticky and mutually exclusive with done: either every participant sees the
// gathered values, or every participant sees the same failure — so all of
// them take the same (fallback) branch and no subset diverges. Completed or
// aborted rounds are left untouched.
func (op *AllgatherOp) fail(err error) {
	op.mu.Lock()
	if !op.done && !op.aborted && !op.lost {
		op.lost = true
		op.lostErr = err
		op.cond.Broadcast()
	}
	op.mu.Unlock()
}

// IAllgather contributes this process's value to the job-wide allgather and
// returns the operation handle without blocking. Successive calls by the
// same set of processes form successive rounds; all processes must call the
// same sequence of rounds.
func (c *Client) IAllgather(value string) *AllgatherOp {
	c.clk.Advance(c.s.model.PMINonBlockingLaunch)
	c.obs.Emit(c.clk.Now(), obs.LayerPMI, "iallgather-launch", -1, int64(len(value)))
	launchErr := c.withRetry("iallgather", "")
	c.s.mu.Lock()
	seq := c.agSeq
	c.agSeq++
	op := c.s.ag[seq]
	if op == nil {
		op = &AllgatherOp{n: c.s.n, vals: make([]string, c.s.n)}
		op.cond = sync.NewCond(&op.mu)
		if c.s.abort != nil {
			op.aborted = true
		}
		c.s.ag[seq] = op
	}
	c.s.mu.Unlock()
	if launchErr != nil {
		// This participant could not hand its fragment to the launcher, so
		// the collective can complete for no one: fail the SHARED op. Every
		// other participant observes the same lost state via WaitErr and
		// takes the same fallback path.
		op.fail(fmt.Errorf("%w: %v", ErrExchangeLost, launchErr))
		return op
	}

	op.mu.Lock()
	if op.lost {
		// The round already failed (crash, or another participant's launch
		// exhausted its retries): a late contribution cannot revive it.
		op.mu.Unlock()
		return op
	}
	op.vals[c.rank] = value
	op.got++
	op.bytes += len(value)
	if t := c.clk.Now(); t > op.maxT {
		op.maxT = t
	}
	if op.got == op.n {
		// The exchange "runs" from the last contribution; its background
		// completion time models the PM's symmetric distribution.
		perProc := op.bytes / op.n
		op.doneAt = op.maxT + c.s.model.AllgatherCost(op.n, perProc)
		op.done = true
		op.cond.Broadcast()
	}
	op.mu.Unlock()
	return op
}

// Wait blocks until the allgather has completed (PMIX_Wait), advances the
// caller's clock to the completion time, and returns the gathered values
// indexed by rank. Wait may be called by every participant. If the job is
// aborted — or the exchange is lost to an injected fault — before it
// completes, Wait returns nil; WaitErr additionally says why.
func (op *AllgatherOp) Wait(c *Client) []string {
	vals, _ := op.WaitErr(c)
	return vals
}

// WaitErr is Wait with a typed failure: it returns the gathered values, or
// nil plus ErrExchangeLost (the server crashed mid-exchange or a launch
// exhausted its retries — the caller should fall back to Put-Fence-Get) or
// ErrAborted (the job is going down).
func (op *AllgatherOp) WaitErr(c *Client) ([]string, error) {
	start := c.clk.Now()
	op.mu.Lock()
	for !op.done && !op.aborted && !op.lost {
		op.cond.Wait()
	}
	if !op.done {
		lost, lostErr := op.lost, op.lostErr
		op.mu.Unlock()
		if lost {
			return nil, lostErr
		}
		return nil, ErrAborted
	}
	vals, doneAt := op.vals, op.doneAt
	op.mu.Unlock()
	c.clk.AdvanceTo(doneAt)
	end := c.clk.Now()
	c.obs.Span(start, end, obs.LayerPMI, "iallgather-wait", -1, 0)
	c.obs.Observe("pmi.allgather_wait_ns", end-start)
	return vals, nil
}

// Done reports (without blocking) whether the exchange has completed in
// real execution; it does not advance the clock.
func (op *AllgatherOp) Done() bool {
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.done
}

// ringOp collects the n ring contributions.
type ringOp struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	vals    []string
	got     int
	maxT    int64
	done    bool
	aborted bool
}

// abort releases every ring waiter; Ring then returns empty neighbours.
func (op *ringOp) abort() {
	op.mu.Lock()
	op.aborted = true
	op.cond.Broadcast()
	op.mu.Unlock()
}

// Ring performs the PMIX_Ring exchange: it blocks until all processes have
// contributed and returns only the left and right neighbours' values
// ((rank-1+n)%n and (rank+1)%n). Its cost is constant per process plus one
// tree hop, independent of N — the scalable startup primitive from the
// authors' EuroMPI'14 paper, included for completeness.
func (c *Client) Ring(value string) (left, right string) {
	c.s.mu.Lock()
	seq := c.ringSeq
	c.ringSeq++
	op := c.s.ring[seq]
	if op == nil {
		op = &ringOp{n: c.s.n, vals: make([]string, c.s.n)}
		op.cond = sync.NewCond(&op.mu)
		c.s.ring[seq] = op
	}
	c.s.mu.Unlock()

	op.mu.Lock()
	op.vals[c.rank] = value
	op.got++
	if t := c.clk.Now(); t > op.maxT {
		op.maxT = t
	}
	if op.got == op.n {
		op.done = true
		op.cond.Broadcast()
	}
	for !op.done && !op.aborted {
		op.cond.Wait()
	}
	if !op.done {
		op.mu.Unlock()
		return "", ""
	}
	l := op.vals[(c.rank-1+op.n)%op.n]
	r := op.vals[(c.rank+1)%op.n]
	release := op.maxT + c.s.model.PMIFenceHop + c.s.model.PMIPut
	op.mu.Unlock()
	c.clk.AdvanceTo(release)
	return l, r
}
