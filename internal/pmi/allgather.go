package pmi

import (
	"sync"

	"goshmem/internal/obs"
)

// AllgatherOp is an outstanding PMIX_Iallgather. The initiating call returns
// immediately after charging only the launch cost; the exchange completes in
// background virtual time, so a PE that performs enough independent work
// (memory registration, segment setup, application compute) before calling
// Wait observes no additional critical-path cost — the overlap effect the
// paper exploits in section IV-D.
type AllgatherOp struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	vals   []string
	got    int
	maxT   int64 // max contribution virtual time
	bytes  int
	cost    int64 // filled when complete
	doneAt  int64
	done    bool
	aborted bool
}

// abort releases every waiter; Wait then returns nil instead of values.
func (op *AllgatherOp) abort() {
	op.mu.Lock()
	op.aborted = true
	op.cond.Broadcast()
	op.mu.Unlock()
}

// IAllgather contributes this process's value to the job-wide allgather and
// returns the operation handle without blocking. Successive calls by the
// same set of processes form successive rounds; all processes must call the
// same sequence of rounds.
func (c *Client) IAllgather(value string) *AllgatherOp {
	c.clk.Advance(c.s.model.PMINonBlockingLaunch)
	c.obs.Emit(c.clk.Now(), obs.LayerPMI, "iallgather-launch", -1, int64(len(value)))
	c.s.mu.Lock()
	seq := c.agSeq
	c.agSeq++
	op := c.s.ag[seq]
	if op == nil {
		op = &AllgatherOp{n: c.s.n, vals: make([]string, c.s.n)}
		op.cond = sync.NewCond(&op.mu)
		if c.s.abort != nil {
			op.aborted = true
		}
		c.s.ag[seq] = op
	}
	c.s.mu.Unlock()

	op.mu.Lock()
	op.vals[c.rank] = value
	op.got++
	op.bytes += len(value)
	if t := c.clk.Now(); t > op.maxT {
		op.maxT = t
	}
	if op.got == op.n {
		// The exchange "runs" from the last contribution; its background
		// completion time models the PM's symmetric distribution.
		perProc := op.bytes / op.n
		op.doneAt = op.maxT + c.s.model.AllgatherCost(op.n, perProc)
		op.done = true
		op.cond.Broadcast()
	}
	op.mu.Unlock()
	return op
}

// Wait blocks until the allgather has completed (PMIX_Wait), advances the
// caller's clock to the completion time, and returns the gathered values
// indexed by rank. Wait may be called by every participant. If the job is
// aborted before the exchange completes, Wait returns nil.
func (op *AllgatherOp) Wait(c *Client) []string {
	start := c.clk.Now()
	op.mu.Lock()
	for !op.done && !op.aborted {
		op.cond.Wait()
	}
	if !op.done {
		op.mu.Unlock()
		return nil
	}
	vals, doneAt := op.vals, op.doneAt
	op.mu.Unlock()
	c.clk.AdvanceTo(doneAt)
	end := c.clk.Now()
	c.obs.Span(start, end, obs.LayerPMI, "iallgather-wait", -1, 0)
	c.obs.Observe("pmi.allgather_wait_ns", end-start)
	return vals
}

// Done reports (without blocking) whether the exchange has completed in
// real execution; it does not advance the clock.
func (op *AllgatherOp) Done() bool {
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.done
}

// ringOp collects the n ring contributions.
type ringOp struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	vals    []string
	got     int
	maxT    int64
	done    bool
	aborted bool
}

// abort releases every ring waiter; Ring then returns empty neighbours.
func (op *ringOp) abort() {
	op.mu.Lock()
	op.aborted = true
	op.cond.Broadcast()
	op.mu.Unlock()
}

// Ring performs the PMIX_Ring exchange: it blocks until all processes have
// contributed and returns only the left and right neighbours' values
// ((rank-1+n)%n and (rank+1)%n). Its cost is constant per process plus one
// tree hop, independent of N — the scalable startup primitive from the
// authors' EuroMPI'14 paper, included for completeness.
func (c *Client) Ring(value string) (left, right string) {
	c.s.mu.Lock()
	seq := c.ringSeq
	c.ringSeq++
	op := c.s.ring[seq]
	if op == nil {
		op = &ringOp{n: c.s.n, vals: make([]string, c.s.n)}
		op.cond = sync.NewCond(&op.mu)
		c.s.ring[seq] = op
	}
	c.s.mu.Unlock()

	op.mu.Lock()
	op.vals[c.rank] = value
	op.got++
	if t := c.clk.Now(); t > op.maxT {
		op.maxT = t
	}
	if op.got == op.n {
		op.done = true
		op.cond.Broadcast()
	}
	for !op.done && !op.aborted {
		op.cond.Wait()
	}
	if !op.done {
		op.mu.Unlock()
		return "", ""
	}
	l := op.vals[(c.rank-1+op.n)%op.n]
	r := op.vals[(c.rank+1)%op.n]
	release := op.maxT + c.s.model.PMIFenceHop + c.s.model.PMIPut
	op.mu.Unlock()
	c.clk.AdvanceTo(release)
	return l, r
}
