package pmi

import (
	"errors"
	"fmt"
	"testing"

	"goshmem/internal/vclock"
)

// fastRetry keeps the fault tests cheap in virtual time without changing the
// retry loop's structure.
var fastRetry = RetryConfig{Attempts: 4, OpTimeout: 10_000, Backoff: 20_000, MaxShift: 3}

func faultyClient(t *testing.T, n int, fi *FaultInjector) (*Server, *Client, *vclock.Clock) {
	t.Helper()
	s := NewServer(n, vclock.Default())
	s.SetFaults(fi)
	clk := vclock.NewClock(0)
	c := s.Client(0, clk)
	c.SetRetry(fastRetry)
	return s, c, clk
}

func TestSlowLauncherChargesVirtualLatency(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.SlowProb = 1
	fi.SlowTime = 3_000_000
	_, c, clk := faultyClient(t, 1, fi)
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put under slow launcher: %v", err)
	}
	if fi.Slowdowns() == 0 {
		t.Fatal("slowdown not counted")
	}
	if clk.Now() < fi.SlowTime {
		t.Fatalf("slow charge not on the clock: now=%d want >= %d", clk.Now(), fi.SlowTime)
	}
}

func TestDropsAreRetriedToSuccess(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.DropFirstN = 3
	_, c, _ := faultyClient(t, 1, fi)
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put should survive %d drops with %d attempts: %v", fi.DropFirstN, fastRetry.Attempts, err)
	}
	retries, timeouts := c.RetryStats()
	if retries != 3 || timeouts != 0 {
		t.Fatalf("retry stats = (%d,%d), want (3,0)", retries, timeouts)
	}
	if v, err := c.Lookup("k"); err != nil || v != "v" {
		t.Fatalf("Lookup after retried Put = %q, %v", v, err)
	}
}

func TestRetryExhaustionIsTypedTimeout(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.DropFirstN = 1000 // more than the budget can absorb
	_, c, _ := faultyClient(t, 1, fi)
	err := c.Put("k", "v")
	if err == nil {
		t.Fatal("Put should fail permanently")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error should wrap ErrTimeout: %v", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error should be *OpError: %v", err)
	}
	if oe.Op != "put" || oe.Key != "k" || oe.Attempts != fastRetry.Attempts {
		t.Fatalf("OpError = %+v", oe)
	}
	if !errors.Is(oe.Last, errDropped) {
		t.Fatalf("last per-try fault = %v, want errDropped", oe.Last)
	}
	if retries, timeouts := c.RetryStats(); timeouts != 1 || retries != fastRetry.Attempts-1 {
		t.Fatalf("retry stats = (%d,%d), want (%d,1)", retries, timeouts, fastRetry.Attempts-1)
	}
}

func TestBackoffCrossesUnavailabilityWindow(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.UnavailAt = 0
	fi.UnavailFor = 40_000 // two backoffs (20k+40k) carry the clock past it
	_, c, clk := faultyClient(t, 1, fi)
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put should recover once virtual time leaves the window: %v", err)
	}
	if retries, _ := c.RetryStats(); retries == 0 {
		t.Fatal("expected at least one retry inside the window")
	}
	if fi.UnavailHits() == 0 {
		t.Fatal("unavailability hits not counted")
	}
	if clk.Now() < fi.UnavailAt+fi.UnavailFor {
		t.Fatalf("success before the window closed: now=%d", clk.Now())
	}
}

func TestCrashLosesUnfencedKeysOnly(t *testing.T) {
	const n = 2
	s := NewServer(n, vclock.Default())
	fi := NewFaultInjector(1)
	s.SetFaults(fi)
	clks := [n]*vclock.Clock{vclock.NewClock(0), vclock.NewClock(0)}
	cs := [n]*Client{}
	for r := 0; r < n; r++ {
		cs[r] = s.Client(r, clks[r])
		cs[r].SetRetry(fastRetry)
	}
	// Epoch 1: both publish and fence — these keys become durable.
	done := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(r int) {
			if err := cs[r].Put(KeyFor("durable", r), "fenced"); err != nil {
				done <- err
				return
			}
			done <- cs[r].Fence()
		}(r)
	}
	for r := 0; r < n; r++ {
		if err := <-done; err != nil {
			t.Fatalf("epoch 1: %v", err)
		}
	}
	// Epoch 2: rank 0 publishes but does NOT fence, then the server crashes
	// (recovering instantly, so only the KVS damage is observable).
	if err := cs[0].Put("ephemeral", "unfenced"); err != nil {
		t.Fatalf("epoch 2 put: %v", err)
	}
	fi.CrashServer(clks[0].Now(), 0)
	if _, err := cs[0].Lookup(KeyFor("durable", 1)); err != nil {
		t.Fatalf("fenced key should survive the crash: %v", err)
	}
	if !fi.CrashTripped() {
		t.Fatal("crash should have tripped on the first post-arm op")
	}
	if _, err := cs[0].Lookup("ephemeral"); !errors.Is(err, ErrLostToFault) {
		t.Fatalf("un-fenced key: err = %v, want ErrLostToFault", err)
	}
	if _, err := cs[0].Lookup("never-put"); !errors.Is(err, ErrNeverPublished) {
		t.Fatalf("unknown key: err = %v, want ErrNeverPublished", err)
	}
	// Re-publishing resurrects the lost key.
	if err := cs[0].Put("ephemeral", "again"); err != nil {
		t.Fatalf("re-put: %v", err)
	}
	if v, err := cs[0].Lookup("ephemeral"); err != nil || v != "again" {
		t.Fatalf("resurrected key = %q, %v", v, err)
	}
}

func TestCrashFailsIncompleteAllgather(t *testing.T) {
	const n = 2
	s := NewServer(n, vclock.Default())
	fi := NewFaultInjector(1)
	s.SetFaults(fi)
	clk0, clk1 := vclock.NewClock(0), vclock.NewClock(0)
	c0, c1 := s.Client(0, clk0), s.Client(1, clk1)
	c0.SetRetry(fastRetry)
	c1.SetRetry(fastRetry)

	op := c0.IAllgather("v0") // rank 1 never contributes: round stays open
	fi.CrashServer(clk1.Now(), 0)
	if err := c1.Put("trip", "x"); err != nil {
		t.Fatalf("tripping put: %v", err)
	}
	vals, err := op.WaitErr(c0)
	if vals != nil || !errors.Is(err, ErrExchangeLost) {
		t.Fatalf("WaitErr = (%v, %v), want (nil, ErrExchangeLost)", vals, err)
	}
}

func TestCrashSparesCompletedAllgather(t *testing.T) {
	const n = 2
	s := NewServer(n, vclock.Default())
	fi := NewFaultInjector(1)
	s.SetFaults(fi)
	clk0, clk1 := vclock.NewClock(0), vclock.NewClock(0)
	c0, c1 := s.Client(0, clk0), s.Client(1, clk1)
	c0.SetRetry(fastRetry)
	c1.SetRetry(fastRetry)

	op0 := c0.IAllgather("v0")
	c1.IAllgather("v1") // completes the round (doneAt may still be in the future)
	fi.CrashServer(clk0.Now(), 0)
	if err := c0.Put("trip", "x"); err != nil {
		t.Fatalf("tripping put: %v", err)
	}
	vals, err := op0.WaitErr(c0)
	if err != nil || len(vals) != n || vals[0] != "v0" || vals[1] != "v1" {
		t.Fatalf("completed round damaged by crash: (%v, %v)", vals, err)
	}
}

func TestLaunchExhaustionFailsWholeRound(t *testing.T) {
	// One participant's launch exhausting its retries must fail the SHARED op
	// so every participant takes the same fallback branch (no subset diverges
	// into a Fence only some PEs reach).
	const n = 2
	s := NewServer(n, vclock.Default())
	fi := NewFaultInjector(1)
	fi.DenyIAllgather = true
	s.SetFaults(fi)
	clk0, clk1 := vclock.NewClock(0), vclock.NewClock(0)
	c0, c1 := s.Client(0, clk0), s.Client(1, clk1)
	c0.SetRetry(fastRetry)
	c1.SetRetry(fastRetry)

	op0 := c0.IAllgather("v0")
	op1 := c1.IAllgather("v1")
	for i, pair := range []struct {
		op *AllgatherOp
		c  *Client
	}{{op0, c0}, {op1, c1}} {
		if vals, err := pair.op.WaitErr(pair.c); vals != nil || !errors.Is(err, ErrExchangeLost) {
			t.Fatalf("rank %d: WaitErr = (%v, %v), want (nil, ErrExchangeLost)", i, vals, err)
		}
	}
	// Put/Get/Fence stay serviceable: the fallback ladder has somewhere to go.
	if err := c0.Put("k", "v"); err != nil {
		t.Fatalf("Put under DenyIAllgather: %v", err)
	}
}

func TestDuplicatesAreIdempotent(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.DupProb = 1
	_, c, _ := faultyClient(t, 1, fi)
	for i := 0; i < 5; i++ {
		if err := c.Put("k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if fi.Dups() != 5 {
		t.Fatalf("dups = %d, want 5", fi.Dups())
	}
	if v, err := c.Lookup("k"); err != nil || v != "v4" {
		t.Fatalf("duplicated Puts corrupted the KVS: %q, %v", v, err)
	}
}

func TestFaultFreeServerSkipsRetryMachinery(t *testing.T) {
	s := NewServer(1, vclock.Default())
	c := s.Client(0, vclock.NewClock(0))
	if err := c.Put("k", "v"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if retries, timeouts := c.RetryStats(); retries != 0 || timeouts != 0 {
		t.Fatalf("fault-free run touched retry stats: (%d,%d)", retries, timeouts)
	}
}
