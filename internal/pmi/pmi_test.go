package pmi

import (
	"fmt"
	"sync"
	"testing"

	"goshmem/internal/vclock"
)

func runJob(t *testing.T, n int, body func(c *Client, clk *vclock.Clock)) []*vclock.Clock {
	t.Helper()
	s := NewServer(n, vclock.Default())
	clks := make([]*vclock.Clock, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		clks[r] = vclock.NewClock(0)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(s.Client(rank, clks[rank]), clks[rank])
		}(r)
	}
	wg.Wait()
	return clks
}

func TestPutFenceGet(t *testing.T) {
	const n = 8
	runJob(t, n, func(c *Client, clk *vclock.Clock) {
		c.Put(KeyFor("ud", c.Rank()), fmt.Sprintf("ep-%d", c.Rank()))
		c.Fence()
		for peer := 0; peer < n; peer++ {
			v, ok := c.Get(KeyFor("ud", peer))
			if !ok || v != fmt.Sprintf("ep-%d", peer) {
				t.Errorf("rank %d: Get(%d) = %q, %v", c.Rank(), peer, v, ok)
			}
		}
	})
}

func TestFenceSynchronizesClocks(t *testing.T) {
	const n = 4
	clks := runJob(t, n, func(c *Client, clk *vclock.Clock) {
		clk.Advance(int64(c.Rank()) * 1000) // staggered arrival
		c.Fence()
	})
	want := clks[0].Now()
	for i, c := range clks {
		if c.Now() != want {
			t.Fatalf("clock %d = %d, want %d", i, c.Now(), want)
		}
	}
	m := vclock.Default()
	if want < (n-1)*1000+m.FenceCost(n, 0) {
		t.Fatalf("fence release %d below max-arrival+cost", want)
	}
}

func TestFenceCostGrowsWithData(t *testing.T) {
	measure := func(valSize int) int64 {
		s := NewServer(2, vclock.Default())
		clks := []*vclock.Clock{vclock.NewClock(0), vclock.NewClock(0)}
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c := s.Client(rank, clks[rank])
				c.Put(KeyFor("k", rank), string(make([]byte, valSize)))
				c.Fence()
			}(r)
		}
		wg.Wait()
		return clks[0].Now()
	}
	if small, big := measure(8), measure(1<<16); big <= small {
		t.Fatalf("fence cost should grow with KVS data: %d <= %d", big, small)
	}
}

func TestIAllgatherGathersAll(t *testing.T) {
	const n = 16
	runJob(t, n, func(c *Client, clk *vclock.Clock) {
		op := c.IAllgather(fmt.Sprintf("v%d", c.Rank()))
		vals := op.Wait(c)
		if len(vals) != n {
			t.Errorf("got %d vals", len(vals))
			return
		}
		for i, v := range vals {
			if v != fmt.Sprintf("v%d", i) {
				t.Errorf("vals[%d] = %q", i, v)
			}
		}
	})
}

// The core overlap property from the paper's section IV-D: a PE that does
// enough independent work between IAllgather and Wait pays (almost) nothing
// for the exchange, whereas calling Wait immediately exposes the full cost.
func TestIAllgatherOverlapHidesCost(t *testing.T) {
	const n = 64
	run := func(overlap int64) int64 {
		s := NewServer(n, vclock.Default())
		clks := make([]*vclock.Clock, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			clks[r] = vclock.NewClock(0)
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c := s.Client(rank, clks[rank])
				op := c.IAllgather("endpoint-info-endpoint-info")
				clks[rank].Advance(overlap) // independent work
				op.Wait(c)
			}(r)
		}
		wg.Wait()
		max := int64(0)
		for _, c := range clks {
			if c.Now() > max {
				max = c.Now()
			}
		}
		return max
	}
	m := vclock.Default()
	agCost := m.AllgatherCost(n, 26)
	noOverlap := run(0)
	bigOverlap := run(10 * agCost)
	launch := m.PMINonBlockingLaunch
	// With enough overlap, total time should be just the overlap work plus
	// the launch cost — the exchange is fully hidden.
	if bigOverlap > 10*agCost+launch+1000 {
		t.Fatalf("exchange not hidden: total=%d overlapwork=%d", bigOverlap, 10*agCost)
	}
	if noOverlap < agCost {
		t.Fatalf("unoverlapped wait should expose the exchange cost: %d < %d", noOverlap, agCost)
	}
}

func TestIAllgatherMultipleRounds(t *testing.T) {
	const n, rounds = 5, 7
	runJob(t, n, func(c *Client, clk *vclock.Clock) {
		for round := 0; round < rounds; round++ {
			op := c.IAllgather(fmt.Sprintf("r%d-p%d", round, c.Rank()))
			vals := op.Wait(c)
			for i, v := range vals {
				if want := fmt.Sprintf("r%d-p%d", round, i); v != want {
					t.Errorf("round %d: vals[%d] = %q, want %q", round, i, v, want)
				}
			}
		}
	})
}

func TestRingNeighbours(t *testing.T) {
	const n = 9
	runJob(t, n, func(c *Client, clk *vclock.Clock) {
		l, r := c.Ring(fmt.Sprintf("%d", c.Rank()))
		wantL := fmt.Sprintf("%d", (c.Rank()-1+n)%n)
		wantR := fmt.Sprintf("%d", (c.Rank()+1)%n)
		if l != wantL || r != wantR {
			t.Errorf("rank %d: ring = (%s,%s), want (%s,%s)", c.Rank(), l, r, wantL, wantR)
		}
	})
}

func TestRingCheaperThanFence(t *testing.T) {
	const n = 512
	m := vclock.Default()
	// Ring release = max arrival + hop + put; Fence = FenceCost which grows
	// with N. This is the motivation for PMIX_Ring.
	if m.PMIFenceHop+m.PMIPut >= m.FenceCost(n, 26) {
		t.Fatal("ring cost should be far below fence cost at scale")
	}
}

func TestClientRankValidation(t *testing.T) {
	s := NewServer(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank should panic")
		}
	}()
	s.Client(5, vclock.NewClock(0))
}

func TestGetMissing(t *testing.T) {
	s := NewServer(1, nil)
	c := s.Client(0, vclock.NewClock(0))
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get of missing key returned ok")
	}
}
