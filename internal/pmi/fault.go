package pmi

import (
	"math/rand"
	"sync"
)

// FaultInjector is the control-plane leg of the fault plane, mirroring
// internal/ib's fabric injector: it degrades the launcher-mediated PMI
// channel that, in real deployments, is the first component to misbehave at
// scale. All decisions are driven by a seeded PRNG so a failing run can be
// replayed; a nil injector (the default) makes every method a no-op, keeping
// the happy path free.
//
// Faults it can inject, in the order a client op is evaluated:
//
//   - slow launcher: with SlowProb, charge SlowTime extra virtual latency
//     before serving the op;
//   - server crash: once the first op arrives at/after the armed crash time
//     (CrashServer), every KVS entry published but not yet fenced is lost and
//     incomplete allgather rounds fail; the server then refuses ops until the
//     recovery time (or forever, if recovery is disabled);
//   - unavailability window: ops inside [UnavailAt, UnavailAt+UnavailFor)
//     fail with ErrUnavailable — transient, retryable;
//   - deterministic Iallgather denial (DenyIAllgather): the launcher simply
//     does not serve the non-blocking allgather extension, modelling a PM
//     without PMIX support — the conduit must take the fallback ladder;
//   - drop/duplicate: with DropProb (bounded by MaxDrops, or DropFirstN for
//     a deterministic burst) a request or its reply is lost — the client
//     observes a timeout and retries; with DupProb the request is applied
//     twice (PMI ops are idempotent, so duplicates are only counted).
type FaultInjector struct {
	mu  sync.Mutex
	rng *rand.Rand

	// Slow launcher.
	SlowProb float64
	SlowTime int64 // virtual ns added per slowed op

	// Request/reply loss and duplication.
	DropProb   float64
	MaxDrops   int // 0: unlimited
	DropFirstN int // deterministically drop the first N ops seen
	DupProb    float64

	// Transient unavailability window [UnavailAt, UnavailAt+UnavailFor).
	UnavailAt  int64
	UnavailFor int64

	// DenyIAllgather makes every IAllgather launch fail deterministically
	// while leaving Put/Get/Fence untouched.
	DenyIAllgather bool

	// Crash mode (armed via CrashServer).
	crashArmed   bool
	crashAt      int64
	recoverAfter int64 // <0: the server never comes back
	crashTripped bool

	seen        int
	drops       int
	dups        int
	slowdowns   int
	unavailHits int
}

// NewFaultInjector creates a seeded control-plane fault injector.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// CrashServer arms a crash at virtual time `at`: the first client op at or
// after `at` trips it, losing every un-fenced KVS entry and failing every
// incomplete allgather. The server refuses ops (ErrUnavailable) until
// at+recoverAfter; recoverAfter < 0 means it never recovers.
func (fi *FaultInjector) CrashServer(at, recoverAfter int64) {
	fi.mu.Lock()
	fi.crashArmed = true
	fi.crashAt = at
	fi.recoverAfter = recoverAfter
	fi.mu.Unlock()
}

// opFate is the injector's verdict for one client op.
type opFate struct {
	slow    int64 // extra virtual latency to charge before the op
	crash   bool  // this op trips the armed crash (caller applies KVS loss)
	unavail bool  // server unreachable right now (transient, retryable)
	drop    bool  // request or reply lost (observed as a timeout, retryable)
	dup     bool  // request applied twice (idempotent: counted, not applied)
}

// fate evaluates the fault plane for one client op at virtual time now.
// opName is the client operation ("put", "get", "fence", "iallgather").
func (fi *FaultInjector) fate(opName string, now int64) opFate {
	var f opFate
	if fi == nil {
		return f
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.seen++

	if fi.SlowProb > 0 && fi.rng.Float64() < fi.SlowProb {
		f.slow = fi.SlowTime
		fi.slowdowns++
	}

	// Crash: trip once, then refuse ops until recovery.
	if fi.crashArmed && !fi.crashTripped && now >= fi.crashAt {
		fi.crashTripped = true
		f.crash = true
	}
	if fi.crashTripped {
		recoverAt := fi.crashAt + fi.recoverAfter
		if fi.recoverAfter < 0 || now < recoverAt {
			f.unavail = true
			fi.unavailHits++
			return f
		}
	}

	// Transient unavailability window.
	if fi.UnavailFor > 0 && now >= fi.UnavailAt && now < fi.UnavailAt+fi.UnavailFor {
		f.unavail = true
		fi.unavailHits++
		return f
	}

	if fi.DenyIAllgather && opName == "iallgather" {
		f.unavail = true
		fi.unavailHits++
		return f
	}

	if fi.DropFirstN > 0 && fi.drops < fi.DropFirstN {
		fi.drops++
		f.drop = true
		return f
	}
	if fi.DropProb > 0 && (fi.MaxDrops == 0 || fi.drops < fi.MaxDrops) &&
		fi.rng.Float64() < fi.DropProb {
		fi.drops++
		f.drop = true
		return f
	}
	if fi.DupProb > 0 && fi.rng.Float64() < fi.DupProb {
		fi.dups++ // ops are idempotent: duplicates are counted, not applied
		f.dup = true
	}
	return f
}

// Drops returns how many client ops were dropped.
func (fi *FaultInjector) Drops() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.drops
}

// Dups returns how many client ops were duplicated.
func (fi *FaultInjector) Dups() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.dups
}

// Slowdowns returns how many ops were served with inflated latency.
func (fi *FaultInjector) Slowdowns() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.slowdowns
}

// UnavailHits returns how many ops found the server unreachable.
func (fi *FaultInjector) UnavailHits() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.unavailHits
}

// CrashTripped reports whether the armed server crash has fired.
func (fi *FaultInjector) CrashTripped() bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.crashTripped
}

// Faulty reports whether any fault is configured — the gate the client uses
// to skip the retry/fate machinery entirely on fault-free runs.
func (fi *FaultInjector) Faulty() bool { return fi != nil }
