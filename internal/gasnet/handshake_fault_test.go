package gasnet

import (
	"sync"
	"testing"
	"time"

	"goshmem/internal/ib"
)

// fastRetrans compresses the real-time retransmission timing so fault tests
// recover in milliseconds instead of the production defaults.
var fastRetrans = RetransConfig{Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3}

// dropFirstKind returns a UDFilter that drops the first n control datagrams
// of the given kind and delivers everything else untouched.
func dropFirstKind(kind uint8, n int) func([]byte) ib.UDVerdict {
	var mu sync.Mutex
	return func(payload []byte) ib.UDVerdict {
		m, err := decodeConnMsg(payload)
		if err != nil || m.Kind != kind {
			return ib.VerdictDeliver
		}
		mu.Lock()
		defer mu.Unlock()
		if n > 0 {
			n--
			return ib.VerdictDrop
		}
		return ib.VerdictDeliver
	}
}

// TestRepLostServerRetransmits loses the server's first REP: the server must
// retransmit it from the connAccepted state (not wait for a fresh REQ), and
// the handshake must still deliver the payload exactly once per side.
func TestRepLostServerRetransmits(t *testing.T) {
	fi := ib.NewFaultInjector(1)
	// Lose the first REP, and suppress the client's REQ retransmissions so
	// the only possible recovery is the server's own timer resending REP from
	// connAccepted — the leg under test.
	var mu sync.Mutex
	reqs, repDropped := 0, false
	fi.UDFilter = func(payload []byte) ib.UDVerdict {
		m, err := decodeConnMsg(payload)
		if err != nil {
			return ib.VerdictDeliver
		}
		mu.Lock()
		defer mu.Unlock()
		switch m.Kind {
		case msgConnReq:
			reqs++
			if reqs > 1 {
				return ib.VerdictDrop
			}
		case msgConnRep:
			if !repDropped {
				repDropped = true
				return ib.VerdictDrop
			}
		}
		return ib.VerdictDeliver
	}
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, payloads: true, retrans: fastRetrans})
	done := make(chan struct{})
	pes[1].C.RegisterHandler(5, func(src int, a [4]uint64, p []byte, at int64) { close(done) })
	if err := pes[0].C.AMRequest(1, 5, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	<-done
	// The retransmission came from the server side (rank 1, in connAccepted).
	waitUntil(t, func() bool { return pes[1].C.Stats().Retransmits > 0 })
	waitUntil(t, func() bool { return pes[1].C.Connected(0) })
	for _, p := range pes {
		peer := 1 - p.C.Rank()
		p.mu.Lock()
		if p.payCount[peer] != 1 {
			t.Fatalf("rank %d consumed payload %d times", p.C.Rank(), p.payCount[peer])
		}
		p.mu.Unlock()
	}
}

// TestRTULostWhileTrafficFlows loses the client's RTU. The client considers
// the connection ready and streams traffic over it (its RC QP pair is fully
// up), while the server sits in connAccepted retransmitting REP until the
// client's duplicate-reply re-ack closes the handshake. No message may be
// lost or duplicated meanwhile.
func TestRTULostWhileTrafficFlows(t *testing.T) {
	fi := ib.NewFaultInjector(2)
	fi.UDFilter = dropFirstKind(msgConnRTU, 1)
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, payloads: true, retrans: fastRetrans})
	const msgs = 16
	var mu sync.Mutex
	got := make(map[uint64]int)
	pes[1].C.RegisterHandler(5, func(src int, a [4]uint64, p []byte, at int64) {
		mu.Lock()
		got[a[0]]++
		mu.Unlock()
	})
	for i := 0; i < msgs; i++ {
		if err := pes[0].C.AMRequest(1, 5, [4]uint64{uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == msgs
	})
	// The server's REP retransmission path, answered by the client's
	// duplicate-reply re-ack, must eventually complete the server side too.
	waitUntil(t, func() bool { return pes[1].C.Connected(0) })
	mu.Lock()
	for i := uint64(0); i < msgs; i++ {
		if got[i] != 1 {
			t.Fatalf("message %d delivered %d times", i, got[i])
		}
	}
	mu.Unlock()
	if pes[1].C.Stats().Retransmits == 0 {
		t.Fatal("server never retransmitted REP after the lost RTU")
	}
}

// TestCollisionUnderDrops runs the simultaneous-connect collision with a
// random drop/duplicate schedule layered on top: DESIGN.md section 6 requires
// exactly one surviving connection per pair and exactly-once payload
// consumption under any such schedule.
func TestCollisionUnderDrops(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		fi := ib.NewFaultInjector(int64(100 + trial))
		fi.DropProb = 0.3
		fi.DupProb = 0.2
		fi.MaxDrops = 20
		pes, run := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, payloads: true, retrans: fastRetrans})
		var mu sync.Mutex
		recv := make(map[int]int)
		for _, p := range pes {
			rank := p.C.Rank()
			p.C.RegisterHandler(4, func(src int, a [4]uint64, pay []byte, at int64) {
				mu.Lock()
				recv[rank]++
				mu.Unlock()
			})
		}
		run(func(p *pe) {
			peer := 1 - p.C.Rank()
			if err := p.C.AMRequest(peer, 4, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		})
		waitUntil(t, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return recv[0] >= 1 && recv[1] >= 1
		})
		for _, p := range pes {
			peer := 1 - p.C.Rank()
			if p.C.NumConnected() != 1 {
				t.Fatalf("trial %d: rank %d has %d conns, want 1", trial, p.C.Rank(), p.C.NumConnected())
			}
			p.mu.Lock()
			if p.payCount[peer] != 1 {
				t.Fatalf("trial %d: rank %d consumed payload %d times", trial, p.C.Rank(), p.payCount[peer])
			}
			p.mu.Unlock()
		}
		mu.Lock()
		if recv[0] != 1 || recv[1] != 1 {
			t.Fatalf("trial %d: deliveries %v, want exactly one each", trial, recv)
		}
		mu.Unlock()
		for _, p := range pes {
			p.C.Close()
		}
	}
}
