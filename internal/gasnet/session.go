package gasnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"goshmem/internal/ib"
	"goshmem/internal/vclock"
)

// Data-plane session layer: end-to-end integrity and exactly-once effects for
// RC payloads. Armed only on lossy fabrics (Fabric.Lossy), exactly like the
// retransmission timer — a fault-free run never frames, retains, ACKs or
// dedups anything, so its traffic and traces stay byte-identical.
//
// Sender side: every two-sided RC send is framed with the integrity trailer
// (integrity.go) under a per-pair monotone sequence and retained until the
// receiver's cumulative ACK covers it. Retained frames are replayed — original
// bytes, original sequence numbers — on NAK, on RTO expiry, and first thing
// after every reconnect, so a transfer the old connection damaged or tore is
// always overwritten by a clean copy. Quiet blocks until the retained window
// is empty, which is what turns "replayed eventually" into the OpenSHMEM
// ordering guarantee.
//
// Receiver side: conn.rxMax is the dedup ledger — the highest in-order
// sequence executed from the peer. Exactly the next sequence is admitted;
// duplicates (a replay whose original did land, because only the ACK was the
// casualty) are re-acknowledged without re-execution; corrupt frames and gaps
// are NAKed before any byte becomes visible to a handler. The ledger survives
// reconnect by riding the handshake payload, so non-idempotent operations —
// atomics, signal AMs, collective contributions — apply exactly once across
// any number of connection teardowns.
//
// One-sided RDMA cannot carry a software trailer; its payload faults surface
// as typed link faults (ib.ErrTornWrite, ib.ErrRCCorrupt) after the damage
// lands, and recovery is the existing pending-replay reconnect: the failed
// work request stays queued (its Quiet hold intact) and the replacement
// connection re-executes it, overwriting the torn prefix.

// Reserved active-message handler ids for the conduit's own session traffic.
// RegisterHandler refuses them; upper layers use 1..253.
const (
	amAtomicReq uint8 = 254
	amAtomicRep uint8 = 255
)

// retainedTx is one framed send awaiting cumulative acknowledgement. data is
// the framed bytes exactly as posted and is treated as immutable.
type retainedTx struct {
	seq  uint64
	data []byte
}

// atomicResult is the reply to a framed atomic (atomicOverAM).
type atomicResult struct {
	old uint64
	ok  bool
	at  int64
}

// mapQPLocked records the local RC queue pair serving peer, so an inbound
// framed payload can be attributed to its sender without trusting the frame's
// content (a corrupt frame's source field is garbage; the QP it arrived on is
// not). Queue-pair numbers are never reused, so stale entries are harmless.
// Caller holds connMu.
func (c *Conduit) mapQPLocked(qp *ib.QP, peer int) {
	if c.lossy && qp != nil {
		c.qpPeer[qp.QPN()] = peer
	}
}

// postFramedLocked frames wr's payload with the integrity trailer under the
// next transfer sequence and posts it on clk, retaining the framed bytes
// until the peer's cumulative ACK covers them. Posting under connMu keeps
// wire order equal to sequence order (flushLocked posts under connMu for the
// same reason). A failed post rolls the sequence back — an errored RC send
// delivers nothing, so the number is safe to reuse on the retry.
func (c *Conduit) postFramedLocked(cn *conn, wr ib.SendWR, clk *vclock.Clock) error {
	cn.txSeq++
	framed := appendRCTrailer(wr.Data, cn.txSeq, uint32(cn.seq))
	wr.Data = framed
	wr.Clk = clk
	if err := c.postRNR(cn.qp, wr); err != nil {
		cn.txSeq--
		return err
	}
	cn.unacked = append(cn.unacked, retainedTx{seq: cn.txSeq, data: framed})
	cn.lastData = timeNow()
	c.gRetFrames.Add(clk.Now(), 1)
	c.gRetBytes.Add(clk.Now(), int64(len(framed)))
	c.outMu.Lock()
	c.unackedWin++
	c.outMu.Unlock()
	c.armTimerLocked()
	return nil
}

// trimAckedLocked releases retained frames up to and including the peer's
// cumulative sequence and wakes Quiet waiters. Cumulative ACKs are monotone,
// so a stale (duplicated or reordered) acknowledgement trims nothing. vt is
// the acknowledgement's virtual arrival time, stamping the retained-window
// gauge release. Caller holds connMu.
func (c *Conduit) trimAckedLocked(cn *conn, seq uint64, vt int64) {
	i := 0
	var bytes int64
	for i < len(cn.unacked) && cn.unacked[i].seq <= seq {
		bytes += int64(len(cn.unacked[i].data))
		i++
	}
	if i == 0 {
		return
	}
	c.gRetFrames.Add(vt, int64(-i))
	c.gRetBytes.Add(vt, -bytes)
	cn.unacked = append(cn.unacked[:0], cn.unacked[i:]...)
	cn.dataAttempt = 0 // ACK progress resets the RTO backoff
	c.outMu.Lock()
	c.unackedWin -= i
	c.outMu.Unlock()
	c.outCond.Broadcast()
}

// dropUnackedLocked discards a dead peer's retained frames so Quiet cannot
// wait forever on acknowledgements that will never come. Caller holds connMu.
func (c *Conduit) dropUnackedLocked(cn *conn, vt int64) {
	n := len(cn.unacked)
	if n == 0 {
		return
	}
	var bytes int64
	for _, tx := range cn.unacked {
		bytes += int64(len(tx.data))
	}
	c.gRetFrames.Add(vt, int64(-n))
	c.gRetBytes.Add(vt, -bytes)
	cn.unacked = nil
	c.outMu.Lock()
	c.unackedWin -= n
	c.outMu.Unlock()
	c.outCond.Broadcast()
}

// resendUnackedLocked re-posts every retained frame, in sequence order, on
// the given clock: original bytes, original numbers, no send completion (the
// original post already carries any Quiet hold). The receiver's ledger
// suppresses whatever it already executed. A link fault mid-replay tears the
// connection down and restarts the handshake — the frames stay retained for
// the post-reconnect flush; they are released only by acknowledgement.
// Returns false on a teardown. Caller holds connMu.
func (c *Conduit) resendUnackedLocked(cn *conn, peer int, clk *vclock.Clock) bool {
	sent := 0
	ok := true
	for i := 0; i < len(cn.unacked); i++ {
		wr := ib.SendWR{Op: ib.OpSend, Data: cn.unacked[i].data, Clk: clk, NoSendCompletion: true}
		err := c.postRNR(cn.qp, wr)
		if err != nil && errors.Is(err, ib.ErrPathDown) && c.tryMigrateLocked(cn, peer) {
			// Primary rail died mid-replay; APM swapped to the live alternate
			// without leaving RTS, so replay the same frame there.
			i--
			continue
		}
		if err != nil {
			if isLinkFault(err) {
				c.noteDataFault(err)
				c.teardownLocked(cn)
				c.statMu.Lock()
				c.stats.LinkFaults++
				c.statMu.Unlock()
				c.event("conn-link-fault", peer, c.mgrClk.Now())
				go c.initiate(peer)
				ok = false
			}
			// A path-down with no live alternate breaks the replay WITHOUT a
			// teardown: both queue pairs are healthy, the frames stay
			// retained, and the RTO rescan replays them after a failover or
			// the partition's heal.
			break
		}
		sent++
	}
	if sent > 0 {
		c.statMu.Lock()
		c.stats.IntegrityRetransmits += sent
		c.statMu.Unlock()
		c.led.Act("rc", c.cfg.Rank, clk.Now(), "integrity-retransmit")
	}
	return ok
}

// hasUnackedLocked reports whether any connection retains unacknowledged
// framed sends (the RTO scan re-arms on it). Caller holds connMu.
func (c *Conduit) hasUnackedLocked() bool {
	if !c.lossy {
		return false
	}
	if c.connSlice != nil {
		for _, cn := range c.connSlice {
			if cn != nil && len(cn.unacked) > 0 {
				return true
			}
		}
		return false
	}
	for _, cn := range c.connMap {
		if cn != nil && len(cn.unacked) > 0 {
			return true
		}
	}
	return false
}

// sessionAccept verifies and dedups one framed RC payload on the receive
// path. It returns the inner frame and whether it should be dispatched; every
// outcome is acknowledged (ACK for in-order and duplicate frames, NAK for
// corruption and gaps) so the sender's retained window drains.
func (c *Conduit) sessionAccept(comp ib.Completion) ([]byte, bool) {
	c.connMu.Lock()
	peer, known := c.qpPeer[comp.QPN]
	if !known {
		c.connMu.Unlock()
		return nil, false
	}
	cn := c.connFor(peer)
	inner, seq, _, ok := splitRCTrailer(comp.Data)
	var (
		accept bool
		kind   uint8
		ackSeq uint64
		evt    string
	)
	switch {
	case !ok:
		// Trailer checksum failed: nothing in the frame is trustworthy, not
		// even its sequence. Count it and NAK our cumulative position.
		kind, ackSeq, evt = msgDataNak, cn.rxMax, "rc-corrupt"
		c.statMu.Lock()
		c.stats.RCCorruptFrames++
		c.statMu.Unlock()
	case seq == cn.rxMax+1:
		cn.rxMax = seq
		kind, ackSeq, accept = msgDataAck, seq, true
	case seq <= cn.rxMax:
		// Duplicate: the original executed but its ACK was the casualty (or
		// the replay raced the ACK). Re-acknowledge without re-executing —
		// this is the exactly-once guarantee for non-idempotent payloads.
		kind, ackSeq, evt = msgDataAck, cn.rxMax, "dup-suppressed"
		c.statMu.Lock()
		c.stats.DupOpsSuppressed++
		c.statMu.Unlock()
	default:
		// Sequence gap: an earlier frame died with its connection. NAK so the
		// sender replays from our position; this frame is dropped and will be
		// re-delivered in order.
		kind, ackSeq = msgDataNak, cn.rxMax
	}
	c.connMu.Unlock()
	if evt != "" {
		c.event(evt, peer, comp.VTime)
	}
	if evt == "rc-corrupt" {
		// Detection moment for the sender's rc-corrupt incident: our trailer
		// check caught the damage and the NAK below starts the replay.
		c.led.Detect("rc", peer, comp.VTime, "nak-sent")
	}
	c.sendDataCtl(peer, kind, ackSeq, comp.VTime)
	return inner, accept
}

// sendDataCtl sends a data-plane ACK/NAK on a detached clock — session
// acknowledgements are background control traffic and must not advance the
// receiver's virtual time. An unresolved peer is skipped (TryLock semantics,
// like the heartbeat prober); the sender's RTO replay recovers.
func (c *Conduit) sendDataCtl(peer int, kind uint8, seq uint64, vt int64) {
	ud, err := c.resolveUDOpt(peer, false)
	if err != nil {
		return
	}
	m := connMsg{Kind: kind, SrcRank: int32(c.cfg.Rank), UD: c.udQP.Addr(),
		Payload: encodeSeqPayload(seq)}
	c.sendControl(peer, ud, m, vclock.NewClock(vt))
}

// handleDataProbe answers a sender's window probe (retransScan): re-advertise
// our cumulative data sequence so a sender whose connection was torn down can
// trim frames whose acknowledgements were lost — without either side spending
// queue-pair budget on a reconnect. A peer we have no state for gets sequence
// zero: we executed nothing, and the sender's replay reconnect takes over.
func (c *Conduit) handleDataProbe(peer int, svc *vclock.Clock) {
	if peer < 0 || peer >= c.cfg.NProcs || !c.lossy {
		return
	}
	var rx uint64
	c.connMu.Lock()
	if cn := c.peekConn(peer); cn != nil {
		rx = cn.rxMax
	}
	c.connMu.Unlock()
	c.sendDataCtl(peer, msgDataAck, rx, svc.Now())
}

// handleDataAck processes a data-plane ACK or NAK from peer: release every
// retained frame the cumulative sequence covers and, on a NAK against a live
// connection, replay the remainder immediately. An acknowledgement that
// leaves frames retained on a torn-down connection proves the peer never
// executed them — the data itself was the casualty, not the ACK — so this is
// the one place a reconnect is started purely for replay. It is demand-driven
// and bounded: probes fire on the sender's RTO backoff and each reply can
// start at most one handshake.
func (c *Conduit) handleDataAck(peer int, payload []byte, nak bool, svc *vclock.Clock) {
	if peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	seq, ok := decodeSeqPayload(payload)
	if !ok {
		return
	}
	reinit := false
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil {
		c.connMu.Unlock()
		return
	}
	c.trimAckedLocked(cn, seq, svc.Now())
	switch {
	case nak && cn.state == connReady && len(cn.unacked) > 0:
		c.resendUnackedLocked(cn, peer, svc)
	case cn.state == connNone && len(cn.unacked) > 0 && len(cn.pending) == 0:
		reinit = true
	}
	c.connMu.Unlock()
	if reinit {
		go c.initiate(peer)
	}
}

// noteDataFault classifies a link-fault error from a data-plane post: torn
// writes and corrupted payloads are link faults whose damage already landed
// at the target, counted so chaos runs can prove the overwrite-on-replay
// recovery actually fired.
func (c *Conduit) noteDataFault(err error) {
	switch {
	case errors.Is(err, ib.ErrTornWrite):
		c.statMu.Lock()
		c.stats.TornWrites++
		c.statMu.Unlock()
		c.event("torn-write", -1, c.clk.Now())
		c.led.Detect("rc", c.cfg.Rank, c.clk.Now(), "torn-write-detected")
	case errors.Is(err, ib.ErrRCCorrupt):
		c.statMu.Lock()
		c.stats.RCCorruptFrames++
		c.statMu.Unlock()
		c.event("rc-corrupt", -1, c.clk.Now())
		c.led.Detect("rc", c.cfg.Rank, c.clk.Now(), "icrc-drop")
	}
}

// connPayloadLocked builds the handshake payload for peer: on a lossy fabric
// the receiver's cumulative data sequence is prefixed ([rxMax u64]) ahead of
// the upper layer's payload, so a reconnect re-seeds the sender's
// retransmission point and the dedup ledger survives the new connection.
// Caller holds connMu.
func (c *Conduit) connPayloadLocked(peer int) []byte {
	user := c.payload()
	if !c.lossy {
		return user
	}
	var rx uint64
	if cn := c.peekConn(peer); cn != nil {
		rx = cn.rxMax
	}
	out := make([]byte, 8+len(user))
	binary.LittleEndian.PutUint64(out, rx)
	copy(out[8:], user)
	return out
}

// stripSessionPayloadLocked consumes the rxMax prefix from a lossy handshake
// payload — trimming our retained frames the peer has already executed — and
// returns the upper layer's portion. The trim runs on every REQ/REP (not just
// the first), since cumulative sequences make stale prefixes harmless. Caller
// holds connMu.
func (c *Conduit) stripSessionPayloadLocked(cn *conn, payload []byte, vt int64) []byte {
	if !c.lossy {
		return payload
	}
	if len(payload) < 8 {
		return nil
	}
	c.trimAckedLocked(cn, binary.LittleEndian.Uint64(payload), vt)
	return payload[8:]
}

// atomicOverAM executes a fetching atomic as a framed active-message round
// trip so the receiver's dedup ledger guards it: if the request is replayed
// after a reconnect, the duplicate is suppressed and the read-modify-write
// applies exactly once. Lossy fabrics only — the fault-free path keeps the
// one-round-trip fabric-level atomic.
func (c *Conduit) atomicOverAM(peer int, wr ib.SendWR) (uint64, error) {
	ch := make(chan atomicResult, 1)
	c.atomicMu.Lock()
	c.atomicTok++
	tok := c.atomicTok
	c.atomicWait[tok] = ch
	c.atomicMu.Unlock()
	a1 := wr.Add
	if wr.Op == ib.OpCmpSwap {
		a1 = wr.Compare
	}
	payload := make([]byte, 12)
	binary.LittleEndian.PutUint32(payload, wr.RKey)
	binary.LittleEndian.PutUint64(payload[4:], tok)
	data := encodeAM(amAtomicReq, c.cfg.Rank, [4]uint64{wr.RemoteAddr, a1, wr.Swap, uint64(wr.Op)}, payload)
	if err := c.post(peer, ib.SendWR{Op: ib.OpSend, Data: data, NoSendCompletion: true}, false); err != nil {
		c.atomicMu.Lock()
		delete(c.atomicWait, tok)
		c.atomicMu.Unlock()
		return 0, err
	}
	select {
	case r := <-ch:
		c.clk.AdvanceTo(r.at)
		if !r.ok {
			return 0, fmt.Errorf("gasnet: remote operation failed: %v", ib.StatusRemoteAccessErr)
		}
		return r.old, nil
	case <-c.abortCh:
		c.atomicMu.Lock()
		delete(c.atomicWait, tok)
		c.atomicMu.Unlock()
		return 0, c.Err()
	}
}

// handleAtomicReq executes a framed atomic against this PE's registered
// memory and replies. It runs on the progress goroutine behind the dedup
// ledger, so a replayed request never reaches the memory twice; the reply
// itself rides a framed send and is deduped at the requester the same way.
func (c *Conduit) handleAtomicReq(src int, args [4]uint64, payload []byte, at int64) {
	if len(payload) < 12 {
		return
	}
	rkey := binary.LittleEndian.Uint32(payload)
	tok := binary.LittleEndian.Uint64(payload[4:])
	op := ib.Opcode(args[3])
	var add, compare uint64
	switch op {
	case ib.OpFetchAdd:
		add = args[1]
	case ib.OpCmpSwap:
		compare = args[1]
	}
	old, ok := c.cfg.HCA.AtomicRMW(op, args[0], rkey, add, compare, args[2], at)
	okU := uint64(0)
	if ok {
		okU = 1
	}
	rep := encodeAM(amAtomicRep, c.cfg.Rank, [4]uint64{tok, old, okU, 0}, nil)
	c.post(src, ib.SendWR{Op: ib.OpSend, Data: rep, NoSendCompletion: true}, false)
}

// handleAtomicRep completes a framed atomic: wake the issuer blocked in
// atomicOverAM. A reply whose waiter is gone (the issuer aborted) is dropped.
func (c *Conduit) handleAtomicRep(src int, args [4]uint64, payload []byte, at int64) {
	c.atomicMu.Lock()
	ch := c.atomicWait[args[0]]
	delete(c.atomicWait, args[0])
	c.atomicMu.Unlock()
	if ch != nil {
		ch <- atomicResult{old: args[1], ok: args[2] != 0, at: at}
	}
}
