package gasnet

import (
	"encoding/binary"
	"hash/crc32"
)

// Data-plane integrity framing. One checksum helper (frameSum) serves both
// protected channels:
//
//   - UD control frames (wire.go) carry an inline CRC32 over the whole frame
//     with the CRC field zeroed — see connMsgSum below.
//   - RC payload frames carry a trailing integrity trailer
//     [seq u64][epoch u32][crc u32] appended to the encoded active message.
//     The CRC covers the inner frame plus the seq/epoch words, so a flip
//     anywhere — payload, sequence, or epoch — is caught before any byte of
//     the message becomes visible to a handler.
//
// The sequence number is a per-pair monotone transfer counter (starting at
// 1); the epoch is the connection attempt it was first posted under. The
// receiver's dedup ledger (conn.rxMax) admits exactly the next sequence,
// re-acknowledges duplicates without re-executing them, and NAKs gaps and
// corrupt frames — that ledger, carried across reconnects in the handshake
// payload, is what makes non-idempotent operations apply exactly once.

// frameSum is the one CRC32 (IEEE) used by every integrity check in the
// conduit. Sections are summed in order, as if concatenated.
func frameSum(sections ...[]byte) uint32 {
	var sum uint32
	for _, s := range sections {
		sum = crc32.Update(sum, crc32.IEEETable, s)
	}
	return sum
}

// connMsgSum computes a UD control frame's checksum with the CRC field
// treated as zero.
func connMsgSum(b []byte) uint32 {
	var zero [4]byte
	return frameSum(b[:connMsgCRCOff], zero[:], b[connMsgHdr:])
}

// rcTrailerLen is the size of the RC integrity trailer:
// [seq u64][epoch u32][crc u32].
const rcTrailerLen = 8 + 4 + 4

// appendRCTrailer frames an RC payload: it returns frame plus the integrity
// trailer. The input slice is never modified in place (the append reallocates
// whenever the caller handed over an exact-size buffer, and retained frames
// are treated as immutable once posted).
func appendRCTrailer(frame []byte, seq uint64, epoch uint32) []byte {
	off := len(frame)
	out := make([]byte, off+rcTrailerLen)
	copy(out, frame)
	binary.LittleEndian.PutUint64(out[off:], seq)
	binary.LittleEndian.PutUint32(out[off+8:], epoch)
	binary.LittleEndian.PutUint32(out[off+12:], frameSum(out[:off+12]))
	return out
}

// splitRCTrailer verifies and strips the integrity trailer. ok is false when
// the frame is too short or the checksum does not match — the caller must
// treat the whole frame as garbage (even seq/epoch are untrustworthy).
func splitRCTrailer(frame []byte) (inner []byte, seq uint64, epoch uint32, ok bool) {
	if len(frame) < rcTrailerLen {
		return nil, 0, 0, false
	}
	off := len(frame) - rcTrailerLen
	if binary.LittleEndian.Uint32(frame[off+12:]) != frameSum(frame[:off+12]) {
		return nil, 0, 0, false
	}
	return frame[:off], binary.LittleEndian.Uint64(frame[off:]), binary.LittleEndian.Uint32(frame[off+8:]), true
}

// encodeSeqPayload/decodeSeqPayload carry a cumulative sequence number in the
// payload of a data-plane ACK/NAK control frame.
func encodeSeqPayload(seq uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, seq)
	return b
}

func decodeSeqPayload(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}
