//go:build !race

package gasnet

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
