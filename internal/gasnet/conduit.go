// Package gasnet implements the communication conduit the OpenSHMEM and
// mini-MPI runtimes share, modeled on the GASNet mvapich2x conduit the paper
// modifies: an active-message core API, an extended one-sided RMA API, and —
// the paper's central subject — two connection-management strategies:
//
//   - Static: every PE establishes a reliable connection to every PE
//     (including itself) during attach, after a blocking PMI exchange of UD
//     endpoint addresses. This is the baseline ("Current Design").
//   - OnDemand: PEs create only a UD endpoint at attach; reliable
//     connections are established lazily by a two-phase UD handshake
//     (REQ/REP, plus the RTU ready-to-use leg) the first time a pair
//     communicates. Opaque upper-layer payloads (OpenSHMEM's segment
//     triplets) piggyback on REQ and REP, and UD endpoint info is exchanged
//     with a non-blocking PMIX_Iallgather whose completion is deferred to
//     first communication ("Proposed Design").
//
// The conduit also provides the intra-node barrier the paper substitutes for
// global barriers during initialization (section IV-E).
package gasnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

// timeNow is a test seam for the retransmission backoff clock.
var timeNow = time.Now

// Mode selects the connection-management strategy.
type Mode uint8

const (
	// Static is the fully connected baseline.
	Static Mode = iota
	// OnDemand establishes connections lazily.
	OnDemand
)

func (m Mode) String() string {
	if m == Static {
		return "static"
	}
	return "on-demand"
}

// Handler is an active-message handler. It runs on the conduit's progress
// goroutine and must not block or invoke blocking conduit operations (Get,
// Quiet, barriers); it may send further AMRequests. at is the virtual time
// at which the message has been dispatched at the receiver.
type Handler func(src int, args [4]uint64, payload []byte, at int64)

// Config wires a conduit to its process, node and job.
type Config struct {
	Rank   int
	NProcs int
	Node   int // node index (informational; the HCA defines locality)
	PPN    int // processes per node

	HCA   *ib.HCA
	PMI   *pmi.Client
	Clock *vclock.Clock

	Mode Mode
	// BlockingPMI forces the Put-Fence-Get endpoint exchange even in
	// on-demand mode (the paper's section IV-D ablation). Static mode always
	// uses the blocking exchange.
	BlockingPMI bool

	// NodeBarrier synchronizes the PEs of one node (shared-memory barrier).
	NodeBarrier *vclock.VBarrier

	// OnEvent, if set, receives connection-lifecycle trace events
	// (initiate, req-recv, req-held, ready-client, ready-server, collision,
	// retransmit) with the virtual time they occurred at. Must be cheap and
	// non-blocking; invoked from both the application and manager threads.
	OnEvent func(kind string, peer int, vt int64)

	// Obs is this PE's observability recorder (nil/obs.Nop disables all
	// recording at near-zero cost). Connection-lifecycle events mirror into
	// it alongside OnEvent, and the conduit records connect-latency,
	// first-op-penalty and heartbeat-RTT histograms when metrics are on.
	Obs *obs.PE

	// ConnectPayload, if set, supplies the opaque payload appended to
	// connection REQ/REP messages (OpenSHMEM serializes its segment
	// <address,size,rkey> triplets here). OnConnectPayload consumes the
	// payload received from a peer; it is invoked exactly once per peer,
	// before any pending traffic to or from that peer is released.
	ConnectPayload   func() []byte
	OnConnectPayload func(peer int, payload []byte, at int64)

	// MaxLiveRC, when positive, caps the live RC queue pairs on this PE's
	// HCA (shared by the node's PEs, like the HCA endpoint cache it models).
	// When a new connection would exceed the cap, this PE evicts its own
	// least-recently-used idle connection; the evicted peer reconnects on
	// demand through the normal handshake. Zero means unbounded. On-demand
	// mode only: the static baseline is fully connected by definition and
	// has no reconnect path, so it ignores the cap.
	MaxLiveRC int

	// Retrans overrides the real-time retransmission timing (zero fields
	// keep the defaults). Slow CI runs and fault-injection harnesses tune
	// it; fault-free runs never arm the timer at all.
	Retrans RetransConfig

	// Heartbeat tunes the UD-heartbeat failure detector (failure.go). The
	// detector arms itself only when the fabric has PE-failure injections
	// scheduled, or when Heartbeat.Enable is set; fault-free runs never
	// probe and record zero detector activity.
	Heartbeat HeartbeatConfig
}

// Stats counts the per-PE resource usage and traffic that feed the paper's
// Table I and Figure 9.
type Stats struct {
	QPsCreated       int   // all queue pairs this PE created (UD + RC, incl. discarded)
	RCQPsCreated     int   // reliable endpoints created
	ConnsEstablished int   // connections that reached the ready state
	Retransmits      int   // UD handshake retransmissions
	AMsSent          int64 // active messages sent
	PutsIssued       int64
	GetsIssued       int64
	AtomicsIssued    int64
	BytesPut         int64
	BytesGot         int64
	PeersContacted   int // distinct peers this PE sent anything to

	// Resilience counters (connection-lifecycle fault recovery).
	LinkFaults int // broken RC connections this PE detected and tore down
	Reconnects int // connections re-established after a fault or eviction
	Evictions  int // idle connections evicted to honor the live-QP cap

	// Failure-plane counters (PE-failure detection and job abort).
	PEFailures       int // peers this PE's detector confirmed dead
	HeartbeatsSent   int // explicit heartbeat probes sent
	FalseSuspicions  int // suspicions cleared by a late sign of life
	AbortsPropagated int // abort notices this PE broadcast to peers

	// Control-plane counters (PMI resilience and checksummed UD frames).
	PMIRetries        int // PMI ops retried after a transient fault
	PMITimeouts       int // PMI ops that failed permanently (budget exhausted)
	FallbackExchanges int // Iallgather exchanges degraded to Put-Fence-Get
	CorruptFrames     int // UD control frames discarded by checksum

	// Resource-pressure counters (finite adapter budgets, backpressure and
	// degradation ladders). All zero on an unbudgeted fault-free run.
	CreditStalls     int // sends that blocked on a zero receive-credit window
	RNRNaks          int // sends NAKed receiver-not-ready and retried
	AllocFailures    int // QP/MR allocations refused (budget or injected)
	BounceFallbacks  int // heap registrations degraded to bounce-buffering
	AdmissionRejects int // connection REQs this PE rejected at its QP cap

	// Data-plane integrity counters (session.go/integrity.go): RC payload
	// faults detected and the exactly-once recovery machinery that absorbed
	// them. All zero on a fault-free run.
	RCCorruptFrames      int // RC payloads damaged in flight (trailer/link CRC)
	TornWrites           int // RDMA writes torn mid-transfer by a link fault
	DupOpsSuppressed     int // duplicate framed ops suppressed by the dedup ledger
	IntegrityRetransmits int // framed sends replayed after NAK, RTO or reconnect

	// Multi-rail fault-plane counters (rail failures, path migration and
	// network-partition tolerance). All zero on a single-rail fault-free run.
	PathMigrations       int // RC QPs migrated to their alternate path (IB APM), no teardown
	RailFailovers        int // connections re-established on another rail after APM was impossible
	PartitionSuspensions int // peers suspended as partitioned instead of confirmed dead
	PartitionHeals       int // suspended peers recovered after their partition healed

	// Flows is this PE's row of the communication matrix: per-peer op and
	// byte counts split by kind (put/get/atomic/am/coll/barrier/ctrl),
	// sorted by peer. Nil unless obs.Config.Flows was enabled.
	Flows []obs.FlowEdge
}

type connState uint8

const (
	connNone       connState = iota
	connConnecting           // client: REQ sent, waiting for REP
	connAccepted             // server: REP sent, waiting for RTU
	connReady
)

type pendingWR struct {
	wr  ib.SendWR
	enq int64 // virtual enqueue time
}

type conn struct {
	state   connState
	qp      *ib.QP
	loopbk  *ib.QP // second endpoint of a self-connection
	peerUD  ib.Dest
	seq     uint32
	seqHi   uint32 // highest attempt ever used on this slot (never reused)
	attempt int
	firstTx int64     // virtual time of first REQ/REP transmission
	lastTx  time.Time // real time of last transmission (retransmit backoff)
	pending []pendingWR
	readyVT int64
	gotPay  bool // upper-layer payload already consumed

	epoch     uint64 // teardown generation, so racing fault reports are applied once
	everReady bool   // has reached ready at least once (re-ready counts as a reconnect)
	lastUse   uint64 // LRU stamp for idle-connection eviction

	// creditRel is the sender-side receive-credit window against this peer:
	// the virtual times at which in-flight messages release their receive
	// slot at the target (mirror of the target QP's rqRel). Only maintained
	// when Limits.RQDepth is set. Sorted: RC sends on one conn are monotone.
	creditRel []int64
	// rejCount counts admission REJs this client has absorbed for the slot
	// across its lifetime (survives teardown/reuse); a runaway REJ loop is
	// converted to a resource-exhaustion abort rather than spinning forever.
	rejCount int
	// rejWait marks a connecting client whose queue pair was released after
	// an admission REJ (IB CM semantics: a rejected request frees resources
	// on both sides — holding the QP through backoff would pin the very
	// budget the server is waiting to see freed, deadlocking two mutually
	// rejecting adapters). The retransmission timer re-allocates an endpoint
	// and re-sends the REQ under a fresh attempt number.
	rejWait bool

	// Data-plane session state (session.go; maintained only on lossy
	// fabrics). Deliberately NOT reset by teardownLocked: sequences, retained
	// frames and the dedup ledger span connection incarnations — that
	// continuity is the whole point.
	txSeq    uint64       // last transfer sequence framed to this peer
	unacked  []retainedTx // framed sends awaiting cumulative ACK, in seq order
	rxMax    uint64       // highest in-order sequence executed from this peer
	lastData time.Time    // real time of last framed post (RTO baseline)
	// dataAttempt counts consecutive RTO-driven replays without cumulative
	// ACK progress; the timeout backs off exponentially on it (rtoFor), so a
	// peer that will never acknowledge (wedged software, live hardware) does
	// not generate fabric traffic forever and defeat stall detection.
	dataAttempt int
}

// Conduit is one PE's endpoint on the fabric.
type Conduit struct {
	cfg    Config
	model  *vclock.CostModel
	clk    *vclock.Clock
	mgrClk *vclock.Clock // the connection-manager "thread" clock (paper Fig. 4)

	udQP *ib.QP
	cq   *ib.CQ

	handlers   [256]Handler // guarded by connMu
	deferredAM map[uint8][]deferredAM

	connMu      sync.Mutex
	connCond    *sync.Cond
	connSlice   []*conn // static mode: dense table
	connMap     map[int]*conn
	nReady      int
	lastReadyVT int64  // max virtual time any connection became ready
	useSeq      uint64 // LRU counter for eviction (guarded by connMu)
	heldReqs    []heldReq
	timerOn     bool
	timer       *time.Timer
	retrans     RetransConfig // resolved retransmission timing

	waiterMu    sync.Mutex
	waiters     map[uint64]chan ib.Completion
	pendingGets map[uint64][]byte // non-blocking-implicit gets by WRID
	wrid        atomic.Uint64

	outMu       sync.Mutex
	outCond     *sync.Cond
	outstanding int
	unackedWin  int // framed sends retained but not yet cumulatively ACKed
	lastPutVT   int64

	// Data-plane session layer (session.go): armed only on lossy fabrics.
	lossy      bool
	qpPeer     map[uint32]int // local RC QPN -> peer rank (guarded by connMu)
	atomicMu   sync.Mutex
	atomicWait map[uint64]chan atomicResult
	atomicTok  uint64

	// udMu single-flights endpoint resolution: the app thread, handshake
	// recovery goroutines and the heartbeat prober can all race into
	// resolveUD, and the fallback path below runs a blocking Put-Fence that
	// must execute exactly once.
	udMu      sync.Mutex
	udVals    []string
	udOp      *pmi.AllgatherOp
	udFromKVS bool
	exchanged atomic.Bool
	ready     atomic.Bool

	statMu sync.Mutex
	stats  Stats
	peers  map[int]struct{}
	xpath  string // endpoint-exchange path actually taken (guarded by statMu)

	// Observability (nil-safe: a disabled plane leaves all of these nil).
	obs      *obs.PE
	hConnect *obs.Hist // client-perceived connect latency (REQ tx -> ready)
	hFirstOp *obs.Hist // queued-op penalty (enqueue -> connection ready)
	hHBRTT   *obs.Hist // heartbeat probe -> ack round trip
	// Gauge series (per-rank instances) and the job's incident ledger.
	gRetFrames *obs.Gauge  // retained (unacked) session frames
	gRetBytes  *obs.Gauge  // retained session frame bytes
	gCredits   *obs.Gauge  // receive-credit slots in flight
	gSuspect   *obs.Gauge  // peers currently under suspicion
	led        *obs.Ledger // causal incident ledger (nil-safe)

	// Failure detector and abort plane (failure.go).
	hb        HeartbeatConfig // resolved heartbeat timing
	hbArmed   bool
	hbMu      sync.Mutex
	hbTimer   *time.Timer
	health    map[int]*peerHealth // guarded by hbMu
	deadPeers map[int]bool        // guarded by connMu
	selfState atomic.Int32        // selfAlive/selfKilled/selfWedged
	abortMu   sync.Mutex
	abortErr  error
	abortCh   chan struct{}
	onAbort   []func(error)

	closed    atomic.Bool
	closeOnce sync.Once
	closeCh   chan struct{}
	wg        sync.WaitGroup
}

// New creates the conduit, its UD endpoint and its progress goroutine. The
// UD QP creation cost is charged to the PE's clock.
func New(cfg Config) *Conduit {
	if cfg.NProcs <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.NProcs {
		panic(fmt.Sprintf("gasnet: bad rank/nprocs %d/%d", cfg.Rank, cfg.NProcs))
	}
	c := &Conduit{
		cfg:     cfg,
		model:   cfg.HCA.Fabric().Model(),
		clk:     cfg.Clock,
		mgrClk:  vclock.NewClock(cfg.Clock.Now()),
		cq:      ib.NewCQ(),
		waiters: make(map[uint64]chan ib.Completion),
		peers:   make(map[int]struct{}),
		closeCh: make(chan struct{}),
		retrans: cfg.Retrans.withDefaults(),
		obs:     cfg.Obs,
		lossy:   cfg.HCA.Fabric().Lossy(),
	}
	if c.lossy {
		c.qpPeer = make(map[uint32]int)
		c.atomicWait = make(map[uint64]chan atomicResult)
		// The session layer's own active messages (framed atomics) use the
		// reserved handler ids; installed before the progress goroutine runs.
		c.handlers[amAtomicReq] = c.handleAtomicReq
		c.handlers[amAtomicRep] = c.handleAtomicRep
	}
	c.hConnect = c.obs.Hist("gasnet.connect_ns")
	c.hFirstOp = c.obs.Hist("gasnet.first_op_penalty_ns")
	c.hHBRTT = c.obs.Hist("gasnet.heartbeat_rtt_ns")
	c.gRetFrames = c.obs.Gauge("gasnet.retained_frames")
	c.gRetBytes = c.obs.Gauge("gasnet.retained_bytes")
	c.gCredits = c.obs.Gauge("gasnet.credits_in_flight")
	c.gSuspect = c.obs.Gauge("gasnet.suspected_peers")
	c.led = c.obs.Ledger()
	c.connCond = sync.NewCond(&c.connMu)
	c.outCond = sync.NewCond(&c.outMu)
	if cfg.Mode == Static {
		c.connSlice = make([]*conn, cfg.NProcs)
	} else {
		c.connMap = make(map[int]*conn)
	}
	udQP, err := cfg.HCA.TryCreateQP(ib.UD, c.clk, nil, c.cq)
	if err != nil {
		// No control endpoint means no handshakes, no heartbeats, no in-band
		// abort: the PE can never make progress. Report out-of-band (the only
		// channel that exists yet) and die with the exhaustion code.
		c.stats.AllocFailures++
		ae := &AbortError{Origin: cfg.Rank, Dead: -1, Code: ExitResourceExhausted,
			Reason: fmt.Sprintf("rank %d: UD control endpoint allocation failed: %v", cfg.Rank, err)}
		cfg.PMI.RaiseAbort(pmi.AbortNotice{Origin: ae.Origin, Dead: ae.Dead, Code: ae.Code, Reason: ae.Reason})
		panic(fmt.Errorf("gasnet: attach: %w", ae))
	}
	c.udQP = udQP
	c.udQP.SetObs(c.obs)
	c.obs.Emit(c.clk.Now(), obs.LayerIB, "qp-create-ud", -1, 0)
	c.countQP(ib.UD)
	mustQP(c.udQP.ToInit())
	mustQP(c.udQP.ToRTR(ib.Dest{}))
	mustQP(c.udQP.ToRTS())
	c.hbInit()
	if cfg.Mode != Static {
		// Cooperative adapter-wide eviction: siblings sharing this HCA may
		// ask us to release an idle RC endpoint when their allocations stall.
		// The static baseline has no reconnect path, so it never volunteers.
		cfg.HCA.RegisterRelief(c.reliefEvict)
	}
	c.wg.Add(1)
	go c.progress()
	return c
}

func mustQP(err error) {
	if err != nil {
		panic("gasnet: qp setup: " + err.Error())
	}
}

// Rank returns this PE's rank.
func (c *Conduit) Rank() int { return c.cfg.Rank }

// NProcs returns the job size.
func (c *Conduit) NProcs() int { return c.cfg.NProcs }

// Mode returns the connection strategy in use.
func (c *Conduit) Mode() Mode { return c.cfg.Mode }

// Clock returns the PE's virtual clock.
func (c *Conduit) Clock() *vclock.Clock { return c.clk }

// Obs returns the PE's observability recorder (obs.Nop when disabled), so
// layers built on the conduit (mpi, shmem) share one recorder per PE.
func (c *Conduit) Obs() *obs.PE { return c.obs }

// UDAddr returns this PE's UD endpoint address.
func (c *Conduit) UDAddr() ib.Dest { return c.udQP.Addr() }

// SetReady marks this PE willing to accept incoming connection requests
// (i.e. its segments are registered). Requests that arrived earlier were
// held and are served now, at this PE's current virtual time — the paper's
// section IV-E treatment of early arrivals ("the reply message is held
// until the server is ready").
//
// The "conn-req-held" trace event is emitted here rather than at arrival,
// and only for requests whose virtual arrival time genuinely precedes this
// PE's ready time: a request that arrived early in *real* time but late in
// *virtual* time is a scheduling artifact, and tracing it would make the
// trace depend on the goroutine schedule.
func (c *Conduit) SetReady() {
	c.mgrClk.AdvanceTo(c.clk.Now())
	readyVT := c.clk.Now()
	c.ready.Store(true)
	c.connMu.Lock()
	held := c.heldReqs
	c.heldReqs = nil
	c.connMu.Unlock()
	// Replay in virtual-arrival order, not wall-arrival order: concurrent
	// early requests land in heldReqs in goroutine-schedule order, and the
	// replay mutates shared manager state (eviction LRU, connection slots),
	// so a schedule-dependent order would leak into traces and the flow
	// matrix. (src, seq) breaks VT ties deterministically.
	sort.Slice(held, func(i, j int) bool {
		a, b := held[i], held[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.m.SrcRank != b.m.SrcRank {
			return a.m.SrcRank < b.m.SrcRank
		}
		return a.m.Seq < b.m.Seq
	})
	for _, h := range held {
		if h.at < readyVT {
			c.event("conn-req-held", int(h.m.SrcRank), h.at)
		}
		// Replay on a per-request service clock starting at the later of the
		// request's arrival and our ready time, so the replayed handshake's
		// timestamps do not depend on the wall order the requests landed in.
		svc := vclock.NewClock(readyVT)
		svc.AdvanceTo(h.at)
		svc.Advance(c.model.ConnReqProcess)
		c.handleReq(h.m, h.at, svc)
		c.mgrClk.AdvanceTo(svc.Now())
	}
}

// ExchangeEndpoints publishes this PE's UD endpoint out-of-band. In static
// or blocking mode it performs the Put-Fence sequence (the Fence cost lands
// on the critical path); otherwise it launches a PMIX_Iallgather whose
// completion is deferred until the first connection attempt needs it.
//
// A non-nil return means the blocking exchange failed permanently: the
// control plane is unreachable and the job has been aborted (the error is
// the *AbortError, exit code ExitPMIFailure). The non-blocking launch never
// fails here — a lost exchange surfaces at resolveUD, where the fallback
// ladder runs.
func (c *Conduit) ExchangeEndpoints() error {
	val := encodeDest(c.udQP.Addr())
	if c.cfg.Mode == Static || c.cfg.BlockingPMI {
		if err := c.cfg.PMI.Put(pmi.KeyFor("ud", c.cfg.Rank), val); err != nil {
			return c.pmiFail("blocking endpoint exchange (put)", err)
		}
		if err := c.cfg.PMI.Fence(); err != nil {
			if aerr := c.Err(); aerr != nil {
				return aerr // the fence was released by someone else's abort
			}
			return c.pmiFail("blocking endpoint exchange (fence)", err)
		}
		c.udFromKVS = true
		c.setExchangePath("put-fence-get")
	} else {
		c.udOp = c.cfg.PMI.IAllgather(val)
		c.setExchangePath("iallgather")
	}
	c.exchanged.Store(true)
	return nil
}

// pmiFail converts a permanent control-plane failure into a job abort with
// the distinct ExitPMIFailure exit code, so a dead launcher can never leave
// the job hanging: the abort propagates through the (assumed reliable) PMI
// kill channel and the in-band UD fan-out.
func (c *Conduit) pmiFail(what string, err error) error {
	ae := &AbortError{
		Origin: c.cfg.Rank, Dead: -1, Code: ExitPMIFailure,
		Reason: fmt.Sprintf("control plane failed on PE %d: %s: %v", c.cfg.Rank, what, err),
	}
	c.Abort(ae)
	return ae
}

// resolveUD returns a peer's UD endpoint, completing the out-of-band
// exchange if it is still outstanding (PMIX_Wait semantics). If the
// non-blocking exchange was lost to a control-plane fault, it transparently
// degrades to the blocking Put-Fence-Get ladder the paper's design replaced.
func (c *Conduit) resolveUD(peer int) (ib.Dest, error) {
	return c.resolveUDOpt(peer, true)
}

// resolveUDOpt is resolveUD with the fallback ladder optional: background
// callers (the heartbeat prober, the abort fan-out) must never block in a
// Put-Fence collective or advance the PE's critical-path clock, so they pass
// fallback=false and simply skip peers whose endpoints are unresolved.
func (c *Conduit) resolveUDOpt(peer int, fallback bool) (ib.Dest, error) {
	if !c.exchanged.Load() {
		return ib.Dest{}, fmt.Errorf("gasnet: endpoint exchange not started")
	}
	if fallback {
		c.udMu.Lock()
	} else if !c.udMu.TryLock() {
		// A resolution (possibly the blocking fallback collective) is in
		// flight on another goroutine — and a failed fallback aborts the job
		// from *inside* the critical section, whose fan-out lands back here.
		// Background callers skip rather than wait (or deadlock).
		return ib.Dest{}, fmt.Errorf("gasnet: endpoint resolution in flight for rank %d", peer)
	}
	defer c.udMu.Unlock()
	if !c.udFromKVS && c.udVals == nil {
		vals, err := c.udOp.WaitErr(c.cfg.PMI)
		switch {
		case err == nil:
			c.udVals = vals
		case errors.Is(err, pmi.ErrAborted):
			if aerr := c.Err(); aerr != nil {
				return ib.Dest{}, aerr
			}
			return ib.Dest{}, fmt.Errorf("gasnet: endpoint exchange aborted")
		case !fallback:
			return ib.Dest{}, fmt.Errorf("gasnet: endpoint exchange lost: %w", err)
		default:
			// Graceful degradation: the non-blocking allgather is lost for
			// every participant (the lost state is shared and sticky), so all
			// PEs converge here and re-run the exchange as the blocking
			// Put-Fence-Get sequence. Only a second permanent failure aborts.
			if ferr := c.fallbackExchangeLocked(err); ferr != nil {
				return ib.Dest{}, ferr
			}
		}
	}
	if c.udFromKVS {
		s, err := c.cfg.PMI.Lookup(pmi.KeyFor("ud", peer))
		if err != nil {
			if errors.Is(err, pmi.ErrTimeout) && fallback {
				return ib.Dest{}, c.pmiFail(fmt.Sprintf("endpoint lookup for rank %d", peer), err)
			}
			// Keep the typed cause visible: "never published" points at a
			// startup bug, "lost to injected server crash" at the fault plane.
			return ib.Dest{}, fmt.Errorf("gasnet: no UD endpoint for rank %d: %w", peer, err)
		}
		return decodeDest(s)
	}
	return decodeDest(c.udVals[peer])
}

// fallbackExchangeLocked re-publishes this PE's UD endpoint through the
// blocking Put-Fence path after the Iallgather was lost. Caller holds udMu.
// On success later lookups read the KVS directly (udFromKVS). A permanent
// failure of the fallback itself aborts the job (ExitPMIFailure).
func (c *Conduit) fallbackExchangeLocked(cause error) error {
	now := c.clk.Now()
	c.event("pmi-fallback", -1, now)
	c.obs.Emit(now, obs.LayerPMI, "pmi-fallback", -1, 0,
		obs.Attr{Key: "cause", Val: cause.Error()})
	c.led.Act("pmi", c.cfg.Rank, now, "fallback-exchange")
	val := encodeDest(c.udQP.Addr())
	if err := c.cfg.PMI.Put(pmi.KeyFor("ud", c.cfg.Rank), val); err != nil {
		return c.pmiFail("fallback endpoint exchange (put)", err)
	}
	if err := c.cfg.PMI.Fence(); err != nil {
		if aerr := c.Err(); aerr != nil {
			return aerr
		}
		return c.pmiFail("fallback endpoint exchange (fence)", err)
	}
	c.udFromKVS = true
	c.statMu.Lock()
	c.stats.FallbackExchanges++
	c.statMu.Unlock()
	c.setExchangePath("put-fence-get (fallback)")
	return nil
}

// setExchangePath records which endpoint-exchange path actually ran.
func (c *Conduit) setExchangePath(p string) {
	c.statMu.Lock()
	c.xpath = p
	c.statMu.Unlock()
}

// ExchangePath reports which endpoint-exchange path this PE ended up on:
// "iallgather", "put-fence-get", or "put-fence-get (fallback)" when the
// non-blocking exchange was lost and the conduit degraded gracefully.
func (c *Conduit) ExchangePath() string {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.xpath
}

// deferredAM is an active message that arrived before its handler was
// registered (e.g. MPI traffic reaching a PE still wiring up its hybrid
// layer). It is replayed, in arrival order, at registration.
type deferredAM struct {
	src     int
	args    [4]uint64
	payload []byte
	at      int64
}

// RegisterHandler installs an active-message handler and replays any
// messages for this id that arrived before registration.
func (c *Conduit) RegisterHandler(id uint8, h Handler) {
	if id >= amAtomicReq {
		panic(fmt.Sprintf("gasnet: handler id %d is reserved for the conduit", id))
	}
	c.connMu.Lock()
	c.handlers[id] = h
	queued := c.deferredAM[id]
	delete(c.deferredAM, id)
	c.connMu.Unlock()
	for _, m := range queued {
		h(m.src, m.args, m.payload, m.at)
	}
}

// AMRequest sends an active message. It never blocks on the network: if no
// connection to the peer exists yet it is queued behind the on-demand
// handshake. The message is attributed to the flow matrix as generic AM
// traffic; layers with a more precise classification (collective rounds,
// barriers) use AMRequestKind.
func (c *Conduit) AMRequest(peer int, handler uint8, args [4]uint64, payload []byte) error {
	return c.AMRequestKind(peer, handler, args, payload, obs.FlowAM)
}

// AMRequestKind is AMRequest with an explicit flow-matrix classification
// for the message (obs.FlowAM, obs.FlowColl, obs.FlowBarrier).
func (c *Conduit) AMRequestKind(peer int, handler uint8, args [4]uint64, payload []byte, kind obs.FlowKind) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.notePeer(peer)
	c.statMu.Lock()
	c.stats.AMsSent++
	c.statMu.Unlock()
	data := encodeAM(handler, c.cfg.Rank, args, payload)
	c.obs.Flow(peer, kind, int64(len(data)))
	return c.post(peer, ib.SendWR{Op: ib.OpSend, Data: data, NoSendCompletion: true}, false)
}

// AMRequestFenced is AMRequest with Quiet-fence semantics: the send counts
// toward the outstanding-operation window until it has been posted to the
// wire, so a Quiet issued afterwards cannot return while the message is
// still queued behind an in-flight handshake. Put-with-signal uses it for
// the signal message, whose delivery OpenSHMEM requires Quiet to fence.
func (c *Conduit) AMRequestFenced(peer int, handler uint8, args [4]uint64, payload []byte) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.notePeer(peer)
	c.statMu.Lock()
	c.stats.AMsSent++
	c.statMu.Unlock()
	data := encodeAM(handler, c.cfg.Rank, args, payload)
	c.obs.Flow(peer, obs.FlowAM, int64(len(data)))
	c.outMu.Lock()
	c.outstanding++
	c.outMu.Unlock()
	wr := ib.SendWR{Op: ib.OpSend, WRID: c.wrid.Add(1), Data: data}
	if err := c.post(peer, wr, false); err != nil {
		c.outMu.Lock()
		c.outstanding--
		c.outMu.Unlock()
		return err
	}
	return nil
}

// Put issues a one-sided RDMA write of data into (raddr, rkey) at peer. It
// returns once the source buffer is reusable; remote completion is deferred
// to Quiet.
func (c *Conduit) Put(peer int, raddr uint64, rkey uint32, data []byte) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.notePeer(peer)
	c.statMu.Lock()
	c.stats.PutsIssued++
	c.stats.BytesPut += int64(len(data))
	c.statMu.Unlock()
	c.obs.Flow(peer, obs.FlowPut, int64(len(data)))
	c.outMu.Lock()
	c.outstanding++
	c.outMu.Unlock()
	wr := ib.SendWR{Op: ib.OpRDMAWrite, WRID: c.wrid.Add(1), RemoteAddr: raddr, RKey: rkey, Data: data}
	if err := c.post(peer, wr, true); err != nil {
		c.outMu.Lock()
		c.outstanding--
		c.outMu.Unlock()
		return err
	}
	return nil
}

// GetNBI issues a non-blocking-implicit RDMA read: it returns immediately
// and buf is guaranteed filled once Quiet returns (shmem_getmem_nbi
// semantics).
func (c *Conduit) GetNBI(peer int, raddr uint64, rkey uint32, buf []byte) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.notePeer(peer)
	c.statMu.Lock()
	c.stats.GetsIssued++
	c.stats.BytesGot += int64(len(buf))
	c.statMu.Unlock()
	c.obs.Flow(peer, obs.FlowGet, int64(len(buf)))
	wr := ib.SendWR{Op: ib.OpRDMARead, WRID: c.wrid.Add(1), RemoteAddr: raddr, RKey: rkey, Len: len(buf)}
	c.waiterMu.Lock()
	if c.pendingGets == nil {
		c.pendingGets = make(map[uint64][]byte)
	}
	c.pendingGets[wr.WRID] = buf
	c.waiterMu.Unlock()
	c.outMu.Lock()
	c.outstanding++
	c.outMu.Unlock()
	if err := c.post(peer, wr, true); err != nil {
		c.waiterMu.Lock()
		delete(c.pendingGets, wr.WRID)
		c.waiterMu.Unlock()
		c.outMu.Lock()
		c.outstanding--
		c.outMu.Unlock()
		return err
	}
	return nil
}

// Get issues a blocking RDMA read of len(buf) bytes from (raddr, rkey) at
// peer into buf.
func (c *Conduit) Get(peer int, raddr uint64, rkey uint32, buf []byte) error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	c.notePeer(peer)
	c.statMu.Lock()
	c.stats.GetsIssued++
	c.stats.BytesGot += int64(len(buf))
	c.statMu.Unlock()
	c.obs.Flow(peer, obs.FlowGet, int64(len(buf)))
	wr := ib.SendWR{Op: ib.OpRDMARead, WRID: c.wrid.Add(1), RemoteAddr: raddr, RKey: rkey, Len: len(buf)}
	comp, err := c.postWait(peer, wr)
	if err != nil {
		return err
	}
	copy(buf, comp.Data)
	return nil
}

// FetchAdd atomically adds delta to the remote little-endian uint64 at
// (raddr, rkey) and returns the previous value.
func (c *Conduit) FetchAdd(peer int, raddr uint64, rkey uint32, delta uint64) (uint64, error) {
	return c.atomicOp(peer, ib.SendWR{Op: ib.OpFetchAdd, RemoteAddr: raddr, RKey: rkey, Add: delta})
}

// CompareSwap atomically replaces the remote value with swap if it equals
// compare, returning the previous value.
func (c *Conduit) CompareSwap(peer int, raddr uint64, rkey uint32, compare, swap uint64) (uint64, error) {
	return c.atomicOp(peer, ib.SendWR{Op: ib.OpCmpSwap, RemoteAddr: raddr, RKey: rkey, Compare: compare, Swap: swap})
}

// Swap atomically replaces the remote value, returning the previous value.
func (c *Conduit) Swap(peer int, raddr uint64, rkey uint32, swap uint64) (uint64, error) {
	return c.atomicOp(peer, ib.SendWR{Op: ib.OpSwap, RemoteAddr: raddr, RKey: rkey, Swap: swap})
}

func (c *Conduit) atomicOp(peer int, wr ib.SendWR) (uint64, error) {
	if err := c.checkAlive(); err != nil {
		return 0, err
	}
	c.notePeer(peer)
	c.statMu.Lock()
	c.stats.AtomicsIssued++
	c.statMu.Unlock()
	c.obs.Flow(peer, obs.FlowAtomic, 8) // atomics operate on one uint64
	if c.lossy {
		// On a lossy fabric atomics ride framed active messages so the dedup
		// ledger guards them: a fabric-level atomic whose ACK is lost would be
		// re-executed by a replay, double-applying the side effect.
		return c.atomicOverAM(peer, wr)
	}
	wr.WRID = c.wrid.Add(1)
	comp, err := c.postWait(peer, wr)
	if err != nil {
		return 0, err
	}
	return comp.Old, nil
}

// postWait posts a work request and blocks for its completion, advancing the
// PE clock to the completion's virtual time.
func (c *Conduit) postWait(peer int, wr ib.SendWR) (ib.Completion, error) {
	ch := make(chan ib.Completion, 1)
	c.waiterMu.Lock()
	c.waiters[wr.WRID] = ch
	c.waiterMu.Unlock()
	if err := c.post(peer, wr, true); err != nil {
		c.waiterMu.Lock()
		delete(c.waiters, wr.WRID)
		c.waiterMu.Unlock()
		return ib.Completion{}, err
	}
	var comp ib.Completion
	select {
	case comp = <-ch:
	case <-c.abortCh:
		// The job aborted while we were blocked; the completion may never
		// arrive (the peer is dead or the fabric is being torn down).
		c.waiterMu.Lock()
		delete(c.waiters, wr.WRID)
		c.waiterMu.Unlock()
		return ib.Completion{}, c.Err()
	}
	c.clk.AdvanceTo(comp.VTime)
	if comp.Status != ib.StatusOK {
		if comp.Status == ib.StatusFlushed && c.PeerDead(peer) {
			return comp, ErrPeerDead
		}
		return comp, fmt.Errorf("gasnet: remote operation failed: %v", comp.Status)
	}
	return comp, nil
}

// Quiet blocks until all outstanding Puts have completed remotely
// (shmem_quiet semantics) and advances the clock to the last completion.
// On a killed/wedged PE or after a job abort it panics with the liveness
// error, like the upper layers' own blocking waits.
func (c *Conduit) Quiet() {
	if err := c.checkAlive(); err != nil {
		panic(err)
	}
	c.outMu.Lock()
	for c.outstanding > 0 || c.unackedWin > 0 {
		if err := c.LivenessErr(); err != nil {
			c.outMu.Unlock()
			panic(err)
		}
		c.outCond.Wait()
	}
	v := c.lastPutVT
	c.outMu.Unlock()
	c.clk.AdvanceTo(v)
}

// IntraNodeBarrier synchronizes the PEs of this node through the
// shared-memory barrier (paper section IV-E).
func (c *Conduit) IntraNodeBarrier() {
	rounds := int64(log2ceil(c.cfg.PPN))
	if rounds < 1 {
		rounds = 1
	}
	c.cfg.NodeBarrier.Wait(c.clk, rounds*c.model.IntraNodeLatency)
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Stats returns a snapshot of the PE's resource and traffic counters.
// RegisterHeap registers the PE's symmetric-heap backing with the adapter,
// running the pinned-memory degradation ladder: a refused registration
// (budget exceeded or injected allocation fault) falls back to a
// bounce-buffered region staged through the adapter's pre-registered slab;
// when even that path is closed the job aborts with ExitResourceExhausted —
// an OpenSHMEM PE without a registered heap can never serve remote memory.
func (c *Conduit) RegisterHeap(buf []byte) *ib.MR {
	mr, err := c.cfg.HCA.TryRegisterMR(buf, c.clk)
	if err == nil {
		return mr
	}
	c.statMu.Lock()
	c.stats.AllocFailures++
	c.statMu.Unlock()
	mr, berr := c.cfg.HCA.RegisterBounced(buf, c.clk)
	if berr == nil {
		c.statMu.Lock()
		c.stats.BounceFallbacks++
		c.statMu.Unlock()
		c.event("mr-bounce", -1, c.clk.Now())
		return mr
	}
	ae := &AbortError{Origin: c.cfg.Rank, Dead: -1, Code: ExitResourceExhausted,
		Reason: fmt.Sprintf("rank %d: heap registration failed (%v) with no bounce path (%v)", c.cfg.Rank, err, berr)}
	c.Abort(ae)
	panic(fmt.Errorf("gasnet: heap registration: %w", ae))
}

func (c *Conduit) Stats() Stats {
	c.statMu.Lock()
	s := c.stats
	s.PeersContacted = len(c.peers)
	c.statMu.Unlock()
	// The PMI client keeps its own retry/timeout tally; fold it in so the
	// launcher sees one per-PE resilience table.
	if c.cfg.PMI != nil {
		s.PMIRetries, s.PMITimeouts = c.cfg.PMI.RetryStats()
	}
	s.Flows = c.obs.FlowSnapshot()
	return s
}

// PeerSet returns the set of peers this PE has sent traffic to.
func (c *Conduit) PeerSet() map[int]struct{} {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	out := make(map[int]struct{}, len(c.peers))
	for p := range c.peers {
		out[p] = struct{}{}
	}
	return out
}

// event emits a trace event if tracing is enabled: to the legacy OnEvent
// callback and to the observability plane's event ring.
func (c *Conduit) event(kind string, peer int, vt int64) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(kind, peer, vt)
	}
	c.obs.Emit(vt, obs.LayerGasnet, kind, peer, 0)
}

func (c *Conduit) notePeer(peer int) {
	c.statMu.Lock()
	c.peers[peer] = struct{}{}
	c.statMu.Unlock()
	// Every peer we talk to is a peer whose death would strand us.
	c.MonitorPeer(peer)
}

func (c *Conduit) countQP(t ib.QPType) {
	c.statMu.Lock()
	c.stats.QPsCreated++
	if t == ib.RC {
		c.stats.RCQPsCreated++
	}
	c.statMu.Unlock()
}

// Close drains outstanding traffic and shuts down the progress goroutine.
// The drain matters: a send queued behind a still-in-flight handshake (for
// example the last barrier message before finalize) is only delivered once
// the handshake completes, so teardown must wait for it or the peer would
// block forever. Established connections and QPs are then left to the
// garbage collector, like process teardown.
func (c *Conduit) Close() {
	c.closeOnce.Do(func() {
		// An aborted (or killed/wedged) PE skips the drain: its queued work
		// was failed, not delivered, and waiting for a dead peer's handshake
		// would hang teardown forever.
		c.connMu.Lock()
		for c.hasPendingLocked() && c.Err() == nil {
			c.connCond.Wait()
		}
		c.connMu.Unlock()
		// On a lossy fabric the retained session windows must drain too: a
		// frame the peer NAKed (corrupt on delivery) has not executed, and
		// the peer cannot finish its own final barrier without the replay —
		// quitting now would take the RTO timer with us and strand it. The
		// wait is progress-bounded rather than absolute: a peer that already
		// executed everything (only the acknowledgements were lost) may have
		// closed and gone deaf, so once the retained count stops moving for
		// two maximum RTOs the leftover frames are presumed executed and
		// teardown proceeds. With a live peer that still needs the data the
		// count always moves: every RTO replays, the peer executes and acks.
		if c.lossy {
			patience := 2 * c.fullRTO()
			if patience < 100*time.Millisecond {
				patience = 100 * time.Millisecond
			}
			last, still := -1, time.Duration(0)
			for c.Err() == nil {
				c.outMu.Lock()
				n := c.unackedWin
				c.outMu.Unlock()
				if n == 0 {
					break
				}
				if n != last {
					last, still = n, 0
				} else if still >= patience {
					break
				}
				time.Sleep(time.Millisecond)
				still += time.Millisecond
			}
		}
		c.closed.Store(true)
		close(c.closeCh)
		c.hbStop()
		c.connMu.Lock()
		if c.timer != nil {
			c.timer.Stop()
		}
		c.connMu.Unlock()
		c.cq.Close()
		c.wg.Wait()
	})
}

// hasPendingLocked reports whether any connection is still being
// established or has queued traffic. Caller holds connMu.
func (c *Conduit) hasPendingLocked() bool {
	busy := func(cn *conn) bool {
		return cn != nil && (cn.state == connConnecting || cn.state == connAccepted || len(cn.pending) > 0)
	}
	if c.connSlice != nil {
		for _, cn := range c.connSlice {
			if busy(cn) {
				return true
			}
		}
		return false
	}
	for _, cn := range c.connMap {
		if busy(cn) {
			return true
		}
	}
	return false
}

// progress is the conduit's receive/progress loop: it dispatches UD control
// traffic (the connection manager), RC active messages, and send-side
// completions (routing them to blocked callers or the Quiet accounting).
func (c *Conduit) progress() {
	defer c.wg.Done()
	for {
		comp, ok := c.cq.Wait()
		if !ok {
			return
		}
		if comp.Recv {
			if comp.QPN == c.udQP.QPN() {
				c.handleControl(comp)
			} else {
				c.handleAM(comp)
			}
			continue
		}
		// Send-side completion.
		c.waiterMu.Lock()
		ch := c.waiters[comp.WRID]
		if ch != nil {
			delete(c.waiters, comp.WRID)
		}
		var nbiBuf []byte
		if ch == nil && comp.Op == ib.OpRDMARead {
			nbiBuf = c.pendingGets[comp.WRID]
			delete(c.pendingGets, comp.WRID)
		}
		c.waiterMu.Unlock()
		if ch != nil {
			if comp.Op == ib.OpRDMAWrite {
				// Puts with waiters are not used, but keep accounting exact.
				c.putDone(comp)
			}
			ch <- comp
			continue
		}
		if nbiBuf != nil {
			if comp.Status == ib.StatusOK {
				copy(nbiBuf, comp.Data)
			}
			c.putDone(comp) // counts toward Quiet like an implicit op
			continue
		}
		if comp.Op == ib.OpRDMAWrite {
			c.putDone(comp)
		}
		if comp.Op == ib.OpSend && comp.WRID != 0 {
			c.putDone(comp) // fenced AM: release its Quiet hold
		}
	}
}

func (c *Conduit) putDone(comp ib.Completion) {
	c.outMu.Lock()
	c.outstanding--
	if comp.VTime > c.lastPutVT {
		c.lastPutVT = comp.VTime
	}
	c.outMu.Unlock()
	c.outCond.Broadcast()
}

func (c *Conduit) handleAM(comp ib.Completion) {
	if c.arrivalFate(comp.VTime) != selfAlive {
		return // a killed or wedged PE's software dispatches nothing
	}
	data := comp.Data
	if c.lossy {
		// Session layer first: verify the integrity trailer and dedup before
		// a single byte of the frame reaches a handler.
		inner, ok := c.sessionAccept(comp)
		if !ok {
			return
		}
		data = inner
	}
	handler, src, args, payload, err := decodeAM(data)
	if err != nil {
		return
	}
	c.noteAlive(src)
	at := comp.VTime + c.model.AMProcess
	c.connMu.Lock()
	h := c.handlers[handler]
	if h == nil {
		if c.deferredAM == nil {
			c.deferredAM = make(map[uint8][]deferredAM)
		}
		c.deferredAM[handler] = append(c.deferredAM[handler],
			deferredAM{src: src, args: args, payload: payload, at: at})
		c.connMu.Unlock()
		return
	}
	c.connMu.Unlock()
	h(src, args, payload, at)
}
