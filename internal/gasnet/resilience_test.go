package gasnet

import (
	"sync"
	"testing"

	"goshmem/internal/ib"
)

// TestLinkFlapReconnectDeliversExactlyOnce injects exactly one RC link fault:
// the very first RC operation (the flush of the queued AM behind the
// handshake) fails, both queue pairs die, and the conduit must detect the
// fault, re-run the handshake with a fresh sequence number, and deliver the
// requeued message exactly once. The segment payload must not be re-consumed
// across the reconnect.
func TestLinkFlapReconnectDeliversExactlyOnce(t *testing.T) {
	fi := ib.NewFaultInjector(9)
	fi.FlapProb = 1.0
	fi.MaxFlaps = 1
	var evMu sync.Mutex
	var kinds []string
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, payloads: true, retrans: fastRetrans,
		onEvent: func(rank int, kind string, peer int, vt int64) {
			if rank == 0 && peer == 1 {
				evMu.Lock()
				kinds = append(kinds, kind)
				evMu.Unlock()
			}
		}})
	var mu sync.Mutex
	recv := 0
	pes[1].C.RegisterHandler(5, func(src int, a [4]uint64, p []byte, at int64) {
		mu.Lock()
		recv++
		mu.Unlock()
	})
	if err := pes[0].C.AMRequest(1, 5, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return recv >= 1
	})
	waitUntil(t, func() bool { return pes[0].C.Connected(1) })
	mu.Lock()
	if recv != 1 {
		t.Fatalf("message delivered %d times across the flap, want 1", recv)
	}
	mu.Unlock()
	if fi.Flaps() != 1 {
		t.Fatalf("injected flaps = %d, want 1", fi.Flaps())
	}
	st := pes[0].C.Stats()
	if st.LinkFaults < 1 {
		t.Fatalf("client LinkFaults = %d, want >= 1", st.LinkFaults)
	}
	if st.Reconnects < 1 {
		t.Fatalf("client Reconnects = %d, want >= 1", st.Reconnects)
	}
	pes[0].mu.Lock()
	if pes[0].payCount[1] != 1 {
		t.Fatalf("payload consumed %d times across reconnect, want 1", pes[0].payCount[1])
	}
	pes[0].mu.Unlock()
	// The lifecycle trace must show the fault being detected and a later
	// re-established connection, in that order.
	evMu.Lock()
	fault, readyAfter := -1, -1
	for i, k := range kinds {
		if k == "conn-link-fault" && fault < 0 {
			fault = i
		}
		if (k == "conn-ready-client" || k == "conn-ready-server") && fault >= 0 && readyAfter < 0 {
			readyAfter = i
		}
	}
	evMu.Unlock()
	if fault < 0 || readyAfter < 0 {
		t.Fatalf("trace lacks fault->reconnect sequence: %v", kinds)
	}
}

// TestEvictionUnderLiveQPCap puts six PEs on one HCA with a live-QP cap far
// below the full mesh: establishing all-to-all traffic must evict idle
// connections (LRU) instead of failing, and every message must still arrive
// exactly once — evicted peers reconnect transparently on their next send.
func TestEvictionUnderLiveQPCap(t *testing.T) {
	const n = 6
	const cap = 8 // full mesh would need n*(n-1) = 30 live RC QPs on the HCA
	pes, run := startJob(t, jobOpts{n: n, ppn: n, mode: OnDemand, payloads: true, maxLiveRC: cap})
	var mu sync.Mutex
	got := make(map[[2]int]int) // {dst, src} -> deliveries
	for _, p := range pes {
		dst := p.C.Rank()
		p.C.RegisterHandler(6, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			got[[2]int{dst, src}]++
			mu.Unlock()
		})
	}
	run(func(p *pe) {
		for peer := 0; peer < n; peer++ {
			if peer == p.C.Rank() {
				continue
			}
			if err := p.C.AMRequest(peer, 6, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		}
	})
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n*(n-1)
	})
	mu.Lock()
	for k, c := range got {
		if c != 1 {
			t.Fatalf("message %v delivered %d times, want 1", k, c)
		}
	}
	mu.Unlock()
	evictions := 0
	for _, p := range pes {
		evictions += p.C.Stats().Evictions
	}
	// Eviction is best-effort by design: a conduit whose connections are all
	// busy at check time simply exceeds the cap (see maybeEvictLocked). Under
	// the race detector's scheduling perturbation a run can legitimately
	// thread that needle and finish with zero evictions, so the pressure
	// assertion holds only under production scheduling; the exactly-once
	// checks below run in both builds.
	if evictions == 0 && !raceEnabled {
		t.Fatalf("no evictions despite cap %d < %d required live QPs", cap, n*(n-1))
	}
	// Exactly-once payload consumption survives eviction/reconnect cycles.
	for _, p := range pes {
		p.mu.Lock()
		for peer, cnt := range p.payCount {
			if cnt != 1 {
				t.Fatalf("rank %d consumed payload of %d %d times", p.C.Rank(), peer, cnt)
			}
		}
		p.mu.Unlock()
	}
}

// TestStaticModeIgnoresQPCap: the fully connected baseline has no reconnect
// path, so a live-QP cap must not evict its connections — the cap is an
// on-demand-mode feature. A static job with a cap far below the mesh demand
// must still connect everyone, with zero evictions.
func TestStaticModeIgnoresQPCap(t *testing.T) {
	const n = 6
	pes, run := startJob(t, jobOpts{n: n, ppn: n, mode: Static, maxLiveRC: 2})
	run(func(p *pe) {
		if err := p.C.ConnectAll(); err != nil {
			t.Errorf("rank %d: %v", p.C.Rank(), err)
		}
	})
	for _, p := range pes {
		if got := p.C.NumConnected(); got != n {
			t.Fatalf("rank %d: %d ready conns, want %d", p.C.Rank(), got, n)
		}
		if ev := p.C.Stats().Evictions; ev != 0 {
			t.Fatalf("rank %d: %d evictions in static mode, want 0", p.C.Rank(), ev)
		}
	}
}

// TestFaultFreeRunsPayNoResilienceCost is the happy-path guard: with no
// injector and no cap, none of the resilience machinery may trigger — no
// faults detected, no reconnects, no evictions, no retransmissions, and the
// retransmission timer is never armed (the fabric is not lossy).
func TestFaultFreeRunsPayNoResilienceCost(t *testing.T) {
	const n = 4
	pes, run := startJob(t, jobOpts{n: n, ppn: 2, mode: OnDemand, payloads: true})
	var mu sync.Mutex
	recv := 0
	for _, p := range pes {
		p.C.RegisterHandler(6, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			recv++
			mu.Unlock()
		})
	}
	run(func(p *pe) {
		for peer := 0; peer < n; peer++ {
			if err := p.C.AMRequest(peer, 6, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		}
	})
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return recv == n*n
	})
	for _, p := range pes {
		st := p.C.Stats()
		if st.LinkFaults != 0 || st.Reconnects != 0 || st.Evictions != 0 || st.Retransmits != 0 {
			t.Fatalf("rank %d: resilience activity on a fault-free run: %+v", p.C.Rank(), st)
		}
		if st.PEFailures != 0 || st.HeartbeatsSent != 0 || st.FalseSuspicions != 0 || st.AbortsPropagated != 0 {
			t.Fatalf("rank %d: failure-detector activity on a fault-free run: %+v", p.C.Rank(), st)
		}
		p.C.connMu.Lock()
		armed := p.C.timerOn
		p.C.connMu.Unlock()
		if armed {
			t.Fatalf("rank %d: retransmission timer armed on a lossless fabric", p.C.Rank())
		}
		// With no PE faults scheduled and no explicit enable, the heartbeat
		// scan must never be armed: zero detector cost on the happy path.
		if p.C.hbArmed {
			t.Fatalf("rank %d: failure detector armed on a fault-free run", p.C.Rank())
		}
		p.C.hbMu.Lock()
		timer := p.C.hbTimer
		p.C.hbMu.Unlock()
		if timer != nil {
			t.Fatalf("rank %d: heartbeat timer armed on a fault-free run", p.C.Rank())
		}
		if err := p.C.Err(); err != nil {
			t.Fatalf("rank %d: abort error on a fault-free run: %v", p.C.Rank(), err)
		}
	}
}
