package gasnet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

// ErrPeerDead is returned by every operation — RMA, AM, handshake, queued
// retransmission — against a peer the failure detector has confirmed dead.
// Fail-fast is the point: blocking on a dead peer hangs the job forever.
var ErrPeerDead = errors.New("gasnet: peer confirmed dead")

// ExitPMIFailure is the distinct launcher exit code for a job aborted
// because the out-of-band control plane failed permanently (PMI retry
// budgets exhausted with no fallback left). It sits alongside the cluster
// codes 137 (PE killed), 134 (PE wedged) and 124 (watchdog).
const ExitPMIFailure = 123

// ExitResourceExhausted is the distinct launcher exit code for a job aborted
// because a finite adapter budget (queue pairs or pinned memory) left a PE
// with provably no path to forward progress: every degradation rung —
// idle eviction, bounce-buffering, queued connects with backoff — was tried
// and failed. Deliberately distinct from 124 (watchdog): exhaustion is
// detected and reported, not a hang.
const ExitResourceExhausted = 125

// ExitPartitioned is the distinct launcher exit code for a job aborted
// because a network partition severing a needed pair of PEs will provably
// never heal: every rail between the pair is dark, no scheduled heal exists,
// and the detector's bounded virtual-time patience ran out. Deliberately
// distinct from both 1 (peer confirmed dead — here both sides are alive) and
// 124 (watchdog — the partition is detected and reported, not a hang).
const ExitPartitioned = 126

// AbortError is the terminal job-abort error. It is raised by the PE that
// confirms a peer dead, by an explicit GlobalExit, or by the cluster
// watchdog, and propagated to every live PE in-band (a UD abort datagram)
// and out-of-band (the PMI abort flag, the launcher's kill path).
type AbortError struct {
	Origin int // rank that raised the abort (-1: launcher/watchdog)
	Dead   int // rank confirmed dead, -1 when no PE died
	Code   int // exit code surviving PEs should report
	Reason string
}

func (e *AbortError) Error() string {
	if e.Dead >= 0 {
		return fmt.Sprintf("gasnet: job aborted by rank %d: %s", e.Origin, e.Reason)
	}
	return fmt.Sprintf("gasnet: job aborted: %s", e.Reason)
}

// Unwrap lets errors.Is(err, ErrPeerDead) recognize peer-death aborts.
func (e *AbortError) Unwrap() error {
	if e.Dead >= 0 {
		return ErrPeerDead
	}
	return nil
}

// CrashError is what an operation on a crash-injected PE fails with once its
// scheduled KillPE trips: the process is gone, mid-job.
type CrashError struct {
	Rank int
	VT   int64 // virtual time the crash was observed
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("gasnet: rank %d crashed (injected) at vt %d", e.Rank, e.VT)
}

// WedgeError is what a wedge-injected PE's blocked operation fails with once
// the job finally aborts around it (a wedged PE makes no progress on its own;
// only the external abort releases it).
type WedgeError struct {
	Rank int
	VT   int64
}

func (e *WedgeError) Error() string {
	return fmt.Sprintf("gasnet: rank %d wedged (injected) at vt %d, released by job abort", e.Rank, e.VT)
}

// Default heartbeat timing. The scan period is real time (like the
// retransmission scan: the simulator's only actual clock); each probe charges
// CostModel.HeartbeatPeriod of virtual time, so confirmation completes within
// a bounded number of virtual detector periods.
const (
	defaultHBInterval     = 2 * time.Millisecond
	defaultHBSuspectAfter = 3  // silent scan periods before suspicion
	defaultHBConfirmAfter = 4  // unanswered backoff probes before confirm-dead
	defaultHBPartition    = 16 // charged patience probes before a permanent partition aborts
)

// HeartbeatConfig tunes the UD-heartbeat failure detector. The detector is
// armed only when the fabric has PE-failure injections scheduled or Enable is
// set — a fault-free run never probes, suspects, or pays anything for it.
//
// Liveness is piggybacked on existing traffic: every software-level message
// from a peer (handshake legs, active messages, heartbeat acks) refreshes it.
// Explicit probes go only to monitored peers that have been silent for a full
// scan period. A peer that stays silent for SuspectAfter consecutive scans
// becomes suspect; it is then probed with exponential backoff and confirmed
// dead only after ConfirmAfter further unanswered probes. A PE slowed by the
// SlowPE injector is only charged virtual time — its real-time replies still
// arrive within a scan period — so slowness alone never confirms.
type HeartbeatConfig struct {
	// Enable arms the detector even without scheduled PE failures.
	Enable bool
	// Disable forces the detector off (watchdog tests use it to make an
	// injected failure genuinely hang the job).
	Disable bool
	// Interval is the real-time scan period (default 2ms).
	Interval time.Duration
	// SuspectAfter is the number of silent scan periods before suspicion
	// (default 3).
	SuspectAfter int
	// ConfirmAfter is the number of unanswered confirmation probes, with
	// exponential backoff, before a suspect is confirmed dead (default 4).
	ConfirmAfter int
	// PartitionPatience bounds how long the detector waits on a peer that is
	// provably partitioned (every rail between the pair severed) with no
	// scheduled heal: after this many charged patience probes — each
	// advancing virtual time by one detector period — the job aborts with
	// ExitPartitioned instead of hanging into the watchdog (default 16). A
	// partition with a known heal time is waited out regardless: suspension
	// is bounded by the schedule itself.
	PartitionPatience int
}

// withDefaults fills zero fields with the default timing.
func (hc HeartbeatConfig) withDefaults() HeartbeatConfig {
	if hc.Interval <= 0 {
		hc.Interval = defaultHBInterval
	}
	if hc.SuspectAfter <= 0 {
		hc.SuspectAfter = defaultHBSuspectAfter
	}
	if hc.ConfirmAfter <= 0 {
		hc.ConfirmAfter = defaultHBConfirmAfter
	}
	if hc.PartitionPatience <= 0 {
		hc.PartitionPatience = defaultHBPartition
	}
	return hc
}

// peerHealth is the detector's view of one monitored peer.
type peerHealth struct {
	lastHeard time.Time
	missed    int // consecutive silent scan periods
	suspect   bool
	probes    int // confirmation probes sent since suspicion
	lastProbe time.Time
	probeVT   int64 // virtual send time of the last explicit probe (RTT hist)
	dead      bool

	// suspended marks a peer the detector would have confirmed dead but for
	// the fabric's verdict that the pair is partitioned (every rail severed
	// while both sides are alive): the peer is held in suspend-and-retry
	// instead of aborting the job, with patience probes advancing virtual
	// time. suspendVT is the virtual time suspension began; patienceProbes
	// counts the charged probes spent waiting on a permanent partition.
	suspended      bool
	suspendVT      int64
	patienceProbes int
	// reconfirmRounds counts the clear-air reconfirmation rounds spent on
	// this peer after a severance ended (the partition healed, or the
	// verdict clock passed the window): the silence accumulated while the
	// fabric was dark proves nothing, and even afterwards a live peer can
	// lag behind recovery replays, so the detector re-drains the
	// confirmation budget PartitionPatience times in quiet air before it
	// may declare the peer dead. An ack clears it via noteAlive.
	reconfirmRounds int
}

// Self-fate states cached in Conduit.selfState.
const (
	selfAlive int32 = iota
	selfKilled
	selfWedged
)

// hbInit resolves the heartbeat configuration and arms the scan timer when
// the failure plane is in play. Called from New.
func (c *Conduit) hbInit() {
	c.hb = c.cfg.Heartbeat.withDefaults()
	c.abortCh = make(chan struct{})
	c.deadPeers = make(map[int]bool)
	c.health = make(map[int]*peerHealth)
	fab := c.cfg.HCA.Fabric()
	c.hbArmed = !c.hb.Disable && (c.hb.Enable || fab.PEFaulty() || fab.NetFaulty())
	if c.hbArmed {
		c.hbMu.Lock()
		c.hbTimer = time.AfterFunc(c.hb.Interval, c.hbScan)
		c.hbMu.Unlock()
	}
}

// hbStop cancels the scan timer at Close.
func (c *Conduit) hbStop() {
	c.hbMu.Lock()
	if c.hbTimer != nil {
		c.hbTimer.Stop()
	}
	c.hbMu.Unlock()
}

// selfFate consults the fault plane for this PE's own scheduled crash/wedge
// at virtual time now, firing the first-trigger side effects. The app path
// passes its own clock; the progress path passes the arrival time, so an
// idle victim still crashes when traffic from the future reaches it.
func (c *Conduit) selfFate(now int64) int32 {
	if s := c.selfState.Load(); s != selfAlive {
		return s
	}
	switch c.cfg.HCA.Fabric().Faults().PEFate(c.cfg.Rank, now) {
	case ib.PEKilled:
		c.enterKilled(now)
		return selfKilled
	case ib.PEWedged:
		c.enterWedged(now)
		return selfWedged
	}
	return selfAlive
}

// enterKilled makes the scheduled crash real: every queue pair dies (so the
// fabric stops ACKing anything addressed to this PE), queued work is failed,
// and local waiters are released with a CrashError. Nothing is sent: a
// crashed process cannot announce its own death — that is the detector's job
// on the surviving PEs.
func (c *Conduit) enterKilled(now int64) {
	if !c.selfState.CompareAndSwap(selfAlive, selfKilled) {
		return
	}
	c.event("pe-fail", c.cfg.Rank, now)
	c.connMu.Lock()
	drop := func(peer int, cn *conn) {
		if cn == nil {
			return
		}
		if cn.state != connNone {
			c.teardownLocked(cn)
		}
		cn.pending = nil
		c.dropUnackedLocked(cn, now)
	}
	if c.connSlice != nil {
		for peer, cn := range c.connSlice {
			drop(peer, cn)
		}
	} else {
		for peer, cn := range c.connMap {
			drop(peer, cn)
		}
	}
	c.connMu.Unlock()
	c.udQP.Destroy()
	c.raiseLocal(&CrashError{Rank: c.cfg.Rank, VT: now})
}

// enterWedged marks the scheduled wedge: the software stops — no handler
// dispatch, no heartbeat replies, no new sends — but the queue pairs stay
// alive, so peers' RDMA against this PE's memory still completes in hardware.
// The wedged PE is released only by the job abort that eventually reaches it
// (an abort datagram or the launcher's out-of-band kill).
func (c *Conduit) enterWedged(now int64) {
	if !c.selfState.CompareAndSwap(selfAlive, selfWedged) {
		return
	}
	c.event("pe-fail", c.cfg.Rank, now)
}

// arrivalFate evaluates this PE's scheduled failure against an inbound
// message's virtual arrival time: even a PE whose own clock is stalled
// crashes once traffic from past its scheduled failure time reaches it.
func (c *Conduit) arrivalFate(arrVT int64) int32 {
	now := c.mgrClk.Now()
	if arrVT > now {
		now = arrVT
	}
	return c.selfFate(now)
}

// checkAlive enforces this PE's own scheduled failure and any job abort at
// the entry of an application-level operation. A killed PE's operations fail
// immediately with CrashError; a wedged PE's operations block until the job
// aborts, then fail with WedgeError.
func (c *Conduit) checkAlive() error {
	switch c.selfFate(c.clk.Now()) {
	case selfKilled:
		return &CrashError{Rank: c.cfg.Rank, VT: c.clk.Now()}
	case selfWedged:
		<-c.abortCh
		return &WedgeError{Rank: c.cfg.Rank, VT: c.clk.Now()}
	}
	if err := c.Err(); err != nil {
		return err
	}
	return nil
}

// Err returns the job-abort (or own-crash) error once this PE has aborted,
// else nil.
func (c *Conduit) Err() error {
	c.abortMu.Lock()
	defer c.abortMu.Unlock()
	return c.abortErr
}

// LivenessErr is the non-blocking form upper layers poll from their blocking
// waits (collective receive, point-to-point receive, wait-until): it returns
// the error the wait should fail with, or nil to keep waiting. A wedged PE
// keeps waiting until the job abort arrives — a wedge is a hang by design.
func (c *Conduit) LivenessErr() error {
	switch c.selfState.Load() {
	case selfKilled:
		return &CrashError{Rank: c.cfg.Rank, VT: c.clk.Now()}
	case selfWedged:
		if c.Err() != nil {
			return &WedgeError{Rank: c.cfg.Rank, VT: c.clk.Now()}
		}
		return nil
	}
	return c.Err()
}

// AbortCh returns a channel closed when the job aborts, for upper layers
// that need a select-able abort signal.
func (c *Conduit) AbortCh() <-chan struct{} { return c.abortCh }

// OnAbort registers f to run once when the job aborts (or immediately if it
// already has). Upper layers use it to wake their own condition variables so
// blocked receives can observe LivenessErr.
func (c *Conduit) OnAbort(f func(error)) {
	c.abortMu.Lock()
	if c.abortErr != nil {
		err := c.abortErr
		c.abortMu.Unlock()
		f(err)
		return
	}
	c.onAbort = append(c.onAbort, f)
	c.abortMu.Unlock()
}

// PeerDead reports whether peer has been confirmed dead.
func (c *Conduit) PeerDead(peer int) bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.deadPeers[peer]
}

// MonitorPeer registers peer with the failure detector, so a blocking
// receive from it is covered even before any traffic has flowed. No-op when
// the detector is not armed.
func (c *Conduit) MonitorPeer(peer int) {
	if !c.hbArmed || peer == c.cfg.Rank || peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	c.hbMu.Lock()
	if c.health[peer] == nil {
		c.health[peer] = &peerHealth{lastHeard: timeNow()}
	}
	c.hbMu.Unlock()
}

// noteAlive refreshes the detector's liveness for peer — the piggyback path:
// any software-level message from the peer proves it alive, so explicit
// probes are needed only when a link is idle.
func (c *Conduit) noteAlive(peer int) {
	if !c.hbArmed || peer == c.cfg.Rank || peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	c.hbMu.Lock()
	h := c.health[peer]
	if h == nil {
		h = &peerHealth{}
		c.health[peer] = h
	}
	h.lastHeard = timeNow()
	h.missed = 0
	cleared := h.suspect && !h.dead
	healed := h.suspended && !h.dead
	if cleared {
		h.suspect = false
		h.probes = 0
		h.suspended = false
		h.patienceProbes = 0
		h.reconfirmRounds = 0
	}
	c.hbMu.Unlock()
	if healed {
		// A suspended peer answered: the partition healed and the pair is
		// reconnected. This is recovery, not a false alarm — the detector's
		// suspicion was correct while the windows were active.
		c.statMu.Lock()
		c.stats.PartitionHeals++
		c.statMu.Unlock()
		c.event("partition-heal", peer, c.mgrClk.Now())
		c.gSuspect.Add(c.mgrClk.Now(), -1)
		c.led.CloseAll("net", []string{"partition"}, -1, obs.InstJob, c.mgrClk.Now(), "heal-observed")
		return
	}
	if cleared {
		c.statMu.Lock()
		c.stats.FalseSuspicions++
		c.statMu.Unlock()
		c.event("suspect-clear", peer, c.mgrClk.Now())
		c.gSuspect.Add(c.mgrClk.Now(), -1)
	}
}

// hbScan is the detector's periodic pass: check the out-of-band abort flag,
// then walk the monitored peers — advance silence counters, raise suspicions,
// send backoff probes, and confirm deaths. Probes go only to peers that have
// been silent for at least one full scan period.
func (c *Conduit) hbScan() {
	if c.closed.Load() {
		return
	}
	// Out-of-band backstop: the PMI abort flag is how the launcher's kill
	// reaches a PE whose in-band abort datagram was lost — or that is wedged
	// and no longer processes software messages.
	if n, ok := c.cfg.PMI.Aborted(); ok && c.Err() == nil {
		// Mark the dead rank before publishing the abort error, matching
		// handleAbortMsg: once Err() is observable, PeerDead(dead) must
		// already hold, so callers can fail-fast without a window where the
		// job is aborted but the victim still looks alive.
		if n.Dead >= 0 && n.Dead < c.cfg.NProcs && n.Dead != c.cfg.Rank {
			c.markDead(n.Dead)
		}
		c.raiseLocal(&AbortError{Origin: n.Origin, Dead: n.Dead, Code: n.Code, Reason: n.Reason})
	}
	if c.Err() != nil {
		return // job is dead; no further scans
	}
	if c.selfFate(c.mgrClk.Now()) != selfAlive {
		// A killed or wedged PE's software no longer probes; keep polling only
		// the out-of-band abort flag above so the launcher's kill can land.
		c.hbRearm()
		return
	}
	now := timeNow()
	type ping struct {
		peer   int
		charge bool // confirmation probe: charge virtual detector period
	}
	var probes []ping
	var verdicts []int
	c.hbMu.Lock()
	for peer, h := range c.health {
		if h.dead {
			continue
		}
		if now.Sub(h.lastHeard) < c.hb.Interval {
			continue // piggybacked traffic is fresh; nothing to do
		}
		if !h.suspect {
			h.missed++
			if h.missed >= c.hb.SuspectAfter {
				h.suspect = true
				h.probes = 0
			}
			probes = append(probes, ping{peer, h.suspect})
			if h.suspect {
				c.event("suspect", peer, c.mgrClk.Now())
				c.gSuspect.Add(c.mgrClk.Now(), 1)
				c.led.Detect("pe", peer, c.mgrClk.Now(), "suspect")
			}
			continue
		}
		// Suspect: confirmation probes with exponential backoff, so a merely
		// slow or descheduled peer gets geometrically growing grace periods.
		shift := h.probes
		if shift > c.retrans.ProbeBackoffShift {
			shift = c.retrans.ProbeBackoffShift
		}
		if now.Sub(h.lastProbe) < c.hb.Interval<<shift {
			continue
		}
		h.probes++
		h.lastProbe = now
		if h.probes > c.hb.ConfirmAfter {
			// The confirmation budget is spent. Before declaring the peer
			// dead, consult the fabric: a peer silenced by a partition (every
			// rail between the pair severed, both sides alive) must be
			// suspended and retried, not aborted. Hold the probe count at the
			// threshold so the verdict re-runs every capped backoff period
			// for as long as the suspension lasts.
			h.probes = c.hb.ConfirmAfter
			verdicts = append(verdicts, peer)
			continue
		}
		probes = append(probes, ping{peer, true})
	}
	c.hbMu.Unlock()
	for _, p := range probes {
		c.sendPing(p.peer, p.charge)
	}
	for _, peer := range verdicts {
		c.partitionVerdict(peer)
	}
	if c.Err() == nil {
		c.hbRearm()
	}
}

func (c *Conduit) hbRearm() {
	c.hbMu.Lock()
	if !c.closed.Load() {
		c.hbTimer = time.AfterFunc(c.hb.Interval, c.hbScan)
	}
	c.hbMu.Unlock()
}

// partitionVerdict decides the fate of a suspect whose confirmation budget is
// spent: dead peer or partitioned peer. A peer that stayed silent while a
// live path to it existed is dead — abort, the PR 2 path. A peer severed on
// every rail is *partitioned*: both sides are alive but cannot talk, so the
// detector suspends it and retries, with bounded virtual-time patience. A
// partition with a scheduled heal is simply waited out — the suspension is
// bounded by the schedule, and the first post-heal ack resumes normal
// operation (and exactly-once delivery, via the session layer's retained
// window) through noteAlive. A permanent severance aborts the job with the
// distinct ExitPartitioned code once PartitionPatience charged probes — each
// advancing virtual time one detector period — go unanswered.
func (c *Conduit) partitionVerdict(peer int) {
	fab := c.cfg.HCA.Fabric()
	fi := fab.Faults()
	netFaults := fi.NetFaultsScheduled()
	blocked := false
	heal := int64(0)
	// The verdict is judged at the job's current virtual time, not the
	// detector's: the manager clock only advances on served messages and
	// charged probes, so it can still sit before a fault window the app
	// thread has already run into (its send is what went silent). Take the
	// later of the two clocks.
	now := c.mgrClk.Now()
	if app := c.clk.Now(); app > now {
		now = app
	}
	if netFaults {
		ud, err := c.resolveUDOpt(peer, false)
		if err != nil {
			return // resolution in flight; re-evaluate at the next backoff period
		}
		src, dst := c.cfg.HCA.LID(), ud.LID
		blocked = fab.PathsSevered(src, dst, now)
		if blocked {
			var windowed bool
			windowed, heal = fi.PartitionInfo(src, dst, now)
			if !windowed {
				// Severed by permanent port/rail failures rather than a
				// partition window: no heal is ever coming.
				heal = -1
			}
		}
	}
	if !blocked {
		c.hbMu.Lock()
		h := c.health[peer]
		if h == nil || h.dead {
			c.hbMu.Unlock()
			return
		}
		if netFaults && (h.reconfirmRounds < c.hb.PartitionPatience || fi.SeveranceActiveAt(now)) {
			// The paths between us are clear, but the silence still proves
			// nothing. Three reasons. (1) Every probe so far may have been
			// swallowed by a severance window one of the pair's clocks was
			// inside (this peer need not be marked suspended: another peer's
			// suspension can warp the verdict clock past a window this one
			// silently sat out). (2) While ANY severance is in effect, a
			// live peer — even one on our own node — can be transitively
			// stalled behind a dark path to a third rank; death verdicts are
			// deferred until the fabric is quiet. (3) Even after a heal, a
			// live peer can lag for a while behind its own recovery replays.
			// So: restart the confirmation budget and probe from the verdict
			// clock, up to PartitionPatience quiet-air rounds. A live peer's
			// first ack ends the suspicion via noteAlive; a dead one stays
			// silent until the rounds are spent and the verdict falls
			// through to confirmDead. Termination stays bounded: the rounds
			// are finite once the fabric is quiet, and a permanently severed
			// pair aborts with ExitPartitioned through the patience path
			// below.
			h.reconfirmRounds++
			h.probes = 0
			c.hbMu.Unlock()
			c.mgrClk.AdvanceTo(now)
			c.sendPing(peer, true)
			return
		}
		h.dead = true
		c.hbMu.Unlock()
		c.confirmDead(peer)
		return
	}
	first, exhausted := false, false
	c.hbMu.Lock()
	h := c.health[peer]
	if h == nil || h.dead {
		c.hbMu.Unlock()
		return
	}
	if !h.suspended {
		h.suspended = true
		h.suspendVT = c.mgrClk.Now()
		h.patienceProbes = 0
		first = true
	}
	h.reconfirmRounds = 0 // back inside a severance window; re-arm the grace
	if heal < 0 {
		h.patienceProbes++
		exhausted = h.patienceProbes > c.hb.PartitionPatience
	} else {
		h.patienceProbes = 0 // a scheduled heal re-opens unlimited patience
	}
	c.hbMu.Unlock()
	if first {
		c.statMu.Lock()
		c.stats.PartitionSuspensions++
		c.statMu.Unlock()
		c.event("partition-suspend", peer, c.mgrClk.Now())
		c.led.Detect("net", -1, c.mgrClk.Now(), "partition-suspend")
	}
	if exhausted {
		c.event("partition-fatal", peer, c.mgrClk.Now())
		c.raiseAbort(&AbortError{Origin: c.cfg.Rank, Dead: -1, Code: ExitPartitioned,
			Reason: fmt.Sprintf("rank %d partitioned from rank %d on every rail with no scheduled heal; gave up after %d patience probes",
				c.cfg.Rank, peer, c.hb.PartitionPatience)}, true)
		return
	}
	// A suspension with a scheduled heal is waited out in virtual time: warp
	// the detector clock to the heal boundary — nothing else can advance VT
	// while every path is dark, exactly like a discrete-event simulator
	// jumping to its next scheduled event — so the charged probe below
	// departs after the heal and draws the ack that ends the suspension.
	if heal >= 0 {
		c.mgrClk.AdvanceTo(heal)
	}
	// Charged patience probe: advances virtual time, keeping the suspension
	// bounded in VT, and — once the partition heals — draws the ack whose
	// arrival ends the suspension.
	c.sendPing(peer, true)
}

// sendPing sends one explicit heartbeat probe. Confirmation probes (charge)
// advance the manager clock by the virtual detector period, so a death is
// confirmed within a bounded number of virtual-time periods; routine
// keepalive probes ride a detached clock — background monitoring must never
// advance the PE's virtual time (or it would trip VT-scheduled faults and
// skew fault-free runs on its own).
func (c *Conduit) sendPing(peer int, charge bool) {
	// No fallback: a background probe must never block in the Put-Fence
	// collective or advance the app clock. An unresolved peer is skipped.
	ud, err := c.resolveUDOpt(peer, false)
	if err != nil {
		return
	}
	clk := c.mgrClk
	if charge {
		clk.Advance(c.model.HeartbeatPeriod)
	} else {
		clk = vclock.NewClock(c.mgrClk.Now())
	}
	c.hbMu.Lock()
	if h := c.health[peer]; h != nil {
		h.probeVT = clk.Now()
	}
	c.hbMu.Unlock()
	c.statMu.Lock()
	c.stats.HeartbeatsSent++
	c.statMu.Unlock()
	c.sendControl(peer, ud, connMsg{Kind: msgHeartbeat, SrcRank: int32(c.cfg.Rank), UD: c.udQP.Addr()}, clk)
}

// noteHeartbeatAck closes the RTT sample opened by the last explicit probe
// to peer: the virtual round trip from probe transmission to ack arrival.
func (c *Conduit) noteHeartbeatAck(peer int, ackVT int64) {
	if c.hHBRTT == nil {
		return
	}
	c.hbMu.Lock()
	var probeVT int64
	if h := c.health[peer]; h != nil && h.probeVT > 0 {
		probeVT = h.probeVT
		h.probeVT = 0
	}
	c.hbMu.Unlock()
	if probeVT > 0 && ackVT > probeVT {
		c.hHBRTT.Record(ackVT - probeVT)
	}
}

// markDead flags peer as dead and strips its connection slot: the handshake
// (if any) is torn down and every queued work request is failed back to its
// issuer. Returns whether this call did the marking.
func (c *Conduit) markDead(peer int) bool {
	c.connMu.Lock()
	if c.deadPeers[peer] {
		c.connMu.Unlock()
		return false
	}
	c.deadPeers[peer] = true
	var dropped []pendingWR
	if cn := c.peekConn(peer); cn != nil {
		dropped = cn.pending
		cn.pending = nil
		if cn.state != connNone {
			c.teardownLocked(cn)
		}
		// Frames retained for a dead peer will never be acknowledged; release
		// them so Quiet does not wait on a ghost.
		c.dropUnackedLocked(cn, c.mgrClk.Now())
	}
	c.connMu.Unlock()
	c.connCond.Broadcast()
	c.failPending(dropped)
	return true
}

// failPending completes dropped queued work requests as flushed, so blocked
// issuers (Get, atomics) fail fast and the Quiet accounting stays exact.
func (c *Conduit) failPending(pending []pendingWR) {
	for _, p := range pending {
		wrid := p.wr.WRID
		c.waiterMu.Lock()
		ch := c.waiters[wrid]
		delete(c.waiters, wrid)
		nbi := false
		if ch == nil && p.wr.Op == ib.OpRDMARead {
			if _, ok := c.pendingGets[wrid]; ok {
				delete(c.pendingGets, wrid)
				nbi = true
			}
		}
		c.waiterMu.Unlock()
		if ch != nil {
			ch <- ib.Completion{WRID: wrid, Op: p.wr.Op, Status: ib.StatusFlushed, VTime: c.mgrClk.Now()}
			continue
		}
		if p.wr.Op == ib.OpRDMAWrite || nbi || (p.wr.Op == ib.OpSend && wrid != 0) {
			c.putDone(ib.Completion{VTime: c.mgrClk.Now()})
		}
	}
}

// confirmDead finalizes a suspect: mark the peer dead, fail everything queued
// against it, and raise the job abort that propagates to all live PEs.
func (c *Conduit) confirmDead(peer int) {
	if !c.markDead(peer) {
		return
	}
	c.statMu.Lock()
	c.stats.PEFailures++
	c.statMu.Unlock()
	c.event("confirm-dead", peer, c.mgrClk.Now())
	c.gSuspect.Add(c.mgrClk.Now(), -1)
	c.led.Act("pe", peer, c.mgrClk.Now(), "confirm-dead")
	c.raiseAbort(&AbortError{Origin: c.cfg.Rank, Dead: peer, Code: 1,
		Reason: fmt.Sprintf("rank %d confirmed dead by rank %d's failure detector", peer, c.cfg.Rank)}, true)
}

// Abort raises a job abort from this PE (shmem_global_exit semantics) and
// propagates it to every peer in-band and through PMI.
func (c *Conduit) Abort(ae *AbortError) { c.raiseAbort(ae, true) }

// AbortLocal raises the abort on this PE only, without notifying peers — the
// launcher's per-process kill path (the cluster watchdog fans it out itself).
func (c *Conduit) AbortLocal(ae *AbortError) { c.raiseAbort(ae, false) }

// raiseLocal records err as this PE's terminal state and releases every
// blocked operation. First error wins.
func (c *Conduit) raiseLocal(err error) bool {
	c.abortMu.Lock()
	if c.abortErr != nil {
		c.abortMu.Unlock()
		return false
	}
	c.abortErr = err
	cbs := c.onAbort
	c.onAbort = nil
	close(c.abortCh)
	c.abortMu.Unlock()
	c.connCond.Broadcast()
	c.outCond.Broadcast()
	if c.cfg.NodeBarrier != nil {
		// Release node-mates blocked in the intra-node barrier; the job is
		// over and they must observe the abort rather than wait forever.
		c.cfg.NodeBarrier.Abort()
	}
	for _, f := range cbs {
		f(err)
	}
	return true
}

// raiseAbort records the abort locally and, when propagate is set, announces
// it to PMI (out-of-band) and to every peer (in-band UD datagram — including
// the dead rank, whose "death" may be a wedge that only an external kill can
// release).
func (c *Conduit) raiseAbort(ae *AbortError, propagate bool) {
	if ae.Code == 0 {
		ae.Code = 1
	}
	if !c.raiseLocal(ae) {
		return
	}
	c.event("abort", ae.Dead, c.mgrClk.Now())
	if ae.Dead >= 0 {
		c.led.Act("pe", ae.Dead, c.mgrClk.Now(), "abort")
	}
	if !propagate {
		return
	}
	c.cfg.PMI.RaiseAbort(pmi.AbortNotice{Origin: ae.Origin, Dead: ae.Dead, Code: ae.Code, Reason: ae.Reason})
	payload := encodeAbortPayload(ae.Code, ae.Reason)
	sent := 0
	for peer := 0; peer < c.cfg.NProcs; peer++ {
		if peer == c.cfg.Rank {
			continue
		}
		// No fallback while aborting: peers whose endpoints never resolved
		// are reached through the PMI kill channel above instead.
		ud, err := c.resolveUDOpt(peer, false)
		if err != nil {
			continue
		}
		m := connMsg{Kind: msgAbort, SrcRank: int32(ae.Origin), Seq: uint32(int32(ae.Dead)),
			UD: c.udQP.Addr(), Payload: payload}
		if c.sendControl(peer, ud, m, c.mgrClk) == nil {
			sent++
		}
	}
	c.statMu.Lock()
	c.stats.AbortsPropagated += sent
	c.statMu.Unlock()
}

// handleAbortMsg processes an in-band abort datagram: mark the dead rank (if
// any) and abort locally. No re-broadcast — the origin already notified
// everyone, and PMI is the lost-datagram backstop.
func (c *Conduit) handleAbortMsg(m connMsg) {
	dead := int(int32(m.Seq))
	code, reason := decodeAbortPayload(m.Payload)
	if dead >= 0 && dead < c.cfg.NProcs && dead != c.cfg.Rank {
		c.markDead(dead)
	}
	c.raiseLocal(&AbortError{Origin: int(m.SrcRank), Dead: dead, Code: code, Reason: reason})
}

// HealthSnapshot is a point-in-time diagnostic view of one conduit, the raw
// material for the cluster watchdog's state dump.
type HealthSnapshot struct {
	Rank        int
	ClockVT     int64 // application clock
	MgrVT       int64 // connection-manager clock
	Ready       int   // connections in the ready state
	Connecting  int   // client handshakes in flight
	Accepted    int   // server handshakes awaiting RTU
	PendingWRs  int   // work requests queued behind in-flight handshakes
	HeldReqs    int   // connection requests held for SetReady
	Outstanding int   // puts/gets not yet complete (Quiet accounting)
	LastReadyVT int64 // virtual time the last connection became ready
	Suspects    []int // peers currently under suspicion
	Suspended   []int // peers suspended as partitioned (all rails severed)
	Dead        []int // peers confirmed dead
	Wedged      bool
	Killed      bool
}

// HealthSnapshot captures the conduit's connection, queue and detector state
// for diagnostics.
func (c *Conduit) HealthSnapshot() HealthSnapshot {
	s := HealthSnapshot{Rank: c.cfg.Rank, ClockVT: c.clk.Now(), MgrVT: c.mgrClk.Now()}
	s.Killed = c.selfState.Load() == selfKilled
	s.Wedged = c.selfState.Load() == selfWedged
	c.connMu.Lock()
	walk := func(cn *conn) {
		if cn == nil {
			return
		}
		switch cn.state {
		case connReady:
			s.Ready++
		case connConnecting:
			s.Connecting++
		case connAccepted:
			s.Accepted++
		}
		s.PendingWRs += len(cn.pending)
	}
	if c.connSlice != nil {
		for _, cn := range c.connSlice {
			walk(cn)
		}
	} else {
		for _, cn := range c.connMap {
			walk(cn)
		}
	}
	s.HeldReqs = len(c.heldReqs)
	s.LastReadyVT = c.lastReadyVT
	for peer := range c.deadPeers {
		s.Dead = append(s.Dead, peer)
	}
	c.connMu.Unlock()
	c.hbMu.Lock()
	for peer, h := range c.health {
		if h.suspect && !h.dead {
			s.Suspects = append(s.Suspects, peer)
		}
		if h.suspended && !h.dead {
			s.Suspended = append(s.Suspended, peer)
		}
	}
	c.hbMu.Unlock()
	c.outMu.Lock()
	s.Outstanding = c.outstanding
	c.outMu.Unlock()
	sort.Ints(s.Suspects)
	sort.Ints(s.Suspended)
	sort.Ints(s.Dead)
	return s
}
