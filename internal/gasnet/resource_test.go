package gasnet

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"goshmem/internal/ib"
)

// TestCreditBackpressureDeliversAll floods a finite receive queue: with a
// per-QP depth of 2, a burst of back-to-back sends must stall in the
// sender-side credit window (virtual time) instead of failing, and every
// message must still arrive exactly once, in order.
func TestCreditBackpressureDeliversAll(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, ppn: 1, mode: OnDemand,
		limits: ib.Limits{RQDepth: 2}})
	const k = 40
	got := make(chan uint64, k)
	pes[1].C.RegisterHandler(2, func(src int, a [4]uint64, p []byte, at int64) {
		got <- a[0]
	})
	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := pes[0].C.AMRequest(1, 2, [4]uint64{uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		if v := <-got; v != uint64(i) {
			t.Fatalf("AM %d arrived out of order (got %d)", i, v)
		}
	}
	st := pes[0].C.Stats()
	if st.CreditStalls == 0 {
		t.Fatalf("burst of %d sends through a depth-2 receive queue never stalled: %+v", k, st)
	}
	if err := pes[0].C.Err(); err != nil {
		t.Fatalf("abort on a backpressure-only run: %v", err)
	}
}

// TestPendingFlushAbsorbsRNRNaks queues a burst behind the handshake: the
// post-handshake flush bypasses the credit gate, so the receiver's finite
// queue answers with RNR NAKs, which the sender must absorb with backoff and
// retry — delivering everything in order, exactly once.
func TestPendingFlushAbsorbsRNRNaks(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, ppn: 1, mode: OnDemand,
		limits: ib.Limits{RQDepth: 2}})
	const k = 50
	got := make(chan uint64, k)
	pes[1].C.RegisterHandler(2, func(src int, a [4]uint64, p []byte, at int64) {
		got <- a[0]
	})
	// No EnsureConnected: every AM queues behind the in-flight handshake and
	// goes through flushLocked.
	for i := 0; i < k; i++ {
		if err := pes[0].C.AMRequest(1, 2, [4]uint64{uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		if v := <-got; v != uint64(i) {
			t.Fatalf("AM %d arrived out of order (got %d)", i, v)
		}
	}
	st := pes[0].C.Stats()
	if st.RNRNaks == 0 && st.CreditStalls == 0 {
		t.Fatalf("flushing %d queued sends through a depth-2 receive queue hit no backpressure: %+v", k, st)
	}
	if err := pes[0].C.Err(); err != nil {
		t.Fatalf("abort on a backpressure-only run: %v", err)
	}
}

// TestAdmissionRejectThenRetryAdmits injects one queue-pair allocation
// failure per adapter: the server's first admission attempt fails, it answers
// the REQ with a non-fatal REJ, and the client's retransmission timer
// re-sends the REQ later (retry-after). The second attempt must be admitted
// and the handshake complete normally — exactly-once payload, no abort.
func TestAdmissionRejectThenRetryAdmits(t *testing.T) {
	fi := ib.NewFaultInjector(1)
	fi.FailQPAllocOn(2) // each adapter: alloc #1 is the UD endpoint, #2 the first RC attempt
	var evMu sync.Mutex
	events := make(map[string]int) // "<rank>/<kind>" -> count
	pes, _ := startJob(t, jobOpts{n: 2, ppn: 1, mode: OnDemand, faults: fi,
		payloads: true, retrans: fastRetrans,
		limits: ib.Limits{MaxQPs: 64},
		onEvent: func(rank int, kind string, peer int, vt int64) {
			evMu.Lock()
			events[string(rune('0'+rank))+"/"+kind]++
			evMu.Unlock()
		}})
	got := make(chan struct{}, 1)
	pes[1].C.RegisterHandler(3, func(src int, a [4]uint64, p []byte, at int64) {
		got <- struct{}{}
	})
	if err := pes[0].C.AMRequest(1, 3, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	<-got
	waitUntil(t, func() bool { return pes[0].C.Connected(1) && pes[1].C.Connected(0) })
	if st := pes[1].C.Stats(); st.AdmissionRejects < 1 {
		t.Fatalf("server admitted without rejecting first: %+v", st)
	}
	for _, p := range pes {
		if err := p.C.Err(); err != nil {
			t.Fatalf("rank %d aborted on a recoverable admission failure: %v", p.C.Rank(), err)
		}
		peer := 1 - p.C.Rank()
		p.mu.Lock()
		if p.payCount[peer] != 1 {
			t.Fatalf("rank %d consumed payload %d times across the rejection", p.C.Rank(), p.payCount[peer])
		}
		p.mu.Unlock()
	}
	evMu.Lock()
	defer evMu.Unlock()
	if events["1/conn-admission-rej"] == 0 {
		t.Fatalf("server trace lacks conn-admission-rej: %v", events)
	}
	if events["0/conn-rejected"] == 0 {
		t.Fatalf("client trace lacks conn-rejected: %v", events)
	}
	// IB CM REJ semantics: the rejected client must have released its queue
	// pair during backoff (so the budget it pins can breathe) and re-armed a
	// fresh one from the retransmission timer before re-sending the REQ.
	if events["0/conn-rearm"] == 0 {
		t.Fatalf("client trace lacks conn-rearm (rejected QP was held through backoff): %v", events)
	}
	if st := pes[0].HCA.Stats(); st.QPsDestroyed == 0 {
		t.Fatalf("client adapter destroyed no QP across the rejection: %+v", st)
	}
}

// TestQPBudgetExhaustionAborts proves the fatal path terminates instead of
// hanging: with the queue-pair budget fully consumed by the UD endpoint and
// no RC connection to ever evict, a connection attempt must abort the job
// with ExitResourceExhausted.
func TestQPBudgetExhaustionAborts(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, ppn: 1, mode: OnDemand,
		limits: ib.Limits{MaxQPs: 1}})
	err := pes[0].C.AMRequest(1, 1, [4]uint64{}, nil)
	if err == nil {
		t.Fatal("AMRequest succeeded with an unobtainable RC endpoint")
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Code != ExitResourceExhausted {
		t.Fatalf("error = %v, want AbortError with code %d", err, ExitResourceExhausted)
	}
	waitUntil(t, func() bool { return pes[0].C.Err() != nil })
	var got *AbortError
	if !errors.As(pes[0].C.Err(), &got) || got.Code != ExitResourceExhausted {
		t.Fatalf("abort state = %v, want code %d", pes[0].C.Err(), ExitResourceExhausted)
	}
	if st := pes[0].C.Stats(); st.AllocFailures == 0 {
		t.Fatalf("no allocation failures recorded: %+v", st)
	}
}

// TestRegisterHeapBounceFallback exhausts the pinned-memory budget: the
// second heap registration must degrade to a bounced (unpinned, staged)
// region rather than fail, and one-sided traffic through the bounced region
// must still be byte-correct.
func TestRegisterHeapBounceFallback(t *testing.T) {
	// Budget 96 KiB: the 48 KiB bounce slab is pre-pinned at setup, the first
	// 32 KiB heap fits (80 KiB), the second (112 KiB) does not.
	pes, _ := startJob(t, jobOpts{n: 2, ppn: 2, mode: OnDemand,
		limits: ib.Limits{MaxMRBytes: 96 << 10}})
	heap0 := make([]byte, 32<<10)
	heap1 := make([]byte, 32<<10)
	mr0 := pes[0].C.RegisterHeap(heap0)
	if mr0.Bounced() {
		t.Fatal("first registration bounced while the budget still had room")
	}
	mr1 := pes[1].C.RegisterHeap(heap1)
	if !mr1.Bounced() {
		t.Fatal("second registration pinned past the budget instead of bouncing")
	}
	if st := pes[1].C.Stats(); st.BounceFallbacks != 1 || st.AllocFailures != 1 {
		t.Fatalf("fallback accounting: %+v", st)
	}
	if hs := pes[1].HCA.Stats(); hs.BouncedMRs != 1 {
		t.Fatalf("adapter bounced-MR count = %d, want 1", hs.BouncedMRs)
	}
	// Data plane through the degraded region: put then get back.
	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	data := []byte("staged through the bounce slab")
	if err := pes[0].C.Put(1, mr1.Base()+128, mr1.RKey(), data); err != nil {
		t.Fatal(err)
	}
	pes[0].C.Quiet()
	if !bytes.Equal(heap1[128:128+len(data)], data) {
		t.Fatal("put through bounced region did not land")
	}
	buf := make([]byte, len(data))
	if err := pes[0].C.Get(1, mr1.Base()+128, mr1.RKey(), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("get through bounced region = %q", buf)
	}
}

// TestRegisterHeapNoSlabAborts removes the degradation path: a pinned-memory
// budget too small to spare a bounce slab leaves an oversized registration
// nowhere to go, so RegisterHeap must abort the job with
// ExitResourceExhausted (and panic out of the failed PE).
func TestRegisterHeapNoSlabAborts(t *testing.T) {
	// 6 KiB budget: half of it is below the one-page minimum slab, so no
	// bounce path exists; an 8 KiB heap can then neither pin nor bounce.
	pes, _ := startJob(t, jobOpts{n: 1, ppn: 1, mode: OnDemand,
		limits: ib.Limits{MaxMRBytes: 6 << 10}})
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterHeap returned instead of panicking with no degradation path")
		}
		var ae *AbortError
		if err := pes[0].C.Err(); !errors.As(err, &ae) || ae.Code != ExitResourceExhausted {
			t.Fatalf("abort state = %v, want code %d", err, ExitResourceExhausted)
		}
	}()
	pes[0].C.RegisterHeap(make([]byte, 8<<10))
}

// TestEvictionSparesAcceptedConn is the regression guard for the idle-LRU
// victim policy racing an in-flight handshake: a server-side connection in
// connAccepted — its piggybacked payload delivered but the client's RTU still
// unacked — must never be evicted, however old it is, because tearing it down
// would re-run the payload exchange and break exactly-once consumption. The
// test parks one connection in connAccepted by dropping RTUs, forces
// eviction pressure past the live-QP cap, then releases the RTUs and checks
// the parked handshake completes with its payload consumed exactly once.
func TestEvictionSparesAcceptedConn(t *testing.T) {
	var holdRTU atomic.Bool
	holdRTU.Store(true)
	fi := ib.NewFaultInjector(1)
	fi.UDFilter = func(payload []byte) ib.UDVerdict {
		m, err := decodeConnMsg(payload)
		if err != nil || m.Kind != msgConnRTU || m.SrcRank != 0 {
			return ib.VerdictDeliver
		}
		if holdRTU.Load() {
			return ib.VerdictDrop
		}
		return ib.VerdictDeliver
	}
	var evMu sync.Mutex
	evictedAccepted := 0
	pes, _ := startJob(t, jobOpts{n: 3, ppn: 3, mode: OnDemand, faults: fi,
		payloads: true, retrans: fastRetrans, maxLiveRC: 4,
		onEvent: func(rank int, kind string, peer int, vt int64) {
			if rank == 2 && peer == 0 && kind == "conn-evict" {
				evMu.Lock()
				evictedAccepted++
				evMu.Unlock()
			}
		}})
	var mu sync.Mutex
	got := make(map[[2]int]int)
	for _, p := range pes {
		dst := p.C.Rank()
		p.C.RegisterHandler(6, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			got[[2]int{dst, src}]++
			mu.Unlock()
		})
	}
	recvd := func(dst, src int) func() bool {
		return func() bool {
			mu.Lock()
			defer mu.Unlock()
			return got[[2]int{dst, src}] >= 1
		}
	}
	// Park 0->2 in connAccepted on the server: the client side is ready (its
	// RC pair is up, traffic flows) but the dropped RTU pins rank 2's slot.
	if err := pes[0].C.AMRequest(2, 6, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, recvd(2, 0))
	// Pressure: 1<->0 fills the adapter to the cap, then 1->2 forces
	// evictions on both conduits. Rank 2's only candidate is the parked
	// accepted connection, which the victim policy must skip.
	if err := pes[1].C.AMRequest(0, 6, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, recvd(0, 1))
	if err := pes[1].C.AMRequest(2, 6, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, recvd(2, 1))
	// Release the held RTUs: the server's REP retransmission elicits a fresh
	// RTU and the parked handshake completes.
	holdRTU.Store(false)
	waitUntil(t, func() bool { return pes[2].C.Connected(0) })
	evMu.Lock()
	if evictedAccepted != 0 {
		t.Fatalf("accepted connection evicted %d times under cap pressure", evictedAccepted)
	}
	evMu.Unlock()
	for _, pair := range [][2]int{{0, 2}, {2, 0}} {
		p := pes[pair[0]]
		p.mu.Lock()
		if n := p.payCount[pair[1]]; n != 1 {
			t.Fatalf("rank %d consumed payload of %d %d times", pair[0], pair[1], n)
		}
		p.mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	for k, c := range got {
		if c != 1 {
			t.Fatalf("message %v delivered %d times, want 1", k, c)
		}
	}
}

// TestUnbudgetedRunsPayNoResourceCost is the resource plane's happy-path
// guard: with no budgets armed, none of its machinery may trigger — no
// stalls, no NAKs, no allocation failures, no bounced regions, no
// rejections — on either the conduit or the adapter.
func TestUnbudgetedRunsPayNoResourceCost(t *testing.T) {
	const n = 4
	pes, run := startJob(t, jobOpts{n: n, ppn: 2, mode: OnDemand, payloads: true})
	var mu sync.Mutex
	recv := 0
	for _, p := range pes {
		p.C.RegisterHandler(6, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			recv++
			mu.Unlock()
		})
	}
	run(func(p *pe) {
		for peer := 0; peer < n; peer++ {
			if err := p.C.AMRequest(peer, 6, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		}
	})
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return recv == n*n
	})
	for _, p := range pes {
		st := p.C.Stats()
		if st.CreditStalls != 0 || st.RNRNaks != 0 || st.AllocFailures != 0 ||
			st.BounceFallbacks != 0 || st.AdmissionRejects != 0 {
			t.Fatalf("rank %d: resource-pressure activity on an unbudgeted run: %+v", p.C.Rank(), st)
		}
		hs := p.HCA.Stats()
		if hs.AllocFailures != 0 || hs.RNRNaks != 0 || hs.BouncedMRs != 0 {
			t.Fatalf("rank %d: adapter resource activity on an unbudgeted run: %+v", p.C.Rank(), hs)
		}
		if p.HCA.Limited() {
			t.Fatalf("rank %d: adapter reports budgets armed", p.C.Rank())
		}
	}
}
