package gasnet

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"goshmem/internal/ib"
)

// chaosSeed returns the soak's injector seed: CHAOS_SEED if set, else the
// wall clock. The seed is printed on failure so any run can be replayed with
//
//	CHAOS_SEED=<seed> go test ./internal/gasnet -run TestChaosSoak
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

// TestChaosSoak is the deterministic chaos harness for the connection
// lifecycle: N PEs exchange randomized all-to-all traffic while the fault
// plane injects drops, duplicates, bounded reordering, RC link flaps, PE
// slowdowns and live-QP-cap evictions, all from one seed. It asserts the
// DESIGN.md section 6 invariants under that schedule:
//
//   - every message sent is delivered exactly once (no loss, no duplication)
//   - the connect payload is consumed exactly once per peer
//   - every fully established pair has exactly one surviving RC connection,
//     cross-linked end to end
//   - the resilience machinery actually exercised (flaps, reconnects,
//     evictions all nonzero)
func TestChaosSoak(t *testing.T) {
	n, ppn, rounds := 32, 8, 3
	if testing.Short() {
		n, ppn, rounds = 12, 4, 2
	}
	seed := chaosSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("replay with CHAOS_SEED=%d", seed)
		}
	}()

	fi := ib.NewFaultInjector(seed)
	fi.DropProb = 0.25
	fi.MaxDrops = 200
	fi.DupProb = 0.15
	fi.ReorderProb = 0.2
	fi.ReorderWindow = 4
	fi.MaxReorders = 100
	fi.FlapProb = 0.05
	fi.MaxFlaps = 12
	fi.SlowProb = 0.02
	fi.SlowTime = 500_000 // 0.5 ms of virtual jitter

	qpCap := 3 * n / 4 // below the full mesh each HCA would otherwise carry
	pes, run := startJob(t, jobOpts{
		n: n, ppn: ppn, mode: OnDemand, faults: fi, payloads: true,
		maxLiveRC: qpCap, retrans: fastRetrans,
	})

	// Exactly-once ledger: every AM carries (src, per-destination sequence).
	var mu sync.Mutex
	recv := make(map[[3]int]int) // {dst, src, seq} -> deliveries
	for _, p := range pes {
		dst := p.C.Rank()
		p.C.RegisterHandler(9, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			recv[[3]int{dst, src, int(a[0])}]++
			mu.Unlock()
		})
	}

	// Randomized traffic: each PE walks a seeded schedule of peers. The
	// per-PE rng derives from the soak seed, so the whole run replays from
	// CHAOS_SEED alone.
	sent := make([][]int, n) // sent[src][dst] = number of messages sent
	for i := range sent {
		sent[i] = make([]int, n)
	}
	run(func(p *pe) {
		src := p.C.Rank()
		rng := rand.New(rand.NewSource(seed + int64(src)*1009))
		for r := 0; r < rounds; r++ {
			for _, dst := range rng.Perm(n) {
				if rng.Float64() < 0.35 {
					continue // irregular pattern: skip some peers some rounds
				}
				seq := sent[src][dst]
				sent[src][dst]++
				if err := p.C.AMRequest(dst, 9, [4]uint64{uint64(seq)}, []byte(fmt.Sprintf("m-%d-%d-%d", src, dst, seq))); err != nil {
					t.Errorf("AM %d->%d: %v", src, dst, err)
				}
			}
		}
		// Verification round: one final message to every peer, so every pair
		// ends the soak with a live, fully re-established connection.
		for dst := 0; dst < n; dst++ {
			seq := sent[src][dst]
			sent[src][dst]++
			if err := p.C.AMRequest(dst, 9, [4]uint64{uint64(seq)}, nil); err != nil {
				t.Errorf("AM %d->%d: %v", src, dst, err)
			}
		}
	})

	total := 0
	for src := range sent {
		for _, k := range sent[src] {
			total += k
		}
	}
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) == total
	})

	// Invariant: exactly-once delivery for every (src, dst, seq).
	mu.Lock()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			for seq := 0; seq < sent[src][dst]; seq++ {
				if c := recv[[3]int{dst, src, seq}]; c != 1 {
					mu.Unlock()
					t.Fatalf("message %d->%d seq %d delivered %d times, want 1", src, dst, seq, c)
				}
			}
		}
	}
	mu.Unlock()

	// Invariant: payload consumed exactly once per peer, across every
	// reconnect and eviction the schedule caused.
	for _, p := range pes {
		p.mu.Lock()
		for peer, cnt := range p.payCount {
			if cnt != 1 {
				p.mu.Unlock()
				t.Fatalf("rank %d consumed payload of %d %d times", p.C.Rank(), peer, cnt)
			}
		}
		p.mu.Unlock()
	}

	// Invariant: exactly one surviving RC connection per fully ready pair,
	// cross-linked end to end (my QP's remote is your QP and vice versa).
	for i, pi := range pes {
		for j, pj := range pes {
			if j <= i {
				continue
			}
			pi.C.connMu.Lock()
			ci := pi.C.peekConn(j)
			var qi *ib.QP
			if ci != nil && ci.state == connReady {
				qi = ci.qp
			}
			pi.C.connMu.Unlock()
			pj.C.connMu.Lock()
			cj := pj.C.peekConn(i)
			var qj *ib.QP
			if cj != nil && cj.state == connReady {
				qj = cj.qp
			}
			pj.C.connMu.Unlock()
			if qi == nil || qj == nil {
				continue // pair not (or no longer) fully established: legal
			}
			if qi.Remote() != qj.Addr() || qj.Remote() != qi.Addr() {
				t.Fatalf("pair (%d,%d): surviving connections not cross-linked: %v<->%v vs %v<->%v",
					i, j, qi.Addr(), qi.Remote(), qj.Addr(), qj.Remote())
			}
		}
	}

	// The schedule must actually have exercised the machinery.
	var faults, reconnects, evictions int
	for _, p := range pes {
		st := p.C.Stats()
		faults += st.LinkFaults
		reconnects += st.Reconnects
		evictions += st.Evictions
	}
	if fi.Flaps() < 5 {
		t.Errorf("flaps injected = %d, want >= 5 (schedule too tame)", fi.Flaps())
	}
	if faults == 0 {
		t.Error("no link faults detected despite injected flaps")
	}
	if reconnects == 0 {
		t.Error("no reconnects despite flaps and evictions")
	}
	if evictions == 0 {
		t.Errorf("no evictions despite cap %d below the %d-PE mesh", qpCap, n)
	}
	t.Logf("seed=%d total=%d drops=%d dups/reorders=%d flaps=%d slowdowns=%d faults=%d reconnects=%d evictions=%d",
		seed, total, fi.Drops(), fi.Reorders(), fi.Flaps(), fi.Slowdowns(), faults, reconnects, evictions)
}
