package gasnet

import (
	"unsafe"

	"goshmem/internal/ib"
	"goshmem/internal/obs"
)

// Footprint models this conduit's retained memory for the engine census
// (obs.FootprintReporter). One conduit exists per PE, so at np PEs the
// census sums np of these; the static-mode scaling story — O(np) connection
// shells per PE, O(np²) job-wide — falls straight out of the "conns"
// category, which is exactly the curve the paper's Fig. 5(a) plots.
//
// All quantities are object counts × struct-shell sizes plus exact lengths
// (len, never cap), so fixed-seed modeled numbers are byte-stable; capacity
// slack from append growth is covered by the census drift tolerance.
//
// Locks are taken one at a time (never nested), so the census boundary can
// never deadlock against the progress goroutine.
func (c *Conduit) Footprint() []obs.FootprintItem {
	connSize := int64(unsafe.Sizeof(conn{}))
	pendSize := int64(unsafe.Sizeof(pendingWR{}))
	retSize := int64(unsafe.Sizeof(retainedTx{}))
	heldSize := int64(unsafe.Sizeof(heldReq{}))
	defAMSize := int64(unsafe.Sizeof(deferredAM{}))
	complSize := int64(unsafe.Sizeof(ib.Completion{}))

	var conns, retained, credits, misc obs.FootprintItem
	misc.Bytes = int64(unsafe.Sizeof(Conduit{}))
	misc.Objects = 1

	c.connMu.Lock()
	// The connection table itself: a dense pointer slice in static mode, a
	// map in on-demand mode — the allocation asymmetry under study.
	misc.Bytes += int64(len(c.connSlice)) * int64(unsafe.Sizeof((*conn)(nil)))
	misc.Bytes += int64(len(c.connMap)) * (int64(unsafe.Sizeof((*conn)(nil))) + mapEntryOverhead)
	forEachConn(c, func(cn *conn) {
		conns.Objects++
		conns.Bytes += connSize + int64(len(cn.pending))*pendSize
		for _, tx := range cn.unacked {
			retained.Objects++
			retained.Bytes += retSize + int64(len(tx.data))
		}
		credits.Objects += int64(len(cn.creditRel))
		credits.Bytes += int64(len(cn.creditRel)) * 8
	})
	misc.Bytes += int64(len(c.heldReqs)) * heldSize
	misc.Bytes += int64(len(c.qpPeer)) * (12 + mapEntryOverhead)
	misc.Bytes += int64(len(c.deadPeers)) * (9 + mapEntryOverhead)
	for _, ams := range c.deferredAM {
		for _, am := range ams {
			misc.Bytes += defAMSize + int64(len(am.payload))
		}
	}
	c.connMu.Unlock()

	if c.cq != nil {
		misc.Bytes += int64(c.cq.Len()) * complSize
	}

	c.waiterMu.Lock()
	misc.Bytes += int64(len(c.waiters)) * (16 + mapEntryOverhead)
	for _, buf := range c.pendingGets {
		misc.Bytes += int64(len(buf)) + mapEntryOverhead
	}
	c.waiterMu.Unlock()

	c.hbMu.Lock()
	misc.Bytes += int64(len(c.health)) * (int64(unsafe.Sizeof(peerHealth{})) + mapEntryOverhead)
	c.hbMu.Unlock()

	c.statMu.Lock()
	misc.Bytes += int64(len(c.peers)) * (8 + mapEntryOverhead)
	c.statMu.Unlock()

	// The endpoint directory (udVals) is deliberately NOT charged here: it is
	// a reference to the single job-wide slice the PMI server's AllgatherOp
	// retains — every conduit shares the same backing, the slice header is
	// already inside sizeof(Conduit), and the np string headers plus their
	// encoded-Dest contents are attributed once by the pmi reporter
	// (pmi/allgather). Charging contents per PE over-modeled the job by np×
	// the directory size; the census drift check is what caught it. Static
	// mode retains even less: udFromKVS resolves through the server on every
	// lookup.

	return []obs.FootprintItem{
		{Subsystem: "gasnet", Category: "conns", Bytes: conns.Bytes, Objects: conns.Objects},
		{Subsystem: "gasnet", Category: "retained-frames", Bytes: retained.Bytes, Objects: retained.Objects},
		{Subsystem: "gasnet", Category: "credit-state", Bytes: credits.Bytes, Objects: credits.Objects},
		{Subsystem: "gasnet", Category: "conduit", Bytes: misc.Bytes, Objects: misc.Objects},
	}
}

// forEachConn visits every connection slot currently allocated. Caller holds
// connMu.
func forEachConn(c *Conduit, f func(*conn)) {
	for _, cn := range c.connSlice {
		if cn != nil {
			f(cn)
		}
	}
	for _, cn := range c.connMap {
		if cn != nil {
			f(cn)
		}
	}
}

// mapEntryOverhead mirrors obs.mapEntryOverhead: the estimated per-entry
// cost of a Go map beyond key and value.
const mapEntryOverhead = 48
