package gasnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"goshmem/internal/ib"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

// pe bundles one simulated process for conduit tests.
type pe struct {
	C   *Conduit
	Clk *vclock.Clock
	HCA *ib.HCA

	mu       sync.Mutex
	payloads map[int][]byte // peer -> payload received
	payCount map[int]int
}

// jobOpts configures a test job.
type jobOpts struct {
	n, ppn      int
	mode        Mode
	blockingPMI bool
	faults      *ib.FaultInjector
	payloads    bool
	model       *vclock.CostModel
	maxLiveRC   int             // per-HCA live RC cap (0 = unbounded)
	limits      ib.Limits       // per-HCA resource budgets (zero = unbudgeted)
	retrans     RetransConfig   // retransmission timing override
	heartbeat   HeartbeatConfig // failure-detector timing override

	// onEvent, when set, receives every connection-lifecycle trace event
	// from every PE (rank is the observing PE). Used by fault-plane tests
	// to assert on and debug handshake recovery schedules.
	onEvent func(rank int, kind string, peer int, vt int64)
}

// startJob builds a fabric, a PMI server and n conduits, exchanges endpoints
// and marks every PE ready. It returns the PEs and a runner that executes a
// body on every PE concurrently.
func startJob(t *testing.T, o jobOpts) ([]*pe, func(body func(p *pe))) {
	t.Helper()
	if o.ppn == 0 {
		o.ppn = 2
	}
	if o.model == nil {
		o.model = vclock.Default()
	}
	fab := ib.NewFabric(o.model, o.faults)
	srv := pmi.NewServer(o.n, o.model)
	nodes := (o.n + o.ppn - 1) / o.ppn
	hcas := make([]*ib.HCA, nodes)
	bars := make([]*vclock.VBarrier, nodes)
	for i := range hcas {
		hcas[i] = fab.AddHCA()
		if o.limits != (ib.Limits{}) {
			hcas[i].SetLimits(o.limits, vclock.NewClock(0))
		}
		ppnHere := o.ppn
		if i == nodes-1 {
			ppnHere = o.n - i*o.ppn
		}
		bars[i] = vclock.NewVBarrier(ppnHere)
	}
	pes := make([]*pe, o.n)
	for r := 0; r < o.n; r++ {
		p := &pe{Clk: vclock.NewClock(0), payloads: make(map[int][]byte), payCount: make(map[int]int)}
		p.HCA = hcas[r/o.ppn]
		cfg := Config{
			Rank: r, NProcs: o.n, Node: r / o.ppn, PPN: o.ppn,
			HCA: p.HCA, PMI: srv.Client(r, p.Clk), Clock: p.Clk,
			Mode: o.mode, BlockingPMI: o.blockingPMI,
			NodeBarrier: bars[r/o.ppn],
			MaxLiveRC:   o.maxLiveRC,
			Retrans:     o.retrans,
			Heartbeat:   o.heartbeat,
		}
		if o.onEvent != nil {
			rank := r
			ev := o.onEvent
			cfg.OnEvent = func(kind string, peer int, vt int64) { ev(rank, kind, peer, vt) }
		}
		if o.payloads {
			rank := r
			cfg.ConnectPayload = func() []byte { return []byte(fmt.Sprintf("seg-of-%d", rank)) }
			cfg.OnConnectPayload = func(peer int, b []byte, at int64) {
				p.mu.Lock()
				p.payloads[peer] = append([]byte(nil), b...)
				p.payCount[peer]++
				p.mu.Unlock()
			}
		}
		pes[r] = p
		pes[r].C = New(cfg)
	}
	run := func(body func(p *pe)) {
		var wg sync.WaitGroup
		for _, p := range pes {
			wg.Add(1)
			go func(p *pe) {
				defer wg.Done()
				body(p)
			}(p)
		}
		wg.Wait()
	}
	// Bootstrap: exchange endpoints and mark ready, concurrently (the fence
	// in blocking mode synchronizes all PEs).
	run(func(p *pe) {
		p.C.ExchangeEndpoints()
		p.C.SetReady()
	})
	t.Cleanup(func() {
		for _, p := range pes {
			p.C.Close()
		}
	})
	return pes, run
}

func TestOnDemandAMDelivery(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	got := make(chan string, 1)
	pes[1].C.RegisterHandler(7, func(src int, args [4]uint64, payload []byte, at int64) {
		got <- fmt.Sprintf("src=%d a0=%d pay=%s at>0=%v", src, args[0], payload, at > 0)
	})
	if err := pes[0].C.AMRequest(1, 7, [4]uint64{42}, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if s := <-got; s != "src=0 a0=42 pay=hello at>0=true" {
		t.Fatalf("AM mismatch: %s", s)
	}
	// The connection was established on demand, exactly one per side.
	if !pes[0].C.Connected(1) {
		t.Fatal("rank 0 should be connected to 1")
	}
}

func TestPayloadPiggybackExactlyOnceBothSides(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, payloads: true})
	done := make(chan struct{})
	pes[1].C.RegisterHandler(1, func(src int, args [4]uint64, payload []byte, at int64) { close(done) })
	if err := pes[0].C.AMRequest(1, 1, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	<-done
	// Client got server's payload before the AM could even be flushed.
	pes[0].mu.Lock()
	p01 := string(pes[0].payloads[1])
	n01 := pes[0].payCount[1]
	pes[0].mu.Unlock()
	if p01 != "seg-of-1" || n01 != 1 {
		t.Fatalf("client payload = %q (count %d)", p01, n01)
	}
	pes[1].mu.Lock()
	p10 := string(pes[1].payloads[0])
	n10 := pes[1].payCount[0]
	pes[1].mu.Unlock()
	if p10 != "seg-of-0" || n10 != 1 {
		t.Fatalf("server payload = %q (count %d)", p10, n10)
	}
}

func TestEnsureConnectedDeliversPayload(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 4, ppn: 2, mode: OnDemand, payloads: true})
	if err := pes[2].C.EnsureConnected(3); err != nil {
		t.Fatal(err)
	}
	pes[2].mu.Lock()
	defer pes[2].mu.Unlock()
	if string(pes[2].payloads[3]) != "seg-of-3" {
		t.Fatalf("payload after EnsureConnected = %q", pes[2].payloads[3])
	}
}

func TestRMAThroughConduit(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	heap := make([]byte, 1024)
	mr := pes[1].HCA.RegisterMR(heap, pes[1].Clk)

	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	data := []byte("one-sided payload")
	if err := pes[0].C.Put(1, mr.Base()+64, mr.RKey(), data); err != nil {
		t.Fatal(err)
	}
	pes[0].C.Quiet()
	if !bytes.Equal(heap[64:64+len(data)], data) {
		t.Fatal("put did not land")
	}
	buf := make([]byte, len(data))
	if err := pes[0].C.Get(1, mr.Base()+64, mr.RKey(), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("get = %q", buf)
	}
	if old, err := pes[0].C.FetchAdd(1, mr.Base()+512, mr.RKey(), 9); err != nil || old != 0 {
		t.Fatalf("fetchadd: %d %v", old, err)
	}
	if old, err := pes[0].C.Swap(1, mr.Base()+512, mr.RKey(), 100); err != nil || old != 9 {
		t.Fatalf("swap: %d %v", old, err)
	}
	if old, err := pes[0].C.CompareSwap(1, mr.Base()+512, mr.RKey(), 100, 7); err != nil || old != 100 {
		t.Fatalf("cswap: %d %v", old, err)
	}
	if got := mr.LoadUint64(512); got != 7 {
		t.Fatalf("final atomic value = %d", got)
	}
	// Clock advanced past the round trips.
	if pes[0].Clk.Now() == 0 {
		t.Fatal("client clock did not advance")
	}
}

// Queued traffic behind the handshake must flush in order.
func TestPendingFlushOrder(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	const k = 50
	got := make(chan uint64, k)
	pes[1].C.RegisterHandler(2, func(src int, args [4]uint64, payload []byte, at int64) {
		got <- args[0]
	})
	for i := 0; i < k; i++ {
		if err := pes[0].C.AMRequest(1, 2, [4]uint64{uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		if v := <-got; v != uint64(i) {
			t.Fatalf("AM %d arrived out of order (got %d)", i, v)
		}
	}
}

func TestSelfCommunication(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 1, ppn: 1, mode: OnDemand, payloads: true})
	done := make(chan int, 1)
	pes[0].C.RegisterHandler(3, func(src int, args [4]uint64, payload []byte, at int64) {
		done <- src
	})
	if err := pes[0].C.AMRequest(0, 3, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	if src := <-done; src != 0 {
		t.Fatalf("self AM src = %d", src)
	}
	pes[0].mu.Lock()
	defer pes[0].mu.Unlock()
	if string(pes[0].payloads[0]) != "seg-of-0" {
		t.Fatal("self payload missing")
	}
}

func TestStaticConnectAll(t *testing.T) {
	const n = 8
	pes, run := startJob(t, jobOpts{n: n, ppn: 4, mode: Static})
	run(func(p *pe) {
		if err := p.C.ConnectAll(); err != nil {
			t.Errorf("rank %d: %v", p.C.Rank(), err)
		}
	})
	for _, p := range pes {
		if got := p.C.NumConnected(); got != n {
			t.Fatalf("rank %d: %d ready conns, want %d", p.C.Rank(), got, n)
		}
		st := p.C.Stats()
		// Each PE creates ~N RC endpoints: one per pair it participates in,
		// two for the self loopback, plus its UD endpoint.
		if st.RCQPsCreated < n || st.RCQPsCreated > n+2 {
			t.Fatalf("rank %d: RC QPs created = %d, want ~%d", p.C.Rank(), st.RCQPsCreated, n)
		}
	}
	// Everyone can message everyone.
	var mu sync.Mutex
	recv := make(map[int]int)
	for _, p := range pes {
		rank := p.C.Rank()
		p.C.RegisterHandler(9, func(src int, args [4]uint64, payload []byte, at int64) {
			mu.Lock()
			recv[rank]++
			mu.Unlock()
		})
	}
	done := make(chan struct{})
	cnt := 0
	mu.Lock()
	mu.Unlock()
	run(func(p *pe) {
		for peer := 0; peer < n; peer++ {
			if err := p.C.AMRequest(peer, 9, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		}
	})
	// Drain: each PE should receive n messages.
	for {
		mu.Lock()
		cnt = 0
		for _, v := range recv {
			cnt += v
		}
		mu.Unlock()
		if cnt == n*n {
			close(done)
			break
		}
	}
}

func TestCollisionSimultaneousConnect(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		pes, run := startJob(t, jobOpts{n: 2, mode: OnDemand, payloads: true})
		gotA := make(chan struct{}, 1)
		gotB := make(chan struct{}, 1)
		pes[0].C.RegisterHandler(4, func(src int, a [4]uint64, p []byte, at int64) { gotA <- struct{}{} })
		pes[1].C.RegisterHandler(4, func(src int, a [4]uint64, p []byte, at int64) { gotB <- struct{}{} })
		// Both sides initiate at once.
		run(func(p *pe) {
			peer := 1 - p.C.Rank()
			if err := p.C.AMRequest(peer, 4, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		})
		<-gotA
		<-gotB
		for _, p := range pes {
			peer := 1 - p.C.Rank()
			if !p.C.Connected(peer) {
				t.Fatalf("trial %d: rank %d not connected", trial, p.C.Rank())
			}
			if p.C.NumConnected() != 1 {
				t.Fatalf("trial %d: rank %d has %d conns, want 1", trial, p.C.Rank(), p.C.NumConnected())
			}
			p.mu.Lock()
			if p.payCount[peer] != 1 {
				t.Fatalf("trial %d: rank %d consumed payload %d times", trial, p.C.Rank(), p.payCount[peer])
			}
			p.mu.Unlock()
		}
		for _, p := range pes {
			p.C.Close()
		}
	}
}

func TestHandshakeSurvivesUDDrops(t *testing.T) {
	fi := ib.NewFaultInjector(3)
	fi.DropFirstN = 3 // kill the first REQ attempts, force retransmission
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, payloads: true})
	done := make(chan struct{})
	pes[1].C.RegisterHandler(5, func(src int, a [4]uint64, p []byte, at int64) { close(done) })
	if err := pes[0].C.AMRequest(1, 5, [4]uint64{}, nil); err != nil {
		t.Fatal(err)
	}
	<-done
	if pes[0].C.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions after forced drops")
	}
	pes[0].mu.Lock()
	defer pes[0].mu.Unlock()
	if pes[0].payCount[1] != 1 {
		t.Fatalf("payload consumed %d times under drops", pes[0].payCount[1])
	}
}

func TestHandshakeSurvivesRandomDropsAndDups(t *testing.T) {
	fi := ib.NewFaultInjector(11)
	fi.DropProb = 0.4
	fi.DupProb = 0.3
	fi.MaxDrops = 40
	const n = 6
	pes, run := startJob(t, jobOpts{n: n, ppn: 3, mode: OnDemand, faults: fi, payloads: true})
	var mu sync.Mutex
	recv := 0
	cond := sync.NewCond(&mu)
	for _, p := range pes {
		p.C.RegisterHandler(6, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			recv++
			mu.Unlock()
			cond.Broadcast()
		})
	}
	run(func(p *pe) {
		for peer := 0; peer < n; peer++ {
			if err := p.C.AMRequest(peer, 6, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		}
	})
	mu.Lock()
	for recv < n*n {
		cond.Wait()
	}
	mu.Unlock()
	// Exactly-once payload consumption per pair despite drops/dups.
	for _, p := range pes {
		p.mu.Lock()
		for peer, cnt := range p.payCount {
			if cnt != 1 {
				t.Fatalf("rank %d consumed payload of %d %d times", p.C.Rank(), peer, cnt)
			}
		}
		p.mu.Unlock()
	}
}

func TestQuietWaitsForAllPuts(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	heap := make([]byte, 1<<16)
	mr := pes[1].HCA.RegisterMR(heap, pes[1].Clk)
	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		buf := bytes.Repeat([]byte{byte(i)}, 64)
		if err := pes[0].C.Put(1, mr.Base()+uint64(i*64), mr.RKey(), buf); err != nil {
			t.Fatal(err)
		}
	}
	pes[0].C.Quiet()
	for i := 0; i < 100; i++ {
		if heap[i*64] != byte(i) {
			t.Fatalf("slot %d not written", i)
		}
	}
}

func TestOnDemandCreatesFewerEndpointsThanStatic(t *testing.T) {
	const n = 8
	countQPs := func(mode Mode) int {
		pes, run := startJob(t, jobOpts{n: n, ppn: 4, mode: mode})
		var mu sync.Mutex
		got := 0
		cond := sync.NewCond(&mu)
		for _, p := range pes {
			p.C.RegisterHandler(8, func(src int, a [4]uint64, pay []byte, at int64) {
				mu.Lock()
				got++
				mu.Unlock()
				cond.Broadcast()
			})
		}
		run(func(p *pe) {
			if mode == Static {
				if err := p.C.ConnectAll(); err != nil {
					t.Error(err)
				}
			}
			// Ring pattern: each PE talks to one neighbour only.
			if err := p.C.AMRequest((p.C.Rank()+1)%n, 8, [4]uint64{}, nil); err != nil {
				t.Error(err)
			}
		})
		mu.Lock()
		for got < n {
			cond.Wait()
		}
		mu.Unlock()
		total := 0
		for _, p := range pes {
			total += p.C.Stats().RCQPsCreated
		}
		for _, p := range pes {
			p.C.Close()
		}
		return total
	}
	static := countQPs(Static)
	onDemand := countQPs(OnDemand)
	if onDemand*2 >= static {
		t.Fatalf("on-demand should use far fewer endpoints: static=%d ondemand=%d", static, onDemand)
	}
}

func TestIntraNodeBarrier(t *testing.T) {
	pes, run := startJob(t, jobOpts{n: 4, ppn: 4, mode: OnDemand})
	run(func(p *pe) {
		p.Clk.Advance(int64(p.C.Rank()) * 1000)
		p.C.IntraNodeBarrier()
	})
	want := pes[0].Clk.Now()
	for i, p := range pes {
		if p.Clk.Now() != want {
			t.Fatalf("clock %d = %d, want %d", i, p.Clk.Now(), want)
		}
	}
	if want < 3000 {
		t.Fatalf("barrier release %d below max arrival", want)
	}
}

func TestBlockingVsNonBlockingExchangeCost(t *testing.T) {
	cost := func(blocking bool) int64 {
		pes, _ := startJob(t, jobOpts{n: 32, ppn: 8, mode: OnDemand, blockingPMI: blocking})
		max := int64(0)
		for _, p := range pes {
			if p.Clk.Now() > max {
				max = p.Clk.Now()
			}
		}
		for _, p := range pes {
			p.C.Close()
		}
		return max
	}
	blocking := cost(true)
	nonBlocking := cost(false)
	if nonBlocking >= blocking {
		t.Fatalf("non-blocking exchange should be cheaper at init: nb=%d b=%d", nonBlocking, blocking)
	}
}

func TestPostToBadPeer(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	if err := pes[0].C.AMRequest(99, 1, [4]uint64{}, nil); err == nil {
		t.Fatal("AM to out-of-range peer should fail")
	}
	if err := pes[0].C.EnsureConnected(-1); err == nil {
		t.Fatal("EnsureConnected(-1) should fail")
	}
}

func TestStatsPeerTracking(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 4, ppn: 4, mode: OnDemand})
	done := make(chan struct{}, 4)
	for _, p := range pes {
		p.C.RegisterHandler(1, func(src int, a [4]uint64, pay []byte, at int64) { done <- struct{}{} })
	}
	pes[0].C.AMRequest(1, 1, [4]uint64{}, nil)
	pes[0].C.AMRequest(1, 1, [4]uint64{}, nil)
	pes[0].C.AMRequest(2, 1, [4]uint64{}, nil)
	<-done
	<-done
	<-done
	st := pes[0].C.Stats()
	if st.PeersContacted != 2 {
		t.Fatalf("peers contacted = %d, want 2", st.PeersContacted)
	}
	if st.AMsSent != 3 {
		t.Fatalf("AMs sent = %d, want 3", st.AMsSent)
	}
}

func TestWireEncoding(t *testing.T) {
	m := connMsg{Kind: msgConnReq, SrcRank: 12345, Seq: 99,
		RC: ib.Dest{LID: 7, QPN: 4242}, UD: ib.Dest{LID: 8, QPN: 17},
		Payload: []byte("segments")}
	got, err := decodeConnMsg(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.SrcRank != m.SrcRank || got.Seq != m.Seq ||
		got.RC != m.RC || got.UD != m.UD || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, m)
	}
	if _, err := decodeConnMsg([]byte{1, 2}); err == nil {
		t.Fatal("short message should fail")
	}

	b := encodeAM(9, 77, [4]uint64{1, 2, 3, 4}, []byte("pp"))
	h, src, args, pay, err := decodeAM(b)
	if err != nil || h != 9 || src != 77 || args != [4]uint64{1, 2, 3, 4} || string(pay) != "pp" {
		t.Fatalf("AM roundtrip: %v %v %v %v %v", h, src, args, pay, err)
	}

	d := ib.Dest{LID: 300, QPN: 123456}
	got2, err := decodeDest(encodeDest(d))
	if err != nil || got2 != d {
		t.Fatalf("dest roundtrip: %v %v", got2, err)
	}
	if _, err := decodeDest("garbage"); err == nil {
		t.Fatal("bad dest should fail")
	}
}
