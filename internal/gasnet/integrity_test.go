package gasnet

import (
	"bytes"
	"sync"
	"testing"

	"goshmem/internal/ib"
)

// TestRCTrailerCatchesBitFlips is the fuzz-style sweep over the RC integrity
// trailer: every single-bit flip anywhere in a framed buffer — inner message,
// sequence word, epoch word, or the CRC itself — must make splitRCTrailer
// reject the frame. A silent pass anywhere would let corrupted payloads reach
// an AM handler.
func TestRCTrailerCatchesBitFlips(t *testing.T) {
	inner := encodeAM(5, 3, [4]uint64{1, 2, 3, 4}, []byte("payload-under-test"))
	framed := appendRCTrailer(inner, 7, 2)
	got, seq, epoch, ok := splitRCTrailer(framed)
	if !ok || seq != 7 || epoch != 2 || !bytes.Equal(got, inner) {
		t.Fatalf("pristine frame: ok=%v seq=%d epoch=%d", ok, seq, epoch)
	}
	for bit := 0; bit < len(framed)*8; bit++ {
		b := append([]byte(nil), framed...)
		b[bit/8] ^= 1 << (bit % 8)
		if _, _, _, ok := splitRCTrailer(b); ok {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
	// Truncation below the trailer length is corruption, not a short read.
	for _, n := range []int{0, 1, rcTrailerLen - 1} {
		if _, _, _, ok := splitRCTrailer(framed[:n]); ok {
			t.Fatalf("truncated frame (%d bytes) accepted", n)
		}
	}
	// The trailer append must not alias the caller's buffer: retained frames
	// are immutable once posted.
	framed[0] ^= 0xFF
	if inner[0] == framed[0] {
		t.Fatal("appendRCTrailer aliased the input frame")
	}
}

// TestQuietBlocksOnTornWrite is the ordering guarantee for one-sided traffic:
// a put whose RDMA write is torn mid-transfer (a prefix lands, then the link
// dies) must not let Quiet complete until the reconnect has replayed the full
// payload over the torn prefix. After Quiet, the target holds the complete
// put — never the tear.
func TestQuietBlocksOnTornWrite(t *testing.T) {
	fi := ib.NewFaultInjector(31)
	fi.TornWriteProb = 1.0
	fi.MaxTornWrites = 1
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, retrans: fastRetrans})
	heap := make([]byte, 4*ib.RCMTU)
	mr := pes[1].HCA.RegisterMR(heap, pes[1].Clk)
	var mu sync.Mutex
	var writes []int // lengths, in arrival order
	mr.SetOnWrite(func(off, n int, vtime int64) {
		mu.Lock()
		writes = append(writes, n)
		mu.Unlock()
	})
	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	// Tears act at packet granularity, so the put must span several packets.
	payload := bytes.Repeat([]byte{0xC3}, 3*ib.RCMTU)
	if err := pes[0].C.Put(1, mr.Base()+64, mr.RKey(), payload); err != nil {
		t.Fatal(err)
	}
	pes[0].C.Quiet()

	if !bytes.Equal(heap[64:64+len(payload)], payload) {
		t.Fatal("torn prefix still visible after Quiet — replay did not overwrite it")
	}
	if fi.TornWrites() != 1 {
		t.Fatalf("injected tears = %d, want 1", fi.TornWrites())
	}
	st := pes[0].C.Stats()
	if st.TornWrites < 1 {
		t.Fatalf("conduit TornWrites = %d, want >= 1", st.TornWrites)
	}
	if st.LinkFaults < 1 || st.Reconnects < 1 {
		t.Fatalf("tear must drive a reconnect: faults=%d reconnects=%d", st.LinkFaults, st.Reconnects)
	}
	// The write log shows the tear (a strict prefix) before the clean replay.
	mu.Lock()
	defer mu.Unlock()
	if len(writes) < 2 {
		t.Fatalf("write log = %v, want torn prefix then replay", writes)
	}
	if writes[0] <= 0 || writes[0] >= len(payload) || writes[0]%ib.RCMTU != 0 {
		t.Fatalf("first landing = %d bytes, want a strict whole-packet prefix of %d", writes[0], len(payload))
	}
	if writes[len(writes)-1] != len(payload) {
		t.Fatalf("final landing = %d bytes, want the full %d", writes[len(writes)-1], len(payload))
	}
}

// TestAtomicExactlyOnceAcrossReconnect forces both recovery paths under a
// stream of non-idempotent FetchAdds: the first RC post hits a link flap
// (teardown, reconnect, replay over a fresh connection), and every data ACK
// for a while is dropped, so the RTO must retransmit already-applied requests
// and the target's dedup ledger must suppress them. The final counter value
// equals the op count exactly — even after the retransmission storm settles —
// and every returned old value is distinct and in order: each add applied
// exactly once.
func TestAtomicExactlyOnceAcrossReconnect(t *testing.T) {
	const ops = 32
	fi := ib.NewFaultInjector(23)
	fi.FlapProb = 1.0
	fi.MaxFlaps = 1
	// ACKs are cumulative, so a single lost ACK heals silently under the next
	// one; dropping a long run forces the RTO to resend applied-but-unacked
	// requests, which the receiver must dedup.
	fi.UDFilter = dropFirstKind(msgDataAck, 100)
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, retrans: fastRetrans})
	heap := make([]byte, 64)
	mr := pes[1].HCA.RegisterMR(heap, pes[1].Clk)

	for i := 0; i < ops; i++ {
		old, err := pes[0].C.FetchAdd(1, mr.Base(), mr.RKey(), 1)
		if err != nil {
			t.Fatalf("fetchadd %d: %v", i, err)
		}
		if old != uint64(i) {
			t.Fatalf("fetchadd %d returned old=%d: an add was lost or duplicated", i, old)
		}
	}
	if got := mr.LoadUint64(0); got != ops {
		t.Fatalf("final value = %d, want exactly %d", got, ops)
	}
	if fi.Flaps() != 1 {
		t.Fatalf("injected flaps = %d, want 1", fi.Flaps())
	}
	if st := pes[0].C.Stats(); st.LinkFaults < 1 || st.Reconnects < 1 {
		t.Fatalf("flap must drive a reconnect: faults=%d reconnects=%d", st.LinkFaults, st.Reconnects)
	}
	// Wait for the RTO to fire on the un-ACKed tail and for a duplicate to be
	// suppressed (either direction: requests at the server, replies at the
	// client — whichever ACKs were the casualty).
	waitUntil(t, func() bool {
		c, s := pes[0].C.Stats(), pes[1].C.Stats()
		return c.IntegrityRetransmits+s.IntegrityRetransmits >= 1 &&
			c.DupOpsSuppressed+s.DupOpsSuppressed >= 1
	})
	// The retransmitted non-idempotent ops were suppressed, not re-applied.
	if got := mr.LoadUint64(0); got != ops {
		t.Fatalf("value after retransmissions = %d, want still %d", got, ops)
	}
}

// TestRCFrameCorruptionRecovered streams AMs through a fabric that flips bits
// in RC payloads: every corrupted frame must be caught by the trailer, NAKed
// and retransmitted, and every message must reach its handler exactly once
// and in order.
func TestRCFrameCorruptionRecovered(t *testing.T) {
	const msgs = 64
	fi := ib.NewFaultInjector(41)
	fi.RCCorruptProb = 0.3
	fi.MaxRCCorrupts = 12
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand, faults: fi, retrans: fastRetrans})
	var mu sync.Mutex
	var got []uint64
	pes[1].C.RegisterHandler(5, func(src int, a [4]uint64, p []byte, at int64) {
		mu.Lock()
		got = append(got, a[0])
		mu.Unlock()
	})
	for i := 0; i < msgs; i++ {
		if err := pes[0].C.AMRequest(1, 5, [4]uint64{uint64(i)}, []byte("body")); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= msgs
	})
	mu.Lock()
	if len(got) != msgs {
		t.Fatalf("%d deliveries for %d sends", len(got), msgs)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d carries id %d: lost, duplicated or reordered", i, v)
		}
	}
	mu.Unlock()
	if fi.RCCorrupts() == 0 {
		t.Fatal("injector never corrupted a frame; test exercised nothing")
	}
	server := pes[1].C.Stats()
	if server.RCCorruptFrames < 1 {
		t.Fatalf("receiver RCCorruptFrames = %d, want >= 1", server.RCCorruptFrames)
	}
	if pes[0].C.Stats().IntegrityRetransmits < 1 {
		t.Fatalf("sender IntegrityRetransmits = %d, want >= 1", pes[0].C.Stats().IntegrityRetransmits)
	}
}
