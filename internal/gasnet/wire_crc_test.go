package gasnet

import (
	"errors"
	"testing"

	"goshmem/internal/ib"
)

// Every single-bit flip anywhere in an encoded control frame — header,
// payload, or the CRC field itself — must be caught by decodeConnMsg. This is
// the end-to-end guarantee the checksum exists for: a corrupt REQ/REP must
// never poison the peer's endpoint tables silently.
func TestConnMsgChecksumCatchesBitFlips(t *testing.T) {
	m := connMsg{Kind: msgConnRep, SrcRank: 3, Seq: 41,
		RC: ib.Dest{LID: 9, QPN: 1001}, UD: ib.Dest{LID: 2, QPN: 55},
		Payload: []byte("segment-triplets")}
	frame := m.encode()
	if _, err := decodeConnMsg(frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for bit := 0; bit < len(frame)*8; bit++ {
		b := append([]byte(nil), frame...)
		b[bit/8] ^= 1 << (bit % 8)
		_, err := decodeConnMsg(b)
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
		if !errors.Is(err, errCorruptFrame) {
			t.Fatalf("bit flip at %d: err = %v, want errCorruptFrame", bit, err)
		}
	}
}

func TestConnMsgChecksumCoversPayloadlessFrames(t *testing.T) {
	// Heartbeats and RTUs carry no payload; the CRC must still protect them.
	m := connMsg{Kind: msgHeartbeat, SrcRank: 7, Seq: 1, UD: ib.Dest{LID: 7, QPN: 70}}
	frame := m.encode()
	if len(frame) != connMsgHdr {
		t.Fatalf("payloadless frame is %d bytes, want %d", len(frame), connMsgHdr)
	}
	if _, err := decodeConnMsg(frame); err != nil {
		t.Fatalf("pristine heartbeat rejected: %v", err)
	}
	frame[0] ^= 0x80
	if _, err := decodeConnMsg(frame); !errors.Is(err, errCorruptFrame) {
		t.Fatalf("corrupted heartbeat: err = %v, want errCorruptFrame", err)
	}
}

func TestConnMsgTruncationIsCorruptFrame(t *testing.T) {
	frame := (&connMsg{Kind: msgConnReq, SrcRank: 1}).encode()
	for _, n := range []int{0, 1, connMsgHdr - 1} {
		if _, err := decodeConnMsg(frame[:n]); !errors.Is(err, errCorruptFrame) {
			t.Fatalf("truncated to %d bytes: err = %v, want errCorruptFrame", n, err)
		}
	}
}
