package gasnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"goshmem/internal/ib"
)

// Control-message kinds carried over the UD transport. The handshake follows
// the paper's Figure 4 plus the standard ready-to-use third leg (as in RDMA
// CM): REQ -> REP -> RTU. REQ and REP carry the opaque upper-layer payload
// (the OpenSHMEM segment triplets) so that both sides can issue RDMA the
// moment the connection is up — the paper's section IV-C.
const (
	msgConnReq uint8 = 1
	msgConnRep uint8 = 2
	msgConnRTU uint8 = 3

	// Failure-detector and abort-plane datagrams (failure.go). They reuse
	// the connMsg frame: a heartbeat carries only the sender's UD endpoint
	// (for the ack); an abort notice carries the dead rank in Seq (cast from
	// int32, so -1 encodes "no PE died") and [exit code u32][reason] in the
	// payload.
	msgHeartbeat    uint8 = 4
	msgHeartbeatAck uint8 = 5
	msgAbort        uint8 = 6

	// msgConnRej is the server's admission-control rejection of a connection
	// request: the target adapter's queue-pair budget is exhausted and idle
	// eviction freed nothing. Payload[0] is a fatality flag — 1 means the
	// server proved forward progress impossible (cap reached with no live
	// connection to ever evict), so the client must abort rather than retry.
	msgConnRej uint8 = 7

	// Data-plane session acknowledgements (integrity.go). Both carry the
	// receiver's cumulative in-order sequence for the pair in the payload
	// ([seq u64]): an ACK lets the sender release every retained frame up to
	// and including seq; a NAK additionally asks it to retransmit everything
	// past seq (a corrupt frame or a sequence gap was observed).
	msgDataAck uint8 = 8
	msgDataNak uint8 = 9

	// msgDataProbe solicits a fresh cumulative ACK for the pair (payload is
	// the prober's highest posted sequence, for the trace). A sender whose
	// connection was torn down while frames were still retained probes over
	// UD instead of reconnecting: posts that succeeded were delivered, so the
	// usual case is that only the acknowledgement was lost and the reply
	// trims the window without consuming any queue-pair budget. A reconnect
	// happens only if the reply proves data is genuinely missing.
	msgDataProbe uint8 = 10
)

// connMsg is the UD control datagram for connection establishment.
type connMsg struct {
	Kind    uint8
	SrcRank int32
	Seq     uint32 // connection-attempt sequence for duplicate suppression
	RC      ib.Dest
	UD      ib.Dest // sender's UD endpoint, so the target can reply
	Payload []byte  // opaque upper-layer data (segment info); REQ and REP only
}

// connMsgHdr: [kind u8][src u32][seq u32][RC dest 6][UD dest 6]
// [payload len u32][crc32 u32]. The trailing CRC covers the whole frame
// (with the CRC field itself zeroed) — end-to-end protection for the
// control channel, since a flipped bit in a REQ/REP would otherwise poison
// the peer's rkey/endpoint tables silently. UD corruption never changes the
// frame length, so the checksum is verified before any field is trusted.
const connMsgHdr = 1 + 4 + 4 + 6 + 6 + 4 + 4

const connMsgCRCOff = connMsgHdr - 4

// errCorruptFrame marks a control frame that failed checksum (or basic
// framing) verification. The receiver discards it; the sender's
// retransmission timer re-delivers the content.
var errCorruptFrame = errors.New("gasnet: corrupt control frame")

func (m *connMsg) encode() []byte {
	b := make([]byte, connMsgHdr+len(m.Payload))
	b[0] = m.Kind
	binary.LittleEndian.PutUint32(b[1:], uint32(m.SrcRank))
	binary.LittleEndian.PutUint32(b[5:], m.Seq)
	binary.LittleEndian.PutUint16(b[9:], m.RC.LID)
	binary.LittleEndian.PutUint32(b[11:], m.RC.QPN)
	binary.LittleEndian.PutUint16(b[15:], m.UD.LID)
	binary.LittleEndian.PutUint32(b[17:], m.UD.QPN)
	binary.LittleEndian.PutUint32(b[21:], uint32(len(m.Payload)))
	copy(b[connMsgHdr:], m.Payload)
	binary.LittleEndian.PutUint32(b[connMsgCRCOff:], connMsgSum(b))
	return b
}

func decodeConnMsg(b []byte) (connMsg, error) {
	var m connMsg
	if len(b) < connMsgHdr {
		return m, fmt.Errorf("%w: short (%d bytes)", errCorruptFrame, len(b))
	}
	if got := binary.LittleEndian.Uint32(b[connMsgCRCOff:]); got != connMsgSum(b) {
		return m, fmt.Errorf("%w: checksum mismatch", errCorruptFrame)
	}
	m.Kind = b[0]
	m.SrcRank = int32(binary.LittleEndian.Uint32(b[1:]))
	m.Seq = binary.LittleEndian.Uint32(b[5:])
	m.RC.LID = binary.LittleEndian.Uint16(b[9:])
	m.RC.QPN = binary.LittleEndian.Uint32(b[11:])
	m.UD.LID = binary.LittleEndian.Uint16(b[15:])
	m.UD.QPN = binary.LittleEndian.Uint32(b[17:])
	n := int(binary.LittleEndian.Uint32(b[21:]))
	if n != len(b)-connMsgHdr {
		return m, fmt.Errorf("%w: payload length mismatch: %d vs %d",
			errCorruptFrame, n, len(b)-connMsgHdr)
	}
	m.Payload = b[connMsgHdr:]
	return m, nil
}

// amHdr frames an active message inside an RC send:
// [handler u8][srcRank u32][args 4*u64][payload].
const amHdrLen = 1 + 4 + 32

func encodeAM(handler uint8, srcRank int, args [4]uint64, payload []byte) []byte {
	b := make([]byte, amHdrLen+len(payload))
	b[0] = handler
	binary.LittleEndian.PutUint32(b[1:], uint32(srcRank))
	for i, a := range args {
		binary.LittleEndian.PutUint64(b[5+8*i:], a)
	}
	copy(b[amHdrLen:], payload)
	return b
}

func decodeAM(b []byte) (handler uint8, srcRank int, args [4]uint64, payload []byte, err error) {
	if len(b) < amHdrLen {
		return 0, 0, args, nil, errors.New("gasnet: short active message")
	}
	handler = b[0]
	srcRank = int(int32(binary.LittleEndian.Uint32(b[1:])))
	for i := range args {
		args[i] = binary.LittleEndian.Uint64(b[5+8*i:])
	}
	return handler, srcRank, args, b[amHdrLen:], nil
}

// Abort-notice payload: [exit code u32][reason bytes].
func encodeAbortPayload(code int, reason string) []byte {
	b := make([]byte, 4+len(reason))
	binary.LittleEndian.PutUint32(b, uint32(code))
	copy(b[4:], reason)
	return b
}

func decodeAbortPayload(b []byte) (code int, reason string) {
	if len(b) < 4 {
		return 1, ""
	}
	return int(binary.LittleEndian.Uint32(b)), string(b[4:])
}

// Endpoint string form used in the PMI key-value store.
func encodeDest(d ib.Dest) string { return fmt.Sprintf("%d:%d", d.LID, d.QPN) }

func decodeDest(s string) (ib.Dest, error) {
	var lid, qpn uint32
	if _, err := fmt.Sscanf(s, "%d:%d", &lid, &qpn); err != nil {
		return ib.Dest{}, fmt.Errorf("gasnet: bad endpoint %q: %v", s, err)
	}
	return ib.Dest{LID: uint16(lid), QPN: qpn}, nil
}
