package gasnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"goshmem/internal/ib"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

func TestGetNBICompletesAtQuiet(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	heap := make([]byte, 1024)
	for i := range heap {
		heap[i] = byte(i)
	}
	mr := pes[1].HCA.RegisterMR(heap, pes[1].Clk)
	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
		if err := pes[0].C.GetNBI(1, mr.Base()+uint64(64*i), mr.RKey(), bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	pes[0].C.Quiet()
	for i, b := range bufs {
		if !bytes.Equal(b, heap[64*i:64*i+64]) {
			t.Fatalf("nbi get %d mismatch", i)
		}
	}
}

func TestDeferredAMReplay(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	// Send before the receiver registers the handler.
	if err := pes[0].C.AMRequest(1, 99, [4]uint64{7}, []byte("early")); err != nil {
		t.Fatal(err)
	}
	if err := pes[0].C.AMRequest(1, 99, [4]uint64{8}, []byte("early2")); err != nil {
		t.Fatal(err)
	}
	// Wait until both messages have been delivered and parked in the
	// deferred queue, so registration exercises the replay path.
	waitUntil(t, func() bool {
		pes[1].C.connMu.Lock()
		defer pes[1].C.connMu.Unlock()
		return len(pes[1].C.deferredAM[99]) == 2
	})
	got := make(chan uint64, 2)
	pes[1].C.RegisterHandler(99, func(src int, args [4]uint64, payload []byte, at int64) {
		got <- args[0]
	})
	a, b := <-got, <-got
	if a != 7 || b != 8 {
		t.Fatalf("deferred replay out of order: %d, %d", a, b)
	}
}

func TestEnsureConnectedAdvancesClock(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, ppn: 1, mode: OnDemand})
	before := pes[0].Clk.Now()
	if err := pes[0].C.EnsureConnected(1); err != nil {
		t.Fatal(err)
	}
	after := pes[0].Clk.Now()
	if after <= before {
		t.Fatalf("EnsureConnected did not advance the clock: %d -> %d", before, after)
	}
	// The handshake costs at least a UD round trip plus QP work.
	if after-before < 10_000 {
		t.Fatalf("handshake suspiciously cheap: %d ns", after-before)
	}
}

func TestCloseDrainsPendingSends(t *testing.T) {
	pes, _ := startJob(t, jobOpts{n: 2, mode: OnDemand})
	var mu sync.Mutex
	var got []uint64
	done := make(chan struct{})
	pes[1].C.RegisterHandler(5, func(src int, args [4]uint64, payload []byte, at int64) {
		mu.Lock()
		got = append(got, args[0])
		if len(got) == 10 {
			close(done)
		}
		mu.Unlock()
	})
	// Queue sends behind a fresh handshake, then immediately Close: the
	// drain must deliver all of them.
	for i := 0; i < 10; i++ {
		if err := pes[0].C.AMRequest(1, 5, [4]uint64{uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	pes[0].C.Close()
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("drained sends out of order: %v", got)
		}
	}
}

// TestHeldRequestsServedAtSetReady verifies the paper's section IV-E
// behaviour: a connect request arriving before the server has registered
// its segments is held, not answered, and served the moment SetReady runs.
func TestHeldRequestsServedAtSetReady(t *testing.T) {
	fab := ib.NewFabric(nil, nil)
	srv := pmi.NewServer(2, nil)
	mk := func(rank int, h *ib.HCA) *pe {
		p := &pe{Clk: vclock.NewClock(0), HCA: h}
		p.C = New(Config{Rank: rank, NProcs: 2, Node: rank, PPN: 1,
			HCA: h, PMI: srv.Client(rank, p.Clk), Clock: p.Clk,
			Mode: OnDemand, NodeBarrier: vclock.NewVBarrier(1)})
		return p
	}
	p0 := mk(0, fab.AddHCA())
	p1 := mk(1, fab.AddHCA())
	t.Cleanup(func() { p0.C.Close(); p1.C.Close() })

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p0.C.ExchangeEndpoints() }()
	go func() { defer wg.Done(); p1.C.ExchangeEndpoints() }()
	wg.Wait()
	p0.C.SetReady()

	// PE0 initiates; PE1 has not called SetReady, so the REQ is held.
	connected := make(chan error, 1)
	go func() { connected <- p0.C.EnsureConnected(1) }()
	waitUntil(t, func() bool { return heldCount(p1.C) == 1 })
	if p0.C.Connected(1) {
		t.Fatal("connection established before server was ready")
	}
	p1.C.SetReady()
	if err := <-connected; err != nil {
		t.Fatal(err)
	}
	if !p0.C.Connected(1) {
		t.Fatal("connection missing after server became ready")
	}
}

func heldCount(c *Conduit) int {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return len(c.heldReqs)
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 4000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
