package gasnet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"goshmem/internal/ib"
	"goshmem/internal/vclock"
)

// fastHB compresses the failure detector's real-time scan so tests confirm
// deaths in a few milliseconds.
var fastHB = HeartbeatConfig{Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2}

// TestKillPEConfirmedAndAborted injects a crash: the victim's operations fail
// with CrashError the moment its clock passes the schedule, the survivors'
// UD-heartbeat detector walks suspicion -> confirmation within bounded
// detector periods, every subsequent operation against the dead rank fails
// fast with ErrPeerDead, and the job abort reaches every survivor. The
// waitUntil bounds make the test fail (not hang) if any of that stalls.
func TestKillPEConfirmedAndAborted(t *testing.T) {
	const n = 4
	const victim = 3
	// Well past endpoint bootstrap: the pre-fault traffic below must arrive
	// while the victim is still alive.
	killVT := 50 * vclock.Millisecond
	fi := ib.NewFaultInjector(7)
	fi.KillPE(victim, killVT)

	var evMu sync.Mutex
	events := make(map[string]int)
	pes, run := startJob(t, jobOpts{
		n: n, ppn: 2, mode: OnDemand, faults: fi, retrans: fastRetrans, heartbeat: fastHB,
		onEvent: func(rank int, kind string, peer int, vt int64) {
			evMu.Lock()
			events[kind]++
			evMu.Unlock()
		},
	})

	// Pre-fault traffic: everyone talks to everyone, so every survivor's
	// detector monitors the victim (piggybacked liveness, no explicit probes
	// needed yet).
	var mu sync.Mutex
	recv := 0
	for _, p := range pes {
		p.C.RegisterHandler(9, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			recv++
			mu.Unlock()
		})
	}
	run(func(p *pe) {
		for dst := 0; dst < n; dst++ {
			if dst == p.C.Rank() {
				continue
			}
			if err := p.C.AMRequest(dst, 9, [4]uint64{}, nil); err != nil {
				t.Errorf("pre-fault AM %d->%d: %v", p.C.Rank(), dst, err)
			}
		}
	})
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return recv == n*(n-1)
	})

	// The victim advances past its scheduled crash and the next operation
	// observes it: fail-stop with CrashError.
	pes[victim].Clk.AdvanceTo(killVT)
	err := pes[victim].C.AMRequest(0, 9, [4]uint64{}, nil)
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("victim op after kill = %v, want CrashError", err)
	}
	if fi.PEKills() != 1 {
		t.Fatalf("PEKills = %d, want 1", fi.PEKills())
	}

	// Survivors must confirm the death and abort within the detector bound.
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		p := pes[r]
		waitUntil(t, func() bool { return p.C.Err() != nil })
		var ae *AbortError
		if err := p.C.Err(); !errors.As(err, &ae) || ae.Dead != victim {
			t.Fatalf("rank %d abort = %v, want AbortError{Dead: %d}", r, err, victim)
		}
		if !p.C.PeerDead(victim) {
			t.Fatalf("rank %d has not marked the victim dead", r)
		}
		// Fail-fast: new operations against the dead rank return ErrPeerDead
		// (wrapped in the job-abort error), never block.
		if err := p.C.AMRequest(victim, 9, [4]uint64{}, nil); !errors.Is(err, ErrPeerDead) {
			t.Fatalf("rank %d op on dead peer = %v, want ErrPeerDead", r, err)
		}
	}

	// Counter flow: at least one survivor confirmed the death, probes were
	// sent, and the abort fanned out.
	var failures, probes, aborts int
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		st := pes[r].C.Stats()
		failures += st.PEFailures
		probes += st.HeartbeatsSent
		aborts += st.AbortsPropagated
	}
	if failures < 1 {
		t.Errorf("PEFailures = %d, want >= 1", failures)
	}
	if probes == 0 {
		t.Error("no heartbeat probes sent while confirming a silent peer")
	}
	if aborts == 0 {
		t.Error("no abort datagrams propagated")
	}
	evMu.Lock()
	for _, kind := range []string{"pe-fail", "suspect", "confirm-dead", "abort"} {
		if events[kind] == 0 {
			t.Errorf("trace lacks %q events: %v", kind, events)
		}
	}
	evMu.Unlock()
}

// TestWedgePEStillAcksUntilAborted injects a wedge: the victim's software
// stops, but its queue pairs stay alive, so a survivor's RDMA put against its
// memory still completes at the fabric level. The detector must nevertheless
// confirm the silent peer dead, and the job abort must release the victim's
// blocked operation with WedgeError — the launcher-kill model.
func TestWedgePEStillAcksUntilAborted(t *testing.T) {
	const n = 2
	const victim = 1
	// Past bootstrap and the explicit EnsureConnected below: a wedged PE
	// cannot answer a handshake.
	wedgeVT := 50 * vclock.Millisecond
	fi := ib.NewFaultInjector(11)
	fi.WedgePE(victim, wedgeVT)
	pes, _ := startJob(t, jobOpts{
		n: n, ppn: 2, mode: OnDemand, faults: fi, retrans: fastRetrans, heartbeat: fastHB,
	})

	heap := make([]byte, 256)
	mr := pes[victim].HCA.RegisterMR(heap, pes[victim].Clk)

	// Establish the connection before the wedge trips (a wedged PE cannot
	// answer a handshake).
	if err := pes[0].C.EnsureConnected(victim); err != nil {
		t.Fatal(err)
	}

	// The victim hits its schedule; its next operation blocks until the job
	// aborts around it.
	victimDone := make(chan error, 1)
	go func() {
		pes[victim].Clk.AdvanceTo(wedgeVT)
		victimDone <- pes[victim].C.AMRequest(0, 9, [4]uint64{}, nil)
	}()
	waitUntil(t, func() bool { return pes[victim].C.selfState.Load() == selfWedged })
	if fi.PEWedges() != 1 {
		t.Fatalf("PEWedges = %d, want 1", fi.PEWedges())
	}

	// Fabric-level liveness: RDMA against the wedged PE's memory still
	// completes — this is exactly why heartbeats must be software-level.
	data := []byte("landed-in-wedged-memory")
	if err := pes[0].C.Put(victim, mr.Base(), mr.RKey(), data); err != nil {
		t.Fatalf("put to wedged peer: %v", err)
	}
	pes[0].C.Quiet()
	if !bytes.Equal(heap[:len(data)], data) {
		t.Fatal("put into wedged peer's memory did not land")
	}

	// The software-level detector confirms the wedged peer dead and aborts.
	waitUntil(t, func() bool { return pes[0].C.Err() != nil })
	var ae *AbortError
	if err := pes[0].C.Err(); !errors.As(err, &ae) || ae.Dead != victim {
		t.Fatalf("survivor abort = %v, want AbortError{Dead: %d}", pes[0].C.Err(), victim)
	}
	if st := pes[0].C.Stats(); st.PEFailures != 1 {
		t.Fatalf("survivor PEFailures = %d, want 1", st.PEFailures)
	}

	// The abort releases the wedged victim's blocked operation.
	select {
	case err := <-victimDone:
		var we *WedgeError
		if !errors.As(err, &we) {
			t.Fatalf("victim op after abort = %v, want WedgeError", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("wedged PE never released by the job abort")
	}
}

// TestSlowPENeverConfirmedDead is the false-positive regression test: the
// SlowPE injector charges victims virtual time only, so their real-time
// heartbeat replies still arrive within a scan period. The detector — armed
// explicitly, probing through an idle phase — must never confirm anyone dead,
// and suspicion (if any arises) must clear as false.
func TestSlowPENeverConfirmedDead(t *testing.T) {
	const n = 4
	fi := ib.NewFaultInjector(13)
	fi.SlowProb = 1.0
	fi.SlowTime = 5 * vclock.Millisecond // heavy virtual jitter on every op
	pes, run := startJob(t, jobOpts{
		n: n, ppn: 2, mode: OnDemand, faults: fi, retrans: fastRetrans,
		heartbeat: HeartbeatConfig{Enable: true, Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2},
	})
	var mu sync.Mutex
	recv := 0
	for _, p := range pes {
		p.C.RegisterHandler(9, func(src int, a [4]uint64, pay []byte, at int64) {
			mu.Lock()
			recv++
			mu.Unlock()
		})
	}
	run(func(p *pe) {
		for dst := 0; dst < n; dst++ {
			if dst == p.C.Rank() {
				continue
			}
			if err := p.C.AMRequest(dst, 9, [4]uint64{}, nil); err != nil {
				t.Errorf("AM: %v", err)
			}
		}
	})
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return recv == n*(n-1)
	})

	// Idle phase: many scan periods pass with no application traffic, so the
	// detector must rely on explicit probes — which the slowed PEs still
	// answer in real time.
	time.Sleep(50 * time.Millisecond)

	if fi.Slowdowns() == 0 {
		t.Fatal("no slowdowns injected; the schedule tests nothing")
	}
	probes := 0
	for _, p := range pes {
		if err := p.C.Err(); err != nil {
			t.Fatalf("rank %d aborted on a slow-only fabric: %v", p.C.Rank(), err)
		}
		st := p.C.Stats()
		if st.PEFailures != 0 {
			t.Fatalf("rank %d confirmed a slow peer dead: %+v", p.C.Rank(), st)
		}
		if st.AbortsPropagated != 0 {
			t.Fatalf("rank %d propagated an abort on a slow-only fabric", p.C.Rank())
		}
		probes += st.HeartbeatsSent
	}
	if probes == 0 {
		t.Fatal("detector sent no probes through the idle phase; the test exercised nothing")
	}
}

// TestChaosPEFailureSoak extends the chaos harness with PE-failure schedules:
// one seeded victim crashes and another wedges mid-traffic while the UD layer
// drops datagrams and the SlowPE injector adds virtual jitter. Invariants:
// the job always terminates (bounded by waitUntil, never hangs), every
// surviving PE observes the abort, and only scheduled victims are ever
// confirmed dead — chaos must not produce false positives. Replay any failure
// with CHAOS_SEED=<seed>.
func TestChaosPEFailureSoak(t *testing.T) {
	n, ppn, rounds := 12, 4, 3
	if testing.Short() {
		n, ppn, rounds = 8, 4, 2
	}
	seed := chaosSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("replay with CHAOS_SEED=%d", seed)
		}
	}()
	rng := rand.New(rand.NewSource(seed))

	fi := ib.NewFaultInjector(seed)
	fi.DropProb = 0.1
	fi.MaxDrops = 100
	fi.SlowProb = 0.05
	fi.SlowTime = vclock.Millisecond

	// Two distinct victims: one crash, one wedge, at seeded virtual times
	// inside the traffic window.
	killVictim := rng.Intn(n)
	wedgeVictim := (killVictim + 1 + rng.Intn(n-1)) % n
	killAt := vclock.Millisecond + rng.Int63n(2*vclock.Millisecond)
	wedgeAt := vclock.Millisecond + rng.Int63n(2*vclock.Millisecond)
	fi.KillPE(killVictim, killAt)
	fi.WedgePE(wedgeVictim, wedgeAt)
	victims := map[int]bool{killVictim: true, wedgeVictim: true}

	pes, run := startJob(t, jobOpts{
		n: n, ppn: ppn, mode: OnDemand, faults: fi, retrans: fastRetrans, heartbeat: fastHB,
	})
	for _, p := range pes {
		p.C.RegisterHandler(9, func(src int, a [4]uint64, pay []byte, at int64) {})
	}

	// Randomized traffic; errors are expected once the failure plane bites —
	// the invariant is *which* errors, checked below.
	run(func(p *pe) {
		src := p.C.Rank()
		prng := rand.New(rand.NewSource(seed + int64(src)*1009))
		for r := 0; r < rounds; r++ {
			for _, dst := range prng.Perm(n) {
				if prng.Float64() < 0.3 {
					continue
				}
				if err := p.C.AMRequest(dst, 9, [4]uint64{uint64(r)}, []byte(fmt.Sprintf("m-%d-%d", src, dst))); err != nil {
					// Only failure-plane errors are legal.
					var ce *CrashError
					var we *WedgeError
					var ae *AbortError
					if !errors.As(err, &ce) && !errors.As(err, &we) && !errors.As(err, &ae) && !errors.Is(err, ErrPeerDead) {
						t.Errorf("AM %d->%d failed outside the failure plane: %v", src, dst, err)
					}
					return
				}
			}
		}
	})

	// Termination: every PE ends in a terminal state — aborted, crashed, or
	// wedged-and-released — within the waitUntil bound. A hang here is the
	// bug the failure plane exists to prevent.
	for _, p := range pes {
		p := p
		waitUntil(t, func() bool { return p.C.Err() != nil })
	}

	// No false positives: only scheduled victims may be confirmed dead.
	for _, p := range pes {
		snap := p.C.HealthSnapshot()
		for _, dead := range snap.Dead {
			if !victims[dead] {
				t.Fatalf("rank %d confirmed non-victim %d dead (victims %v)", p.C.Rank(), dead, victims)
			}
		}
	}

	// The fault actually tripped, and at least one survivor confirmed it.
	if fi.PEKills()+fi.PEWedges() == 0 {
		t.Fatal("no PE fault tripped; schedule too late for the traffic window")
	}
	failures := 0
	for _, p := range pes {
		failures += p.C.Stats().PEFailures
	}
	if failures == 0 {
		t.Fatal("no PE failure confirmed by any detector")
	}
	t.Logf("seed=%d kill=%d@%d wedge=%d@%d confirmed=%d drops=%d slowdowns=%d",
		seed, killVictim, killAt, wedgeVictim, wedgeAt, failures, fi.Drops(), fi.Slowdowns())
}
