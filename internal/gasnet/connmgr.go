package gasnet

import (
	"errors"
	"fmt"
	"time"

	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// heldReq is a connection request that arrived before this PE was ready,
// kept with its virtual arrival time so the replay at SetReady can both
// serve it and decide (VT-deterministically) whether it was genuinely
// early.
type heldReq struct {
	m  connMsg
	at int64
}

// msgName names a control-message kind for trace events.
func msgName(kind uint8) string {
	switch kind {
	case msgConnReq:
		return "conn-req"
	case msgConnRep:
		return "conn-rep"
	case msgConnRTU:
		return "conn-rtu"
	case msgHeartbeat:
		return "heartbeat"
	case msgHeartbeatAck:
		return "heartbeat-ack"
	case msgAbort:
		return "abort"
	case msgConnRej:
		return "conn-rej"
	case msgDataAck:
		return "data-ack"
	case msgDataNak:
		return "data-nak"
	case msgDataProbe:
		return "data-probe"
	}
	return "unknown"
}

// Default real-time retransmission timing: the scan period and the initial
// per-connection retransmission timeout with exponential backoff. Backoff
// matters even without fault injection: a large static ConnectAll keeps
// thousands of handshakes legitimately in flight for (real) seconds, and
// resending all of them every scan would flood the completion queues.
// Virtual-time charges for retransmissions use
// CostModel.ConnRetransmitTimeout.
const (
	defaultRetransInterval = 10 * time.Millisecond
	defaultRetransBaseRTO  = 25 * time.Millisecond
	defaultRetransMaxShift = 6

	// defaultProbeBackoffShift caps the exponential backoff of background
	// probes — heartbeat confirmation probes (failure.go) and the RTO-driven
	// window probes behind a dirty eviction — so both recovery clocks share
	// one knob (RetransConfig.ProbeBackoffShift).
	defaultProbeBackoffShift = 4

	// recycleAttempts is the last-resort convergence bound: a handshake
	// still not complete after this many retransmissions is torn down and,
	// if traffic is queued behind it, restarted with a fresh attempt number.
	// A fresh attempt supersedes any stale state the peer may hold, so this
	// guarantees eventual convergence even for fault interleavings the
	// message-level guards do not recognize.
	recycleAttempts = 25

	// rnrBackoffMaxShift caps the exponential virtual-time backoff applied
	// to receiver-not-ready retries and zero-credit stalls (delay =
	// RNRRetryDelay << min(attempt, rnrBackoffMaxShift)).
	rnrBackoffMaxShift = 6

	// qpAllocRetries bounds the client-side evict-and-retry ladder for a
	// budget-refused queue-pair allocation before the job gives up with
	// ExitResourceExhausted. Each retry re-runs idle eviction, so the bound
	// is hit only when the cap stays consumed by unevictable connections.
	qpAllocRetries = 256

	// maxAdmissionRejects bounds how many admission rejections one
	// connection slot absorbs across its lifetime before the client
	// concludes the server will never admit it and aborts. Rejections are
	// normally resolved long before this by the server's idle-LRU eviction.
	maxAdmissionRejects = 100
)

// RetransConfig tunes the connection manager's real-time retransmission
// machinery. Interval is the scan period, BaseRTO the first per-connection
// timeout, and MaxShift caps the exponential backoff (RTO = BaseRTO <<
// min(attempt, MaxShift)). Zero fields take the defaults, so the zero value
// keeps the historical 10ms/25ms/6 behaviour. Slow -race CI runs raise the
// timeouts; fault-injection soaks lower them to compress recovery time.
type RetransConfig struct {
	Interval time.Duration
	BaseRTO  time.Duration
	MaxShift int

	// ProbeBackoffShift caps the exponential backoff of the background
	// probes layered on the RTO machinery: the failure detector's
	// confirmation/patience probes and the data-plane window probes that
	// follow a dirty eviction. One knob, because the two are the same
	// full-RTO patience applied to different planes — a chaos harness that
	// compresses recovery time must compress both together or the slower one
	// dominates the measured MTTR. Default 4.
	ProbeBackoffShift int
}

// withDefaults fills zero fields with the default timing.
func (rc RetransConfig) withDefaults() RetransConfig {
	if rc.Interval <= 0 {
		rc.Interval = defaultRetransInterval
	}
	if rc.BaseRTO <= 0 {
		rc.BaseRTO = defaultRetransBaseRTO
	}
	if rc.MaxShift <= 0 {
		rc.MaxShift = defaultRetransMaxShift
	}
	if rc.ProbeBackoffShift <= 0 {
		rc.ProbeBackoffShift = defaultProbeBackoffShift
	}
	return rc
}

// rtoFor returns the real-time retransmission timeout for the given attempt.
func (c *Conduit) rtoFor(attempt int) time.Duration {
	if attempt > c.retrans.MaxShift {
		attempt = c.retrans.MaxShift
	}
	return c.retrans.BaseRTO << attempt
}

// fullRTO is the fully backed-off retransmission timeout — the shared
// patience unit for every "wait one more full cycle" decision: the Close
// drain, the dirty-eviction replay deferral, and (through ProbeBackoffShift)
// the failure detector's probe cadence.
func (c *Conduit) fullRTO() time.Duration {
	return c.rtoFor(c.retrans.MaxShift)
}

// deferDirtyReplayLocked postpones a just-evicted connection's replay
// reconnect by a full RTO: the victim still retains unacknowledged frames, and
// letting its replay fire immediately would reclaim the queue-pair slot the
// eviction just freed. Shared by cap-driven and pressure-relief eviction.
// Caller holds connMu.
func (c *Conduit) deferDirtyReplayLocked(victim *conn) {
	if len(victim.unacked) == 0 {
		return
	}
	victim.lastData = timeNow()
	victim.dataAttempt++
}

// isLinkFault reports whether a post failed because the RC connection died
// underneath it (link flap, peer teardown, or local eviction) — the errors
// the connection manager recovers from by re-running the handshake.
// ib.ErrPathDown is deliberately NOT a link fault: both queue pairs are
// healthy and the recovery ladder (Automatic Path Migration, then a
// reconnect on another rail) must run before anything is torn down.
func isLinkFault(err error) bool {
	return errors.Is(err, ib.ErrLinkDown) || errors.Is(err, ib.ErrBadState)
}

// pickRailsLocked selects the primary and alternate rails for a new RC
// connection to the adapter at dst: the least-loaded live rail becomes the
// primary (load = this PE's established connections per rail, so handshakes
// spread deterministically), the next-least-loaded live rail the alternate
// loaded for Automatic Path Migration. With every rail to dst dark the
// default paths are returned and the first post's path-down error routes the
// pair into the suspension machinery. Caller holds connMu.
func (c *Conduit) pickRailsLocked(dst uint16, vt int64) (pri, alt int) {
	fab := c.cfg.HCA.Fabric()
	rails := fab.Rails()
	if rails <= 1 {
		return 0, 0
	}
	fi := fab.Faults()
	src := c.cfg.HCA.LID()
	load := make([]int, rails)
	count := func(cn *conn) {
		if cn != nil && cn.qp != nil {
			if r := cn.qp.Rail(); r >= 0 && r < rails {
				load[r]++
			}
		}
	}
	if c.connSlice != nil {
		for _, cn := range c.connSlice {
			count(cn)
		}
	} else {
		for _, cn := range c.connMap {
			count(cn)
		}
	}
	pri, alt = -1, -1
	for r := 0; r < rails; r++ {
		if fi != nil && !fi.RailLive(src, dst, r, vt) {
			continue
		}
		switch {
		case pri == -1 || load[r] < load[pri]:
			alt = pri
			pri = r
		case alt == -1 || load[r] < load[alt]:
			alt = r
		}
	}
	if pri == -1 {
		// No live rail at all: suspension territory. Keep the defaults so the
		// path error (and the detector's partition verdict) does the talking.
		return 0, 1 % rails
	}
	if alt == -1 {
		// A single live rail: arm the next rail as the alternate anyway — it
		// is dead right now, but if it heals before the primary fails, APM to
		// it beats a full reconnect.
		alt = (pri + 1) % rails
	}
	return pri, alt
}

// tryMigrateLocked attempts IB Automatic Path Migration for a connection
// whose primary path failed: if the loaded alternate rail is live, the queue
// pair swaps to it in place — no teardown, no handshake, and the session
// layer's retained-frame window survives by construction because the QP never
// leaves RTS. Caller holds connMu.
func (c *Conduit) tryMigrateLocked(cn *conn, peer int) bool {
	qp := cn.qp
	if qp == nil {
		return false
	}
	fab := c.cfg.HCA.Fabric()
	fi := fab.Faults()
	now := c.mgrClk.Now()
	alt := qp.AltRail()
	if alt == qp.Rail() || fi == nil || !fi.RailLive(c.cfg.HCA.LID(), qp.Remote().LID, alt, now) {
		return false
	}
	if qp.Migrate() != nil {
		return false
	}
	c.statMu.Lock()
	c.stats.PathMigrations++
	c.statMu.Unlock()
	c.event("path-migrate", peer, c.mgrClk.Now())
	c.led.Detect("net", -1, c.mgrClk.Now(), "path-error")
	c.led.Act("net", -1, c.mgrClk.Now(), "path-migrate")
	return true
}

// tryMigrate is tryMigrateLocked for callers that dropped connMu: it
// revalidates the slot (same generation, still ready) before migrating.
func (c *Conduit) tryMigrate(peer int, epoch uint64) bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	cn := c.peekConn(peer)
	if cn == nil || cn.epoch != epoch || cn.state != connReady {
		// Someone else already recovered or tore the slot down; let the
		// caller's retry loop observe the new state.
		return true
	}
	return c.tryMigrateLocked(cn, peer)
}

// railFailover is the second rung of the path-error ladder: APM was
// impossible (no live alternate loaded), so tear the connection down and
// re-run the handshake — initiate's rail selection lands it on a live rail
// when one exists, and when none does the handshake datagrams blackhole until
// the partition heals, which is exactly the suspension the failure detector
// supervises. The session layer's retained frames survive the teardown and
// replay over the replacement connection.
func (c *Conduit) railFailover(peer int, epoch uint64) {
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil || cn.epoch != epoch || cn.state != connReady {
		c.connMu.Unlock()
		return
	}
	c.teardownLocked(cn)
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.RailFailovers++
	c.statMu.Unlock()
	c.event("rail-failover", peer, c.mgrClk.Now())
	c.led.Detect("net", -1, c.mgrClk.Now(), "path-error")
	c.led.Act("net", -1, c.mgrClk.Now(), "rail-failover")
}

// connFor returns (creating if necessary) the connection slot for peer.
// Caller holds connMu.
func (c *Conduit) connFor(peer int) *conn {
	if c.connSlice != nil {
		cn := c.connSlice[peer]
		if cn == nil {
			cn = &conn{}
			c.connSlice[peer] = cn
		}
		return cn
	}
	cn := c.connMap[peer]
	if cn == nil {
		cn = &conn{}
		c.connMap[peer] = cn
	}
	return cn
}

// peekConn returns the slot without creating it. Caller holds connMu.
func (c *Conduit) peekConn(peer int) *conn {
	if c.connSlice != nil {
		return c.connSlice[peer]
	}
	return c.connMap[peer]
}

// Connected reports whether a ready connection to peer exists.
func (c *Conduit) Connected(peer int) bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	cn := c.peekConn(peer)
	return cn != nil && cn.state == connReady
}

// NumConnected returns the number of ready connections at this PE.
func (c *Conduit) NumConnected() int {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.nReady
}

// teardownLocked destroys a connection's queue pairs and resets the slot to
// connNone so a later use re-runs the handshake. Queued traffic and the
// payload-consumed flag survive: pending sends flush over the replacement
// connection exactly once, and the upper layer's segment info is never
// re-consumed. Caller holds connMu and emits the trace event/stat itself.
func (c *Conduit) teardownLocked(cn *conn) {
	if cn.qp != nil {
		cn.qp.Destroy()
		cn.qp = nil
	}
	if cn.loopbk != nil {
		cn.loopbk.Destroy()
		cn.loopbk = nil
	}
	if cn.state == connReady {
		c.nReady--
	}
	cn.state = connNone
	cn.epoch++
	cn.creditRel = nil // the replacement connection starts with a full window
	cn.rejWait = false
}

// noteLinkFault tears down the connection to peer if it is still the same
// generation the caller observed failing; concurrent posters race to report
// the same dead QP and only the first wins. Returns true if this call did
// the teardown.
func (c *Conduit) noteLinkFault(peer int, epoch uint64) bool {
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil || cn.epoch != epoch || cn.state != connReady {
		c.connMu.Unlock()
		return false
	}
	c.teardownLocked(cn)
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.LinkFaults++
	c.statMu.Unlock()
	c.event("conn-link-fault", peer, c.clk.Now())
	return true
}

// connHealthyLocked reports whether both halves of a ready connection are
// still alive: our QP is RTS and the remote QP it is bound to still exists
// and is usable. This is the simulator's stand-in for the zero-byte liveness
// probe a real conduit would post; it lets the server distinguish a genuine
// reconnect request (the client always destroys its old QP first) from a
// delayed duplicate of an abandoned attempt. Caller holds connMu.
func (c *Conduit) connHealthyLocked(cn *conn) bool {
	if cn.qp == nil || cn.qp.State() != ib.StateRTS {
		return false
	}
	r := cn.qp.Remote()
	rh := c.cfg.HCA.Fabric().HCA(r.LID)
	if rh == nil {
		return false
	}
	rq := rh.QP(r.QPN)
	if rq == nil {
		return false
	}
	st := rq.State()
	return st == ib.StateRTR || st == ib.StateRTS
}

// remoteQPAlive reports whether the queue pair a handshake message advertises
// still exists and has not failed. A client abandons an attempt only by
// destroying its QP (collision loss, teardown), so a request advertising a
// dead endpoint is a delayed duplicate of an abandoned attempt: binding to it
// could never complete the handshake, and accepting it over connNone would
// wedge this side in accepted forever. Real conduits learn the same thing
// from the CM's address resolution or the first retransmission timeout.
func (c *Conduit) remoteQPAlive(d ib.Dest) bool {
	h := c.cfg.HCA.Fabric().HCA(d.LID)
	if h == nil {
		return false
	}
	q := h.QP(d.QPN) // nil once destroyed
	return q != nil && q.State() != ib.StateError
}

// maybeEvictLocked enforces the per-HCA live-QP cap before a new RC
// connection is created: while the adapter is at or above the cap, the
// least-recently-used idle connection (ready, nothing queued, not the slot
// being established) is torn down. The evicted peer reconnects on demand;
// eviction is best-effort, so a node whose connections are all busy simply
// exceeds the cap. Caller holds connMu.
func (c *Conduit) maybeEvictLocked(excludePeer int, vt int64) {
	limit := c.cfg.MaxLiveRC
	if limit <= 0 || c.cfg.Mode == Static {
		// The static baseline is fully connected by definition and has no
		// reconnect path: evicting one of its connections would be permanent.
		return
	}
	for c.cfg.HCA.LiveRC() >= int64(limit) {
		victim, peer := c.pickVictimLocked(excludePeer)
		if victim == nil {
			return
		}
		c.teardownLocked(victim)
		// A last-resort victim still retaining unacknowledged frames: its
		// replay reconnect starts a full RTO out so the slot we just freed
		// is not immediately reclaimed by the victim itself.
		c.deferDirtyReplayLocked(victim)
		c.statMu.Lock()
		c.stats.Evictions++
		c.statMu.Unlock()
		c.event("conn-evict", peer, vt)
		c.led.Act("alloc", obs.InstJob, vt, "conn-evict")
	}
}

// pickVictimLocked returns the least-recently-used evictable connection:
// ready, no queued traffic, not the excluded peer, not the self-loopback.
// Connections retaining unacknowledged framed sends are kept as a last
// resort: evicting one strands its retained window until the RTO-driven
// reconnect replays it, delaying any Quiet waiting on the acknowledgements —
// but refusing outright could leave the budget-constrained adapter with no
// victim at all, turning a transient ACK delay into a spurious
// resource-exhaustion abort.
func (c *Conduit) pickVictimLocked(excludePeer int) (*conn, int) {
	var victim, dirty *conn
	vpeer, dpeer := -1, -1
	consider := func(peer int, cn *conn) {
		if cn == nil || cn.state != connReady || len(cn.pending) > 0 {
			return
		}
		if peer == excludePeer || peer == c.cfg.Rank {
			return
		}
		// Total order: lastUse first, peer rank as the tie-break. Server-side
		// connections that were never used locally all carry lastUse == 0, and
		// without the tie-break the map iteration order would pick the victim —
		// making eviction (and everything downstream: reconnects, the flow
		// matrix's ctrl column, lifecycle timelines) schedule-dependent.
		if len(cn.unacked) > 0 {
			if dirty == nil || cn.lastUse < dirty.lastUse ||
				(cn.lastUse == dirty.lastUse && peer < dpeer) {
				dirty, dpeer = cn, peer
			}
			return
		}
		if victim == nil || cn.lastUse < victim.lastUse ||
			(cn.lastUse == victim.lastUse && peer < vpeer) {
			victim, vpeer = cn, peer
		}
	}
	if c.connSlice != nil {
		for peer, cn := range c.connSlice {
			consider(peer, cn)
		}
	} else {
		for peer, cn := range c.connMap {
			consider(peer, cn)
		}
	}
	if victim == nil {
		return dirty, dpeer
	}
	return victim, vpeer
}

// reliefEvict is this conduit's pressure-relief hook, registered with the
// shared adapter (ib.HCA.RegisterRelief): evict the least-recently-used idle
// connection so a node-local sibling's stalled queue-pair allocation can
// proceed. Unlike maybeEvictLocked it ignores the live-RC cap — the request
// itself is the proof of pressure. The evicted peer reconnects on demand.
func (c *Conduit) reliefEvict(vt int64) bool {
	if c.closed.Load() {
		return false
	}
	c.connMu.Lock()
	victim, peer := c.pickVictimLocked(-1)
	if victim == nil {
		c.connMu.Unlock()
		return false
	}
	c.teardownLocked(victim)
	c.deferDirtyReplayLocked(victim)
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.Evictions++
	c.statMu.Unlock()
	c.event("conn-evict", peer, vt)
	c.led.Act("alloc", obs.InstJob, vt, "relief-evict")
	return true
}

// payload returns the upper layer's connect payload, or nil.
func (c *Conduit) payload() []byte {
	if c.cfg.ConnectPayload == nil {
		return nil
	}
	return c.cfg.ConnectPayload()
}

// consumePayloadLocked hands the peer's piggybacked payload to the upper
// layer exactly once. Called with connMu held, before the connection becomes
// visible as ready, so a PE that observes the connection always observes the
// segment info too. OnConnectPayload must therefore not call back into the
// conduit.
func (c *Conduit) consumePayloadLocked(cn *conn, peer int, payload []byte, at int64) {
	if cn.gotPay {
		return
	}
	cn.gotPay = true
	if c.cfg.OnConnectPayload != nil && payload != nil {
		c.cfg.OnConnectPayload(peer, payload, at)
	}
}

// creditGateLocked blocks — in virtual time — until the sender-side
// receive-credit window against cn's peer has a free slot, then consumes one
// with a conservative estimate of when the receiver reposts it (arrival plus
// the receive-queue drain time). The window mirrors the target QP's finite
// receive queue, so a well-behaved sender stalls locally instead of eating
// NAK round trips; the receiver's RNR NAK (see postRNR) remains the ground
// truth when the estimate runs early. Caller holds connMu.
func (c *Conduit) creditGateLocked(cn *conn, depth, n int) {
	prune := func() {
		now := c.clk.Now()
		i := 0
		for i < len(cn.creditRel) && cn.creditRel[i] <= now {
			// Each credit's release is stamped at its own estimated repost
			// time; the gauge fold sorts by VT, so late observation is exact.
			c.gCredits.Add(cn.creditRel[i], -1)
			i++
		}
		if i > 0 {
			cn.creditRel = append(cn.creditRel[:0], cn.creditRel[i:]...)
		}
	}
	prune()
	stalls := 0
	for len(cn.creditRel) >= depth {
		// The oldest in-flight message frees its slot at creditRel[0]; sleep
		// until then, backing off exponentially if the window stays shut.
		shift := stalls
		if shift > rnrBackoffMaxShift {
			shift = rnrBackoffMaxShift
		}
		c.clk.AdvanceTo(cn.creditRel[0])
		c.clk.Advance(c.model.RNRRetryDelay << shift)
		stalls++
		prune()
	}
	if stalls > 0 {
		c.statMu.Lock()
		c.stats.CreditStalls++
		c.statMu.Unlock()
	}
	cn.creditRel = append(cn.creditRel,
		c.clk.Now()+c.model.RCSendLatency+c.model.XferTime(n)+c.model.RQDrain)
	c.gCredits.Add(c.clk.Now(), 1)
}

// postRNR posts wr on qp, absorbing receiver-not-ready NAKs: each NAK backs
// off exponentially on the work request's clock and retries, modeling the
// HCA's RNR retry timer. The loop terminates because every retry departs
// later, so its arrival eventually passes the receive queue's oldest
// release time. Other errors — including link faults — return unchanged.
func (c *Conduit) postRNR(qp *ib.QP, wr ib.SendWR) error {
	for shift := 0; ; shift++ {
		err := qp.PostSend(wr)
		if !errors.Is(err, ib.ErrRNR) {
			return err
		}
		c.statMu.Lock()
		c.stats.RNRNaks++
		c.statMu.Unlock()
		s := shift
		if s > rnrBackoffMaxShift {
			s = rnrBackoffMaxShift
		}
		wr.Clk.Advance(c.model.RNRRetryDelay << s)
	}
}

// post sends a work request to peer, establishing the connection on demand.
// If the connection is still being established the request is queued and
// flushed, in order, the moment the connection is ready. clonePending makes
// a private copy of wr.Data when queueing (callers that hand over ownership
// of the buffer, such as AMRequest, pass false).
//
// A post that fails because the connection died underneath it (link flap,
// peer eviction) tears the connection down and loops: the work request is
// queued behind a fresh handshake and re-executed there. For most faults the
// fabric fails the operation before any byte moves; a torn or corrupted RDMA
// payload (ib.ErrTornWrite, ib.ErrRCCorrupt) lands damage first — the clean
// replay overwrites it before the operation ever completes, so Quiet never
// observes the damage. Two-sided sends on a lossy fabric additionally go
// through the framed session path (session.go) for end-to-end integrity and
// exactly-once delivery.
func (c *Conduit) post(peer int, wr ib.SendWR, clonePending bool) error {
	if peer < 0 || peer >= c.cfg.NProcs {
		return fmt.Errorf("gasnet: peer %d out of range [0,%d)", peer, c.cfg.NProcs)
	}
	for {
		c.connMu.Lock()
		if c.deadPeers[peer] {
			c.connMu.Unlock()
			return ErrPeerDead
		}
		cn := c.connFor(peer)
		switch cn.state {
		case connReady:
			qp := cn.qp
			epoch := cn.epoch
			c.useSeq++
			cn.lastUse = c.useSeq
			if wr.Op == ib.OpSend {
				if depth := c.cfg.HCA.Limits().RQDepth; depth > 0 {
					c.creditGateLocked(cn, depth, len(wr.Data))
				}
			}
			if c.lossy && wr.Op == ib.OpSend {
				// Framed session path: sequence, trailer and retention happen
				// under connMu so wire order equals sequence order. wr.Data is
				// never mutated (the framing reallocates), so the outer wr can
				// be re-queued untouched if the link fails.
				err := c.postFramedLocked(cn, wr, c.clk)
				c.connMu.Unlock()
				if err != nil && errors.Is(err, ib.ErrPathDown) {
					// Path-error ladder: migrate to the alternate rail in
					// place (APM), else reconnect on another rail, else the
					// reconnect blackholes and the pair suspends; then re-run
					// this post (the failed frame rolled its sequence back).
					if !c.tryMigrate(peer, epoch) {
						c.railFailover(peer, epoch)
					}
					continue
				}
				if err == nil || !isLinkFault(err) {
					return err
				}
				c.noteDataFault(err)
				c.noteLinkFault(peer, epoch)
				continue
			}
			c.connMu.Unlock()
			wr.Clk = c.clk
			err := c.postRNR(qp, wr)
			if err != nil && errors.Is(err, ib.ErrPathDown) {
				if !c.tryMigrate(peer, epoch) {
					c.railFailover(peer, epoch)
				}
				continue
			}
			if err == nil || !isLinkFault(err) {
				return err
			}
			c.noteDataFault(err)
			c.noteLinkFault(peer, epoch)
			// Loop: the slot is connNone now (or another poster already
			// restarted the handshake); re-queue this request behind it.
		case connConnecting, connAccepted:
			if clonePending && wr.Data != nil {
				wr.Data = append([]byte(nil), wr.Data...)
			}
			cn.pending = append(cn.pending, pendingWR{wr: wr, enq: c.clk.Now()})
			c.connMu.Unlock()
			return nil
		default: // connNone
			c.connMu.Unlock()
			if err := c.initiate(peer); err != nil {
				return err
			}
		}
	}
}

// EnsureConnected blocks until a ready connection to peer exists,
// establishing it if necessary. On return, any payload piggybacked by the
// peer has been consumed, so one-sided addressing info is available.
func (c *Conduit) EnsureConnected(peer int) error {
	if peer < 0 || peer >= c.cfg.NProcs {
		return fmt.Errorf("gasnet: peer %d out of range [0,%d)", peer, c.cfg.NProcs)
	}
	if err := c.checkAlive(); err != nil {
		return err
	}
	for {
		c.connMu.Lock()
		if c.deadPeers[peer] {
			c.connMu.Unlock()
			return ErrPeerDead
		}
		cn := c.connFor(peer)
		switch cn.state {
		case connReady:
			ready := cn.readyVT
			c.useSeq++
			cn.lastUse = c.useSeq
			c.connMu.Unlock()
			// The caller blocked until the handshake finished; its time
			// advances to the connection-ready instant.
			c.clk.AdvanceTo(ready)
			return nil
		case connNone:
			c.connMu.Unlock()
			if err := c.initiate(peer); err != nil {
				return err
			}
		default:
			c.connCond.Wait()
			c.connMu.Unlock()
			if err := c.Err(); err != nil {
				return err
			}
		}
	}
}

// allocRCQPLocked obtains an RC queue pair under the adapter's budget for a
// handshake with peer, running the client-side degradation ladder: evict an
// idle connection and retry — with exponential virtual-time backoff — while
// the budget could still free up, and abort the job with
// ExitResourceExhausted once forward progress is provably impossible: the
// adapter reports allocation can never succeed, or qpAllocRetries consecutive
// retries pass without a single queue pair being destroyed anywhere on the
// adapter (no other conduit is releasing endpoints either, so waiting longer
// cannot help). A busy adapter where other tenants churn endpoints resets the
// stall count — losing allocation races is contention, not exhaustion.
// Called with connMu held; the lock is dropped and reacquired around each
// backoff and around the abort, so on return the caller must re-validate the
// slot's state before using the queue pair.
func (c *Conduit) allocRCQPLocked(peer int, clk *vclock.Clock) (*ib.QP, error) {
	stalled := 0
	lastDestroyed := c.cfg.HCA.Stats().QPsDestroyed
	for {
		c.maybeEvictLocked(peer, clk.Now())
		qp, err := c.cfg.HCA.TryCreateQP(ib.RC, clk, c.cq, c.cq)
		if err == nil {
			return qp, nil
		}
		c.statMu.Lock()
		c.stats.AllocFailures++
		c.statMu.Unlock()
		if d := c.cfg.HCA.Stats().QPsDestroyed; d != lastDestroyed {
			lastDestroyed = d
			stalled = 0
		} else {
			stalled++
		}
		if c.cfg.HCA.QPImpossible() || stalled >= qpAllocRetries {
			ae := &AbortError{Origin: c.cfg.Rank, Dead: -1, Code: ExitResourceExhausted,
				Reason: fmt.Sprintf("rank %d: RC endpoint for peer %d unobtainable after eviction and retry: %v",
					c.cfg.Rank, peer, err)}
			c.connMu.Unlock()
			c.event("qp-alloc-fatal", peer, clk.Now())
			c.Abort(ae)
			c.connMu.Lock()
			return nil, ae
		}
		shift := stalled
		if shift > rnrBackoffMaxShift {
			shift = rnrBackoffMaxShift
		}
		c.connMu.Unlock()
		c.event("qp-alloc-retry", peer, clk.Now())
		// Our own idle connections are gone (maybeEvictLocked found no more
		// victims); ask the adapter's other tenants to release one before
		// backing off. Without this cross-process half of eviction, a PE
		// whose node-local siblings pin the whole budget — but, being idle,
		// never allocate and so never evict — reads the motionless destroy
		// counter as exhaustion and aborts a perfectly recoverable job.
		c.cfg.HCA.RequestRelief(clk.Now())
		clk.Advance(c.model.RNRRetryDelay << shift)
		// Give the manager thread real time to finish the in-flight
		// handshakes that are pinning the budget; virtual time alone cannot
		// release them.
		time.Sleep(time.Millisecond)
		c.connMu.Lock()
	}
}

// initiate starts the client side of the two-phase handshake (paper Fig. 4):
// resolve the peer's UD endpoint (completing the non-blocking PMI exchange
// if needed), create an RC QP, move it to INIT, and send a ConnReq carrying
// our RC endpoint and the upper layer's payload.
func (c *Conduit) initiate(peer int) error {
	c.connMu.Lock()
	if c.deadPeers[peer] {
		c.connMu.Unlock()
		return ErrPeerDead
	}
	cn := c.connFor(peer)
	if cn.state != connNone {
		c.connMu.Unlock()
		return nil
	}
	if peer == c.cfg.Rank {
		return c.connectSelfLocked(cn) // unlocks
	}
	cn.state = connConnecting
	// Attempt numbers are never reused, even across abandoned attempts
	// (collision losses, adopted lower-seq accepts): a delayed duplicate of
	// an old REQ must always compare below any live attempt.
	if cn.seqHi > cn.seq {
		cn.seq = cn.seqHi
	}
	cn.seq++
	cn.seqHi = cn.seq
	seq := cn.seq
	c.connMu.Unlock()

	// The out-of-band lookup can block (PMIX_Wait / PMI Get); do it without
	// the lock. An incoming ConnReq from the same peer may meanwhile turn
	// this slot into the server side (collision: the lower rank's request
	// wins); in that case we abandon the client attempt.
	ud, err := c.resolveUD(peer)

	c.connMu.Lock()
	if cn.state != connConnecting || cn.seq != seq {
		c.connMu.Unlock()
		return nil
	}
	if err != nil {
		cn.state = connNone
		c.connMu.Unlock()
		return err
	}
	qp, aerr := c.allocRCQPLocked(peer, c.clk)
	if aerr != nil {
		if cn.state == connConnecting && cn.seq == seq {
			cn.state = connNone
		}
		c.connMu.Unlock()
		return aerr
	}
	if cn.state != connConnecting || cn.seq != seq {
		// The slot changed while the allocation ladder had the lock dropped
		// (collision: the peer's request won); release the unneeded QP.
		qp.Destroy()
		c.connMu.Unlock()
		return nil
	}
	qp.SetObs(c.obs)
	c.obs.Emit(c.clk.Now(), obs.LayerIB, "qp-create-rc", peer, 0)
	c.countQP(ib.RC)
	qp.SetPath(c.pickRailsLocked(ud.LID, c.clk.Now()))
	if e := qp.ToInit(); e != nil {
		c.connMu.Unlock()
		return e
	}
	cn.qp = qp
	c.mapQPLocked(qp, peer)
	cn.peerUD = ud
	cn.firstTx = c.clk.Now()
	cn.lastTx = timeNow()
	cn.attempt = 0
	req := connMsg{Kind: msgConnReq, SrcRank: int32(c.cfg.Rank), Seq: seq,
		RC: qp.Addr(), UD: c.udQP.Addr(), Payload: c.connPayloadLocked(peer)}
	c.armTimerLocked()
	c.connMu.Unlock()
	c.event("conn-initiate", peer, c.clk.Now())
	return c.sendControl(peer, ud, req, c.clk)
}

// connectSelfLocked builds the loopback connection to this PE itself
// (OpenSHMEM semantics allow communication with one's own rank; the fully
// connected baseline counts it too). Called with connMu held; unlocks.
func (c *Conduit) connectSelfLocked(cn *conn) error {
	// Hold the slot across the allocation ladder's lock drops; concurrent
	// posts to self queue behind it and are flushed below.
	cn.state = connConnecting
	a, aerr := c.allocRCQPLocked(c.cfg.Rank, c.clk)
	if aerr != nil {
		cn.state = connNone
		c.connMu.Unlock()
		return aerr
	}
	b, berr := c.allocRCQPLocked(c.cfg.Rank, c.clk)
	if berr != nil {
		a.Destroy()
		cn.state = connNone
		c.connMu.Unlock()
		return berr
	}
	a.SetObs(c.obs)
	b.SetObs(c.obs)
	c.obs.Emit(c.clk.Now(), obs.LayerIB, "qp-create-rc", c.cfg.Rank, 0)
	c.obs.Emit(c.clk.Now(), obs.LayerIB, "qp-create-rc", c.cfg.Rank, 0)
	c.countQP(ib.RC)
	c.countQP(ib.RC)
	for _, s := range []struct {
		q *ib.QP
		r ib.Dest
	}{{a, b.Addr()}, {b, a.Addr()}} {
		if err := s.q.ToInit(); err != nil {
			c.connMu.Unlock()
			return err
		}
		if err := s.q.ToRTR(s.r); err != nil {
			c.connMu.Unlock()
			return err
		}
		if err := s.q.ToRTS(); err != nil {
			c.connMu.Unlock()
			return err
		}
	}
	cn.qp = a
	cn.loopbk = b
	c.mapQPLocked(a, c.cfg.Rank)
	c.mapQPLocked(b, c.cfg.Rank)
	cn.readyVT = c.clk.Now()
	c.consumePayloadLocked(cn, c.cfg.Rank, c.payload(), cn.readyVT)
	cn.state = connReady
	c.nReady++
	recon := cn.everReady
	cn.everReady = true
	if cn.readyVT > c.lastReadyVT {
		c.lastReadyVT = cn.readyVT
	}
	// Posts to self that arrived while the allocation ladder had the lock
	// dropped queued behind the slot; deliver them now.
	c.flushLocked(cn, c.cfg.Rank)
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.ConnsEstablished++
	if recon {
		c.stats.Reconnects++
		c.led.Act("rc", c.cfg.Rank, c.clk.Now(), "reconnect")
	}
	c.statMu.Unlock()
	c.connCond.Broadcast()
	return nil
}

// sendControl transmits a handshake datagram over the UD endpoint. peer is
// the destination rank, attributed to the flow matrix as control traffic.
func (c *Conduit) sendControl(peer int, dest ib.Dest, m connMsg, clk *vclock.Clock) error {
	data := m.encode()
	if c.obs.EventsEnabled() {
		c.obs.Emit(clk.Now(), obs.LayerGasnet, "ud-send", -1, int64(len(data)),
			obs.Attr{Key: "msg", Val: msgName(m.Kind)})
	}
	c.obs.Flow(peer, obs.FlowCtrl, int64(len(data)))
	return c.udQP.PostSend(ib.SendWR{Op: ib.OpSend, Dest: dest, Data: data, Clk: clk})
}

// handleControl dispatches UD handshake traffic on the connection-manager
// "thread" (the progress goroutine).
//
// Each message is served on its own service clock seeded from the message's
// virtual arrival time, so every server-side timestamp (QP transitions, the
// reply's departure, ready times, trace events) is a deterministic function
// of the arrival VT alone — never of the wall-clock order in which the
// goroutine happened to dequeue concurrent messages. The shared manager
// clock is kept only as a commutative high-water mark (max over served
// messages), which keeps HealthSnapshot and the fault path monotone without
// reintroducing order sensitivity. The cost of this determinism is that
// queueing delay at a contended manager is not modeled: concurrent requests
// are each charged the full processing cost but do not wait for each other.
func (c *Conduit) handleControl(comp ib.Completion) {
	m, err := decodeConnMsg(comp.Data)
	if err != nil {
		// A frame that fails checksum verification is discarded here, before
		// any field could poison the connection or rkey tables; the sender's
		// retransmission timer re-delivers the content.
		if errors.Is(err, errCorruptFrame) {
			c.statMu.Lock()
			c.stats.CorruptFrames++
			c.statMu.Unlock()
			c.event("ud-corrupt", -1, comp.VTime)
		}
		return
	}
	if c.arrivalFate(comp.VTime) != selfAlive {
		// A killed or wedged PE's software handles nothing — except the abort
		// datagram, which models the launcher's out-of-band kill and is what
		// finally releases a wedged process.
		if m.Kind == msgAbort {
			c.handleAbortMsg(m)
		}
		return
	}
	c.noteAlive(int(m.SrcRank))
	if c.obs.EventsEnabled() {
		c.obs.Emit(comp.VTime, obs.LayerGasnet, "ud-recv", int(m.SrcRank), int64(len(comp.Data)),
			obs.Attr{Key: "msg", Val: msgName(m.Kind)})
	}
	svc := vclock.NewClock(comp.VTime)
	svc.Advance(c.model.ConnReqProcess)
	switch m.Kind {
	case msgConnReq:
		c.handleReq(m, comp.VTime, svc)
	case msgConnRep:
		c.handleRep(m, svc)
	case msgConnRTU:
		c.handleRTU(m, svc)
	case msgConnRej:
		c.handleRej(m, svc)
	case msgDataAck:
		c.handleDataAck(int(m.SrcRank), m.Payload, false, svc)
	case msgDataNak:
		c.handleDataAck(int(m.SrcRank), m.Payload, true, svc)
	case msgDataProbe:
		c.handleDataProbe(int(m.SrcRank), svc)
	case msgHeartbeat:
		// Echo a liveness ack to the prober, on the manager thread.
		c.sendControl(int(m.SrcRank), m.UD, connMsg{Kind: msgHeartbeatAck, SrcRank: int32(c.cfg.Rank),
			Seq: m.Seq, UD: c.udQP.Addr()}, svc)
	case msgHeartbeatAck:
		// The noteAlive above is the entire effect; also close the RTT
		// histogram sample opened by the probe.
		c.noteHeartbeatAck(int(m.SrcRank), comp.VTime)
	case msgAbort:
		c.handleAbortMsg(m)
	}
	c.mgrClk.AdvanceTo(svc.Now())
}

// handleReq is the server side: create an RC endpoint, bind it to the
// client's, consume the piggybacked payload and reply with our endpoint and
// payload. at is the request's virtual arrival time. Duplicates are
// answered idempotently; requests arriving before this PE is ready
// (segments unregistered) are held and replayed at SetReady, which also
// decides whether to emit the "conn-req-held" trace event. at is the
// request's virtual arrival time; svc is the per-message service clock
// (already charged with the processing cost) on which all server-side work
// for this request is timed.
func (c *Conduit) handleReq(m connMsg, at int64, svc *vclock.Clock) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs || peer == c.cfg.Rank {
		return
	}
	if !c.ready.Load() {
		// Hold the request until this PE has registered its segments
		// (paper section IV-E). The payload slice is already private.
		c.connMu.Lock()
		if !c.ready.Load() {
			c.heldReqs = append(c.heldReqs, heldReq{m: m, at: at})
			c.connMu.Unlock()
			return
		}
		c.connMu.Unlock()
	}
	c.connMu.Lock()
	cn := c.connFor(peer)
	if !c.remoteQPAlive(m.RC) {
		c.connMu.Unlock()
		c.event("conn-stale-req", peer, svc.Now())
		return
	}
	switch cn.state {
	case connReady, connAccepted:
		if m.Seq <= cn.seq {
			// Duplicate request: resend the reply with the existing endpoint.
			// (If we are already fully connected the client must have
			// processed the original reply to send RTU, but a stale duplicate
			// is still answered; the client ignores replies when ready.)
			rep := connMsg{Kind: msgConnRep, SrcRank: int32(c.cfg.Rank), Seq: cn.seq,
				RC: cn.qp.Addr(), UD: c.udQP.Addr(), Payload: c.connPayloadLocked(peer)}
			ud := cn.peerUD
			c.connMu.Unlock()
			c.sendControl(peer, ud, rep, svc)
			return
		}
		// Higher sequence than anything we served: normally the peer tore
		// the old connection down (link fault on its side, or it evicted us)
		// and is re-running the handshake. But a delayed duplicate of a REQ
		// the peer has since abandoned (collision loss under reordering)
		// looks identical — and honoring it would kill a healthy connection
		// and bind to a destroyed endpoint. A genuine reconnect always
		// destroys the client's old QP before the new REQ is sent, so if
		// both halves of the current connection are still alive the REQ is
		// stale: ignore it (it is never retransmitted).
		if cn.state == connReady && c.connHealthyLocked(cn) {
			c.connMu.Unlock()
			c.event("conn-stale-req", peer, svc.Now())
			return
		}
		c.teardownLocked(cn)
		c.event("conn-reconnect-req", peer, svc.Now())
	case connConnecting:
		if c.cfg.Rank < peer {
			// Collision, and we are the winner: ignore the peer's request;
			// the peer will abandon its attempt and serve ours.
			c.connMu.Unlock()
			return
		}
		// Collision, and we are the loser: abandon the client attempt (the
		// half-open QP is discarded; queued sends stay and flush over the
		// winning connection).
		c.event("conn-collision-lost", peer, svc.Now())
		if cn.qp != nil {
			cn.qp.Destroy()
			cn.qp = nil
		}
	case connNone:
		if m.Seq <= cn.seq {
			// Duplicate of an attempt this slot already served and has since
			// torn down (eviction): the client is not waiting on this
			// handshake — accepting would bind a second server QP to a
			// connection the client believes is complete. A genuine new
			// attempt always carries a higher number.
			c.connMu.Unlock()
			c.event("conn-stale-req", peer, svc.Now())
			return
		}
	}

	c.maybeEvictLocked(peer, svc.Now())
	qp, qerr := c.cfg.HCA.TryCreateQP(ib.RC, svc, c.cq, c.cq)
	if qerr != nil {
		// Admission control: the adapter is at its queue-pair cap and idle
		// eviction freed nothing. Reject the request; the client retries
		// after backoff (retry-after semantics that compose with eviction —
		// each retry lands after more connections have gone idle), or aborts
		// when we can prove no future attempt can ever be admitted.
		fatal := c.cfg.HCA.QPImpossible()
		c.statMu.Lock()
		c.stats.AllocFailures++
		c.stats.AdmissionRejects++
		c.statMu.Unlock()
		// The collision-loser branch above may have left the slot
		// connConnecting with no QP; normalize it so a later local post
		// restarts cleanly instead of queueing forever, and restart the
		// handshake ourselves when traffic is already queued behind it.
		if cn.state == connConnecting && cn.qp == nil {
			cn.state = connNone
		}
		pend := cn.state == connNone && len(cn.pending) > 0
		flag := byte(0)
		if fatal {
			flag = 1
		}
		rej := connMsg{Kind: msgConnRej, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
			UD: c.udQP.Addr(), Payload: []byte{flag}}
		c.connMu.Unlock()
		c.event("conn-admission-rej", peer, svc.Now())
		c.sendControl(peer, m.UD, rej, svc)
		if pend {
			go c.initiate(peer)
		}
		return
	}
	qp.SetObs(c.obs)
	c.obs.Emit(svc.Now(), obs.LayerIB, "qp-create-rc", peer, 0)
	c.countQP(ib.RC)
	qp.SetPath(c.pickRailsLocked(m.RC.LID, svc.Now()))
	if qp.ToInit() != nil || qp.ToRTR(m.RC) != nil || qp.ToRTS() != nil {
		c.connMu.Unlock()
		return
	}
	cn.qp = qp
	c.mapQPLocked(qp, peer)
	cn.peerUD = m.UD
	cn.seq = m.Seq
	if m.Seq > cn.seqHi {
		cn.seqHi = m.Seq
	}
	cn.firstTx = svc.Now()
	cn.lastTx = timeNow()
	cn.attempt = 0
	c.consumePayloadLocked(cn, peer, c.stripSessionPayloadLocked(cn, m.Payload, svc.Now()), svc.Now())
	cn.state = connAccepted
	rep := connMsg{Kind: msgConnRep, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
		RC: qp.Addr(), UD: c.udQP.Addr(), Payload: c.connPayloadLocked(peer)}
	c.armTimerLocked()
	c.connMu.Unlock()
	c.event("conn-req-served", peer, svc.Now())
	c.sendControl(peer, m.UD, rep, svc)
}

// handleRep is the client side completing the handshake: move our QP to
// RTR/RTS against the server's endpoint, consume the server's payload, flush
// queued traffic and confirm with RTU.
func (c *Conduit) handleRep(m connMsg, svc *vclock.Clock) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil {
		c.connMu.Unlock()
		return
	}
	switch cn.state {
	case connReady:
		if m.Seq == cn.seq {
			if cn.qp != nil && m.RC == cn.qp.Remote() {
				// Duplicate reply (our RTU was lost): re-acknowledge.
				rtu := connMsg{Kind: msgConnRTU, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
					UD: c.udQP.Addr()}
				ud := cn.peerUD
				c.connMu.Unlock()
				c.sendControl(peer, ud, rtu, svc)
				return
			}
			// Same attempt number but a different server endpoint: the
			// server tore our connection down (eviction) and re-accepted on
			// a fresh QP, so the half we hold is dead. Fall through to the
			// divergence recovery below.
		}
		if m.Seq < cn.seq {
			c.connMu.Unlock()
			return // reply for an attempt we have since superseded
		}
		// The server replied for an attempt newer than our established
		// connection: it accepted a stale REQ of ours while our half looked
		// fine. The two sides have diverged — our connection is dead on the
		// server. Tear down and re-run the handshake so both sides converge
		// on a single connection; queued traffic survives the teardown.
		c.teardownLocked(cn)
		c.connMu.Unlock()
		c.statMu.Lock()
		c.stats.LinkFaults++
		c.statMu.Unlock()
		c.event("conn-stale-rep", peer, svc.Now())
		go c.initiate(peer)
		return
	case connConnecting:
		if m.Seq < cn.seq || cn.qp == nil {
			c.connMu.Unlock()
			return // stale attempt or reply raced our setup
		}
		// m.Seq == cn.seq is the normal case. m.Seq > cn.seq means the
		// server served a newer attempt than the one we are waiting on
		// (possible only through stale duplicates); its endpoint in the
		// reply is live either way, so adopt the server's number and bind —
		// any dead half on the server side recovers through the fault path.
		cn.seq = m.Seq
		if m.Seq > cn.seqHi {
			cn.seqHi = m.Seq
		}
		cn.qp.SetClock(svc) // paper Fig. 4: the manager thread drives RTR/RTS
		if cn.qp.ToRTR(m.RC) != nil || cn.qp.ToRTS() != nil {
			c.connMu.Unlock()
			return
		}
		cn.peerUD = m.UD
		cn.readyVT = svc.Now()
		c.consumePayloadLocked(cn, peer, c.stripSessionPayloadLocked(cn, m.Payload, cn.readyVT), cn.readyVT)
		cn.state = connReady
		c.nReady++
		recon := cn.everReady
		cn.everReady = true
		if cn.readyVT > c.lastReadyVT {
			c.lastReadyVT = cn.readyVT
		}
		// Client-perceived connect latency: first REQ transmission to ready.
		c.hConnect.Record(cn.readyVT - cn.firstTx)
		c.obs.Span(cn.firstTx, cn.readyVT, obs.LayerGasnet, "connect", peer, 0)
		flushed := c.flushLocked(cn, peer)
		rtu := connMsg{Kind: msgConnRTU, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
			UD: c.udQP.Addr()}
		ud := cn.peerUD
		c.connMu.Unlock()
		c.statMu.Lock()
		c.stats.ConnsEstablished++
		if recon {
			c.stats.Reconnects++
			c.led.Act("rc", c.cfg.Rank, svc.Now(), "reconnect")
		}
		c.statMu.Unlock()
		c.event("conn-ready-client", peer, svc.Now())
		if flushed {
			// Only acknowledge a connection that survived its flush; a flush
			// that hit a link fault already tore it down for re-handshaking.
			c.sendControl(peer, ud, rtu, svc)
		}
		c.connCond.Broadcast()
		return
	case connAccepted:
		if m.Seq < cn.seq {
			c.connMu.Unlock()
			return // stale reply from an attempt both sides have moved past
		}
		// Mutual-server deadlock: we are serving one of the peer's abandoned
		// attempts while the peer is serving one of ours — both halves are
		// bound to destroyed client QPs, both retransmit REPs, and neither
		// ever sees an RTU. Restart as a client with a fresh attempt number;
		// the peer's accept (or the collision rule, if it restarts too) takes
		// it from there. Queued traffic survives the teardown.
		c.teardownLocked(cn)
		c.connMu.Unlock()
		c.event("conn-mutual-accept", peer, svc.Now())
		go c.initiate(peer)
		return
	case connNone:
		if m.Seq < cn.seqHi {
			c.connMu.Unlock()
			return // long-delayed reply from an attempt we tore down; ignore
		}
		// The server is answering our latest attempt, but we no longer have
		// one: we went ready, our RTU was lost, and the connection was then
		// torn down locally (eviction) before the server's retransmitted
		// reply arrived. The server sits in accepted — possibly with queued
		// traffic — retransmitting a reply nobody is waiting for, bound to a
		// QP we destroyed. Re-run the handshake: our higher-numbered request
		// supersedes the wedged accept and flushes its queue.
		c.connMu.Unlock()
		c.event("conn-rescue-accept", peer, svc.Now())
		go c.initiate(peer)
		return
	default:
		c.connMu.Unlock()
	}
}

// handleRTU completes the server side: the client is ready-to-send, so the
// connection becomes usable and queued traffic flushes.
func (c *Conduit) handleRTU(m connMsg, svc *vclock.Clock) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil || cn.state != connAccepted || m.Seq != cn.seq {
		c.connMu.Unlock()
		return
	}
	cn.state = connReady
	cn.readyVT = svc.Now()
	c.nReady++
	recon := cn.everReady
	cn.everReady = true
	if cn.readyVT > c.lastReadyVT {
		c.lastReadyVT = cn.readyVT
	}
	c.obs.Span(cn.firstTx, cn.readyVT, obs.LayerGasnet, "connect-accept", peer, 0)
	c.flushLocked(cn, peer)
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.ConnsEstablished++
	if recon {
		c.stats.Reconnects++
		c.led.Act("rc", c.cfg.Rank, svc.Now(), "reconnect")
	}
	c.statMu.Unlock()
	c.event("conn-ready-server", peer, svc.Now())
	c.connCond.Broadcast()
}

// handleRej is the client side of admission control: the server refused our
// connection request at its queue-pair cap. A fatal rejection — the server
// proved no future attempt can ever be admitted — aborts the job with
// ExitResourceExhausted, as does a slot that keeps being rejected past
// maxAdmissionRejects. Otherwise the attempt stays in connConnecting with
// its backoff advanced and — crucially — its queue pair RELEASED (rejWait),
// and the retransmission timer re-allocates an endpoint and re-sends the REQ
// later: retry-after semantics, each retry landing after more of the
// server's connections have had a chance to go idle and be evicted. The
// release mirrors IB CM REJ semantics and breaks the mutual-pinning
// livelock where two saturated adapters each hold a rejected half-open QP
// the other needs freed before it can ever admit.
func (c *Conduit) handleRej(m connMsg, svc *vclock.Clock) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	fatal := len(m.Payload) > 0 && m.Payload[0] != 0
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil || cn.state != connConnecting || m.Seq != cn.seq {
		c.connMu.Unlock()
		return // rejection of an attempt we have since abandoned or completed
	}
	cn.rejCount++
	if fatal || cn.rejCount > maxAdmissionRejects {
		ae := &AbortError{Origin: c.cfg.Rank, Dead: -1, Code: ExitResourceExhausted,
			Reason: fmt.Sprintf("rank %d: connection to peer %d rejected %d times (fatal=%v): peer's queue-pair budget exhausted",
				c.cfg.Rank, peer, cn.rejCount, fatal)}
		c.connMu.Unlock()
		c.event("conn-rej-fatal", peer, svc.Now())
		c.Abort(ae)
		return
	}
	cn.attempt++
	cn.lastTx = timeNow()
	if cn.qp != nil {
		cn.qp.Destroy()
		cn.qp = nil
	}
	cn.rejWait = true
	c.armTimerLocked()
	c.connMu.Unlock()
	c.event("conn-rejected", peer, svc.Now())
}

// flushLocked posts the traffic queued behind the handshake, in order. Each
// queued request departs at max(its enqueue time, the connection-ready
// time), accumulating post overheads on a dedicated flush clock.
//
// If the connection dies mid-flush (a link flap can hit the very first
// post), the unflushed remainder is kept queued, the connection is torn down
// and a fresh client handshake is kicked off, so every queued request is
// still delivered exactly once. Returns false in that case.
func (c *Conduit) flushLocked(cn *conn, peer int) bool {
	if c.lossy && len(cn.unacked) > 0 {
		// Replay the retained frames first, before anything newly queued: the
		// receiver's dedup ledger suppresses what it already executed, and a
		// delivery the old connection corrupted or tore is overwritten by this
		// clean replay before any Quiet can complete.
		if !c.resendUnackedLocked(cn, peer, vclock.NewClock(cn.readyVT)) {
			return false
		}
	}
	if len(cn.pending) == 0 {
		return true
	}
	fc := vclock.NewClock(cn.readyVT)
	for i, p := range cn.pending {
		// First-op penalty: how long the queued request waited on the
		// handshake (zero when the request was enqueued after ready).
		if pen := cn.readyVT - p.enq; pen > 0 {
			c.hFirstOp.Record(pen)
		} else {
			c.hFirstOp.Record(0)
		}
		fc.AdvanceTo(p.enq)
		wr := p.wr
		wr.Clk = fc
		post := func() error {
			if c.lossy && wr.Op == ib.OpSend {
				// Queued sends were never framed (p.wr keeps the caller's
				// bytes); they take a fresh sequence now, on the flush clock.
				return c.postFramedLocked(cn, wr, fc)
			}
			return c.postRNR(cn.qp, wr)
		}
		err := post()
		if err != nil && errors.Is(err, ib.ErrPathDown) && c.tryMigrateLocked(cn, peer) {
			// The primary rail died mid-flush but APM found a live alternate:
			// one in-place retry (a failed framed post rolled its sequence
			// back, so the number is safe to reuse).
			err = post()
		}
		if err != nil {
			pathDown := errors.Is(err, ib.ErrPathDown)
			if !isLinkFault(err) && !pathDown {
				// Non-recoverable local fault (e.g. MTU): drop the request as
				// a direct post would, keep flushing the rest.
				continue
			}
			// The queue pair (or its last live path) failed underneath us;
			// keep the remainder queued behind a replacement connection.
			cn.pending = cn.pending[i:]
			c.teardownLocked(cn)
			c.statMu.Lock()
			if pathDown {
				c.stats.RailFailovers++
			} else {
				c.stats.LinkFaults++
			}
			c.statMu.Unlock()
			if pathDown {
				c.event("rail-failover", peer, c.mgrClk.Now())
				c.led.Detect("net", -1, c.mgrClk.Now(), "path-error")
				c.led.Act("net", -1, c.mgrClk.Now(), "rail-failover")
			} else {
				c.event("conn-link-fault", peer, c.mgrClk.Now())
			}
			go c.initiate(peer)
			return false
		}
	}
	cn.pending = nil
	return true
}

// armTimerLocked schedules a retransmission scan if one is not pending.
// Retransmission exists for lossy fabrics (see ib.Fabric.Lossy) and for
// budgeted adapters (see ib.HCA.Limited), where an admission-rejected
// request must be re-sent after backoff; an unbudgeted lossless run never
// arms the timer, keeping its trace byte-identical to the historical one.
func (c *Conduit) armTimerLocked() {
	if c.timerOn || c.closed.Load() ||
		!(c.cfg.HCA.Fabric().Lossy() || c.cfg.HCA.Limited()) {
		return
	}
	c.timerOn = true
	c.timer = time.AfterFunc(c.retrans.Interval, c.retransScan)
}

// retransScan resends REQ (client, awaiting REP) and REP (server, awaiting
// RTU) for connections still in flight. Each retransmission charges the
// virtual retransmission timeout so fault-injected runs remain causally
// plausible.
func (c *Conduit) retransScan() {
	if c.closed.Load() {
		return
	}
	type tx struct {
		peer int
		ud   ib.Dest
		m    connMsg
		at   int64 // virtual retransmission time (deterministic per attempt)
	}
	type windowProbe struct {
		peer  int
		txSeq uint64
	}
	var resend []tx
	var reinit []int
	var probes []windowProbe
	recycled := false
	c.connMu.Lock()
	c.timerOn = false
	now := timeNow()
	scan := func(peer int, cn *conn) {
		if cn == nil {
			return
		}
		if c.lossy && len(cn.unacked) > 0 {
			switch {
			case cn.state == connReady && now.Sub(cn.lastData) >= c.rtoFor(cn.dataAttempt):
				// RTO: no cumulative ACK progress since the last framed post.
				// Either the frames or their acknowledgements were lost on the
				// UD side; replay — the ledger absorbs any duplicates.
				cn.lastData = now
				cn.dataAttempt++
				c.resendUnackedLocked(cn, peer, vclock.NewClock(c.mgrClk.Now()))
			case cn.state == connNone && len(cn.pending) == 0 &&
				now.Sub(cn.lastData) >= c.rtoFor(cn.dataAttempt):
				// A torn-down connection retaining frames with nothing queued
				// to trigger a reconnect. Left alone, the retained window (and
				// any Quiet on it) would hang forever — but a post that
				// succeeded was delivered (an errored post rolls its sequence
				// back), so in the common case only the acknowledgement was
				// the casualty and the frames need trimming, not resending.
				// Probe the peer's cumulative sequence over UD: no queue-pair
				// budget is consumed, and under eviction churn the probes
				// cannot stampede the peer's admission control the way
				// replay reconnects did. Only if the reply leaves frames
				// retained — data genuinely missing — does handleDataAck
				// restart the handshake. Throttled by the RTO backoff.
				cn.lastData = now
				cn.dataAttempt++
				probes = append(probes, windowProbe{peer, cn.txSeq})
			}
		}
		if cn.state != connConnecting && cn.state != connAccepted {
			return
		}
		if cn.state == connConnecting && cn.qp == nil && !cn.rejWait {
			return // still resolving the UD endpoint
		}
		deadAccept := cn.state == connAccepted && cn.qp != nil && !c.remoteQPAlive(cn.qp.Remote())
		if deadAccept || cn.attempt >= recycleAttempts {
			// Recycle a handshake that can no longer (dead client endpoint:
			// the client abandoned the attempt, no RTU can ever arrive) or
			// evidently will not (attempt bound exceeded) complete. The slot
			// is torn down; with queued traffic we become the client of a
			// fresh attempt, without it the slot goes idle until someone
			// needs it. This is the convergence backstop for fault
			// interleavings the message-level guards don't cover.
			c.teardownLocked(cn)
			recycled = true
			if len(cn.pending) > 0 || len(cn.unacked) > 0 {
				reinit = append(reinit, peer)
			}
			c.event("conn-recycle", peer, c.mgrClk.Now())
			return
		}
		if now.Sub(cn.lastTx) < c.rtoFor(cn.attempt) {
			return // not yet stale; avoid duplicate floods during bulk setup
		}
		if cn.qp == nil {
			// Re-arm a rejected attempt (rejWait): the endpoint was released
			// while backing off; allocate a fresh one non-blockingly — if the
			// budget is still full, charge the failure and let the next scan
			// (or the recycle bound, whose re-initiate runs the full fatal
			// ladder) try again.
			c.maybeEvictLocked(peer, c.mgrClk.Now())
			qp, err := c.cfg.HCA.TryCreateQP(ib.RC, c.mgrClk, c.cq, c.cq)
			if err != nil {
				c.statMu.Lock()
				c.stats.AllocFailures++
				c.statMu.Unlock()
				cn.attempt++
				cn.lastTx = now
				return
			}
			qp.SetObs(c.obs)
			c.obs.Emit(c.mgrClk.Now(), obs.LayerIB, "qp-create-rc", peer, 0)
			c.countQP(ib.RC)
			qp.SetPath(c.pickRailsLocked(cn.peerUD.LID, c.mgrClk.Now()))
			if e := qp.ToInit(); e != nil {
				qp.Destroy()
				return
			}
			// The re-sent REQ advertises a new queue pair, so it must carry a
			// fresh attempt number: a server that admitted the old number's
			// endpoint would otherwise bind to the QP we just destroyed.
			if cn.seqHi > cn.seq {
				cn.seq = cn.seqHi
			}
			cn.seq++
			cn.seqHi = cn.seq
			cn.qp = qp
			c.mapQPLocked(qp, peer)
			cn.rejWait = false
			c.event("conn-rearm", peer, c.mgrClk.Now())
		}
		cn.attempt++
		cn.lastTx = now
		// Each retransmission is charged at a virtual time derived from the
		// attempt's first transmission and the attempt count alone, so the
		// resend timestamps do not depend on when the wall-clock scan fired.
		// It must also never lag the manager clock: a handshake that began
		// just inside a partition window would otherwise replay its REQ at
		// in-window virtual times forever — blackholed every attempt — while
		// the detector (whose probes ride the manager clock) has already
		// warped past the heal and sees the peer as healthy.
		at := cn.firstTx + int64(cn.attempt)*c.model.ConnRetransmitTimeout
		if mnow := c.mgrClk.Now(); mnow > at {
			at = mnow
		}
		c.mgrClk.AdvanceTo(at)
		kind := msgConnReq
		if cn.state == connAccepted {
			kind = msgConnRep
		}
		resend = append(resend, tx{peer, cn.peerUD, connMsg{Kind: kind,
			SrcRank: int32(c.cfg.Rank), Seq: cn.seq, RC: cn.qp.Addr(),
			UD: c.udQP.Addr(), Payload: c.connPayloadLocked(peer)}, at})
	}
	if c.connSlice != nil {
		for peer, cn := range c.connSlice {
			scan(peer, cn)
		}
	} else {
		for peer, cn := range c.connMap {
			scan(peer, cn)
		}
	}
	if c.hasPendingLocked() || c.hasUnackedLocked() {
		c.armTimerLocked()
	}
	if recycled {
		// A drain (Close) may be waiting for the recycled slots to settle.
		c.connCond.Broadcast()
	}
	c.connMu.Unlock()
	for _, peer := range reinit {
		c.initiate(peer)
	}
	for _, p := range probes {
		c.sendDataCtl(p.peer, msgDataProbe, p.txSeq, c.mgrClk.Now())
	}
	if len(resend) > 0 {
		c.statMu.Lock()
		c.stats.Retransmits += len(resend)
		c.statMu.Unlock()
	}
	for _, t := range resend {
		c.event("conn-retransmit", t.peer, t.at)
		c.led.Act("ud", c.cfg.Rank, t.at, "retransmit")
		c.sendControl(t.peer, t.ud, t.m, vclock.NewClock(t.at))
	}
}

// ConnectAll eagerly establishes the fully connected process group: the
// static baseline. Each PE initiates to itself and to every higher rank
// (lower ranks initiate to us), then waits until one ready connection per
// peer exists. Must be called after SetReady and ExchangeEndpoints.
func (c *Conduit) ConnectAll() error {
	if err := c.checkAlive(); err != nil {
		return err
	}
	for peer := c.cfg.Rank; peer < c.cfg.NProcs; peer++ {
		if err := c.initiate(peer); err != nil {
			return err
		}
	}
	c.connMu.Lock()
	for c.nReady < c.cfg.NProcs {
		if err := c.LivenessErr(); err != nil {
			c.connMu.Unlock()
			return err
		}
		c.connCond.Wait()
	}
	ready := c.lastReadyVT
	c.connMu.Unlock()
	// Establishment completes when the last handshake does.
	c.clk.AdvanceTo(ready)
	return nil
}
