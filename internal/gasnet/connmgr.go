package gasnet

import (
	"fmt"
	"time"

	"goshmem/internal/ib"
	"goshmem/internal/vclock"
)

// retransInterval is the real-time retransmission scan period, and
// retransBaseRTO the initial per-connection retransmission timeout with
// exponential backoff. Backoff matters even without fault injection: a large
// static ConnectAll keeps thousands of handshakes legitimately in flight for
// (real) seconds, and resending all of them every scan would flood the
// completion queues. Virtual-time charges for retransmissions use
// CostModel.ConnRetransmitTimeout.
const (
	retransInterval = 10 * time.Millisecond
	retransBaseRTO  = 25 * time.Millisecond
	retransMaxShift = 6
)

// rtoFor returns the real-time retransmission timeout for the given attempt.
func rtoFor(attempt int) time.Duration {
	if attempt > retransMaxShift {
		attempt = retransMaxShift
	}
	return retransBaseRTO << attempt
}

// connFor returns (creating if necessary) the connection slot for peer.
// Caller holds connMu.
func (c *Conduit) connFor(peer int) *conn {
	if c.connSlice != nil {
		cn := c.connSlice[peer]
		if cn == nil {
			cn = &conn{}
			c.connSlice[peer] = cn
		}
		return cn
	}
	cn := c.connMap[peer]
	if cn == nil {
		cn = &conn{}
		c.connMap[peer] = cn
	}
	return cn
}

// peekConn returns the slot without creating it. Caller holds connMu.
func (c *Conduit) peekConn(peer int) *conn {
	if c.connSlice != nil {
		return c.connSlice[peer]
	}
	return c.connMap[peer]
}

// Connected reports whether a ready connection to peer exists.
func (c *Conduit) Connected(peer int) bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	cn := c.peekConn(peer)
	return cn != nil && cn.state == connReady
}

// NumConnected returns the number of ready connections at this PE.
func (c *Conduit) NumConnected() int {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.nReady
}

// payload returns the upper layer's connect payload, or nil.
func (c *Conduit) payload() []byte {
	if c.cfg.ConnectPayload == nil {
		return nil
	}
	return c.cfg.ConnectPayload()
}

// consumePayloadLocked hands the peer's piggybacked payload to the upper
// layer exactly once. Called with connMu held, before the connection becomes
// visible as ready, so a PE that observes the connection always observes the
// segment info too. OnConnectPayload must therefore not call back into the
// conduit.
func (c *Conduit) consumePayloadLocked(cn *conn, peer int, payload []byte, at int64) {
	if cn.gotPay {
		return
	}
	cn.gotPay = true
	if c.cfg.OnConnectPayload != nil && payload != nil {
		c.cfg.OnConnectPayload(peer, payload, at)
	}
}

// post sends a work request to peer, establishing the connection on demand.
// If the connection is still being established the request is queued and
// flushed, in order, the moment the connection is ready. clonePending makes
// a private copy of wr.Data when queueing (callers that hand over ownership
// of the buffer, such as AMRequest, pass false).
func (c *Conduit) post(peer int, wr ib.SendWR, clonePending bool) error {
	if peer < 0 || peer >= c.cfg.NProcs {
		return fmt.Errorf("gasnet: peer %d out of range [0,%d)", peer, c.cfg.NProcs)
	}
	for {
		c.connMu.Lock()
		cn := c.connFor(peer)
		switch cn.state {
		case connReady:
			qp := cn.qp
			c.connMu.Unlock()
			wr.Clk = c.clk
			return qp.PostSend(wr)
		case connConnecting, connAccepted:
			if clonePending && wr.Data != nil {
				wr.Data = append([]byte(nil), wr.Data...)
			}
			cn.pending = append(cn.pending, pendingWR{wr: wr, enq: c.clk.Now()})
			c.connMu.Unlock()
			return nil
		default: // connNone
			c.connMu.Unlock()
			if err := c.initiate(peer); err != nil {
				return err
			}
		}
	}
}

// EnsureConnected blocks until a ready connection to peer exists,
// establishing it if necessary. On return, any payload piggybacked by the
// peer has been consumed, so one-sided addressing info is available.
func (c *Conduit) EnsureConnected(peer int) error {
	if peer < 0 || peer >= c.cfg.NProcs {
		return fmt.Errorf("gasnet: peer %d out of range [0,%d)", peer, c.cfg.NProcs)
	}
	for {
		c.connMu.Lock()
		cn := c.connFor(peer)
		switch cn.state {
		case connReady:
			ready := cn.readyVT
			c.connMu.Unlock()
			// The caller blocked until the handshake finished; its time
			// advances to the connection-ready instant.
			c.clk.AdvanceTo(ready)
			return nil
		case connNone:
			c.connMu.Unlock()
			if err := c.initiate(peer); err != nil {
				return err
			}
		default:
			c.connCond.Wait()
			c.connMu.Unlock()
		}
	}
}

// initiate starts the client side of the two-phase handshake (paper Fig. 4):
// resolve the peer's UD endpoint (completing the non-blocking PMI exchange
// if needed), create an RC QP, move it to INIT, and send a ConnReq carrying
// our RC endpoint and the upper layer's payload.
func (c *Conduit) initiate(peer int) error {
	c.connMu.Lock()
	cn := c.connFor(peer)
	if cn.state != connNone {
		c.connMu.Unlock()
		return nil
	}
	if peer == c.cfg.Rank {
		return c.connectSelfLocked(cn) // unlocks
	}
	cn.state = connConnecting
	cn.seq++
	seq := cn.seq
	c.connMu.Unlock()

	// The out-of-band lookup can block (PMIX_Wait / PMI Get); do it without
	// the lock. An incoming ConnReq from the same peer may meanwhile turn
	// this slot into the server side (collision: the lower rank's request
	// wins); in that case we abandon the client attempt.
	ud, err := c.resolveUD(peer)

	c.connMu.Lock()
	if cn.state != connConnecting || cn.seq != seq {
		c.connMu.Unlock()
		return nil
	}
	if err != nil {
		cn.state = connNone
		c.connMu.Unlock()
		return err
	}
	qp := c.cfg.HCA.CreateQP(ib.RC, c.clk, c.cq, c.cq)
	c.countQP(ib.RC)
	if e := qp.ToInit(); e != nil {
		c.connMu.Unlock()
		return e
	}
	cn.qp = qp
	cn.peerUD = ud
	cn.firstTx = c.clk.Now()
	cn.lastTx = timeNow()
	cn.attempt = 0
	req := connMsg{Kind: msgConnReq, SrcRank: int32(c.cfg.Rank), Seq: seq,
		RC: qp.Addr(), UD: c.udQP.Addr(), Payload: c.payload()}
	c.armTimerLocked()
	c.connMu.Unlock()
	c.event("conn-initiate", peer, c.clk.Now())
	return c.sendControl(ud, req, c.clk)
}

// connectSelfLocked builds the loopback connection to this PE itself
// (OpenSHMEM semantics allow communication with one's own rank; the fully
// connected baseline counts it too). Called with connMu held; unlocks.
func (c *Conduit) connectSelfLocked(cn *conn) error {
	a := c.cfg.HCA.CreateQP(ib.RC, c.clk, c.cq, c.cq)
	b := c.cfg.HCA.CreateQP(ib.RC, c.clk, c.cq, c.cq)
	c.countQP(ib.RC)
	c.countQP(ib.RC)
	for _, s := range []struct {
		q *ib.QP
		r ib.Dest
	}{{a, b.Addr()}, {b, a.Addr()}} {
		if err := s.q.ToInit(); err != nil {
			c.connMu.Unlock()
			return err
		}
		if err := s.q.ToRTR(s.r); err != nil {
			c.connMu.Unlock()
			return err
		}
		if err := s.q.ToRTS(); err != nil {
			c.connMu.Unlock()
			return err
		}
	}
	cn.qp = a
	cn.loopbk = b
	cn.readyVT = c.clk.Now()
	c.consumePayloadLocked(cn, c.cfg.Rank, c.payload(), cn.readyVT)
	cn.state = connReady
	c.nReady++
	if cn.readyVT > c.lastReadyVT {
		c.lastReadyVT = cn.readyVT
	}
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.ConnsEstablished++
	c.statMu.Unlock()
	c.connCond.Broadcast()
	return nil
}

// sendControl transmits a handshake datagram over the UD endpoint.
func (c *Conduit) sendControl(dest ib.Dest, m connMsg, clk *vclock.Clock) error {
	return c.udQP.PostSend(ib.SendWR{Op: ib.OpSend, Dest: dest, Data: m.encode(), Clk: clk})
}

// handleControl dispatches UD handshake traffic on the connection-manager
// "thread" (the progress goroutine), charging the manager clock.
func (c *Conduit) handleControl(comp ib.Completion) {
	m, err := decodeConnMsg(comp.Data)
	if err != nil {
		return
	}
	c.mgrClk.AdvanceTo(comp.VTime)
	c.mgrClk.Advance(c.model.ConnReqProcess)
	switch m.Kind {
	case msgConnReq:
		c.handleReq(m)
	case msgConnRep:
		c.handleRep(m)
	case msgConnRTU:
		c.handleRTU(m)
	}
}

// handleReq is the server side: create an RC endpoint, bind it to the
// client's, consume the piggybacked payload and reply with our endpoint and
// payload. Duplicates are answered idempotently; requests arriving before
// this PE is ready (segments unregistered) are dropped and recovered by the
// client's retransmission.
func (c *Conduit) handleReq(m connMsg) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs || peer == c.cfg.Rank {
		return
	}
	if !c.ready.Load() {
		// Hold the request until this PE has registered its segments
		// (paper section IV-E). The payload slice is already private.
		c.connMu.Lock()
		if !c.ready.Load() {
			c.heldReqs = append(c.heldReqs, m)
			c.connMu.Unlock()
			c.event("conn-req-held", peer, c.mgrClk.Now())
			return
		}
		c.connMu.Unlock()
	}
	c.connMu.Lock()
	cn := c.connFor(peer)
	switch cn.state {
	case connReady, connAccepted:
		// Duplicate request: resend the reply with the existing endpoint.
		// (If we are already fully connected the client must have processed
		// the original reply to send RTU, but a stale duplicate is still
		// answered; the client ignores replies when ready.)
		rep := connMsg{Kind: msgConnRep, SrcRank: int32(c.cfg.Rank), Seq: cn.seq,
			RC: cn.qp.Addr(), UD: c.udQP.Addr(), Payload: c.payload()}
		ud := cn.peerUD
		c.connMu.Unlock()
		c.sendControl(ud, rep, c.mgrClk)
		return
	case connConnecting:
		if c.cfg.Rank < peer {
			// Collision, and we are the winner: ignore the peer's request;
			// the peer will abandon its attempt and serve ours.
			c.connMu.Unlock()
			return
		}
		// Collision, and we are the loser: abandon the client attempt (the
		// half-open QP is discarded; queued sends stay and flush over the
		// winning connection).
		c.event("conn-collision-lost", peer, c.mgrClk.Now())
		if cn.qp != nil {
			cn.qp.Destroy()
			cn.qp = nil
		}
	case connNone:
	}

	qp := c.cfg.HCA.CreateQP(ib.RC, c.mgrClk, c.cq, c.cq)
	c.countQP(ib.RC)
	if qp.ToInit() != nil || qp.ToRTR(m.RC) != nil || qp.ToRTS() != nil {
		c.connMu.Unlock()
		return
	}
	cn.qp = qp
	cn.peerUD = m.UD
	cn.seq = m.Seq
	cn.firstTx = c.mgrClk.Now()
	cn.lastTx = timeNow()
	cn.attempt = 0
	c.consumePayloadLocked(cn, peer, m.Payload, c.mgrClk.Now())
	cn.state = connAccepted
	rep := connMsg{Kind: msgConnRep, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
		RC: qp.Addr(), UD: c.udQP.Addr(), Payload: c.payload()}
	c.armTimerLocked()
	c.connMu.Unlock()
	c.event("conn-req-served", peer, c.mgrClk.Now())
	c.sendControl(m.UD, rep, c.mgrClk)
}

// handleRep is the client side completing the handshake: move our QP to
// RTR/RTS against the server's endpoint, consume the server's payload, flush
// queued traffic and confirm with RTU.
func (c *Conduit) handleRep(m connMsg) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil {
		c.connMu.Unlock()
		return
	}
	switch cn.state {
	case connReady:
		// Duplicate reply (our RTU was lost): re-acknowledge.
		rtu := connMsg{Kind: msgConnRTU, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
			UD: c.udQP.Addr()}
		ud := cn.peerUD
		c.connMu.Unlock()
		c.sendControl(ud, rtu, c.mgrClk)
		return
	case connConnecting:
		if m.Seq != cn.seq || cn.qp == nil {
			c.connMu.Unlock()
			return // stale attempt or reply raced our setup
		}
		cn.qp.SetClock(c.mgrClk) // paper Fig. 4: the manager thread drives RTR/RTS
		if cn.qp.ToRTR(m.RC) != nil || cn.qp.ToRTS() != nil {
			c.connMu.Unlock()
			return
		}
		cn.peerUD = m.UD
		cn.readyVT = c.mgrClk.Now()
		c.consumePayloadLocked(cn, peer, m.Payload, cn.readyVT)
		cn.state = connReady
		c.nReady++
		if cn.readyVT > c.lastReadyVT {
			c.lastReadyVT = cn.readyVT
		}
		c.flushLocked(cn)
		rtu := connMsg{Kind: msgConnRTU, SrcRank: int32(c.cfg.Rank), Seq: m.Seq,
			UD: c.udQP.Addr()}
		ud := cn.peerUD
		c.connMu.Unlock()
		c.statMu.Lock()
		c.stats.ConnsEstablished++
		c.statMu.Unlock()
		c.event("conn-ready-client", peer, c.mgrClk.Now())
		c.sendControl(ud, rtu, c.mgrClk)
		c.connCond.Broadcast()
		return
	default:
		c.connMu.Unlock()
	}
}

// handleRTU completes the server side: the client is ready-to-send, so the
// connection becomes usable and queued traffic flushes.
func (c *Conduit) handleRTU(m connMsg) {
	peer := int(m.SrcRank)
	if peer < 0 || peer >= c.cfg.NProcs {
		return
	}
	c.connMu.Lock()
	cn := c.peekConn(peer)
	if cn == nil || cn.state != connAccepted || m.Seq != cn.seq {
		c.connMu.Unlock()
		return
	}
	cn.state = connReady
	cn.readyVT = c.mgrClk.Now()
	c.nReady++
	if cn.readyVT > c.lastReadyVT {
		c.lastReadyVT = cn.readyVT
	}
	c.flushLocked(cn)
	c.connMu.Unlock()
	c.statMu.Lock()
	c.stats.ConnsEstablished++
	c.statMu.Unlock()
	c.event("conn-ready-server", peer, c.mgrClk.Now())
	c.connCond.Broadcast()
}

// flushLocked posts the traffic queued behind the handshake, in order. Each
// queued request departs at max(its enqueue time, the connection-ready
// time), accumulating post overheads on a dedicated flush clock.
func (c *Conduit) flushLocked(cn *conn) {
	if len(cn.pending) == 0 {
		return
	}
	fc := vclock.NewClock(cn.readyVT)
	for _, p := range cn.pending {
		fc.AdvanceTo(p.enq)
		wr := p.wr
		wr.Clk = fc
		if err := cn.qp.PostSend(wr); err != nil {
			// The queue pair failed underneath us; nothing more to flush.
			break
		}
	}
	cn.pending = nil
}

// armTimerLocked schedules a retransmission scan if one is not pending.
// Retransmission exists for lossy fabrics only; see ib.Fabric.Lossy.
func (c *Conduit) armTimerLocked() {
	if c.timerOn || c.closed.Load() || !c.cfg.HCA.Fabric().Lossy() {
		return
	}
	c.timerOn = true
	c.timer = time.AfterFunc(retransInterval, c.retransScan)
}

// retransScan resends REQ (client, awaiting REP) and REP (server, awaiting
// RTU) for connections still in flight. Each retransmission charges the
// virtual retransmission timeout so fault-injected runs remain causally
// plausible.
func (c *Conduit) retransScan() {
	if c.closed.Load() {
		return
	}
	type tx struct {
		peer int
		ud   ib.Dest
		m    connMsg
	}
	var resend []tx
	c.connMu.Lock()
	c.timerOn = false
	now := timeNow()
	scan := func(peer int, cn *conn) {
		if cn == nil {
			return
		}
		if cn.state != connConnecting && cn.state != connAccepted {
			return
		}
		if cn.state == connConnecting && cn.qp == nil {
			return // still resolving the UD endpoint
		}
		if now.Sub(cn.lastTx) < rtoFor(cn.attempt) {
			return // not yet stale; avoid duplicate floods during bulk setup
		}
		cn.attempt++
		cn.lastTx = now
		c.stats.Retransmits++
		c.mgrClk.AdvanceTo(cn.firstTx + int64(cn.attempt)*c.model.ConnRetransmitTimeout)
		kind := msgConnReq
		if cn.state == connAccepted {
			kind = msgConnRep
		}
		resend = append(resend, tx{peer, cn.peerUD, connMsg{Kind: kind,
			SrcRank: int32(c.cfg.Rank), Seq: cn.seq, RC: cn.qp.Addr(),
			UD: c.udQP.Addr(), Payload: c.payload()}})
	}
	if c.connSlice != nil {
		for peer, cn := range c.connSlice {
			scan(peer, cn)
		}
	} else {
		for peer, cn := range c.connMap {
			scan(peer, cn)
		}
	}
	if c.hasPendingLocked() {
		c.armTimerLocked()
	}
	c.connMu.Unlock()
	for _, t := range resend {
		c.event("conn-retransmit", t.peer, c.mgrClk.Now())
		c.sendControl(t.ud, t.m, c.mgrClk)
	}
}

// ConnectAll eagerly establishes the fully connected process group: the
// static baseline. Each PE initiates to itself and to every higher rank
// (lower ranks initiate to us), then waits until one ready connection per
// peer exists. Must be called after SetReady and ExchangeEndpoints.
func (c *Conduit) ConnectAll() error {
	for peer := c.cfg.Rank; peer < c.cfg.NProcs; peer++ {
		if err := c.initiate(peer); err != nil {
			return err
		}
	}
	c.connMu.Lock()
	for c.nReady < c.cfg.NProcs {
		c.connCond.Wait()
	}
	ready := c.lastReadyVT
	c.connMu.Unlock()
	// Establishment completes when the last handshake does.
	c.clk.AdvanceTo(ready)
	return nil
}
