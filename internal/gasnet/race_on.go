//go:build race

package gasnet

// raceEnabled reports whether this binary was built with the race detector.
// A few assertions hold under production scheduling but not under the
// detector's heavy scheduling perturbation; they gate themselves on this.
const raceEnabled = true
