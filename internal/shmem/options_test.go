package shmem_test

import (
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

// Ablation option coverage: every configuration the paper's sections IV-C/D/E
// isolate must produce correct results, not just different timings.

func TestBlockingPMIOnDemandCorrect(t *testing.T) {
	res := run(t, cluster.Config{NP: 6, Mode: gasnet.OnDemand, BlockingPMI: true},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			c.P64(a, int64(c.Me()), (c.Me()+1)%6)
			c.BarrierAll()
			left := (c.Me() + 5) % 6
			if got := c.LoadInt64(a, 0); got != int64(left) {
				t.Errorf("pe %d: got %d", c.Me(), got)
			}
		})
	// Blocking PMI pays the fence at init.
	if res.PEs[0].Breakdown.PMIExchange == 0 {
		t.Fatal("blocking PMI should show fence time in the breakdown")
	}
}

func TestGlobalInitBarriersOnDemandCorrect(t *testing.T) {
	res := run(t, cluster.Config{NP: 8, PPN: 4, Mode: gasnet.OnDemand, GlobalInitBarriers: true},
		func(c *shmem.Ctx) {
			sum := c.ReduceInt64(shmem.OpSum, []int64{1})
			if sum[0] != 8 {
				t.Errorf("sum = %d", sum[0])
			}
		})
	// The global barrier during init forces connections before the app ran.
	for _, p := range res.PEs {
		if p.Breakdown.ConnectionSetup == 0 {
			t.Fatal("global init barrier should surface connection time")
		}
	}
}

func TestSegBroadcastWithOnDemandForcesAllToAll(t *testing.T) {
	res := run(t, cluster.Config{NP: 6, Mode: gasnet.OnDemand, SegEx: shmem.SegBroadcast},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			c.P64(a, 7, (c.Me()+1)%6) // only one real peer
			c.BarrierAll()
		})
	// The init-time broadcast forced a connection to every peer even though
	// the app only talked to one — the paper's section IV-B inefficiency #1.
	for _, p := range res.PEs {
		if p.Stats.ConnsEstablished < 5 { // every peer (self untouched by the app)
			t.Fatalf("rank %d: %d conns; broadcast should force all-to-all",
				p.Rank, p.Stats.ConnsEstablished)
		}
	}
}

func TestFenceIsLocalNoOp(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(16)
		c.P64(a, 1, 1-c.Me())
		before := c.Clock().Now()
		c.Fence()
		if c.Clock().Now()-before > 10_000 {
			t.Error("fence should not wait for remote completion")
		}
		c.P64(a+8, 2, 1-c.Me())
		c.BarrierAll()
		// Ordering: both values present (RC delivers in order anyway).
		if c.LoadInt64(a, 0) != 1 || c.LoadInt64(a, 1) != 2 {
			t.Error("fence ordering violated")
		}
	})
}

func TestHeapAccounting(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand, HeapSize: 1 << 16}, func(c *shmem.Ctx) {
		a := c.Malloc(100)
		b := c.Malloc(200)
		c.Free(a)
		c.Free(b)
		// Full heap is reusable after frees.
		big := c.Malloc(1 << 15)
		c.Free(big)
	})
}

func TestLocalViewsPanicOutOfBounds(t *testing.T) {
	run(t, cluster.Config{NP: 1, PPN: 1, Mode: gasnet.OnDemand, HeapSize: 4096}, func(c *shmem.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("Local beyond heap should panic")
			}
		}()
		c.Local(shmem.SymAddr(4000), 200)
	})
}
