package shmem_test

import (
	"math"
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func TestGenericPutGetAllTypes(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(256)
		if c.Me() == 0 {
			shmem.Put(c, a, []int32{-7, 1 << 30}, 1)
			shmem.Put(c, a+16, []uint32{0xDEADBEEF}, 1)
			shmem.Put(c, a+24, []int64{-1 << 60}, 1)
			shmem.Put(c, a+32, []uint64{1 << 63}, 1)
			shmem.Put(c, a+40, []float32{3.5}, 1)
			shmem.Put(c, a+48, []float64{-2.25e100}, 1)
			c.Quiet()
		}
		c.BarrierAll()
		if c.Me() == 0 {
			if got := shmem.Get[int32](c, a, 2, 1); got[0] != -7 || got[1] != 1<<30 {
				t.Errorf("int32 = %v", got)
			}
			if got := shmem.G[uint32](c, a+16, 1); got != 0xDEADBEEF {
				t.Errorf("uint32 = %x", got)
			}
			if got := shmem.G[int64](c, a+24, 1); got != -1<<60 {
				t.Errorf("int64 = %v", got)
			}
			if got := shmem.G[uint64](c, a+32, 1); got != 1<<63 {
				t.Errorf("uint64 = %v", got)
			}
			if got := shmem.G[float32](c, a+40, 1); got != 3.5 {
				t.Errorf("float32 = %v", got)
			}
			if got := shmem.G[float64](c, a+48, 1); got != -2.25e100 {
				t.Errorf("float64 = %v", got)
			}
		}
		c.BarrierAll()
	})
}

func TestGenericReduceInt32(t *testing.T) {
	const n = 6
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		r := int32(c.Me())
		sum := shmem.Reduce(c, shmem.OpSum, []int32{r, 1})
		if sum[0] != n*(n-1)/2 || sum[1] != n {
			t.Errorf("sum = %v", sum)
		}
		anded := shmem.Reduce(c, shmem.OpAnd, []int32{^r})
		want := int32(-1)
		for i := int32(0); i < n; i++ {
			want &= ^i
		}
		if anded[0] != want {
			t.Errorf("and = %v, want %v", anded[0], want)
		}
		ored := shmem.Reduce(c, shmem.OpOr, []int32{1 << r})
		if ored[0] != (1<<n)-1 {
			t.Errorf("or = %v", ored[0])
		}
	})
}

func TestGenericReduceFloat32(t *testing.T) {
	const n = 4
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		v := float32(c.Me()) + 0.25
		max := shmem.Reduce(c, shmem.OpMax, []float32{v})
		if max[0] != float32(n-1)+0.25 {
			t.Errorf("max = %v", max[0])
		}
		prod := shmem.Reduce(c, shmem.OpProd, []float32{2})
		if prod[0] != float32(math.Pow(2, n)) {
			t.Errorf("prod = %v", prod[0])
		}
	})
}

func TestGenericReduceRejectsBitwiseFloat(t *testing.T) {
	run(t, cluster.Config{NP: 1, PPN: 1, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("bitwise float reduce should panic")
			}
		}()
		shmem.Reduce(c, shmem.OpXor, []float64{1})
	})
}

func TestGenericFCollectUint64(t *testing.T) {
	const n = 5
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		got := shmem.FCollect(c, []uint64{uint64(c.Me()) << 32})
		for r := 0; r < n; r++ {
			if got[r] != uint64(r)<<32 {
				t.Errorf("got[%d] = %x", r, got[r])
			}
		}
	})
}

func TestGenericBroadcastFloat64(t *testing.T) {
	const n = 7
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		var in []float64
		if c.Me() == 3 {
			in = []float64{1.5, -2.5, 1e300}
		}
		got := shmem.Broadcast(c, 3, in)
		if len(got) != 3 || got[0] != 1.5 || got[1] != -2.5 || got[2] != 1e300 {
			t.Errorf("broadcast = %v", got)
		}
	})
}

func TestGenericInt32VectorRoundtrip(t *testing.T) {
	const n = 3
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(4 * 64)
		vals := make([]int32, 64)
		for i := range vals {
			vals[i] = int32(c.Me()*1000 + i)
		}
		shmem.Put(c, a, vals, (c.Me()+1)%n)
		c.BarrierAll()
		left := (c.Me() - 1 + n) % n
		got := shmem.Get[int32](c, a, 64, c.Me())
		for i := range got {
			if got[i] != int32(left*1000+i) {
				t.Errorf("elem %d = %d", i, got[i])
				return
			}
		}
		c.BarrierAll()
	})
}
