package shmem

import (
	"encoding/binary"
	"fmt"

	"goshmem/internal/obs"
)

// Put-with-signal (shmem_putmem_signal, OpenSHMEM 1.5 §9.8): a one-sided put
// whose delivery is announced by an atomic update to a symmetric signal word
// on the target. Without hardware signaled writes the runtime implements it
// the way AM-based conduits do: the RDMA write is followed by a small active
// message on the same reliable in-order stream, so the signal can never be
// observed before the data it announces. The signal update is SIGNAL_ADD
// (commutative), so concurrent signals from many sources are well defined.
//
// Unlike puts and gets, the signal message consumes a receive-queue slot on
// the target (it is a send, not an RDMA write): under a finite Limits.RQDepth
// it is subject to sender-side credit backpressure and RNR NAK/retry, which
// makes put-with-signal streams the workload that exercises the resource
// plane's receive budgets.

// PutMemSignal copies len(src) bytes into dest on the target PE, then
// atomically adds sadd to the int64 signal word at sig on the same PE. The
// signal is delivered after the data; local completion semantics match
// PutMem (source reusable on return, remote completion via the signal or
// Quiet).
func (c *Ctx) PutMemSignal(dest SymAddr, src []byte, sig SymAddr, sadd int64, pe int) {
	c.PutMem(dest, src, pe)
	start := c.clk.Now()
	if err := c.checkSignalAddr(sig); err != nil {
		panic(fmt.Errorf("shmem: put_signal to pe %d: %w", pe, err))
	}
	err := c.conduit.AMRequestFenced(pe, amSignal, [4]uint64{uint64(sig), uint64(sadd)}, nil)
	if err != nil {
		panic(fmt.Errorf("shmem: put_signal to pe %d: %w", pe, err))
	}
	if c.obs.Active() {
		c.obs.Span(start, c.clk.Now(), obs.LayerShmem, "put-signal", pe, 8)
	}
}

// P64Signal writes a single int64 with a signal (shmem_long_p + signal).
func (c *Ctx) P64Signal(dest SymAddr, v int64, sig SymAddr, sadd int64, pe int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	c.PutMemSignal(dest, buf[:], sig, sadd, pe)
}

// checkSignalAddr validates a signal word against the symmetric heap bounds;
// the heap is symmetric, so a locally valid word is valid on every PE.
func (c *Ctx) checkSignalAddr(sig SymAddr) error {
	if int64(sig) < 0 || int64(sig)+8 > int64(c.mr.Size()) {
		return fmt.Errorf("signal word at %d outside the symmetric heap", sig)
	}
	return nil
}

// applySignal is the amSignal handler: land the signal add in the local
// heap and wake shmem_wait-style watchers, mirroring the remote-write
// notification RDMA traffic gets from the memory region itself.
func (c *Ctx) applySignal(off int64, delta uint64, at int64) {
	if off < 0 || off+8 > int64(c.mr.Size()) {
		return // malformed frame; drop rather than corrupt the heap
	}
	c.mr.AddUint64(int(off), delta)
	c.watchMu.Lock()
	if at > c.lastWrite {
		c.lastWrite = at
	}
	c.watchMu.Unlock()
	c.watchCond.Broadcast()
}
