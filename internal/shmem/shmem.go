// Package shmem implements the OpenSHMEM runtime under study — the paper's
// primary contribution lives here and in the conduit it drives
// (internal/gasnet). It provides the symmetric heap, one-sided put/get,
// fetching atomics, collectives, synchronization, and — the subject of the
// paper — a start_pes initialization path with two designs:
//
//   - Current design (static): blocking PMI endpoint exchange, eager
//     all-to-all connection establishment, an explicit broadcast of the
//     symmetric-segment <address,size,rkey> triplets to every peer, and
//     global barriers between initialization phases.
//
//   - Proposed design (on-demand): non-blocking PMIX_Iallgather endpoint
//     exchange overlapped with memory registration, no connections at init
//     (they are established on first communication, with segment triplets
//     piggybacked on the connect handshake), and intra-node barriers in
//     place of the global ones.
//
// Ctx records a per-phase breakdown of start_pes so the paper's Figures 1
// and 5(b) can be regenerated.
package shmem

import (
	"fmt"
	"sync"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

// SegExchange selects how symmetric-segment RDMA keys reach the peers.
type SegExchange uint8

const (
	// SegAuto picks SegBroadcast for static mode and SegPiggyback for
	// on-demand mode (the designs the paper compares).
	SegAuto SegExchange = iota
	// SegBroadcast sends the triplets to every peer over active messages at
	// init — the current design, which forces all-to-all connectivity.
	SegBroadcast
	// SegPiggyback rides the triplets on the connect REQ/REP messages — the
	// proposed design (paper section IV-C).
	SegPiggyback
	// SegAMOnDemand fetches the triplets with an explicit request/reply
	// round-trip after the connection is up — the ablation that isolates the
	// benefit of piggybacking.
	SegAMOnDemand
)

// Options configures one PE's runtime.
type Options struct {
	// Mode selects static or on-demand connection management.
	Mode gasnet.Mode
	// BlockingPMI forces the blocking Put-Fence-Get endpoint exchange even
	// in on-demand mode (ablation for section IV-D).
	BlockingPMI bool
	// SegEx selects the segment-key exchange strategy.
	SegEx SegExchange
	// HeapSize is the symmetric heap size in bytes (default 1 MiB).
	HeapSize int
	// DeclaredHeapSize, when nonzero, is the heap size used for the
	// memory-registration cost model; it lets large-scale startup sweeps
	// model realistic multi-GiB heaps without allocating them.
	DeclaredHeapSize int
	// GlobalInitBarriers makes even the on-demand design use global
	// barriers during initialization — the ablation for the paper's
	// section IV-E (intra-node barrier substitution).
	GlobalInitBarriers bool
	// MaxLiveRC caps the live RC queue pairs on the PE's HCA; when a new
	// connection would exceed it, the conduit evicts its least-recently-used
	// idle connection (the evicted peer reconnects on demand). Zero means
	// unbounded; on-demand mode only. See gasnet.Config.MaxLiveRC.
	MaxLiveRC int
	// Retrans overrides the conduit's real-time retransmission timing
	// (zero fields keep the defaults).
	Retrans gasnet.RetransConfig
	// Heartbeat configures the conduit's UD failure detector (zero value:
	// armed automatically only when the fabric schedules PE faults).
	Heartbeat gasnet.HeartbeatConfig
}

// InitBreakdown is the per-phase virtual time spent in start_pes, matching
// the buckets of the paper's Figure 1 / Figure 5(b).
type InitBreakdown struct {
	PMIExchange     int64
	MemoryReg       int64
	SharedMemSetup  int64
	ConnectionSetup int64
	Other           int64
	Total           int64
}

// segInfo is the <address, size, rkey> triplet for one peer's symmetric heap.
type segInfo struct {
	base uint64
	size uint64
	rkey uint32
	have bool
}

// AM handler identifiers used by the runtime (the mini-MPI built on the same
// conduit uses 32+).
const (
	amColl    uint8 = 1 // collective fragments
	amSegInfo uint8 = 2 // segment-info broadcast / reply
	amSegReq  uint8 = 3 // segment-info request (SegAMOnDemand)
	amSignal  uint8 = 4 // put-with-signal delivery notification
)

// Ctx is one PE's OpenSHMEM context (the handle start_pes returns).
type Ctx struct {
	rank int
	n    int
	opts Options

	conduit *gasnet.Conduit
	pmiC    *pmi.Client
	clk     *vclock.Clock
	model   *vclock.CostModel

	obs      *obs.PE
	hPut     *obs.Hist
	hGet     *obs.Hist
	hAtomic  *obs.Hist
	hBarrier *obs.Hist
	hColl    *obs.Hist

	heapBuf []byte
	heap    *heap
	mr      *ib.MR

	segMu   sync.Mutex
	segCond *sync.Cond
	segs    []segInfo

	coll *collState

	watchMu   sync.Mutex
	watchCond *sync.Cond
	lastWrite int64

	breakdown InitBreakdown
	startVT   int64
	finalized bool
}

// Me returns the PE's rank (shmem_my_pe).
func (c *Ctx) Me() int { return c.rank }

// NPEs returns the job size (shmem_n_pes).
func (c *Ctx) NPEs() int { return c.n }

// Clock returns the PE's virtual clock.
func (c *Ctx) Clock() *vclock.Clock { return c.clk }

// Conduit exposes the underlying conduit (shared with the mini-MPI in
// hybrid programs — the unified-runtime model of MVAPICH2-X).
func (c *Ctx) Conduit() *gasnet.Conduit { return c.conduit }

// Breakdown returns the start_pes phase breakdown.
func (c *Ctx) Breakdown() InitBreakdown { return c.breakdown }

// HeapBase returns the local symmetric heap's registered base address.
func (c *Ctx) HeapBase() uint64 { return c.mr.Base() }

// local returns the local bytes backing [addr, addr+n).
func (c *Ctx) local(addr SymAddr, n int) ([]byte, error) {
	if uint64(addr)+uint64(n) > uint64(len(c.heapBuf)) {
		return nil, fmt.Errorf("shmem: symmetric address %#x+%d outside heap of %d bytes",
			uint64(addr), n, len(c.heapBuf))
	}
	return c.heapBuf[addr : uint64(addr)+uint64(n)], nil
}

// Local returns the local backing bytes for a symmetric allocation, for
// direct computation on one's own partition of the global address space.
func (c *Ctx) Local(addr SymAddr, n int) []byte {
	b, err := c.local(addr, n)
	if err != nil {
		panic(err)
	}
	return b
}

// remoteAddr translates a symmetric address at a peer into (addr, rkey),
// obtaining the peer's segment triplet if this PE does not hold it yet: via
// the piggybacked connect payload, the init-time broadcast, or an explicit
// AM round-trip, depending on the configured strategy.
func (c *Ctx) remoteAddr(pe int, addr SymAddr, n int) (uint64, uint32, error) {
	if pe < 0 || pe >= c.n {
		return 0, 0, fmt.Errorf("shmem: pe %d out of range [0,%d)", pe, c.n)
	}
	c.segMu.Lock()
	s := c.segs[pe]
	c.segMu.Unlock()
	if !s.have {
		if err := c.fetchSeg(pe); err != nil {
			return 0, 0, err
		}
		c.segMu.Lock()
		s = c.segs[pe]
		c.segMu.Unlock()
	}
	if uint64(addr)+uint64(n) > s.size {
		return 0, 0, fmt.Errorf("shmem: symmetric address %#x+%d outside pe %d's segment of %d bytes",
			uint64(addr), n, pe, s.size)
	}
	return s.base + uint64(addr), s.rkey, nil
}
