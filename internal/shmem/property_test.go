package shmem_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/shmem"
)

// Property: for random put schedules (random offsets, sizes, targets), after
// a barrier every PE's heap equals a sequentially-computed reference.
// Writers partition the target space (each writes its own row), so the
// reference is race-free by construction.
func TestRandomPutScheduleMatchesReference(t *testing.T) {
	const n = 4
	const rowBytes = 512
	type op struct {
		Target uint8
		Off    uint16
		Len    uint8
	}
	f := func(ops []op, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Reference: ref[target][writer-row].
		ref := make([][]byte, n)
		payloads := make([][]byte, len(ops))
		for i := range ref {
			ref[i] = make([]byte, n*rowBytes)
		}
		for i, o := range ops {
			payloads[i] = make([]byte, int(o.Len)%64+1)
			rng.Read(payloads[i])
		}
		ok := true
		_, err := cluster.Run(cluster.Config{NP: n, PPN: 2, Mode: gasnet.OnDemand, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				a := c.Malloc(n * rowBytes)
				me := c.Me()
				for i, o := range ops {
					tgt := int(o.Target) % n
					off := int(o.Off) % (rowBytes - 64)
					// I write only into my row of the target's heap.
					c.PutMem(a+shmem.SymAddr(me*rowBytes+off), payloads[i], tgt)
					if me == 0 { // maintain reference once
						for w := 0; w < n; w++ {
							copy(ref[tgt][w*rowBytes+off:], payloads[i])
						}
					}
				}
				c.BarrierAll()
				got := c.Local(a, n*rowBytes)
				if !bytes.Equal(got, ref[me]) {
					ok = false
				}
				c.BarrierAll()
			})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: reductions over random vectors match a serial reference for
// every operator, at a non-power-of-two PE count.
func TestReducePropertyAllOps(t *testing.T) {
	const n = 5
	f := func(raw [n][7]int64) bool {
		ops := []shmem.ReduceOp{shmem.OpSum, shmem.OpProd, shmem.OpMin, shmem.OpMax,
			shmem.OpAnd, shmem.OpOr, shmem.OpXor}
		want := make(map[shmem.ReduceOp][]int64)
		for _, op := range ops {
			acc := append([]int64(nil), raw[0][:]...)
			for r := 1; r < n; r++ {
				for i := range acc {
					acc[i] = combineRef(op, acc[i], raw[r][i])
				}
			}
			want[op] = acc
		}
		ok := true
		_, err := cluster.Run(cluster.Config{NP: n, PPN: 3, Mode: gasnet.OnDemand, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				for _, op := range ops {
					got := c.ReduceInt64(op, raw[c.Me()][:])
					for i := range got {
						if got[i] != want[op][i] {
							ok = false
						}
					}
				}
			})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func combineRef(op shmem.ReduceOp, a, b int64) int64 {
	switch op {
	case shmem.OpSum:
		return a + b
	case shmem.OpProd:
		return a * b
	case shmem.OpMin:
		if b < a {
			return b
		}
		return a
	case shmem.OpMax:
		if b > a {
			return b
		}
		return a
	case shmem.OpAnd:
		return a & b
	case shmem.OpOr:
		return a | b
	default:
		return a ^ b
	}
}

// Property: FCollect of random-size contributions (equal across PEs per
// round) always returns rank-ordered concatenation.
func TestFCollectProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		const n = 6
		ok := true
		_, err := cluster.Run(cluster.Config{NP: n, PPN: 3, Mode: gasnet.OnDemand, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				for _, s := range sizes {
					k := int(s)%17 + 1
					contrib := make([]int64, k)
					for i := range contrib {
						contrib[i] = int64(c.Me()*1000 + i)
					}
					got := c.FCollectInt64(contrib)
					for r := 0; r < n; r++ {
						for i := 0; i < k; i++ {
							if got[r*k+i] != int64(r*1000+i) {
								ok = false
							}
						}
					}
				}
			})
		return err == nil && ok
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent atomics from all PEs interleave linearizably — the
// multiset of FetchAdd return values for a given address is exactly the
// prefix sums of the applied deltas in some order.
func TestFetchAddLinearizability(t *testing.T) {
	const n = 6
	const perPE = 20
	results := make([][]int64, n)
	_, err := cluster.Run(cluster.Config{NP: n, PPN: 3, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			c.BarrierAll()
			mine := make([]int64, 0, perPE)
			for i := 0; i < perPE; i++ {
				mine = append(mine, c.FetchAddInt64(a, 1, 0))
			}
			results[c.Me()] = mine
			c.BarrierAll()
		})
	if err != nil {
		t.Fatal(err)
	}
	// With delta 1 everywhere, the fetched values must be a permutation of
	// 0..n*perPE-1 (each prefix observed exactly once), and each PE's own
	// sequence must be strictly increasing (program order).
	seen := make([]bool, n*perPE)
	for r, seq := range results {
		prev := int64(-1)
		for _, v := range seq {
			if v < 0 || v >= int64(n*perPE) || seen[v] {
				t.Fatalf("rank %d: fetched %d twice or out of range", r, v)
			}
			seen[v] = true
			if v <= prev {
				t.Fatalf("rank %d: fetches not increasing: %d after %d", r, v, prev)
			}
			prev = v
		}
	}
}

// Property: the static and on-demand designs produce byte-identical heaps
// for a random communication schedule, even under fault injection on the
// on-demand handshake path.
func TestModesEquivalentUnderFaults(t *testing.T) {
	const n = 4
	schedule := func(c *shmem.Ctx, a shmem.SymAddr) {
		me := c.Me()
		for i := 0; i < 10; i++ {
			tgt := (me + i) % n
			c.P64(a+shmem.SymAddr(8*((me*10+i)%32)), int64(me*100+i), tgt)
		}
		c.BarrierAll()
	}
	capture := func(mode gasnet.Mode, faults *ib.FaultInjector) [][]byte {
		heaps := make([][]byte, n)
		_, err := cluster.Run(cluster.Config{NP: n, PPN: 2, Mode: mode, Faults: faults, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				a := c.Malloc(8 * 32)
				schedule(c, a)
				heaps[c.Me()] = append([]byte(nil), c.Local(a, 8*32)...)
				c.BarrierAll()
			})
		if err != nil {
			t.Fatal(err)
		}
		return heaps
	}
	ref := capture(gasnet.Static, nil)
	fi := ib.NewFaultInjector(5)
	fi.DropProb = 0.3
	fi.DupProb = 0.2
	fi.MaxDrops = 30
	got := capture(gasnet.OnDemand, fi)
	for r := 0; r < n; r++ {
		if !bytes.Equal(ref[r], got[r]) {
			t.Fatalf("rank %d heaps differ between modes", r)
		}
	}
}
