package shmem

import (
	"encoding/binary"
	"fmt"
)

// Strided transfers (shmem_iput/shmem_iget). Strides are in elements, as in
// the OpenSHMEM specification. Each contiguous element is transferred
// one-sided; the fabric coalesces nothing, exactly like iput on real
// hardware generating one work request per block.

// PutInt64Strided writes n int64 elements from src (read with stride sst)
// into dest on pe (written with stride dst), shmem_long_iput.
func (c *Ctx) PutInt64Strided(dest SymAddr, src []int64, dst, sst, n int, pe int) {
	if dst < 1 || sst < 1 {
		panic("shmem: strides must be >= 1")
	}
	var buf [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(src[i*sst]))
		c.PutMem(dest+SymAddr(8*i*dst), buf[:], pe)
	}
}

// GetInt64Strided reads n int64 elements from src on pe (read with stride
// sst) into dest (written with stride dst), shmem_long_iget.
func (c *Ctx) GetInt64Strided(dest []int64, src SymAddr, dst, sst, n int, pe int) {
	if dst < 1 || sst < 1 {
		panic("shmem: strides must be >= 1")
	}
	var buf [8]byte
	for i := 0; i < n; i++ {
		c.GetMem(buf[:], src+SymAddr(8*i*sst), pe)
		dest[i*dst] = int64(binary.LittleEndian.Uint64(buf[:]))
	}
}

// PutMemNBI is the non-blocking-implicit put (shmem_putmem_nbi): identical
// local-completion semantics to PutMem in this runtime (the source buffer is
// reusable on return); remote completion is deferred to Quiet.
func (c *Ctx) PutMemNBI(dest SymAddr, src []byte, pe int) { c.PutMem(dest, src, pe) }

// GetMemNBI is the non-blocking-implicit get (shmem_getmem_nbi): it returns
// immediately and dest is filled by the time Quiet returns.
func (c *Ctx) GetMemNBI(dest []byte, src SymAddr, pe int) {
	if len(dest) == 0 {
		return
	}
	addr, rkey, err := c.remoteAddr(pe, src, len(dest))
	if err != nil {
		panic(fmt.Errorf("shmem: get_nbi from pe %d: %w", pe, err))
	}
	if err := c.conduit.GetNBI(pe, addr, rkey, dest); err != nil {
		panic(fmt.Errorf("shmem: get_nbi from pe %d: %w", pe, err))
	}
}
