package shmem

// Fetching and non-fetching network atomics (shmem_long_fadd and friends).
// They execute in the target HCA, atomically with respect to every other
// network atomic on the same address, exactly like InfiniBand's fetch-add /
// compare-swap verbs. Addresses must be 8-byte aligned symmetric addresses.

import (
	"fmt"

	"goshmem/internal/obs"
)

// atomicSpan closes an atomic op's observability span and feeds the latency
// histogram.
func (c *Ctx) atomicSpan(kind string, pe int, start int64) {
	if !c.obs.Active() {
		return
	}
	end := c.clk.Now()
	c.obs.Span(start, end, obs.LayerShmem, kind, pe, 8)
	c.hAtomic.Record(end - start)
}

// FetchAddInt64 atomically adds delta to the int64 at addr on pe and returns
// the previous value (shmem_long_fadd).
func (c *Ctx) FetchAddInt64(addr SymAddr, delta int64, pe int) int64 {
	start := c.clk.Now()
	raddr, rkey, err := c.remoteAddr(pe, addr, 8)
	if err != nil {
		panic(fmt.Errorf("shmem: fadd on pe %d: %w", pe, err))
	}
	old, err := c.conduit.FetchAdd(pe, raddr, rkey, uint64(delta))
	if err != nil {
		panic(fmt.Errorf("shmem: fadd on pe %d: %w", pe, err))
	}
	c.atomicSpan("fadd", pe, start)
	return int64(old)
}

// FetchIncInt64 atomically increments and returns the previous value
// (shmem_long_finc).
func (c *Ctx) FetchIncInt64(addr SymAddr, pe int) int64 {
	return c.FetchAddInt64(addr, 1, pe)
}

// AddInt64 atomically adds delta without fetching (shmem_long_add).
func (c *Ctx) AddInt64(addr SymAddr, delta int64, pe int) {
	c.FetchAddInt64(addr, delta, pe)
}

// IncInt64 atomically increments without fetching (shmem_long_inc).
func (c *Ctx) IncInt64(addr SymAddr, pe int) {
	c.FetchAddInt64(addr, 1, pe)
}

// SwapInt64 atomically replaces the value and returns the previous one
// (shmem_long_swap).
func (c *Ctx) SwapInt64(addr SymAddr, value int64, pe int) int64 {
	start := c.clk.Now()
	raddr, rkey, err := c.remoteAddr(pe, addr, 8)
	if err != nil {
		panic(fmt.Errorf("shmem: swap on pe %d: %w", pe, err))
	}
	old, err := c.conduit.Swap(pe, raddr, rkey, uint64(value))
	if err != nil {
		panic(fmt.Errorf("shmem: swap on pe %d: %w", pe, err))
	}
	c.atomicSpan("swap", pe, start)
	return int64(old)
}

// CompareSwapInt64 atomically stores value if the current value equals cond,
// returning the previous value (shmem_long_cswap).
func (c *Ctx) CompareSwapInt64(addr SymAddr, cond, value int64, pe int) int64 {
	start := c.clk.Now()
	raddr, rkey, err := c.remoteAddr(pe, addr, 8)
	if err != nil {
		panic(fmt.Errorf("shmem: cswap on pe %d: %w", pe, err))
	}
	old, err := c.conduit.CompareSwap(pe, raddr, rkey, uint64(cond), uint64(value))
	if err != nil {
		panic(fmt.Errorf("shmem: cswap on pe %d: %w", pe, err))
	}
	c.atomicSpan("cswap", pe, start)
	return int64(old)
}
