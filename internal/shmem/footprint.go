package shmem

import (
	"unsafe"

	"goshmem/internal/obs"
)

// Footprint models this context's retained memory for the engine census
// (obs.FootprintReporter). The dominant term is the segment directory: every
// PE holds an <address, size, rkey> triplet for every peer's symmetric heap,
// O(np) per PE and therefore O(np²) job-wide — alongside the connection mesh
// and the endpoint directory, one of the quantities that make static-mode
// jobs expensive at scale. (The census caught this table as an unattributed
// ~400 MB drift row at np=4096 before this reporter existed, which is
// exactly the failure mode the reconciliation check is for.)
//
// The symmetric heap's backing buffer is NOT counted here: it is registered
// with the adapter and already attributed as ib/pinned-bytes; counting it
// twice would overstate the modeled total by the largest single allocation
// in the job.
//
// All quantities are object counts × struct sizes plus exact lengths (len,
// never cap), keeping modeled numbers byte-stable across identical runs.
func (c *Ctx) Footprint() []obs.FootprintItem {
	segDir := obs.FootprintItem{Subsystem: "shmem", Category: "seg-dir"}
	c.segMu.Lock()
	segDir.Objects = int64(len(c.segs))
	segDir.Bytes = int64(len(c.segs)) * int64(unsafe.Sizeof(segInfo{}))
	c.segMu.Unlock()

	shell := obs.FootprintItem{Subsystem: "shmem", Category: "ctx", Objects: 1}
	shell.Bytes = int64(unsafe.Sizeof(Ctx{}))
	if c.heap != nil {
		c.heap.mu.Lock()
		shell.Bytes += int64(unsafe.Sizeof(heap{}))
		shell.Bytes += int64(len(c.heap.free)) * int64(unsafe.Sizeof(span{}))
		shell.Bytes += int64(len(c.heap.used)) * (16 + mapEntryOverhead)
		c.heap.mu.Unlock()
	}
	if c.coll != nil {
		shell.Bytes += c.coll.memSize()
	}

	return []obs.FootprintItem{segDir, shell}
}

// mapEntryOverhead mirrors obs.mapEntryOverhead: the estimated per-entry
// cost of a Go map beyond key and value.
const mapEntryOverhead = 48
