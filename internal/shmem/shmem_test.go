package shmem_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func run(t *testing.T, cfg cluster.Config, app func(c *shmem.Ctx)) *cluster.Result {
	t.Helper()
	if cfg.PPN == 0 {
		cfg.PPN = 4
	}
	cfg.SkipLaunchCost = true
	res, err := cluster.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bothModes(t *testing.T, name string, cfg cluster.Config, app func(c *shmem.Ctx)) {
	for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
		mode := mode
		t.Run(name+"/"+mode.String(), func(t *testing.T) {
			c := cfg
			c.Mode = mode
			run(t, c, app)
		})
	}
}

func TestHelloWorldBothModes(t *testing.T) {
	bothModes(t, "hello", cluster.Config{NP: 8}, func(c *shmem.Ctx) {
		if c.Me() < 0 || c.Me() >= c.NPEs() || c.NPEs() != 8 {
			t.Errorf("bad identity %d/%d", c.Me(), c.NPEs())
		}
	})
}

func TestPutGetRoundtrip(t *testing.T) {
	const n = 6
	bothModes(t, "putget", cluster.Config{NP: n}, func(c *shmem.Ctx) {
		buf := c.Malloc(1024)
		me := c.Me()
		right := (me + 1) % n
		// Write my pattern into my right neighbour's buffer.
		pattern := make([]byte, 256)
		for i := range pattern {
			pattern[i] = byte(me*31 + i)
		}
		c.PutMem(buf, pattern, right)
		c.BarrierAll()
		// My buffer now holds my left neighbour's pattern.
		left := (me - 1 + n) % n
		local := c.Local(buf, 256)
		for i := range local {
			if local[i] != byte(left*31+i) {
				t.Errorf("pe %d byte %d: got %d want %d", me, i, local[i], byte(left*31+i))
				return
			}
		}
		// And everyone can read anyone's buffer with Get.
		got := make([]byte, 256)
		c.GetMem(got, buf, right)
		wantFrom := me // right's buffer holds right's left = me
		for i := range got {
			if got[i] != byte(wantFrom*31+i) {
				t.Errorf("get mismatch at %d", i)
				return
			}
		}
	})
}

func TestTypedPutGet(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(8 * 16)
		if c.Me() == 0 {
			vals := []int64{-5, 1 << 40, 0, 42}
			c.PutInt64(a, vals, 1)
			fvals := []float64{3.14, -2.5e10}
			c.PutFloat64(a+64, fvals, 1)
			c.Quiet()
		}
		c.BarrierAll()
		if c.Me() == 1 {
			got := c.LocalInt64(a, 4)
			want := []int64{-5, 1 << 40, 0, 42}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("int64[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			fgot := c.LocalFloat64(a+64, 2)
			if fgot[0] != 3.14 || fgot[1] != -2.5e10 {
				t.Errorf("float64 = %v", fgot)
			}
		}
		c.BarrierAll()
		if c.Me() == 0 {
			if v := c.G64(a, 1); v != -5 {
				t.Errorf("G64 = %d", v)
			}
			var got [4]int64
			c.GetInt64(got[:], a, 1)
			if got[3] != 42 {
				t.Errorf("GetInt64 = %v", got)
			}
		}
	})
}

func TestAtomicsSumExactly(t *testing.T) {
	const n = 8
	const addsPerPE = 50
	bothModes(t, "atomics", cluster.Config{NP: n}, func(c *shmem.Ctx) {
		ctr := c.Malloc(8)
		for i := 0; i < addsPerPE; i++ {
			c.AddInt64(ctr, int64(c.Me()+1), 0)
		}
		c.BarrierAll()
		if c.Me() == 0 {
			want := int64(0)
			for r := 1; r <= n; r++ {
				want += int64(r) * addsPerPE
			}
			if got := c.LoadInt64(ctr, 0); got != want {
				t.Errorf("counter = %d, want %d", got, want)
			}
		}
	})
}

func TestAtomicSwapAndCswap(t *testing.T) {
	run(t, cluster.Config{NP: 4, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		lock := c.Malloc(8)
		token := c.Malloc(8)
		c.BarrierAll()
		// Spin-lock on PE 0 protects a read-modify-write of a token.
		for {
			if c.CompareSwapInt64(lock, 0, int64(c.Me())+1, 0) == 0 {
				break
			}
		}
		v := c.G64(token, 0)
		c.P64(token, v+1, 0)
		c.Quiet()
		if c.SwapInt64(lock, 0, 0) != int64(c.Me())+1 {
			t.Errorf("pe %d: lock stolen", c.Me())
		}
		c.BarrierAll()
		if c.Me() == 0 {
			if got := c.LoadInt64(token, 0); got != 4 {
				t.Errorf("token = %d, want 4", got)
			}
		}
	})
}

func TestFetchIncUnique(t *testing.T) {
	const n = 7
	var mu sync.Mutex
	seen := map[int64]int{}
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		ctr := c.Malloc(8)
		got := c.FetchIncInt64(ctr, 0)
		mu.Lock()
		seen[got]++
		mu.Unlock()
		c.BarrierAll()
	})
	if len(seen) != n {
		t.Fatalf("fetch-inc returned %d distinct values, want %d: %v", len(seen), n, seen)
	}
}

func TestBarrierHappensBefore(t *testing.T) {
	const n = 5
	bothModes(t, "barrier", cluster.Config{NP: n}, func(c *shmem.Ctx) {
		flag := c.Malloc(8)
		c.P64(flag, int64(c.Me())+100, (c.Me()+1)%n)
		c.BarrierAll() // includes quiet
		left := (c.Me() - 1 + n) % n
		if got := c.LoadInt64(flag, 0); got != int64(left)+100 {
			t.Errorf("pe %d: flag = %d, want %d", c.Me(), got, left+100)
		}
		c.BarrierAll()
	})
}

func TestWaitUntil(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		flag := c.Malloc(8)
		data := c.Malloc(8)
		if c.Me() == 0 {
			c.P64(data, 777, 1)
			c.Quiet()         // data visible before flag
			c.P64(flag, 1, 1) // then raise flag
			c.Quiet()
		} else {
			c.WaitUntilInt64(flag, shmem.CmpEQ, 1)
			if got := c.LoadInt64(data, 0); got != 777 {
				t.Errorf("data after wait = %d", got)
			}
		}
		c.BarrierAll()
	})
}

func TestBroadcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 13} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
				root := n / 2
				var data []byte
				if c.Me() == root {
					data = []byte("broadcast-payload")
				}
				got := c.BroadcastBytes(root, data)
				if string(got) != "broadcast-payload" {
					t.Errorf("pe %d got %q", c.Me(), got)
				}
				c.BarrierAll()
			})
		})
	}
}

func TestReduceMatchesSerialReference(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 11} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			inputs := make([][]int64, n)
			const k = 9
			for r := range inputs {
				inputs[r] = make([]int64, k)
				for i := range inputs[r] {
					inputs[r][i] = int64(rng.Intn(2001) - 1000)
				}
			}
			wantSum := make([]int64, k)
			wantMin := make([]int64, k)
			wantMax := make([]int64, k)
			for i := 0; i < k; i++ {
				wantMin[i] = inputs[0][i]
				wantMax[i] = inputs[0][i]
				for r := 0; r < n; r++ {
					wantSum[i] += inputs[r][i]
					if inputs[r][i] < wantMin[i] {
						wantMin[i] = inputs[r][i]
					}
					if inputs[r][i] > wantMax[i] {
						wantMax[i] = inputs[r][i]
					}
				}
			}
			run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
				sum := c.ReduceInt64(shmem.OpSum, inputs[c.Me()])
				min := c.ReduceInt64(shmem.OpMin, inputs[c.Me()])
				max := c.ReduceInt64(shmem.OpMax, inputs[c.Me()])
				for i := 0; i < k; i++ {
					if sum[i] != wantSum[i] || min[i] != wantMin[i] || max[i] != wantMax[i] {
						t.Errorf("pe %d elem %d: sum/min/max = %d/%d/%d want %d/%d/%d",
							c.Me(), i, sum[i], min[i], max[i], wantSum[i], wantMin[i], wantMax[i])
						return
					}
				}
			})
		})
	}
}

func TestReduceFloat64(t *testing.T) {
	const n = 6
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		v := []float64{float64(c.Me()) + 0.5}
		sum := c.ReduceFloat64(shmem.OpSum, v)
		want := 0.0
		for r := 0; r < n; r++ {
			want += float64(r) + 0.5
		}
		if sum[0] != want {
			t.Errorf("sum = %v, want %v", sum[0], want)
		}
		max := c.ReduceFloat64(shmem.OpMax, v)
		if max[0] != float64(n-1)+0.5 {
			t.Errorf("max = %v", max[0])
		}
	})
}

func TestFCollectOrdering(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 9} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
				got := c.FCollectInt64([]int64{int64(c.Me() * 10), int64(c.Me()*10 + 1)})
				if len(got) != 2*n {
					t.Errorf("len = %d", len(got))
					return
				}
				for r := 0; r < n; r++ {
					if got[2*r] != int64(r*10) || got[2*r+1] != int64(r*10+1) {
						t.Errorf("pe %d: block %d = %v", c.Me(), r, got[2*r:2*r+2])
						return
					}
				}
			})
		})
	}
}

func TestCollectVariableSizes(t *testing.T) {
	const n = 5
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		contrib := make([]byte, c.Me()+1) // rank r contributes r+1 bytes
		for i := range contrib {
			contrib[i] = byte(c.Me())
		}
		got := c.CollectBytes(contrib)
		want := 0
		for r := 0; r < n; r++ {
			want += r + 1
		}
		if len(got) != want {
			t.Errorf("len = %d, want %d", len(got), want)
			return
		}
		idx := 0
		for r := 0; r < n; r++ {
			for i := 0; i <= r; i++ {
				if got[idx] != byte(r) {
					t.Errorf("byte %d = %d, want %d", idx, got[idx], r)
					return
				}
				idx++
			}
		}
	})
}

func TestMallocSymmetricAndFree(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	addrs := make(map[int][]shmem.SymAddr)
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(100)
		b := c.Malloc(64)
		c.Free(a)
		d := c.Malloc(32) // reuses freed space deterministically
		mu.Lock()
		addrs[c.Me()] = []shmem.SymAddr{a, b, d}
		mu.Unlock()
	})
	for r := 1; r < n; r++ {
		for i := range addrs[0] {
			if addrs[r][i] != addrs[0][i] {
				t.Fatalf("rank %d addr %d = %d, rank 0 = %d (symmetry broken)",
					r, i, addrs[r][i], addrs[0][i])
			}
		}
	}
}

func TestSegExchangeStrategies(t *testing.T) {
	for _, seg := range []shmem.SegExchange{shmem.SegPiggyback, shmem.SegAMOnDemand} {
		seg := seg
		t.Run(fmt.Sprintf("seg=%d", seg), func(t *testing.T) {
			run(t, cluster.Config{NP: 4, Mode: gasnet.OnDemand, SegEx: seg}, func(c *shmem.Ctx) {
				a := c.Malloc(64)
				c.P64(a, int64(c.Me()), (c.Me()+1)%4)
				c.BarrierAll()
				left := (c.Me() + 3) % 4
				if got := c.LoadInt64(a, 0); got != int64(left) {
					t.Errorf("pe %d: got %d", c.Me(), got)
				}
			})
		})
	}
}

func TestInitBreakdownShapes(t *testing.T) {
	const n = 16
	static := run(t, cluster.Config{NP: n, PPN: 4, Mode: gasnet.Static}, func(c *shmem.Ctx) {})
	ondemand := run(t, cluster.Config{NP: n, PPN: 4, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {})

	sb := static.PEs[0].Breakdown
	ob := ondemand.PEs[0].Breakdown
	if sb.ConnectionSetup <= 0 {
		t.Error("static init should spend time in connection setup")
	}
	if ob.ConnectionSetup >= sb.ConnectionSetup/4 {
		t.Errorf("on-demand connection setup should be near zero: %d vs static %d",
			ob.ConnectionSetup, sb.ConnectionSetup)
	}
	if ob.PMIExchange >= sb.PMIExchange/2 {
		t.Errorf("non-blocking PMI exchange should be much cheaper: %d vs %d",
			ob.PMIExchange, sb.PMIExchange)
	}
	if ondemand.InitAvg >= static.InitAvg {
		t.Errorf("on-demand init (%d) should beat static (%d)", ondemand.InitAvg, static.InitAvg)
	}
	// Buckets sum to the total.
	total := sb.PMIExchange + sb.MemoryReg + sb.SharedMemSetup + sb.ConnectionSetup + sb.Other
	if total != sb.Total {
		t.Errorf("breakdown buckets %d != total %d", total, sb.Total)
	}
}

func TestStaticAndOnDemandSameResults(t *testing.T) {
	const n = 6
	results := map[string][]int64{}
	var mu sync.Mutex
	for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
		key := mode.String()
		run(t, cluster.Config{NP: n, Mode: mode}, func(c *shmem.Ctx) {
			a := c.Malloc(8 * n)
			// Everyone scatters its rank^2 to slot Me() on every PE.
			for pe := 0; pe < n; pe++ {
				c.P64(a+shmem.SymAddr(8*c.Me()), int64(c.Me()*c.Me()), pe)
			}
			c.BarrierAll()
			vals := c.LocalInt64(a, n)
			sum := c.ReduceInt64(shmem.OpSum, vals)
			if c.Me() == 0 {
				mu.Lock()
				results[key] = sum
				mu.Unlock()
			}
			c.BarrierAll()
		})
	}
	s, o := results["static"], results["on-demand"]
	if len(s) == 0 || len(o) == 0 {
		t.Fatal("missing results")
	}
	for i := range s {
		if s[i] != o[i] {
			t.Fatalf("modes disagree at %d: %d vs %d", i, s[i], o[i])
		}
	}
}

func TestPeersExcludesSelf(t *testing.T) {
	res := run(t, cluster.Config{NP: 4, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(8)
		c.P64(a, 1, c.Me())       // self traffic
		c.P64(a, 1, (c.Me()+1)%4) // one real peer
		c.Quiet()
		c.BarrierAll()
	})
	for _, p := range res.PEs {
		// 1 explicit peer + barrier partners (log2(4)=2 peers at distance 1,2;
		// distance-1 overlaps the explicit peer).
		if p.Peers < 1 || p.Peers > 3 {
			t.Fatalf("rank %d peers = %d, want 1..3", p.Rank, p.Peers)
		}
	}
}

func TestOnDemandEndpointSavings(t *testing.T) {
	const n = 8
	app := func(c *shmem.Ctx) {
		a := c.Malloc(8)
		c.P64(a, 9, (c.Me()+1)%n) // nearest-neighbour only
		c.BarrierAll()
	}
	st := run(t, cluster.Config{NP: n, Mode: gasnet.Static}, app)
	od := run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, app)
	if od.AvgEndpoints() >= st.AvgEndpoints()/1.5 {
		t.Fatalf("on-demand endpoints %.1f should be well below static %.1f",
			od.AvgEndpoints(), st.AvgEndpoints())
	}
}

func TestHeapBoundsFault(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand, HeapSize: 4096}, func(c *shmem.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-segment put should panic")
			}
			c.BarrierAll()
		}()
		c.PutMem(shmem.SymAddr(4095), []byte{1, 2, 3, 4}, 1-c.Me())
	})
}
