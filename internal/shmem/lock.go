package shmem

// Distributed locking (shmem_set_lock / shmem_test_lock / shmem_clear_lock),
// implemented as an MCS-style queue lock over network atomics, the standard
// OpenSHMEM technique: the lock word lives on PE 0 of the lock's home and
// holds (last-waiter-rank + 1); each waiter swaps itself in and spins on a
// local flag its predecessor writes — so contention generates no remote
// polling traffic.

// Lock is a distributed lock. Create it collectively with NewLock; the same
// call sequence on every PE yields the same lock.
type Lock struct {
	word SymAddr // on home PE: (last tail rank + 1), 0 = free
	next SymAddr // on waiter: successor rank + 1
	flag SymAddr // on waiter: predecessor writes 1 to hand off
	home int
}

// NewLock collectively allocates a lock (all PEs must call it).
func (c *Ctx) NewLock() *Lock {
	l := &Lock{home: 0}
	l.word = c.Malloc(8)
	l.next = c.Malloc(8)
	l.flag = c.Malloc(8)
	return l
}

// SetLock acquires the lock, blocking until granted (shmem_set_lock).
func (c *Ctx) SetLock(l *Lock) {
	c.StoreInt64(l.next, 0, 0)
	c.StoreInt64(l.flag, 0, 0)
	// Swap myself in as the tail.
	prev := c.SwapInt64(l.word, int64(c.rank)+1, l.home)
	if prev == 0 {
		return // uncontended
	}
	// Tell the predecessor who we are, then wait for the hand-off.
	c.P64(l.next, int64(c.rank)+1, int(prev-1))
	c.Quiet()
	c.WaitUntilInt64(l.flag, CmpNE, 0)
	c.StoreInt64(l.flag, 0, 0)
}

// TestLock tries to acquire the lock without blocking; it returns true if
// the lock was acquired (shmem_test_lock returns 0 on success).
func (c *Ctx) TestLock(l *Lock) bool {
	c.StoreInt64(l.next, 0, 0)
	c.StoreInt64(l.flag, 0, 0)
	return c.CompareSwapInt64(l.word, 0, int64(c.rank)+1, l.home) == 0
}

// ClearLock releases the lock (shmem_clear_lock).
func (c *Ctx) ClearLock(l *Lock) {
	// Fast path: no successor announced and we are still the tail.
	if c.LoadInt64(l.next, 0) == 0 {
		if c.CompareSwapInt64(l.word, int64(c.rank)+1, 0, l.home) == int64(c.rank)+1 {
			return
		}
		// A successor is in the middle of enqueueing; wait for it to
		// announce itself.
		c.WaitUntilInt64(l.next, CmpNE, 0)
	}
	succ := int(c.LoadInt64(l.next, 0) - 1)
	c.P64(l.flag, 1, succ)
	c.Quiet()
	c.StoreInt64(l.next, 0, 0)
}
