package shmem_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func TestStridedPutGet(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(8 * 32)
		if c.Me() == 0 {
			src := []int64{10, 11, 12, 13, 14, 15, 16, 17}
			// Write every 2nd element of src into every 3rd slot at PE 1.
			c.PutInt64Strided(a, src, 3, 2, 4, 1)
			c.Quiet()
		}
		c.BarrierAll()
		if c.Me() == 1 {
			vals := c.LocalInt64(a, 12)
			want := map[int]int64{0: 10, 3: 12, 6: 14, 9: 16}
			for i, v := range vals {
				if w, ok := want[i]; ok {
					if v != w {
						t.Errorf("slot %d = %d, want %d", i, v, w)
					}
				} else if v != 0 {
					t.Errorf("slot %d = %d, want 0 (stride gap)", i, v)
				}
			}
		}
		c.BarrierAll()
		if c.Me() == 0 {
			dest := make([]int64, 8)
			// Read back every 3rd slot into every 2nd element.
			c.GetInt64Strided(dest, a, 2, 3, 4, 1)
			for i, want := range []int64{10, 0, 12, 0, 14, 0, 16, 0} {
				if dest[i] != want {
					t.Errorf("dest[%d] = %d, want %d", i, dest[i], want)
				}
			}
		}
		c.BarrierAll()
	})
}

func TestGetNBICompletesAtQuiet(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(256)
		if c.Me() == 1 {
			copy(c.Local(a, 256), bytes.Repeat([]byte{0xAB}, 256))
		}
		c.BarrierAll()
		if c.Me() == 0 {
			bufs := make([][]byte, 8)
			for i := range bufs {
				bufs[i] = make([]byte, 32)
				c.GetMemNBI(bufs[i], a+shmem.SymAddr(32*i), 1)
			}
			c.Quiet()
			for i, b := range bufs {
				if !bytes.Equal(b, bytes.Repeat([]byte{0xAB}, 32)) {
					t.Errorf("nbi get %d incomplete after quiet: %v", i, b[:4])
				}
			}
		}
		c.BarrierAll()
	})
}

func TestDistributedLockMutualExclusion(t *testing.T) {
	const n = 6
	const incsPerPE = 25
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		l := c.NewLock()
		counter := c.Malloc(8)
		c.BarrierAll()
		for i := 0; i < incsPerPE; i++ {
			c.SetLock(l)
			// Non-atomic read-modify-write: only safe under the lock.
			v := c.G64(counter, 0)
			c.P64(counter, v+1, 0)
			c.Quiet()
			c.ClearLock(l)
		}
		c.BarrierAll()
		if c.Me() == 0 {
			if got := c.LoadInt64(counter, 0); got != n*incsPerPE {
				t.Errorf("counter = %d, want %d (lock failed to serialize)", got, n*incsPerPE)
			}
		}
	})
}

func TestTestLock(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		l := c.NewLock()
		c.BarrierAll()
		if c.Me() == 0 {
			if !c.TestLock(l) {
				t.Error("uncontended TestLock should succeed")
			}
		}
		c.BarrierAll()
		if c.Me() == 1 {
			if c.TestLock(l) {
				t.Error("TestLock should fail while PE 0 holds the lock")
			}
		}
		c.BarrierAll()
		if c.Me() == 0 {
			c.ClearLock(l)
		}
		c.BarrierAll()
		if c.Me() == 1 {
			if !c.TestLock(l) {
				t.Error("TestLock should succeed after release")
			}
			c.ClearLock(l)
		}
		c.BarrierAll()
	})
}

func TestActiveSetCollectives(t *testing.T) {
	const n = 8
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		// Even PEs form one active set: start 0, logstride 1, size 4.
		evens := shmem.ActiveSet{Start: 0, LogStride: 1, Size: 4}
		if c.Me()%2 == 0 {
			sum := c.ReduceInt64Set(evens, shmem.OpSum, []int64{int64(c.Me())})
			if sum[0] != 0+2+4+6 {
				t.Errorf("even-set sum = %d", sum[0])
			}
			var data []byte
			if c.Me() == 2 { // root index 1 -> rank 2
				data = []byte("evens")
			}
			got := c.BroadcastSet(evens, 1, data)
			if string(got) != "evens" {
				t.Errorf("broadcast got %q", got)
			}
			c.BarrierSet(evens)
		}
		c.BarrierAll()
		// Odd PEs: start 1, logstride 1, size 4 — independent set.
		odds := shmem.ActiveSet{Start: 1, LogStride: 1, Size: 4}
		if c.Me()%2 == 1 {
			max := c.ReduceInt64Set(odds, shmem.OpMax, []int64{int64(c.Me())})
			if max[0] != 7 {
				t.Errorf("odd-set max = %d", max[0])
			}
			c.BarrierSet(odds)
		}
		c.BarrierAll()
	})
}

func TestActiveSetMembershipPanics(t *testing.T) {
	run(t, cluster.Config{NP: 4, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		defer c.BarrierAll()
		if c.Me() == 3 {
			defer func() {
				if recover() == nil {
					t.Error("non-member collective call should panic")
				}
			}()
			c.BarrierSet(shmem.ActiveSet{Start: 0, LogStride: 0, Size: 2})
		}
	})
}

func TestAlltoallInt64(t *testing.T) {
	const n = 5
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		send := make([]int64, n)
		for i := range send {
			send[i] = int64(c.Me()*100 + i)
		}
		got := c.AlltoallInt64(send)
		for src := 0; src < n; src++ {
			if want := int64(src*100 + c.Me()); got[src] != want {
				t.Errorf("pe %d: got[%d] = %d, want %d", c.Me(), src, got[src], want)
			}
		}
	})
}

func TestFetchSetTest(t *testing.T) {
	run(t, cluster.Config{NP: 2, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		a := c.Malloc(8)
		if c.Me() == 0 {
			c.SetInt64(a, 99, 1)
			if got := c.FetchInt64(a, 1); got != 99 {
				t.Errorf("FetchInt64 = %d", got)
			}
		}
		c.BarrierAll()
		if c.Me() == 1 {
			if !c.TestInt64(a, shmem.CmpEQ, 99) {
				t.Error("TestInt64 should see the set value")
			}
			if c.TestInt64(a, shmem.CmpGT, 100) {
				t.Error("TestInt64 false positive")
			}
		}
		c.BarrierAll()
	})
}

// Property: the lock grants FIFO-ish exclusive access even under heavy
// contention from all PEs simultaneously.
func TestLockStress(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	inCrit := 0
	maxIn := 0
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		l := c.NewLock()
		c.BarrierAll()
		for i := 0; i < 10; i++ {
			c.SetLock(l)
			mu.Lock()
			inCrit++
			if inCrit > maxIn {
				maxIn = inCrit
			}
			mu.Unlock()
			mu.Lock()
			inCrit--
			mu.Unlock()
			c.ClearLock(l)
		}
		c.BarrierAll()
	})
	if maxIn > 1 {
		t.Fatalf("%d PEs in the critical section at once", maxIn)
	}
}

func TestWorldSet(t *testing.T) {
	run(t, cluster.Config{NP: 3, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		w := c.World()
		sum := c.ReduceInt64Set(w, shmem.OpSum, []int64{1})
		if sum[0] != 3 {
			t.Errorf("world reduce = %d", sum[0])
		}
	})
}

func TestModeStringAndSegNames(t *testing.T) {
	if gasnet.Static.String() != "static" || gasnet.OnDemand.String() != "on-demand" {
		t.Fatal("mode names")
	}
	if fmt.Sprintf("%v", gasnet.Mode(9)) == "" {
		t.Fatal("unknown mode should still print")
	}
}
