package shmem

import (
	"encoding/binary"
	"fmt"
	"math"

	"goshmem/internal/obs"
)

// Malloc allocates n bytes on the symmetric heap of every PE and returns the
// symmetric address. Like shmem_malloc it is collective: all PEs must call
// it with the same size, and it synchronizes before returning.
func (c *Ctx) Malloc(n int) SymAddr {
	a, err := c.heap.alloc(n)
	if err != nil {
		panic(err.Error())
	}
	c.BarrierAll()
	return a
}

// Free releases a symmetric allocation on all PEs (collective, like
// shmem_free).
func (c *Ctx) Free(a SymAddr) {
	if err := c.heap.dealloc(a); err != nil {
		panic(err.Error())
	}
	c.BarrierAll()
}

// mallocLocal allocates without the collective barrier; the runtime uses it
// during initialization when all PEs are known to allocate in lockstep.
func (c *Ctx) mallocLocal(n int) SymAddr {
	a, err := c.heap.alloc(n)
	if err != nil {
		panic(err.Error())
	}
	return a
}

// PutMem copies len(src) bytes into dest on the target PE (shmem_putmem).
// It returns when the source buffer is reusable; remote completion requires
// Quiet or a barrier.
func (c *Ctx) PutMem(dest SymAddr, src []byte, pe int) {
	if len(src) == 0 {
		return
	}
	start := c.clk.Now()
	addr, rkey, err := c.remoteAddr(pe, dest, len(src))
	if err != nil {
		panic(fmt.Errorf("shmem: put to pe %d: %w", pe, err))
	}
	if err := c.conduit.Put(pe, addr, rkey, src); err != nil {
		panic(fmt.Errorf("shmem: put to pe %d: %w", pe, err))
	}
	if c.obs.Active() {
		end := c.clk.Now()
		c.obs.Span(start, end, obs.LayerShmem, "put", pe, int64(len(src)))
		c.hPut.Record(end - start)
	}
}

// GetMem copies len(dest) bytes from src on the target PE (shmem_getmem).
// It blocks until the data has arrived.
func (c *Ctx) GetMem(dest []byte, src SymAddr, pe int) {
	if len(dest) == 0 {
		return
	}
	start := c.clk.Now()
	addr, rkey, err := c.remoteAddr(pe, src, len(dest))
	if err != nil {
		panic(fmt.Errorf("shmem: get from pe %d: %w", pe, err))
	}
	if err := c.conduit.Get(pe, addr, rkey, dest); err != nil {
		panic(fmt.Errorf("shmem: get from pe %d: %w", pe, err))
	}
	if c.obs.Active() {
		end := c.clk.Now()
		c.obs.Span(start, end, obs.LayerShmem, "get", pe, int64(len(dest)))
		c.hGet.Record(end - start)
	}
}

// PutInt64 writes a vector of int64 to the target PE (shmem_long_put).
func (c *Ctx) PutInt64(dest SymAddr, src []int64, pe int) {
	buf := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	c.PutMem(dest, buf, pe)
}

// GetInt64 reads a vector of int64 from the target PE (shmem_long_get).
func (c *Ctx) GetInt64(dest []int64, src SymAddr, pe int) {
	buf := make([]byte, 8*len(dest))
	c.GetMem(buf, src, pe)
	for i := range dest {
		dest[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}

// PutFloat64 writes a vector of float64 to the target PE (shmem_double_put).
func (c *Ctx) PutFloat64(dest SymAddr, src []float64, pe int) {
	buf := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	c.PutMem(dest, buf, pe)
}

// GetFloat64 reads a vector of float64 from the target PE (shmem_double_get).
func (c *Ctx) GetFloat64(dest []float64, src SymAddr, pe int) {
	buf := make([]byte, 8*len(dest))
	c.GetMem(buf, src, pe)
	for i := range dest {
		dest[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}

// P64 writes a single int64 (shmem_long_p).
func (c *Ctx) P64(dest SymAddr, v int64, pe int) { c.PutInt64(dest, []int64{v}, pe) }

// G64 reads a single int64 (shmem_long_g).
func (c *Ctx) G64(src SymAddr, pe int) int64 {
	var out [1]int64
	c.GetInt64(out[:], src, pe)
	return out[0]
}

// LocalInt64 views a symmetric int64 vector in this PE's own partition.
// Reads and writes through the view race with concurrent remote atomics;
// use LoadInt64 for values that remote PEs update atomically.
func (c *Ctx) LocalInt64(addr SymAddr, n int) []int64 {
	b := c.Local(addr, 8*n)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// StoreLocalInt64 writes v into this PE's own partition at addr+8*i.
func (c *Ctx) StoreLocalInt64(addr SymAddr, i int, v int64) {
	b := c.Local(addr+SymAddr(8*i), 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
}

// LoadInt64 atomically (with respect to remote atomics) loads the local
// int64 at addr+8*i.
func (c *Ctx) LoadInt64(addr SymAddr, i int) int64 {
	off := int(addr) + 8*i
	return int64(c.mr.LoadUint64(off))
}

// StoreInt64 atomically stores the local int64 at addr+8*i.
func (c *Ctx) StoreInt64(addr SymAddr, i int, v int64) {
	off := int(addr) + 8*i
	c.mr.StoreUint64(off, uint64(v))
}

// LocalFloat64 views a symmetric float64 vector in this PE's own partition.
func (c *Ctx) LocalFloat64(addr SymAddr, n int) []float64 {
	b := c.Local(addr, 8*n)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// StoreLocalFloat64 writes v into this PE's own partition at addr+8*i.
func (c *Ctx) StoreLocalFloat64(addr SymAddr, i int, v float64) {
	b := c.Local(addr+SymAddr(8*i), 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}
