package shmem_test

import (
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

// TestPutSignalOrdering: shmem_put_signal's contract is that the signal is
// never observable before the data it announces. Each PE streams K
// put-signals to its right neighbour; the neighbour waits on the signal
// word and must then see the final value of the in-order put stream.
func TestPutSignalOrdering(t *testing.T) {
	const n, k = 6, 20
	bothModes(t, "putsignal", cluster.Config{NP: n}, func(c *shmem.Ctx) {
		data := c.Malloc(8 * n) // word s: last value put by source s
		sig := c.Malloc(8 * n)  // word s: puts signalled by source s
		me := c.Me()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		for i := 1; i <= k; i++ {
			c.P64Signal(data+shmem.SymAddr(8*me), int64(me*1000+i),
				sig+shmem.SymAddr(8*me), 1, right)
		}
		c.WaitUntilInt64(sig+shmem.SymAddr(8*left), shmem.CmpGE, k)
		if got := c.LoadInt64(data, left); got != int64(left*1000+k) {
			t.Errorf("pe %d: signal arrived before data: slot %d = %d, want %d",
				me, left, got, left*1000+k)
		}
		if got := c.LoadInt64(sig, left); got != k {
			t.Errorf("pe %d: signal word = %d, want exactly %d", me, got, k)
		}
		c.BarrierAll()
	})
}

// TestPutSignalQuietFence: a Quiet issued after put-signals must fence the
// signal messages too — even when they were queued behind an in-flight
// handshake — so a barrier after Quiet guarantees global visibility.
func TestPutSignalQuietFence(t *testing.T) {
	const n, k = 4, 10
	run(t, cluster.Config{NP: n, Mode: gasnet.OnDemand}, func(c *shmem.Ctx) {
		sig := c.Malloc(8)
		me := c.Me()
		dst := c.Malloc(8 * n)
		for pe := 0; pe < n; pe++ {
			for i := 0; i < k; i++ {
				c.P64Signal(dst+shmem.SymAddr(8*me), int64(i), sig, 1, pe)
			}
		}
		c.Quiet()
		c.BarrierAll()
		c.BarrierAll()
		if got := c.LoadInt64(sig, 0); got != int64(n*k) {
			t.Errorf("pe %d: signal word = %d after quiet+barrier, want %d", me, got, n*k)
		}
	})
}

// TestPutSignalBackpressured: under a finite receive-queue depth the signal
// stream is exactly the traffic the credit window and RNR NAK machinery
// govern; the stream must stay lossless and in order under that pressure.
func TestPutSignalBackpressured(t *testing.T) {
	const n, k = 2, 40
	cfg := cluster.Config{NP: n, PPN: 1, Mode: gasnet.OnDemand, RQDepth: 2,
		Retrans: gasnet.RetransConfig{}}
	res := run(t, cfg, func(c *shmem.Ctx) {
		data := c.Malloc(8)
		sig := c.Malloc(8)
		me := c.Me()
		other := 1 - me
		for i := 1; i <= k; i++ {
			c.P64Signal(data, int64(me*1000+i), sig, 1, other)
		}
		c.WaitUntilInt64(sig, shmem.CmpGE, k)
		if got := c.LoadInt64(data, 0); got != int64(other*1000+k) {
			t.Errorf("pe %d: final data %d, want %d", me, got, other*1000+k)
		}
		c.BarrierAll()
	})
	var pressured bool
	for _, h := range res.HCA {
		if h.RNRNaks > 0 {
			pressured = true
		}
	}
	cc := res.Counters()
	if cc.CreditStalls > 0 || cc.RNRNaks > 0 {
		pressured = true
	}
	if !pressured {
		t.Errorf("depth-2 receive queues saw no backpressure: %+v hca=%+v", cc, res.HCA)
	}
}
