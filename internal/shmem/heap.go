package shmem

import (
	"fmt"
	"sort"
	"sync"
)

// SymAddr is a symmetric address: a byte offset into the symmetric heap.
// Because every PE performs the same allocation sequence (OpenSHMEM requires
// symmetric allocation to be collective), the same SymAddr names the
// corresponding object on every PE.
type SymAddr uint64

// heap is the symmetric-heap allocator: deterministic first-fit with
// coalescing free list, 8-byte alignment. Determinism is what makes the
// "same offset on every PE" property hold, so the allocator takes no input
// other than the call sequence.
type heap struct {
	mu   sync.Mutex
	size uint64
	free []span // sorted by offset, non-adjacent
	used map[uint64]uint64
}

type span struct{ off, len uint64 }

const heapAlign = 8

func newHeap(size int) *heap {
	h := &heap{size: uint64(size), used: make(map[uint64]uint64)}
	h.free = []span{{0, uint64(size)}}
	return h
}

// alloc reserves n bytes and returns the symmetric offset.
func (h *heap) alloc(n int) (SymAddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("shmem: allocation size %d must be positive", n)
	}
	need := (uint64(n) + heapAlign - 1) &^ uint64(heapAlign-1)
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, s := range h.free {
		if s.len >= need {
			off := s.off
			if s.len == need {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				h.free[i] = span{s.off + need, s.len - need}
			}
			h.used[off] = need
			return SymAddr(off), nil
		}
	}
	return 0, fmt.Errorf("shmem: symmetric heap exhausted allocating %d bytes", n)
}

// dealloc releases a previously allocated block, coalescing neighbours.
func (h *heap) dealloc(a SymAddr) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	n, ok := h.used[uint64(a)]
	if !ok {
		return fmt.Errorf("shmem: free of unallocated symmetric address %#x", uint64(a))
	}
	delete(h.used, uint64(a))
	s := span{uint64(a), n}
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].off > s.off })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = s
	// Coalesce with successor, then predecessor.
	if i+1 < len(h.free) && h.free[i].off+h.free[i].len == h.free[i+1].off {
		h.free[i].len += h.free[i+1].len
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].off+h.free[i-1].len == h.free[i].off {
		h.free[i-1].len += h.free[i].len
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
	return nil
}

// inUse reports the number of live allocations.
func (h *heap) inUse() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.used)
}

// blockLen returns the allocated length at a, or 0.
func (h *heap) blockLen(a SymAddr) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.used[uint64(a)]
}
