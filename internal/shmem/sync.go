package shmem

import "fmt"

// Cmp is the comparison operator for WaitUntil (SHMEM_CMP_*).
type Cmp uint8

const (
	CmpEQ Cmp = iota
	CmpNE
	CmpGT
	CmpGE
	CmpLT
	CmpLE
)

func (op Cmp) eval(a, b int64) bool {
	switch op {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	}
	panic("shmem: unknown comparison")
}

// Quiet completes all outstanding puts issued by this PE (shmem_quiet).
func (c *Ctx) Quiet() { c.conduit.Quiet() }

// Compute charges the virtual cost of flops floating-point operations to
// this PE's clock. Application kernels use it so that execution-time
// experiments retain realistic compute/communication/startup proportions
// even when the kernels run scaled-down problem sizes.
func (c *Ctx) Compute(flops float64) { c.clk.Advance(c.model.ComputeTime(flops)) }

// Fence orders puts per destination (shmem_fence). The simulated RC
// transport delivers in order, so fence is a local no-op beyond its own
// (tiny) cost, like fence on a single-rail IB runtime.
func (c *Ctx) Fence() { c.clk.Advance(c.model.SendPostOverhead) }

// WaitUntilInt64 blocks until the local symmetric int64 at addr satisfies
// cmp against value (shmem_long_wait_until). The value is observed with the
// same atomicity as remote network atomics, and the PE's clock advances to
// the virtual arrival time of the write that satisfied the condition.
func (c *Ctx) WaitUntilInt64(addr SymAddr, cmp Cmp, value int64) int64 {
	off := int(addr)
	if off%8 != 0 {
		panic("shmem: WaitUntilInt64 requires 8-byte alignment")
	}
	c.watchMu.Lock()
	for {
		v := int64(c.mr.LoadUint64(off))
		if cmp.eval(v, value) {
			at := c.lastWrite
			c.watchMu.Unlock()
			c.clk.AdvanceTo(at)
			return v
		}
		if err := c.conduit.LivenessErr(); err != nil {
			c.watchMu.Unlock()
			panic(fmt.Errorf("shmem: wait_until: %w", err))
		}
		c.watchCond.Wait()
	}
}

// IntraNodeBarrier synchronizes only the PEs sharing this node — the
// paper's section IV-E replacement for init-time global barriers.
func (c *Ctx) IntraNodeBarrier() { c.conduit.IntraNodeBarrier() }
