package shmem

import (
	"encoding/binary"
	"fmt"
	"math"

	"goshmem/internal/obs"
)

// ActiveSet is the OpenSHMEM 1.0 subgroup abstraction used by collectives:
// the PEs {Start, Start+2^LogStride, ...} of size Size. The era-appropriate
// (PE_start, logPE_stride, PE_size) triple — teams arrived much later.
type ActiveSet struct {
	Start     int
	LogStride int
	Size      int
}

// World returns the active set covering the whole job.
func (c *Ctx) World() ActiveSet { return ActiveSet{Start: 0, LogStride: 0, Size: c.n} }

// contains returns this PE's index within the set, or -1.
func (as ActiveSet) index(rank int) int {
	stride := 1 << as.LogStride
	off := rank - as.Start
	if off < 0 || off%stride != 0 {
		return -1
	}
	idx := off / stride
	if idx >= as.Size {
		return -1
	}
	return idx
}

// rankOf maps a set index back to a PE rank.
func (as ActiveSet) rankOf(idx int) int { return as.Start + idx<<as.LogStride }

func (c *Ctx) mustIndex(as ActiveSet) int {
	idx := as.index(c.rank)
	if idx < 0 {
		panic(fmt.Sprintf("shmem: PE %d is not in active set {start %d, logstride %d, size %d}",
			c.rank, as.Start, as.LogStride, as.Size))
	}
	return idx
}

// BarrierSet synchronizes the PEs of an active set (shmem_barrier). All and
// only the set's members must call it.
func (c *Ctx) BarrierSet(as ActiveSet) {
	c.Quiet()
	if as.Size <= 1 {
		return
	}
	me := c.mustIndex(as)
	ctx := as.ctxID(c.n)
	seq := c.coll.next(ctx)
	for k, dist := uint32(0), 1; dist < as.Size; k, dist = k+1, dist*2 {
		to := as.rankOf((me + dist) % as.Size)
		from := as.rankOf((me - dist%as.Size + as.Size) % as.Size)
		c.collSendCtx(ctx, to, seq, k, nil, obs.FlowBarrier)
		c.collRecvCtx(ctx, seq, k, from)
	}
}

// BroadcastSet distributes rootIdx's data over the active set (shmem_broadcast).
// rootIdx is an index within the set, like PE_root in the specification.
func (c *Ctx) BroadcastSet(as ActiveSet, rootIdx int, data []byte) []byte {
	if as.Size <= 1 {
		return data
	}
	me := c.mustIndex(as)
	ctx := as.ctxID(c.n)
	seq := c.coll.next(ctx)
	relative := (me - rootIdx + as.Size) % as.Size
	buf := data
	mask := 1
	for mask < as.Size {
		if relative&mask != 0 {
			parentIdx := (relative - mask + rootIdx) % as.Size
			buf = c.collRecvCtx(ctx, seq, 0, as.rankOf(parentIdx))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < as.Size {
			dstIdx := (relative + mask + rootIdx) % as.Size
			c.collSendCtx(ctx, as.rankOf(dstIdx), seq, 0, buf, obs.FlowColl)
		}
		mask >>= 1
	}
	return buf
}

// ReduceInt64Set is the active-set allreduce (shmem_long_<op>_to_all over an
// active set).
func (c *Ctx) ReduceInt64Set(as ActiveSet, op ReduceOp, local []int64) []int64 {
	buf := make([]byte, 8*len(local))
	for i, v := range local {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	res := c.reduceBytesSet(as, buf, func(acc, in []byte) {
		for i := 0; i < len(acc); i += 8 {
			a := int64(binary.LittleEndian.Uint64(acc[i:]))
			b := int64(binary.LittleEndian.Uint64(in[i:]))
			binary.LittleEndian.PutUint64(acc[i:], uint64(combineInt64(op, a, b)))
		}
	})
	out := make([]int64, len(local))
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(res[8*i:]))
	}
	return out
}

// ReduceFloat64Set is the active-set float64 allreduce.
func (c *Ctx) ReduceFloat64Set(as ActiveSet, op ReduceOp, local []float64) []float64 {
	buf := make([]byte, 8*len(local))
	for i, v := range local {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	res := c.reduceBytesSet(as, buf, func(acc, in []byte) {
		for i := 0; i < len(acc); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(in[i:]))
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(combineFloat64(op, a, b)))
		}
	})
	out := make([]float64, len(local))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(res[8*i:]))
	}
	return out
}

func (c *Ctx) reduceBytesSet(as ActiveSet, local []byte, combine func(acc, in []byte)) []byte {
	acc := append([]byte(nil), local...)
	if as.Size > 1 {
		me := c.mustIndex(as)
		ctx := as.ctxID(c.n)
		seq := c.coll.next(ctx)
		for mask := 1; mask < as.Size; mask <<= 1 {
			if me&mask == 0 {
				src := me | mask
				if src < as.Size {
					in := c.collRecvCtx(ctx, seq, 0, as.rankOf(src))
					combine(acc, in)
				}
			} else {
				c.collSendCtx(ctx, as.rankOf(me&^mask), seq, 0, acc, obs.FlowColl)
				break
			}
		}
	}
	return c.BroadcastSet(as, 0, acc)
}

// AlltoallInt64 exchanges one int64 block per PE pair across the whole job
// (shmem_alltoall64): element i of the result came from PE i's send[me].
func (c *Ctx) AlltoallInt64(send []int64) []int64 {
	if len(send) != c.n {
		panic("shmem: AlltoallInt64 needs one element per PE")
	}
	seq := c.coll.next(worldCtx)
	out := make([]int64, c.n)
	out[c.rank] = send[c.rank]
	var buf [8]byte
	for off := 1; off < c.n; off++ {
		dst := (c.rank + off) % c.n
		src := (c.rank - off + c.n) % c.n
		binary.LittleEndian.PutUint64(buf[:], uint64(send[dst]))
		c.collSend(dst, seq, uint32(0), append([]byte(nil), buf[:]...))
		in := c.collRecv(seq, 0, src)
		out[src] = int64(binary.LittleEndian.Uint64(in))
	}
	return out
}

// FetchInt64 atomically fetches the remote value (shmem_long_atomic_fetch,
// implemented as fetch-add of zero like real NICs do).
func (c *Ctx) FetchInt64(addr SymAddr, pe int) int64 { return c.FetchAddInt64(addr, 0, pe) }

// SetInt64 atomically sets the remote value (shmem_long_atomic_set,
// implemented as swap discarding the old value).
func (c *Ctx) SetInt64(addr SymAddr, v int64, pe int) { c.SwapInt64(addr, v, pe) }

// TestInt64 is the non-blocking companion of WaitUntilInt64 (shmem_test):
// it returns whether the local symmetric int64 currently satisfies cmp.
func (c *Ctx) TestInt64(addr SymAddr, cmp Cmp, value int64) bool {
	return cmp.eval(c.LoadInt64(addr, 0), value)
}
