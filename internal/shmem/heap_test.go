package shmem

import (
	"math/rand"
	"testing"
)

func TestHeapAllocAligned(t *testing.T) {
	h := newHeap(1024)
	a, err := h.alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a)%heapAlign != 0 || uint64(b)%heapAlign != 0 {
		t.Fatalf("unaligned: %d %d", a, b)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := newHeap(64)
	if _, err := h.alloc(65); err == nil {
		t.Fatal("oversized alloc should fail")
	}
	if _, err := h.alloc(0); err == nil {
		t.Fatal("zero alloc should fail")
	}
	a, _ := h.alloc(64)
	if _, err := h.alloc(8); err == nil {
		t.Fatal("full heap should fail")
	}
	if err := h.dealloc(a); err != nil {
		t.Fatal(err)
	}
	if _, err := h.alloc(64); err != nil {
		t.Fatalf("free should return space: %v", err)
	}
}

func TestHeapDoubleFree(t *testing.T) {
	h := newHeap(128)
	a, _ := h.alloc(16)
	if err := h.dealloc(a); err != nil {
		t.Fatal(err)
	}
	if err := h.dealloc(a); err == nil {
		t.Fatal("double free should fail")
	}
	if err := h.dealloc(SymAddr(9999)); err == nil {
		t.Fatal("bogus free should fail")
	}
}

func TestHeapCoalescing(t *testing.T) {
	h := newHeap(96)
	a, _ := h.alloc(32)
	b, _ := h.alloc(32)
	c, _ := h.alloc(32)
	// Free in an order that requires coalescing both directions.
	h.dealloc(a)
	h.dealloc(c)
	h.dealloc(b)
	if _, err := h.alloc(96); err != nil {
		t.Fatalf("heap did not coalesce: %v", err)
	}
}

// Property: two heaps given the same operation sequence return identical
// addresses (the symmetry invariant), and live blocks never overlap.
func TestHeapDeterministicAndNonOverlapping(t *testing.T) {
	const size = 1 << 16
	h1, h2 := newHeap(size), newHeap(size)
	rng := rand.New(rand.NewSource(42))
	type blk struct {
		a SymAddr
		n int
	}
	var live []blk
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			if err := h1.dealloc(live[k].a); err != nil {
				t.Fatal(err)
			}
			if err := h2.dealloc(live[k].a); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
			continue
		}
		n := 1 + rng.Intn(512)
		a1, e1 := h1.alloc(n)
		a2, e2 := h2.alloc(n)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("divergent failure at op %d", i)
		}
		if e1 != nil {
			continue
		}
		if a1 != a2 {
			t.Fatalf("heaps diverged: %d vs %d at op %d", a1, a2, i)
		}
		// Overlap check against all live blocks.
		for _, b := range live {
			lo, hi := uint64(a1), uint64(a1)+uint64(n)
			blo, bhi := uint64(b.a), uint64(b.a)+uint64(b.n)
			if lo < bhi && blo < hi {
				t.Fatalf("overlap: [%d,%d) with [%d,%d)", lo, hi, blo, bhi)
			}
		}
		live = append(live, blk{a1, n})
	}
	if h1.inUse() != len(live) {
		t.Fatalf("inUse = %d, want %d", h1.inUse(), len(live))
	}
}
