package shmem

import (
	"fmt"
	"sync"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

// Env is the per-PE environment the cluster launcher provides.
type Env struct {
	Rank   int
	NProcs int
	Node   int
	PPN    int

	HCA         *ib.HCA
	PMI         *pmi.Client
	Clock       *vclock.Clock
	NodeBarrier *vclock.VBarrier

	// OnConnEvent, if set, receives the conduit's connection-lifecycle
	// trace events (see gasnet.Config.OnEvent).
	OnConnEvent func(kind string, peer int, vt int64)

	// Obs is the PE's observability recorder (nil: disabled). The runtime
	// threads it through the PMI client, the conduit and the verbs layer so
	// every layer's events land in the same per-PE stream.
	Obs *obs.PE
}

// Attach is start_pes: it initializes the OpenSHMEM runtime for one PE and
// records the per-phase time breakdown. The phase structure follows the
// paper:
//
//	static   : UD endpoint; Put+Fence (blocking PMI); register heap; shared
//	           memory; eager all-to-all connect; segment broadcast; global
//	           barriers.
//	on-demand: UD endpoint; PMIX_Iallgather (launch only); register heap
//	           (overlapped with the allgather); shared memory; intra-node
//	           barrier. Connections and segment exchange are deferred.
func Attach(env Env, opts Options) *Ctx {
	if opts.HeapSize <= 0 {
		opts.HeapSize = 1 << 20
	}
	if opts.DeclaredHeapSize < opts.HeapSize {
		opts.DeclaredHeapSize = opts.HeapSize
	}
	if opts.SegEx == SegAuto {
		if opts.Mode == gasnet.Static {
			opts.SegEx = SegBroadcast
		} else {
			opts.SegEx = SegPiggyback
		}
	}

	c := &Ctx{
		rank:  env.Rank,
		n:     env.NProcs,
		opts:  opts,
		pmiC:  env.PMI,
		clk:   env.Clock,
		model: env.HCA.Fabric().Model(),
		segs:  make([]segInfo, env.NProcs),
	}
	c.segCond = sync.NewCond(&c.segMu)
	c.watchCond = sync.NewCond(&c.watchMu)
	c.coll = newCollState()
	c.obs = env.Obs
	c.hPut = c.obs.Hist("shmem.put_ns")
	c.hGet = c.obs.Hist("shmem.get_ns")
	c.hAtomic = c.obs.Hist("shmem.atomic_ns")
	c.hBarrier = c.obs.Hist("shmem.barrier_ns")
	c.hColl = c.obs.Hist("shmem.collective_ns")
	env.PMI.SetObs(c.obs)
	c.startVT = c.clk.Now()
	last := c.startVT
	// mark closes one initialization phase: it charges the elapsed region to
	// the legacy breakdown bucket AND records it as a named startup phase, so
	// the phases tile [startVT, now] exactly (the phase-sum invariant).
	mark := func(bucket *int64, phase string) {
		now := c.clk.Now()
		*bucket += now - last
		c.obs.InitPhase(phase, last, now)
		last = now
	}

	cfg := gasnet.Config{
		Rank: env.Rank, NProcs: env.NProcs, Node: env.Node, PPN: env.PPN,
		HCA: env.HCA, PMI: env.PMI, Clock: env.Clock,
		Mode: opts.Mode, BlockingPMI: opts.BlockingPMI,
		NodeBarrier: env.NodeBarrier,
		OnEvent:     env.OnConnEvent,
		Obs:         env.Obs,
		MaxLiveRC:   opts.MaxLiveRC,
		Retrans:     opts.Retrans,
		Heartbeat:   opts.Heartbeat,
	}
	if opts.SegEx == SegPiggyback {
		cfg.ConnectPayload = func() []byte { return c.encodeOwnSeg() }
		cfg.OnConnectPayload = func(peer int, b []byte, at int64) { c.storeSeg(peer, b, at) }
	}
	c.conduit = gasnet.New(cfg)
	c.coll.liveness = c.conduit.LivenessErr
	// On a job abort, wake every blocked wait loop in the runtime so it can
	// observe the error instead of sleeping forever on a condvar.
	c.conduit.OnAbort(func(error) {
		c.coll.cond.Broadcast()
		c.segCond.Broadcast()
		c.watchCond.Broadcast()
	})
	c.conduit.RegisterHandler(amColl, c.coll.handle)
	c.conduit.RegisterHandler(amSegInfo, func(src int, args [4]uint64, payload []byte, at int64) {
		c.storeSeg(src, payload, at)
	})
	c.conduit.RegisterHandler(amSegReq, func(src int, args [4]uint64, payload []byte, at int64) {
		// Explicit segment-info request (SegAMOnDemand ablation): reply.
		_ = c.conduit.AMRequest(src, amSegInfo, [4]uint64{}, c.encodeOwnSeg())
	})
	c.conduit.RegisterHandler(amSignal, func(src int, args [4]uint64, payload []byte, at int64) {
		c.applySignal(int64(args[0]), args[1], at)
	})
	mark(&c.breakdown.Other, "qp-setup")

	// --- PMI exchange of UD endpoint info ---
	if err := c.conduit.ExchangeEndpoints(); err != nil {
		// Permanent control-plane failure: the conduit has already raised
		// the job abort (ExitPMIFailure); unwind this PE through the same
		// panic path GlobalExit uses so the launcher classifies the code.
		panic(fmt.Errorf("shmem: endpoint exchange: %w", err))
	}
	mark(&c.breakdown.PMIExchange, "pmi-exchange")

	// --- Symmetric heap allocation and registration ---
	c.heapBuf = make([]byte, opts.HeapSize)
	c.heap = newHeap(opts.HeapSize)
	// Registration goes through the conduit's degradation ladder: a refused
	// pinning (budget or injected fault) falls back to a bounce-buffered
	// region, and only a PE with no registered heap at all aborts.
	c.mr = c.conduit.RegisterHeap(c.heapBuf)
	if extra := c.model.MemRegTime(opts.DeclaredHeapSize) - c.model.MemRegTime(opts.HeapSize); extra > 0 {
		c.clk.Advance(extra) // model the declared (paper-scale) heap size
	}
	c.mr.SetOnWrite(func(off, n int, vt int64) {
		c.watchMu.Lock()
		if vt > c.lastWrite {
			c.lastWrite = vt
		}
		c.watchMu.Unlock()
		c.watchCond.Broadcast()
	})
	c.setOwnSeg()
	c.obs.Emit(c.clk.Now(), obs.LayerIB, "mr-register", -1, int64(opts.DeclaredHeapSize))
	mark(&c.breakdown.MemoryReg, "mem-reg")

	// --- Shared-memory (intra-node) setup ---
	c.clk.Advance(c.model.SharedMemSetup)
	c.conduit.IntraNodeBarrier()
	mark(&c.breakdown.SharedMemSetup, "shared-mem")

	c.conduit.SetReady()

	// --- Connection setup & segment exchange ---
	// Both sub-phases are marked in every mode (zero-length when skipped), so
	// the phase names line up across static and on-demand runs.
	if opts.Mode == gasnet.Static {
		if err := c.conduit.ConnectAll(); err != nil {
			panic("shmem: static connect: " + err.Error())
		}
		mark(&c.breakdown.ConnectionSetup, "conn-setup")
		c.broadcastSegs()
		c.BarrierAll() // the current design's global synchronization
		mark(&c.breakdown.ConnectionSetup, "rkey-exchange")
	} else if opts.SegEx == SegBroadcast {
		// Unusual combination (ablation): broadcast still forces all-to-all.
		mark(&c.breakdown.ConnectionSetup, "conn-setup")
		c.broadcastSegs()
		c.BarrierAll()
		mark(&c.breakdown.ConnectionSetup, "rkey-exchange")
	} else {
		if opts.GlobalInitBarriers {
			// Section IV-E ablation: a global barrier during on-demand init
			// forces O(log P) connections right here.
			c.BarrierAll()
		}
		mark(&c.breakdown.ConnectionSetup, "conn-setup")
		mark(&c.breakdown.ConnectionSetup, "rkey-exchange")
	}

	// --- Remaining constant setup ---
	c.clk.Advance(c.model.InitOther)
	if opts.Mode == gasnet.Static || opts.GlobalInitBarriers {
		c.BarrierAll()
	} else {
		c.conduit.IntraNodeBarrier() // paper section IV-E replacement
	}
	mark(&c.breakdown.Other, "other")

	c.breakdown.Total = c.clk.Now() - c.startVT
	return c
}

// InitTime returns the virtual duration of start_pes.
func (c *Ctx) InitTime() int64 { return c.breakdown.Total }

// Finalize synchronizes all PEs for teardown. Even the on-demand design
// needs a true global barrier here (the paper notes Hello World still pays
// for completing the PMI exchange and a few connections at finalize).
func (c *Ctx) Finalize() {
	if c.finalized {
		return
	}
	c.finalized = true
	// Close even when the teardown barrier aborts or panics mid-way: a dead
	// peer must not leave the conduit's progress loop running.
	defer c.conduit.Close()
	if c.conduit.Err() == nil {
		c.BarrierAll()
	}
}

// Err returns the job-abort error if this PE's conduit has been aborted
// (a peer died, the watchdog fired, or GlobalExit was called), else nil.
func (c *Ctx) Err() error { return c.conduit.Err() }

// GlobalExit is shmem_global_exit: it aborts the whole job with the given
// exit code, propagating the abort to every live PE through the conduit and
// the process manager, then unwinds this PE.
func (c *Ctx) GlobalExit(code int) {
	ae := &gasnet.AbortError{
		Origin: c.rank, Dead: -1, Code: code,
		Reason: fmt.Sprintf("shmem_global_exit(%d) on PE %d", code, c.rank),
	}
	c.conduit.Abort(ae)
	panic(fmt.Errorf("shmem: global exit: %w", ae))
}

// Stats returns the conduit's resource/traffic counters for this PE.
func (c *Ctx) Stats() gasnet.Stats { return c.conduit.Stats() }

// CommunicatingPeers returns how many distinct peers (excluding self) this
// PE has sent traffic to — the paper's Table I metric.
func (c *Ctx) CommunicatingPeers() int {
	set := c.conduit.PeerSet()
	delete(set, c.rank)
	return len(set)
}
