package shmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"goshmem/internal/obs"
)

// collSpan closes a collective's observability span and feeds the collective
// latency histogram. Nested collectives (reduce over broadcast) each record
// their own span.
func (c *Ctx) collSpan(kind string, start int64, h *obs.Hist) {
	if !c.obs.Active() {
		return
	}
	end := c.clk.Now()
	c.obs.Span(start, end, obs.LayerShmem, kind, -1, 0)
	h.Record(end - start)
}

// collState sequences collective operations. OpenSHMEM requires the PEs of
// an active set to call that set's collectives in the same order, so a
// per-PE monotone sequence number *per set context* identifies the
// operation (this mirrors the specification's per-collective pSync arrays:
// disjoint active sets progress independently); (ctx, seq, round, src)
// identifies one fragment.
type collState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	seqs  map[uint64]uint64
	inbox map[collKey]collMsg

	// liveness (set at Attach) lets recv abandon a wait when the job aborts:
	// a fragment from a dead peer will never arrive.
	liveness func() error
}

type collKey struct {
	ctx   uint64
	seq   uint64
	round uint32
	src   int32
}

// worldCtx is the context id of the whole-job active set.
const worldCtx = 0

// ctxID derives a context id from the active-set triple (job-unique since
// start < 2^20, logstride < 2^6, size < 2^20 in any realistic job). The
// world set {0,0,n} must not collide with worldCtx used by BarrierAll and
// friends, so world-shaped sets map to worldCtx.
func (as ActiveSet) ctxID(n int) uint64 {
	if as.Start == 0 && as.LogStride == 0 && as.Size == n {
		return worldCtx
	}
	return 1 + uint64(as.Start)<<26 | uint64(as.LogStride)<<20 | uint64(as.Size)
}

type collMsg struct {
	data []byte
	at   int64
}

// memSize models the collective state's retained bytes for the footprint
// census: the struct shell, the per-context sequence map, and any undelivered
// inbox fragments with their payloads (exact lengths — see Ctx.Footprint).
func (s *collState) memSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := int64(unsafe.Sizeof(collState{}))
	b += int64(len(s.seqs)) * (16 + mapEntryOverhead)
	for _, m := range s.inbox {
		b += int64(unsafe.Sizeof(collKey{})) + int64(unsafe.Sizeof(collMsg{})) +
			mapEntryOverhead + int64(len(m.data))
	}
	return b
}

func newCollState() *collState {
	s := &collState{inbox: make(map[collKey]collMsg), seqs: make(map[uint64]uint64)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// handle is the amColl active-message handler.
func (s *collState) handle(src int, args [4]uint64, payload []byte, at int64) {
	s.mu.Lock()
	s.inbox[collKey{ctx: args[0], seq: args[1], round: uint32(args[2]), src: int32(src)}] =
		collMsg{data: append([]byte(nil), payload...), at: at}
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *collState) next(ctx uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seqs[ctx]++
	return s.seqs[ctx]
}

// recv blocks for one fragment and removes it from the inbox.
func (s *collState) recv(ctx, seq uint64, round uint32, src int) collMsg {
	k := collKey{ctx: ctx, seq: seq, round: round, src: int32(src)}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if m, ok := s.inbox[k]; ok {
			delete(s.inbox, k)
			return m
		}
		if s.liveness != nil {
			if err := s.liveness(); err != nil {
				panic(fmt.Errorf("shmem: collective receive from pe %d: %w", src, err))
			}
		}
		s.cond.Wait()
	}
}

// collSendCtx sends one collective fragment. kind attributes the fragment
// in the flow matrix: obs.FlowBarrier for barrier rounds, obs.FlowColl for
// data-carrying collectives.
func (c *Ctx) collSendCtx(ctx uint64, to int, seq uint64, round uint32, data []byte, kind obs.FlowKind) {
	if err := c.conduit.AMRequestKind(to, amColl, [4]uint64{ctx, seq, uint64(round)}, data, kind); err != nil {
		panic(fmt.Errorf("shmem: collective send to pe %d: %w", to, err))
	}
}

func (c *Ctx) collRecvCtx(ctx uint64, seq uint64, round uint32, from int) []byte {
	m := c.coll.recv(ctx, seq, round, from)
	c.clk.AdvanceTo(m.at)
	return m.data
}

// World-context conveniences used by the whole-job collectives.
func (c *Ctx) collSend(to int, seq uint64, round uint32, data []byte) {
	c.collSendCtx(worldCtx, to, seq, round, data, obs.FlowColl)
}

func (c *Ctx) collRecv(seq uint64, round uint32, from int) []byte {
	return c.collRecvCtx(worldCtx, seq, round, from)
}

// BarrierAll is shmem_barrier_all: it completes outstanding puts (quiet) and
// synchronizes all PEs with a dissemination barrier (ceil(log2 N) rounds,
// each PE talking to peers at distance 2^k — which is exactly why global
// barriers during init force O(log P) connections, paper section IV-E).
func (c *Ctx) BarrierAll() {
	start := c.clk.Now()
	c.Quiet()
	if c.n == 1 {
		return
	}
	seq := c.coll.next(worldCtx)
	for k, dist := uint32(0), 1; dist < c.n; k, dist = k+1, dist*2 {
		to := (c.rank + dist) % c.n
		from := (c.rank - dist%c.n + c.n) % c.n
		c.collSendCtx(worldCtx, to, seq, k, nil, obs.FlowBarrier)
		c.collRecv(seq, k, from)
	}
	c.collSpan("barrier", start, c.hBarrier)
}

// BroadcastBytes distributes root's data to all PEs over a binomial tree and
// returns it (root's own buffer is returned on the root).
func (c *Ctx) BroadcastBytes(root int, data []byte) []byte {
	if c.n == 1 {
		return data
	}
	start := c.clk.Now()
	defer c.collSpan("broadcast", start, c.hColl)
	seq := c.coll.next(worldCtx)
	relative := (c.rank - root + c.n) % c.n
	buf := data
	mask := 1
	for mask < c.n {
		if relative&mask != 0 {
			parent := (relative - mask + root) % c.n
			buf = c.collRecv(seq, 0, parent)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < c.n {
			dst := (relative + mask + root) % c.n
			c.collSend(dst, seq, 0, buf)
		}
		mask >>= 1
	}
	return buf
}

// reduceBytes performs an allreduce on opaque fixed-size values: binomial
// reduction to rank 0, then binomial broadcast — the "sparse" collective of
// the paper's Figure 7(b): each PE exchanges with at most 2*ceil(log2 N)
// distinct peers.
func (c *Ctx) reduceBytes(local []byte, combine func(acc, in []byte)) []byte {
	start := c.clk.Now()
	defer c.collSpan("reduce", start, c.hColl)
	acc := append([]byte(nil), local...)
	if c.n > 1 {
		seq := c.coll.next(worldCtx)
		for mask := 1; mask < c.n; mask <<= 1 {
			if c.rank&mask == 0 {
				src := c.rank | mask
				if src < c.n {
					in := c.collRecv(seq, uint32(0), src)
					combine(acc, in)
				}
			} else {
				dst := c.rank &^ mask
				c.collSend(dst, seq, 0, acc)
				break
			}
		}
	}
	return c.BroadcastBytes(0, acc)
}

// FCollectBytes is shmem_fcollect: every PE contributes the same number of
// bytes; all PEs receive the concatenation ordered by rank. It uses Bruck's
// allgather (ceil(log2 N) rounds, doubling blocks) — the "dense" collective
// of the paper's Figure 7(a): total data gathered is N times the
// contribution.
func (c *Ctx) FCollectBytes(contrib []byte) []byte {
	size := len(contrib)
	out := make([]byte, c.n*size)
	copy(out, contrib)
	if c.n == 1 {
		return out
	}
	start := c.clk.Now()
	defer c.collSpan("fcollect", start, c.hColl)
	seq := c.coll.next(worldCtx)
	have := 1
	round := uint32(0)
	for have < c.n {
		cnt := have
		if c.n-have < cnt {
			cnt = c.n - have
		}
		dst := (c.rank - have + c.n) % c.n
		src := (c.rank + have) % c.n
		c.collSend(dst, seq, round, out[:cnt*size])
		in := c.collRecv(seq, round, src)
		copy(out[have*size:], in)
		have += cnt
		round++
	}
	// Bruck leaves block j holding rank (rank+j)%N; rotate into rank order.
	final := make([]byte, c.n*size)
	for j := 0; j < c.n; j++ {
		owner := (c.rank + j) % c.n
		copy(final[owner*size:(owner+1)*size], out[j*size:(j+1)*size])
	}
	return final
}

// CollectBytes is shmem_collect: contributions may differ in length. Sizes
// are allgathered first, then data is gathered to rank 0 and broadcast.
func (c *Ctx) CollectBytes(contrib []byte) []byte {
	sizes := c.FCollectInt64([]int64{int64(len(contrib))})
	total := 0
	myOff := 0
	for r, s := range sizes {
		if r < c.rank {
			myOff += int(s)
		}
		total += int(s)
	}
	seq := c.coll.next(worldCtx)
	// Binomial gather to rank 0 of (offset, data) fragments.
	type frag struct {
		off  int
		data []byte
	}
	frags := []frag{{myOff, contrib}}
	for mask := 1; mask < c.n; mask <<= 1 {
		if c.rank&mask == 0 {
			src := c.rank | mask
			if src < c.n {
				in := c.collRecv(seq, 0, src)
				for len(in) > 0 {
					off := int(binary.LittleEndian.Uint64(in))
					n := int(binary.LittleEndian.Uint64(in[8:]))
					frags = append(frags, frag{off, in[16 : 16+n]})
					in = in[16+n:]
				}
			}
		} else {
			buf := make([]byte, 0, 16+len(contrib))
			for _, f := range frags {
				var hdr [16]byte
				binary.LittleEndian.PutUint64(hdr[:], uint64(f.off))
				binary.LittleEndian.PutUint64(hdr[8:], uint64(len(f.data)))
				buf = append(buf, hdr[:]...)
				buf = append(buf, f.data...)
			}
			c.collSend(c.rank&^mask, seq, 0, buf)
			break
		}
	}
	var out []byte
	if c.rank == 0 {
		out = make([]byte, total)
		for _, f := range frags {
			copy(out[f.off:], f.data)
		}
	}
	return c.BroadcastBytes(0, out)
}

// ReduceOp names the reduction operators of shmem_*_to_all.
type ReduceOp uint8

const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
)

// ReduceInt64 performs an element-wise allreduce over int64 vectors
// (shmem_long_<op>_to_all with the result available on every PE).
func (c *Ctx) ReduceInt64(op ReduceOp, local []int64) []int64 {
	buf := make([]byte, 8*len(local))
	for i, v := range local {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	res := c.reduceBytes(buf, func(acc, in []byte) {
		for i := 0; i < len(acc); i += 8 {
			a := int64(binary.LittleEndian.Uint64(acc[i:]))
			b := int64(binary.LittleEndian.Uint64(in[i:]))
			binary.LittleEndian.PutUint64(acc[i:], uint64(combineInt64(op, a, b)))
		}
	})
	out := make([]int64, len(local))
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(res[8*i:]))
	}
	return out
}

// ReduceFloat64 performs an element-wise allreduce over float64 vectors.
// Bitwise operators are invalid for floating point.
func (c *Ctx) ReduceFloat64(op ReduceOp, local []float64) []float64 {
	buf := make([]byte, 8*len(local))
	for i, v := range local {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	res := c.reduceBytes(buf, func(acc, in []byte) {
		for i := 0; i < len(acc); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(in[i:]))
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(combineFloat64(op, a, b)))
		}
	})
	out := make([]float64, len(local))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(res[8*i:]))
	}
	return out
}

// FCollectFloat64 allgathers equal-length float64 vectors, ordered by rank.
func (c *Ctx) FCollectFloat64(contrib []float64) []float64 {
	buf := make([]byte, 8*len(contrib))
	for i, v := range contrib {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	res := c.FCollectBytes(buf)
	out := make([]float64, c.n*len(contrib))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(res[8*i:]))
	}
	return out
}

// FCollectInt64 allgathers equal-length int64 vectors, ordered by rank.
func (c *Ctx) FCollectInt64(contrib []int64) []int64 {
	buf := make([]byte, 8*len(contrib))
	for i, v := range contrib {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	res := c.FCollectBytes(buf)
	out := make([]int64, c.n*len(contrib))
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(res[8*i:]))
	}
	return out
}

func combineInt64(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	}
	panic("shmem: unknown reduce op")
}

func combineFloat64(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	}
	panic("shmem: reduce op invalid for float64")
}
