package shmem

import (
	"encoding/binary"
	"math"
)

// Generic typed layer. OpenSHMEM defines its RMA/collective surface per C
// type (short, int, long, long long, float, double); Go generics express
// the same families once. The element wire format is little-endian, matching
// the simulated fabric's atomics.

// Element is the constraint covering the OpenSHMEM element types.
type Element interface {
	~int32 | ~int64 | ~uint32 | ~uint64 | ~float32 | ~float64
}

func elemSize[T Element]() int {
	var z T
	switch any(z).(type) {
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

func encodeElem[T Element](b []byte, v T) {
	switch x := any(v).(type) {
	case int32:
		binary.LittleEndian.PutUint32(b, uint32(x))
	case uint32:
		binary.LittleEndian.PutUint32(b, x)
	case float32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(x))
	case int64:
		binary.LittleEndian.PutUint64(b, uint64(x))
	case uint64:
		binary.LittleEndian.PutUint64(b, x)
	case float64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(x))
	}
}

func decodeElem[T Element](b []byte) T {
	var z T
	switch any(z).(type) {
	case int32:
		return any(int32(binary.LittleEndian.Uint32(b))).(T)
	case uint32:
		return any(binary.LittleEndian.Uint32(b)).(T)
	case float32:
		return any(math.Float32frombits(binary.LittleEndian.Uint32(b))).(T)
	case int64:
		return any(int64(binary.LittleEndian.Uint64(b))).(T)
	case uint64:
		return any(binary.LittleEndian.Uint64(b)).(T)
	default:
		return any(math.Float64frombits(binary.LittleEndian.Uint64(b))).(T)
	}
}

func encodeSlice[T Element](src []T) []byte {
	sz := elemSize[T]()
	b := make([]byte, sz*len(src))
	for i, v := range src {
		encodeElem(b[sz*i:], v)
	}
	return b
}

func decodeSlice[T Element](b []byte, n int) []T {
	sz := elemSize[T]()
	out := make([]T, n)
	for i := range out {
		out[i] = decodeElem[T](b[sz*i:])
	}
	return out
}

// Put writes a typed vector into dest at pe (the shmem_TYPE_put family).
func Put[T Element](c *Ctx, dest SymAddr, src []T, pe int) {
	c.PutMem(dest, encodeSlice(src), pe)
}

// Get reads n typed elements from src at pe (the shmem_TYPE_get family).
func Get[T Element](c *Ctx, src SymAddr, n, pe int) []T {
	buf := make([]byte, elemSize[T]()*n)
	c.GetMem(buf, src, pe)
	return decodeSlice[T](buf, n)
}

// P writes one element (shmem_TYPE_p).
func P[T Element](c *Ctx, dest SymAddr, v T, pe int) {
	Put(c, dest, []T{v}, pe)
}

// G reads one element (shmem_TYPE_g).
func G[T Element](c *Ctx, src SymAddr, pe int) T {
	return Get[T](c, src, 1, pe)[0]
}

// Reduce performs a typed allreduce (the shmem_TYPE_OP_to_all family).
// Bitwise operators are rejected for floating-point element types, like the
// specification.
func Reduce[T Element](c *Ctx, op ReduceOp, local []T) []T {
	isFloat := false
	var z T
	switch any(z).(type) {
	case float32, float64:
		isFloat = true
	}
	if isFloat && (op == OpAnd || op == OpOr || op == OpXor) {
		panic("shmem: bitwise reduction invalid for floating-point types")
	}
	sz := elemSize[T]()
	res := c.reduceBytes(encodeSlice(local), func(acc, in []byte) {
		for i := 0; i+sz <= len(acc); i += sz {
			a := decodeElem[T](acc[i:])
			b := decodeElem[T](in[i:])
			encodeElem(acc[i:], combineElem(op, a, b))
		}
	})
	return decodeSlice[T](res, len(local))
}

// FCollect gathers equal-length typed vectors from all PEs, rank-ordered
// (the shmem_fcollect family).
func FCollect[T Element](c *Ctx, contrib []T) []T {
	res := c.FCollectBytes(encodeSlice(contrib))
	return decodeSlice[T](res, c.n*len(contrib))
}

// Broadcast distributes root's typed vector to all PEs (shmem_broadcast).
func Broadcast[T Element](c *Ctx, root int, data []T) []T {
	var buf []byte
	if c.rank == root {
		buf = encodeSlice(data)
	}
	out := c.BroadcastBytes(root, buf)
	return decodeSlice[T](out, len(out)/elemSize[T]())
}

func combineElem[T Element](op ReduceOp, a, b T) T {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	// Bitwise ops: only integer instantiations reach here.
	return bitwiseGeneric(op, a, b)
}

// bitwiseGeneric dispatches the integer bitwise operators.
func bitwiseGeneric[T Element](op ReduceOp, a, b T) T {
	switch x := any(a).(type) {
	case int32:
		return any(int32(bitwiseInt64(op, int64(x), int64(any(b).(int32))))).(T)
	case uint32:
		return any(uint32(bitwiseInt64(op, int64(x), int64(any(b).(uint32))))).(T)
	case int64:
		return any(bitwiseInt64(op, x, any(b).(int64))).(T)
	case uint64:
		return any(uint64(bitwiseInt64(op, int64(x), int64(any(b).(uint64))))).(T)
	}
	panic("shmem: bitwise reduction on non-integer type")
}

func bitwiseInt64(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	}
	panic("shmem: unknown reduce op")
}
