package shmem

import (
	"encoding/binary"
	"fmt"
)

// Segment triplet wire format: base u64 | size u64 | rkey u32.
const segWireLen = 8 + 8 + 4

// encodeOwnSeg serializes this PE's <address, size, rkey> triplet. It is the
// opaque payload the conduit piggybacks on connect messages; the conduit
// never parses it (separation of concerns, paper section IV-C).
func (c *Ctx) encodeOwnSeg() []byte {
	b := make([]byte, segWireLen)
	binary.LittleEndian.PutUint64(b[0:], c.mr.Base())
	binary.LittleEndian.PutUint64(b[8:], uint64(c.mr.Size()))
	binary.LittleEndian.PutUint32(b[16:], c.mr.RKey())
	return b
}

// storeSeg records a peer's segment triplet (from piggyback, broadcast or
// explicit reply) and wakes waiters.
func (c *Ctx) storeSeg(peer int, b []byte, at int64) {
	if len(b) != segWireLen || peer < 0 || peer >= c.n {
		return
	}
	c.segMu.Lock()
	if !c.segs[peer].have {
		c.segs[peer] = segInfo{
			base: binary.LittleEndian.Uint64(b[0:]),
			size: binary.LittleEndian.Uint64(b[8:]),
			rkey: binary.LittleEndian.Uint32(b[16:]),
			have: true,
		}
	}
	c.segMu.Unlock()
	c.segCond.Broadcast()
}

// setOwnSeg installs this PE's own triplet (self put/get are legal).
func (c *Ctx) setOwnSeg() {
	c.segMu.Lock()
	c.segs[c.rank] = segInfo{base: c.mr.Base(), size: uint64(c.mr.Size()), rkey: c.mr.RKey(), have: true}
	c.segMu.Unlock()
}

// broadcastSegs implements the current design's init-time exchange: send the
// triplet to every peer and wait until every peer's triplet has arrived.
// This is the step that forces all-to-all connectivity even on a conduit
// with on-demand support (inefficiency #1 in the paper's section IV-B).
func (c *Ctx) broadcastSegs() {
	own := c.encodeOwnSeg()
	for pe := 0; pe < c.n; pe++ {
		if pe == c.rank {
			continue
		}
		if err := c.conduit.AMRequest(pe, amSegInfo, [4]uint64{}, own); err != nil {
			panic(fmt.Errorf("shmem: segment broadcast to pe %d: %w", pe, err))
		}
	}
	c.segMu.Lock()
	for !c.allSegsLocked() {
		if err := c.conduit.LivenessErr(); err != nil {
			c.segMu.Unlock()
			panic(fmt.Errorf("shmem: segment broadcast: %w", err))
		}
		c.segCond.Wait()
	}
	c.segMu.Unlock()
}

func (c *Ctx) allSegsLocked() bool {
	for i := range c.segs {
		if !c.segs[i].have {
			return false
		}
	}
	return true
}

// fetchSeg obtains a missing segment triplet according to the configured
// strategy.
func (c *Ctx) fetchSeg(pe int) error {
	switch c.opts.SegEx {
	case SegPiggyback:
		// The triplet rides on the connect handshake; after EnsureConnected
		// it is guaranteed to be present.
		if err := c.conduit.EnsureConnected(pe); err != nil {
			return err
		}
		c.segMu.Lock()
		defer c.segMu.Unlock()
		if !c.segs[pe].have {
			return fmt.Errorf("shmem: piggybacked segment info for pe %d missing after connect", pe)
		}
		return nil
	case SegBroadcast:
		c.segMu.Lock()
		defer c.segMu.Unlock()
		if !c.segs[pe].have {
			return fmt.Errorf("shmem: segment info for pe %d missing after init broadcast", pe)
		}
		return nil
	case SegAMOnDemand:
		// Ablation: an explicit request/reply round-trip after connecting —
		// the extra message the piggyback design eliminates.
		if err := c.conduit.EnsureConnected(pe); err != nil {
			return err
		}
		c.segMu.Lock()
		if c.segs[pe].have {
			c.segMu.Unlock()
			return nil
		}
		c.segMu.Unlock()
		if err := c.conduit.AMRequest(pe, amSegReq, [4]uint64{}, nil); err != nil {
			return err
		}
		c.segMu.Lock()
		for !c.segs[pe].have {
			if err := c.conduit.LivenessErr(); err != nil {
				c.segMu.Unlock()
				return fmt.Errorf("shmem: segment fetch from pe %d: %w", pe, err)
			}
			c.segCond.Wait()
		}
		c.segMu.Unlock()
		return nil
	}
	return fmt.Errorf("shmem: unknown segment exchange strategy %d", c.opts.SegEx)
}
