package ib

import (
	"errors"
	"testing"

	"goshmem/internal/vclock"
)

// TestReorderBoundedWindow checks the reordering contract: a held datagram is
// overtaken by later traffic but delivered after at most ReorderWindow
// subsequent sends — the bounded delay the injector documents.
func TestReorderBoundedWindow(t *testing.T) {
	const window = 3
	fi := NewFaultInjector(7)
	fi.ReorderProb = 1.0
	fi.MaxReorders = 1
	fi.ReorderWindow = window
	r := newRig(t, fi)
	u1, u2 := udPair(t, r)

	// Datagram 0 is held; datagrams 1..window age the reorder window and must
	// all be enough to flush it.
	for i := 0; i <= window; i++ {
		if err := u1.PostSend(SendWR{Op: OpSend, Dest: u2.Addr(), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if fi.Reorders() != 1 {
		t.Fatalf("reorders = %d, want 1", fi.Reorders())
	}
	var order []byte
	for i := 0; i <= window; i++ {
		c, ok := r.cq2.Wait()
		if !ok {
			t.Fatal("cq closed")
		}
		order = append(order, c.Data[0])
	}
	if order[0] == 0 {
		t.Fatalf("held datagram was not overtaken: order %v", order)
	}
	seen := false
	for _, b := range order {
		seen = seen || b == 0
	}
	if !seen {
		t.Fatalf("held datagram lost within its window: order %v", order)
	}
}

// TestReleaseHeldFlushesWindow checks that a held datagram with no subsequent
// traffic is still deliverable via ReleaseHeld (teardown/test escape hatch).
func TestReleaseHeldFlushesWindow(t *testing.T) {
	fi := NewFaultInjector(11)
	fi.ReorderProb = 1.0
	fi.MaxReorders = 1
	r := newRig(t, fi)
	u1, u2 := udPair(t, r)
	if err := u1.PostSend(SendWR{Op: OpSend, Dest: u2.Addr(), Data: []byte("late")}); err != nil {
		t.Fatal(err)
	}
	if n := r.cq2.Len(); n != 0 {
		t.Fatalf("datagram delivered despite hold: %d completions", n)
	}
	fi.ReleaseHeld()
	c, ok := r.cq2.Wait()
	if !ok || string(c.Data) != "late" {
		t.Fatalf("held datagram not released: %+v", c)
	}
}

// TestRCFlapErrorsBothEndpoints checks the link-flap contract: the sender sees
// a synchronous ErrLinkDown, both queue pairs land in the Error state, no
// completion is generated, and the adapters' live-RC accounting returns to
// zero exactly once even after the errored QPs are destroyed.
func TestRCFlapErrorsBothEndpoints(t *testing.T) {
	fi := NewFaultInjector(3)
	fi.FlapProb = 1.0
	fi.MaxFlaps = 1
	r := newRig(t, fi)
	q1, q2 := r.connectRC(t)
	if got := r.h1.LiveRC() + r.h2.LiveRC(); got != 2 {
		t.Fatalf("live RC before flap = %d, want 2", got)
	}

	err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("x"), WRID: 9})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("flapped send: %v, want ErrLinkDown", err)
	}
	if q1.State() != StateError || q2.State() != StateError {
		t.Fatalf("states after flap = %v/%v, want Error/Error", q1.State(), q2.State())
	}
	if n := r.cq1.Len() + r.cq2.Len(); n != 0 {
		t.Fatalf("completions after synchronous flap = %d, want 0", n)
	}
	if got := r.h1.LiveRC() + r.h2.LiveRC(); got != 0 {
		t.Fatalf("live RC after flap = %d, want 0", got)
	}
	if fi.Flaps() != 1 {
		t.Fatalf("flaps = %d, want 1", fi.Flaps())
	}

	// MaxFlaps exhausted: the next post fails on the dead QP, not a new flap.
	if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("y")}); !errors.Is(err, ErrBadState) {
		t.Fatalf("post on errored QP: %v, want ErrBadState", err)
	}
	// Destroying errored QPs must not double-decrement the live counter.
	q1.Destroy()
	q2.Destroy()
	if got := r.h1.LiveRC() + r.h2.LiveRC(); got != 0 {
		t.Fatalf("live RC after destroy = %d, want 0", got)
	}
}

// TestSlowdownInjectionChargesClock checks PE slowdown injection: the caller's
// virtual clock pays SlowTime on top of the normal operation cost.
func TestSlowdownInjectionChargesClock(t *testing.T) {
	const slow = int64(5_000_000)
	run := func(fi *FaultInjector) int64 {
		f := NewFabric(vclock.Default(), fi)
		h1, h2 := f.AddHCA(), f.AddHCA()
		c1, c2 := vclock.NewClock(0), vclock.NewClock(0)
		cq1, cq2 := NewCQ(), NewCQ()
		q1 := h1.CreateQP(RC, c1, cq1, cq1)
		q2 := h2.CreateQP(RC, c2, cq2, cq2)
		for _, s := range []struct {
			q *QP
			r Dest
		}{{q1, q2.Addr()}, {q2, q1.Addr()}} {
			if s.q.ToInit() != nil || s.q.ToRTR(s.r) != nil || s.q.ToRTS() != nil {
				t.Fatal("qp setup failed")
			}
		}
		before := c1.Now()
		if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("x"), NoSendCompletion: true}); err != nil {
			t.Fatal(err)
		}
		return c1.Now() - before
	}
	base := run(nil)
	fi := NewFaultInjector(5)
	fi.SlowProb = 1.0
	fi.SlowTime = slow
	slowed := run(fi)
	if slowed != base+slow {
		t.Fatalf("slowdown charge = %d, want %d (+%d over %d)", slowed, base+slow, slow, base)
	}
	if fi.Slowdowns() != 1 {
		t.Fatalf("slowdowns = %d, want 1", fi.Slowdowns())
	}
}

// TestUDFilterOverridesProbabilisticFate checks that a UDFilter verdict wins
// over the probability knobs in both directions.
func TestUDFilterOverridesProbabilisticFate(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.DropProb = 1.0 // everything the filter does not protect is dropped
	fi.UDFilter = func(payload []byte) UDVerdict {
		switch string(payload) {
		case "keep":
			return VerdictDeliver
		case "lose":
			return VerdictDrop
		}
		return VerdictDefault
	}
	r := newRig(t, fi)
	u1, u2 := udPair(t, r)
	for _, msg := range []string{"lose", "other", "keep"} {
		if err := u1.PostSend(SendWR{Op: OpSend, Dest: u2.Addr(), Data: []byte(msg)}); err != nil {
			t.Fatal(err)
		}
	}
	c, ok := r.cq2.Wait()
	if !ok || string(c.Data) != "keep" {
		t.Fatalf("filtered delivery = %+v, want only %q", c, "keep")
	}
	if n := r.cq2.Len(); n != 0 {
		t.Fatalf("unexpected extra deliveries: %d", n)
	}
	if fi.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", fi.Drops())
	}
}

// TestInjectorDeterministicForSeed checks that two injectors with the same
// seed make identical decisions for the same call sequence — the property the
// chaos soak's printed seed relies on.
func TestInjectorDeterministicForSeed(t *testing.T) {
	decisions := func(seed int64) []bool {
		fi := NewFaultInjector(seed)
		fi.DropProb = 0.3
		fi.DupProb = 0.2
		fi.ReorderProb = 0.2
		fi.FlapProb = 0.25
		var out []bool
		for i := 0; i < 200; i++ {
			drop, dup, hold := fi.udFate([]byte{byte(i)})
			out = append(out, drop, dup, hold, fi.rcFlap())
		}
		fi.ReleaseHeld()
		return out
	}
	a, b := decisions(42), decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged for identical seeds", i)
		}
	}
	diff := decisions(43)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams (suspicious)")
	}
}
