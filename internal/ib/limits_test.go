package ib

import (
	"bytes"
	"errors"
	"testing"

	"goshmem/internal/vclock"
)

func TestQPBudgetEnforced(t *testing.T) {
	r := newRig(t, nil)
	r.h1.SetLimits(Limits{MaxQPs: 2}, vclock.NewClock(0))
	q1, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1)
	if err != nil {
		t.Fatalf("alloc 1: %v", err)
	}
	if _, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1); err != nil {
		t.Fatalf("alloc 2: %v", err)
	}
	if _, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1); !errors.Is(err, ErrQPExhausted) {
		t.Fatalf("alloc 3 = %v, want ErrQPExhausted", err)
	}
	if got := r.h1.Stats().AllocFailures; got != 1 {
		t.Fatalf("AllocFailures = %d, want 1", got)
	}
	// Destroying a QP returns its slot to the budget.
	q1.Destroy()
	if _, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1); err != nil {
		t.Fatalf("alloc after destroy: %v", err)
	}
}

// TestQPsDestroyedMonotone: the destroy counter is the adapter-wide progress
// signal allocation ladders key their retry budgets to — it must count every
// destroy exactly once, including double-Destroy calls counted once.
func TestQPsDestroyedMonotone(t *testing.T) {
	r := newRig(t, nil)
	if got := r.h1.Stats().QPsDestroyed; got != 0 {
		t.Fatalf("fresh adapter QPsDestroyed = %d", got)
	}
	a := r.h1.CreateQP(RC, r.c1, r.cq1, r.cq1)
	b := r.h1.CreateQP(RC, r.c1, r.cq1, r.cq1)
	a.Destroy()
	a.Destroy() // idempotent: must not double-count
	if got := r.h1.Stats().QPsDestroyed; got != 1 {
		t.Fatalf("QPsDestroyed after one destroy = %d, want 1", got)
	}
	b.Destroy()
	if got := r.h1.Stats().QPsDestroyed; got != 2 {
		t.Fatalf("QPsDestroyed after two destroys = %d, want 2", got)
	}
}

func TestQPBudgetPanicOnInfallibleCreate(t *testing.T) {
	r := newRig(t, nil)
	r.h1.SetLimits(Limits{MaxQPs: 1}, vclock.NewClock(0))
	r.h1.CreateQP(RC, r.c1, r.cq1, r.cq1)
	defer func() {
		if recover() == nil {
			t.Fatal("CreateQP past the budget did not panic")
		}
	}()
	r.h1.CreateQP(RC, r.c1, r.cq1, r.cq1)
}

func TestQPImpossible(t *testing.T) {
	r := newRig(t, nil)
	r.h1.SetLimits(Limits{MaxQPs: 2}, vclock.NewClock(0))
	if r.h1.QPImpossible() {
		t.Fatal("fresh adapter reports impossible")
	}
	ud, _ := r.h1.TryCreateQP(UD, r.c1, nil, r.cq1)
	rc, _ := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1)
	if ud == nil || rc == nil {
		t.Fatal("setup allocations failed")
	}
	// Cap reached, but the RC QP could be evicted: still possible.
	if r.h1.QPImpossible() {
		t.Fatal("cap with a live RC reports impossible")
	}
	rc.Destroy()
	ud2, err := r.h1.TryCreateQP(UD, r.c1, nil, r.cq1)
	if err != nil {
		t.Fatalf("UD alloc after destroy: %v", err)
	}
	_ = ud2
	// Cap reached and every slot is a UD endpoint (never destroyed before
	// job end): provably impossible.
	if !r.h1.QPImpossible() {
		t.Fatal("cap with only UD endpoints not reported impossible")
	}
}

func TestMRBudgetAndBounce(t *testing.T) {
	r := newRig(t, nil)
	clk := vclock.NewClock(0)
	r.h1.SetLimits(Limits{MaxMRBytes: 256 << 10}, clk)
	if r.h1.BounceSlab() == nil {
		t.Fatal("no bounce slab pre-registered")
	}
	slabBytes := int64(r.h1.BounceSlab().Size())
	m1, err := r.h1.TryRegisterMR(make([]byte, 128<<10), r.c1)
	if err != nil {
		t.Fatalf("register under budget: %v", err)
	}
	// 64K slab + 128K = 192K pinned; another 128K would exceed 256K.
	if _, err := r.h1.TryRegisterMR(make([]byte, 128<<10), r.c1); !errors.Is(err, ErrMRExhausted) {
		t.Fatalf("register past budget = %v, want ErrMRExhausted", err)
	}
	bm, err := r.h1.RegisterBounced(make([]byte, 128<<10), r.c1)
	if err != nil {
		t.Fatalf("RegisterBounced: %v", err)
	}
	if !bm.Bounced() {
		t.Fatal("bounced region not flagged")
	}
	st := r.h1.Stats()
	if st.BouncedMRs != 1 {
		t.Fatalf("BouncedMRs = %d, want 1", st.BouncedMRs)
	}
	if want := slabBytes + 128<<10; st.BytesPinned != want {
		t.Fatalf("BytesPinned = %d, want %d (bounced regions must not pin)", st.BytesPinned, want)
	}
	// Deregistering the pinned region frees budget; the bounced one frees none.
	r.h1.DeregisterMR(m1)
	r.h1.DeregisterMR(bm)
	if got := r.h1.Stats().BytesPinned; got != slabBytes {
		t.Fatalf("BytesPinned after dereg = %d, want %d", got, slabBytes)
	}
}

func TestBounceSlabSkippedWhenBudgetTiny(t *testing.T) {
	r := newRig(t, nil)
	r.h1.SetLimits(Limits{MaxMRBytes: 4 << 10}, vclock.NewClock(0))
	if r.h1.BounceSlab() != nil {
		t.Fatal("tiny budget still got a slab")
	}
	if _, err := r.h1.RegisterBounced(make([]byte, 1<<10), r.c1); !errors.Is(err, ErrMRExhausted) {
		t.Fatalf("RegisterBounced without slab = %v, want ErrMRExhausted", err)
	}
}

// TestBouncedMRDataPath: remote writes, reads and atomics against a bounced
// region land in the right bytes (the staging copy is a timing effect, not a
// data-path rewrite), and cost strictly more virtual time than the same
// traffic against a pinned region.
func TestBouncedMRDataPath(t *testing.T) {
	run := func(bounced bool) (payload []byte, elapsed int64) {
		r := newRig(t, nil)
		if bounced {
			r.h2.SetLimits(Limits{MaxMRBytes: 256 << 10}, vclock.NewClock(0))
		}
		q1, _ := r.connectRC(t)
		buf := make([]byte, 8<<10)
		var mr *MR
		if bounced {
			var err error
			mr, err = r.h2.RegisterBounced(buf, r.c2)
			if err != nil {
				t.Fatalf("RegisterBounced: %v", err)
			}
		} else {
			mr = r.h2.RegisterMR(buf, r.c2)
		}
		start := r.c1.Now()
		data := bytes.Repeat([]byte{0xab}, 4<<10)
		if err := q1.PostSend(SendWR{Op: OpRDMAWrite, WRID: 1, Data: data,
			RemoteAddr: mr.Base(), RKey: mr.RKey()}); err != nil {
			t.Fatalf("write: %v", err)
		}
		if comp, ok := r.cq1.Poll(); !ok || comp.Status != StatusOK {
			t.Fatalf("write completion: %+v ok=%v", comp, ok)
		}
		return append([]byte(nil), buf[:4<<10]...), r.c1.Now() - start
	}
	pinned, tPinned := run(false)
	bounced, tBounced := run(true)
	if !bytes.Equal(pinned, bounced) {
		t.Fatal("bounced region delivered different bytes than pinned")
	}
	if tBounced <= tPinned {
		t.Fatalf("bounced write cost %dns, pinned %dns; staging must cost extra", tBounced, tPinned)
	}
}

// TestRNRNak: a receive queue bounded at depth d NAKs the d+1'th in-flight
// send, and the NAK'd send succeeds after the receiver's drain time passes.
func TestRNRNak(t *testing.T) {
	r := newRig(t, nil)
	r.h2.SetLimits(Limits{RQDepth: 2}, vclock.NewClock(0))
	q1, _ := r.connectRC(t)
	post := func() error {
		return q1.PostSend(SendWR{Op: OpSend, WRID: 9, Data: []byte("x"), NoSendCompletion: true})
	}
	if err := post(); err != nil {
		t.Fatalf("send 1: %v", err)
	}
	if err := post(); err != nil {
		t.Fatalf("send 2: %v", err)
	}
	// Same instant, both slots held: receiver not ready.
	if err := post(); !errors.Is(err, ErrRNR) {
		t.Fatalf("send 3 = %v, want ErrRNR", err)
	}
	if got := r.h2.Stats().RNRNaks; got != 1 {
		t.Fatalf("RNRNaks = %d, want 1", got)
	}
	// After the drain interval the slots are reposted and the retry lands.
	r.c1.Advance(vclock.Default().RQDrain * 4)
	if err := post(); err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
}

// TestRNRNakPreservesOrdering: a NAK'd send must not advance the in-order
// arrival clamp; the retry still arrives after everything already delivered.
func TestRNRNakPreservesOrdering(t *testing.T) {
	r := newRig(t, nil)
	r.h2.SetLimits(Limits{RQDepth: 1}, vclock.NewClock(0))
	q1, _ := r.connectRC(t)
	if err := q1.PostSend(SendWR{Op: OpSend, WRID: 1, Data: []byte("a"), NoSendCompletion: true}); err != nil {
		t.Fatalf("send 1: %v", err)
	}
	first, ok := r.cq2.Poll()
	if !ok {
		t.Fatal("first delivery missing")
	}
	if err := q1.PostSend(SendWR{Op: OpSend, WRID: 2, Data: []byte("b"), NoSendCompletion: true}); !errors.Is(err, ErrRNR) {
		t.Fatalf("send 2 = %v, want ErrRNR", err)
	}
	r.c1.Advance(vclock.Default().RQDrain * 4)
	if err := q1.PostSend(SendWR{Op: OpSend, WRID: 2, Data: []byte("b"), NoSendCompletion: true}); err != nil {
		t.Fatalf("retry: %v", err)
	}
	second, ok := r.cq2.Poll()
	if !ok {
		t.Fatal("second delivery missing")
	}
	if second.VTime <= first.VTime {
		t.Fatalf("retried send arrived at %d, before/with first delivery %d", second.VTime, first.VTime)
	}
}

func TestUnbudgetedReceiveQueueNeverNAKs(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	for i := 0; i < 64; i++ {
		if err := q1.PostSend(SendWR{Op: OpSend, WRID: uint64(i), Data: []byte("x"), NoSendCompletion: true}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := r.h2.Stats().RNRNaks; got != 0 {
		t.Fatalf("RNRNaks = %d on an unbudgeted queue", got)
	}
}

func TestInjectedAllocFaults(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.FailQPAllocOn(2)
	fi.FailMRAllocOn(1)
	r := newRig(t, fi)
	if _, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1); err != nil {
		t.Fatalf("alloc 1: %v", err)
	}
	if _, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1); !errors.Is(err, ErrQPExhausted) {
		t.Fatalf("alloc 2 = %v, want injected ErrQPExhausted", err)
	}
	if _, err := r.h1.TryCreateQP(RC, r.c1, r.cq1, r.cq1); err != nil {
		t.Fatalf("alloc 3: %v", err)
	}
	if _, err := r.h1.TryRegisterMR(make([]byte, 4096), r.c1); !errors.Is(err, ErrMRExhausted) {
		t.Fatalf("mr alloc 1 = %v, want injected ErrMRExhausted", err)
	}
	if _, err := r.h1.TryRegisterMR(make([]byte, 4096), r.c1); err != nil {
		t.Fatalf("mr alloc 2: %v", err)
	}
	// Schedules are per-adapter: h2's own 2nd QP allocation fails too.
	if _, err := r.h2.TryCreateQP(RC, r.c2, r.cq2, r.cq2); err != nil {
		t.Fatalf("h2 alloc 1: %v", err)
	}
	if _, err := r.h2.TryCreateQP(RC, r.c2, r.cq2, r.cq2); !errors.Is(err, ErrQPExhausted) {
		t.Fatalf("h2 alloc 2 = %v, want injected ErrQPExhausted", err)
	}
	if got := fi.AllocFailsInjected(); got != 3 {
		t.Fatalf("AllocFailsInjected = %d, want 3", got)
	}
	// Injected failures are transient, never "impossible": the upper layer
	// must retry, not abort.
	if r.h1.QPImpossible() {
		t.Fatal("injected failure reported as impossible")
	}
}
