// Package ib implements an in-memory simulation of an InfiniBand fabric with
// the verbs object model: host channel adapters (HCAs) addressed by LID,
// queue pairs (QPs) with the Reset->Init->RTR->RTS state machine, completion
// queues, and memory regions with remote keys and bounds/permission checks.
//
// Two transports are provided, matching what the paper's runtime uses:
//
//   - RC (Reliable Connected): connection-oriented, reliable, in-order,
//     supports two-sided sends plus one-sided RDMA read/write and fetching
//     atomics. One QP is required per peer per process.
//   - UD (Unreliable Datagram): connectionless; a single QP can send to any
//     peer given its <lid, qpn> address, but messages are MTU-limited and may
//     be dropped or duplicated (fault injection simulates this).
//
// Data movement is real: RDMA writes copy bytes into the target's registered
// buffer and atomics execute atomically against it. Timing is virtual: every
// operation charges the caller's vclock.Clock using the fabric's CostModel
// and every delivered completion carries its virtual arrival time.
package ib

import (
	"errors"
	"fmt"
)

// QPType distinguishes the simulated transports.
type QPType uint8

const (
	// UD is the Unreliable Datagram transport.
	UD QPType = iota
	// RC is the Reliable Connected transport.
	RC
)

func (t QPType) String() string {
	switch t {
	case UD:
		return "UD"
	case RC:
		return "RC"
	}
	return fmt.Sprintf("QPType(%d)", uint8(t))
}

// QPState is the verbs queue-pair state machine.
type QPState uint8

const (
	// StateReset is the state of a freshly created QP.
	StateReset QPState = iota
	// StateInit allows posting receive buffers.
	StateInit
	// StateRTR (ready-to-receive) can accept incoming messages.
	StateRTR
	// StateRTS (ready-to-send) is fully operational.
	StateRTS
	// StateError marks a broken QP.
	StateError
	// StateDestroyed marks a destroyed QP.
	StateDestroyed
)

func (s QPState) String() string {
	switch s {
	case StateReset:
		return "RESET"
	case StateInit:
		return "INIT"
	case StateRTR:
		return "RTR"
	case StateRTS:
		return "RTS"
	case StateError:
		return "ERROR"
	case StateDestroyed:
		return "DESTROYED"
	}
	return fmt.Sprintf("QPState(%d)", uint8(s))
}

// Opcode identifies the work-request operation.
type Opcode uint8

const (
	// OpSend is a two-sided send consuming a receive slot at the target.
	OpSend Opcode = iota
	// OpRDMAWrite writes Data into the target memory region.
	OpRDMAWrite
	// OpRDMARead reads Len bytes from the target memory region.
	OpRDMARead
	// OpFetchAdd atomically adds Add to a remote uint64 and fetches the old value.
	OpFetchAdd
	// OpCmpSwap atomically compares a remote uint64 with Compare and, if
	// equal, stores Swap; the old value is fetched either way.
	OpCmpSwap
	// OpSwap atomically stores Swap and fetches the old value.
	OpSwap
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpRDMARead:
		return "RDMA_READ"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCmpSwap:
		return "CMP_SWAP"
	case OpSwap:
		return "SWAP"
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// UDMTU is the maximum UD datagram payload in bytes.
const UDMTU = 4096

// RCMTU is the RC path MTU: the link fragments an RC message into packets of
// at most this many bytes, each carrying its own invariant CRC that the
// receiving adapter verifies before DMA. Packet boundaries are where injected
// one-sided data-plane faults act — a packet either lands whole and clean or
// not at all, so torn writes and dropped-corrupt-packet faults expose clean
// whole-packet prefixes, never damaged bytes.
const RCMTU = 4096

// Dest addresses a queue pair on the fabric, the simulated equivalent of the
// <lid, qpn> tuple the paper exchanges out-of-band.
type Dest struct {
	LID uint16
	QPN uint32
}

func (d Dest) String() string { return fmt.Sprintf("%d:%d", d.LID, d.QPN) }

// Errors returned by fabric operations.
var (
	ErrBadState      = errors.New("ib: queue pair in wrong state for operation")
	ErrBadQP         = errors.New("ib: no such queue pair")
	ErrBadLID        = errors.New("ib: no such lid")
	ErrBadRKey       = errors.New("ib: invalid rkey")
	ErrOutOfBounds   = errors.New("ib: remote access out of memory-region bounds")
	ErrMTUExceeded   = errors.New("ib: UD payload exceeds MTU")
	ErrNotConnected  = errors.New("ib: RC queue pair has no remote")
	ErrLinkDown      = errors.New("ib: RC link fault (queue pair in Error state)")
	ErrUnaligned     = errors.New("ib: atomic address not 8-byte aligned")
	ErrOpUnsupported = errors.New("ib: operation not supported on this transport")

	// Resource-exhaustion errors (finite adapter budgets, see Limits). They
	// are returned by the Try* allocation paths; upper layers run their
	// degradation ladders (eviction, bounce-buffering, queued connects) and
	// abort only when forward progress is provably impossible.
	ErrQPExhausted = errors.New("ib: queue-pair budget exhausted on adapter")
	ErrMRExhausted = errors.New("ib: pinned-memory budget exhausted on adapter")

	// ErrRNR is the receiver-not-ready NAK: the target queue pair's receive
	// queue is full, so the send is refused before any byte moves (real RC
	// returns an RNR NAK and the sender retries after a backoff). Only armed
	// when Limits.RQDepth is set; an unbudgeted receive queue never NAKs.
	ErrRNR = errors.New("ib: receiver not ready (receive queue full)")

	// ErrPathDown marks an RC operation refused because the connection's
	// primary path (rail) is down while both queue pairs are healthy: the
	// port flapped, the rail's switch died, or a partition window severs the
	// pair. Deliberately NOT wrapped in ErrLinkDown — the queue pair is not
	// torn down and no byte moved, so the connection manager's first response
	// is Automatic Path Migration to the loaded alternate path (QP.Migrate),
	// falling back to a reconnect on another rail, and finally to suspension,
	// only when every rail between the pair is dead.
	ErrPathDown = errors.New("ib: primary path (rail) down")
)

// RC payload-fault errors. Both wrap ErrLinkDown: the receiving adapter
// detects the damage through the per-packet invariant CRC and kills the
// connection, so the sender observes them exactly like a link fault (both
// queue pairs in the Error state, reconnect required). The ICRC check runs
// before DMA, so no damaged byte ever reaches target memory — but packets
// delivered before the fault have already landed, leaving a clean
// whole-packet prefix the replay must overwrite. errors.Is distinguishes the
// flavor for accounting.
var (
	// ErrRCCorrupt marks a one-sided RC operation whose payload was corrupted
	// in flight: the damaged packet was dropped by the ICRC check (at most a
	// clean prefix of earlier packets landed), then the link tore down.
	// Two-sided sends model the opposite, end-to-end-argument failure —
	// silent corruption delivered past the link CRCs — which the conduit's
	// software integrity trailer exists to catch.
	ErrRCCorrupt = fmt.Errorf("ib: RC payload corrupted in flight: %w", ErrLinkDown)
	// ErrTornWrite marks an RDMA write interrupted by a link fault between
	// packets: a clean whole-packet prefix of the payload was applied to the
	// target memory region, and the visible state at the target is torn until
	// a clean replay overwrites it.
	ErrTornWrite = fmt.Errorf("ib: torn RDMA write (link fault mid-transfer): %w", ErrLinkDown)
)

// Status is the completion status.
type Status uint8

const (
	// StatusOK indicates success.
	StatusOK Status = iota
	// StatusRemoteAccessErr indicates an rkey/bounds failure at the target.
	StatusRemoteAccessErr
	// StatusFlushed indicates the QP was destroyed with the WR outstanding.
	StatusFlushed
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusRemoteAccessErr:
		return "REMOTE_ACCESS_ERR"
	case StatusFlushed:
		return "FLUSHED"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}
