package ib

// MR is a registered memory region. Registration assigns a region of the
// HCA's virtual address space and a remote key; RDMA operations name memory
// as (rkey, virtual address) exactly like the <address, size, rkey> triplets
// OpenSHMEM exchanges for its symmetric segments.
type MR struct {
	hca  *HCA
	base uint64 // virtual address of buf[0]
	buf  []byte
	lkey uint32
	rkey uint32
	// onWrite, when non-nil, is invoked after a remote RDMA write or atomic
	// lands in the region, with the offset/length written and the virtual
	// arrival time. Upper layers use it to implement shmem_wait. It is
	// called without the HCA memory lock held and must not block.
	onWrite func(off, n int, vtime int64)
	dead    bool
	// bounced marks a degraded region registered past the pinned-memory
	// budget: it has no pinned backing of its own, so remote traffic stages
	// through the adapter's bounce slab and pays an extra copy per operation.
	bounced bool
}

// Base returns the region's virtual base address.
func (m *MR) Base() uint64 { return m.base }

// Size returns the registered length in bytes.
func (m *MR) Size() int { return len(m.buf) }

// RKey returns the remote key peers must present to access the region.
func (m *MR) RKey() uint32 { return m.rkey }

// LKey returns the local key.
func (m *MR) LKey() uint32 { return m.lkey }

// Bytes exposes the backing store. The caller owns local reads/writes;
// concurrent remote atomics are serialized by the HCA, so local access to
// bytes that remote atomics may touch should go through LoadUint64.
func (m *MR) Bytes() []byte { return m.buf }

// Bounced reports whether the region is a degraded (unpinned) registration
// that stages remote traffic through the adapter's bounce slab.
func (m *MR) Bounced() bool { return m.bounced }

// SetOnWrite installs the remote-write notification callback.
func (m *MR) SetOnWrite(fn func(off, n int, vtime int64)) { m.onWrite = fn }

// LoadUint64 atomically (with respect to remote fetching atomics) loads the
// little-endian uint64 at the given offset.
func (m *MR) LoadUint64(off int) uint64 {
	m.hca.memMu.Lock()
	defer m.hca.memMu.Unlock()
	return leU64(m.buf[off : off+8])
}

// StoreUint64 atomically stores v at the given offset.
func (m *MR) StoreUint64(off int, v uint64) {
	m.hca.memMu.Lock()
	putLeU64(m.buf[off:off+8], v)
	m.hca.memMu.Unlock()
}

// AddUint64 atomically adds delta to the little-endian uint64 at the given
// offset and returns the new value, serialized against remote atomics and
// the word load/store helpers by the adapter's memory lock. Software-side
// signal delivery (shmem_put_signal's SIGNAL_ADD) lands through this.
func (m *MR) AddUint64(off int, delta uint64) uint64 {
	m.hca.memMu.Lock()
	v := leU64(m.buf[off:off+8]) + delta
	putLeU64(m.buf[off:off+8], v)
	m.hca.memMu.Unlock()
	return v
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
