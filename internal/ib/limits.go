package ib

import (
	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// Limits are an adapter's finite resource budgets — the scarcity the paper's
// endpoint-economy argument rests on. Zero fields are unbounded, and the zero
// value disables the whole resource plane, so unbudgeted runs behave (and
// time) exactly as before.
type Limits struct {
	// MaxQPs caps the number of live queue pairs (UD and RC) on the adapter.
	MaxQPs int
	// MaxMRBytes caps the pinned (registered) bytes on the adapter.
	MaxMRBytes int64
	// RQDepth is the per-RC-QP receive-queue depth: how many delivered but
	// not-yet-reposted messages the target can hold before NAKing senders
	// with ErrRNR.
	RQDepth int
}

const (
	// bounceSlabBytes is the preferred size of the pre-registered bounce
	// slab an adapter keeps for degraded (unpinned) memory regions.
	bounceSlabBytes = 64 << 10
	// minBounceSlab is the smallest useful slab (one page). A pinned-memory
	// budget that cannot spare this leaves no degradation path: registration
	// failures become fatal.
	minBounceSlab = 4 << 10
)

// SetLimits arms the adapter's budgets. When a pinned-memory budget is set,
// it also pre-registers the bounce slab (at most half the budget) while the
// budget is still empty, so the degraded registration path is available
// deterministically from the start rather than racing the first exhausted
// caller. The cluster calls this once per adapter at setup.
func (h *HCA) SetLimits(l Limits, clk *vclock.Clock) {
	h.mu.Lock()
	h.limits = l
	haveSlab := h.slab != nil
	h.mu.Unlock()
	if l.MaxMRBytes <= 0 || haveSlab {
		return
	}
	slab := int64(bounceSlabBytes)
	if slab > l.MaxMRBytes/2 {
		slab = l.MaxMRBytes / 2
	}
	if slab < minBounceSlab {
		return // budget too small to stage through: no bounce path
	}
	buf := make([]byte, slab)
	h.mu.Lock()
	h.slab = h.registerLocked(buf, false)
	g := h.gPinned
	h.mu.Unlock()
	clk.Advance(h.f.model.MemRegTime(len(buf)))
	g.Add(clk.Now(), int64(len(buf)))
}

// Limits returns the adapter's budgets (zero value when unbudgeted).
func (h *HCA) Limits() Limits {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.limits
}

// Limited reports whether any finite budget is armed on this adapter. Upper
// layers use it (like Fabric.Lossy for datagram loss) to arm their
// retry/backpressure machinery only when resource pressure is possible.
func (h *HCA) Limited() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.limits != Limits{}
}

// BounceSlab returns the pre-registered bounce slab, nil when the adapter has
// no pinned-memory budget or the budget was too small to spare one.
func (h *HCA) BounceSlab() *MR {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.slab
}

// QPImpossible reports whether a queue-pair allocation can never succeed on
// this adapter: the budget is exhausted and no RC queue pair is live to ever
// be evicted (the remaining slots are held by UD endpoints, which live for
// the whole job). Connection managers abort — rather than retry — only then.
func (h *HCA) QPImpossible() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.limits.MaxQPs <= 0 || h.liveQPs < h.limits.MaxQPs {
		return false
	}
	for _, q := range h.qps {
		if q != nil && q.typ == RC && q.state != StateDestroyed && q.state != StateError {
			return false
		}
	}
	return true
}

// TryCreateQP is CreateQP under the adapter's budget: it fails with
// ErrQPExhausted when the queue-pair cap is reached or the fault injector
// scheduled this allocation to fail, charging nothing. RC queue pairs
// created under a receive-queue budget get the finite depth.
func (h *HCA) TryCreateQP(typ QPType, clk *vclock.Clock, sendCQ, recvCQ *CQ) (*QP, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.qpAllocs++
	// Injected failures open a detected "alloc" incident (they are budgeted
	// faults the ledger must reconcile); ordinary budget refusals are the
	// resource plane working as designed and stay off the ledger.
	if h.f.faults.failQPAlloc(h.qpAllocs) {
		h.stats.AllocFailures++
		h.ledger.OpenDetected("alloc", "qp", obs.InstJob, obs.InstHCA(h.lid), clk.Now(), "alloc-refused")
		return nil, ErrQPExhausted
	}
	if h.limits.MaxQPs > 0 && h.liveQPs >= h.limits.MaxQPs {
		h.stats.AllocFailures++
		return nil, ErrQPExhausted
	}
	switch typ {
	case UD:
		clk.Advance(h.f.model.UDQPCreate)
	case RC:
		clk.Advance(h.f.model.RCQPCreate)
	}
	q := &QP{hca: h, typ: typ, clk: clk, sendCQ: sendCQ, recvCQ: recvCQ, state: StateReset}
	if typ == RC {
		q.rqDepth = h.limits.RQDepth
	}
	h.qps = append(h.qps, q)
	q.qpn = uint32(len(h.qps))
	h.liveQPs++
	if typ == UD {
		h.stats.QPsCreatedUD++
	} else {
		h.stats.QPsCreatedRC++
	}
	h.gLiveQPs.Add(clk.Now(), 1)
	h.ledger.CloseAll("alloc", []string{"qp"}, obs.InstJob, obs.InstHCA(h.lid), clk.Now(), "alloc-ok")
	return q, nil
}

// TryRegisterMR is RegisterMR under the adapter's budget: it fails with
// ErrMRExhausted when pinning buf would exceed the pinned-byte budget or the
// fault injector scheduled this allocation to fail. Callers degrade to
// RegisterBounced.
func (h *HCA) TryRegisterMR(buf []byte, clk *vclock.Clock) (*MR, error) {
	h.mu.Lock()
	h.mrAllocs++
	if h.f.faults.failMRAlloc(h.mrAllocs) {
		h.stats.AllocFailures++
		h.mu.Unlock()
		h.ledger.OpenDetected("alloc", "mr", obs.InstJob, obs.InstHCA(h.lid), clk.Now(), "alloc-refused")
		return nil, ErrMRExhausted
	}
	if h.limits.MaxMRBytes > 0 && h.stats.BytesPinned+int64(len(buf)) > h.limits.MaxMRBytes {
		h.stats.AllocFailures++
		h.mu.Unlock()
		return nil, ErrMRExhausted
	}
	m := h.registerLocked(buf, false)
	g := h.gPinned
	h.mu.Unlock()
	clk.Advance(h.f.model.MemRegTime(len(buf)))
	g.Add(clk.Now(), int64(len(buf)))
	h.ledger.CloseAll("alloc", []string{"mr"}, obs.InstJob, obs.InstHCA(h.lid), clk.Now(), "alloc-ok")
	return m, nil
}

// RegisterBounced registers buf as a degraded, unpinned region that stages
// its remote traffic through the adapter's pre-registered bounce slab. The
// region keeps a real rkey and backing store — remote RDMA and atomics work
// unchanged — but only the slab's bytes count against the pinned budget
// (they were charged at SetLimits), and every data operation through the
// region pays an extra staging copy. Fails when no slab exists.
func (h *HCA) RegisterBounced(buf []byte, clk *vclock.Clock) (*MR, error) {
	h.mu.Lock()
	if h.slab == nil {
		h.mu.Unlock()
		return nil, ErrMRExhausted
	}
	m := h.registerLocked(buf, true)
	h.stats.BouncedMRs++
	h.mu.Unlock()
	clk.Advance(h.f.model.MemRegBase) // descriptor only: nothing is pinned
	h.ledger.CloseAll("alloc", []string{"mr"}, obs.InstJob, obs.InstHCA(h.lid), clk.Now(), "bounced")
	return m, nil
}
