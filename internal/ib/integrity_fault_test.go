package ib

import (
	"bytes"
	"errors"
	"testing"
)

// TestTornWriteLeavesDeterministicPrefix checks the torn-write contract: the
// injected link fault lands a strict non-empty whole-packet prefix of the
// payload at the target, the sender sees ErrTornWrite (a link fault), both
// queue pairs die, and no completion is generated. The same seed must tear at
// the same packet; a single-packet write must never tear.
func TestTornWriteLeavesDeterministicPrefix(t *testing.T) {
	run := func(seed int64) int {
		fi := NewFaultInjector(seed)
		fi.TornWriteProb = 1.0
		fi.MaxTornWrites = 1
		r := newRig(t, fi)
		q1, q2 := r.connectRC(t)
		heap := make([]byte, 4*RCMTU)
		mr := r.h2.RegisterMR(heap, r.c2)
		payload := bytes.Repeat([]byte{0xAB}, 3*RCMTU)

		err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base() + 16,
			RKey: mr.RKey(), Data: payload, WRID: 4})
		if !errors.Is(err, ErrTornWrite) {
			t.Fatalf("torn write error = %v, want ErrTornWrite", err)
		}
		if !errors.Is(err, ErrLinkDown) {
			t.Fatal("ErrTornWrite must be classified as a link fault")
		}
		if q1.State() != StateError || q2.State() != StateError {
			t.Fatalf("states after tear = %v/%v, want Error/Error", q1.State(), q2.State())
		}
		if n := r.cq1.Len(); n != 0 {
			t.Fatalf("completions after synchronous tear = %d, want 0", n)
		}
		if fi.TornWrites() != 1 {
			t.Fatalf("torn writes = %d, want 1", fi.TornWrites())
		}
		// A strict non-empty whole-packet prefix landed clean; everything
		// past it is untouched.
		torn := 0
		for torn < len(payload) && heap[16+torn] == 0xAB {
			torn++
		}
		if torn == 0 || torn >= len(payload) {
			t.Fatalf("torn prefix = %d bytes, want 0 < n < %d", torn, len(payload))
		}
		if torn%RCMTU != 0 {
			t.Fatalf("torn prefix = %d bytes, want a whole-packet multiple of %d", torn, RCMTU)
		}
		for i := 16 + torn; i < len(heap); i++ {
			if heap[i] != 0 {
				t.Fatalf("byte %d written beyond the torn prefix", i)
			}
		}
		return torn
	}
	if a, b := run(21), run(21); a != b {
		t.Fatalf("same seed tore at different packets: %d vs %d", a, b)
	}

	// A packet is the link's all-or-nothing unit: a single-packet write must
	// land whole even with tearing forced on.
	fi := NewFaultInjector(21)
	fi.TornWriteProb = 1.0
	r := newRig(t, fi)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 64)
	mr := r.h2.RegisterMR(heap, r.c2)
	flag := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base(),
		RKey: mr.RKey(), Data: flag, NoSendCompletion: true}); err != nil {
		t.Fatalf("single-packet write must not tear: %v", err)
	}
	if !bytes.Equal(heap[:8], flag) {
		t.Fatalf("single-packet write landed %v, want %v", heap[:8], flag)
	}
	if fi.TornWrites() != 0 {
		t.Fatalf("single-packet write counted a tear: %d", fi.TornWrites())
	}
}

// TestRCSendCorruptionIsSilentSingleBitFlip checks the two-sided corruption
// contract: the delivered copy differs from the posted payload in exactly one
// bit, the sender's buffer stays pristine (retained for software replay), and
// the fabric reports success — detection belongs to the conduit's trailer.
func TestRCSendCorruptionIsSilentSingleBitFlip(t *testing.T) {
	fi := NewFaultInjector(5)
	fi.RCCorruptProb = 1.0
	fi.MaxRCCorrupts = 1
	r := newRig(t, fi)
	q1, _ := r.connectRC(t)
	payload := []byte("integrity-trailer-protected")
	orig := append([]byte(nil), payload...)

	if err := q1.PostSend(SendWR{Op: OpSend, Data: payload, NoSendCompletion: true}); err != nil {
		t.Fatalf("corrupted send must not error at the fabric layer: %v", err)
	}
	c, ok := r.cq2.Wait()
	if !ok {
		t.Fatal("cq closed")
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("sender's buffer was damaged; replay would resend garbage")
	}
	flipped := 0
	for i := range c.Data {
		b := c.Data[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("delivered copy differs in %d bits, want exactly 1", flipped)
	}
	if fi.RCCorrupts() != 1 {
		t.Fatalf("rc corrupts = %d, want 1", fi.RCCorrupts())
	}

	// Budget exhausted: the next send is clean.
	if err := q1.PostSend(SendWR{Op: OpSend, Data: orig, NoSendCompletion: true}); err != nil {
		t.Fatal(err)
	}
	if c, ok := r.cq2.Wait(); !ok || !bytes.Equal(c.Data, orig) {
		t.Fatalf("post-budget send damaged: %q", c.Data)
	}
}

// TestRDMAWriteCorruptionDropsPacketBeforeDMA checks one-sided write
// corruption: the damaged packet fails the receiving adapter's ICRC check and
// is dropped before DMA, so no garbage ever reaches target memory — at most a
// clean whole-packet prefix lands. The failure then surfaces as ErrRCCorrupt
// and both queue pairs die; recovery is replay-after-reconnect.
func TestRDMAWriteCorruptionDropsPacketBeforeDMA(t *testing.T) {
	// Single-packet write: the one packet is the corrupt one, so nothing at
	// all lands — a corrupted flag put can never show a garbage stamp to a
	// polling waiter.
	fi := NewFaultInjector(13)
	fi.RCCorruptProb = 1.0
	fi.MaxRCCorrupts = 1
	r := newRig(t, fi)
	q1, q2 := r.connectRC(t)
	heap := make([]byte, 128)
	mr := r.h2.RegisterMR(heap, r.c2)
	payload := bytes.Repeat([]byte{0x55}, 32)

	err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base(), RKey: mr.RKey(), Data: payload})
	if !errors.Is(err, ErrRCCorrupt) {
		t.Fatalf("corrupted RDMA write: %v, want ErrRCCorrupt", err)
	}
	if !errors.Is(err, ErrLinkDown) {
		t.Fatal("ErrRCCorrupt must be classified as a link fault")
	}
	if q1.State() != StateError || q2.State() != StateError {
		t.Fatalf("states = %v/%v, want Error/Error", q1.State(), q2.State())
	}
	if !bytes.Equal(heap, make([]byte, 128)) {
		t.Fatal("dropped corrupt packet still modified target memory")
	}
	if !bytes.Equal(payload, bytes.Repeat([]byte{0x55}, 32)) {
		t.Fatal("sender's buffer was damaged")
	}

	// Multi-packet write: whatever lands is a clean whole-packet prefix of
	// the payload, never damaged bytes.
	fi2 := NewFaultInjector(99)
	fi2.RCCorruptProb = 1.0
	fi2.MaxRCCorrupts = 1
	r2 := newRig(t, fi2)
	p1, _ := r2.connectRC(t)
	big := make([]byte, 4*RCMTU)
	bigMR := r2.h2.RegisterMR(big, r2.c2)
	bigPayload := bytes.Repeat([]byte{0xA7}, 3*RCMTU)

	err = p1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: bigMR.Base(), RKey: bigMR.RKey(), Data: bigPayload})
	if !errors.Is(err, ErrRCCorrupt) {
		t.Fatalf("corrupted multi-packet write: %v, want ErrRCCorrupt", err)
	}
	landed := 0
	for landed < len(bigPayload) && big[landed] == 0xA7 {
		landed++
	}
	if landed%RCMTU != 0 {
		t.Fatalf("landed prefix = %d bytes, want a whole-packet multiple of %d", landed, RCMTU)
	}
	for i := landed; i < len(big); i++ {
		if big[i] != 0 {
			t.Fatalf("byte %d modified past the clean prefix", i)
		}
	}
}

// TestRDMAReadCorruptionDeliversNothing checks read-response corruption: the
// caller gets ErrRCCorrupt, the link dies, and no data is returned — reads
// have no remote side effect, so replay after reconnect is always safe.
func TestRDMAReadCorruptionDeliversNothing(t *testing.T) {
	fi := NewFaultInjector(17)
	fi.RCCorruptProb = 1.0
	fi.MaxRCCorrupts = 1
	r := newRig(t, fi)
	q1, q2 := r.connectRC(t)
	heap := bytes.Repeat([]byte{0xEE}, 64)
	mr := r.h2.RegisterMR(heap, r.c2)

	err := q1.PostSend(SendWR{Op: OpRDMARead, RemoteAddr: mr.Base(), RKey: mr.RKey(), Len: 32, WRID: 1})
	if !errors.Is(err, ErrRCCorrupt) {
		t.Fatalf("corrupted read: %v, want ErrRCCorrupt", err)
	}
	if q1.State() != StateError || q2.State() != StateError {
		t.Fatalf("states = %v/%v, want Error/Error", q1.State(), q2.State())
	}
	if n := r.cq1.Len(); n != 0 {
		t.Fatalf("completions after failed read = %d, want 0", n)
	}
	if !bytes.Equal(heap, bytes.Repeat([]byte{0xEE}, 64)) {
		t.Fatal("read corruption modified target memory")
	}
}
