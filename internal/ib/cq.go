package ib

import "sync"

// Completion is a completion-queue entry. For receive-side completions
// (Recv == true) it carries the delivered payload and the source address;
// for send-side completions it reports the outcome of a posted work request
// and, for RDMA reads and atomics, the fetched data.
type Completion struct {
	// WRID echoes SendWR.WRID for send completions; zero for receives.
	WRID uint64
	// QPN is the local queue pair the completion belongs to.
	QPN uint32
	// Src is the remote queue pair (receive completions only).
	Src Dest
	// Op is the operation that completed.
	Op Opcode
	// Recv marks target-side receive completions.
	Recv bool
	// Data holds the received payload (receives) or the fetched bytes
	// (RDMA read completions).
	Data []byte
	// Old is the previous remote value for atomic completions.
	Old uint64
	// Status reports success or failure.
	Status Status
	// VTime is the virtual time at which the completion occurred: the
	// arrival time at the target for receives, or the time the initiator
	// learned of completion (e.g. after the hardware ack) for sends.
	VTime int64
	// Imm is an immediate value carried with sends (used by upper layers
	// for framing).
	Imm uint32
}

// CQ is an unbounded completion queue. It is unbounded so that a slow
// consumer can never block a sender inside the fabric, which would distort
// virtual-time accounting; flow control belongs to the layers above.
type CQ struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Completion
	head   int
	closed bool
}

// NewCQ creates an empty completion queue.
func NewCQ() *CQ {
	q := &CQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a completion and wakes one waiter.
func (q *CQ) Push(c Completion) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.buf = append(q.buf, c)
	q.mu.Unlock()
	q.cond.Signal()
}

// Poll removes and returns the oldest completion without blocking. ok is
// false when the queue is empty.
func (q *CQ) Poll() (c Completion, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.takeLocked()
}

// Wait blocks until a completion is available or the queue is closed. ok is
// false only when the queue has been closed and drained.
func (q *CQ) Wait() (c Completion, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if c, ok = q.takeLocked(); ok {
			return c, true
		}
		if q.closed {
			return Completion{}, false
		}
		q.cond.Wait()
	}
}

// Close wakes all waiters; pending completions can still be drained.
func (q *CQ) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len reports the number of queued completions.
func (q *CQ) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

func (q *CQ) takeLocked() (Completion, bool) {
	if q.head >= len(q.buf) {
		return Completion{}, false
	}
	c := q.buf[q.head]
	q.buf[q.head] = Completion{} // allow payload GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 4096 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return c, true
}
