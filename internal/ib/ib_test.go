package ib

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"goshmem/internal/vclock"
)

// testRig wires a two-node fabric with one PE per node.
type testRig struct {
	f        *Fabric
	h1, h2   *HCA
	c1, c2   *vclock.Clock
	cq1, cq2 *CQ // shared send+recv CQ per PE, like the conduit uses
}

func newRig(t *testing.T, faults *FaultInjector) *testRig {
	t.Helper()
	f := NewFabric(vclock.Default(), faults)
	return &testRig{
		f: f, h1: f.AddHCA(), h2: f.AddHCA(),
		c1: vclock.NewClock(0), c2: vclock.NewClock(0),
		cq1: NewCQ(), cq2: NewCQ(),
	}
}

// connectRC creates and connects an RC pair between the rig's two PEs.
func (r *testRig) connectRC(t *testing.T) (*QP, *QP) {
	t.Helper()
	q1 := r.h1.CreateQP(RC, r.c1, r.cq1, r.cq1)
	q2 := r.h2.CreateQP(RC, r.c2, r.cq2, r.cq2)
	for _, step := range []struct {
		q      *QP
		remote Dest
	}{{q1, q2.Addr()}, {q2, q1.Addr()}} {
		if err := step.q.ToInit(); err != nil {
			t.Fatalf("ToInit: %v", err)
		}
		if err := step.q.ToRTR(step.remote); err != nil {
			t.Fatalf("ToRTR: %v", err)
		}
		if err := step.q.ToRTS(); err != nil {
			t.Fatalf("ToRTS: %v", err)
		}
	}
	return q1, q2
}

func TestQPStateMachine(t *testing.T) {
	r := newRig(t, nil)
	q := r.h1.CreateQP(RC, r.c1, r.cq1, r.cq1)
	if q.State() != StateReset {
		t.Fatalf("new QP state = %v", q.State())
	}
	if err := q.ToRTR(Dest{1, 1}); err != ErrBadState {
		t.Fatalf("ToRTR from RESET: %v, want ErrBadState", err)
	}
	if err := q.ToRTS(); err != ErrBadState {
		t.Fatalf("ToRTS from RESET: %v, want ErrBadState", err)
	}
	if err := q.ToInit(); err != nil {
		t.Fatal(err)
	}
	if err := q.ToInit(); err != ErrBadState {
		t.Fatalf("double ToInit: %v", err)
	}
	if err := q.ToRTR(Dest{}); err != ErrNotConnected {
		t.Fatalf("RC ToRTR without remote: %v, want ErrNotConnected", err)
	}
	if err := q.ToRTR(Dest{LID: 2, QPN: 9}); err != nil {
		t.Fatal(err)
	}
	if err := q.PostSend(SendWR{Op: OpSend, Data: []byte("x")}); err != ErrBadState {
		t.Fatalf("PostSend in RTR: %v, want ErrBadState", err)
	}
	if err := q.ToRTS(); err != nil {
		t.Fatal(err)
	}
	if q.State() != StateRTS {
		t.Fatalf("state = %v, want RTS", q.State())
	}
	q.Destroy()
	if r.h1.QP(q.QPN()) != nil {
		t.Fatal("destroyed QP still visible")
	}
}

func TestQPCreationChargesClock(t *testing.T) {
	r := newRig(t, nil)
	before := r.c1.Now()
	r.h1.CreateQP(RC, r.c1, nil, r.cq1)
	afterRC := r.c1.Now()
	r.h1.CreateQP(UD, r.c1, nil, r.cq1)
	afterUD := r.c1.Now()
	rcCost, udCost := afterRC-before, afterUD-afterRC
	if rcCost <= 0 || udCost <= 0 {
		t.Fatal("QP creation must charge virtual time")
	}
	if udCost >= rcCost {
		t.Fatalf("UD QP (%d) should be cheaper than RC QP (%d)", udCost, rcCost)
	}
	st := r.h1.Stats()
	if st.QPsCreatedRC != 1 || st.QPsCreatedUD != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func udPair(t *testing.T, r *testRig) (*QP, *QP) {
	t.Helper()
	mk := func(h *HCA, c *vclock.Clock, cq *CQ) *QP {
		q := h.CreateQP(UD, c, nil, cq)
		if err := q.ToInit(); err != nil {
			t.Fatal(err)
		}
		if err := q.ToRTR(Dest{}); err != nil {
			t.Fatal(err)
		}
		if err := q.ToRTS(); err != nil {
			t.Fatal(err)
		}
		return q
	}
	return mk(r.h1, r.c1, r.cq1), mk(r.h2, r.c2, r.cq2)
}

func TestUDRoundtrip(t *testing.T) {
	r := newRig(t, nil)
	u1, u2 := udPair(t, r)
	msg := []byte("connect request")
	if err := u1.PostSend(SendWR{Op: OpSend, Dest: u2.Addr(), Data: msg, Imm: 42}); err != nil {
		t.Fatal(err)
	}
	c, ok := r.cq2.Wait()
	if !ok || !c.Recv {
		t.Fatal("no receive completion")
	}
	if !bytes.Equal(c.Data, msg) || c.Imm != 42 {
		t.Fatalf("got %q imm %d", c.Data, c.Imm)
	}
	if c.Src != u1.Addr() {
		t.Fatalf("src = %v, want %v", c.Src, u1.Addr())
	}
	if c.VTime <= 0 {
		t.Fatal("arrival time not positive")
	}
}

func TestUDMTUAndUnknownTarget(t *testing.T) {
	r := newRig(t, nil)
	u1, _ := udPair(t, r)
	if err := u1.PostSend(SendWR{Op: OpSend, Dest: Dest{2, 1}, Data: make([]byte, UDMTU+1)}); err != ErrMTUExceeded {
		t.Fatalf("MTU: %v", err)
	}
	// Unknown LID/QPN vanish silently, like real UD.
	if err := u1.PostSend(SendWR{Op: OpSend, Dest: Dest{77, 1}, Data: []byte("x")}); err != nil {
		t.Fatalf("unknown lid: %v", err)
	}
	if err := u1.PostSend(SendWR{Op: OpSend, Dest: Dest{2, 999}, Data: []byte("x")}); err != nil {
		t.Fatalf("unknown qpn: %v", err)
	}
	if n := r.cq2.Len(); n != 0 {
		t.Fatalf("unexpected deliveries: %d", n)
	}
	// RDMA on UD is unsupported.
	if err := u1.PostSend(SendWR{Op: OpRDMAWrite, Dest: Dest{2, 1}}); err != ErrOpUnsupported {
		t.Fatalf("RDMA on UD: %v", err)
	}
}

func TestUDDropAndDuplicate(t *testing.T) {
	fi := NewFaultInjector(1)
	fi.DropFirstN = 2
	r := newRig(t, fi)
	u1, u2 := udPair(t, r)
	for i := 0; i < 3; i++ {
		if err := u1.PostSend(SendWR{Op: OpSend, Dest: u2.Addr(), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	c, ok := r.cq2.Wait()
	if !ok || c.Data[0] != 2 {
		t.Fatalf("expected only third datagram, got %v", c)
	}
	if fi.Drops() != 2 {
		t.Fatalf("drops = %d", fi.Drops())
	}

	fi2 := NewFaultInjector(2)
	fi2.DupProb = 1.0
	r2 := newRig(t, fi2)
	v1, v2 := udPair(t, r2)
	if err := v1.PostSend(SendWR{Op: OpSend, Dest: v2.Addr(), Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	a, _ := r2.cq2.Wait()
	b, _ := r2.cq2.Wait()
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("duplicate should match original")
	}
	if b.VTime <= a.VTime {
		t.Fatal("duplicate should arrive later")
	}
}

func TestRCSendOrderedAndTimed(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	for i := 0; i < 20; i++ {
		if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte{byte(i)}, NoSendCompletion: true}); err != nil {
			t.Fatal(err)
		}
	}
	last := int64(-1)
	for i := 0; i < 20; i++ {
		c, ok := r.cq2.Wait()
		if !ok {
			t.Fatal("cq closed")
		}
		if int(c.Data[0]) != i {
			t.Fatalf("out of order: got %d want %d", c.Data[0], i)
		}
		if c.VTime <= last {
			t.Fatalf("arrival times not increasing: %d <= %d", c.VTime, last)
		}
		last = c.VTime
	}
}

func TestRDMAWriteReadRoundtrip(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 4096)
	mr := r.h2.RegisterMR(heap, r.c2)

	payload := []byte("symmetric heap payload")
	if err := q1.PostSend(SendWR{Op: OpRDMAWrite, WRID: 7,
		RemoteAddr: mr.Base() + 100, RKey: mr.RKey(), Data: payload}); err != nil {
		t.Fatal(err)
	}
	c, _ := r.cq1.Wait()
	if c.Status != StatusOK || c.WRID != 7 {
		t.Fatalf("write completion: %+v", c)
	}
	if !bytes.Equal(heap[100:100+len(payload)], payload) {
		t.Fatal("RDMA write did not land")
	}

	if err := q1.PostSend(SendWR{Op: OpRDMARead, WRID: 8,
		RemoteAddr: mr.Base() + 100, RKey: mr.RKey(), Len: len(payload)}); err != nil {
		t.Fatal(err)
	}
	c, _ = r.cq1.Wait()
	if c.Status != StatusOK || !bytes.Equal(c.Data, payload) {
		t.Fatalf("read completion: %+v", c)
	}
}

func TestRDMAFaults(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 256)
	mr := r.h2.RegisterMR(heap, r.c2)

	cases := []SendWR{
		{Op: OpRDMAWrite, RemoteAddr: mr.Base() + 250, RKey: mr.RKey(), Data: make([]byte, 16)}, // overrun
		{Op: OpRDMAWrite, RemoteAddr: mr.Base() - 8, RKey: mr.RKey(), Data: make([]byte, 4)},    // underrun
		{Op: OpRDMAWrite, RemoteAddr: mr.Base(), RKey: 0xdeadbeef, Data: make([]byte, 4)},       // bad rkey
		{Op: OpRDMARead, RemoteAddr: mr.Base() + 200, RKey: mr.RKey(), Len: 100},                // read overrun
	}
	for i, wr := range cases {
		if err := q1.PostSend(wr); err != nil {
			t.Fatalf("case %d: sync err %v", i, err)
		}
		c, _ := r.cq1.Wait()
		if c.Status != StatusRemoteAccessErr {
			t.Fatalf("case %d: status %v, want REMOTE_ACCESS_ERR", i, c.Status)
		}
	}
	for _, b := range heap {
		if b != 0 {
			t.Fatal("faulting access corrupted memory")
		}
	}

	// Deregistered MR must fault.
	r.h2.DeregisterMR(mr)
	if err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base(), RKey: mr.RKey(), Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	c, _ := r.cq1.Wait()
	if c.Status != StatusRemoteAccessErr {
		t.Fatalf("write to dead MR: %v", c.Status)
	}
}

func TestAtomics(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 64)
	mr := r.h2.RegisterMR(heap, r.c2)

	post := func(wr SendWR) Completion {
		t.Helper()
		if err := q1.PostSend(wr); err != nil {
			t.Fatal(err)
		}
		c, _ := r.cq1.Wait()
		if c.Status != StatusOK {
			t.Fatalf("atomic failed: %+v", c)
		}
		return c
	}

	addr := mr.Base() + 8
	if old := post(SendWR{Op: OpFetchAdd, RemoteAddr: addr, RKey: mr.RKey(), Add: 5}).Old; old != 0 {
		t.Fatalf("fetch-add old = %d", old)
	}
	if old := post(SendWR{Op: OpFetchAdd, RemoteAddr: addr, RKey: mr.RKey(), Add: 3}).Old; old != 5 {
		t.Fatalf("fetch-add old = %d, want 5", old)
	}
	if got := mr.LoadUint64(8); got != 8 {
		t.Fatalf("value = %d, want 8", got)
	}
	// Failed compare-and-swap leaves the value alone.
	if old := post(SendWR{Op: OpCmpSwap, RemoteAddr: addr, RKey: mr.RKey(), Compare: 99, Swap: 1}).Old; old != 8 {
		t.Fatalf("cswap old = %d", old)
	}
	if got := mr.LoadUint64(8); got != 8 {
		t.Fatal("failed cswap modified value")
	}
	// Successful compare-and-swap.
	post(SendWR{Op: OpCmpSwap, RemoteAddr: addr, RKey: mr.RKey(), Compare: 8, Swap: 77})
	if got := mr.LoadUint64(8); got != 77 {
		t.Fatalf("cswap value = %d", got)
	}
	if old := post(SendWR{Op: OpSwap, RemoteAddr: addr, RKey: mr.RKey(), Swap: 123}).Old; old != 77 {
		t.Fatalf("swap old = %d", old)
	}
	// Unaligned atomics are rejected synchronously.
	if err := q1.PostSend(SendWR{Op: OpFetchAdd, RemoteAddr: mr.Base() + 3, RKey: mr.RKey(), Add: 1}); err != ErrUnaligned {
		t.Fatalf("unaligned: %v", err)
	}
}

// Property: concurrent remote fetch-adds from many QPs sum exactly.
func TestAtomicFetchAddConcurrent(t *testing.T) {
	f := NewFabric(vclock.Default(), nil)
	target := f.AddHCA()
	tclk := vclock.NewClock(0)
	heap := make([]byte, 8)
	mr := target.RegisterMR(heap, tclk)
	targetCQ := NewCQ()
	tqps := make([]*QP, 0)

	const workers, adds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h := f.AddHCA()
		clk := vclock.NewClock(0)
		cq := NewCQ()
		q := h.CreateQP(RC, clk, cq, cq)
		tq := target.CreateQP(RC, tclk, nil, targetCQ)
		mustConnect(t, q, tq)
		tqps = append(tqps, tq)
		wg.Add(1)
		go func(q *QP, cq *CQ, id int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				if err := q.PostSend(SendWR{Op: OpFetchAdd, RemoteAddr: mr.Base(), RKey: mr.RKey(), Add: uint64(id + 1)}); err != nil {
					t.Errorf("post: %v", err)
					return
				}
				if c, _ := cq.Wait(); c.Status != StatusOK {
					t.Errorf("completion: %+v", c)
					return
				}
			}
		}(q, cq, w)
	}
	wg.Wait()
	want := uint64(0)
	for w := 0; w < workers; w++ {
		want += uint64(w+1) * adds
	}
	if got := mr.LoadUint64(0); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	_ = tqps
}

func mustConnect(t *testing.T, a, b *QP) {
	t.Helper()
	for _, s := range []struct {
		q *QP
		r Dest
	}{{a, b.Addr()}, {b, a.Addr()}} {
		if err := s.q.ToInit(); err != nil {
			t.Fatal(err)
		}
		if err := s.q.ToRTR(s.r); err != nil {
			t.Fatal(err)
		}
		if err := s.q.ToRTS(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnWriteNotification(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 128)
	mr := r.h2.RegisterMR(heap, r.c2)
	var mu sync.Mutex
	var got []int
	mr.SetOnWrite(func(off, n int, vtime int64) {
		mu.Lock()
		got = append(got, off, n)
		mu.Unlock()
	})
	if err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base() + 16, RKey: mr.RKey(), Data: make([]byte, 4), NoSendCompletion: true}); err != nil {
		t.Fatal(err)
	}
	if err := q1.PostSend(SendWR{Op: OpFetchAdd, RemoteAddr: mr.Base() + 32, RKey: mr.RKey(), Add: 1}); err != nil {
		t.Fatal(err)
	}
	r.cq1.Wait() // atomic completion ensures both writes done
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 4 || got[0] != 16 || got[1] != 4 || got[2] != 32 || got[3] != 8 {
		t.Fatalf("onWrite calls = %v", got)
	}
}

func TestMRGuardSpacing(t *testing.T) {
	r := newRig(t, nil)
	a := r.h1.RegisterMR(make([]byte, 100), r.c1)
	b := r.h1.RegisterMR(make([]byte, 100), r.c1)
	if a.Base()+uint64(a.Size()) >= b.Base() {
		t.Fatal("regions not separated by guard space")
	}
	if a.RKey() == b.RKey() {
		t.Fatal("rkeys must be unique")
	}
}

func TestCachePenalty(t *testing.T) {
	model := vclock.Default()
	model.HCACacheQPs = 4
	f := NewFabric(model, nil)
	h1, h2 := f.AddHCA(), f.AddHCA()
	c1, c2 := vclock.NewClock(0), vclock.NewClock(0)
	cq1, cq2 := NewCQ(), NewCQ()

	// First connection: under cache limit.
	q1 := h1.CreateQP(RC, c1, cq1, cq1)
	q2 := h2.CreateQP(RC, c2, nil, cq2)
	mustConnect(t, q1, q2)
	base := c1.Now()
	if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	c, _ := cq2.Wait()
	fastLat := c.VTime - base

	// Oversubscribe the target HCA's endpoint cache.
	for i := 0; i < 10; i++ {
		a := h1.CreateQP(RC, c1, nil, cq1)
		b := h2.CreateQP(RC, c2, nil, cq2)
		mustConnect(t, a, b)
	}
	base = c1.Now()
	if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	c, _ = cq2.Wait()
	slowLat := c.VTime - base
	if slowLat <= fastLat {
		t.Fatalf("cache thrash should slow messages: fast=%d slow=%d", fastLat, slowLat)
	}
	if h2.Stats().CacheMisses == 0 {
		t.Fatal("no cache misses recorded")
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	f := NewFabric(vclock.Default(), nil)
	h1, h2 := f.AddHCA(), f.AddHCA()
	c1, c2, c3 := vclock.NewClock(0), vclock.NewClock(0), vclock.NewClock(0)
	cqA, cqB, cqC := NewCQ(), NewCQ(), NewCQ()

	// Intra-node pair: both QPs on h1.
	a := h1.CreateQP(RC, c1, nil, cqA)
	b := h1.CreateQP(RC, c2, nil, cqB)
	mustConnect(t, a, b)
	// Inter-node pair: h1 -> h2.
	x := h1.CreateQP(RC, c1, nil, cqA)
	y := h2.CreateQP(RC, c3, nil, cqC)
	mustConnect(t, x, y)

	t0 := c1.Now()
	if err := a.PostSend(SendWR{Op: OpSend, Data: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	cb, _ := cqB.Wait()
	intra := cb.VTime - t0

	t0 = c1.Now()
	if err := x.PostSend(SendWR{Op: OpSend, Data: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	cc, _ := cqC.Wait()
	inter := cc.VTime - t0
	if intra >= inter {
		t.Fatalf("intra-node (%d) should beat inter-node (%d)", intra, inter)
	}
}

// Property: for any sequence of in-bounds RDMA writes, a final read of the
// whole region matches a reference buffer maintained locally.
func TestRDMAWriteReadProperty(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	const size = 512
	heap := make([]byte, size)
	mr := r.h2.RegisterMR(heap, r.c2)
	ref := make([]byte, size)

	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		for _, op := range ops {
			off := int(op.Off) % size
			n := len(op.Data)
			if n > size-off {
				n = size - off
			}
			if n == 0 {
				continue
			}
			if err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base() + uint64(off),
				RKey: mr.RKey(), Data: op.Data[:n]}); err != nil {
				return false
			}
			if c, _ := r.cq1.Wait(); c.Status != StatusOK {
				return false
			}
			copy(ref[off:], op.Data[:n])
		}
		if err := q1.PostSend(SendWR{Op: OpRDMARead, RemoteAddr: mr.Base(), RKey: mr.RKey(), Len: size}); err != nil {
			return false
		}
		c, _ := r.cq1.Wait()
		return c.Status == StatusOK && bytes.Equal(c.Data, ref)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCQPollAndClose(t *testing.T) {
	q := NewCQ()
	if _, ok := q.Poll(); ok {
		t.Fatal("empty Poll returned ok")
	}
	for i := 0; i < 10000; i++ {
		q.Push(Completion{WRID: uint64(i)})
	}
	for i := 0; i < 10000; i++ {
		c, ok := q.Poll()
		if !ok || c.WRID != uint64(i) {
			t.Fatalf("poll %d: %v %v", i, c, ok)
		}
	}
	done := make(chan struct{})
	go func() {
		if _, ok := q.Wait(); ok {
			t.Error("Wait on closed queue returned ok")
		}
		close(done)
	}()
	q.Close()
	<-done
}

func TestDestroyedTargetSendFails(t *testing.T) {
	r := newRig(t, nil)
	q1, q2 := r.connectRC(t)
	q2.Destroy()
	if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("x")}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send to destroyed QP: %v, want ErrLinkDown", err)
	}
	// The failure is synchronous and both-sided: the local QP errors out and
	// no completion (not even a flush) is generated, so a connection manager
	// can requeue the work request behind a fresh handshake without risking
	// duplicate delivery.
	if st := q1.State(); st != StateError {
		t.Fatalf("local QP state after link fault = %v, want Error", st)
	}
	if n := r.cq1.Len(); n != 0 {
		t.Fatalf("completions after synchronous link fault = %d, want 0", n)
	}
}
