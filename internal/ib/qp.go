package ib

import (
	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// QP is a simulated queue pair. A QP is owned by one PE; its methods charge
// that PE's virtual clock. The struct is kept small deliberately: static
// connection mode materializes N queue pairs per process, and the memory
// pressure of that fully connected model (the paper's section I, item 2) is
// one of the phenomena under study.
type QP struct {
	hca     *HCA
	clk     *vclock.Clock
	sendCQ  *CQ
	recvCQ  *CQ
	obs     *obs.PE // owning PE's recorder; nil/Nop when observability is off
	qpn     uint32
	remote  Dest
	lastArr int64 // monotone arrival clamp for ordered RC delivery
	// rqDepth, when positive, bounds the receive queue: rqRel holds the
	// virtual times at which delivered-but-unprocessed messages release
	// their slot (arrival + RQDrain). A send arriving while rqDepth slots
	// are held is NAKed with ErrRNR (see Fabric.sendRC). The list stays
	// sorted because RC arrivals on one QP are monotone.
	rqDepth int
	rqRel   []int64
	// primaryRail and altRail are the QP's loaded paths on a multi-rail
	// fabric (IB APM: the alternate path is programmed alongside the primary
	// and armed for migration; see SetPath/Migrate). Both default to rail 0,
	// which on a single-rail fabric means no alternate exists.
	primaryRail int
	altRail     int
	typ         QPType
	state       QPState
}

// SetObs binds the owning PE's observability recorder, so state transitions
// and fabric-level fault injections on this QP are attributed to that PE.
func (q *QP) SetObs(rec *obs.PE) {
	q.hca.mu.Lock()
	q.obs = rec
	q.hca.mu.Unlock()
}

// QPN returns the queue-pair number.
func (q *QP) QPN() uint32 { return q.qpn }

// Type returns the transport type.
func (q *QP) Type() QPType { return q.typ }

// State returns the current state.
func (q *QP) State() QPState {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	return q.state
}

// Addr returns the <lid,qpn> address peers use to reach this QP.
func (q *QP) Addr() Dest { return Dest{LID: q.hca.lid, QPN: q.qpn} }

// SetClock rebinds the clock charged for this QP's state transitions and
// default-clocked posts. The conduit uses it when responsibility for a QP
// moves between the application thread and the connection-manager thread.
func (q *QP) SetClock(clk *vclock.Clock) {
	q.hca.mu.Lock()
	q.clk = clk
	q.hca.mu.Unlock()
}

// Remote returns the connected peer address (RC only).
func (q *QP) Remote() Dest { return q.remote }

// SetPath loads the QP's primary and alternate paths (rail indices) — the
// simulated equivalent of programming the primary path at INIT->RTR and the
// alternate path alongside it, armed for Automatic Path Migration. The
// connection manager calls it before the handshake transitions; an alternate
// equal to the primary means no alternate is loaded (single-rail fabric).
func (q *QP) SetPath(primary, alt int) {
	q.hca.mu.Lock()
	q.primaryRail = primary
	q.altRail = alt
	q.hca.mu.Unlock()
}

// Rail returns the QP's primary path (rail index).
func (q *QP) Rail() int {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	return q.primaryRail
}

// AltRail returns the QP's loaded alternate path (rail index); equal to
// Rail() when no alternate is loaded.
func (q *QP) AltRail() int {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	return q.altRail
}

// Migrate performs Automatic Path Migration: the loaded alternate path
// becomes the primary and the old primary is demoted to alternate, without
// leaving RTS — in-flight state (sequence numbers, the conduit's retained
// frames) survives because the queue pair is never torn down. Real APM keys
// this off the path-error event; here the connection manager drives it when a
// post fails with ErrPathDown. It fails with ErrBadState outside RTS and with
// ErrPathDown when no distinct alternate is loaded.
func (q *QP) Migrate() error {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	if q.state != StateRTS {
		return ErrBadState
	}
	if q.altRail == q.primaryRail {
		return ErrPathDown
	}
	q.primaryRail, q.altRail = q.altRail, q.primaryRail
	q.clk.Advance(q.hca.f.model.QPTransition)
	q.obs.Emit(q.clk.Now(), obs.LayerIB, "qp-migrate", -1, int64(q.primaryRail))
	return nil
}

// ToInit transitions RESET -> INIT.
func (q *QP) ToInit() error {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	if q.state != StateReset {
		return ErrBadState
	}
	q.state = StateInit
	q.clk.Advance(q.hca.f.model.QPTransition)
	q.obs.Emit(q.clk.Now(), obs.LayerIB, "qp-init", -1, 0)
	return nil
}

// ToRTR transitions INIT -> RTR. For RC the remote <lid,qpn> must be given
// (obtained out-of-band, e.g. via PMI or the UD connect handshake); for UD
// remote is ignored.
func (q *QP) ToRTR(remote Dest) error {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	if q.state != StateInit {
		return ErrBadState
	}
	if q.typ == RC {
		if remote.LID == 0 || remote.QPN == 0 {
			return ErrNotConnected
		}
		q.remote = remote
	}
	q.state = StateRTR
	q.clk.Advance(q.hca.f.model.QPTransition)
	q.obs.Emit(q.clk.Now(), obs.LayerIB, "qp-rtr", -1, 0)
	return nil
}

// ToRTS transitions RTR -> RTS.
func (q *QP) ToRTS() error {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	if q.state != StateRTR {
		return ErrBadState
	}
	q.state = StateRTS
	q.clk.Advance(q.hca.f.model.QPTransition)
	if q.typ == RC {
		q.hca.stats.RCEstablished++
		q.hca.stats.LiveRC++
	}
	q.obs.Emit(q.clk.Now(), obs.LayerIB, "qp-rts", -1, 0)
	return nil
}

// ToError forces the QP into the Error state, as a link fault, retry
// exhaustion or a peer teardown would on real hardware. Subsequent posts
// fail with ErrBadState until the owner destroys the QP and establishes a
// replacement; the connection manager treats that as a link fault and
// re-runs the handshake.
func (q *QP) ToError() {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	if q.state == StateError || q.state == StateDestroyed {
		return
	}
	if q.typ == RC && q.state == StateRTS {
		q.hca.stats.LiveRC--
	}
	q.state = StateError
	q.obs.Emit(q.clk.Now(), obs.LayerIB, "qp-error", -1, 0)
}

// Destroy tears the QP down and releases its adapter resources.
func (q *QP) Destroy() {
	q.hca.mu.Lock()
	defer q.hca.mu.Unlock()
	if q.state == StateDestroyed {
		return
	}
	if q.typ == RC && q.state == StateRTS {
		q.hca.stats.LiveRC--
	}
	q.state = StateDestroyed
	q.hca.liveQPs--
	q.hca.stats.QPsDestroyed++
	q.hca.gLiveQPs.Add(q.clk.Now(), -1)
	q.obs.Emit(q.clk.Now(), obs.LayerIB, "qp-destroy", -1, 0)
	if int(q.qpn) <= len(q.hca.qps) {
		q.hca.qps[q.qpn-1] = nil
	}
}

// SendWR is a send-side work request.
type SendWR struct {
	// Op selects the operation.
	Op Opcode
	// WRID is echoed in the send completion.
	WRID uint64
	// Dest addresses the target for UD sends; RC uses the connected remote.
	Dest Dest
	// Data is the send payload or RDMA-write source.
	Data []byte
	// Imm is an immediate value delivered with OpSend.
	Imm uint32
	// RemoteAddr and RKey name remote memory for RDMA/atomic operations.
	RemoteAddr uint64
	RKey       uint32
	// Len is the RDMA-read length.
	Len int
	// Add, Compare and Swap are the atomic operands.
	Add     uint64
	Compare uint64
	Swap    uint64
	// NoSendCompletion suppresses the send-side completion (unsignaled WR).
	NoSendCompletion bool
	// Clk, when non-nil, overrides the QP owner's clock for charging this
	// work request. The conduit's connection-manager thread uses it so that
	// protocol processing does not inflate the application thread's time
	// (the paper's Figure 4 runs the handshake on a separate thread).
	Clk *vclock.Clock
}

// PostSend validates and executes a work request. Local faults (bad state,
// MTU) are returned synchronously; remote faults (bad rkey, bounds) are
// reported asynchronously through the send CQ with an error status, matching
// verbs semantics.
func (q *QP) PostSend(wr SendWR) error {
	q.hca.mu.Lock()
	st := q.state
	q.hca.mu.Unlock()
	if st != StateRTS {
		return ErrBadState
	}
	switch q.typ {
	case UD:
		if wr.Op != OpSend {
			return ErrOpUnsupported
		}
		if len(wr.Data) > UDMTU {
			return ErrMTUExceeded
		}
		if wr.Dest.LID == 0 {
			return ErrBadLID
		}
		return q.hca.f.sendUD(q, wr)
	case RC:
		if q.remote.LID == 0 {
			return ErrNotConnected
		}
		return q.hca.f.sendRC(q, wr)
	}
	return ErrOpUnsupported
}
