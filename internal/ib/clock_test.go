package ib

import (
	"testing"

	"goshmem/internal/vclock"
)

// The Clk override lets the connection-manager thread charge its own clock
// instead of the application's (paper Fig. 4 threading).
func TestSendWRClockOverride(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	appBefore := r.c1.Now()
	mgr := vclock.NewClock(appBefore)
	if err := q1.PostSend(SendWR{Op: OpSend, Data: []byte("ctrl"), Clk: mgr, NoSendCompletion: true}); err != nil {
		t.Fatal(err)
	}
	if r.c1.Now() != appBefore {
		t.Fatalf("app clock moved by manager-clocked send: %d -> %d", appBefore, r.c1.Now())
	}
	if mgr.Now() <= appBefore {
		t.Fatal("manager clock not charged")
	}
	c, _ := r.cq2.Wait()
	if c.VTime <= appBefore {
		t.Fatal("arrival time should exceed departure")
	}
}

func TestSetClockRebindsTransitions(t *testing.T) {
	r := newRig(t, nil)
	q := r.h1.CreateQP(RC, r.c1, nil, r.cq1)
	mgr := vclock.NewClock(0)
	q.SetClock(mgr)
	if err := q.ToInit(); err != nil {
		t.Fatal(err)
	}
	if mgr.Now() == 0 {
		t.Fatal("transition did not charge rebound clock")
	}
}

// Virtual arrival time is never before departure, across op types.
func TestCausalityAllOps(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 1024)
	mr := r.h2.RegisterMR(heap, r.c2)
	wrs := []SendWR{
		{Op: OpSend, Data: make([]byte, 100)},
		{Op: OpRDMAWrite, RemoteAddr: mr.Base(), RKey: mr.RKey(), Data: make([]byte, 100)},
		{Op: OpRDMARead, RemoteAddr: mr.Base(), RKey: mr.RKey(), Len: 100},
		{Op: OpFetchAdd, RemoteAddr: mr.Base(), RKey: mr.RKey(), Add: 1},
		{Op: OpSwap, RemoteAddr: mr.Base(), RKey: mr.RKey(), Swap: 2},
		{Op: OpCmpSwap, RemoteAddr: mr.Base(), RKey: mr.RKey(), Compare: 0, Swap: 3},
	}
	for i, wr := range wrs {
		depart := r.c1.Now()
		wr.WRID = uint64(i + 1)
		if err := q1.PostSend(wr); err != nil {
			t.Fatalf("op %v: %v", wr.Op, err)
		}
		if wr.Op == OpSend {
			c, _ := r.cq2.Wait()
			if c.VTime < depart {
				t.Fatalf("op %v: arrival %d before departure %d", wr.Op, c.VTime, depart)
			}
			// drain our own send completion
			c2, _ := r.cq1.Wait()
			if c2.VTime < depart {
				t.Fatalf("op %v: send completion %d before departure %d", wr.Op, c2.VTime, depart)
			}
			continue
		}
		c, _ := r.cq1.Wait()
		if c.VTime < depart {
			t.Fatalf("op %v: completion %d before departure %d", wr.Op, c.VTime, depart)
		}
	}
}

// Larger transfers must take longer (bandwidth term).
func TestBandwidthTermMonotone(t *testing.T) {
	r := newRig(t, nil)
	q1, _ := r.connectRC(t)
	heap := make([]byte, 1<<21)
	mr := r.h2.RegisterMR(heap, r.c2)
	lat := func(n int) int64 {
		depart := r.c1.Now()
		if err := q1.PostSend(SendWR{Op: OpRDMAWrite, RemoteAddr: mr.Base(), RKey: mr.RKey(),
			Data: make([]byte, n), WRID: uint64(n)}); err != nil {
			t.Fatal(err)
		}
		c, _ := r.cq1.Wait()
		return c.VTime - depart
	}
	small, big := lat(64), lat(1<<20)
	if big <= small {
		t.Fatalf("1MB (%d) should take longer than 64B (%d)", big, small)
	}
}
