package ib

import (
	"unsafe"

	"goshmem/internal/obs"
)

// Footprint models the adapter's retained memory for the engine census
// (obs.FootprintReporter). Every quantity is deterministic on a fixed seed —
// object counts times struct-shell sizes plus exact buffer lengths — so the
// modeled numbers are byte-stable across runs of the same schedule; slice
// capacity slack is deliberately left to the census tolerance.
//
// Categories:
//
//   - qps: live queue-pair shells (the qpn table keeps destroyed slots as
//     nil, so retained == live) plus the table itself and each QP's
//     receive-queue release list.
//   - mrs: registered-region shells and registry entries. The backing
//     buffers are attributed separately because they are the scaling story:
//   - pinned-bytes: backing bytes of pinned regions (the symmetric heaps
//     dominate; attributed here, not in shmem — the registration pins them).
//   - bounce-slab: the pre-registered degradation slab.
//   - bounced-bytes: backing bytes of regions degraded past the pinned
//     budget (unpinned, but still live Go heap).
//   - ports: per-rail port bookkeeping (one entry per rail on this HCA).
func (h *HCA) Footprint() []obs.FootprintItem {
	qpSize := int64(unsafe.Sizeof(QP{}))
	mrSize := int64(unsafe.Sizeof(MR{}))
	rails := h.f.Rails()

	h.mu.Lock()
	defer h.mu.Unlock()
	var qps obs.FootprintItem
	qps.Bytes = int64(len(h.qps)) * int64(unsafe.Sizeof((*QP)(nil)))
	for _, q := range h.qps {
		if q == nil {
			continue
		}
		qps.Objects++
		qps.Bytes += qpSize + int64(len(q.rqRel))*8
	}
	var mrs, pinned, slab, bounced obs.FootprintItem
	for _, m := range h.mrs {
		mrs.Objects++
		mrs.Bytes += mrSize + mapEntryOverhead
		switch {
		case h.slab != nil && m == h.slab:
			slab.Objects++
			slab.Bytes += int64(len(m.buf))
		case m.bounced:
			bounced.Objects++
			bounced.Bytes += int64(len(m.buf))
		default:
			pinned.Objects++
			pinned.Bytes += int64(len(m.buf))
		}
	}
	return []obs.FootprintItem{
		{Subsystem: "ib", Category: "qps", Bytes: qps.Bytes, Objects: qps.Objects},
		{Subsystem: "ib", Category: "mrs", Bytes: mrs.Bytes, Objects: mrs.Objects},
		{Subsystem: "ib", Category: "pinned-bytes", Bytes: pinned.Bytes, Objects: pinned.Objects},
		{Subsystem: "ib", Category: "bounce-slab", Bytes: slab.Bytes, Objects: slab.Objects},
		{Subsystem: "ib", Category: "bounced-bytes", Bytes: bounced.Bytes, Objects: bounced.Objects},
		{Subsystem: "ib", Category: "ports", Bytes: int64(rails) * portStateBytes, Objects: int64(rails)},
	}
}

// portStateBytes is the modeled per-port bookkeeping cost: the HCA's slice
// of the fabric's rail state (path liveness, fault schedules) prorated to
// one port. Small by construction; it exists so a 4-rail sweep shows the
// per-rail term rather than silently folding it into drift.
const portStateBytes = int64(unsafe.Sizeof(portFault{})) + int64(unsafe.Sizeof(railFault{}))

// mapEntryOverhead mirrors obs.mapEntryOverhead: the estimated per-entry
// cost of a Go map beyond key and value.
const mapEntryOverhead = 48
