package ib

import (
	"sync"

	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// HCA is a simulated host channel adapter. The cluster layer creates one HCA
// per simulated node; the node's PEs share it, exactly like 8-16 processes
// per node sharing a physical ConnectX adapter in the paper's testbeds.
type HCA struct {
	f   *Fabric
	lid uint16

	mu     sync.Mutex // guards qps, mrs, counters
	qps    []*QP      // index qpn-1
	mrs    map[uint32]*MR
	nextVA uint64
	nextRK uint32

	limits   Limits
	slab     *MR // pre-registered bounce slab (see RegisterBounced)
	liveQPs  int // QPs not yet destroyed, counted against Limits.MaxQPs
	qpAllocs int // QP allocation attempts (drives injected Nth-alloc faults)
	mrAllocs int // MR allocation attempts

	// memMu serializes remote RDMA/atomic access to this HCA's registered
	// memory, giving network atomics their atomicity guarantee.
	memMu sync.Mutex

	// Pressure-relief registry: each tenant (connection manager) sharing the
	// adapter registers a callback that releases one idle endpoint on demand.
	// Guarded by its own mutex — callbacks tear down queue pairs, which takes
	// h.mu, so they must never be invoked under it.
	reliefMu sync.Mutex
	relief   []func(vt int64) bool
	reliefRR int

	// Telemetry (AttachObs): adapter-level gauge series keyed by lid, and the
	// job's incident ledger for injected allocation failures. All nil-safe —
	// an unattached adapter records nothing.
	gLiveQPs *obs.Gauge
	gPinned  *obs.Gauge
	gRQOcc   *obs.Gauge
	ledger   *obs.Ledger

	stats HCAStats
}

// HCAStats counts resource usage and traffic through one adapter.
type HCAStats struct {
	QPsCreatedUD   int64
	QPsCreatedRC   int64
	QPsDestroyed   int64 // monotone; allocation ladders key retries to it
	RCEstablished  int64 // RC QPs that reached RTS
	LiveRC         int64 // RC QPs currently in RTS
	MsgsDelivered  int64
	BytesDelivered int64
	CacheMisses    int64
	MRsRegistered  int64
	BytesPinned    int64
	AllocFailures  int64 // QP/MR allocations refused (budget or injected)
	RNRNaks        int64 // sends NAKed by a full receive queue
	BouncedMRs     int64 // regions degraded to bounce-buffering
}

// LID returns the adapter's local identifier on the fabric.
func (h *HCA) LID() uint16 { return h.lid }

// Fabric returns the fabric this adapter is attached to.
func (h *HCA) Fabric() *Fabric { return h.f }

// Stats returns a snapshot of the adapter's counters.
func (h *HCA) Stats() HCAStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// LiveRC returns the number of RC queue pairs currently in RTS on this
// adapter. Connection managers consult it to enforce a live-QP cap (the
// endpoint-cache pressure the paper's section I describes).
func (h *HCA) LiveRC() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats.LiveRC
}

// AttachObs wires the adapter to the job's gauge registry and incident
// ledger. Call it at setup, before any QP or MR is allocated (including
// SetLimits' bounce slab), so the gauge series start from zero. Either
// argument may be nil: gauges and incidents enable independently.
func (h *HCA) AttachObs(gs *obs.GaugeSet, led *obs.Ledger) {
	inst := obs.InstHCA(h.lid)
	h.mu.Lock()
	h.gLiveQPs = gs.Gauge("ib.live_qps", inst)
	h.gPinned = gs.Gauge("ib.pinned_bytes", inst)
	h.gRQOcc = gs.Gauge("ib.rq_occupancy", inst)
	h.ledger = led
	h.mu.Unlock()
}

// RegisterRelief registers a pressure-relief callback for one of the
// adapter's tenants: invoked (vt is the requester's virtual time) when a
// sibling process cannot allocate a queue pair, it should release one idle
// endpoint and report whether it did. Callbacks must tolerate concurrent
// invocation and must not call back into allocation.
func (h *HCA) RegisterRelief(f func(vt int64) bool) {
	h.reliefMu.Lock()
	h.relief = append(h.relief, f)
	h.reliefMu.Unlock()
}

// RequestRelief asks the adapter's tenants, round-robin, to release one idle
// queue pair, returning true as soon as one does. A per-process connection
// cache can only evict its own endpoints; on a shared adapter that is not
// enough — a process with no idle connections of its own would starve while
// its node-local siblings pin the whole budget with connections they may
// never touch again. This is the cross-process half of on-demand eviction.
func (h *HCA) RequestRelief(vt int64) bool {
	h.reliefMu.Lock()
	cbs := append([]func(vt int64) bool(nil), h.relief...)
	start := h.reliefRR
	h.reliefRR++
	h.reliefMu.Unlock()
	for i := range cbs {
		if cbs[(start+i)%len(cbs)](vt) {
			return true
		}
	}
	return false
}

// CreateQP creates a queue pair in the RESET state, charging the owner's
// clock. sendCQ may be nil if the owner does not consume send completions
// (e.g. a UD QP used only for datagram receive/transmit of control traffic);
// recvCQ receives inbound messages once the QP reaches RTR. On a budgeted
// adapter it panics when the budget is exhausted; callers that can degrade
// use TryCreateQP instead.
func (h *HCA) CreateQP(typ QPType, clk *vclock.Clock, sendCQ, recvCQ *CQ) *QP {
	q, err := h.TryCreateQP(typ, clk, sendCQ, recvCQ)
	if err != nil {
		panic("ib: CreateQP: " + err.Error())
	}
	return q
}

// RegisterMR registers (pins) buf with the adapter and returns the region.
// The registration cost is charged on the buffer's declared size. On a
// budgeted adapter it panics when the budget is exhausted; callers that can
// degrade use TryRegisterMR/RegisterBounced instead.
func (h *HCA) RegisterMR(buf []byte, clk *vclock.Clock) *MR {
	m, err := h.TryRegisterMR(buf, clk)
	if err != nil {
		panic("ib: RegisterMR: " + err.Error())
	}
	return m
}

// registerLocked assigns a region of the adapter's virtual address space and
// an rkey for buf. Bounced regions do not count against the pinned budget:
// their remote traffic stages through the pre-registered slab instead.
func (h *HCA) registerLocked(buf []byte, bounced bool) *MR {
	if h.mrs == nil {
		h.mrs = make(map[uint32]*MR)
	}
	h.nextRK++
	// Separate regions by a guard page in the fake virtual address space so
	// out-of-bounds accesses cannot silently land in a neighbouring region.
	h.nextVA += 0x1000
	m := &MR{hca: h, base: h.nextVA, buf: buf, lkey: h.nextRK, rkey: h.nextRK | 0x80000000, bounced: bounced}
	h.nextVA += uint64(len(buf))
	if rem := h.nextVA % 0x1000; rem != 0 {
		h.nextVA += 0x1000 - rem
	}
	h.mrs[m.rkey] = m
	h.stats.MRsRegistered++
	if !bounced {
		h.stats.BytesPinned += int64(len(buf))
	}
	return m
}

// DeregisterMR removes the region; later remote accesses fail with
// StatusRemoteAccessErr.
func (h *HCA) DeregisterMR(m *MR) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m.dead = true
	delete(h.mrs, m.rkey)
	if !m.bounced {
		h.stats.BytesPinned -= int64(len(m.buf))
	}
}

// QP returns the queue pair with the given number, or nil.
func (h *HCA) QP(qpn uint32) *QP {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.qpLocked(qpn)
}

func (h *HCA) qpLocked(qpn uint32) *QP {
	if qpn == 0 || int(qpn) > len(h.qps) {
		return nil
	}
	q := h.qps[qpn-1]
	if q == nil || q.state == StateDestroyed {
		return nil
	}
	return q
}

func (h *HCA) lookupMR(rkey uint32) *MR {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mrs[rkey]
}

// cachePenalty returns the extra latency a message pays at this adapter when
// the endpoint cache is oversubscribed by live RC connections.
func (h *HCA) cachePenalty() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(h.stats.LiveRC) > h.f.model.HCACacheQPs {
		h.stats.CacheMisses++
		return h.f.model.HCACacheMissPenalty
	}
	return 0
}

// AtomicRMW executes a fetching atomic (OpFetchAdd/OpCmpSwap/OpSwap) against
// this adapter's registered memory on behalf of a software agent: the gasnet
// conduit's active-message atomic path uses it when atomics ride framed sends
// instead of fabric-level atomic work requests, so the exactly-once dedup
// ledger can guard them. The memory effect and the onWrite notification are
// identical to the fabric's atomic path; ok is false when the (rkey, addr)
// pair does not resolve to an aligned uint64 inside a live region.
func (h *HCA) AtomicRMW(op Opcode, addr uint64, rkey uint32, add, compare, swap uint64, vt int64) (old uint64, ok bool) {
	mr := h.lookupMR(rkey)
	if mr == nil || mr.dead || addr%8 != 0 ||
		addr < mr.base || addr+8 > mr.base+uint64(len(mr.buf)) {
		return 0, false
	}
	off := int(addr - mr.base)
	h.memMu.Lock()
	old = leU64(mr.buf[off : off+8])
	switch op {
	case OpFetchAdd:
		putLeU64(mr.buf[off:off+8], old+add)
	case OpCmpSwap:
		if old == compare {
			putLeU64(mr.buf[off:off+8], swap)
		}
	case OpSwap:
		putLeU64(mr.buf[off:off+8], swap)
	default:
		h.memMu.Unlock()
		return 0, false
	}
	h.memMu.Unlock()
	if mr.onWrite != nil {
		mr.onWrite(off, 8, vt)
	}
	h.countDelivery(8)
	return old, true
}

func (h *HCA) countDelivery(bytes int) {
	h.mu.Lock()
	h.stats.MsgsDelivered++
	h.stats.BytesDelivered += int64(bytes)
	h.mu.Unlock()
}
