package ib

// Rail-scoped fault plane: the injector schedules port failures, whole-rail
// failures and partition windows against the fabric's multi-rail topology
// (Fabric.SetRails). All three are schedule-driven and deterministic — they
// trip on virtual time, not probability — so a seeded run injects exactly the
// configured faults and the incident ledger can reconcile them one-for-one.
//
// Semantics:
//
//   - FailPort(lid, rail, at): the HCA's port on one rail goes dark at vt
//     `at` and stays dark. Paths from or to that LID over that rail are
//     blocked; the LID's other ports and every other LID stay reachable.
//   - FailRail(rail, at): the whole rail (its switch plane) dies at `at`.
//     Every path over the rail is blocked fabric-wide.
//   - Partition(a, b, at, heal): connectivity between LID set a and LID set
//     b is severed on EVERY rail during [at, heal) — the classic network
//     partition, where both sides stay alive but cannot talk. heal < 0 means
//     the partition never heals.
//
// Unlike the probabilistic knobs, injection counters here advance at
// scheduling time: a scheduled network fault IS the injection (the cluster
// layer opens its incident from the same schedule), whether or not any
// datagram happens to cross the severed path.

// portFault is one scheduled port failure (permanent from `at`).
type portFault struct {
	lid  uint16
	rail int
	at   int64
}

// railFault is one scheduled whole-rail failure (permanent from `at`).
type railFault struct {
	rail int
	at   int64
}

// partitionWindow severs LID sets a and b on every rail during [at, heal);
// heal < 0 never heals.
type partitionWindow struct {
	a, b []uint16
	at   int64
	heal int64
}

func (w *partitionWindow) active(now int64) bool {
	return now >= w.at && (w.heal < 0 || now < w.heal)
}

func (w *partitionWindow) severs(x, y uint16) bool {
	return (lidIn(w.a, x) && lidIn(w.b, y)) || (lidIn(w.a, y) && lidIn(w.b, x))
}

func lidIn(set []uint16, lid uint16) bool {
	for _, l := range set {
		if l == lid {
			return true
		}
	}
	return false
}

// FailPort schedules the port of the given LID on the given rail to fail at
// virtual time at (permanently).
func (fi *FaultInjector) FailPort(lid uint16, rail int, at int64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.portFaults = append(fi.portFaults, portFault{lid: lid, rail: rail, at: at})
	fi.portFaultsInjected++
}

// FailRail schedules the whole rail to fail at virtual time at (permanently).
func (fi *FaultInjector) FailRail(rail int, at int64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.railFaults = append(fi.railFaults, railFault{rail: rail, at: at})
	fi.railFaultsInjected++
}

// Partition schedules a partition window severing LID sets a and b on every
// rail during [at, heal); heal < 0 means the partition never heals.
func (fi *FaultInjector) Partition(a, b []uint16, at, heal int64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.partitions = append(fi.partitions, partitionWindow{
		a: append([]uint16(nil), a...), b: append([]uint16(nil), b...),
		at: at, heal: heal})
	fi.partitionsInjected++
}

// NetFaultsScheduled reports whether any port/rail/partition injections
// exist. The failure detector arms on it (like PEFaultsScheduled), so
// fault-free runs pay nothing for partition awareness.
func (fi *FaultInjector) NetFaultsScheduled() bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return len(fi.portFaults)+len(fi.railFaults)+len(fi.partitions) > 0
}

// PortFaultsInjected reports how many port failures have been scheduled.
func (fi *FaultInjector) PortFaultsInjected() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.portFaultsInjected
}

// RailFaultsInjected reports how many whole-rail failures have been scheduled.
func (fi *FaultInjector) RailFaultsInjected() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.railFaultsInjected
}

// PartitionsInjected reports how many partition windows have been scheduled.
func (fi *FaultInjector) PartitionsInjected() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.partitionsInjected
}

// pathBlockedLocked reports whether the src->dst path over one rail is
// severed at virtual time now. Intra-node traffic never leaves the adapter,
// so it is never blocked. Caller holds fi.mu.
func (fi *FaultInjector) pathBlockedLocked(src, dst uint16, rail int, now int64) bool {
	if src == dst {
		return false
	}
	for i := range fi.railFaults {
		if f := &fi.railFaults[i]; f.rail == rail && now >= f.at {
			return true
		}
	}
	for i := range fi.portFaults {
		if f := &fi.portFaults[i]; f.rail == rail && now >= f.at && (f.lid == src || f.lid == dst) {
			return true
		}
	}
	for i := range fi.partitions {
		if w := &fi.partitions[i]; w.active(now) && w.severs(src, dst) {
			return true
		}
	}
	return false
}

// pathBlocked reports whether the src->dst path over one rail is severed at
// virtual time now (Fabric.sendRC consults it for the QP's primary path).
func (fi *FaultInjector) pathBlocked(src, dst uint16, rail int, now int64) bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.pathBlockedLocked(src, dst, rail, now)
}

// allPathsBlocked reports whether EVERY rail between src and dst is severed
// at virtual time now — the condition under which UD datagrams (handshakes,
// heartbeats, ACKs) blackhole and the pair is truly partitioned.
func (fi *FaultInjector) allPathsBlocked(src, dst uint16, rails int, now int64) bool {
	if fi == nil || src == dst {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if len(fi.portFaults)+len(fi.railFaults)+len(fi.partitions) == 0 {
		return false
	}
	for r := 0; r < rails; r++ {
		if !fi.pathBlockedLocked(src, dst, r, now) {
			return false
		}
	}
	return true
}

// SeveranceActiveAt reports whether any scheduled network fault is in effect
// at virtual time now: a tripped port or rail failure (permanent from its
// schedule time), or an active partition window. While this holds, silence
// between ANY pair — even one whose own paths are clear — is inconclusive
// evidence of death: a live peer's progress engine can be transitively
// stalled behind a severed path to a third party, so the failure detector
// keeps reprobing instead of confirming deaths.
func (fi *FaultInjector) SeveranceActiveAt(now int64) bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for i := range fi.portFaults {
		if now >= fi.portFaults[i].at {
			return true
		}
	}
	for i := range fi.railFaults {
		if now >= fi.railFaults[i].at {
			return true
		}
	}
	for i := range fi.partitions {
		if fi.partitions[i].active(now) {
			return true
		}
	}
	return false
}

// RailLive reports whether the src->dst path over one rail is up at virtual
// time now. The connection manager uses it for least-loaded-live-rail path
// selection and for deciding whether APM (vs reconnect, vs suspension) can
// recover a path error.
func (fi *FaultInjector) RailLive(src, dst uint16, rail int, now int64) bool {
	return !fi.pathBlocked(src, dst, rail, now)
}

// PartitionInfo reports whether src and dst are currently severed by a
// partition window (any rail — partitions cut all of them) and, when they
// are, the latest heal time among the active windows; heal < 0 means at
// least one active window never heals. The failure detector uses it to tell
// a partitioned peer (suspend, wait for heal) from a dead one (abort), and
// to bound its patience for permanent partitions.
func (fi *FaultInjector) PartitionInfo(src, dst uint16, now int64) (blocked bool, heal int64) {
	if fi == nil {
		return false, 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for i := range fi.partitions {
		w := &fi.partitions[i]
		if !w.active(now) || !w.severs(src, dst) {
			continue
		}
		blocked = true
		if w.heal < 0 {
			return true, -1
		}
		if w.heal > heal {
			heal = w.heal
		}
	}
	return blocked, heal
}
