package ib

import (
	"sync"

	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// Fabric is the simulated switched interconnect: a set of HCAs addressed by
// LID plus the cost model and fault injector shared by all traffic.
type Fabric struct {
	model  *vclock.CostModel
	faults *FaultInjector

	// rails is the number of independent physical rails (switch planes) the
	// fabric provides; every HCA exposes one port per rail. Each rail is its
	// own fault domain: a failed rail or port blocks only the paths crossing
	// it, and RC queue pairs migrate to their alternate path (IB APM) while
	// other rails stay up. Default 1 — the flat single-rail fabric.
	rails int

	mu   sync.RWMutex
	hcas []*HCA
}

// NewFabric creates an empty fabric. faults may be nil.
func NewFabric(model *vclock.CostModel, faults *FaultInjector) *Fabric {
	if model == nil {
		model = vclock.Default()
	}
	return &Fabric{model: model, faults: faults, rails: 1}
}

// SetRails sets the number of independent rails (ports per HCA). Call it at
// setup, before traffic flows; values below 1 are clamped to 1.
func (f *Fabric) SetRails(n int) {
	if n < 1 {
		n = 1
	}
	f.mu.Lock()
	f.rails = n
	f.mu.Unlock()
}

// Rails returns the number of independent rails the fabric provides.
func (f *Fabric) Rails() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.rails
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() *vclock.CostModel { return f.model }

// Lossy reports whether a fault injector can drop datagrams on this fabric.
// Upper layers arm their retransmission machinery only on lossy fabrics: in
// a fault-free simulation nothing is ever lost, and real-time retransmit
// timers would misread simulation slowness as message loss.
func (f *Fabric) Lossy() bool { return f.faults != nil }

// Faults returns the fabric's fault injector, nil on a fault-free fabric.
func (f *Fabric) Faults() *FaultInjector { return f.faults }

// PEFaulty reports whether PE crash/wedge injections are scheduled on this
// fabric. Upper layers arm their failure detector only then, so fault-free
// runs record zero heartbeat activity.
func (f *Fabric) PEFaulty() bool { return f.faults.PEFaultsScheduled() }

// NetFaulty reports whether any port/rail/partition injections are scheduled.
// The failure detector also arms on it, so a partitioned-but-alive peer can
// be told apart from a dead one (and a permanent partition can abort with its
// own exit code instead of wedging into the watchdog).
func (f *Fabric) NetFaulty() bool { return f.faults.NetFaultsScheduled() }

// PathsSevered reports whether EVERY rail between the two adapters is blocked
// at virtual time now — the true-partition condition: UD datagrams blackhole,
// no reconnect on any rail can succeed, and the failure detector must suspend
// rather than confirm-dead. Always false on a fault-free fabric.
func (f *Fabric) PathsSevered(src, dst uint16, now int64) bool {
	if f.faults == nil {
		return false
	}
	return f.faults.allPathsBlocked(src, dst, f.Rails(), now)
}

// AddHCA attaches a new adapter and assigns it the next LID (LIDs start at 1,
// as LID 0 is reserved, like the permissive LID in real InfiniBand).
func (f *Fabric) AddHCA() *HCA {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := &HCA{f: f, lid: uint16(len(f.hcas) + 1)}
	f.hcas = append(f.hcas, h)
	return h
}

// HCA returns the adapter with the given LID, or nil.
func (f *Fabric) HCA(lid uint16) *HCA {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if lid == 0 || int(lid) > len(f.hcas) {
		return nil
	}
	return f.hcas[lid-1]
}

// HCAs returns all adapters (for stats aggregation).
func (f *Fabric) HCAs() []*HCA {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*HCA, len(f.hcas))
	copy(out, f.hcas)
	return out
}

// oneWay returns the one-way wire time for n payload bytes between two
// adapters, including endpoint-cache penalties on both sides.
func (f *Fabric) oneWay(src, dst *HCA, base int64, n int) int64 {
	if src == dst {
		return f.model.IntraNodeLatency + f.model.IntraXferTime(n)
	}
	return base + f.model.XferTime(n) + src.cachePenalty() + dst.cachePenalty()
}

// latencyOnly is oneWay without the serialization term, for operations whose
// sender already paid the wire occupancy (see occupancy).
func (f *Fabric) latencyOnly(src, dst *HCA, base int64) int64 {
	if src == dst {
		return f.model.IntraNodeLatency
	}
	return base + src.cachePenalty() + dst.cachePenalty()
}

// occupancy is the sender-side injection time of n payload bytes (the LogGP
// gap-per-byte term): a sender cannot post payload faster than the wire
// drains it, which is what bounds streaming bandwidth at the modeled rate.
func (f *Fabric) occupancy(src, dst *HCA, n int) int64 {
	if src == dst {
		return f.model.IntraXferTime(n)
	}
	return f.model.XferTime(n)
}

// sendUD delivers an unreliable datagram. Unknown targets and datagrams that
// the fault injector drops vanish silently, exactly like UD. Datagrams the
// injector holds for reordering are delivered once enough later traffic has
// overtaken them; each send also flushes any held datagram whose bounded
// reorder window has expired.
func (f *Fabric) sendUD(q *QP, wr SendWR) error {
	clk := q.clk
	if wr.Clk != nil {
		clk = wr.Clk
	}
	// Incident lane for this datagram: (sender rank, packed dest address).
	// Every injected UD fault opens (or instantly absorbs) an incident on the
	// lane; the next clean delivery on the same lane closes whatever is open.
	led := q.hca.ledger
	rank := q.obs.Rank()
	destKey := int(wr.Dest.LID)<<20 | int(wr.Dest.QPN)
	if extra := f.faults.slowdown(); extra > 0 {
		clk.Advance(extra)
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-slow", -1, int64(len(wr.Data)))
		q.obs.Count("ib.fault.slowdown", 1)
		led.OpenAbsorbed("ud", "slow", rank, destKey, clk.Now(), "latency-absorbed")
	}
	depart := clk.Advance(f.model.SendPostOverhead)
	if q.sendCQ != nil && !wr.NoSendCompletion {
		q.sendCQ.Push(Completion{WRID: wr.WRID, QPN: q.qpn, Op: OpSend, Status: StatusOK, VTime: depart})
	}
	// A datagram whose source and destination are severed on every rail
	// (failed ports/rails, or an active partition window) vanishes in the
	// switch fabric, exactly like UD. It is deliberately NOT counted as an
	// injected drop: the blackhole is the port/rail/partition fault's own
	// effect, and its incident is opened by the schedule, not per datagram.
	if f.faults != nil && f.faults.allPathsBlocked(q.hca.lid, wr.Dest.LID, f.Rails(), clk.Now()) {
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-blackhole", -1, int64(len(wr.Data)))
		q.obs.Count("ib.fault.blackhole", 1)
		return nil
	}
	// Age the reorder window before deciding this datagram's fate so held
	// datagrams flush even on a stream of drops.
	defer func() {
		for _, deliver := range f.faults.dueDeliveries() {
			deliver()
		}
	}()
	drop, dup, hold := f.faults.udFate(wr.Data)
	if drop {
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-drop", -1, int64(len(wr.Data)))
		q.obs.Count("ib.fault.drop", 1)
		// Open until the conduit's retransmission lands a clean datagram on
		// this lane (or, for fire-and-forget traffic, the end-of-job sweep).
		led.Open("ud", "drop", rank, destKey, clk.Now())
		return nil
	}
	dh := f.HCA(wr.Dest.LID)
	if dh == nil {
		return nil
	}
	dh.mu.Lock()
	dq := dh.qpLocked(wr.Dest.QPN)
	if dq == nil || dq.typ != UD || (dq.state != StateRTR && dq.state != StateRTS) || dq.recvCQ == nil {
		dh.mu.Unlock()
		return nil
	}
	recvCQ := dq.recvCQ
	dh.mu.Unlock()

	depart = clk.Advance(f.occupancy(q.hca, dh, len(wr.Data)))
	arrival := depart + f.latencyOnly(q.hca, dh, f.model.UDSendLatency)
	data := append([]byte(nil), wr.Data...)
	// Bit-flip corruption hits only the primary delivered copy: a duplicate
	// below re-copies the pristine wr.Data, modeling an independent flight.
	corrupted := f.faults.corruptData(data)
	if corrupted {
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-corrupt", -1, int64(len(data)))
		q.obs.Count("ib.fault.corrupt", 1)
		// Open until the receiver's checksum rejects this copy and the
		// sender's retransmission lands a clean one.
		led.Open("ud", "corrupt", rank, destKey, clk.Now())
	}
	src := q.Addr()
	deliver := func() {
		dh.countDelivery(len(data))
		recvCQ.Push(Completion{QPN: wr.Dest.QPN, Src: src, Op: OpSend, Recv: true,
			Data: data, Imm: wr.Imm, Status: StatusOK, VTime: arrival})
		// A clean delivery repairs the lane; the delivery that carries an
		// injected corruption must not close its own incident.
		if !corrupted {
			led.CloseAll("ud", nil, rank, destKey, arrival, "delivered")
		}
	}
	if hold {
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-reorder", -1, int64(len(data)))
		q.obs.Count("ib.fault.reorder", 1)
		led.OpenAbsorbed("ud", "reorder", rank, destKey, clk.Now(), "late-delivery")
		f.faults.holdDelivery(deliver)
		return nil
	}
	deliver()
	if dup {
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-dup", -1, int64(len(wr.Data)))
		q.obs.Count("ib.fault.dup", 1)
		led.OpenAbsorbed("ud", "dup", rank, destKey, clk.Now(), "dedup-absorbed")
		dupData := append([]byte(nil), wr.Data...)
		dh.countDelivery(len(dupData))
		recvCQ.Push(Completion{QPN: wr.Dest.QPN, Src: src, Op: OpSend, Recv: true,
			Data: dupData, Imm: wr.Imm, Status: StatusOK, VTime: arrival + f.model.UDSendLatency})
	}
	return nil
}

// sendRC executes a reliable-connected operation against the connected peer.
// A dead remote queue pair — destroyed, evicted or flapped into the Error
// state — fails the operation synchronously with ErrLinkDown before any data
// moves, transitioning the local QP to Error too (real RC reports retry
// exhaustion the same way: both halves of the connection die). The sender's
// connection manager recovers by tearing down and re-running the handshake.
func (f *Fabric) sendRC(q *QP, wr SendWR) error {
	clk := q.clk
	if wr.Clk != nil {
		clk = wr.Clk
	}
	// Incident lane for this connection: (sender rank, destination LID). The
	// lane survives QP teardown, so the reconnect's first clean completion
	// closes the flap/corruption incident that killed the old queue pair.
	led := q.hca.ledger
	rank := q.obs.Rank()
	destLID := int(q.remote.LID)
	if extra := f.faults.slowdown(); extra > 0 {
		clk.Advance(extra)
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-slow", -1, int64(len(wr.Data)))
		q.obs.Count("ib.fault.slowdown", 1)
		led.OpenAbsorbed("rc", "slow", rank, destLID, clk.Now(), "latency-absorbed")
	}
	depart := clk.Advance(f.model.SendPostOverhead)
	dh := f.HCA(q.remote.LID)
	if dh == nil {
		return ErrBadLID
	}
	// Path error: the QP's primary rail is severed between the endpoints
	// (port/rail failure or partition window). The operation is refused
	// before any byte moves and before any teardown — both queue pairs stay
	// healthy, so the connection manager can migrate to the loaded alternate
	// path (APM) and simply re-post. Only when every rail is dead does the
	// caller escalate to the reconnect/suspension machinery.
	if f.faults != nil && f.faults.pathBlocked(q.hca.lid, q.remote.LID, q.Rail(), clk.Now()) {
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-path-down", -1, int64(q.Rail()))
		q.obs.Count("ib.fault.path_down", 1)
		return ErrPathDown
	}
	if f.faults.rcFlap() {
		// Injected link fault: both queue pairs error out mid-stream, before
		// this operation's payload moves, so no byte is delivered twice.
		q.obs.Emit(clk.Now(), obs.LayerIB, "fault-flap", -1, 0)
		q.obs.Count("ib.fault.flap", 1)
		led.Open("rc", "flap", rank, destLID, clk.Now())
		dh.mu.Lock()
		dq := dh.qpLocked(q.remote.QPN)
		dh.mu.Unlock()
		q.ToError()
		if dq != nil && dq.typ == RC {
			dq.ToError()
		}
		return ErrLinkDown
	}
	dh.mu.Lock()
	rdq := dh.qpLocked(q.remote.QPN)
	remoteLive := rdq != nil && rdq.typ == RC && (rdq.state == StateRTR || rdq.state == StateRTS)
	dh.mu.Unlock()
	if !remoteLive {
		q.ToError()
		return ErrLinkDown
	}

	completeSend := func(c Completion) {
		if q.sendCQ != nil && !wr.NoSendCompletion {
			c.WRID = wr.WRID
			c.QPN = q.qpn
			c.Op = wr.Op
			q.sendCQ.Push(c)
		}
	}

	switch wr.Op {
	case OpSend:
		// The sender pays the wire occupancy (LogGP gap); the receiver sees
		// the last byte one latency later. Compute the latency before taking
		// the target HCA lock: the cache-penalty accounting locks both
		// adapters itself.
		depart = clk.Advance(f.occupancy(q.hca, dh, len(wr.Data)))
		lat := f.latencyOnly(q.hca, dh, f.model.RCSendLatency)
		dh.mu.Lock()
		dq := dh.qpLocked(q.remote.QPN)
		if dq == nil || dq.typ != RC || (dq.state != StateRTR && dq.state != StateRTS) || dq.recvCQ == nil {
			// The remote died between the liveness check and delivery.
			dh.mu.Unlock()
			q.ToError()
			return ErrLinkDown
		}
		arrival := depart + lat
		// RC delivery is in-order: clamp arrival monotone per target QP.
		if arrival <= dq.lastArr {
			arrival = dq.lastArr + 1
		}
		if dq.rqDepth > 0 {
			// Finite receive queue: each delivered message holds a slot until
			// the receiver's software reposts it at arrival+RQDrain. Release
			// what has drained by this arrival; if the queue is still full,
			// NAK the send before any byte moves and without consuming the
			// arrival slot — the clamp is untouched, so the retry (at a later
			// virtual time, after the sender's backoff) preserves ordering.
			i := 0
			for i < len(dq.rqRel) && dq.rqRel[i] <= arrival {
				// Each slot's release is recorded at its own drain time; the
				// gauge fold sorts by VT, so observing it late is harmless.
				dh.gRQOcc.Add(dq.rqRel[i], -1)
				i++
			}
			if i > 0 {
				dq.rqRel = append(dq.rqRel[:0], dq.rqRel[i:]...)
			}
			if len(dq.rqRel) >= dq.rqDepth {
				dh.stats.RNRNaks++
				dh.mu.Unlock()
				return ErrRNR
			}
			dq.rqRel = append(dq.rqRel, arrival+f.model.RQDrain)
			dh.gRQOcc.Add(arrival, 1)
		}
		dq.lastArr = arrival
		recvCQ := dq.recvCQ
		dh.mu.Unlock()

		data := append([]byte(nil), wr.Data...)
		// Injected RC payload corruption: the delivered copy is damaged while
		// wr.Data stays pristine for any software retransmission. Two-sided
		// sends carry a software integrity trailer in this runtime, so the
		// flip is delivered silently and detection is the receiver's job.
		corrupted := f.faults.rcCorruptData(data)
		if corrupted {
			q.obs.Emit(clk.Now(), obs.LayerIB, "fault-rc-corrupt", -1, int64(len(data)))
			q.obs.Count("ib.fault.rc_corrupt", 1)
			// Open until the receiver's integrity trailer rejects the copy
			// and a clean (software-retransmitted) send completes.
			led.Open("rc", "rc-corrupt", rank, destLID, clk.Now())
		}
		dh.countDelivery(len(data))
		recvCQ.Push(Completion{QPN: q.remote.QPN, Src: q.Addr(), Op: OpSend, Recv: true,
			Data: data, Imm: wr.Imm, Status: StatusOK, VTime: arrival})
		completeSend(Completion{Status: StatusOK, VTime: arrival + f.model.RCAckLatency})
		// The completion that carried an injected corruption cannot vouch for
		// the lane; only a clean completion closes open incidents on it.
		if !corrupted {
			led.CloseAll("rc", nil, rank, destLID, arrival+f.model.RCAckLatency, "completed")
		}
		return nil

	case OpRDMAWrite:
		mr, off, ok := f.resolve(dh, wr.RemoteAddr, wr.RKey, len(wr.Data))
		if !ok {
			completeSend(Completion{Status: StatusRemoteAccessErr, VTime: depart + f.model.RCSendLatency})
			return nil
		}
		// A bounced (unpinned) target region stages the payload through the
		// adapter's bounce slab: one extra copy at intra-node bandwidth.
		if mr.bounced {
			clk.Advance(f.model.IntraXferTime(len(wr.Data)))
		}
		depart = clk.Advance(f.occupancy(q.hca, dh, len(wr.Data)))
		arrival := depart + f.latencyOnly(q.hca, dh, f.model.RCSendLatency)
		errorBoth := func() {
			dh.mu.Lock()
			dq := dh.qpLocked(q.remote.QPN)
			dh.mu.Unlock()
			q.ToError()
			if dq != nil && dq.typ == RC {
				dq.ToError()
			}
		}
		// Injected one-sided data-plane faults, at the link's packet
		// granularity: the wire carries the message as ceil(n/RCMTU) packets,
		// each protected by an invariant CRC the receiving adapter verifies
		// before DMA, so what lands at the target is always a clean
		// whole-packet prefix — never damaged bytes. A concurrent polling
		// reader (flag waits, signal spins) can therefore observe stale or
		// partially-updated memory, but never garbage.
		pkts := (len(wr.Data) + RCMTU - 1) / RCMTU
		// Torn write: a link fault between packets. The packets already
		// delivered stay visible until the sender's reconnect replays the
		// write; the rest never arrive.
		if n := f.faults.tornWrite(pkts); n > 0 {
			landed := n * RCMTU
			q.obs.Emit(clk.Now(), obs.LayerIB, "fault-torn-write", -1, int64(landed))
			q.obs.Count("ib.fault.torn_write", 1)
			led.Open("rc", "torn-write", rank, destLID, clk.Now())
			dh.memMu.Lock()
			copy(mr.buf[off:off+landed], wr.Data[:landed])
			dh.memMu.Unlock()
			dh.countDelivery(landed)
			if mr.onWrite != nil {
				mr.onWrite(off, landed, arrival)
			}
			errorBoth()
			return ErrTornWrite
		}
		// Payload corruption: the damaged packet fails the ICRC check and is
		// dropped before DMA; the clean packets ahead of it (possibly none)
		// have landed, then the link dies. wr.Data is never touched — the
		// sender retains the pristine payload for replay.
		if prefix, hit := f.faults.rcCorruptWrite(pkts); hit {
			landed := prefix * RCMTU
			q.obs.Emit(clk.Now(), obs.LayerIB, "fault-rc-corrupt", -1, int64(landed))
			q.obs.Count("ib.fault.rc_corrupt", 1)
			led.Open("rc", "rc-corrupt", rank, destLID, clk.Now())
			if landed > 0 {
				dh.memMu.Lock()
				copy(mr.buf[off:off+landed], wr.Data[:landed])
				dh.memMu.Unlock()
				dh.countDelivery(landed)
				if mr.onWrite != nil {
					mr.onWrite(off, landed, arrival)
				}
			}
			errorBoth()
			return ErrRCCorrupt
		}
		dh.memMu.Lock()
		copy(mr.buf[off:], wr.Data)
		dh.memMu.Unlock()
		dh.countDelivery(len(wr.Data))
		if mr.onWrite != nil {
			mr.onWrite(off, len(wr.Data), arrival)
		}
		completeSend(Completion{Status: StatusOK, VTime: arrival + f.model.RCAckLatency})
		led.CloseAll("rc", nil, rank, destLID, arrival+f.model.RCAckLatency, "completed")
		return nil

	case OpRDMARead:
		mr, off, ok := f.resolve(dh, wr.RemoteAddr, wr.RKey, wr.Len)
		if !ok {
			completeSend(Completion{Status: StatusRemoteAccessErr, VTime: depart + f.model.RCSendLatency})
			return nil
		}
		// Injected corruption of the read response: no usable data reaches
		// the requester; the link-CRC failure kills the connection and the
		// requester re-issues the read after reconnect. Target memory is
		// untouched — reads have no remote side effect to tear.
		if f.faults.rcCorruptHit() {
			q.obs.Emit(clk.Now(), obs.LayerIB, "fault-rc-corrupt", -1, int64(wr.Len))
			q.obs.Count("ib.fault.rc_corrupt", 1)
			led.Open("rc", "rc-corrupt", rank, destLID, clk.Now())
			dh.mu.Lock()
			dq := dh.qpLocked(q.remote.QPN)
			dh.mu.Unlock()
			q.ToError()
			if dq != nil && dq.typ == RC {
				dq.ToError()
			}
			return ErrRCCorrupt
		}
		if mr.bounced {
			clk.Advance(f.model.IntraXferTime(wr.Len)) // stage through the slab
		}
		req := f.oneWay(q.hca, dh, f.model.RCSendLatency, 0)
		data := make([]byte, wr.Len)
		dh.memMu.Lock()
		copy(data, mr.buf[off:off+wr.Len])
		dh.memMu.Unlock()
		resp := f.oneWay(dh, q.hca, f.model.RCSendLatency, wr.Len)
		dh.countDelivery(wr.Len)
		completeSend(Completion{Status: StatusOK, Data: data, VTime: depart + req + resp})
		led.CloseAll("rc", nil, rank, destLID, depart+req+resp, "completed")
		return nil

	case OpFetchAdd, OpCmpSwap, OpSwap:
		mr, off, ok := f.resolve(dh, wr.RemoteAddr, wr.RKey, 8)
		if !ok {
			completeSend(Completion{Status: StatusRemoteAccessErr, VTime: depart + f.model.RCSendLatency})
			return nil
		}
		if wr.RemoteAddr%8 != 0 {
			return ErrUnaligned
		}
		if mr.bounced {
			clk.Advance(f.model.IntraXferTime(8)) // stage through the slab
		}
		req := f.oneWay(q.hca, dh, f.model.RCSendLatency, 8)
		dh.memMu.Lock()
		old := leU64(mr.buf[off : off+8])
		switch wr.Op {
		case OpFetchAdd:
			putLeU64(mr.buf[off:off+8], old+wr.Add)
		case OpCmpSwap:
			if old == wr.Compare {
				putLeU64(mr.buf[off:off+8], wr.Swap)
			}
		case OpSwap:
			putLeU64(mr.buf[off:off+8], wr.Swap)
		}
		dh.memMu.Unlock()
		arrival := depart + req + f.model.AtomicLatency
		dh.countDelivery(8)
		if mr.onWrite != nil {
			mr.onWrite(off, 8, arrival)
		}
		resp := f.oneWay(dh, q.hca, f.model.RCSendLatency, 8)
		completeSend(Completion{Status: StatusOK, Old: old, VTime: arrival + resp})
		led.CloseAll("rc", nil, rank, destLID, arrival+resp, "completed")
		return nil
	}
	return ErrOpUnsupported
}

// resolve validates an (rkey, addr, len) triple against the target adapter's
// memory-region table and returns the region and byte offset.
func (f *Fabric) resolve(dh *HCA, addr uint64, rkey uint32, n int) (*MR, int, bool) {
	mr := dh.lookupMR(rkey)
	if mr == nil || mr.dead || n < 0 {
		return nil, 0, false
	}
	if addr < mr.base || addr+uint64(n) > mr.base+uint64(len(mr.buf)) {
		return nil, 0, false
	}
	return mr, int(addr - mr.base), true
}
