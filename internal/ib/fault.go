package ib

import (
	"math/rand"
	"sync"
)

// FaultInjector perturbs the unreliable-datagram transport: drops, duplicates
// and (bounded) reordering. RC traffic is never perturbed — reliability is
// exactly what the RC hardware guarantees. A nil *FaultInjector injects
// nothing and is the default.
//
// The injector is deterministic for a given seed and call sequence, which
// keeps connection-manager fault tests reproducible.
type FaultInjector struct {
	mu  sync.Mutex
	rng *rand.Rand

	// DropProb is the probability a UD datagram is silently dropped.
	DropProb float64
	// DupProb is the probability a UD datagram is delivered twice.
	DupProb float64
	// MaxDrops caps the number of drops (0 = unlimited) so a test can
	// guarantee eventual delivery.
	MaxDrops int

	// DropFirstN drops the first N UD datagrams outright, regardless of
	// probability — handy for forcing the retransmission path.
	DropFirstN int

	drops int
	seen  int
}

// NewFaultInjector returns a deterministic injector.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// Drops reports how many datagrams have been dropped so far.
func (fi *FaultInjector) Drops() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.drops
}

// udFate decides the fate of one UD datagram.
func (fi *FaultInjector) udFate() (drop, dup bool) {
	if fi == nil {
		return false, false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.seen++
	if fi.seen <= fi.DropFirstN {
		fi.drops++
		return true, false
	}
	if fi.DropProb > 0 && (fi.MaxDrops == 0 || fi.drops < fi.MaxDrops) &&
		fi.rng.Float64() < fi.DropProb {
		fi.drops++
		return true, false
	}
	if fi.DupProb > 0 && fi.rng.Float64() < fi.DupProb {
		return false, true
	}
	return false, false
}
