package ib

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// ParseAllocFaults parses an allocation-failure specification: a
// comma-separated list of kind:n items ("qp:3,mr:2"), each failing an
// adapter's n-th allocation (1-based) of that kind. The launcher validates
// specs with it up front and the cluster applies the result via
// FailQPAllocOn/FailMRAllocOn.
func ParseAllocFaults(s string) (qp, mr []int, err error) {
	if s == "" {
		return nil, nil, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		kind, num, ok := strings.Cut(item, ":")
		if !ok {
			return nil, nil, fmt.Errorf("alloc-fault item %q: want kind:n (e.g. qp:3)", item)
		}
		n, nerr := strconv.Atoi(num)
		if nerr != nil || n < 1 {
			return nil, nil, fmt.Errorf("alloc-fault item %q: n must be a positive integer (1-based allocation index)", item)
		}
		switch kind {
		case "qp":
			qp = append(qp, n)
		case "mr":
			mr = append(mr, n)
		default:
			return nil, nil, fmt.Errorf("alloc-fault item %q: unknown kind %q (want qp or mr)", item, kind)
		}
	}
	return qp, mr, nil
}

// UDVerdict is the decision a UDFilter returns for one datagram.
type UDVerdict uint8

const (
	// VerdictDefault applies the injector's probabilistic fate.
	VerdictDefault UDVerdict = iota
	// VerdictDrop drops the datagram unconditionally.
	VerdictDrop
	// VerdictDeliver delivers the datagram, bypassing drop/dup/reorder.
	VerdictDeliver
)

// FaultInjector is the fabric's fault plane. It perturbs the
// unreliable-datagram transport — drops, duplicates and bounded reordering —
// and, separately, injects the reliable-transport faults a real fabric
// suffers: RC link faults (a queue pair transitions to the Error state
// mid-stream, so in-flight work fails back to the sender) and PE slowdowns
// (extra virtual time charged to the caller, modeling OS jitter or a
// descheduled process). UD loss/duplication is what the UD hardware permits;
// RC link faults model cable pulls, retry exhaustion and endpoint-cache
// evictions that upper layers must recover from. A nil *FaultInjector
// injects nothing and is the default.
//
// The injector is deterministic for a given seed and call sequence, which
// keeps connection-manager fault tests reproducible.
type FaultInjector struct {
	mu  sync.Mutex
	rng *rand.Rand

	// DropProb is the probability a UD datagram is silently dropped.
	DropProb float64
	// DupProb is the probability a UD datagram is delivered twice.
	DupProb float64
	// MaxDrops caps the number of drops (0 = unlimited) so a test can
	// guarantee eventual delivery.
	MaxDrops int

	// DropFirstN drops the first N UD datagrams outright, regardless of
	// probability — handy for forcing the retransmission path.
	DropFirstN int

	// ReorderProb is the probability a UD datagram is held back and
	// delivered late: its delivery is deferred until up to ReorderWindow
	// subsequent datagrams have been sent, so the receiver observes it out
	// of order. MaxReorders caps the number of held datagrams (0 =
	// unlimited).
	ReorderProb   float64
	ReorderWindow int // max datagrams that may overtake a held one (default 4)
	MaxReorders   int

	// FlapProb is the probability an RC operation triggers a link fault:
	// both queue pairs of the connection transition to the Error state
	// before any data moves, and the sender sees a synchronous ErrLinkDown.
	// MaxFlaps caps the number of injected faults (0 = unlimited).
	FlapProb float64
	MaxFlaps int

	// SlowProb is the probability an operation charges SlowTime extra
	// virtual nanoseconds to the calling PE's clock (PE slowdown injection).
	SlowProb float64
	SlowTime int64

	// CorruptProb is the probability a single bit of a UD datagram is
	// flipped in flight. UD has no hardware end-to-end payload protection in
	// this model, so detection is the receiver's job: checksummed control
	// frames discard the damage and the sender's retransmission recovers it.
	// MaxCorrupts caps the number of corruptions (0 = unlimited) so a test
	// can guarantee eventual convergence.
	CorruptProb float64
	MaxCorrupts int

	// RCCorruptProb is the probability an RC payload is corrupted in flight.
	// The two transport classes fail differently, matching real hardware. A
	// two-sided send suffers the end-to-end-argument failure: the flip slips
	// past the link CRCs (introduced before ICRC computation, or in switch
	// buffer memory), the damaged copy is delivered silently, and detection
	// is the job of the conduit's software integrity trailer. A one-sided
	// RDMA write or read suffers an in-flight flip that the receiving
	// adapter's per-packet ICRC catches before DMA: the damaged packet is
	// dropped, both queue pairs die and the sender sees ErrRCCorrupt — no
	// garbage ever lands, but the clean packets delivered before the fault
	// have, so replay-after-reconnect must overwrite the partial landing.
	// MaxRCCorrupts caps the number of injections (0 = unlimited).
	RCCorruptProb float64
	MaxRCCorrupts int

	// TornWriteProb is the probability an RDMA write spanning more than one
	// RCMTU packet suffers a link fault between packets: a deterministic
	// whole-packet prefix of the payload (at least one packet, never all of
	// them) is applied to the target memory region before both queue pairs
	// error out and the sender sees ErrTornWrite. This is the partially-
	// completed-RDMA failure mode of a torn-down QP; it breaks the
	// all-or-nothing delivery the reconnect replay would otherwise assume.
	// Single-packet writes cannot tear: a packet is the link's all-or-nothing
	// delivery unit. MaxTornWrites caps the number of injections (0 =
	// unlimited).
	TornWriteProb float64
	MaxTornWrites int

	// UDFilter, if non-nil, inspects each UD datagram payload and may force
	// its fate, overriding the probabilistic knobs. Tests use it to lose one
	// specific protocol leg (e.g. exactly the first ConnRep).
	UDFilter func(payload []byte) UDVerdict

	drops      int
	dups       int
	seen       int
	reorders   int
	flaps      int
	slowdowns  int
	corrupts   int
	rcCorrupts int
	tornWrites int
	held       []heldDelivery

	// failQP and failMR schedule specific allocation attempts (1-based,
	// counted per adapter) to fail with the matching exhaustion error, so
	// tests can fail "the Nth registration" deterministically regardless of
	// how big the budgets are. See FailQPAllocOn / FailMRAllocOn.
	failQP     map[int]bool
	failMR     map[int]bool
	allocFails int

	peSched  map[int]*peFault
	peKills  int
	peWedges int

	// Rail-scoped fault schedules (see rail.go): port failures, whole-rail
	// failures and partition windows, all tripping on virtual time. The
	// *Injected counters advance at scheduling time — a scheduled network
	// fault IS the injection.
	portFaults         []portFault
	railFaults         []railFault
	partitions         []partitionWindow
	portFaultsInjected int
	railFaultsInjected int
	partitionsInjected int
}

// PEFate is a PE's failure state under the injected kill/wedge schedule.
type PEFate uint8

const (
	// PEAlive is the normal state: no failure scheduled, or not yet due.
	PEAlive PEFate = iota
	// PEKilled models a process crash: the PE vanishes at the scheduled
	// virtual time — its queue pairs die and it stops sending and receiving.
	PEKilled
	// PEWedged models a hung process: the PE stops making software progress
	// (no AM handlers, no heartbeat replies, no new sends) but its queue
	// pairs stay alive, so the fabric still ACKs RDMA against its memory.
	PEWedged
)

// peFault is one scheduled PE failure.
type peFault struct {
	fate  PEFate
	at    int64 // virtual trigger time
	fired bool
}

// heldDelivery is a datagram delivery deferred for reordering. ttl is the
// number of subsequent datagrams that may still overtake it.
type heldDelivery struct {
	deliver func()
	ttl     int
}

// NewFaultInjector returns a deterministic injector.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// Drops reports how many datagrams have been dropped so far.
func (fi *FaultInjector) Drops() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.drops
}

// Dups reports how many datagrams have been delivered twice.
func (fi *FaultInjector) Dups() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.dups
}

// Reorders reports how many datagrams have been held for late delivery.
func (fi *FaultInjector) Reorders() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.reorders
}

// Flaps reports how many RC link faults have been injected.
func (fi *FaultInjector) Flaps() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.flaps
}

// Slowdowns reports how many PE slowdowns have been injected.
func (fi *FaultInjector) Slowdowns() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.slowdowns
}

// Corrupts reports how many datagrams have had a bit flipped in flight.
func (fi *FaultInjector) Corrupts() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.corrupts
}

// corruptData decides whether to corrupt one in-flight datagram and, when it
// does, flips a single random bit of data in place. The flip never changes
// the buffer length, so detection must come from content verification (the
// control-frame checksum), not framing.
func (fi *FaultInjector) corruptData(data []byte) bool {
	if fi == nil || len(data) == 0 {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.CorruptProb <= 0 || (fi.MaxCorrupts > 0 && fi.corrupts >= fi.MaxCorrupts) {
		return false
	}
	if fi.rng.Float64() >= fi.CorruptProb {
		return false
	}
	bit := fi.rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	fi.corrupts++
	return true
}

// RCCorrupts reports how many RC payloads have been corrupted in flight.
func (fi *FaultInjector) RCCorrupts() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.rcCorrupts
}

// TornWrites reports how many RDMA writes have been torn mid-transfer.
func (fi *FaultInjector) TornWrites() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.tornWrites
}

// rcCorruptLocked is the shared RC-corruption decision: probability and cap
// check plus the counter bump. Callers hold fi.mu.
func (fi *FaultInjector) rcCorruptLocked() bool {
	if fi.RCCorruptProb <= 0 || (fi.MaxRCCorrupts > 0 && fi.rcCorrupts >= fi.MaxRCCorrupts) {
		return false
	}
	if fi.rng.Float64() >= fi.RCCorruptProb {
		return false
	}
	fi.rcCorrupts++
	return true
}

// rcCorruptData decides whether to corrupt one two-sided RC payload and, when
// it does, flips a single random bit of data in place — the silent,
// delivered-past-the-link-CRC flavor of corruption.
func (fi *FaultInjector) rcCorruptData(data []byte) bool {
	if fi == nil || len(data) == 0 {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if !fi.rcCorruptLocked() {
		return false
	}
	bit := fi.rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	return true
}

// rcCorruptHit is the decision-only form for operations with no sender-side
// buffer to damage (RDMA reads: the corrupt response packet is dropped by
// the requester's ICRC check, so the requester simply gets nothing back).
func (fi *FaultInjector) rcCorruptHit() bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.rcCorruptLocked()
}

// rcCorruptWrite decides whether one packet of an RDMA write spanning pkts
// link packets is corrupted in flight. The receiving adapter's ICRC check
// drops the damaged packet before DMA, so the injection reports how many
// clean packets preceded it — possibly 0 — and that prefix is all that lands
// before the link dies.
func (fi *FaultInjector) rcCorruptWrite(pkts int) (prefix int, hit bool) {
	if fi == nil || pkts < 1 {
		return 0, false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if !fi.rcCorruptLocked() {
		return 0, false
	}
	return fi.rng.Intn(pkts), true
}

// tornWrite decides whether an RDMA write spanning pkts link packets is torn
// mid-transfer. It returns the number of whole packets that land at the
// target — at least 1, strictly fewer than pkts — or 0 when no tear is
// injected. Single-packet writes cannot tear: a packet is the link's
// all-or-nothing delivery unit.
func (fi *FaultInjector) tornWrite(pkts int) int {
	if fi == nil || fi.TornWriteProb <= 0 || pkts < 2 {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.MaxTornWrites > 0 && fi.tornWrites >= fi.MaxTornWrites {
		return 0
	}
	if fi.rng.Float64() >= fi.TornWriteProb {
		return 0
	}
	fi.tornWrites++
	return 1 + fi.rng.Intn(pkts-1)
}

// KillPE schedules rank to crash at virtual time at. The injection trips the
// first time the PE (or traffic destined for it) observes a virtual time at
// or past the schedule.
func (fi *FaultInjector) KillPE(rank int, at int64) { fi.schedulePE(rank, PEKilled, at) }

// WedgePE schedules rank to stop making progress at virtual time at while its
// queue pairs keep ACKing at the fabric level.
func (fi *FaultInjector) WedgePE(rank int, at int64) { fi.schedulePE(rank, PEWedged, at) }

func (fi *FaultInjector) schedulePE(rank int, fate PEFate, at int64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.peSched == nil {
		fi.peSched = make(map[int]*peFault)
	}
	fi.peSched[rank] = &peFault{fate: fate, at: at}
}

// PEFaultsScheduled reports whether any kill/wedge injections exist. Upper
// layers arm their failure detector only when this is true (the analogue of
// Fabric.Lossy gating the retransmission timer), so fault-free runs pay
// nothing for the failure plane.
func (fi *FaultInjector) PEFaultsScheduled() bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return len(fi.peSched) > 0
}

// PEFate returns rank's failure state at virtual time now. The first call at
// or past the scheduled trigger time trips the injection and counts it.
func (fi *FaultInjector) PEFate(rank int, now int64) PEFate {
	if fi == nil {
		return PEAlive
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	f := fi.peSched[rank]
	if f == nil || now < f.at {
		return PEAlive
	}
	if !f.fired {
		f.fired = true
		if f.fate == PEKilled {
			fi.peKills++
		} else {
			fi.peWedges++
		}
	}
	return f.fate
}

// PEKills reports how many scheduled crashes have tripped.
func (fi *FaultInjector) PEKills() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.peKills
}

// PEWedges reports how many scheduled wedges have tripped.
func (fi *FaultInjector) PEWedges() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.peWedges
}

// FailQPAllocOn schedules the given queue-pair allocation attempts (1-based,
// counted per adapter across all its PEs) to fail with ErrQPExhausted.
func (fi *FaultInjector) FailQPAllocOn(ns ...int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.failQP == nil {
		fi.failQP = make(map[int]bool)
	}
	for _, n := range ns {
		fi.failQP[n] = true
	}
}

// FailMRAllocOn schedules the given memory-registration attempts (1-based,
// counted per adapter) to fail with ErrMRExhausted.
func (fi *FaultInjector) FailMRAllocOn(ns ...int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.failMR == nil {
		fi.failMR = make(map[int]bool)
	}
	for _, n := range ns {
		fi.failMR[n] = true
	}
}

// AllocFailsInjected reports how many scheduled allocation failures tripped.
func (fi *FaultInjector) AllocFailsInjected() int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.allocFails
}

// failQPAlloc reports whether the adapter's n-th QP allocation is scheduled
// to fail.
func (fi *FaultInjector) failQPAlloc(n int) bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.failQP[n] {
		fi.allocFails++
		return true
	}
	return false
}

// failMRAlloc reports whether the adapter's n-th MR registration is scheduled
// to fail.
func (fi *FaultInjector) failMRAlloc(n int) bool {
	if fi == nil {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.failMR[n] {
		fi.allocFails++
		return true
	}
	return false
}

// udFate decides the fate of one UD datagram. hold means the delivery must
// be deferred via holdDelivery so later datagrams overtake it.
func (fi *FaultInjector) udFate(payload []byte) (drop, dup, hold bool) {
	if fi == nil {
		return false, false, false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.seen++
	if fi.UDFilter != nil {
		switch fi.UDFilter(payload) {
		case VerdictDrop:
			fi.drops++
			return true, false, false
		case VerdictDeliver:
			return false, false, false
		}
	}
	if fi.seen <= fi.DropFirstN {
		fi.drops++
		return true, false, false
	}
	if fi.DropProb > 0 && (fi.MaxDrops == 0 || fi.drops < fi.MaxDrops) &&
		fi.rng.Float64() < fi.DropProb {
		fi.drops++
		return true, false, false
	}
	if fi.ReorderProb > 0 && (fi.MaxReorders == 0 || fi.reorders < fi.MaxReorders) &&
		fi.rng.Float64() < fi.ReorderProb {
		fi.reorders++
		return false, false, true
	}
	if fi.DupProb > 0 && fi.rng.Float64() < fi.DupProb {
		fi.dups++
		return false, true, false
	}
	return false, false, false
}

// holdDelivery parks a datagram delivery chosen for reordering. It is
// released after a bounded number of subsequent datagrams (drawn from
// [1, ReorderWindow]) have been sent, or by ReleaseHeld.
func (fi *FaultInjector) holdDelivery(deliver func()) {
	fi.mu.Lock()
	w := fi.ReorderWindow
	if w <= 0 {
		w = 4
	}
	// +1 compensates for the aging pass the holding send itself performs on
	// return, so the effective delay is 1..ReorderWindow subsequent sends.
	fi.held = append(fi.held, heldDelivery{deliver: deliver, ttl: 2 + fi.rng.Intn(w)})
	fi.mu.Unlock()
}

// dueDeliveries ages every held datagram by one send and returns the
// deliveries whose reorder window expired. The caller invokes them outside
// the injector lock.
func (fi *FaultInjector) dueDeliveries() []func() {
	if fi == nil {
		return nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if len(fi.held) == 0 {
		return nil
	}
	var due []func()
	kept := fi.held[:0]
	for _, h := range fi.held {
		h.ttl--
		if h.ttl <= 0 {
			due = append(due, h.deliver)
		} else {
			kept = append(kept, h)
		}
	}
	fi.held = kept
	return due
}

// ReleaseHeld immediately delivers every datagram still parked for
// reordering. Tests and teardown paths use it to flush the window.
func (fi *FaultInjector) ReleaseHeld() {
	if fi == nil {
		return
	}
	fi.mu.Lock()
	held := fi.held
	fi.held = nil
	fi.mu.Unlock()
	for _, h := range held {
		h.deliver()
	}
}

// rcFlap reports whether this RC operation suffers an injected link fault.
func (fi *FaultInjector) rcFlap() bool {
	if fi == nil || fi.FlapProb <= 0 {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.MaxFlaps > 0 && fi.flaps >= fi.MaxFlaps {
		return false
	}
	if fi.rng.Float64() < fi.FlapProb {
		fi.flaps++
		return true
	}
	return false
}

// slowdown returns the extra virtual time to charge the caller, usually 0.
func (fi *FaultInjector) slowdown() int64 {
	if fi == nil || fi.SlowProb <= 0 || fi.SlowTime <= 0 {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.rng.Float64() < fi.SlowProb {
		fi.slowdowns++
		return fi.SlowTime
	}
	return 0
}
