package mpi_test

import (
	"fmt"
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
)

// runHybrid launches a job and gives the body both runtimes over one conduit.
func runHybrid(t *testing.T, n int, mode gasnet.Mode, body func(c *shmem.Ctx, m *mpi.Comm)) *cluster.Result {
	t.Helper()
	res, err := cluster.Run(cluster.Config{NP: n, PPN: 4, Mode: mode, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			m := mpi.New(c.Conduit())
			body(c, m)
		})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSendRecv(t *testing.T) {
	runHybrid(t, 2, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
		if m.Rank() == 0 {
			if err := m.Send(1, 7, []byte("ping")); err != nil {
				t.Error(err)
			}
			data, st := m.Recv(1, 8)
			if string(data) != "pong" || st.Source != 1 || st.Tag != 8 {
				t.Errorf("got %q %+v", data, st)
			}
		} else {
			data, st := m.Recv(0, 7)
			if string(data) != "ping" || st.Len != 4 {
				t.Errorf("got %q %+v", data, st)
			}
			if err := m.Send(0, 8, []byte("pong")); err != nil {
				t.Error(err)
			}
		}
		m.Barrier()
	})
}

func TestRecvWildcardsAndFIFO(t *testing.T) {
	runHybrid(t, 3, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
		switch m.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				if err := m.Send(2, 10, []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			}
		case 1:
			if err := m.Send(2, 20, []byte{99}); err != nil {
				t.Error(err)
			}
		case 2:
			// FIFO per (src, tag): the five tag-10 messages arrive in order.
			for i := 0; i < 5; i++ {
				data, _ := m.Recv(0, 10)
				if data[0] != byte(i) {
					t.Errorf("tag-10 msg %d = %d", i, data[0])
				}
			}
			data, st := m.Recv(mpi.AnySource, mpi.AnyTag)
			if st.Source != 1 || st.Tag != 20 || data[0] != 99 {
				t.Errorf("wildcard recv: %v %+v", data, st)
			}
		}
		m.Barrier()
	})
}

func TestBcastAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runHybrid(t, n, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
				var in []byte
				if m.Rank() == n-1 {
					in = []byte("rooted")
				}
				out := m.Bcast(n-1, in)
				if string(out) != "rooted" {
					t.Errorf("rank %d: %q", m.Rank(), out)
				}
				m.Barrier()
			})
		})
	}
}

func TestAllreduce(t *testing.T) {
	const n = 6
	runHybrid(t, n, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
		r := int64(m.Rank())
		sum := m.AllreduceInt64(mpi.OpSum, []int64{r, 1})
		if sum[0] != n*(n-1)/2 || sum[1] != n {
			t.Errorf("sum = %v", sum)
		}
		max := m.AllreduceInt64(mpi.OpMax, []int64{r})
		if max[0] != n-1 {
			t.Errorf("max = %v", max)
		}
		min := m.AllreduceInt64(mpi.OpMin, []int64{r - 100})
		if min[0] != -100 {
			t.Errorf("min = %v", min)
		}
		lor := m.AllreduceInt64(mpi.OpLOr, []int64{boolTo64(m.Rank() == 3)})
		if lor[0] != 1 {
			t.Errorf("lor = %v", lor)
		}
		land := m.AllreduceInt64(mpi.OpLAnd, []int64{boolTo64(m.Rank() != 3)})
		if land[0] != 0 {
			t.Errorf("land = %v", land)
		}
	})
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestAllgatherOrder(t *testing.T) {
	const n = 5
	runHybrid(t, n, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
		got := m.AllgatherInt64([]int64{int64(m.Rank() * 7)})
		for r := 0; r < n; r++ {
			if got[r] != int64(r*7) {
				t.Errorf("rank %d: got[%d] = %d", m.Rank(), r, got[r])
				return
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	runHybrid(t, n, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
		bufs := make([][]byte, n)
		for i := range bufs {
			bufs[i] = []byte(fmt.Sprintf("%d->%d", m.Rank(), i))
		}
		out := m.Alltoallv(bufs)
		for src := 0; src < n; src++ {
			want := fmt.Sprintf("%d->%d", src, m.Rank())
			if string(out[src]) != want {
				t.Errorf("from %d: %q, want %q", src, out[src], want)
			}
		}
	})
}

// Hybrid sharing: an MPI send and an OpenSHMEM put to the same peer must use
// one connection pool (the unified-runtime property).
func TestHybridSharesConnections(t *testing.T) {
	const n = 4
	res := runHybrid(t, n, gasnet.OnDemand, func(c *shmem.Ctx, m *mpi.Comm) {
		right := (c.Me() + 1) % n
		a := c.Malloc(8)
		c.P64(a, int64(c.Me()), right) // shmem put establishes the connection
		c.Quiet()
		if err := m.Send(right, 1, []byte("x")); err != nil { // MPI reuses it
			t.Error(err)
		}
		m.Recv((c.Me()-1+n)%n, 1)
		c.BarrierAll()
	})
	for _, p := range res.PEs {
		// Ring + barrier partners: with a shared pool the RC endpoint count
		// stays far below the all-to-all N. Allow the handful the dissemination
		// barrier (log2 n = 2 peers) and finalize add.
		if p.Stats.RCQPsCreated > 8 {
			t.Fatalf("rank %d created %d RC QPs; hybrid should share the pool", p.Rank, p.Stats.RCQPsCreated)
		}
	}
}

func TestHybridStaticMode(t *testing.T) {
	runHybrid(t, 4, gasnet.Static, func(c *shmem.Ctx, m *mpi.Comm) {
		sum := m.AllreduceInt64(mpi.OpSum, []int64{1})
		if sum[0] != 4 {
			t.Errorf("sum = %v", sum)
		}
		c.BarrierAll()
	})
}
