// Package mpi is a minimal MPI implementation layered on the same conduit as
// the OpenSHMEM runtime — the unified-runtime model of MVAPICH2-X that the
// paper's hybrid MPI+OpenSHMEM experiments rely on. Because both models share
// one connection pool, a connection established by an MPI send is reused by
// OpenSHMEM puts (and vice versa), resources are consolidated, and the
// deadlocks of running two independent stacks cannot arise.
//
// The subset implemented is what the paper's hybrid Graph500 needs: two-sided
// point-to-point with tag matching (eager protocol over active messages) and
// the common collectives.
package mpi

import (
	"encoding/binary"
	"fmt"
	"sync"

	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// amSend carries eager point-to-point payloads; MPI handler ids live above
// the OpenSHMEM runtime's (32+ per the conduit's id-space convention).
const amSend uint8 = 32

// collTagBase places collective traffic in a tag space user code cannot
// reach (user tags must be >= 0).
const collTagBase = -1 << 30

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Len    int
}

type message struct {
	src  int
	tag  int
	data []byte
	at   int64
}

// Comm is the communicator (COMM_WORLD; the simulation does not split
// communicators).
type Comm struct {
	c    *gasnet.Conduit
	clk  *vclock.Clock
	rank int
	n    int

	obs   *obs.PE
	hSend *obs.Hist
	hRecv *obs.Hist
	hColl *obs.Hist

	mu         sync.Mutex
	cond       *sync.Cond
	unexpected []*message

	collSeq int64
}

// New attaches an MPI communicator to an existing conduit. In a hybrid
// program pass shmem.Ctx.Conduit() so both models share connections.
func New(c *gasnet.Conduit) *Comm {
	m := &Comm{c: c, clk: c.Clock(), rank: c.Rank(), n: c.NProcs(), obs: c.Obs()}
	m.hSend = m.obs.Hist("mpi.send_ns")
	m.hRecv = m.obs.Hist("mpi.recv_ns")
	m.hColl = m.obs.Hist("mpi.collective_ns")
	m.cond = sync.NewCond(&m.mu)
	c.RegisterHandler(amSend, func(src int, args [4]uint64, payload []byte, at int64) {
		msg := &message{src: src, tag: int(int64(args[0])), data: payload, at: at}
		m.mu.Lock()
		m.unexpected = append(m.unexpected, msg)
		m.mu.Unlock()
		m.cond.Broadcast()
	})
	// Wake blocked receivers when the job aborts so they observe the error
	// instead of waiting forever for a message from a dead peer.
	c.OnAbort(func(error) { m.cond.Broadcast() })
	return m
}

// Rank returns this process's rank.
func (m *Comm) Rank() int { return m.rank }

// Size returns the communicator size.
func (m *Comm) Size() int { return m.n }

// Send transmits data to dest with the given tag (eager, like MPI_Send for
// small messages: it returns once the buffer is reusable).
func (m *Comm) Send(dest, tag int, data []byte) error {
	if dest < 0 || dest >= m.n {
		return fmt.Errorf("mpi: dest %d out of range", dest)
	}
	start := m.clk.Now()
	// Flow-matrix classification rides on the tag sign: user point-to-point
	// traffic has tags >= 0, internal collective rounds use negative tags.
	kind := obs.FlowAM
	if tag < 0 {
		kind = obs.FlowColl
	}
	err := m.c.AMRequestKind(dest, amSend, [4]uint64{uint64(int64(tag))}, data, kind)
	// Internal collective traffic (negative tags) is spanned by its
	// collective, not per fragment.
	if tag >= 0 && err == nil && m.obs.Active() {
		end := m.clk.Now()
		m.obs.Span(start, end, obs.LayerMPI, "send", dest, int64(len(data)))
		m.hSend.Record(end - start)
	}
	return err
}

// Recv blocks for a matching message (src/tag may be AnySource/AnyTag) and
// returns its payload. Matching is FIFO per (source, tag) pair, as MPI
// requires.
func (m *Comm) Recv(src, tag int) ([]byte, Status) {
	if src >= 0 {
		m.c.MonitorPeer(src)
	}
	start := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.unexpected {
			// AnyTag matches only user tags (>= 0); internal collective
			// traffic (negative tags) is in a separate context, like an
			// MPI communicator's collective context id.
			if (src == AnySource || msg.src == src) &&
				((tag == AnyTag && msg.tag >= 0) || msg.tag == tag) {
				m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
				m.clk.AdvanceTo(msg.at)
				if msg.tag >= 0 && m.obs.Active() {
					end := m.clk.Now()
					m.obs.Span(start, end, obs.LayerMPI, "recv", msg.src, int64(len(msg.data)))
					m.hRecv.Record(end - start)
				}
				return msg.data, Status{Source: msg.src, Tag: msg.tag, Len: len(msg.data)}
			}
		}
		if err := m.c.LivenessErr(); err != nil {
			panic(fmt.Errorf("mpi: recv from rank %d: %w", src, err))
		}
		m.cond.Wait()
	}
}

// Sendrecv exchanges messages with two (possibly equal) peers.
func (m *Comm) Sendrecv(dest, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	if err := m.Send(dest, sendTag, data); err != nil {
		return nil, Status{}, err
	}
	b, st := m.Recv(src, recvTag)
	return b, st, nil
}

// nextSeq sequences collective operations; all ranks must call collectives
// in the same order (an MPI requirement).
func (m *Comm) nextSeq() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.collSeq++
	return m.collSeq
}

// collTag builds a reserved tag for round r of collective op seq.
func collTag(seq int64, round int) int { return collTagBase + int(seq)*64 + round }

// collSpan closes a collective's observability span and feeds the MPI
// collective latency histogram.
func (m *Comm) collSpan(kind string, start int64) {
	if !m.obs.Active() {
		return
	}
	end := m.clk.Now()
	m.obs.Span(start, end, obs.LayerMPI, kind, -1, 0)
	m.hColl.Record(end - start)
}

// Barrier blocks until all ranks arrive (dissemination algorithm).
func (m *Comm) Barrier() {
	if m.n == 1 {
		return
	}
	start := m.clk.Now()
	defer m.collSpan("barrier", start)
	seq := m.nextSeq()
	for k, dist := 0, 1; dist < m.n; k, dist = k+1, dist*2 {
		to := (m.rank + dist) % m.n
		from := (m.rank - dist%m.n + m.n) % m.n
		if err := m.Send(to, collTag(seq, k), nil); err != nil {
			panic(fmt.Errorf("mpi: barrier: %w", err))
		}
		m.Recv(from, collTag(seq, k))
	}
}

// Bcast distributes root's buffer to all ranks (binomial tree) and returns
// it on every rank.
func (m *Comm) Bcast(root int, data []byte) []byte {
	if m.n == 1 {
		return data
	}
	start := m.clk.Now()
	defer m.collSpan("bcast", start)
	seq := m.nextSeq()
	relative := (m.rank - root + m.n) % m.n
	buf := data
	mask := 1
	for mask < m.n {
		if relative&mask != 0 {
			parent := (relative - mask + root) % m.n
			buf, _ = m.Recv(parent, collTag(seq, 0))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < m.n {
			dst := (relative + mask + root) % m.n
			if err := m.Send(dst, collTag(seq, 0), buf); err != nil {
				panic(fmt.Errorf("mpi: bcast: %w", err))
			}
		}
		mask >>= 1
	}
	return buf
}

// Op names the predefined reduction operators.
type Op uint8

const (
	OpSum Op = iota
	OpMin
	OpMax
	OpLOr  // logical or
	OpLAnd // logical and
)

func combine(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpLOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case OpLAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	}
	panic("mpi: unknown op")
}

// AllreduceInt64 reduces element-wise across all ranks; every rank gets the
// result (binomial reduce to rank 0, then broadcast).
func (m *Comm) AllreduceInt64(op Op, local []int64) []int64 {
	start := m.clk.Now()
	defer m.collSpan("allreduce", start)
	acc := append([]int64(nil), local...)
	if m.n > 1 {
		seq := m.nextSeq()
		for mask := 1; mask < m.n; mask <<= 1 {
			if m.rank&mask == 0 {
				src := m.rank | mask
				if src < m.n {
					b, _ := m.Recv(src, collTag(seq, 1))
					for i := range acc {
						acc[i] = combine(op, acc[i], int64(binary.LittleEndian.Uint64(b[8*i:])))
					}
				}
			} else {
				buf := make([]byte, 8*len(acc))
				for i, v := range acc {
					binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
				}
				if err := m.Send(m.rank&^mask, collTag(seq, 1), buf); err != nil {
					panic(fmt.Errorf("mpi: allreduce: %w", err))
				}
				break
			}
		}
	}
	buf := make([]byte, 8*len(acc))
	for i, v := range acc {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	out := m.Bcast(0, buf)
	res := make([]int64, len(local))
	for i := range res {
		res[i] = int64(binary.LittleEndian.Uint64(out[8*i:]))
	}
	return res
}

// AllgatherInt64 gathers one int64 vector per rank, concatenated in rank
// order on every rank.
func (m *Comm) AllgatherInt64(local []int64) []int64 {
	buf := make([]byte, 8*len(local))
	for i, v := range local {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	blocks := m.allgatherBytes(buf)
	out := make([]int64, 0, m.n*len(local))
	for _, b := range blocks {
		for i := 0; i < len(b); i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(b[i:])))
		}
	}
	return out
}

// allgatherBytes is a ring allgather returning per-rank blocks.
func (m *Comm) allgatherBytes(local []byte) [][]byte {
	blocks := make([][]byte, m.n)
	blocks[m.rank] = local
	if m.n == 1 {
		return blocks
	}
	start := m.clk.Now()
	defer m.collSpan("allgather", start)
	seq := m.nextSeq()
	right := (m.rank + 1) % m.n
	left := (m.rank - 1 + m.n) % m.n
	cur := m.rank
	for step := 0; step < m.n-1; step++ {
		if err := m.Send(right, collTag(seq, step), blocks[cur]); err != nil {
			panic(fmt.Errorf("mpi: allgather: %w", err))
		}
		b, _ := m.Recv(left, collTag(seq, step))
		cur = (cur - 1 + m.n) % m.n
		blocks[cur] = b
	}
	return blocks
}

// Alltoallv sends bufs[i] to rank i and returns what every rank sent to us,
// indexed by source (naive pairwise exchange).
func (m *Comm) Alltoallv(bufs [][]byte) [][]byte {
	if len(bufs) != m.n {
		panic("mpi: Alltoallv needs one buffer per rank")
	}
	start := m.clk.Now()
	defer m.collSpan("alltoallv", start)
	seq := m.nextSeq()
	out := make([][]byte, m.n)
	out[m.rank] = bufs[m.rank]
	for off := 1; off < m.n; off++ {
		dst := (m.rank + off) % m.n
		src := (m.rank - off + m.n) % m.n
		if err := m.Send(dst, collTag(seq, 0), bufs[dst]); err != nil {
			panic(fmt.Errorf("mpi: alltoallv: %w", err))
		}
		b, _ := m.Recv(src, collTag(seq, 0))
		out[src] = b
	}
	return out
}
