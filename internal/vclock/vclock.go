// Package vclock provides the virtual-time engine used by the simulated
// cluster. Every processing element (PE) owns a Clock; local actions advance
// it by charges taken from a CostModel, and every simulated network or PMI
// message carries the sender's virtual timestamp plus a modeled latency. A
// receiver advances its clock to max(local, arrival), so blocking operations
// propagate the critical path exactly like a max-plus discrete-event
// simulation while the protocols themselves run as ordinary concurrent Go
// code with real data movement.
//
// All times and durations are int64 nanoseconds of virtual time.
package vclock

import "sync/atomic"

// Clock is a per-PE monotone virtual clock. The owning goroutine advances it;
// other goroutines may read it (Now) or push it forward (AdvanceTo) when they
// deliver work whose completion time is known, so all methods are safe for
// concurrent use.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock starting at the given virtual time.
func NewClock(start int64) *Clock {
	c := &Clock{}
	c.now.Store(start)
	return c
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now.Load() }

// Advance adds d nanoseconds of virtual time. Negative charges are ignored so
// cost-model arithmetic can never move a clock backwards.
func (c *Clock) Advance(d int64) int64 {
	if d <= 0 {
		return c.now.Load()
	}
	return c.now.Add(d)
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time (max-plus merge). It returns the resulting time.
func (c *Clock) AdvanceTo(t int64) int64 {
	for {
		cur := c.now.Load()
		if t <= cur {
			return cur
		}
		if c.now.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// Convenience duration units in virtual nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * 1000
	Second      int64 = 1000 * 1000 * 1000
)

// Seconds converts a virtual-time duration to float seconds for reporting.
func Seconds(ns int64) float64 { return float64(ns) / 1e9 }
