package vclock

import "math"

// CostModel holds the calibrated virtual-time charges for every simulated
// hardware and middleware action. The defaults are tuned (see EXPERIMENTS.md)
// so that the reproduction exhibits the shapes reported in the paper on its
// two clusters (QDR/FDR InfiniBand, 8-16 processes per node): connection
// setup and PMI exchange dominate static-mode startup and grow with the
// process count, while on-demand startup stays near constant.
//
// All durations are virtual nanoseconds.
type CostModel struct {
	// --- InfiniBand verbs ---

	// UDQPCreate is the cost of creating an Unreliable Datagram QP.
	UDQPCreate int64
	// RCQPCreate is the cost of creating a Reliable Connected QP
	// (allocating the QP and its associated structures).
	RCQPCreate int64
	// QPTransition is the cost of one ModifyQP state transition
	// (Reset->Init, Init->RTR, RTR->RTS).
	QPTransition int64
	// MemRegPerMB is the memory-registration (pinning) cost per MiB.
	MemRegPerMB int64
	// MemRegBase is the fixed per-MR registration cost.
	MemRegBase int64

	// SendPostOverhead is the CPU cost of posting one work request.
	SendPostOverhead int64
	// UDSendLatency is the one-way latency of a UD datagram (short message).
	UDSendLatency int64
	// RCSendLatency is the one-way latency of an RC send/RDMA-write header.
	RCSendLatency int64
	// RCAckLatency is the additional time until the sender-side completion
	// of a reliable operation (hardware ack).
	RCAckLatency int64
	// AtomicLatency is the additional target-side execution time of a
	// fetching network atomic.
	AtomicLatency int64
	// BytesPerUS is the wire bandwidth in bytes per virtual microsecond
	// (e.g. 4000 == 4 GB/s).
	BytesPerUS int64
	// IntraNodeLatency is the one-way latency for communication between two
	// PEs on the same node (shared memory / HCA loopback).
	IntraNodeLatency int64
	// IntraNodeBytesPerUS is the intra-node copy bandwidth.
	IntraNodeBytesPerUS int64

	// HCACacheQPs is the number of endpoint contexts the HCA can cache
	// on-chip. When the number of live RC QPs on an HCA exceeds this, every
	// message through that HCA pays HCACacheMissPenalty (ICM cache thrash,
	// paper section I, item 3).
	HCACacheQPs int
	// HCACacheMissPenalty is the extra per-message latency when the
	// endpoint cache is oversubscribed.
	HCACacheMissPenalty int64
	// AMProcess is the software cost of dispatching one active message at
	// the receiver.
	AMProcess int64
	// ConnReqProcess is the software cost of handling one connection
	// request or reply message in the connection-manager thread.
	ConnReqProcess int64
	// ConnRetransmitTimeout is the virtual retransmission timeout for the
	// UD-based connection handshake.
	ConnRetransmitTimeout int64
	// RQDrain is the time a received message occupies a receive-queue slot
	// before the target's software reposts the buffer. With a finite
	// per-QP receive-queue depth (Limits.RQDepth) a sender outpacing this
	// drain rate gets receiver-not-ready NAKs.
	RQDrain int64
	// RNRRetryDelay is the sender's base backoff after a receiver-not-ready
	// NAK or a zero-credit stall; retries back off exponentially from it.
	RNRRetryDelay int64
	// HeartbeatPeriod is the virtual time between failure-detector probe
	// rounds; confirming a dead PE costs a bounded number of these periods.
	HeartbeatPeriod int64

	// --- PMI (out-of-band, TCP through the process manager) ---

	// PMIPut and PMIGet are the local KVS commit/lookup costs.
	PMIPut int64
	PMIGet int64
	// PMIFenceBase is the fixed cost of a Fence (tree setup).
	PMIFenceBase int64
	// PMIFencePerProc is the per-process cost of the process manager's KVS
	// commit/distribution work during a Fence — the term that makes PMI
	// exchange grow linearly with job size (paper section I). Total cost:
	//   PMIFenceBase + ceil(log2 N)*PMIFenceHop
	//     + N*(PMIFencePerProc + bytes*PMIFencePerProcByte).
	PMIFencePerProc int64
	// PMIFencePerProcByte is the per-process-per-byte data term.
	PMIFencePerProcByte int64
	// PMIFenceHop is the per-tree-level latency.
	PMIFenceHop int64
	// PMIAllgatherPerProc and PMIAllgatherPerProcByte are the background
	// completion terms of PMIX_Iallgather (symmetric pattern, cheaper than
	// Put-Fence-Get, and overlappable).
	PMIAllgatherPerProc     int64
	PMIAllgatherPerProcByte int64
	// PMINonBlockingLaunch is the cost of initiating a non-blocking PMI
	// operation (the part that cannot be overlapped).
	PMINonBlockingLaunch int64

	// FlopsPerUS is the effective local compute throughput used to charge
	// application kernels' arithmetic in virtual time (flops per virtual
	// microsecond; ~2.5 GF/s matches one 2012-era Xeon core).
	FlopsPerUS int64

	// --- Job launch & init phases ---

	// LaunchBase, LaunchPerNode and LaunchPerProc model the process
	// manager's fork/exec fan-out before main() runs.
	LaunchBase    int64
	LaunchPerNode int64
	LaunchPerProc int64
	// TeardownBase models job teardown after finalize.
	TeardownBase int64
	// SharedMemSetup is the per-PE cost of creating/attaching the
	// intra-node shared-memory segment.
	SharedMemSetup int64
	// InitOther lumps the remaining constant per-PE initialization work
	// ("Other" in the paper's Figure 1 breakdown).
	InitOther int64
}

// Default returns the calibrated cost model used by all experiments unless a
// test overrides individual fields. See EXPERIMENTS.md section "Calibration".
func Default() *CostModel {
	return &CostModel{
		UDQPCreate:   15 * Microsecond,
		RCQPCreate:   100 * Microsecond,
		QPTransition: 25 * Microsecond,
		MemRegPerMB:  180 * Microsecond,
		MemRegBase:   40 * Microsecond,

		SendPostOverhead:    300,
		UDSendLatency:       2 * Microsecond,
		RCSendLatency:       1500, // 1.5 us
		RCAckLatency:        800,
		AtomicLatency:       900,
		BytesPerUS:          3500, // 3.5 GB/s
		IntraNodeLatency:    400,  // 0.4 us
		IntraNodeBytesPerUS: 8000,

		HCACacheQPs:           4096,
		HCACacheMissPenalty:   600,
		AMProcess:             1 * Microsecond,
		ConnReqProcess:        12 * Microsecond,
		ConnRetransmitTimeout: 2 * Millisecond,
		RQDrain:               5 * Microsecond,
		RNRRetryDelay:         20 * Microsecond,
		HeartbeatPeriod:       1 * Millisecond,

		PMIPut:                  3 * Microsecond,
		PMIGet:                  12 * Microsecond,
		PMIFenceBase:            900 * Microsecond,
		PMIFencePerProc:         420 * Microsecond,
		PMIFencePerProcByte:     9,
		PMIFenceHop:             150 * Microsecond,
		PMIAllgatherPerProc:     60 * Microsecond,
		PMIAllgatherPerProcByte: 5,
		PMINonBlockingLaunch:    25 * Microsecond,

		FlopsPerUS: 2500,

		LaunchBase:     120 * Millisecond,
		LaunchPerNode:  220 * Microsecond,
		LaunchPerProc:  35 * Microsecond,
		TeardownBase:   60 * Millisecond,
		SharedMemSetup: 9 * Millisecond,
		InitOther:      26 * Millisecond,
	}
}

// XferTime returns the serialization time of n bytes on the inter-node wire.
func (m *CostModel) XferTime(n int) int64 {
	if n <= 0 || m.BytesPerUS <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(n) / float64(m.BytesPerUS) * 1000))
}

// IntraXferTime returns the copy time of n bytes between PEs on one node.
func (m *CostModel) IntraXferTime(n int) int64 {
	if n <= 0 || m.IntraNodeBytesPerUS <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(n) / float64(m.IntraNodeBytesPerUS) * 1000))
}

// MemRegTime returns the cost of registering (pinning) n bytes.
func (m *CostModel) MemRegTime(n int) int64 {
	return m.MemRegBase + int64(float64(m.MemRegPerMB)*float64(n)/float64(1<<20))
}

// FenceCost returns the cost of a blocking PMI Fence across n processes where
// each process has contributed about bytes of KVS data.
func (m *CostModel) FenceCost(n, bytes int) int64 {
	return m.PMIFenceBase + int64(log2ceil(n))*m.PMIFenceHop +
		int64(n)*(m.PMIFencePerProc+int64(bytes)*m.PMIFencePerProcByte)
}

// AllgatherCost returns the background completion cost of PMIX_Iallgather
// across n processes with about bytes contributed per process.
func (m *CostModel) AllgatherCost(n, bytes int) int64 {
	return m.PMIFenceBase/2 + int64(log2ceil(n))*m.PMIFenceHop/2 +
		int64(n)*(m.PMIAllgatherPerProc+int64(bytes)*m.PMIAllgatherPerProcByte)
}

// ComputeTime returns the virtual duration of the given number of floating
// point operations.
func (m *CostModel) ComputeTime(flops float64) int64 {
	if flops <= 0 || m.FlopsPerUS <= 0 {
		return 0
	}
	return int64(flops / float64(m.FlopsPerUS) * 1000)
}

// LaunchCost returns the modeled process-manager fan-out time for a job of
// nprocs processes over nnodes nodes. All PEs start their clocks at this time.
func (m *CostModel) LaunchCost(nprocs, nnodes int) int64 {
	return m.LaunchBase + int64(nnodes)*m.LaunchPerNode + int64(nprocs)*m.LaunchPerProc
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}
