package vclock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now = %d, want 100", got)
	}
	if got := c.Advance(50); got != 150 {
		t.Fatalf("Advance = %d, want 150", got)
	}
	if got := c.Advance(-7); got != 150 {
		t.Fatalf("negative Advance moved clock: %d", got)
	}
	if got := c.Advance(0); got != 150 {
		t.Fatalf("zero Advance moved clock: %d", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(0)
	c.AdvanceTo(40)
	if c.Now() != 40 {
		t.Fatalf("AdvanceTo(40) -> %d", c.Now())
	}
	c.AdvanceTo(10) // must not go backwards
	if c.Now() != 40 {
		t.Fatalf("AdvanceTo(10) moved clock backwards: %d", c.Now())
	}
}

// Property: a clock is monotone under any interleaving of Advance/AdvanceTo
// from multiple goroutines.
func TestClockMonotoneConcurrent(t *testing.T) {
	c := NewClock(0)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			prev := int64(0)
			for i := 0; i < 2000; i++ {
				var now int64
				if rng.Intn(2) == 0 {
					now = c.Advance(int64(rng.Intn(100)))
				} else {
					now = c.AdvanceTo(int64(rng.Intn(100000)))
				}
				if now < prev {
					t.Errorf("clock went backwards: %d < %d", now, prev)
					return
				}
				prev = now
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestSeconds(t *testing.T) {
	if got := Seconds(2_500_000_000); got != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCostModelXfer(t *testing.T) {
	m := Default()
	if m.XferTime(0) != 0 {
		t.Error("XferTime(0) != 0")
	}
	// 3500 bytes at 3500 B/us should be ~1us.
	if got := m.XferTime(3500); got != 1000 {
		t.Errorf("XferTime(3500) = %d, want 1000", got)
	}
	if m.XferTime(1) <= 0 {
		t.Error("XferTime(1) should be positive")
	}
	// Monotone in n.
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.XferTime(x) <= m.XferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostModelFenceGrowsWithN(t *testing.T) {
	m := Default()
	prev := int64(0)
	for _, n := range []int{2, 16, 128, 1024, 8192} {
		c := m.FenceCost(n, 64)
		if c <= prev {
			t.Fatalf("FenceCost not increasing at n=%d: %d <= %d", n, c, prev)
		}
		prev = c
	}
	// Non-blocking allgather should be cheaper than a blocking fence for the
	// same exchange; that is the point of the PMIX extension.
	if m.AllgatherCost(1024, 64) >= m.FenceCost(1024, 64) {
		t.Error("AllgatherCost should be below FenceCost")
	}
}

func TestMemRegTime(t *testing.T) {
	m := Default()
	small := m.MemRegTime(4096)
	big := m.MemRegTime(64 << 20)
	if small <= 0 || big <= small {
		t.Fatalf("MemRegTime not increasing: small=%d big=%d", small, big)
	}
}

func TestVBarrierReleasesAtMaxPlusExtra(t *testing.T) {
	const n = 5
	b := NewVBarrier(n)
	clks := make([]*Clock, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		clks[i] = NewClock(int64(i * 100))
		wg.Add(1)
		go func(c *Clock) {
			defer wg.Done()
			b.Wait(c, 7)
		}(clks[i])
	}
	wg.Wait()
	want := int64((n-1)*100) + 7
	for i, c := range clks {
		if c.Now() != want {
			t.Errorf("clock %d after barrier = %d, want %d", i, c.Now(), want)
		}
	}
}

// Property: across many reuse generations, every participant observes the
// same, strictly increasing release times.
func TestVBarrierReuse(t *testing.T) {
	const n, rounds = 4, 50
	b := NewVBarrier(n)
	releases := make([][]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		releases[i] = make([]int64, rounds)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := NewClock(int64(id))
			rng := rand.New(rand.NewSource(int64(id)))
			for r := 0; r < rounds; r++ {
				c.Advance(int64(rng.Intn(500)))
				releases[id][r] = b.Wait(c, 3)
			}
		}(i)
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		for i := 1; i < n; i++ {
			if releases[i][r] != releases[0][r] {
				t.Fatalf("round %d: participant %d released at %d, participant 0 at %d",
					r, i, releases[i][r], releases[0][r])
			}
		}
		if r > 0 && releases[0][r] <= releases[0][r-1] {
			t.Fatalf("release times not increasing: round %d %d <= round %d %d",
				r, releases[0][r], r-1, releases[0][r-1])
		}
	}
}

func TestLaunchCostScales(t *testing.T) {
	m := Default()
	if m.LaunchCost(16, 1) >= m.LaunchCost(8192, 512) {
		t.Error("LaunchCost should grow with job size")
	}
}
