package vclock

import "sync"

// VBarrier is a reusable virtual-time barrier across a fixed number of
// participants. Each participant arrives with its own clock; when the last
// one arrives, everyone is released at
//
//	max(arrival virtual times) + extra
//
// where extra is the modeled cost of the synchronization itself (the last
// arriver's extra value is used). VBarrier is the building block for PMI
// Fence and for the conduit's intra-node barrier.
type VBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	maxT    int64
	release [2]int64 // indexed by generation parity
	aborted bool
}

// NewVBarrier returns a barrier for n participants.
func NewVBarrier(n int) *VBarrier {
	b := &VBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// N returns the number of participants.
func (b *VBarrier) N() int { return b.n }

// Wait blocks until all n participants have arrived, then advances clk to the
// common release time max(arrivals)+extra and returns that time.
//
// A participant of generation g cannot re-enter generation g+2 before every
// waiter of generation g has returned (it is itself one of the n), so the
// two-slot release buffer is race-free.
func (b *VBarrier) Wait(clk *Clock, extra int64) int64 {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		return clk.Now()
	}
	gen := b.gen
	if b.count == 0 || clk.Now() > b.maxT {
		b.maxT = clk.Now()
	}
	b.count++
	if b.count == b.n {
		r := b.maxT + extra
		b.release[gen&1] = r
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		clk.AdvanceTo(r)
		return r
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		b.mu.Unlock()
		return clk.Now()
	}
	r := b.release[gen&1]
	b.mu.Unlock()
	clk.AdvanceTo(r)
	return r
}

// Abort permanently releases every current and future waiter without
// synchronizing or advancing clocks. The job-abort path uses it so PEs
// blocked in a barrier a dead peer will never reach can terminate.
func (b *VBarrier) Abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Aborted reports whether the barrier has been aborted.
func (b *VBarrier) Aborted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.aborted
}
