package vclock

import "unsafe"

// MemSize reports the clock's retained bytes for the engine footprint
// census: one atomic word wrapped in a shell, but there is one per PE plus
// the throwaway clocks the launcher mints, so the census sums them rather
// than rounding the subsystem to zero.
func (c *Clock) MemSize() int64 {
	if c == nil {
		return 0
	}
	return int64(unsafe.Sizeof(*c))
}

// MemSize reports the barrier's retained bytes (shell plus its condition
// variable) for the engine footprint census.
func (b *VBarrier) MemSize() int64 {
	if b == nil {
		return 0
	}
	n := int64(unsafe.Sizeof(*b))
	if b.cond != nil {
		n += int64(unsafe.Sizeof(*b.cond))
	}
	return n
}
