package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Gauge time-series: instantaneous resource levels (live QPs, pinned bytes,
// retained session windows, credits, suspected peers) sampled over virtual
// time. Instrumentation sites record signed deltas stamped with the virtual
// time of the change; because deltas commute, the export-time fold (sort by
// VT, accumulate) is independent of the goroutine schedule the deltas were
// recorded under — a fixed-seed fault-free run produces a byte-identical
// series every time. The "sampler" is the export-side quantization onto a
// fixed virtual-tick grid, not a wall-clock thread: each tick that saw
// activity yields one point carrying the level at the end of that tick.

// DefaultGaugeTick is the virtual-time quantization grid for exported gauge
// series, in nanoseconds. Min/max/final are computed from the full-resolution
// delta log before quantization, so the grid only bounds export size.
const DefaultGaugeTick = int64(10_000) // 10 µs of virtual time

// maxGaugePoints bounds one gauge's delta log. Overflow stops recording and
// counts the dropped deltas (visible as Dropped in the series): a truncated
// series stays deterministic, a lossy one would not.
const maxGaugePoints = 1 << 17

type gaugeDelta struct {
	vt    int64
	delta int64
}

// Gauge is one instrumented level. A nil *Gauge is the disabled plane: Add is
// a nil-check and return, so call sites need no conditionals.
type Gauge struct {
	mu      sync.Mutex
	log     []gaugeDelta
	dropped int64
}

// Add records a level change of delta at virtual time vt.
func (g *Gauge) Add(vt, delta int64) {
	if g == nil || delta == 0 {
		return
	}
	g.mu.Lock()
	if len(g.log) >= maxGaugePoints {
		g.dropped++
	} else {
		g.log = append(g.log, gaugeDelta{vt, delta})
	}
	g.mu.Unlock()
}

// GaugePoint is one exported sample: the gauge's level at the end of the
// virtual tick containing VT.
type GaugePoint struct {
	VT    int64 `json:"vt_ns"`
	Value int64 `json:"value"`
}

// GaugeSeries is one gauge's exported time-series plus its exact extrema.
type GaugeSeries struct {
	Name    string       `json:"name"`
	Inst    int          `json:"inst"` // PE rank or HCA lid; -1 for job-level
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Final   int64        `json:"final"`
	Dropped int64        `json:"dropped,omitempty"`
	Points  []GaugePoint `json:"points"`
}

// series folds the delta log into a quantized time-series. tick <= 0 takes
// DefaultGaugeTick.
func (g *Gauge) series(tick int64) (pts []GaugePoint, min, max, final, dropped int64) {
	if g == nil {
		return nil, 0, 0, 0, 0
	}
	if tick <= 0 {
		tick = DefaultGaugeTick
	}
	g.mu.Lock()
	log := append([]gaugeDelta(nil), g.log...)
	dropped = g.dropped
	g.mu.Unlock()
	sort.SliceStable(log, func(i, j int) bool { return log[i].vt < log[j].vt })
	var v int64
	for i, d := range log {
		v += d.delta
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		bucket := d.vt - d.vt%tick
		end := bucket + tick - 1
		if i+1 < len(log) && log[i+1].vt-log[i+1].vt%tick == bucket {
			continue // more deltas land in this tick; emit its final level only
		}
		pts = append(pts, GaugePoint{VT: end, Value: v})
	}
	return pts, min, max, v, dropped
}

// InstJob is the gauge/incident instance for job-level series.
const InstJob = -1

// InstHCA encodes an adapter LID as a gauge instance, disjoint from PE ranks
// (non-negative) and the job-level instance (-1). InstLID decodes it.
func InstHCA(lid uint16) int { return -2 - int(lid) }

// InstLID recovers the adapter LID from an InstHCA-encoded instance.
func InstLID(inst int) uint16 { return uint16(-2 - inst) }

// InstRail encodes a fabric rail index as a gauge instance, disjoint from PE
// ranks (non-negative), the job instance (-1) and HCA instances (InstHCA
// stays within [-65537, -3] for 16-bit LIDs). InstRailIndex decodes it.
func InstRail(rail int) int { return -(1 << 20) - rail }

// InstRailIndex recovers the rail index from an InstRail-encoded instance.
func InstRailIndex(inst int) int { return -(1 << 20) - inst }

type gaugeKey struct {
	name string
	inst int
}

// GaugeSet is the job-level registry of gauges, keyed by (name, instance). A
// nil *GaugeSet is the disabled plane: Gauge returns nil and the nil *Gauge
// absorbs every Add.
type GaugeSet struct {
	mu sync.Mutex
	m  map[gaugeKey]*Gauge
}

// NewGaugeSet creates an empty gauge registry.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{m: make(map[gaugeKey]*Gauge)}
}

// Gauge returns (creating if needed) the gauge for (name, inst). inst is the
// PE rank for per-PE gauges, the HCA lid for adapter gauges, -1 for
// job-level.
func (s *GaugeSet) Gauge(name string, inst int) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := gaugeKey{name, inst}
	g := s.m[k]
	if g == nil {
		g = &Gauge{}
		s.m[k] = g
	}
	return g
}

// Series exports every gauge's quantized time-series, sorted by (name, inst).
func (s *GaugeSet) Series(tick int64) []GaugeSeries {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	keys := make([]gaugeKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].inst < keys[j].inst
	})
	out := make([]GaugeSeries, 0, len(keys))
	for _, k := range keys {
		s.mu.Lock()
		g := s.m[k]
		s.mu.Unlock()
		pts, min, max, final, dropped := g.series(tick)
		out = append(out, GaugeSeries{
			Name: k.name, Inst: k.inst,
			Min: min, Max: max, Final: final, Dropped: dropped, Points: pts,
		})
	}
	return out
}

// GaugeStat is the min/max/final summary row for one gauge (the `-metrics`
// and `-json` view; the full series goes to `-timeseries-out`).
type GaugeStat struct {
	Name  string `json:"name"`
	Inst  int    `json:"inst"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Final int64  `json:"final"`
}

// Stats summarizes every gauge, sorted by (name, inst).
func (s *GaugeSet) Stats() []GaugeStat {
	series := s.Series(DefaultGaugeTick)
	if series == nil {
		return nil
	}
	out := make([]GaugeStat, len(series))
	for i, sr := range series {
		out[i] = GaugeStat{Name: sr.Name, Inst: sr.Inst, Min: sr.Min, Max: sr.Max, Final: sr.Final}
	}
	return out
}

// WriteGaugeCSV renders series as stable CSV: a header comment, then one
// `gauge,inst,vt_ns,value` row per point, in (name, inst, vt) order. The
// render is a pure function of the series, so byte-comparing two files
// compares the underlying resource histories.
func WriteGaugeCSV(w io.Writer, series []GaugeSeries) error {
	if _, err := fmt.Fprintln(w, "gauge,inst,vt_ns,value"); err != nil {
		return err
	}
	for i := range series {
		sr := &series[i]
		for _, p := range sr.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d\n", sr.Name, sr.Inst, p.VT, p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteGaugeJSON renders series as one JSON array, stable field order.
func WriteGaugeJSON(w io.Writer, series []GaugeSeries) error {
	enc := json.NewEncoder(w)
	return enc.Encode(series)
}
