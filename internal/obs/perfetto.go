package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Perfetto / Chrome trace-event export.
//
// The exporter emits the JSON Object Format ({"traceEvents": [...]}) that
// both chrome://tracing and ui.perfetto.dev load directly. Spans become
// complete ("X") events, instants become "i" events, and each PE is
// rendered as a process (pid = rank) whose threads are the layers, so the
// timeline reads top-down the way the stack does: cluster, shmem/mpi,
// gasnet, pmi, ib.
//
// Determinism: timestamps are virtual time (µs with ns precision), never
// wall clock, and the JSON is emitted field-by-field in a fixed order from
// events pre-sorted by SortEvents — so byte-identical event multisets
// produce byte-identical files. The golden-file test pins this down.

// perfettoTID maps a layer to a stable thread id within each PE process.
var perfettoTID = map[string]int{
	LayerCluster: 0,
	LayerShmem:   1,
	LayerMPI:     2,
	LayerGasnet:  3,
	LayerPMI:     4,
	LayerIB:      5,
}

const perfettoOtherTID = 9

// Synthetic per-pair connection-lifecycle tracks: each directed pair
// (rank -> peer) with at least one completed lifecycle slice renders as its
// own thread inside the rank's process, named "conn peer N", so connection
// setup/live/eviction read as nested slices next to the layer timelines.
const (
	layerConn           = "conn"
	perfettoConnTIDBase = 16 // tid = base + peer
)

// WritePerfetto writes the plane's merged events as a Perfetto-loadable
// Chrome trace, including counter tracks for any recorded gauges and spans
// for any ledgered incidents.
func (pl *Plane) WritePerfetto(w io.Writer) error {
	if pl == nil {
		return WriteTraceEvents(w, nil, 0)
	}
	return WriteTraceEventsFull(w, pl.Events(), len(pl.pes),
		pl.gauges.Series(DefaultGaugeTick), pl.ledger.Snapshot())
}

// WriteTraceEvents writes events (already in deterministic order — callers
// should use SortEvents) as Chrome trace-event JSON. np sizes the process
// metadata; ranks outside [0,np) still render, just without a name record.
func WriteTraceEvents(w io.Writer, evs []Event, np int) error {
	return WriteTraceEventsFull(w, evs, np, nil, nil)
}

// perfettoIncidentTID hosts incident spans inside the victim's process,
// above the conn sub-tracks (which use tid 16+peer).
const perfettoIncidentTID = 15

// WriteTraceEventsFull is WriteTraceEvents plus gauge counter tracks ("C"
// events) and incident spans. Per-PE gauges (inst in [0,np)) render as
// counter tracks inside the rank's process; job- and adapter-level gauges
// (inst == -1, or an HCA lid at/above np) render in a dedicated "job"
// process with pid np. Incidents render as "X" spans named class/kind on a
// per-process "incidents" thread of the victim rank (the job process for
// rank -1), covering inject -> repair.
func WriteTraceEventsFull(w io.Writer, evs []Event, np int, gauges []GaugeSeries, incidents []Incident) error {
	// Synthesize the per-pair lifecycle slices (timeline.go) and merge them
	// into the stream; SortEvents keeps the merged order deterministic.
	tls := BuildConnTimelines(evs)
	connPeers := make(map[int][]int) // rank -> peers with a conn track (sorted)
	var synth []Event
	for i := range tls {
		tl := &tls[i]
		spans := synthConnSpans(tl)
		if len(spans) == 0 {
			continue
		}
		connPeers[tl.Rank] = append(connPeers[tl.Rank], tl.Peer)
		for _, s := range spans {
			synth = append(synth, Event{
				VT: s.from, Rank: tl.Rank, Layer: layerConn,
				Kind: s.kind, Peer: tl.Peer, Dur: s.to - s.from,
			})
		}
	}
	if len(synth) > 0 {
		evs = append(append([]Event(nil), evs...), synth...)
		SortEvents(evs)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
		} else {
			bw.WriteString(",\n")
		}
	}
	// The "job" process (pid = np) hosts job-level gauges (inst == -1),
	// adapter gauges (inst at/above np is an HCA lid), and incidents with no
	// victim rank.
	jobPID := np
	needJob := false
	for i := range gauges {
		if gauges[i].Inst < 0 || gauges[i].Inst >= np {
			needJob = true
		}
	}
	incRanks := make(map[int]bool)
	for i := range incidents {
		r := incidents[i].Rank
		if r < 0 || r >= np {
			r = jobPID
			needJob = true
		}
		incRanks[r] = true
	}
	for rank := 0; rank < np; rank++ {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":"PE %d"}}`, rank, rank)
		for _, layer := range []string{LayerCluster, LayerShmem, LayerMPI, LayerGasnet, LayerPMI, LayerIB} {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				rank, perfettoTID[layer], strconv.Quote(layer))
		}
		for _, peer := range connPeers[rank] {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				rank, perfettoConnTIDBase+peer, strconv.Quote(fmt.Sprintf("conn peer %d", peer)))
		}
		if incRanks[rank] {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"incidents"}}`,
				rank, perfettoIncidentTID)
		}
	}
	if needJob {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":"job"}}`, jobPID)
		if incRanks[jobPID] {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"incidents"}}`,
				jobPID, perfettoIncidentTID)
		}
	}
	for i := range evs {
		e := &evs[i]
		tid, ok := perfettoTID[e.Layer]
		if e.Layer == layerConn && e.Peer >= 0 {
			tid = perfettoConnTIDBase + e.Peer
		} else if !ok {
			tid = perfettoOtherTID
		}
		sep()
		if e.Dur > 0 {
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s`,
				e.Rank, tid, usec(e.VT), usec(e.Dur), strconv.Quote(e.Kind))
		} else {
			fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%s`,
				e.Rank, tid, usec(e.VT), strconv.Quote(e.Kind))
		}
		bw.WriteString(`,"args":{`)
		argFirst := true
		arg := func(k, v string) {
			if argFirst {
				argFirst = false
			} else {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "%s:%s", strconv.Quote(k), v)
		}
		if e.Peer >= 0 {
			arg("peer", strconv.Itoa(e.Peer))
		}
		if e.Bytes > 0 {
			arg("bytes", strconv.FormatInt(e.Bytes, 10))
		}
		for _, a := range e.Attrs {
			arg(a.Key, strconv.Quote(a.Val))
		}
		bw.WriteString("}}")
	}
	for i := range gauges {
		sr := &gauges[i]
		pid, name := sr.Inst, sr.Name
		if sr.Inst == InstJob {
			pid = jobPID
		} else if sr.Inst < InstJob {
			// Adapter gauge: the instance encodes an HCA lid (InstHCA).
			pid = jobPID
			name = fmt.Sprintf("%s/hca%d", sr.Name, InstLID(sr.Inst))
		}
		for _, p := range sr.Points {
			sep()
			fmt.Fprintf(bw, `{"ph":"C","pid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
				pid, usec(p.VT), strconv.Quote(name), p.Value)
		}
	}
	for i := range incidents {
		in := &incidents[i]
		pid := in.Rank
		if pid < 0 || pid >= np {
			pid = jobPID
		}
		name := strconv.Quote(in.Class + "/" + in.Kind)
		sep()
		if in.RepairVT > in.InjectVT {
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s`,
				pid, perfettoIncidentTID, usec(in.InjectVT), usec(in.RepairVT-in.InjectVT), name)
		} else {
			fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%s`,
				pid, perfettoIncidentTID, usec(in.InjectVT), name)
		}
		fmt.Fprintf(bw, `,"args":{"state":%s,"inst":%d}}`, strconv.Quote(in.State), in.Inst)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// usec renders a virtual-ns quantity as microseconds with nanosecond
// precision, the unit Chrome trace events use for ts/dur.
func usec(ns int64) string {
	us := ns / 1000
	frac := ns % 1000
	if frac == 0 {
		return strconv.FormatInt(us, 10)
	}
	return fmt.Sprintf("%d.%03d", us, frac)
}
