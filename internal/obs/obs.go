// Package obs is the unified observability plane: a low-overhead,
// virtual-time-aware structured event and metric layer threaded through
// every subsystem of the simulator (pmi, ib, gasnet, shmem, mpi, cluster).
//
// The design splits responsibilities three ways:
//
//   - Events are point ("i") or span ("X") records carrying
//     {vt, wallns, rank, layer, kind, peer, bytes, attrs}. Each PE owns a
//     private ring buffer so recording never contends across PEs; the
//     job-level Plane merges and deterministically orders them on demand.
//   - Metrics are typed values — monotonic counters and HDR-style latency
//     histograms — registered once by name in a job-level Registry shared
//     by all PEs (see metrics.go).
//   - Startup phases are a small dedicated per-PE list (see phases.go) so
//     the init-time breakdown can never be lost to ring overflow.
//
// The disabled path is a nil *PE (obs.Nop): every method starts with a nil
// receiver check and returns immediately, so instrumentation call sites can
// stay unconditional. The overhead of that path is benchmarked (see
// nop_bench_test.go and the cluster-level overhead guard).
//
// Timestamps: the primary timestamp of every event is virtual time (VT,
// nanoseconds on the PE's vclock). Wall-clock nanoseconds since plane
// creation are recorded alongside for debugging real-schedule effects, but
// deterministic outputs (traces, the Perfetto export, reports) are derived
// from VT only.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Layer names used across the codebase. They double as Perfetto thread
// names, so keep them short and stable.
const (
	LayerCluster = "cluster"
	LayerShmem   = "shmem"
	LayerMPI     = "mpi"
	LayerGasnet  = "gasnet"
	LayerPMI     = "pmi"
	LayerIB      = "ib"
)

// Attr is a small string key/value pair attached to an event.
type Attr struct {
	Key string
	Val string
}

// Event is one structured observation. Dur == 0 marks an instant; Dur > 0
// a span beginning at VT and covering [VT, VT+Dur]. Peer is -1 when the
// event has no remote party.
type Event struct {
	VT    int64  // virtual time (ns) at which the event begins
	Wall  int64  // wall-clock ns since plane creation (non-deterministic)
	Rank  int    // PE that recorded the event
	Layer string // one of the Layer* constants
	Kind  string // event kind, e.g. "conn-initiate", "put", "init:pmi-exchange"
	Peer  int    // remote PE, or -1
	Bytes int64  // payload size, or 0
	Dur   int64  // span duration (ns), 0 for instants
	Attrs []Attr // optional extra context
}

// Config selects which planes are live. The zero value disables everything
// (all recorders behave like Nop).
type Config struct {
	// Events enables per-PE event rings (required for -trace / -trace-out).
	Events bool
	// Metrics enables the counter/histogram registry.
	Metrics bool
	// Flows enables the per-PE, per-peer flow matrix (required for
	// -topology and the report's topology section; see flow.go).
	Flows bool
	// Gauges enables the virtual-time gauge time-series (required for
	// -timeseries-out and the gauge columns of -metrics; see gauge.go).
	Gauges bool
	// Incidents enables the causal incident ledger (required for -incidents
	// and the report's incident section; see incident.go).
	Incidents bool
	// Footprint enables the engine self-observability census (required for
	// -footprint and the report's footprint section; see footprint.go). It
	// is deliberately not implied by the other planes: census snapshots read
	// wall-clock runtime state (ReadMemStats, goroutine counts), so the
	// engine.* gauge series they produce are not schedule-deterministic and
	// must never leak into the byte-identity contracts of -timeseries-out.
	Footprint bool
	// RingCap bounds each PE's event ring. 0 means DefaultRingCap;
	// negative means unbounded (needed when a complete trace must be
	// exported). When a bounded ring overflows the oldest events are
	// overwritten and Dropped() counts them.
	RingCap int
}

// DefaultRingCap is the per-PE event ring size when Config.RingCap == 0.
const DefaultRingCap = 1 << 16

// Enabled reports whether any plane is live.
func (c Config) Enabled() bool {
	return c.Events || c.Metrics || c.Flows || c.Gauges || c.Incidents || c.Footprint
}

// Plane is the job-level observability state: one recorder per PE plus the
// shared metric registry.
type Plane struct {
	cfg    Config
	reg    *Registry
	gauges *GaugeSet
	ledger *Ledger
	census *Census
	pes    []*PE
	start  time.Time
}

// NewPlane creates a plane for np PEs. If cfg disables both events and
// metrics the plane still exists (phases are always recorded) but event
// and metric calls no-op.
func NewPlane(np int, cfg Config) *Plane {
	if cfg.RingCap == 0 {
		cfg.RingCap = DefaultRingCap
	}
	p := &Plane{cfg: cfg, start: time.Now()}
	if cfg.Metrics {
		p.reg = NewRegistry()
	}
	if cfg.Gauges {
		p.gauges = NewGaugeSet()
	}
	if cfg.Incidents {
		p.ledger = NewLedger()
	}
	if cfg.Footprint {
		p.census = NewCensus(p.gauges)
		p.census.Register(p) // the plane attributes its own rings/logs
	}
	p.pes = make([]*PE, np)
	for r := range p.pes {
		p.pes[r] = &PE{plane: p, rank: r}
	}
	return p
}

// Config returns the plane's configuration.
func (pl *Plane) Config() Config {
	if pl == nil {
		return Config{}
	}
	return pl.cfg
}

// PE returns the recorder for a rank. Safe on a nil plane (returns Nop).
func (pl *Plane) PE(rank int) *PE {
	if pl == nil || rank < 0 || rank >= len(pl.pes) {
		return Nop
	}
	return pl.pes[rank]
}

// Registry returns the metric registry, or nil when metrics are disabled.
func (pl *Plane) Registry() *Registry {
	if pl == nil {
		return nil
	}
	return pl.reg
}

// Gauges returns the gauge registry, or nil when gauges are disabled.
func (pl *Plane) Gauges() *GaugeSet {
	if pl == nil {
		return nil
	}
	return pl.gauges
}

// Census returns the engine footprint census, or nil when the footprint
// plane is disabled; every Census method is nil-safe.
func (pl *Plane) Census() *Census {
	if pl == nil {
		return nil
	}
	return pl.census
}

// Ledger returns the incident ledger, or nil when incidents are disabled.
func (pl *Plane) Ledger() *Ledger {
	if pl == nil {
		return nil
	}
	return pl.ledger
}

// Events returns all recorded events merged across PEs in deterministic
// order: (VT, Rank, Layer, Kind, Peer, Dur, Bytes). Wall-clock is never a
// sort key, so two runs that produce the same virtual-time event multiset
// serialize identically.
func (pl *Plane) Events() []Event {
	if pl == nil {
		return nil
	}
	var all []Event
	for _, pe := range pl.pes {
		all = append(all, pe.snapshot()...)
	}
	SortEvents(all)
	return all
}

// Dropped returns the total number of events lost to ring overflow.
func (pl *Plane) Dropped() int64 {
	if pl == nil {
		return 0
	}
	var n int64
	for _, pe := range pl.pes {
		pe.mu.Lock()
		n += pe.dropped
		pe.mu.Unlock()
	}
	return n
}

// SortEvents orders events by (VT, Rank, Layer, Kind, Peer, Dur, Bytes).
func SortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Bytes < b.Bytes
	})
}

// Nop is the disabled recorder: every method on a nil *PE returns
// immediately. Pass it wherever instrumentation is wired but observability
// is off.
var Nop *PE

// PE records events and phases for one rank. All methods are safe on a nil
// receiver and safe for concurrent use (a PE's app goroutine and its
// conduit progress goroutine both record).
type PE struct {
	plane *Plane
	rank  int

	mu      sync.Mutex
	ring    []Event
	next    int   // next overwrite slot once the bounded ring is full
	dropped int64 // events overwritten
	phases  []Phase
	flows   map[int]*[NumFlowKinds]FlowCell // peer -> per-kind cells (flow.go)
}

// Rank returns the recorder's rank (-1 for Nop).
func (p *PE) Rank() int {
	if p == nil {
		return -1
	}
	return p.rank
}

// Active reports whether any recording (events, metrics or flows) is live.
// Use it to skip expensive argument preparation at instrumentation sites.
func (p *PE) Active() bool {
	return p != nil && (p.plane.cfg.Events || p.plane.cfg.Metrics || p.plane.cfg.Flows)
}

// EventsEnabled reports whether event recording is live.
func (p *PE) EventsEnabled() bool {
	return p != nil && p.plane.cfg.Events
}

// FlowsEnabled reports whether flow-matrix recording is live.
func (p *PE) FlowsEnabled() bool {
	return p != nil && p.plane.cfg.Flows
}

// Emit records an instant event.
func (p *PE) Emit(vt int64, layer, kind string, peer int, bytes int64, attrs ...Attr) {
	if p == nil || !p.plane.cfg.Events {
		return
	}
	p.record(Event{
		VT: vt, Wall: p.wall(), Rank: p.rank,
		Layer: layer, Kind: kind, Peer: peer, Bytes: bytes, Attrs: attrs,
	})
}

// Span records an event covering [startVT, endVT].
func (p *PE) Span(startVT, endVT int64, layer, kind string, peer int, bytes int64, attrs ...Attr) {
	if p == nil || !p.plane.cfg.Events {
		return
	}
	d := endVT - startVT
	if d < 0 {
		d = 0
	}
	p.record(Event{
		VT: startVT, Wall: p.wall(), Rank: p.rank,
		Layer: layer, Kind: kind, Peer: peer, Bytes: bytes, Dur: d, Attrs: attrs,
	})
}

// Gauge resolves the named gauge for this PE's rank (nil when gauges are
// disabled). Resolve once at setup and keep the pointer; Gauge.Add is
// nil-safe.
func (p *PE) Gauge(name string) *Gauge {
	if p == nil || p.plane.gauges == nil {
		return nil
	}
	return p.plane.gauges.Gauge(name, p.rank)
}

// Ledger returns the job's incident ledger (nil when incidents are
// disabled); every Ledger method is nil-safe.
func (p *PE) Ledger() *Ledger {
	if p == nil {
		return nil
	}
	return p.plane.ledger
}

// Counter resolves a named counter, or nil when metrics are disabled.
// Resolve once at setup and keep the pointer; Counter methods are nil-safe.
func (p *PE) Counter(name string) *Counter {
	if p == nil || p.plane.reg == nil {
		return nil
	}
	return p.plane.reg.Counter(name)
}

// Hist resolves a named histogram, or nil when metrics are disabled.
// Resolve once at setup and keep the pointer; Hist methods are nil-safe.
func (p *PE) Hist(name string) *Hist {
	if p == nil || p.plane.reg == nil {
		return nil
	}
	return p.plane.reg.Hist(name)
}

// Count adds delta to a named counter (registry lookup per call — fine for
// cold paths; hot paths should cache via Counter()).
func (p *PE) Count(name string, delta int64) {
	if p == nil || p.plane.reg == nil {
		return
	}
	p.plane.reg.Counter(name).Add(delta)
}

// Observe records a value into a named histogram (registry lookup per
// call — fine for cold paths; hot paths should cache via Hist()).
func (p *PE) Observe(name string, v int64) {
	if p == nil || p.plane.reg == nil {
		return
	}
	p.plane.reg.Hist(name).Record(v)
}

func (p *PE) wall() int64 { return int64(time.Since(p.plane.start)) }

func (p *PE) record(e Event) {
	p.mu.Lock()
	limit := p.plane.cfg.RingCap
	if limit < 0 || len(p.ring) < limit {
		p.ring = append(p.ring, e)
	} else {
		p.ring[p.next] = e
		p.next++
		if p.next == limit {
			p.next = 0
		}
		p.dropped++
	}
	p.mu.Unlock()
}

// snapshot returns the PE's events oldest-first.
func (p *PE) snapshot() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, 0, len(p.ring))
	if p.dropped > 0 {
		out = append(out, p.ring[p.next:]...)
		out = append(out, p.ring[:p.next]...)
	} else {
		out = append(out, p.ring...)
	}
	return out
}
