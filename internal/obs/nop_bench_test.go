package obs

import "testing"

func BenchmarkNopEmit(b *testing.B) {
	var p *PE
	for i := 0; i < b.N; i++ {
		p.Emit(int64(i), LayerGasnet, "conn-initiate", 1, 0)
	}
}

func BenchmarkNopSpan(b *testing.B) {
	var p *PE
	for i := 0; i < b.N; i++ {
		p.Span(int64(i), int64(i)+10, LayerShmem, "put", 1, 8)
	}
}

func BenchmarkNopFlow(b *testing.B) {
	var p *PE
	for i := 0; i < b.N; i++ {
		p.Flow(1, FlowPut, int64(i))
	}
}

func BenchmarkNopHistRecord(b *testing.B) {
	var h *Hist
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkEnabledEmit(b *testing.B) {
	pl := NewPlane(1, Config{Events: true, RingCap: 1 << 12})
	p := pl.PE(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Emit(int64(i), LayerGasnet, "conn-initiate", 1, 0)
	}
}

func BenchmarkEnabledHistRecord(b *testing.B) {
	pl := NewPlane(1, Config{Metrics: true})
	h := pl.PE(0).Hist("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i % 100000))
	}
}
