package obs

import "time"

// NopCallCost measures the per-call wall cost of the disabled
// instrumentation path (nil *PE / nil *Hist / nil *Counter / nil *Gauge /
// nil *Census) by timing n iterations of a representative call mix and
// returning the mean nanoseconds per call. The cluster-level overhead guard
// multiplies this by the number of instrumentation call sites actually hit
// during a run to bound the disabled-path overhead deterministically,
// instead of diffing two noisy end-to-end wall-clock measurements.
func NopCallCost(n int) (perCallNS float64) {
	var p *PE
	var h *Hist
	var c *Counter
	var g *Gauge
	var cs *Census
	t0 := time.Now()
	for i := 0; i < n; i++ {
		p.Emit(int64(i), LayerGasnet, "x", 1, 0)
		p.Span(int64(i), int64(i)+1, LayerShmem, "y", -1, 0)
		p.Flow(1, FlowPut, int64(i))
		h.Record(int64(i))
		c.Add(1)
		g.Add(int64(i), 1)
		cs.Snapshot("x", int64(i))
	}
	elapsed := time.Since(t0).Nanoseconds()
	return float64(elapsed) / float64(n*7)
}
