package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildTestPlane assembles a tiny fixed scenario: 2 PEs, a couple of
// spans, instants, attrs, and a startup phase.
func buildTestPlane() *Plane {
	pl := NewPlane(2, Config{Events: true})
	p0, p1 := pl.PE(0), pl.PE(1)
	p0.InitPhase("pmi-exchange", 0, 1500)
	p0.Emit(2000, LayerGasnet, "conn-initiate", 1, 0)
	p0.Span(2000, 5250, LayerGasnet, "connect", 1, 0)
	p0.Span(6000, 6800, LayerShmem, "put", 1, 4096, Attr{Key: "class", Val: "one-sided"})
	p1.Emit(2400, LayerGasnet, "conn-req-served", 0, 0)
	p1.Emit(3000, LayerIB, "fault-drop", 0, 40, Attr{Key: "msg", Val: "conn-req"})
	return pl
}

// perfettoGolden pins the exporter's byte-exact output: stable field
// ordering, metadata records first, events in SortEvents order, VT-derived
// microsecond timestamps. If you change the exporter intentionally, update
// this string and re-check the file loads in ui.perfetto.dev.
const perfettoGolden = `{"traceEvents":[{"ph":"M","pid":0,"name":"process_name","args":{"name":"PE 0"}},
{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"cluster"}},
{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"shmem"}},
{"ph":"M","pid":0,"tid":2,"name":"thread_name","args":{"name":"mpi"}},
{"ph":"M","pid":0,"tid":3,"name":"thread_name","args":{"name":"gasnet"}},
{"ph":"M","pid":0,"tid":4,"name":"thread_name","args":{"name":"pmi"}},
{"ph":"M","pid":0,"tid":5,"name":"thread_name","args":{"name":"ib"}},
{"ph":"M","pid":1,"name":"process_name","args":{"name":"PE 1"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"cluster"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"shmem"}},
{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"mpi"}},
{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"gasnet"}},
{"ph":"M","pid":1,"tid":4,"name":"thread_name","args":{"name":"pmi"}},
{"ph":"M","pid":1,"tid":5,"name":"thread_name","args":{"name":"ib"}},
{"ph":"X","pid":0,"tid":1,"ts":0,"dur":1.500,"name":"init:pmi-exchange","args":{}},
{"ph":"i","s":"t","pid":0,"tid":3,"ts":2,"name":"conn-initiate","args":{"peer":1}},
{"ph":"X","pid":0,"tid":3,"ts":2,"dur":3.250,"name":"connect","args":{"peer":1}},
{"ph":"i","s":"t","pid":1,"tid":3,"ts":2.400,"name":"conn-req-served","args":{"peer":0}},
{"ph":"i","s":"t","pid":1,"tid":5,"ts":3,"name":"fault-drop","args":{"peer":0,"bytes":40,"msg":"conn-req"}},
{"ph":"X","pid":0,"tid":1,"ts":6,"dur":0.800,"name":"put","args":{"peer":1,"bytes":4096,"class":"one-sided"}}]}
`

func TestPerfettoGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildTestPlane().WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if got != perfettoGolden {
		t.Fatalf("perfetto output diverged from golden:\n got: %s\nwant: %s", got, perfettoGolden)
	}
}

func TestPerfettoIsValidJSON(t *testing.T) {
	var sb strings.Builder
	if err := buildTestPlane().WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	// 14 metadata records (2 PEs × 7) + 6 events.
	if len(doc.TraceEvents) != 20 {
		t.Fatalf("traceEvents len = %d, want 20", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", e)
		}
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := buildTestPlane().WritePerfetto(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTestPlane().WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two identical planes exported different bytes")
	}
}

func TestPerfettoEmptyPlane(t *testing.T) {
	var sb strings.Builder
	var pl *Plane
	if err := pl.WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("empty export invalid JSON: %q", sb.String())
	}
}
