package obs

import (
	"sort"
	"sync"
)

// Causal incident ledger: every injected fault opens an incident the moment
// the injector fires; the detection events and recovery actions the fault
// provokes (NAK, suspicion, ICRC drop, retransmit, reconnect, eviction,
// relief, fallback exchange, abort) append to the matching open incident;
// the repair that proves the resource healthy again closes it. The ledger
// yields per-fault-kind detection-latency and MTTR distributions, and a
// reconciliation check that every budgeted injected fault maps to exactly
// one closed (or deliberately-aborted) incident.
//
// Incident classes and their keying:
//
//	"ud"    — UD datagram faults (drop/dup/reorder/corrupt/slow). Rank is
//	          the sender, Inst the destination endpoint key. Closed by the
//	          next successful delivery on the same (sender, endpoint) lane:
//	          UD is best-effort, so delivery is the proof of recovery.
//	"rc"    — RC connection faults (flap/rc-corrupt/torn-write). Rank is the
//	          sender, Inst the destination LID. Closed by the next successful
//	          RC completion on the lane (the session layer replays until then).
//	"alloc" — QP/MR allocation faults. Rank -1 (adapter-scoped), Inst the HCA
//	          lid. Synchronously detected (DetectVT == InjectVT); closed by
//	          the next successful allocation of the same kind, or by the
//	          bounce-buffer degradation completing the repair.
//	"pmi"   — control-plane faults (drop/dup/slow/unavail/crash). Rank is the
//	          client rank (-1 for the shared server crash). Closed by the
//	          client's next successful admitted operation.
//	"pe"    — injected process failures (kill/wedge). Rank is the victim.
//	          Never repaired: the sweep marks them aborted (the deliberate
//	          outcome — detection and job abort ARE the recovery).
//	"net"   — rail-scoped fabric faults (port-down/rail-down/partition).
//	          Rank -1 (fabric-scoped); Inst keys the schedule (rail index,
//	          packed lid:rail, or the job instance for partitions). Opened at
//	          schedule time by the cluster layer. A healed partition closes on
//	          the first post-heal liveness proof; permanent port/rail faults
//	          close at job completion — surviving them via the other rails IS
//	          the repair.
const (
	IncidentOpen       = "open"
	IncidentClosed     = "closed"
	IncidentAborted    = "aborted"    // deliberately terminal (PE kills, aborted jobs)
	IncidentUnresolved = "unresolved" // leftover open on a clean run: accounting bug
)

// IncidentEvent is one detection or recovery entry in an incident's log.
type IncidentEvent struct {
	VT   int64  `json:"vt_ns"`
	What string `json:"what"`
}

// Incident is one injected fault's lifecycle record.
type Incident struct {
	ID       int             `json:"id"`
	Class    string          `json:"class"`
	Kind     string          `json:"kind"`
	Rank     int             `json:"rank"` // victim PE rank, or -1
	Inst     int             `json:"inst"` // pair/endpoint/adapter key within the class
	InjectVT int64           `json:"inject_vt_ns"`
	DetectVT int64           `json:"detect_vt_ns,omitempty"`
	RepairVT int64           `json:"repair_vt_ns,omitempty"`
	State    string          `json:"state"`
	Log      []IncidentEvent `json:"log,omitempty"`
}

// DetectLatency is inject -> first detection, in virtual ns.
func (in *Incident) DetectLatency() int64 { return in.DetectVT - in.InjectVT }

// MTTR is inject -> repair, in virtual ns (0 for absorbed faults).
func (in *Incident) MTTR() int64 { return in.RepairVT - in.InjectVT }

// Ledger is the job-level incident store. A nil *Ledger is the disabled
// plane: every method nil-checks and returns.
type Ledger struct {
	mu   sync.Mutex
	incs []*Incident
}

// NewLedger creates an empty incident ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Open records a new open incident and returns its id (-1 when disabled).
func (l *Ledger) Open(class, kind string, rank, inst int, vt int64) int {
	if l == nil {
		return -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	in := &Incident{ID: len(l.incs), Class: class, Kind: kind, Rank: rank, Inst: inst,
		InjectVT: vt, State: IncidentOpen}
	l.incs = append(l.incs, in)
	return in.ID
}

// OpenDetected records a new open incident whose detection is synchronous
// with the injection (a refused allocation fails the very call that injected
// it): DetectVT is stamped at open, repair stays pending.
func (l *Ledger) OpenDetected(class, kind string, rank, inst int, vt int64, what string) int {
	if l == nil {
		return -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	in := &Incident{ID: len(l.incs), Class: class, Kind: kind, Rank: rank, Inst: inst,
		InjectVT: vt, DetectVT: vt, State: IncidentOpen,
		Log: []IncidentEvent{{VT: vt, What: what}}}
	l.incs = append(l.incs, in)
	return in.ID
}

// OpenAbsorbed records a fault the system absorbs at the point of injection
// (duplicates suppressed by dedup, slowdowns that only cost time): the
// incident opens and closes instantly with zero MTTR.
func (l *Ledger) OpenAbsorbed(class, kind string, rank, inst int, vt int64, what string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	in := &Incident{ID: len(l.incs), Class: class, Kind: kind, Rank: rank, Inst: inst,
		InjectVT: vt, DetectVT: vt, RepairVT: vt, State: IncidentClosed,
		Log: []IncidentEvent{{VT: vt, What: what}}}
	l.incs = append(l.incs, in)
}

// Detect stamps the oldest open incident of class at rank with its first
// detection time and appends the detection event. Detections key on (class,
// rank) only: the observer often knows the victim lane less precisely than
// the injector did.
func (l *Ledger) Detect(class string, rank int, vt int64, what string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, in := range l.incs {
		if in.State == IncidentOpen && in.Class == class && in.Rank == rank {
			if in.DetectVT == 0 {
				in.DetectVT = vt
			}
			in.Log = append(in.Log, IncidentEvent{VT: vt, What: what})
			return
		}
	}
}

// Act appends a recovery action to the oldest open incident of class at rank.
func (l *Ledger) Act(class string, rank int, vt int64, what string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, in := range l.incs {
		if in.State == IncidentOpen && in.Class == class && in.Rank == rank {
			in.Log = append(in.Log, IncidentEvent{VT: vt, What: what})
			return
		}
	}
}

// CloseAll closes every open incident matching (class, rank, inst) — and one
// of kinds, when non-nil — stamping the repair time. The kind filter keeps a
// successful QP allocation from closing an open MR-allocation incident that
// shares the adapter key. An incident never detected before its repair gets
// DetectVT = RepairVT, so detection latency is always recorded. Returns the
// number closed.
func (l *Ledger) CloseAll(class string, kinds []string, rank, inst int, vt int64, what string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, in := range l.incs {
		if in.State != IncidentOpen || in.Class != class || in.Rank != rank || in.Inst != inst {
			continue
		}
		if kinds != nil {
			ok := false
			for _, k := range kinds {
				if in.Kind == k {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		in.RepairVT = vt
		if in.DetectVT == 0 {
			in.DetectVT = vt
		}
		in.State = IncidentClosed
		in.Log = append(in.Log, IncidentEvent{VT: vt, What: what})
		n++
	}
	return n
}

// Sweep resolves incidents still open at job end (finalVT). PE-failure
// incidents become aborted always — detection plus job abort is their
// designed outcome, and on a surviving job the injection window may simply
// never have fired a probe. On a cleanly completed job, leftover data-plane
// incidents (ud, rc) close as absorbed: clean completion is proof, because
// a lost datagram was recovered by retransmission or was irrelevant, and
// the end-of-job barrier quiesces every retained RC window — Quiet cannot
// complete over a lost or torn payload, so an rc incident still open here
// was a fault whose effects were already durable (e.g. a flap landing after
// the final delivery to that adapter, with no later op to stamp the close).
// Rail-scoped fabric faults (net) close the same way: a completed job proves
// the surviving rails (or the healed partition) carried every byte, and
// permanent port/rail failures have no explicit repair event to close on.
// Anything else (alloc, pmi) becomes unresolved — a loud reconciliation
// failure, because those lanes have explicit repair points (alloc-ok,
// op-admitted) and a leftover means one leaked. On an aborted job
// everything leftover is aborted: the abort tore the recovery machinery
// down mid-flight, deliberately.
func (l *Ledger) Sweep(finalVT int64, jobAborted bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, in := range l.incs {
		if in.State != IncidentOpen {
			continue
		}
		switch {
		case in.Class == "pe":
			in.State = IncidentAborted
			if in.DetectVT == 0 {
				in.DetectVT = finalVT
			}
			in.RepairVT = finalVT
			in.Log = append(in.Log, IncidentEvent{VT: finalVT, What: "job-end"})
		case jobAborted:
			in.State = IncidentAborted
			if in.DetectVT == 0 {
				in.DetectVT = finalVT
			}
			in.RepairVT = finalVT
			in.Log = append(in.Log, IncidentEvent{VT: finalVT, What: "job-abort"})
		case in.Class == "ud" || in.Class == "rc" || in.Class == "net":
			in.State = IncidentClosed
			if in.DetectVT == 0 {
				in.DetectVT = finalVT
			}
			in.RepairVT = finalVT
			in.Log = append(in.Log, IncidentEvent{VT: finalVT, What: "job-complete"})
		default:
			in.State = IncidentUnresolved
			in.Log = append(in.Log, IncidentEvent{VT: finalVT, What: "job-complete-unresolved"})
		}
	}
}

// Snapshot returns a deep copy of every incident, sorted by (InjectVT,
// class, kind, rank, inst, id) so renders are deterministic whenever the
// inject times are.
func (l *Ledger) Snapshot() []Incident {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Incident, len(l.incs))
	for i, in := range l.incs {
		out[i] = *in
		out[i].Log = append([]IncidentEvent(nil), in.Log...)
	}
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.InjectVT != b.InjectVT {
			return a.InjectVT < b.InjectVT
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		return a.ID < b.ID
	})
	return out
}

// IncidentKindSummary aggregates one (class, kind)'s incidents.
type IncidentKindSummary struct {
	Class       string `json:"class"`
	Kind        string `json:"kind"`
	Total       int    `json:"total"`
	Closed      int    `json:"closed"`
	Aborted     int    `json:"aborted"`
	Open        int    `json:"open"`
	Unresolved  int    `json:"unresolved"`
	DetectP50NS int64  `json:"detect_p50_ns"`
	DetectMaxNS int64  `json:"detect_max_ns"`
	MTTRP50NS   int64  `json:"mttr_p50_ns"`
	MTTRMaxNS   int64  `json:"mttr_max_ns"`
}

// SummarizeIncidents reduces a snapshot to per-(class, kind) rows, sorted by
// (class, kind). Detection/MTTR percentiles cover closed and aborted
// incidents (the resolved ones, whose timestamps are final).
func SummarizeIncidents(incs []Incident) []IncidentKindSummary {
	type acc struct {
		row    IncidentKindSummary
		detect []int64
		mttr   []int64
	}
	byKind := make(map[[2]string]*acc)
	for i := range incs {
		in := &incs[i]
		k := [2]string{in.Class, in.Kind}
		a := byKind[k]
		if a == nil {
			a = &acc{row: IncidentKindSummary{Class: in.Class, Kind: in.Kind}}
			byKind[k] = a
		}
		a.row.Total++
		switch in.State {
		case IncidentClosed:
			a.row.Closed++
		case IncidentAborted:
			a.row.Aborted++
		case IncidentUnresolved:
			a.row.Unresolved++
		default:
			a.row.Open++
		}
		if in.State == IncidentClosed || in.State == IncidentAborted {
			a.detect = append(a.detect, in.DetectLatency())
			a.mttr = append(a.mttr, in.MTTR())
		}
	}
	pct := func(v []int64, p float64) int64 {
		if len(v) == 0 {
			return 0
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		idx := int(p * float64(len(v)-1))
		return v[idx]
	}
	out := make([]IncidentKindSummary, 0, len(byKind))
	for _, a := range byKind {
		a.row.DetectP50NS = pct(a.detect, 0.5)
		a.row.DetectMaxNS = pct(a.detect, 1.0)
		a.row.MTTRP50NS = pct(a.mttr, 0.5)
		a.row.MTTRMaxNS = pct(a.mttr, 1.0)
		out = append(out, a.row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
