package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"unsafe"
)

// Engine footprint census: the observability plane turned on the engine
// itself. The obs plane built so far (events, gauges, flows, incidents)
// observes the *simulated* fabric; nothing could say where the bytes of the
// simulator go — and ROADMAP item 1 (the sharded event engine) needs exactly
// that before it can be judged. The census applies the incident-ledger
// discipline to memory: every allocation-heavy subsystem implements
// FootprintReporter and models its own bytes from first principles
// (object counts × unsafe.Sizeof shells + exact buffer lengths); the census
// collects those models at each startup-phase boundary and at job end, and
// reconciles them against runtime.ReadMemStats — a drift row appears, loudly,
// whenever the modeled bytes fail to tile the measured heap delta within a
// documented tolerance. An attribution table nobody checks against reality
// is a table that silently rots; the reconciliation is the feature.

// FootprintSchemaVersion identifies the `footprint` report section's shape so
// trajectory tooling can evolve with it. Bump on any breaking change.
const FootprintSchemaVersion = 1

// DriftToleranceFrac is the reconciliation tolerance: a census snapshot whose
// modeled bytes differ from the measured heap delta by more than this
// fraction of the measurement earns a drift row. The slack it grants covers
// what the models deliberately leave out — allocator size-class rounding,
// slice growth beyond len (models use exact lengths so fixed seeds stay
// byte-stable while append schedules do not), map bucket arrays estimated at
// a flat per-entry cost, and runtime-internal allocations (timers, channel
// buffers, scheduler state) that belong to no subsystem. Empirically the
// unmodeled remainder sits near 10-20% at np=256; 35% is the loud-failure
// line, not a precision claim.
const DriftToleranceFrac = 0.35

// DriftFloorBytes exempts snapshots whose measured heap delta is too small
// for a fractional comparison to mean anything: below this floor the delta
// is dominated by runtime noise (GC metadata, goroutine bookkeeping), so a
// drift verdict would be a coin flip. 1 MiB is well under one PE's heap in
// any real run.
const DriftFloorBytes = int64(1) << 20

// mapEntryOverhead approximates the per-entry cost of a Go map beyond the
// key and value themselves (bucket array slots, overflow pointers, hash
// metadata). The true cost varies with load factor; the census uses a flat
// estimate because map-heavy structures are a small slice of the total and
// the reconciliation tolerance absorbs the error.
const mapEntryOverhead = 48

// GoroutineStackEstimate is the modeled stack cost of one goroutine. Stacks
// start at 2 KiB and grow on demand; the simulator's PE goroutines settle
// around 4-16 KiB once attach has run its call depth. 8 KiB is the modeling
// constant; the census records the measured runtime.MemStats StackInuse next
// to it in every snapshot, so the estimate is itself reconciled in the
// report rather than trusted. Stacks live outside the Go heap, so rows
// built from this are OffHeap and excluded from heap reconciliation.
const GoroutineStackEstimate = int64(8) << 10

// FootprintItem is one (subsystem, category) attribution row: modeled bytes
// and the object count behind them. OffHeap marks rows whose bytes do not
// live in the Go heap (goroutine stacks); they are reported but excluded
// from the heap reconciliation.
type FootprintItem struct {
	Subsystem string `json:"subsystem"`
	Category  string `json:"category"`
	Bytes     int64  `json:"bytes"`
	Objects   int64  `json:"objects"`
	OffHeap   bool   `json:"off_heap,omitempty"`
}

// FootprintReporter is implemented by every allocation-heavy subsystem (the
// HCAs, each PE's conduit, the vclock pool, the cluster launcher, the obs
// plane itself). Footprint models the receiver's current retained memory
// from deterministic quantities — object counts times struct-shell sizes
// plus exact buffer lengths — so that a fixed-seed run reports byte-stable
// numbers. It is called only at census boundaries (startup phases, job end)
// and may take the receiver's own locks; it must never call back into the
// census.
type FootprintReporter interface {
	Footprint() []FootprintItem
}

// CensusSnapshot is the engine's state at one census boundary: the measured
// runtime numbers and the per-subsystem modeled attribution rows, aggregated
// by (subsystem, category) and sorted.
type CensusSnapshot struct {
	Label      string          `json:"label"`
	VT         int64           `json:"vt_ns"`
	HeapBytes  int64           `json:"heap_bytes"`  // HeapAlloc after a forced GC
	StackBytes int64           `json:"stack_bytes"` // StackInuse (off-heap)
	Goroutines int64           `json:"goroutines"`
	Items      []FootprintItem `json:"items"`
}

// ModeledHeapBytes sums the snapshot's on-heap attribution rows.
func (s *CensusSnapshot) ModeledHeapBytes() int64 {
	var n int64
	for _, it := range s.Items {
		if !it.OffHeap {
			n += it.Bytes
		}
	}
	return n
}

// SubsystemHeapBytes returns the on-heap modeled bytes per subsystem.
func (s *CensusSnapshot) SubsystemHeapBytes() map[string]int64 {
	m := make(map[string]int64)
	for _, it := range s.Items {
		if !it.OffHeap {
			m[it.Subsystem] += it.Bytes
		}
	}
	return m
}

// Census collects footprint snapshots over a job's lifetime. A nil *Census
// is the disabled plane: every method nil-checks and returns, so the cluster
// layer can thread census calls unconditionally. The census keeps references
// to its reporters for the whole job — deliberately: the job-end snapshot
// must see the same objects the run allocated, not whatever a racing GC left.
type Census struct {
	mu        sync.Mutex
	reporters []FootprintReporter
	snaps     []CensusSnapshot

	// Gauge mirrors (engine.* family, job instance). Gauges record signed
	// deltas, so the census tracks the last recorded level per series.
	gauges  *GaugeSet
	lastCut map[string]int64
}

// NewCensus creates a census mirroring its levels into gs (which may be nil:
// snapshots still accumulate, only the gauge series are absent).
func NewCensus(gs *GaugeSet) *Census {
	return &Census{gauges: gs, lastCut: make(map[string]int64)}
}

// Register adds a reporter. Safe to call while the job runs; reporters
// registered after a snapshot simply first appear in the next one.
func (c *Census) Register(r FootprintReporter) {
	if c == nil || r == nil {
		return
	}
	c.mu.Lock()
	c.reporters = append(c.reporters, r)
	c.mu.Unlock()
}

// Snapshot takes a census at a boundary: forces a GC so HeapAlloc measures
// retained bytes rather than float, reads the runtime counters, collects and
// aggregates every reporter's model, and mirrors the levels into the
// engine.* gauge family at virtual time vt. Boundaries are rare (a handful
// per job), so the forced collection is off any hot path.
func (c *Census) Snapshot(label string, vt int64) {
	if c == nil {
		return
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ng := int64(runtime.NumGoroutine())

	c.mu.Lock()
	defer c.mu.Unlock()
	agg := make(map[FootprintItem]FootprintItem) // key: zero-valued Bytes/Objects
	for _, r := range c.reporters {
		for _, it := range r.Footprint() {
			k := FootprintItem{Subsystem: it.Subsystem, Category: it.Category, OffHeap: it.OffHeap}
			a := agg[k]
			a.Subsystem, a.Category, a.OffHeap = it.Subsystem, it.Category, it.OffHeap
			a.Bytes += it.Bytes
			a.Objects += it.Objects
			agg[k] = a
		}
	}
	items := make([]FootprintItem, 0, len(agg))
	for _, it := range agg {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Subsystem != items[j].Subsystem {
			return items[i].Subsystem < items[j].Subsystem
		}
		return items[i].Category < items[j].Category
	})
	snap := CensusSnapshot{
		Label:      label,
		VT:         vt,
		HeapBytes:  int64(ms.HeapAlloc),
		StackBytes: int64(ms.StackInuse),
		Goroutines: ng,
		Items:      items,
	}
	c.snaps = append(c.snaps, snap)

	c.cutLocked("engine.heap_bytes", vt, snap.HeapBytes)
	c.cutLocked("engine.goroutines", vt, ng)
	for sub, b := range snap.SubsystemHeapBytes() {
		c.cutLocked("engine.bytes."+sub, vt, b)
	}
}

// ObserveRuntime records a lightweight runtime sample (live heap, goroutine
// count) into the engine.* gauges without forcing a collection — the
// -memstats-every soak sampler. Unlike census snapshots, the heap reading
// here includes not-yet-collected garbage; the series shows the engine's
// live pressure, the snapshots show its retained floor.
func (c *Census) ObserveRuntime(vt int64) {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ng := int64(runtime.NumGoroutine())
	c.mu.Lock()
	c.cutLocked("engine.heap_bytes", vt, int64(ms.HeapAlloc))
	c.cutLocked("engine.goroutines", vt, ng)
	c.mu.Unlock()
}

// cutLocked records a gauge level by emitting the delta from the last
// recorded level of the same series. Caller holds c.mu.
func (c *Census) cutLocked(name string, vt, level int64) {
	if c.gauges == nil {
		return
	}
	c.gauges.Gauge(name, InstJob).Add(vt, level-c.lastCut[name])
	c.lastCut[name] = level
}

// Snapshots returns the census history, oldest first.
func (c *Census) Snapshots() []CensusSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CensusSnapshot(nil), c.snaps...)
}

// FootprintRecon is one snapshot's modeled-vs-measured reconciliation row.
// Measured is the heap delta from the baseline snapshot; Drift is
// measured − modeled (positive: bytes the models failed to claim).
type FootprintRecon struct {
	Label         string  `json:"label"`
	ModeledBytes  int64   `json:"modeled_bytes"`
	MeasuredBytes int64   `json:"measured_bytes"`
	DriftBytes    int64   `json:"drift_bytes"`
	DriftFrac     float64 `json:"drift_frac"`
	Within        bool    `json:"within_tolerance"`
}

// FootprintReport is the schema-versioned `footprint` section of the JSON
// report: the full census history, the per-snapshot reconciliation, and the
// drift rows — the subset of reconciliation rows outside tolerance. An empty
// Drift list is the healthy state; anything in it is a modeling bug or a
// leak, in either direction.
type FootprintReport struct {
	SchemaVersion int     `json:"schema_version"`
	ToleranceFrac float64 `json:"tolerance_frac"`
	FloorBytes    int64   `json:"floor_bytes"`

	Snapshots []CensusSnapshot `json:"snapshots"`
	Recon     []FootprintRecon `json:"reconciliation"`
	Drift     []FootprintRecon `json:"drift"`
	// Reconciled is true when every reconciliation row is within tolerance
	// (the acceptance gate the footprint smoke checks).
	Reconciled bool `json:"reconciled"`
}

// BuildReport reconciles the census history. The first snapshot is the
// baseline: everything the process allocated before the job (test harness,
// CLI, runtime) is subtracted out, so modeled bytes — which only cover
// job-owned objects — are compared against job-owned heap growth.
func (c *Census) BuildReport() *FootprintReport {
	snaps := c.Snapshots()
	if snaps == nil {
		return nil
	}
	rep := &FootprintReport{
		SchemaVersion: FootprintSchemaVersion,
		ToleranceFrac: DriftToleranceFrac,
		FloorBytes:    DriftFloorBytes,
		Snapshots:     snaps,
		Recon:         []FootprintRecon{},
		Drift:         []FootprintRecon{},
		Reconciled:    true,
	}
	if len(snaps) == 0 {
		return rep
	}
	base := snaps[0].HeapBytes
	for _, s := range snaps[1:] {
		row := FootprintRecon{
			Label:         s.Label,
			ModeledBytes:  s.ModeledHeapBytes(),
			MeasuredBytes: s.HeapBytes - base,
		}
		row.DriftBytes = row.MeasuredBytes - row.ModeledBytes
		if row.MeasuredBytes > 0 {
			row.DriftFrac = float64(row.DriftBytes) / float64(row.MeasuredBytes)
		}
		abs := row.DriftBytes
		if abs < 0 {
			abs = -abs
		}
		tol := int64(DriftToleranceFrac * float64(row.MeasuredBytes))
		if tol < DriftFloorBytes {
			tol = DriftFloorBytes
		}
		row.Within = abs <= tol
		rep.Recon = append(rep.Recon, row)
		if !row.Within {
			rep.Drift = append(rep.Drift, row)
			rep.Reconciled = false
		}
	}
	return rep
}

// WriteText renders the report as the `-metrics` footprint table: the census
// timeline, the final snapshot's attribution rows, and the drift verdict.
func (r *FootprintReport) WriteText(w io.Writer) {
	if r == nil || len(r.Snapshots) == 0 {
		return
	}
	fmt.Fprintf(w, "--- engine footprint (census, tolerance %.0f%%) ---\n", r.ToleranceFrac*100)
	fmt.Fprintf(w, "%-12s %12s %12s %10s %12s %12s %8s\n",
		"snapshot", "heap", "stacks", "goroutine", "modeled", "drift", "ok")
	reconBy := make(map[string]FootprintRecon, len(r.Recon))
	for _, row := range r.Recon {
		reconBy[row.Label] = row
	}
	for i, s := range r.Snapshots {
		if i == 0 {
			fmt.Fprintf(w, "%-12s %12d %12d %10d %12s %12s %8s\n",
				s.Label, s.HeapBytes, s.StackBytes, s.Goroutines, "-", "-", "base")
			continue
		}
		row := reconBy[s.Label]
		ok := "ok"
		if !row.Within {
			ok = "DRIFT"
		}
		fmt.Fprintf(w, "%-12s %12d %12d %10d %12d %+12d %8s\n",
			s.Label, s.HeapBytes, s.StackBytes, s.Goroutines,
			row.ModeledBytes, row.DriftBytes, ok)
	}
	last := r.Snapshots[len(r.Snapshots)-1]
	fmt.Fprintf(w, "attribution at %q:\n", last.Label)
	fmt.Fprintf(w, "  %-10s %-18s %14s %10s\n", "subsystem", "category", "bytes", "objects")
	for _, it := range last.Items {
		note := ""
		if it.OffHeap {
			note = "  (off-heap)"
		}
		fmt.Fprintf(w, "  %-10s %-18s %14d %10d%s\n", it.Subsystem, it.Category, it.Bytes, it.Objects, note)
	}
	if r.Reconciled {
		fmt.Fprintf(w, "drift rows: none — modeled bytes tile the measured heap\n")
	} else {
		for _, d := range r.Drift {
			fmt.Fprintf(w, "DRIFT %s: modeled %d vs measured %d (%+.0f%%) — attribution does not tile the heap\n",
				d.Label, d.ModeledBytes, d.MeasuredBytes, d.DriftFrac*100)
		}
	}
}

// Footprint models the obs plane's own retained memory — the observer
// observing itself. Event rings dominate traced runs (ring capacity × the
// Event shell; attr backing is neglected, the strings are constants), the
// fixed 976-bucket histogram arrays dominate metric runs, and gauge delta
// logs grow with fabric churn.
func (pl *Plane) Footprint() []FootprintItem {
	if pl == nil {
		return nil
	}
	eventSize := int64(unsafe.Sizeof(Event{}))
	flowSize := int64(unsafe.Sizeof([NumFlowKinds]FlowCell{}))
	phaseSize := int64(unsafe.Sizeof(Phase{}))
	var rings, flows, phases FootprintItem
	for _, pe := range pl.pes {
		pe.mu.Lock()
		rings.Bytes += int64(cap(pe.ring)) * eventSize
		rings.Objects += int64(len(pe.ring))
		flows.Bytes += int64(len(pe.flows)) * (flowSize + mapEntryOverhead)
		flows.Objects += int64(len(pe.flows))
		phases.Bytes += int64(len(pe.phases)) * phaseSize
		phases.Objects += int64(len(pe.phases))
		pe.mu.Unlock()
	}
	peShell := int64(unsafe.Sizeof(PE{}))
	items := []FootprintItem{
		{Subsystem: "obs", Category: "event-rings", Bytes: rings.Bytes + int64(len(pl.pes))*peShell, Objects: rings.Objects},
		{Subsystem: "obs", Category: "flow-matrices", Bytes: flows.Bytes, Objects: flows.Objects},
		{Subsystem: "obs", Category: "phases", Bytes: phases.Bytes, Objects: phases.Objects},
	}
	items = append(items, pl.reg.footprint()...)
	items = append(items, pl.gauges.footprint()...)
	items = append(items, pl.ledger.footprint()...)
	return items
}

// footprint models the registry: counters are shells, each histogram carries
// its fixed 976-slot bucket array (~7.8 KiB).
func (r *Registry) footprint() []FootprintItem {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	nc, nh := int64(len(r.counters)), int64(len(r.hists))
	r.mu.Unlock()
	cSize := int64(unsafe.Sizeof(Counter{})) + mapEntryOverhead
	hSize := int64(unsafe.Sizeof(Hist{})) + mapEntryOverhead
	return []FootprintItem{
		{Subsystem: "obs", Category: "counters", Bytes: nc * cSize, Objects: nc},
		{Subsystem: "obs", Category: "histograms", Bytes: nh * hSize, Objects: nh},
	}
}

// footprint models the gauge registry: one shell per gauge plus its delta
// log at exact length (caps grow by append schedule and would not be
// byte-stable across runs; the tolerance covers the slack).
func (s *GaugeSet) footprint() []FootprintItem {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	deltaSize := int64(unsafe.Sizeof(gaugeDelta{}))
	shell := int64(unsafe.Sizeof(Gauge{})) + mapEntryOverhead
	it := FootprintItem{Subsystem: "obs", Category: "gauge-logs"}
	for _, g := range s.m {
		g.mu.Lock()
		it.Bytes += shell + int64(len(g.log))*deltaSize
		g.mu.Unlock()
		it.Objects++
	}
	return []FootprintItem{it}
}

// footprint models the incident ledger: incident shells plus their logs.
func (l *Ledger) footprint() []FootprintItem {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	incSize := int64(unsafe.Sizeof(Incident{}))
	evSize := int64(unsafe.Sizeof(IncidentEvent{}))
	it := FootprintItem{Subsystem: "obs", Category: "incidents"}
	for _, in := range l.incs {
		it.Bytes += incSize + int64(len(in.Log))*evSize
		it.Objects++
	}
	return []FootprintItem{it}
}
