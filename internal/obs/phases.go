package obs

// Phase is one contiguous slice of a PE's startup (init) interval. The
// instrumentation in shmem.Attach emits phases that exactly tile
// [start_pes begin, start_pes end] — every virtual nanosecond of init is
// attributed to exactly one phase, which the phase-sum test asserts.
type Phase struct {
	Name  string `json:"name"`
	Start int64  `json:"start_vt"`
	End   int64  `json:"end_vt"`
}

// Dur returns the phase duration in virtual ns.
func (p Phase) Dur() int64 { return p.End - p.Start }

// InitPhase records a startup phase for this PE and, when events are
// enabled, mirrors it into the event ring as an "init:<name>" span so it
// shows on the Perfetto timeline. Phases are stored outside the ring so a
// busy run can never drop them. Zero-length phases are recorded too: the
// set of phase names stays identical across connection modes, which keeps
// breakdown tables aligned.
func (p *PE) InitPhase(name string, startVT, endVT int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phases = append(p.phases, Phase{Name: name, Start: startVT, End: endVT})
	p.mu.Unlock()
	p.Span(startVT, endVT, LayerShmem, "init:"+name, -1, 0)
}

// Phases returns the PE's startup phases in emission order.
func (p *PE) Phases() []Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Phase, len(p.phases))
	copy(out, p.phases)
	return out
}

// PEPhases is one rank's startup breakdown.
type PEPhases struct {
	Rank   int     `json:"rank"`
	Phases []Phase `json:"phases"`
}

// StartupPhases returns every PE's startup breakdown, rank-ordered.
func (pl *Plane) StartupPhases() []PEPhases {
	if pl == nil {
		return nil
	}
	out := make([]PEPhases, len(pl.pes))
	for r, pe := range pl.pes {
		out[r] = PEPhases{Rank: r, Phases: pe.Phases()}
	}
	return out
}

// PhaseTotals aggregates phase durations across PEs: names holds each
// phase name in first-seen order, sums the per-name total virtual ns
// across all PEs, and maxes the largest single-PE total per name.
func PhaseTotals(pes []PEPhases) (names []string, sums, maxes map[string]int64) {
	sums = make(map[string]int64)
	maxes = make(map[string]int64)
	perPE := make(map[string]int64)
	for _, pp := range pes {
		for k := range perPE {
			delete(perPE, k)
		}
		for _, ph := range pp.Phases {
			if _, ok := sums[ph.Name]; !ok {
				names = append(names, ph.Name)
			}
			sums[ph.Name] += ph.Dur()
			perPE[ph.Name] += ph.Dur()
		}
		for name, d := range perPE {
			if d > maxes[name] {
				maxes[name] = d
			}
		}
	}
	return names, sums, maxes
}
