package obs

import (
	"reflect"
	"strings"
	"testing"
)

// connEvent builds one gasnet-layer conn-* instant.
func connEvent(vt int64, rank int, kind string, peer int) Event {
	return Event{VT: vt, Rank: rank, Layer: LayerGasnet, Kind: kind, Peer: peer}
}

func TestBuildConnTimelines(t *testing.T) {
	evs := []Event{
		// Pair 0->1: initiate, ready, evict, reconnect, ready again.
		connEvent(100, 0, "conn-initiate", 1),
		connEvent(400, 0, "conn-ready-client", 1),
		connEvent(900, 0, "conn-evict", 1),
		connEvent(1200, 0, "conn-initiate", 1),
		connEvent(1300, 0, "conn-retransmit", 1),
		connEvent(1600, 0, "conn-ready-client", 1),
		// Pair 1->0: server side.
		connEvent(250, 1, "conn-req-served", 0),
		connEvent(400, 1, "conn-ready-server", 0),
		// Noise the reducer must ignore: spans, other layers, peerless events.
		{VT: 100, Rank: 0, Layer: LayerGasnet, Kind: "connect", Peer: 1, Dur: 300},
		{VT: 500, Rank: 0, Layer: LayerIB, Kind: "conn-initiate", Peer: 1},
		{VT: 600, Rank: 0, Layer: LayerGasnet, Kind: "conn-initiate", Peer: -1},
	}
	tls := BuildConnTimelines(evs)
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2: %+v", len(tls), tls)
	}
	c := tls[0] // (0,1) sorts first
	if c.Rank != 0 || c.Peer != 1 {
		t.Fatalf("first timeline pair = %d->%d", c.Rank, c.Peer)
	}
	if c.Attempts != 3 || c.Established != 2 || c.Evictions != 1 || c.Reconnects != 1 {
		t.Fatalf("0->1 counts: %+v", c)
	}
	wantStates := []TimelinePoint{
		{100, "initiate"}, {400, "ready-client"}, {900, "evict"},
		{1200, "initiate"}, {1300, "retransmit"}, {1600, "ready-client"},
	}
	if !reflect.DeepEqual(c.States, wantStates) {
		t.Fatalf("0->1 states: %+v", c.States)
	}
	s := tls[1]
	if s.Rank != 1 || s.Peer != 0 || s.Attempts != 0 || s.Established != 1 || s.Reconnects != 0 {
		t.Fatalf("1->0 timeline: %+v", s)
	}

	// Rendering is stable text.
	var sb strings.Builder
	WriteTimelines(&sb, tls)
	want := "0->1 attempts=3 est=2 evict=1 recon=1 | initiate@100 ready-client@400 evict@900 initiate@1200 retransmit@1300 ready-client@1600\n" +
		"1->0 attempts=0 est=1 evict=0 recon=0 | req-served@250 ready-server@400\n"
	if sb.String() != want {
		t.Fatalf("render:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSynthConnSpans(t *testing.T) {
	tls := BuildConnTimelines([]Event{
		connEvent(100, 0, "conn-initiate", 1),
		connEvent(400, 0, "conn-ready-client", 1),
		connEvent(900, 0, "conn-evict", 1),
		connEvent(1200, 0, "conn-initiate", 1),
		connEvent(1600, 0, "conn-ready-client", 1),
		// no eviction after the second establish: live at job end
	})
	if len(tls) != 1 {
		t.Fatalf("timelines: %+v", tls)
	}
	spans := synthConnSpans(&tls[0])
	want := []connSpan{
		{"conn-handshake", 100, 400},
		{"conn-live", 400, 900},
		{"conn-episode", 100, 900},
		{"conn-handshake", 1200, 1600}, // open episode: handshake only
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans: %+v\nwant: %+v", spans, want)
	}

	// A handshake that never completed synthesizes nothing.
	tls = BuildConnTimelines([]Event{connEvent(100, 0, "conn-initiate", 1)})
	if spans := synthConnSpans(&tls[0]); len(spans) != 0 {
		t.Fatalf("incomplete handshake synthesized spans: %+v", spans)
	}
}

// TestBuildConnTimelinesEvictionRacesHandshake covers the eviction-vs-
// reconnect race: the LRU evicts a pair at the same virtual time its owner's
// next handshake event lands. The reducer must not lose either event, must
// order same-VT states deterministically (by state name), and must keep the
// counts consistent — the in-flight handshake that completes after the
// eviction is a re-establishment.
func TestBuildConnTimelinesEvictionRacesHandshake(t *testing.T) {
	evs := []Event{
		connEvent(100, 0, "conn-initiate", 1),
		connEvent(400, 0, "conn-ready-client", 1),
		// Eviction and the reconnect's initiate land on the same VT tick.
		connEvent(900, 0, "conn-evict", 1),
		connEvent(900, 0, "conn-initiate", 1),
		connEvent(1300, 0, "conn-ready-client", 1),
	}
	// The reducer accepts any input order; feed it the racy order reversed.
	rev := make([]Event, len(evs))
	for i := range evs {
		rev[len(evs)-1-i] = evs[i]
	}
	a, b := BuildConnTimelines(evs), BuildConnTimelines(rev)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("timelines depend on input order:\n%+v\nvs\n%+v", a, b)
	}
	tl := a[0]
	if tl.Attempts != 2 || tl.Established != 2 || tl.Evictions != 1 || tl.Reconnects != 1 {
		t.Fatalf("racy eviction counts: %+v", tl)
	}
	// Same-VT transitions sort by state name: evict before initiate.
	want := []TimelinePoint{
		{100, "initiate"}, {400, "ready-client"},
		{900, "evict"}, {900, "initiate"}, {1300, "ready-client"},
	}
	if !reflect.DeepEqual(tl.States, want) {
		t.Fatalf("racy eviction states: %+v", tl.States)
	}
}

// TestBuildConnTimelinesReconnectWithoutEstablish covers streams whose
// beginning is missing (ring truncation, or a server that only ever saw the
// reconnect): a ready with no prior initiate, or an evict with no prior
// ready. Counts must stay non-negative and reconnects must derive only from
// observed establishments.
func TestBuildConnTimelinesReconnectWithoutEstablish(t *testing.T) {
	// Evict-first: the establishment predates the captured window.
	tls := BuildConnTimelines([]Event{
		connEvent(900, 0, "conn-evict", 1),
		connEvent(1200, 0, "conn-initiate", 1),
		connEvent(1600, 0, "conn-ready-client", 1),
	})
	if len(tls) != 1 {
		t.Fatalf("timelines: %+v", tls)
	}
	tl := tls[0]
	if tl.Established != 1 || tl.Reconnects != 0 {
		t.Fatalf("evict-first window: est=%d recon=%d, want 1/0 (no observed prior establish)",
			tl.Established, tl.Reconnects)
	}
	if tl.Evictions != 1 || tl.Attempts != 1 {
		t.Fatalf("evict-first window counts: %+v", tl)
	}

	// Ready-only: not even the reconnect's initiate survived truncation.
	tls = BuildConnTimelines([]Event{connEvent(1600, 3, "conn-ready-server", 7)})
	tl = tls[0]
	if tl.Attempts != 0 || tl.Established != 1 || tl.Reconnects != 0 || tl.Evictions != 0 {
		t.Fatalf("ready-only window counts: %+v", tl)
	}
}

// TestBuildConnTimelinesTruncatedRing drives a real plane with a ring small
// enough to overflow: the reducer must work from the surviving suffix of the
// stream, and the plane's dropped-event counter must make the truncation
// visible so a consumer never mistakes a partial timeline for a complete one.
func TestBuildConnTimelinesTruncatedRing(t *testing.T) {
	pl := NewPlane(1, Config{Events: true, RingCap: 4})
	pe := pl.PE(0)
	// Ten full lifecycles; only the last 4 events fit the ring.
	for i := 0; i < 10; i++ {
		base := int64(1000 * (i + 1))
		pe.Emit(base, LayerGasnet, "conn-initiate", 1, 0)
		pe.Emit(base+100, LayerGasnet, "conn-ready-client", 1, 0)
		pe.Emit(base+500, LayerGasnet, "conn-evict", 1, 0)
	}
	if pl.Dropped() != 30-4 {
		t.Fatalf("dropped = %d, want %d", pl.Dropped(), 30-4)
	}
	tls := BuildConnTimelines(pl.Events())
	if len(tls) != 1 {
		t.Fatalf("timelines: %+v", tls)
	}
	tl := tls[0]
	// Surviving window: evict@9500, initiate@10000, ready@10100, evict@10500.
	want := []TimelinePoint{
		{9500, "evict"}, {10000, "initiate"}, {10100, "ready-client"}, {10500, "evict"},
	}
	if !reflect.DeepEqual(tl.States, want) {
		t.Fatalf("truncated states: %+v", tl.States)
	}
	if tl.Attempts != 1 || tl.Established != 1 || tl.Evictions != 2 || tl.Reconnects != 0 {
		t.Fatalf("truncated counts: %+v", tl)
	}
}

// TestPerfettoConnTracks checks the exporter materializes per-peer conn
// tracks: a thread-name metadata row at tid base+peer and the synthesized
// handshake/live/episode slices, only for pairs that completed a handshake.
func TestPerfettoConnTracks(t *testing.T) {
	pl := NewPlane(2, Config{Events: true})
	p0 := pl.PE(0)
	p0.Emit(1000, LayerGasnet, "conn-initiate", 1, 0)
	p0.Emit(2000, LayerGasnet, "conn-ready-client", 1, 0)
	p0.Emit(5000, LayerGasnet, "conn-evict", 1, 0)
	// PE 1 only initiated; no completed handshake, so no conn track.
	pl.PE(1).Emit(1000, LayerGasnet, "conn-initiate", 0, 0)

	var sb strings.Builder
	if err := pl.WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"tid":17,"name":"thread_name","args":{"name":"conn peer 1"}`) {
		t.Fatalf("missing conn-track metadata for PE 0 peer 1:\n%s", out)
	}
	for _, name := range []string{"conn-handshake", "conn-live", "conn-episode"} {
		if !strings.Contains(out, `"name":"`+name+`"`) {
			t.Fatalf("missing synthesized %s slice:\n%s", name, out)
		}
	}
	if strings.Contains(out, `"name":"conn peer 0"`) {
		t.Fatalf("PE 1 got a conn track without a completed handshake:\n%s", out)
	}
}
