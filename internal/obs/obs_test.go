package obs

import (
	"reflect"
	"testing"
)

func TestNopIsSafe(t *testing.T) {
	var p *PE // == Nop
	p.Emit(1, LayerGasnet, "x", 2, 3)
	p.Span(1, 2, LayerShmem, "y", -1, 0)
	p.InitPhase("pmi", 0, 10)
	p.Count("c", 1)
	p.Observe("h", 5)
	if p.Active() || p.EventsEnabled() {
		t.Fatal("nil PE reports active")
	}
	if p.Counter("c") != nil || p.Hist("h") != nil {
		t.Fatal("nil PE returned live metrics")
	}
	if p.Rank() != -1 || len(p.Phases()) != 0 {
		t.Fatal("nil PE leaked state")
	}
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter leaked state")
	}
	var h *Hist
	h.Record(10)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil hist leaked state")
	}
	var pl *Plane
	if pl.PE(0) != Nop || pl.Events() != nil || pl.Registry() != nil || pl.Dropped() != 0 {
		t.Fatal("nil plane leaked state")
	}
}

func TestMetricsOnlyPlaneRecordsNoEvents(t *testing.T) {
	pl := NewPlane(2, Config{Metrics: true})
	pe := pl.PE(0)
	if pe.EventsEnabled() {
		t.Fatal("metrics-only plane claims events enabled")
	}
	if !pe.Active() {
		t.Fatal("metrics-only plane claims inactive")
	}
	pe.Emit(1, LayerGasnet, "x", -1, 0)
	if len(pl.Events()) != 0 {
		t.Fatal("metrics-only plane recorded an event")
	}
	pe.Count("a.b", 3)
	pe.Count("a.b", 4)
	cs := pl.Registry().Counters()
	if len(cs) != 1 || cs[0].Name != "a.b" || cs[0].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", cs)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	pl := NewPlane(1, Config{Events: true, RingCap: 4})
	pe := pl.PE(0)
	for i := 0; i < 10; i++ {
		pe.Emit(int64(i), LayerIB, "e", -1, 0)
	}
	evs := pl.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.VT != int64(6+i) {
			t.Fatalf("event %d VT=%d, want %d (oldest dropped first)", i, e.VT, 6+i)
		}
	}
	if pl.Dropped() != 6 {
		t.Fatalf("Dropped()=%d, want 6", pl.Dropped())
	}
}

func TestUnboundedRing(t *testing.T) {
	pl := NewPlane(1, Config{Events: true, RingCap: -1})
	pe := pl.PE(0)
	n := DefaultRingCap + 100
	for i := 0; i < n; i++ {
		pe.Emit(int64(i), LayerIB, "e", -1, 0)
	}
	if got := len(pl.Events()); got != n {
		t.Fatalf("unbounded ring kept %d events, want %d", got, n)
	}
	if pl.Dropped() != 0 {
		t.Fatalf("unbounded ring dropped %d events", pl.Dropped())
	}
}

func TestSortEventsDeterministicOrder(t *testing.T) {
	evs := []Event{
		{VT: 5, Rank: 1, Layer: LayerShmem, Kind: "b"},
		{VT: 5, Rank: 0, Layer: LayerShmem, Kind: "b"},
		{VT: 5, Rank: 0, Layer: LayerGasnet, Kind: "a", Peer: 2},
		{VT: 5, Rank: 0, Layer: LayerGasnet, Kind: "a", Peer: 1},
		{VT: 3, Rank: 7, Layer: LayerIB, Kind: "z"},
	}
	SortEvents(evs)
	want := []Event{
		{VT: 3, Rank: 7, Layer: LayerIB, Kind: "z"},
		{VT: 5, Rank: 0, Layer: LayerGasnet, Kind: "a", Peer: 1},
		{VT: 5, Rank: 0, Layer: LayerGasnet, Kind: "a", Peer: 2},
		{VT: 5, Rank: 0, Layer: LayerShmem, Kind: "b"},
		{VT: 5, Rank: 1, Layer: LayerShmem, Kind: "b"},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("sort order wrong:\n got %+v\nwant %+v", evs, want)
	}
}

func TestPhasesSeparateFromRing(t *testing.T) {
	pl := NewPlane(1, Config{Events: true, RingCap: 2})
	pe := pl.PE(0)
	pe.InitPhase("qp-setup", 0, 10)
	pe.InitPhase("pmi-exchange", 10, 30)
	for i := 0; i < 100; i++ { // overflow the ring
		pe.Emit(int64(100+i), LayerGasnet, "noise", -1, 0)
	}
	ph := pe.Phases()
	if len(ph) != 2 || ph[0].Name != "qp-setup" || ph[1].Dur() != 20 {
		t.Fatalf("phases lost to ring overflow: %+v", ph)
	}
	names, sums, maxes := PhaseTotals(pl.StartupPhases())
	if !reflect.DeepEqual(names, []string{"qp-setup", "pmi-exchange"}) {
		t.Fatalf("phase names wrong: %v", names)
	}
	if sums["pmi-exchange"] != 20 || maxes["qp-setup"] != 10 {
		t.Fatalf("phase totals wrong: sums=%v maxes=%v", sums, maxes)
	}
}

func TestSpanClampsNegativeDur(t *testing.T) {
	pl := NewPlane(1, Config{Events: true})
	pe := pl.PE(0)
	pe.Span(10, 5, LayerMPI, "weird", -1, 0)
	evs := pl.Events()
	if len(evs) != 1 || evs[0].Dur != 0 {
		t.Fatalf("negative-duration span not clamped: %+v", evs)
	}
}
