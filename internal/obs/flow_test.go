package obs

import (
	"strings"
	"testing"
)

func TestFlowNopAndGating(t *testing.T) {
	// Nil receiver and out-of-range inputs must be no-ops.
	var nop *PE
	nop.Flow(1, FlowPut, 64)
	if nop.FlowSnapshot() != nil {
		t.Fatal("nil PE returned a flow snapshot")
	}

	// A plane without Flows records nothing, even with other planes on.
	pl := NewPlane(1, Config{Events: true, Metrics: true})
	pe := pl.PE(0)
	if pe.FlowsEnabled() {
		t.Fatal("Flows reported enabled without Config.Flows")
	}
	pe.Flow(1, FlowPut, 64)
	if pe.FlowSnapshot() != nil {
		t.Fatal("flow recorded with Config.Flows disabled")
	}

	// With Flows on, bad inputs are still dropped.
	pl = NewPlane(1, Config{Flows: true})
	pe = pl.PE(0)
	if !pe.Active() || !pe.FlowsEnabled() {
		t.Fatal("flows-only plane reports inactive")
	}
	pe.Flow(-1, FlowPut, 64)
	pe.Flow(1, NumFlowKinds, 64)
	if pe.FlowSnapshot() != nil {
		t.Fatal("bad peer/kind recorded a flow")
	}
}

func TestFlowSnapshotSortedAndAccumulated(t *testing.T) {
	pl := NewPlane(1, Config{Flows: true})
	pe := pl.PE(0)
	pe.Flow(3, FlowPut, 100)
	pe.Flow(1, FlowGet, 10)
	pe.Flow(3, FlowPut, 28)
	pe.Flow(3, FlowCtrl, 5)
	pe.Flow(1, FlowGet, 6)

	edges := pe.FlowSnapshot()
	if len(edges) != 2 || edges[0].Peer != 1 || edges[1].Peer != 3 {
		t.Fatalf("snapshot not sorted by peer: %+v", edges)
	}
	if c := edges[0].Cells[FlowGet]; c.Ops != 2 || c.Bytes != 16 {
		t.Fatalf("peer 1 get cell = %+v, want {2 16}", c)
	}
	if c := edges[1].Cells[FlowPut]; c.Ops != 2 || c.Bytes != 128 {
		t.Fatalf("peer 3 put cell = %+v, want {2 128}", c)
	}
	if edges[1].TotalOps() != 3 || edges[1].TotalBytes() != 133 {
		t.Fatalf("peer 3 totals = %d/%d, want 3/133", edges[1].TotalOps(), edges[1].TotalBytes())
	}
	if edges[1].DataOps() != 2 || edges[1].DataBytes() != 128 {
		t.Fatalf("peer 3 data totals = %d/%d, want 2/128 (ctrl excluded)", edges[1].DataOps(), edges[1].DataBytes())
	}
}

func TestDataPeersExcludesSelfAndCtrlOnly(t *testing.T) {
	pl := NewPlane(1, Config{Flows: true})
	pe := pl.PE(0)
	pe.Flow(0, FlowPut, 8)  // self
	pe.Flow(1, FlowCtrl, 8) // ctrl-only peer
	pe.Flow(2, FlowAM, 8)
	pe.Flow(3, FlowBarrier, 0)
	if n := DataPeers(0, pe.FlowSnapshot()); n != 2 {
		t.Fatalf("DataPeers = %d, want 2 (self and ctrl-only excluded)", n)
	}
}

func TestDegreeDistribution(t *testing.T) {
	if d := DegreeDistribution(nil); d != (DegreeDist{}) {
		t.Fatalf("empty input: %+v", d)
	}
	d := DegreeDistribution([]int{4, 1, 3, 2, 100})
	if d.Min != 1 || d.Max != 100 {
		t.Fatalf("min/max = %d/%d", d.Min, d.Max)
	}
	if d.P50 != 3 {
		t.Fatalf("p50 = %d, want 3 (nearest rank)", d.P50)
	}
	if d.P95 != 100 {
		t.Fatalf("p95 = %d, want 100", d.P95)
	}
	if d.Avg != 22 {
		t.Fatalf("avg = %v, want 22", d.Avg)
	}
}

func TestFlowKindNames(t *testing.T) {
	names := FlowKindNames()
	if len(names) != int(NumFlowKinds) {
		t.Fatalf("got %d names for %d kinds", len(names), NumFlowKinds)
	}
	if FlowPut.String() != "put" || FlowCtrl.String() != "ctrl" {
		t.Fatalf("kind names wrong: %q %q", FlowPut, FlowCtrl)
	}
	if got := FlowKind(200).String(); got != "kind-200" {
		t.Fatalf("out-of-range kind = %q", got)
	}
}

// heatEdges builds a minimal per-PE edge list with the given byte weights:
// weights[r][p] bytes from rank r to peer p.
func heatEdges(weights [][]int64) [][]FlowEdge {
	out := make([][]FlowEdge, len(weights))
	for r, row := range weights {
		for p, b := range row {
			if b == 0 {
				continue
			}
			var e FlowEdge
			e.Peer = p
			e.Cells[FlowPut] = FlowCell{Ops: 1, Bytes: b}
			out[r] = append(out[r], e)
		}
	}
	return out
}

func TestWriteHeatmapSmall(t *testing.T) {
	var sb strings.Builder
	WriteHeatmap(&sb, 2, heatEdges([][]int64{{0, 1024}, {1, 0}}))
	got := sb.String()
	want := "flow heatmap (2 PEs, rows=src, cols=dst, bytes-weighted):\n" +
		"     0 | @|\n" +
		"     1 |. |\n" +
		"  scale: ' ' = none .. '@' = 1024 bytes\n"
	if got != want {
		t.Fatalf("heatmap output:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: a second render is byte-identical.
	var sb2 strings.Builder
	WriteHeatmap(&sb2, 2, heatEdges([][]int64{{0, 1024}, {1, 0}}))
	if sb2.String() != got {
		t.Fatal("heatmap render not deterministic")
	}
}

func TestWriteHeatmapBuckets(t *testing.T) {
	// 100 PEs bucket into ceil(100/32)=4-PE buckets -> 25x25 grid.
	np := 100
	weights := make([][]int64, np)
	for r := range weights {
		weights[r] = make([]int64, np)
		weights[r][(r+1)%np] = 512
	}
	var sb strings.Builder
	WriteHeatmap(&sb, np, heatEdges(weights))
	out := sb.String()
	if !strings.Contains(out, "4-PE buckets") {
		t.Fatalf("bucketed header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 25 rows + scale line
	if len(lines) != 27 {
		t.Fatalf("got %d lines, want 27", len(lines))
	}
	// Each grid row renders side glyphs between the pipes.
	row := lines[1]
	open := strings.IndexByte(row, '|')
	if open < 0 || len(row)-open-2 != 25 {
		t.Fatalf("row width wrong: %q", row)
	}
}
