package obs

import (
	"fmt"
	"io"
	"sort"
)

// Flow telemetry: the per-PE, per-peer communication matrix.
//
// Every conduit send path records one (peer, kind, bytes) sample; the
// per-PE recorder accumulates them into a small map of per-peer cells.
// Job-level reducers (degree distribution, bytes-weighted heatmap, waste
// attribution) run over the merged snapshots after the run. Like the rest
// of the plane, recording is nil-receiver safe and gated on Config.Flows,
// and everything derived from the matrix is deterministic: snapshots are
// sorted by peer, and the counts themselves are a function of the virtual
// schedule only (the data plane delivers exactly once).

// FlowKind classifies one directed traffic edge by operation class.
type FlowKind uint8

const (
	FlowPut FlowKind = iota
	FlowGet
	FlowAtomic
	FlowAM      // application-level active messages (point-to-point)
	FlowColl    // collective traffic (broadcast/reduce/collect rounds)
	FlowBarrier // barrier rounds
	FlowCtrl    // UD control datagrams (handshake, heartbeat, abort)

	// NumFlowKinds sizes per-edge cell arrays; keep it last.
	NumFlowKinds
)

var flowKindNames = [NumFlowKinds]string{
	"put", "get", "atomic", "am", "coll", "barrier", "ctrl",
}

func (k FlowKind) String() string {
	if int(k) < len(flowKindNames) {
		return flowKindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// FlowKindNames returns the kind names in enum order (for report headers).
func FlowKindNames() []string {
	out := make([]string, NumFlowKinds)
	copy(out, flowKindNames[:])
	return out
}

// FlowCell is one (kind) bucket of a directed edge.
type FlowCell struct {
	Ops   int64 `json:"ops"`
	Bytes int64 `json:"bytes"`
}

// FlowEdge is the directed traffic from the recording PE to Peer, split by
// kind. Cells is indexed by FlowKind.
type FlowEdge struct {
	Peer  int                    `json:"peer"`
	Cells [NumFlowKinds]FlowCell `json:"cells"`
}

// TotalOps sums ops across all kinds, control included.
func (e *FlowEdge) TotalOps() int64 {
	var n int64
	for i := range e.Cells {
		n += e.Cells[i].Ops
	}
	return n
}

// TotalBytes sums bytes across all kinds, control included.
func (e *FlowEdge) TotalBytes() int64 {
	var n int64
	for i := range e.Cells {
		n += e.Cells[i].Bytes
	}
	return n
}

// DataOps sums ops across the data-plane kinds (everything but ctrl).
func (e *FlowEdge) DataOps() int64 { return e.TotalOps() - e.Cells[FlowCtrl].Ops }

// DataBytes sums bytes across the data-plane kinds (everything but ctrl).
func (e *FlowEdge) DataBytes() int64 { return e.TotalBytes() - e.Cells[FlowCtrl].Bytes }

// Flow records one send of the given kind to peer. Nil-safe; a plane
// without Config.Flows set records nothing.
func (p *PE) Flow(peer int, kind FlowKind, bytes int64) {
	if p == nil || !p.plane.cfg.Flows || peer < 0 || kind >= NumFlowKinds {
		return
	}
	p.mu.Lock()
	if p.flows == nil {
		p.flows = make(map[int]*[NumFlowKinds]FlowCell)
	}
	cells := p.flows[peer]
	if cells == nil {
		cells = new([NumFlowKinds]FlowCell)
		p.flows[peer] = cells
	}
	cells[kind].Ops++
	cells[kind].Bytes += bytes
	p.mu.Unlock()
}

// FlowSnapshot returns this PE's flow matrix row as edges sorted by peer.
// Nil (not empty) when flows are disabled or nothing was recorded.
func (p *PE) FlowSnapshot() []FlowEdge {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]FlowEdge, 0, len(p.flows))
	for peer, cells := range p.flows {
		out = append(out, FlowEdge{Peer: peer, Cells: *cells})
	}
	p.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// DataPeers counts the distinct peers (excluding self) an edge list carries
// data-plane traffic to — the paper's Table I "communicating peers" metric
// computed from the matrix instead of the conduit's peer set.
func DataPeers(self int, edges []FlowEdge) int {
	n := 0
	for i := range edges {
		if edges[i].Peer != self && edges[i].DataOps() > 0 {
			n++
		}
	}
	return n
}

// DegreeDist is the distribution of per-PE peer degrees.
type DegreeDist struct {
	Min int     `json:"min"`
	P50 int     `json:"p50"`
	P95 int     `json:"p95"`
	Max int     `json:"max"`
	Avg float64 `json:"avg"`
}

// DegreeDistribution reduces per-PE degrees (communicating peers per PE)
// into min/p50/p95/max/avg. Percentiles use the nearest-rank rule on the
// sorted degrees.
func DegreeDistribution(degrees []int) DegreeDist {
	if len(degrees) == 0 {
		return DegreeDist{}
	}
	s := append([]int(nil), degrees...)
	sort.Ints(s)
	var sum int64
	for _, d := range s {
		sum += int64(d)
	}
	rank := func(p float64) int {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return DegreeDist{
		Min: s[0],
		P50: rank(0.50),
		P95: rank(0.95),
		Max: s[len(s)-1],
		Avg: float64(sum) / float64(len(s)),
	}
}

// heatRamp maps increasing traffic intensity to denser glyphs; index 0 is
// "no traffic at all".
var heatRamp = []byte(" .:-=+*#@")

// WriteHeatmap renders the job's flow matrix as a bytes-weighted text
// heatmap: one row per source PE, one column per destination, glyph density
// proportional to log(bytes) relative to the densest cell. Jobs larger than
// maxSide PEs are bucketed into a maxSide x maxSide grid (cells aggregate).
// perPE[r] is rank r's edge list; ctrl traffic is included in the weights
// (it is traffic the fabric carried).
func WriteHeatmap(w io.Writer, np int, perPE [][]FlowEdge) {
	const maxSide = 32
	side := np
	bucket := 1
	if side > maxSide {
		bucket = (np + maxSide - 1) / maxSide
		side = (np + bucket - 1) / bucket
	}
	grid := make([]int64, side*side)
	var max int64
	for r := 0; r < np && r < len(perPE); r++ {
		for i := range perPE[r] {
			e := &perPE[r][i]
			if e.Peer < 0 || e.Peer >= np {
				continue
			}
			cell := &grid[(r/bucket)*side+e.Peer/bucket]
			*cell += e.TotalBytes()
			if *cell > max {
				max = *cell
			}
		}
	}
	if bucket > 1 {
		fmt.Fprintf(w, "flow heatmap (%d PEs, %d-PE buckets, rows=src, cols=dst, bytes-weighted):\n", np, bucket)
	} else {
		fmt.Fprintf(w, "flow heatmap (%d PEs, rows=src, cols=dst, bytes-weighted):\n", np)
	}
	for row := 0; row < side; row++ {
		line := make([]byte, side)
		for col := 0; col < side; col++ {
			line[col] = heatGlyph(grid[row*side+col], max)
		}
		fmt.Fprintf(w, "  %4d |%s|\n", row*bucket, line)
	}
	fmt.Fprintf(w, "  scale: '%s' = none .. '%c' = %d bytes\n", " ", heatRamp[len(heatRamp)-1], max)
}

// heatGlyph picks the ramp glyph for v on a log scale relative to max.
func heatGlyph(v, max int64) byte {
	if v <= 0 || max <= 0 {
		return heatRamp[0]
	}
	// log2-ish bucketing: glyph index grows with bit length relative to max.
	mb, vb := bitLen(max), bitLen(v)
	steps := len(heatRamp) - 2 // indices 1..len-1 carry traffic
	idx := 1 + steps*vb/mb
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	return heatRamp[idx]
}

func bitLen(v int64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
