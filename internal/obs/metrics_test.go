package obs

import (
	"math/rand"
	"testing"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Small values are exact.
	for v := int64(0); v < 16; v++ {
		if got := histMid(histBucket(v)); got != v {
			t.Fatalf("small value %d mapped to %d", v, got)
		}
	}
	// Large values stay within ~6.5% of their bucket midpoint.
	for _, v := range []int64{16, 100, 1023, 1 << 20, 123456789, 1 << 40, 1<<62 + 12345} {
		mid := histMid(histBucket(v))
		diff := v - mid
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.07*float64(v) {
			t.Fatalf("value %d bucket midpoint %d off by %.1f%%", v, mid, 100*float64(diff)/float64(v))
		}
	}
	// Monotone bucket index.
	prev := -1
	for e := 0; e < 63; e++ {
		b := histBucket(int64(1) << uint(e))
		if b <= prev {
			t.Fatalf("bucket index not monotone at 2^%d: %d <= %d", e, b, prev)
		}
		prev = b
	}
	if histBucket(1<<63-1) >= histBuckets {
		t.Fatalf("max value overflows bucket array: %d >= %d", histBucket(1<<63-1), histBuckets)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := &Hist{name: "t"}
	// 1000 observations: 0..999. p50 ≈ 500, p99 ≈ 990, max = 999 exact.
	for v := int64(0); v < 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count=%d", h.Count())
	}
	s := h.Snapshot()
	if s.Max != 999 {
		t.Fatalf("max=%d, want exact 999", s.Max)
	}
	if s.Sum != 999*1000/2 {
		t.Fatalf("sum=%d", s.Sum)
	}
	check := func(name string, got, want int64) {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.10*float64(want) {
			t.Errorf("%s=%d, want within 10%% of %d", name, got, want)
		}
	}
	check("p50", s.P50, 500)
	check("p95", s.P95, 950)
	check("p99", s.P99, 990)
}

func TestHistQuantileNeverExceedsMax(t *testing.T) {
	h := &Hist{name: "t"}
	h.Record(1_000_000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v > 1_000_000 {
			t.Fatalf("quantile %.2f = %d exceeds max", q, v)
		}
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	h := &Hist{name: "t"}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				h.Record(r.Int63n(1 << 30))
			}
			done <- struct{}{}
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 40000 {
		t.Fatalf("count=%d, want 40000", h.Count())
	}
}

func TestRegistrySameNameSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter not shared by name")
	}
	if r.Hist("y") != r.Hist("y") {
		t.Fatal("hist not shared by name")
	}
}
