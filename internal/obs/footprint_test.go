package obs

import (
	"runtime"
	"testing"
)

type fakeReporter []FootprintItem

func (f fakeReporter) Footprint() []FootprintItem { return f }

func TestCensusNilIsSafe(t *testing.T) {
	var c *Census
	c.Register(fakeReporter{})
	c.Snapshot("x", 0)
	c.ObserveRuntime(0)
	if c.Snapshots() != nil {
		t.Fatal("nil census leaked snapshots")
	}
	if c.BuildReport() != nil {
		t.Fatal("nil census built a report")
	}
}

func TestCensusAggregatesAndSorts(t *testing.T) {
	c := NewCensus(nil)
	c.Register(fakeReporter{{Subsystem: "ib", Category: "qps", Bytes: 100, Objects: 2}})
	c.Register(fakeReporter{{Subsystem: "ib", Category: "qps", Bytes: 50, Objects: 1}})
	c.Register(fakeReporter{
		{Subsystem: "gasnet", Category: "conns", Bytes: 10, Objects: 1},
		{Subsystem: "cluster", Category: "goroutines", Bytes: 8192, Objects: 1, OffHeap: true},
	})
	c.Snapshot("setup", 7)
	snaps := c.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Label != "setup" || s.VT != 7 {
		t.Fatalf("bad snapshot header: %+v", s)
	}
	if s.HeapBytes <= 0 || s.Goroutines <= 0 {
		t.Fatalf("runtime readings missing: heap=%d goroutines=%d", s.HeapBytes, s.Goroutines)
	}
	want := []FootprintItem{
		{Subsystem: "cluster", Category: "goroutines", Bytes: 8192, Objects: 1, OffHeap: true},
		{Subsystem: "gasnet", Category: "conns", Bytes: 10, Objects: 1},
		{Subsystem: "ib", Category: "qps", Bytes: 150, Objects: 3},
	}
	if len(s.Items) != len(want) {
		t.Fatalf("got %d items, want %d: %+v", len(s.Items), len(want), s.Items)
	}
	for i, it := range s.Items {
		if it != want[i] {
			t.Fatalf("item %d = %+v, want %+v", i, it, want[i])
		}
	}
	if got := s.ModeledHeapBytes(); got != 160 {
		t.Fatalf("ModeledHeapBytes = %d, want 160 (off-heap row must be excluded)", got)
	}
}

// TestCensusReconciliation pins the drift arithmetic: allocate a known slab
// between the baseline and a second snapshot, model exactly that slab, and
// the report must reconcile; model nothing and it must produce a drift row.
func TestCensusReconciliation(t *testing.T) {
	const slabSize = 32 << 20 // far above the 1 MiB drift floor
	var slab []byte
	c := NewCensus(nil)
	var modeled *[]byte
	c.Register(reporterFunc(func() []FootprintItem {
		if modeled == nil {
			return nil
		}
		return []FootprintItem{{Subsystem: "test", Category: "slab", Bytes: int64(len(*modeled)), Objects: 1}}
	}))
	c.Snapshot("baseline", 0)
	slab = make([]byte, slabSize)
	for i := range slab {
		slab[i] = byte(i) // touch every page so the allocation is real
	}
	modeled = &slab
	c.Snapshot("job-end", 1)
	r := c.BuildReport()
	if !r.Reconciled || len(r.Drift) != 0 {
		t.Fatalf("modeled slab should reconcile: %+v", r.Recon)
	}
	// Unrelated baseline garbage may be reclaimed between snapshots, so the
	// delta can undershoot the slab by a little; nine tenths is plenty to
	// prove the slab dominates the measurement.
	if len(r.Recon) != 1 || r.Recon[0].MeasuredBytes < slabSize*9/10 {
		t.Fatalf("measured delta %d should cover the %d-byte slab", r.Recon[0].MeasuredBytes, slabSize)
	}

	// Same allocation, no model: the census must call it out loudly.
	c2 := NewCensus(nil)
	c2.Snapshot("baseline", 0)
	slab2 := make([]byte, slabSize)
	for i := range slab2 {
		slab2[i] = byte(i)
	}
	c2.Snapshot("job-end", 1)
	r2 := c2.BuildReport()
	if r2.Reconciled || len(r2.Drift) != 1 {
		t.Fatalf("unmodeled slab must drift: %+v", r2.Recon)
	}
	if r2.Drift[0].DriftBytes < slabSize*9/10 {
		t.Fatalf("drift %d should cover the unmodeled %d-byte slab", r2.Drift[0].DriftBytes, slabSize)
	}
	runtime.KeepAlive(slab)
	runtime.KeepAlive(slab2)
}

type reporterFunc func() []FootprintItem

func (f reporterFunc) Footprint() []FootprintItem { return f() }

// TestCensusGaugeMirrors checks that snapshots cut engine.* gauge levels as
// deltas: the folded series must end at the last recorded level.
func TestCensusGaugeMirrors(t *testing.T) {
	gs := NewGaugeSet()
	c := NewCensus(gs)
	c.Register(fakeReporter{{Subsystem: "ib", Category: "qps", Bytes: 4096, Objects: 4}})
	c.Snapshot("baseline", 0)
	c.Snapshot("job-end", 100_000)
	var sawHeap, sawSub bool
	for _, sr := range gs.Series(0) {
		switch sr.Name {
		case "engine.heap_bytes":
			sawHeap = true
			if sr.Inst != InstJob || sr.Final <= 0 {
				t.Fatalf("engine.heap_bytes series malformed: %+v", sr)
			}
		case "engine.bytes.ib":
			sawSub = true
			if sr.Final != 4096 {
				t.Fatalf("engine.bytes.ib final = %d, want 4096", sr.Final)
			}
		}
	}
	if !sawHeap || !sawSub {
		t.Fatalf("missing engine.* series (heap=%v sub=%v)", sawHeap, sawSub)
	}
}

func TestPlaneSelfFootprint(t *testing.T) {
	pl := NewPlane(2, Config{Events: true, Metrics: true, Gauges: true, Incidents: true, Footprint: true})
	pe := pl.PE(0)
	pe.Emit(1, LayerGasnet, "x", 1, 0)
	pe.Observe("h", 5)
	pe.Count("c", 1)
	pl.Gauges().Gauge("g", 0).Add(1, 1)
	pl.Ledger().Open("net", "drop", 0, InstJob, 1)
	items := pl.Footprint()
	byCat := map[string]FootprintItem{}
	for _, it := range items {
		if it.Subsystem != "obs" {
			t.Fatalf("plane footprint attributed outside obs: %+v", it)
		}
		byCat[it.Category] = it
	}
	for _, cat := range []string{"event-rings", "histograms", "counters", "gauge-logs", "incidents"} {
		if byCat[cat].Bytes <= 0 || byCat[cat].Objects <= 0 {
			t.Fatalf("category %s empty: %+v", cat, byCat[cat])
		}
	}
	if pl.Census() == nil {
		t.Fatal("Footprint config did not create a census")
	}
}
