package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Connection-lifecycle timelines: a per-pair reduction of the conduit's
// conn-* trace events into the full state machine each directed pair walked
// (demand -> REQ served -> ready -> evicted -> reconnected ...), with
// virtual timestamps and attempt counts. The reducer consumes the ordinary
// event stream, so it needs no extra recording hooks and inherits the
// stream's determinism: at a fixed seed two runs produce byte-identical
// rendered timelines.

// TimelinePoint is one state transition of a directed pair.
type TimelinePoint struct {
	VT    int64  `json:"vt_ns"`
	State string `json:"state"` // conn-* kind without the "conn-" prefix
}

// ConnTimeline is the lifecycle of the directed pair (Rank -> Peer) as rank
// Rank observed it.
type ConnTimeline struct {
	Rank        int             `json:"rank"`
	Peer        int             `json:"peer"`
	States      []TimelinePoint `json:"states"`
	Attempts    int             `json:"attempts"`    // initiates + retransmits
	Established int             `json:"established"` // times the pair reached ready
	Evictions   int             `json:"evictions"`
	Reconnects  int             `json:"reconnects"` // re-establishments after the first
}

// connTimelineState reports whether an event is a lifecycle transition the
// timeline keeps (gasnet-layer conn-* instants with a real peer).
func connTimelineState(e *Event) bool {
	return e.Layer == LayerGasnet && e.Dur == 0 && e.Peer >= 0 &&
		strings.HasPrefix(e.Kind, "conn-")
}

// BuildConnTimelines reduces an event stream (any order) to per-pair
// lifecycle timelines, sorted by (Rank, Peer); each timeline's states are
// sorted by (VT, state).
func BuildConnTimelines(evs []Event) []ConnTimeline {
	byPair := make(map[[2]int]*ConnTimeline)
	for i := range evs {
		e := &evs[i]
		if !connTimelineState(e) {
			continue
		}
		key := [2]int{e.Rank, e.Peer}
		tl := byPair[key]
		if tl == nil {
			tl = &ConnTimeline{Rank: e.Rank, Peer: e.Peer}
			byPair[key] = tl
		}
		state := strings.TrimPrefix(e.Kind, "conn-")
		tl.States = append(tl.States, TimelinePoint{VT: e.VT, State: state})
		switch e.Kind {
		case "conn-initiate", "conn-retransmit":
			tl.Attempts++
		case "conn-ready-client", "conn-ready-server":
			tl.Established++
		case "conn-evict":
			tl.Evictions++
		}
	}
	out := make([]ConnTimeline, 0, len(byPair))
	for _, tl := range byPair {
		sort.SliceStable(tl.States, func(i, j int) bool {
			a, b := tl.States[i], tl.States[j]
			if a.VT != b.VT {
				return a.VT < b.VT
			}
			return a.State < b.State
		})
		if tl.Established > 1 {
			tl.Reconnects = tl.Established - 1
		}
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// WriteTimelines renders timelines as stable text, one line per pair:
//
//	0->3  attempts=1 est=2 evict=1 recon=1 | initiate@2000 ready-client@5250 ...
//
// The rendering is a pure function of the timelines, so byte-comparing two
// renders compares the underlying lifecycle histories.
func WriteTimelines(w io.Writer, tls []ConnTimeline) {
	for i := range tls {
		tl := &tls[i]
		fmt.Fprintf(w, "%d->%d attempts=%d est=%d evict=%d recon=%d |",
			tl.Rank, tl.Peer, tl.Attempts, tl.Established, tl.Evictions, tl.Reconnects)
		for _, s := range tl.States {
			fmt.Fprintf(w, " %s@%d", s.State, s.VT)
		}
		fmt.Fprintln(w)
	}
}

// connSpan is one synthesized Perfetto slice for a pair's lifecycle.
type connSpan struct {
	kind     string
	from, to int64
}

// synthConnSpans derives nested Perfetto slices from one pair's timeline:
// an outer "conn-episode" covering demand through eviction, containing a
// "conn-handshake" slice (demand -> ready) and a "conn-live" slice (ready ->
// eviction). Episodes without an eviction get a handshake slice only (the
// connection was still live at job end, and open-ended slices would tie the
// render to the trace horizon).
func synthConnSpans(tl *ConnTimeline) []connSpan {
	var out []connSpan
	var demand, ready int64 = -1, -1
	for _, s := range tl.States {
		switch s.State {
		case "initiate", "req-served", "reconnect-req":
			if demand < 0 {
				demand = s.VT
			}
		case "ready-client", "ready-server":
			if demand >= 0 && ready < 0 {
				ready = s.VT
				out = append(out, connSpan{"conn-handshake", demand, s.VT})
			}
		case "evict", "link-fault":
			if demand >= 0 && ready >= 0 {
				out = append(out, connSpan{"conn-live", ready, s.VT})
				out = append(out, connSpan{"conn-episode", demand, s.VT})
			}
			demand, ready = -1, -1
		}
	}
	return out
}
