package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds the job's typed metrics. Counters and histograms are
// registered once by name (first use creates them) and shared by all PEs,
// so aggregation is free: the registry IS the aggregate.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Hist
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Safe on a nil registry (returns nil, whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Hist returns the histogram registered under name, creating it if needed.
// Safe on a nil registry (returns nil, whose methods no-op).
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{name: name}
		r.hists[name] = h
	}
	return h
}

// CounterSnapshot is a point-in-time counter reading.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Counters returns all counters sorted by name.
func (r *Registry) Counters() []CounterSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterSnapshot, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistSnapshot is a point-in-time histogram summary. Quantiles are
// bucket-midpoint estimates (≈6% relative resolution); Max is exact.
type HistSnapshot struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
}

// Hists returns summaries of all histograms sorted by name.
func (r *Registry) Hists() []HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hs := make([]*Hist, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make([]HistSnapshot, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter is a monotonic (or at least additive) metric. All methods are
// safe on a nil receiver and for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Hist is an HDR-style histogram over non-negative int64 values
// (virtual nanoseconds, typically). Values 0..15 land in exact buckets;
// larger values use log2 majors split into 16 sub-buckets, giving ~6%
// relative resolution across the full range with a fixed 976-slot array
// and lock-free recording. All methods are nil-receiver safe.
type Hist struct {
	name    string
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

const (
	histSubBits = 4 // 16 sub-buckets per power of two
	histSub     = 1 << histSubBits
	// 16 exact small-value buckets + (63-4) majors × 16 sub-buckets.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	e := bits.Len64(u) - 1 // 2^e <= u < 2^(e+1), e >= 4
	sub := (u >> (uint(e) - histSubBits)) & (histSub - 1)
	return histSub + (e-histSubBits)*histSub + int(sub)
}

// histMid returns a representative (midpoint) value for a bucket index.
func histMid(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	idx -= histSub
	e := idx/histSub + histSubBits
	sub := idx % histSub
	lo := (int64(1) << uint(e)) + int64(sub)<<(uint(e)-histSubBits)
	width := int64(1) << (uint(e) - histSubBits)
	return lo + width/2
}

// Record adds one observation.
func (h *Hist) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1). The estimate is the
// midpoint of the bucket containing the q-th observation; the top quantile
// is clamped to the exact max.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			v := histMid(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// Snapshot summarizes the histogram.
func (h *Hist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	return HistSnapshot{
		Name:  h.name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.max.Load(),
	}
}
