// Package graph500 reproduces the hybrid MPI+OpenSHMEM Graph500 BFS of Jose
// et al. ("Designing Scalable Graph500 Benchmark with Hybrid MPI+OpenSHMEM
// Programming Models", ISC 2013), the application the paper's Figure 8(b)
// evaluates: Kronecker (R-MAT) graph generation, a level-synchronized BFS
// whose vertex discoveries are pushed with one-sided OpenSHMEM atomics and
// puts, and MPI collectives for level termination — both models running
// over the unified runtime's single connection pool.
//
// The paper's experiment uses a graph of 2^10 vertices and 2^14 edges
// (scale 10, edge factor 16); Params mirrors that.
package graph500

import (
	"math/rand"

	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
)

// Params configures a run.
type Params struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is edges per vertex (Graph500 default 16).
	EdgeFactor int
	// Roots is the number of BFS roots to run (Graph500 uses 64; scaled
	// down by default).
	Roots int
	// Seed makes generation deterministic.
	Seed int64
	// ComputeScale multiplies the virtual compute charge for generation,
	// traversal and validation (see EXPERIMENTS.md).
	ComputeScale float64
}

// DefaultParams matches the paper's Figure 8(b) graph (2^10 vertices,
// 2^14 edges). The compute scale models the full benchmark's generation and
// validation cost, which dominates total execution time in the paper's runs
// — that is why Figure 8(b) sees <2% difference between connection modes.
func DefaultParams() Params {
	return Params{Scale: 10, EdgeFactor: 16, Roots: 4, Seed: 20150525, ComputeScale: 8e6}
}

// Result summarizes a run.
type Result struct {
	NVertices      int64
	NEdges         int64
	TraversedSum   int64 // total edges traversed over all roots
	ReachedSum     int64 // total vertices reached over all roots
	ValidationOK   bool
	ParentChecksum int64 // deterministic over roots and owned vertices
}

// Run executes generation, BFS and validation on one PE of a hybrid job.
func Run(c *shmem.Ctx, m *mpi.Comm, p Params) Result {
	n := int64(1) << p.Scale
	nEdges := n * int64(p.EdgeFactor)
	np := int64(c.NPEs())
	me := int64(c.Me())

	// --- Generation: every PE generates its slice of the Kronecker edge
	// list, then routes edges to their endpoint owners with MPI Alltoallv
	// (the "MPI part" of the hybrid generator). Vertex v is owned by PE
	// v % np; each undirected edge is delivered to both endpoints' owners.
	perPE := nEdges / np
	lo := me * perPE
	hi := lo + perPE
	if me == np-1 {
		hi = nEdges
	}
	rng := rand.New(rand.NewSource(p.Seed))
	type edge struct{ u, v int64 }
	outb := make([][]int64, np)
	// R-MAT parameters (A,B,C) = (0.57, 0.19, 0.19).
	for i := int64(0); i < nEdges; i++ {
		var u, v int64
		for b := p.Scale - 1; b >= 0; b-- {
			r := rng.Float64()
			switch {
			case r < 0.57:
			case r < 0.76:
				v |= 1 << b
			case r < 0.95:
				u |= 1 << b
			default:
				u |= 1 << b
				v |= 1 << b
			}
		}
		// Every PE runs the full generator stream for determinism but keeps
		// only its slice (cheap at these scales and avoids RNG jumping).
		if i < lo || i >= hi || u == v {
			continue
		}
		outb[u%np] = append(outb[u%np], u, v)
		if v%np != u%np {
			outb[v%np] = append(outb[v%np], u, v)
		}
	}
	scale := p.ComputeScale
	if scale <= 0 {
		scale = 1
	}
	c.Compute(float64(nEdges) * 12 * scale / float64(np)) // generation share
	bufs := make([][]byte, np)
	for r := range bufs {
		bufs[r] = int64sToBytes(outb[r])
	}
	recv := m.Alltoallv(bufs)

	// Build the local CSR over owned vertices.
	nLocal := int((n + np - 1 - me) / np) // owned vertices: me, me+np, ...
	localIdx := func(v int64) int { return int(v / np) }
	deg := make([]int, nLocal)
	var edges []edge
	for _, b := range recv {
		vals := bytesToInt64s(b)
		for i := 0; i+1 < len(vals); i += 2 {
			u, v := vals[i], vals[i+1]
			if u%np == me {
				deg[localIdx(u)]++
				edges = append(edges, edge{u, v})
			}
			if v%np == me {
				deg[localIdx(v)]++
				edges = append(edges, edge{v, u})
			}
		}
	}
	adjOff := make([]int, nLocal+1)
	for i, d := range deg {
		adjOff[i+1] = adjOff[i] + d
	}
	adj := make([]int64, adjOff[nLocal])
	fill := make([]int, nLocal)
	for _, e := range edges {
		li := localIdx(e.u)
		adj[adjOff[li]+fill[li]] = e.v
		fill[li]++
	}

	// --- Symmetric BFS state. Slots are per owned vertex, indexed by v/np,
	// sized for the largest owner so the layout stays symmetric.
	maxLocal := int((n + np - 1) / np)
	parent := c.Malloc(8 * maxLocal)
	level := c.Malloc(8 * maxLocal)
	nextQ := c.Malloc(8 * maxLocal) // overflow-safe: a vertex enqueues once
	nextCnt := c.Malloc(8)

	res := Result{NVertices: n, NEdges: int64(adjOff[nLocal])}
	for root := 0; root < p.Roots; root++ {
		rootV := int64((root*7919 + 13) % int(n))
		for i := 0; i < maxLocal; i++ {
			c.StoreInt64(parent, i, -1)
			c.StoreInt64(level, i, -1)
		}
		c.StoreInt64(nextCnt, 0, 0)
		c.BarrierAll()

		var frontier []int64
		if rootV%np == me {
			c.StoreInt64(parent, localIdx(rootV), rootV)
			c.StoreInt64(level, localIdx(rootV), 0)
			frontier = append(frontier, rootV)
		}
		depth := int64(0)
		traversed := int64(0)
		reached := int64(1)
		for {
			// Expand: push discoveries into owners' symmetric state with
			// one-sided compare-and-swap; winners are appended to the
			// owner's next-frontier queue via fetch-add + put.
			for _, v := range frontier {
				li := localIdx(v)
				for _, u := range adj[adjOff[li]:adjOff[li+1]] {
					traversed++
					owner := int(u % np)
					slot := shmem.SymAddr(8 * (u / np))
					if c.CompareSwapInt64(parent+slot, -1, v, owner) == -1 {
						c.P64(level+slot, depth+1, owner)
						pos := c.FetchAddInt64(nextCnt, 1, owner)
						c.P64(nextQ+shmem.SymAddr(8*pos), u, owner)
					}
				}
			}
			c.Compute(float64(len(frontier)) * 8 * scale) // traversal share
			c.Quiet()
			m.Barrier() // level synchronization (MPI side of the hybrid)
			// Harvest my next frontier.
			cnt := c.LoadInt64(nextCnt, 0)
			frontier = frontier[:0]
			for i := int64(0); i < cnt; i++ {
				frontier = append(frontier, c.LoadInt64(nextQ, int(i)))
			}
			c.StoreInt64(nextCnt, 0, 0)
			m.Barrier() // counters reset before anyone pushes again
			// Terminate when no PE discovered anything this level.
			tot := m.AllreduceInt64(mpi.OpSum, []int64{int64(len(frontier))})[0]
			if tot == 0 {
				break
			}
			reached += tot
			depth++
		}
		res.TraversedSum += m.AllreduceInt64(mpi.OpSum, []int64{traversed})[0]
		res.ReachedSum += reached // already global: accumulated from allreduces

		c.Compute(float64(nLocal) * 30 * scale) // validation share
		ok := validate(c, m, p, rootV, nLocal, localIdx, adjOff, adj, parent, level)
		if root == 0 {
			res.ValidationOK = ok
		} else {
			res.ValidationOK = res.ValidationOK && ok
		}
		sum := int64(0)
		for i := 0; i < nLocal; i++ {
			sum += c.LoadInt64(parent, i) * int64(i+1)
		}
		res.ParentChecksum += m.AllreduceInt64(mpi.OpSum, []int64{sum})[0]
	}
	c.BarrierAll()
	return res
}

// validate performs the Graph500-style BFS tree checks:
//  1. the root is its own parent at level 0;
//  2. every reached vertex has a parent whose level is exactly one less;
//  3. every local edge connects vertices whose levels differ by at most 1;
//  4. parent(v) is reachable (level >= 0) whenever v is reached.
func validate(c *shmem.Ctx, m *mpi.Comm, p Params, root int64,
	nLocal int, localIdx func(int64) int, adjOff []int, adj []int64,
	parent, level shmem.SymAddr) bool {

	np := int64(c.NPEs())
	me := int64(c.Me())
	okLocal := int64(1)

	getLevel := func(v int64) int64 {
		owner := int(v % np)
		if owner == int(me) {
			return c.LoadInt64(level, localIdx(v))
		}
		return c.G64(level+shmem.SymAddr(8*(v/np)), owner)
	}

	for i := 0; i < nLocal; i++ {
		v := me + int64(i)*np
		pv := c.LoadInt64(parent, i)
		lv := c.LoadInt64(level, i)
		if pv == -1 {
			if lv != -1 {
				okLocal = 0
			}
			continue
		}
		if v == root {
			if pv != root || lv != 0 {
				okLocal = 0
			}
			continue
		}
		if lv <= 0 {
			okLocal = 0
			continue
		}
		if getLevel(pv) != lv-1 {
			okLocal = 0
		}
		// Edge-span check over the local adjacency.
		for _, u := range adj[adjOff[i]:adjOff[i+1]] {
			lu := getLevel(u)
			if lu >= 0 && lv >= 0 {
				d := lu - lv
				if d < -1 || d > 1 {
					okLocal = 0
				}
			}
			if lu < 0 && lv >= 0 {
				okLocal = 0 // reached vertex with unreached neighbour
			}
		}
	}
	return m.AllreduceInt64(mpi.OpLAnd, []int64{okLocal})[0] == 1
}

func int64sToBytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		le64put(b[8*i:], uint64(x))
	}
	return b
}

func bytesToInt64s(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(le64(b[8*i:]))
	}
	return v
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
