package graph500_test

import (
	"testing"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
)

func runBFS(t *testing.T, np int, mode gasnet.Mode, p graph500.Params) []graph500.Result {
	t.Helper()
	out := make([]graph500.Result, np)
	_, err := cluster.Run(cluster.Config{NP: np, PPN: 4, Mode: mode, SkipLaunchCost: true,
		HeapSize: 1 << 20},
		func(c *shmem.Ctx) {
			m := mpi.New(c.Conduit())
			out[c.Me()] = graph500.Run(c, m, p)
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func smallParams() graph500.Params {
	return graph500.Params{Scale: 7, EdgeFactor: 8, Roots: 2, Seed: 99}
}

func TestBFSValidates(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8} {
		np := np
		out := runBFS(t, np, gasnet.OnDemand, smallParams())
		for r := 0; r < np; r++ {
			if !out[r].ValidationOK {
				t.Fatalf("np=%d rank %d: BFS tree failed validation", np, r)
			}
		}
		if out[0].ReachedSum < int64(out[0].NVertices)/4 {
			t.Fatalf("np=%d: suspiciously few vertices reached: %d of %d per root avg",
				np, out[0].ReachedSum, out[0].NVertices)
		}
	}
}

func TestBFSDeterministicAcrossNPAndModes(t *testing.T) {
	p := smallParams()
	ref := runBFS(t, 1, gasnet.OnDemand, p)[0]
	for _, np := range []int{2, 4} {
		for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
			out := runBFS(t, np, mode, p)
			if out[0].ReachedSum != ref.ReachedSum {
				t.Fatalf("np=%d mode=%v: reached %d, want %d", np, mode, out[0].ReachedSum, ref.ReachedSum)
			}
			// The parent checksum depends on races between equal-depth
			// discoverers, so only the reach/level structure is compared.
			// The traversed-edge count is level-structure determined.
			if out[0].TraversedSum != ref.TraversedSum {
				t.Fatalf("np=%d: traversed %d, want %d", np, out[0].TraversedSum, ref.TraversedSum)
			}
			if !out[0].ValidationOK {
				t.Fatalf("np=%d mode=%v: validation failed", np, mode)
			}
		}
	}
}

func TestBFSHybridModesAgreeOnTraversal(t *testing.T) {
	p := smallParams()
	a := runBFS(t, 4, gasnet.Static, p)[0]
	b := runBFS(t, 4, gasnet.OnDemand, p)[0]
	if a.ReachedSum != b.ReachedSum {
		t.Fatalf("static reached %d, on-demand %d", a.ReachedSum, b.ReachedSum)
	}
	if !a.ValidationOK || !b.ValidationOK {
		t.Fatal("validation failed")
	}
}
