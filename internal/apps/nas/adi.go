package nas

import (
	"math"

	"goshmem/internal/shmem"
)

// BT and SP share the NPB multi-partition structure: a square number of
// processes P = q*q arranged in a q x q grid; the 3-D domain is cut into
// q x q x q cells and process (r, s) owns the q diagonal cells
// (ci, cj, ck) = ((r+k) mod q, (s+k) mod q, k). Alternating-direction
// sweeps then pass each cell's boundary face to the next cell in the sweep
// direction, which the diagonal layout places on a *different* process:
//
//	x-sweep forward:  (r+1, s)      backward: (r-1, s)
//	y-sweep forward:  (r, s+1)      backward: (r, s-1)
//	z-sweep forward:  (r-1, s-1)    backward: (r+1, s+1)
//
// so each process exchanges with six distinct wrap-around neighbours, plus
// the synchronization collectives — reproducing the ~12 communicating peers
// the paper's Table I reports for BT and SP at 256 processes.
//
// The per-cell computation is a line relaxation (Thomas tridiagonal solves
// along the sweep direction), heavier and with larger faces for BT than SP,
// mirroring the benchmarks' relative costs.

// ADIParams configures a multi-partition kernel.
type ADIParams struct {
	// CellN is the points per cell edge.
	CellN int
	// Iters is the number of ADI time steps.
	Iters int
	// Components scales the face payload (BT couples 5 solution components,
	// SP 3).
	Components int
	// InnerSweeps scales the per-cell computation (BT > SP).
	InnerSweeps int
	// ComputeScale multiplies the virtual compute charge (see EXPERIMENTS.md).
	ComputeScale float64
}

// BTParamsFor returns scaled BT parameters.
func BTParamsFor(class Class) ADIParams {
	switch class {
	case ClassS:
		return ADIParams{CellN: 6, Iters: 2, Components: 5, InnerSweeps: 3, ComputeScale: 1}
	case ClassA:
		return ADIParams{CellN: 8, Iters: 4, Components: 5, InnerSweeps: 3, ComputeScale: 1}
	default: // ClassB (models the 102^3, 200-step problem)
		return ADIParams{CellN: 10, Iters: 6, Components: 5, InnerSweeps: 3, ComputeScale: 1.2}
	}
}

// SPParamsFor returns scaled SP parameters.
func SPParamsFor(class Class) ADIParams {
	switch class {
	case ClassS:
		return ADIParams{CellN: 6, Iters: 3, Components: 3, InnerSweeps: 2, ComputeScale: 1}
	case ClassA:
		return ADIParams{CellN: 8, Iters: 6, Components: 3, InnerSweeps: 2, ComputeScale: 1.5}
	default: // ClassB
		return ADIParams{CellN: 10, Iters: 9, Components: 3, InnerSweeps: 2, ComputeScale: 2.2}
	}
}

// BT runs the block-tridiagonal multi-partition kernel.
func BT(c *shmem.Ctx, class Class) Result { return adi(c, BTParamsFor(class)) }

// SP runs the scalar-pentadiagonal multi-partition kernel.
func SP(c *shmem.Ctx, class Class) Result { return adi(c, SPParamsFor(class)) }

// cell holds one multi-partition cell's state: Components fields of CellN^3.
type cell struct {
	n int
	u [][]float64 // [component][n*n*n]
}

func adi(c *shmem.Ctx, p ADIParams) Result {
	nprocs := c.NPEs()
	q := int(math.Round(math.Sqrt(float64(nprocs))))
	if q*q != nprocs {
		panic("nas: BT/SP require a square number of processes")
	}
	r, s := c.Me()/q, c.Me()%q
	rankOf := func(rr, ss int) int { return ((rr%q)+q)%q*q + ((ss%q)+q)%q }

	// Sweep successor/predecessor processes per direction.
	succ := [3]int{rankOf(r+1, s), rankOf(r, s+1), rankOf(r-1, s-1)}
	pred := [3]int{rankOf(r-1, s), rankOf(r, s-1), rankOf(r+1, s+1)}

	cn := p.CellN
	cells := make([]*cell, q)
	for k := range cells {
		cl := &cell{n: cn, u: make([][]float64, p.Components)}
		ci, cj := (r+k)%q, (s+k)%q
		for comp := range cl.u {
			cl.u[comp] = make([]float64, cn*cn*cn)
			for i := range cl.u[comp] {
				// Deterministic initial state from global cell coordinates.
				h := uint64(ci)*73856093 ^ uint64(cj)*19349663 ^ uint64(k)*83492791 ^
					uint64(comp)*2654435761 ^ uint64(i)*2246822519
				cl.u[comp][i] = float64(h%2000)/1000 - 1
			}
		}
		cells[k] = cl
	}

	faceVals := cn * cn * p.Components
	// Inbound face buffers: [direction][cell][faceVals], single-buffered —
	// iterations are separated by a barrier, and within an iteration each
	// slot is written exactly once per phase (forward uses phase 0,
	// backward phase 1).
	inbox := c.Malloc(3 * 2 * q * faceVals * 8)
	flags := newFlagSync(c, 3*2*q)
	stamp := int64(0)

	idx3 := func(a, b, d int) int { return (d*cn+b)*cn + a }

	packFace := func(cl *cell, dir int, last bool) []float64 {
		out := make([]float64, faceVals)
		pos := 0
		layer := 0
		if last {
			layer = cn - 1
		}
		for comp := 0; comp < p.Components; comp++ {
			for b := 0; b < cn; b++ {
				for a := 0; a < cn; a++ {
					switch dir {
					case 0:
						out[pos] = cl.u[comp][idx3(layer, a, b)]
					case 1:
						out[pos] = cl.u[comp][idx3(a, layer, b)]
					default:
						out[pos] = cl.u[comp][idx3(a, b, layer)]
					}
					pos++
				}
			}
		}
		return out
	}

	applyFace := func(cl *cell, dir int, first bool, face []float64) {
		pos := 0
		layer := cn - 1
		if first {
			layer = 0
		}
		for comp := 0; comp < p.Components; comp++ {
			for b := 0; b < cn; b++ {
				for a := 0; a < cn; a++ {
					var i int
					switch dir {
					case 0:
						i = idx3(layer, a, b)
					case 1:
						i = idx3(a, layer, b)
					default:
						i = idx3(a, b, layer)
					}
					cl.u[comp][i] = 0.5*cl.u[comp][i] + 0.5*face[pos]
					pos++
				}
			}
		}
	}

	scale := p.ComputeScale
	if scale <= 0 {
		scale = 1
	}

	// lineRelax performs Thomas tridiagonal solves along dir for every line
	// of every component — the cell computation.
	lineRelax := func(cl *cell) {
		c.Compute(float64(p.InnerSweeps*p.Components*cn*cn*cn) * 8 * scale)
		lower, diag, upper := -1.0, 4.0, -1.0
		cp := make([]float64, cn)
		dp := make([]float64, cn)
		for sweep := 0; sweep < p.InnerSweeps; sweep++ {
			for comp := 0; comp < p.Components; comp++ {
				u := cl.u[comp]
				for b := 0; b < cn; b++ {
					for d := 0; d < cn; d++ {
						// Solve along the a-axis for line (b, d).
						cp[0] = upper / diag
						dp[0] = u[idx3(0, b, d)] / diag
						for a := 1; a < cn; a++ {
							m := diag - lower*cp[a-1]
							cp[a] = upper / m
							dp[a] = (u[idx3(a, b, d)] - lower*dp[a-1]) / m
						}
						u[idx3(cn-1, b, d)] = dp[cn-1]
						for a := cn - 2; a >= 0; a-- {
							u[idx3(a, b, d)] = dp[a] - cp[a]*u[idx3(a+1, b, d)]
						}
					}
				}
			}
		}
	}

	slotOf := func(dir, phase, k int) int { return (dir*2+phase)*q + k }

	for iter := 0; iter < p.Iters; iter++ {
		for dir := 0; dir < 3; dir++ {
			// Forward sweep: compute cells in order, passing trailing faces
			// to the successor process's matching cell slot.
			stamp++
			for k := 0; k < q; k++ {
				cl := cells[k]
				// Cells beyond the first await the predecessor's face.
				ci := cellCoord(r, s, k, dir, q)
				if ci > 0 {
					slot := slotOf(dir, 0, k)
					flags.await(slot, stamp)
					off := shmem.SymAddr(slot * faceVals * 8)
					applyFace(cl, dir, true, c.LocalFloat64(inbox+off, faceVals))
				}
				lineRelax(cl)
				if ci < q-1 {
					face := packFace(cl, dir, true)
					// The receiving cell at the successor shares my diagonal
					// index for x/y sweeps; the z sweep advances the index.
					recvK := k
					if dir == 2 {
						recvK = k + 1
					}
					slot := slotOf(dir, 0, recvK)
					off := shmem.SymAddr(slot * faceVals * 8)
					c.PutFloat64(inbox+off, face, succ[dir])
					flags.raise(slot, succ[dir], stamp)
				}
			}
			// Backward substitution sweep.
			stamp++
			for k := q - 1; k >= 0; k-- {
				cl := cells[k]
				ci := cellCoord(r, s, k, dir, q)
				if ci < q-1 {
					slot := slotOf(dir, 1, k)
					flags.await(slot, stamp)
					off := shmem.SymAddr(slot * faceVals * 8)
					applyFace(cl, dir, false, c.LocalFloat64(inbox+off, faceVals))
				}
				lineRelax(cl)
				if ci > 0 {
					face := packFace(cl, dir, false)
					recvK := k
					if dir == 2 {
						recvK = k - 1
					}
					slot := slotOf(dir, 1, recvK)
					off := shmem.SymAddr(slot * faceVals * 8)
					c.PutFloat64(inbox+off, face, pred[dir])
					flags.raise(slot, pred[dir], stamp)
				}
			}
		}
		c.BarrierAll() // time-step boundary (also makes slot reuse safe)
	}

	// Deterministic checksum via the reduction tree (fixed combine order).
	local := 0.0
	for _, cl := range cells {
		for _, u := range cl.u {
			for _, v := range u {
				local += v
			}
		}
	}
	sum := c.ReduceFloat64(shmem.OpSum, []float64{local})[0]
	return Result{Checksum: sum, Iterations: p.Iters}
}

// cellCoord returns cell k's coordinate along the sweep direction for
// process (r, s) in the diagonal multi-partition layout.
func cellCoord(r, s, k, dir, q int) int {
	switch dir {
	case 0:
		return (r + k) % q
	case 1:
		return (s + k) % q
	default:
		return k
	}
}
