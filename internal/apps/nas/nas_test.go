package nas_test

import (
	"math"
	"testing"

	"goshmem/internal/apps/nas"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func runKernel(t *testing.T, np, ppn int, mode gasnet.Mode, k func(c *shmem.Ctx) nas.Result) (*cluster.Result, []nas.Result) {
	t.Helper()
	out := make([]nas.Result, np)
	res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: mode, SkipLaunchCost: true},
		func(c *shmem.Ctx) { out[c.Me()] = k(c) })
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

func TestEPDeterministicAcrossNP(t *testing.T) {
	ep := func(c *shmem.Ctx) nas.Result { return nas.EP(c, nas.EPParamsFor(nas.ClassS)) }
	var ref float64
	for i, np := range []int{1, 2, 4, 8} {
		_, out := runKernel(t, np, 4, gasnet.OnDemand, ep)
		for r := 1; r < np; r++ {
			if out[r].Checksum != out[0].Checksum {
				t.Fatalf("np=%d: PEs disagree on checksum", np)
			}
		}
		if i == 0 {
			ref = out[0].Checksum
		} else if math.Abs(out[0].Checksum-ref) > 1e-9 {
			t.Fatalf("np=%d: checksum %.12g differs from serial %.12g", np, out[0].Checksum, ref)
		}
	}
}

func TestEPStaticEqualsOnDemand(t *testing.T) {
	ep := func(c *shmem.Ctx) nas.Result { return nas.EP(c, nas.EPParamsFor(nas.ClassS)) }
	_, a := runKernel(t, 4, 2, gasnet.Static, ep)
	_, b := runKernel(t, 4, 2, gasnet.OnDemand, ep)
	if a[0].Checksum != b[0].Checksum {
		t.Fatalf("static %v != on-demand %v", a[0].Checksum, b[0].Checksum)
	}
}

func TestEPSparseCommunication(t *testing.T) {
	ep := func(c *shmem.Ctx) nas.Result { return nas.EP(c, nas.EPParamsFor(nas.ClassS)) }
	res, _ := runKernel(t, 16, 8, gasnet.OnDemand, ep)
	// EP communicates only through the final reductions; far fewer peers
	// than the 15 an all-to-all would need.
	if avg := res.AvgPeers(); avg > 8 {
		t.Fatalf("EP avg peers = %.1f, want sparse", avg)
	}
	if res.AvgEndpoints() >= 16 {
		t.Fatalf("EP endpoints %.1f should be far below NP", res.AvgEndpoints())
	}
}

func TestMGRunsAndConverges(t *testing.T) {
	p := nas.MGParamsFor(nas.ClassS)
	mg := func(c *shmem.Ctx) nas.Result { return nas.MG(c, p) }
	_, out := runKernel(t, 8, 4, gasnet.OnDemand, mg)
	for r := 1; r < len(out); r++ {
		if out[r].Checksum != out[0].Checksum {
			t.Fatal("PEs disagree on MG checksum")
		}
	}
	if out[0].Residual <= 0 || math.IsNaN(out[0].Residual) || math.IsInf(out[0].Residual, 0) {
		t.Fatalf("bad residual %v", out[0].Residual)
	}

	// More V-cycles must not increase the residual (multigrid property).
	pLong := p
	pLong.Cycles = p.Cycles * 3
	mgLong := func(c *shmem.Ctx) nas.Result { return nas.MG(c, pLong) }
	_, outLong := runKernel(t, 8, 4, gasnet.OnDemand, mgLong)
	if outLong[0].Residual > out[0].Residual {
		t.Fatalf("residual grew with cycles: %g -> %g", out[0].Residual, outLong[0].Residual)
	}
}

func TestMGStaticEqualsOnDemand(t *testing.T) {
	p := nas.MGParamsFor(nas.ClassS)
	mg := func(c *shmem.Ctx) nas.Result { return nas.MG(c, p) }
	_, a := runKernel(t, 4, 2, gasnet.Static, mg)
	_, b := runKernel(t, 4, 2, gasnet.OnDemand, mg)
	if a[0].Checksum != b[0].Checksum || a[0].Residual != b[0].Residual {
		t.Fatalf("MG modes diverge: %+v vs %+v", a[0], b[0])
	}
}

func TestBTSPDeterminismAndModes(t *testing.T) {
	for _, kernel := range []struct {
		name string
		fn   func(c *shmem.Ctx) nas.Result
	}{
		{"BT", func(c *shmem.Ctx) nas.Result { return nas.BT(c, nas.ClassS) }},
		{"SP", func(c *shmem.Ctx) nas.Result { return nas.SP(c, nas.ClassS) }},
	} {
		kernel := kernel
		t.Run(kernel.name, func(t *testing.T) {
			_, a := runKernel(t, 4, 2, gasnet.Static, kernel.fn)
			_, b := runKernel(t, 4, 2, gasnet.OnDemand, kernel.fn)
			for r := range a {
				if a[r].Checksum != a[0].Checksum || b[r].Checksum != b[0].Checksum {
					t.Fatal("PEs disagree on checksum")
				}
			}
			if a[0].Checksum != b[0].Checksum {
				t.Fatalf("static %v != on-demand %v", a[0].Checksum, b[0].Checksum)
			}
			if math.IsNaN(a[0].Checksum) || math.IsInf(a[0].Checksum, 0) {
				t.Fatalf("bad checksum %v", a[0].Checksum)
			}
		})
	}
}

func TestBTPeersBounded(t *testing.T) {
	bt := func(c *shmem.Ctx) nas.Result { return nas.BT(c, nas.ClassS) }
	res, _ := runKernel(t, 16, 8, gasnet.OnDemand, bt)
	// Multi-partition: 6 sweep neighbours + barrier partners; far below 15.
	if avg := res.AvgPeers(); avg > 12 {
		t.Fatalf("BT avg peers = %.1f, want ~6-11", avg)
	}
	if avg := res.AvgPeers(); avg < 4 {
		t.Fatalf("BT avg peers = %.1f suspiciously low", avg)
	}
}

func TestBTSPRequireSquare(t *testing.T) {
	defer func() { _ = recover() }()
	_, err := cluster.Run(cluster.Config{NP: 3, PPN: 4, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) { nas.BT(c, nas.ClassS) })
	if err == nil {
		t.Fatal("BT on non-square NP should fail")
	}
}

func TestProcGridFactorization(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128, 1024} {
		px, py, pz := nas.ProcGridForTest(n)
		if px*py*pz != n {
			t.Fatalf("procGrid(%d) = %d*%d*%d", n, px, py, pz)
		}
		if px > pz*4 || pz > px*4+4 {
			// Should be near-cubic; loose sanity bound.
			t.Logf("procGrid(%d) = (%d,%d,%d)", n, px, py, pz)
		}
	}
}
