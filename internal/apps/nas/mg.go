package nas

import (
	"math"

	"goshmem/internal/shmem"
)

// MGParams configures the multigrid kernel.
type MGParams struct {
	// LocalN is the finest-level local block edge (global grid is
	// (px*LocalN) x (py*LocalN) x (pz*LocalN) over the processor grid).
	LocalN int
	// Levels is the V-cycle depth (LocalN must be divisible by 2^(Levels-1)).
	Levels int
	// Cycles is the number of V-cycles.
	Cycles int
	// ComputeScale multiplies the virtual compute charge (see EXPERIMENTS.md).
	ComputeScale float64
}

// MGParamsFor returns scaled parameters for a class.
func MGParamsFor(class Class) MGParams {
	switch class {
	case ClassS:
		return MGParams{LocalN: 8, Levels: 2, Cycles: 2, ComputeScale: 1}
	case ClassA:
		return MGParams{LocalN: 16, Levels: 3, Cycles: 4, ComputeScale: 24}
	default: // ClassB (models the 256^3, 20-iteration problem)
		return MGParams{LocalN: 16, Levels: 3, Cycles: 8, ComputeScale: 100}
	}
}

// ProcGridForTest exposes procGrid for tests.
func ProcGridForTest(n int) (int, int, int) { return procGrid(n) }

// procGrid factors n into the most cubic (px, py, pz) with px*py*pz == n.
func procGrid(n int) (int, int, int) {
	best := [3]int{1, 1, n}
	bestScore := 1 << 62
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rem := n / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			score := (px-py)*(px-py) + (py-pz)*(py-pz) + (px-pz)*(px-pz)
			if score < bestScore {
				bestScore = score
				best = [3]int{px, py, pz}
			}
		}
	}
	return best[0], best[1], best[2]
}

// mgLevel holds one level's local block with a one-cell halo.
type mgLevel struct {
	n      int // interior edge length
	u, rhs []float64
}

func newMGLevel(n int) *mgLevel {
	s := n + 2
	return &mgLevel{n: n, u: make([]float64, s*s*s), rhs: make([]float64, s*s*s)}
}

func (l *mgLevel) idx(x, y, z int) int {
	s := l.n + 2
	return (z*s+y)*s + x
}

// MG runs the simplified 3-D multigrid kernel: Cycles V-cycles of a 7-point
// Poisson problem. Each smoothing step exchanges six face halos with the
// processor-grid neighbours over one-sided puts with flag synchronization,
// and every cycle ends with a residual allreduce — MG's Table-I communication
// signature (≈ 6 stencil peers plus the reduction tree).
func MG(c *shmem.Ctx, p MGParams) Result {
	px, py, pz := procGrid(c.NPEs())
	me := c.Me()
	mx := me % px
	my := (me / px) % py
	mz := me / (px * py)

	if p.LocalN>>(p.Levels-1) < 2 {
		panic("nas: MG LocalN too small for level count")
	}

	levels := make([]*mgLevel, p.Levels)
	for i := range levels {
		levels[i] = newMGLevel(p.LocalN >> i)
	}

	// Deterministic RHS: a few point charges scattered by global coordinates.
	fin := levels[0]
	for z := 1; z <= fin.n; z++ {
		for y := 1; y <= fin.n; y++ {
			for x := 1; x <= fin.n; x++ {
				gx := mx*fin.n + x - 1
				gy := my*fin.n + y - 1
				gz := mz*fin.n + z - 1
				h := uint64(gx)*2654435761 ^ uint64(gy)*40503 ^ uint64(gz)*97
				switch h % 997 {
				case 0:
					fin.rhs[fin.idx(x, y, z)] = 1
				case 1:
					fin.rhs[fin.idx(x, y, z)] = -1
				}
			}
		}
	}

	// Neighbour ranks per face (non-periodic).
	rankOf := func(ix, iy, iz int) int {
		if ix < 0 || ix >= px || iy < 0 || iy >= py || iz < 0 || iz >= pz {
			return -1
		}
		return (iz*py+iy)*px + ix
	}
	nbr := [6]int{
		rankOf(mx-1, my, mz), rankOf(mx+1, my, mz),
		rankOf(mx, my-1, mz), rankOf(mx, my+1, mz),
		rankOf(mx, my, mz-1), rankOf(mx, my, mz+1),
	}

	// Symmetric halo buffers: 6 directions x 2 parities, sized for the
	// finest face; plus 6 flag words.
	faceMax := fin.n * fin.n
	inbox := c.Malloc(6 * 2 * faceMax * 8)
	flags := newFlagSync(c, 6)
	step := int64(0)

	packFace := func(l *mgLevel, dir int) []float64 {
		n := l.n
		out := make([]float64, n*n)
		k := 0
		for b := 1; b <= n; b++ {
			for a := 1; a <= n; a++ {
				switch dir {
				case 0: // -x face
					out[k] = l.u[l.idx(1, a, b)]
				case 1: // +x face
					out[k] = l.u[l.idx(n, a, b)]
				case 2:
					out[k] = l.u[l.idx(a, 1, b)]
				case 3:
					out[k] = l.u[l.idx(a, n, b)]
				case 4:
					out[k] = l.u[l.idx(a, b, 1)]
				case 5:
					out[k] = l.u[l.idx(a, b, n)]
				}
				k++
			}
		}
		return out
	}

	unpackFace := func(l *mgLevel, dir int, in []float64) {
		n := l.n
		k := 0
		for b := 1; b <= n; b++ {
			for a := 1; a <= n; a++ {
				switch dir {
				case 0:
					l.u[l.idx(0, a, b)] = in[k]
				case 1:
					l.u[l.idx(n+1, a, b)] = in[k]
				case 2:
					l.u[l.idx(a, 0, b)] = in[k]
				case 3:
					l.u[l.idx(a, n+1, b)] = in[k]
				case 4:
					l.u[l.idx(a, b, 0)] = in[k]
				case 5:
					l.u[l.idx(a, b, n+1)] = in[k]
				}
				k++
			}
		}
	}

	// exchange swaps halos with the six neighbours at one level. Every PE
	// calls it the same number of times, so the monotone step stamp keeps
	// parity buffers safe (see heat2d).
	exchange := func(l *mgLevel) {
		step++
		parity := int(step % 2)
		n := l.n
		for dir := 0; dir < 6; dir++ {
			to := nbr[dir]
			if to < 0 {
				continue
			}
			face := packFace(l, dir)
			// My -x face lands in the neighbour's +x inbox slot (dir^1).
			slot := (dir ^ 1)
			off := shmem.SymAddr(((slot*2 + parity) * faceMax) * 8)
			c.PutFloat64(inbox+off, face, to)
			flags.raise(slot, to, step)
		}
		for dir := 0; dir < 6; dir++ {
			if nbr[dir] < 0 {
				continue
			}
			flags.await(dir, step)
			off := shmem.SymAddr(((dir*2 + int(step%2)) * faceMax) * 8)
			unpackFace(l, dir, c.LocalFloat64(inbox+off, n*n))
		}
	}

	scale := p.ComputeScale
	if scale <= 0 {
		scale = 1
	}
	smooth := func(l *mgLevel, sweeps int) {
		for s := 0; s < sweeps; s++ {
			exchange(l)
			n := l.n
			c.Compute(float64(n*n*n) * 10 * scale)
			for z := 1; z <= n; z++ {
				for y := 1; y <= n; y++ {
					for x := 1; x <= n; x++ {
						i := l.idx(x, y, z)
						l.u[i] += 0.8 / 6 * (l.rhs[i] -
							(6*l.u[i] - l.u[i-1] - l.u[i+1] -
								l.u[l.idx(x, y-1, z)] - l.u[l.idx(x, y+1, z)] -
								l.u[l.idx(x, y, z-1)] - l.u[l.idx(x, y, z+1)]))
					}
				}
			}
		}
	}

	residual := func(l *mgLevel) []float64 {
		exchange(l)
		n := l.n
		c.Compute(float64(n*n*n) * 9 * scale)
		r := make([]float64, len(l.u))
		for z := 1; z <= n; z++ {
			for y := 1; y <= n; y++ {
				for x := 1; x <= n; x++ {
					i := l.idx(x, y, z)
					r[i] = l.rhs[i] - (6*l.u[i] - l.u[i-1] - l.u[i+1] -
						l.u[l.idx(x, y-1, z)] - l.u[l.idx(x, y+1, z)] -
						l.u[l.idx(x, y, z-1)] - l.u[l.idx(x, y, z+1)])
				}
			}
		}
		return r
	}

	var vcycle func(lv int)
	vcycle = func(lv int) {
		l := levels[lv]
		if lv == p.Levels-1 {
			smooth(l, 4)
			return
		}
		smooth(l, 2)
		r := residual(l)
		// Restrict r to the coarser level (2^3 averaging).
		cl := levels[lv+1]
		for i := range cl.u {
			cl.u[i] = 0
		}
		for z := 1; z <= cl.n; z++ {
			for y := 1; y <= cl.n; y++ {
				for x := 1; x <= cl.n; x++ {
					sum := 0.0
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								sum += r[l.idx(2*x-1+dx, 2*y-1+dy, 2*z-1+dz)]
							}
						}
					}
					cl.rhs[cl.idx(x, y, z)] = sum / 8
				}
			}
		}
		vcycle(lv + 1)
		// Prolong the coarse correction (injection).
		for z := 1; z <= cl.n; z++ {
			for y := 1; y <= cl.n; y++ {
				for x := 1; x <= cl.n; x++ {
					cv := cl.u[cl.idx(x, y, z)]
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								l.u[l.idx(2*x-1+dx, 2*y-1+dy, 2*z-1+dz)] += cv
							}
						}
					}
				}
			}
		}
		smooth(l, 1)
	}

	var norm float64
	for cyc := 0; cyc < p.Cycles; cyc++ {
		vcycle(0)
		r := residual(fin)
		local := 0.0
		for _, v := range r {
			local += v * v
		}
		norm = math.Sqrt(c.ReduceFloat64(shmem.OpSum, []float64{local})[0])
	}

	local := 0.0
	for z := 1; z <= fin.n; z++ {
		for y := 1; y <= fin.n; y++ {
			for x := 1; x <= fin.n; x++ {
				local += fin.u[fin.idx(x, y, z)]
			}
		}
	}
	// Checksum via the reduction tree (fixed combine order, so it is
	// deterministic and identical on every PE) rather than an allgather,
	// which would add 2*log2(N) peers MG does not otherwise talk to.
	sum := c.ReduceFloat64(shmem.OpSum, []float64{local})[0]
	return Result{Checksum: sum, Residual: norm, Iterations: p.Cycles}
}
