// Package nas provides communication-faithful kernels of the NAS Parallel
// Benchmarks the paper evaluates over OpenSHMEM: BT, SP, MG and EP. The
// kernels perform real (small) numerics, but their purpose in this
// reproduction is to drive the runtime with the benchmarks' communication
// graphs, because the paper's Table I, Figure 8(a) and Figure 9 depend on
// how many distinct peers each process talks to and on how much computation
// precedes the first communication — not on Mop/s:
//
//   - EP: embarrassingly parallel random-number statistics; the only
//     communication is a handful of tree reductions at the end.
//   - MG: 3-D multigrid V-cycles on a processor grid; each smoothing step
//     exchanges six face halos, and levels add an allreduce.
//   - BT/SP: alternating-direction implicit (ADI) sweeps over the NPB
//     multi-partition decomposition (both require a square process count);
//     every sweep direction forwards cell faces to a handful of distinct
//     successor owners, giving the ~12-peer pattern of Table I.
//
// Every kernel returns a deterministic checksum so static and on-demand
// runs can be asserted bit-identical.
package nas

import (
	"goshmem/internal/shmem"
)

// Class selects a problem scale loosely following NPB classes (the absolute
// sizes are scaled down so the simulation stays laptop-friendly; the
// communication structure is unchanged).
type Class byte

// Classes S (tiny, for tests), A and B (benchmark harness defaults).
const (
	ClassS Class = 'S'
	ClassA Class = 'A'
	ClassB Class = 'B'
)

// Result is a kernel outcome.
type Result struct {
	Checksum   float64
	Residual   float64 // final residual norm, where the kernel has one
	Iterations int
}

// lcg is the NPB-style multiplicative congruential generator (a=5^13,
// m=2^46), used so EP exercises "real" pseudo-random number generation.
type lcg struct{ x uint64 }

const (
	lcgA = 1220703125      // 5^13
	lcgM = uint64(1) << 46 // modulus
	lcgD = float64(1) / (1 << 46)
)

func (g *lcg) next() float64 {
	g.x = (g.x * lcgA) % lcgM
	return float64(g.x) * lcgD
}

// seek positions the generator at the k-th value of the stream with the
// given seed, in O(log k), like NPB's randlc power algorithm.
func (g *lcg) seek(seed uint64, k int64) {
	a := uint64(lcgA)
	x := seed % lcgM
	for k > 0 {
		if k&1 == 1 {
			x = (x * a) % lcgM
		}
		a = (a * a) % lcgM
		k >>= 1
	}
	g.x = x
}

// barrierFreeSync is a put+wait flag pair used by the kernels' neighbour
// exchanges (see heat2d for the parity-safety argument).
type flagSync struct {
	c    *shmem.Ctx
	addr shmem.SymAddr // one int64 per (neighbour slot)
}

func newFlagSync(c *shmem.Ctx, slots int) flagSync {
	return flagSync{c: c, addr: c.Malloc(8 * slots)}
}

func (f flagSync) raise(slot, pe int, k int64) {
	f.c.P64(f.addr+shmem.SymAddr(8*slot), k, pe)
}

func (f flagSync) await(slot int, k int64) {
	f.c.WaitUntilInt64(f.addr+shmem.SymAddr(8*slot), shmem.CmpGE, k)
}
