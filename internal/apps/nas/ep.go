package nas

import (
	"math"

	"goshmem/internal/shmem"
)

// EPParams configures the EP kernel.
type EPParams struct {
	// LogPairs is log2 of the total number of random pairs across all PEs
	// (NPB class B uses 30; scaled down here by default).
	LogPairs int
	// ComputeScale multiplies the virtual compute charge, so scaled-down
	// runs still model full-class execution time (see EXPERIMENTS.md).
	ComputeScale float64
}

// EPParamsFor returns the scaled parameters for a class.
func EPParamsFor(class Class) EPParams {
	switch class {
	case ClassS:
		return EPParams{LogPairs: 12, ComputeScale: 1}
	case ClassA:
		return EPParams{LogPairs: 16, ComputeScale: 256}
	default: // ClassB (models NPB's 2^30 pairs)
		return EPParams{LogPairs: 18, ComputeScale: 1400}
	}
}

// EP runs the embarrassingly-parallel kernel: every PE draws its share of
// uniform pairs, applies the Marsaglia polar acceptance test, accumulates
// Gaussian sums and per-annulus counts, and the job ends with three small
// tree reductions — EP's entire communication.
func EP(c *shmem.Ctx, p EPParams) Result {
	total := int64(1) << p.LogPairs
	per := total / int64(c.NPEs())
	start := per * int64(c.Me())
	if c.Me() == c.NPEs()-1 {
		per = total - start // remainder to the last PE
	}

	var g lcg
	g.seek(271828183, 2*start) // jump to this PE's slice of the stream
	sx, sy := 0.0, 0.0
	counts := make([]int64, 10)
	for i := int64(0); i < per; i++ {
		x := 2*g.next() - 1
		y := 2*g.next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		sx += gx
		sy += gy
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l < 10 {
			counts[l]++
		}
	}

	scale := p.ComputeScale
	if scale <= 0 {
		scale = 1
	}
	c.Compute(float64(per) * 90 * scale) // ~90 flops per pair (sqrt, log)

	// The communication phase: reductions of the sums and the annulus table
	// — EP's only communication (the reductions are themselves
	// synchronizing, so no trailing barrier is needed, keeping EP's peer
	// set as sparse as the paper's Table I reports).
	sums := c.ReduceFloat64(shmem.OpSum, []float64{sx, sy})
	gcounts := c.ReduceInt64(shmem.OpSum, counts)
	nAccepted := int64(0)
	for _, v := range gcounts {
		nAccepted += v
	}
	return Result{
		Checksum:   sums[0] + sums[1]*1e-3 + float64(nAccepted)*1e-9,
		Iterations: int(per),
	}
}
