package heat2d_test

import (
	"math"
	"testing"

	"goshmem/internal/apps/heat2d"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/shmem"
)

// End-to-end failure injection: the application must compute bit-identical
// results even when the connection handshake runs over a lossy UD transport
// (drops and duplicates), exercising retransmission, duplicate suppression
// and exactly-once payload delivery under a real workload.
func TestHeat2DExactUnderUDFaults(t *testing.T) {
	p := heat2d.Params{NX: 16, NY: 24, MaxIters: 12}
	want := 0.0
	{
		var res heat2d.Result
		_, err := cluster.Run(cluster.Config{NP: 4, PPN: 2, Mode: gasnet.OnDemand, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				r := heat2d.Run(c, p)
				if c.Me() == 0 {
					res = r
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		want = res.Checksum
	}
	for _, seed := range []int64{1, 7, 42} {
		fi := ib.NewFaultInjector(seed)
		fi.DropProb = 0.35
		fi.DupProb = 0.25
		fi.MaxDrops = 60
		var res heat2d.Result
		_, err := cluster.Run(cluster.Config{NP: 4, PPN: 2, Mode: gasnet.OnDemand,
			Faults: fi, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				r := heat2d.Run(c, p)
				if c.Me() == 0 {
					res = r
				}
			})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(res.Checksum-want) > 0 {
			t.Fatalf("seed %d: checksum %v != fault-free %v", seed, res.Checksum, want)
		}
	}
}
