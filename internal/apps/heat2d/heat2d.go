// Package heat2d is the 2D-Heat kernel the paper uses (Palansuriya et al.,
// "A Domain Decomposition Based Algorithm For Non-linear 2D Inverse Heat
// Conduction Problems"): Jacobi iteration of the 2-D heat equation with a
// row-block domain decomposition. Each PE exchanges halo rows with at most
// two neighbours through one-sided puts and flag synchronization, plus an
// occasional convergence reduction — the most connection-sparse of the
// paper's applications (Table I reports ~3 communicating peers per process
// regardless of job size).
package heat2d

import (
	"math"

	"goshmem/internal/shmem"
)

// Params configures the kernel.
type Params struct {
	// NX and NY are the global grid dimensions (NY rows are distributed).
	NX, NY int
	// MaxIters bounds the Jacobi iterations.
	MaxIters int
	// CheckEvery controls how often the global residual is reduced;
	// 0 disables convergence checks.
	CheckEvery int
	// Tol stops iteration when the max |update| falls below it.
	Tol float64
	// ComputeScale multiplies the virtual compute charge, so scaled-down
	// grids still model full-size execution time (see EXPERIMENTS.md).
	ComputeScale float64
	// NoChecksum skips the final rank-ordered checksum gather. The real
	// kernel has no such allgather; resource-usage experiments (Table I,
	// Figure 9) enable this so the peer counts reflect only the solver's
	// halo exchanges and convergence reductions.
	NoChecksum bool
}

// Result reports the kernel outcome.
type Result struct {
	Iters    int
	Residual float64
	Checksum float64 // deterministic rank-ordered sum of the final grid
}

// Run executes the kernel on one PE. All PEs must call it with identical
// parameters.
func Run(c *shmem.Ctx, p Params) Result {
	n, me := c.NPEs(), c.Me()
	rows := (p.NY + n - 1) / n // owned rows per PE (last PE may own fewer)
	myFirst := me * rows
	myRows := rows
	if myFirst+myRows > p.NY {
		myRows = p.NY - myFirst
	}
	if myRows < 0 {
		myRows = 0
	}
	nx := p.NX

	// Symmetric layout (identical on every PE): only the inbound halos and
	// the arrival flags need to be remotely writable; the grid itself is
	// private to each PE.
	//   halo  : up/down inbound halo rows, double buffered by parity
	//   flags : up/down iteration stamps
	haloUp := c.Malloc(2 * nx * 8)   // [parity][nx]
	haloDown := c.Malloc(2 * nx * 8) // [parity][nx]
	flagUp := c.Malloc(8)
	flagDown := c.Malloc(8)

	// Deterministic initial condition: hot left edge, cold elsewhere, plus a
	// rank-independent interior bump so the field is interesting.
	cur := make([]float64, (rows+2)*nx)
	next := make([]float64, (rows+2)*nx)
	for r := 0; r < myRows; r++ {
		g := myFirst + r
		for x := 0; x < nx; x++ {
			v := 0.0
			if x == 0 {
				v = 100
			} else if g == 0 || g == p.NY-1 {
				v = 25
			} else {
				v = math.Sin(float64(g*nx+x)) * 0.01
			}
			cur[(r+1)*nx+x] = v
		}
	}
	copy(next, cur)

	up, down := me-1, me+1
	lastOwner := (p.NY - 1) / rows
	if down > lastOwner {
		down = -1
	}
	if me > lastOwner { // PE owns nothing (more PEs than row blocks)
		up, down = -1, -1
	}

	putRow := func(dst shmem.SymAddr, parity int, row []float64, pe int) {
		c.PutFloat64(dst+shmem.SymAddr(parity*nx*8), row, pe)
	}

	iters := 0
	residual := math.Inf(1)
	for k := 1; k <= p.MaxIters; k++ {
		parity := k % 2
		// Publish boundary rows (state after step k-1), then the stamp; the
		// reliable transport delivers them in order.
		if up >= 0 {
			putRow(haloDown, parity, cur[nx:2*nx], up) // my top row -> up's down halo
			c.P64(flagDown, int64(k), up)
		}
		if down >= 0 {
			putRow(haloUp, parity, cur[myRows*nx:(myRows+1)*nx], down)
			c.P64(flagUp, int64(k), down)
		}
		// Wait for the neighbours' stamps and load their halo rows.
		if up >= 0 {
			c.WaitUntilInt64(flagUp, shmem.CmpGE, int64(k))
			copy(cur[0:nx], c.LocalFloat64(haloUp+shmem.SymAddr(parity*nx*8), nx))
		}
		if down >= 0 {
			c.WaitUntilInt64(flagDown, shmem.CmpGE, int64(k))
			copy(cur[(myRows+1)*nx:(myRows+2)*nx], c.LocalFloat64(haloDown+shmem.SymAddr(parity*nx*8), nx))
		}

		// Jacobi sweep over owned interior points.
		scale := p.ComputeScale
		if scale <= 0 {
			scale = 1
		}
		c.Compute(float64(myRows*nx) * 6 * scale)
		localDiff := 0.0
		for r := 1; r <= myRows; r++ {
			g := myFirst + r - 1
			for x := 0; x < nx; x++ {
				idx := r*nx + x
				if x == 0 || x == nx-1 || g == 0 || g == p.NY-1 {
					next[idx] = cur[idx] // Dirichlet boundary
					continue
				}
				v := 0.25 * (cur[idx-1] + cur[idx+1] + cur[idx-nx] + cur[idx+nx])
				d := math.Abs(v - cur[idx])
				if d > localDiff {
					localDiff = d
				}
				next[idx] = v
			}
		}
		cur, next = next, cur
		iters = k

		if p.CheckEvery > 0 && k%p.CheckEvery == 0 {
			residual = c.ReduceFloat64(shmem.OpMax, []float64{localDiff})[0]
			if residual < p.Tol {
				break
			}
		} else {
			residual = localDiff
		}
	}

	if p.NoChecksum {
		// No trailing collective: the halo flags already order the last
		// iteration's puts, and the runtime's finalize barrier handles
		// teardown synchronization.
		return Result{Iters: iters, Residual: residual}
	}
	// Deterministic checksum: per-PE partial sums gathered in rank order
	// (summed in rank order so it matches a serial reference bit-exactly).
	local := 0.0
	for r := 1; r <= myRows; r++ {
		for x := 0; x < nx; x++ {
			local += cur[r*nx+x]
		}
	}
	parts := c.FCollectFloat64([]float64{local})
	sum := 0.0
	for _, v := range parts {
		sum += v
	}
	c.BarrierAll()
	return Result{Iters: iters, Residual: residual, Checksum: sum}
}
