package heat2d_test

import (
	"math"
	"testing"

	"goshmem/internal/apps/heat2d"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

// serial is a reference single-process Jacobi identical to the kernel's
// update (same boundary handling, same initial condition).
func serial(p heat2d.Params) float64 {
	nx, ny := p.NX, p.NY
	cur := make([]float64, ny*nx)
	next := make([]float64, ny*nx)
	for g := 0; g < ny; g++ {
		for x := 0; x < nx; x++ {
			v := 0.0
			if x == 0 {
				v = 100
			} else if g == 0 || g == ny-1 {
				v = 25
			} else {
				v = math.Sin(float64(g*nx+x)) * 0.01
			}
			cur[g*nx+x] = v
		}
	}
	copy(next, cur)
	for k := 1; k <= p.MaxIters; k++ {
		for g := 0; g < ny; g++ {
			for x := 0; x < nx; x++ {
				i := g*nx + x
				if x == 0 || x == nx-1 || g == 0 || g == ny-1 {
					next[i] = cur[i]
					continue
				}
				next[i] = 0.25 * (cur[i-1] + cur[i+1] + cur[i-nx] + cur[i+nx])
			}
		}
		cur, next = next, cur
	}
	sum := 0.0
	for _, v := range cur {
		sum += v
	}
	return sum
}

func TestHeat2DMatchesSerial(t *testing.T) {
	p := heat2d.Params{NX: 24, NY: 32, MaxIters: 25}
	want := serial(p)
	for _, np := range []int{1, 2, 4, 8} {
		np := np
		results := make([]heat2d.Result, np)
		_, err := cluster.Run(cluster.Config{NP: np, PPN: 4, Mode: gasnet.OnDemand, SkipLaunchCost: true},
			func(c *shmem.Ctx) { results[c.Me()] = heat2d.Run(c, p) })
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < np; r++ {
			if math.Abs(results[r].Checksum-want) > 1e-9 {
				t.Fatalf("np=%d rank %d: checksum %.12f, serial %.12f", np, r, results[r].Checksum, want)
			}
		}
	}
}

func TestHeat2DConvergenceCheck(t *testing.T) {
	p := heat2d.Params{NX: 16, NY: 16, MaxIters: 10000, CheckEvery: 20, Tol: 1e-3}
	var res heat2d.Result
	_, err := cluster.Run(cluster.Config{NP: 4, PPN: 4, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			r := heat2d.Run(c, p)
			if c.Me() == 0 {
				res = r
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= p.MaxIters {
		t.Fatalf("did not converge: %d iters, residual %g", res.Iters, res.Residual)
	}
	if res.Residual >= p.Tol {
		t.Fatalf("stopped with residual %g >= tol", res.Residual)
	}
}

func TestHeat2DStaticEqualsOnDemand(t *testing.T) {
	p := heat2d.Params{NX: 12, NY: 20, MaxIters: 15}
	sums := map[gasnet.Mode]float64{}
	for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
		var got float64
		_, err := cluster.Run(cluster.Config{NP: 4, PPN: 2, Mode: mode, SkipLaunchCost: true},
			func(c *shmem.Ctx) {
				r := heat2d.Run(c, p)
				if c.Me() == 0 {
					got = r.Checksum
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		sums[mode] = got
	}
	if sums[gasnet.Static] != sums[gasnet.OnDemand] {
		t.Fatalf("modes diverge: %v", sums)
	}
}

// The paper's Table I: 2D-Heat talks to very few peers regardless of scale.
func TestHeat2DSparsePeers(t *testing.T) {
	p := heat2d.Params{NX: 16, NY: 64, MaxIters: 8, CheckEvery: 4, Tol: 0}
	res, err := cluster.Run(cluster.Config{NP: 16, PPN: 8, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) { heat2d.Run(c, p) })
	if err != nil {
		t.Fatal(err)
	}
	if avg := res.AvgPeers(); avg > 8 {
		t.Fatalf("2D-Heat average peers = %.1f, expected sparse (<8)", avg)
	}
}
