// Package traffic is a synthetic irregular-workload driver: skewed, shifting
// peer distributions (zipf, rotating hotspot, uniform) standing in for the
// distributed KV / graph-serving traffic the paper's millions-of-users
// argument is about, where each PE's instantaneous peer set is small but the
// union over time is large. It is the load generator for resource-churn
// soaks: under tight queue-pair and pinned-memory budgets it keeps the
// eviction, admission and backpressure machinery permanently busy while its
// results stay deterministic.
//
// Determinism under concurrency is by construction: puts land only in the
// source's own region of the target's symmetric slot array (per-(src,target)
// ownership, last-write-wins within one source's in-order stream), the
// signal words each accumulate commutative adds from a single source, and
// atomics are commutative fetch-adds, so the final symmetric state — and
// hence the digest — depends only on the seeds, never on interleaving,
// eviction schedules or retry timing.
//
// Puts are issued as put-with-signal: the signal active messages are the
// only part of the workload that consumes receive-queue slots, so they are
// what drives credit backpressure and RNR NAKs under a finite RQDepth.
package traffic

import (
	"encoding/binary"
	"math/rand"

	"goshmem/internal/shmem"
)

// Params configures a run.
type Params struct {
	// SlotsPerPE is the number of owned int64 put-slots each source has on
	// every target (the put array is NPEs*SlotsPerPE slots per PE).
	SlotsPerPE int
	// Ops is the number of operations each PE issues.
	Ops int
	// Epochs shifts the peer distribution this many times over the run
	// (rotating the zipf ranking / hotspot), modeling non-stationary load.
	Epochs int
	// Pattern selects the target distribution: "zipf", "hotspot", "uniform".
	Pattern string
	// ZipfS is the zipf skew exponent (> 1; default 1.3).
	ZipfS float64
	// HotFrac is the fraction of hotspot-pattern ops aimed at the epoch's
	// hot PE (default 0.6); the rest are uniform.
	HotFrac float64
	// GetFrac and AddFrac are the fractions of gets and fetch-adds; the
	// remainder are puts.
	GetFrac, AddFrac float64
	// QuietEvery bounds outstanding one-sided ops: a Quiet is issued every
	// this many ops (default 64).
	QuietEvery int
	// BulkEvery, when positive, issues a bulk put every this many ops: a
	// multi-packet RDMA write of BulkWords int64s into the source's own
	// region of the target's bulk array. One-sided data-plane faults (torn
	// writes, dropped corrupt packets) act at link-packet granularity, so
	// only writes spanning several packets exercise the partial-landing and
	// replay-overwrite paths — the word-sized put/signal stream never can.
	BulkEvery int
	// BulkWords sizes the bulk put (default 1536 words = 12 KiB, three link
	// packets).
	BulkWords int
	// Seed derives every PE's private stream.
	Seed int64
}

// DefaultParams is a small mixed zipf workload.
func DefaultParams() Params {
	return Params{SlotsPerPE: 8, Ops: 400, Epochs: 4, Pattern: "zipf",
		ZipfS: 1.3, HotFrac: 0.6, GetFrac: 0.2, AddFrac: 0.3, QuietEvery: 64,
		Seed: 1}
}

// Result summarizes one PE's run.
type Result struct {
	// Digest folds this PE's final symmetric state (its put and fetch-add
	// arrays). With every PE's traffic delivered, the per-rank digest vector
	// is a pure function of Params.
	Digest uint64
	// Puts, Gets, Adds count the operations issued by this PE.
	Puts, Gets, Adds int64
	// DistinctPeers is the size of this PE's union peer set over the whole
	// run — the quantity the paper's small-stable-peer-set claim bounds per
	// epoch, and churn soaks drive past any queue-pair budget.
	DistinctPeers int
}

// Run issues the workload on one PE and returns after the whole job's
// traffic is globally visible (quiet + two barriers), so digests taken by
// any PE are final.
func Run(c *shmem.Ctx, p Params) Result {
	np := c.NPEs()
	me := c.Me()
	if p.SlotsPerPE <= 0 {
		p.SlotsPerPE = 8
	}
	if p.QuietEvery <= 0 {
		p.QuietEvery = 64
	}
	if p.Epochs <= 0 {
		p.Epochs = 1
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.3
	}
	if p.HotFrac <= 0 {
		p.HotFrac = 0.6
	}
	if p.BulkWords <= 0 {
		p.BulkWords = 1536
	}
	putArr := c.Malloc(8 * np * p.SlotsPerPE) // region s: slots [s*SlotsPerPE, ...)
	addArr := c.Malloc(8 * p.SlotsPerPE)
	sigArr := c.Malloc(8 * np) // word s: puts delivered by source s
	var bulkArr shmem.SymAddr
	if p.BulkEvery > 0 {
		bulkArr = c.Malloc(8 * np * p.BulkWords) // region s: words [s*BulkWords, ...)
		for i := 0; i < np*p.BulkWords; i++ {
			c.StoreInt64(bulkArr, i, 0)
		}
	}
	for i := 0; i < np*p.SlotsPerPE; i++ {
		c.StoreInt64(putArr, i, 0)
	}
	for i := 0; i < p.SlotsPerPE; i++ {
		c.StoreInt64(addArr, i, 0)
	}
	for i := 0; i < np; i++ {
		c.StoreInt64(sigArr, i, 0)
	}
	c.BarrierAll()

	// Every PE's stream is private and seeded; nothing about it depends on
	// what the runtime does with the traffic.
	rng := rand.New(rand.NewSource(p.Seed + int64(me)*1009))
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(np-1))
	perEpoch := (p.Ops + p.Epochs - 1) / p.Epochs
	peers := make(map[int]bool)
	var res Result

	target := func(epoch int) int {
		// The epoch rotates the identity of the popular PEs, shifting the
		// distribution without changing its shape.
		rot := int((p.Seed + int64(epoch)*7919) % int64(np))
		if rot < 0 {
			rot += np
		}
		switch p.Pattern {
		case "hotspot":
			if rng.Float64() < p.HotFrac {
				return rot
			}
			return rng.Intn(np)
		case "uniform":
			return rng.Intn(np)
		default: // zipf
			return (int(zipf.Uint64()) + rot) % np
		}
	}

	myRegion := shmem.SymAddr(8 * me * p.SlotsPerPE)
	var bulkBuf []byte
	if p.BulkEvery > 0 {
		bulkBuf = make([]byte, 8*p.BulkWords)
	}
	for i := 0; i < p.Ops; i++ {
		epoch := i / perEpoch
		tgt := target(epoch)
		peers[tgt] = true
		slot := rng.Intn(p.SlotsPerPE)
		r := rng.Float64()
		switch {
		case r < p.GetFrac:
			c.G64(addArr+shmem.SymAddr(8*slot), tgt)
			res.Gets++
		case r < p.GetFrac+p.AddFrac:
			c.FetchAddInt64(addArr+shmem.SymAddr(8*slot), int64(me+1), tgt)
			res.Adds++
		default:
			// Only this PE ever writes the slot: last-write-wins within one
			// in-order stream is deterministic. The trailing signal add lands
			// in this PE's own signal word on the target, so its final value
			// (this PE's put count toward tgt) is deterministic too.
			v := int64(me+1)*1_000_000 + int64(i)
			c.P64Signal(putArr+myRegion+shmem.SymAddr(8*slot), v,
				sigArr+shmem.SymAddr(8*me), 1, tgt)
			res.Puts++
		}
		if p.BulkEvery > 0 && (i+1)%p.BulkEvery == 0 {
			// Bulk leg: only this PE ever writes its region of the target's
			// bulk array, so last-write-wins within one in-order stream keeps
			// the final state deterministic even when a tear or dropped
			// packet forces a replay over a partial landing.
			for w := 0; w < p.BulkWords; w++ {
				binary.LittleEndian.PutUint64(bulkBuf[8*w:],
					uint64(int64(me+1)*1_000_000_000+int64(i)*1_000+int64(w)))
			}
			c.PutMem(bulkArr+shmem.SymAddr(8*me*p.BulkWords), bulkBuf, tgt)
			res.Puts++
		}
		if (i+1)%p.QuietEvery == 0 {
			c.Quiet()
		}
	}
	c.Quiet()
	// Two barriers: the first guarantees every PE finished issuing (and its
	// quiet completed), the second that every PE observed the first — no
	// straggler can still be mutating symmetric state while digests run.
	c.BarrierAll()
	c.BarrierAll()

	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	d := uint64(fnvOffset)
	fold := func(v int64) {
		d ^= uint64(v)
		d *= fnvPrime
	}
	for i := 0; i < np*p.SlotsPerPE; i++ {
		fold(c.LoadInt64(putArr, i))
	}
	for i := 0; i < p.SlotsPerPE; i++ {
		fold(c.LoadInt64(addArr, i))
	}
	for i := 0; i < np; i++ {
		fold(c.LoadInt64(sigArr, i))
	}
	if p.BulkEvery > 0 {
		for i := 0; i < np*p.BulkWords; i++ {
			fold(c.LoadInt64(bulkArr, i))
		}
	}
	res.Digest = d
	res.DistinctPeers = len(peers)
	return res
}
