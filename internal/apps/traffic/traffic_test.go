package traffic_test

import (
	"testing"

	"goshmem/internal/apps/traffic"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

// runOnce executes the driver on a small fault-free job and returns the
// per-rank results.
func runOnce(t *testing.T, p traffic.Params) []traffic.Result {
	t.Helper()
	const np = 6
	out := make([]traffic.Result, np)
	_, err := cluster.Run(cluster.Config{
		NP: np, PPN: 3, Mode: gasnet.OnDemand, HeapSize: 1 << 18,
	}, func(c *shmem.Ctx) {
		out[c.Me()] = traffic.Run(c, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDigestDeterministic: the per-rank digest vector is a pure function of
// Params — two identical fault-free runs must agree slot for slot.
func TestDigestDeterministic(t *testing.T) {
	p := traffic.DefaultParams()
	p.Ops = 200
	a := runOnce(t, p)
	b := runOnce(t, p)
	for r := range a {
		if a[r].Digest != b[r].Digest {
			t.Errorf("rank %d digest diverged across identical runs: %x vs %x", r, a[r].Digest, b[r].Digest)
		}
		if a[r].Puts+a[r].Gets+a[r].Adds != int64(p.Ops) {
			t.Errorf("rank %d issued %d ops, want %d", r,
				a[r].Puts+a[r].Gets+a[r].Adds, p.Ops)
		}
		if a[r].Puts == 0 || a[r].Gets == 0 || a[r].Adds == 0 {
			t.Errorf("rank %d op mix degenerate: %+v", r, a[r])
		}
	}
}

// TestPatternsCoverAndSkew: every pattern runs clean; the hotspot pattern
// concentrates traffic (some PE's distinct peer set shrinks relative to
// uniform is not guaranteed per rank, but every pattern must touch more than
// one peer and no more than NPEs).
func TestPatternsCoverAndSkew(t *testing.T) {
	for _, pat := range []string{"zipf", "hotspot", "uniform"} {
		p := traffic.DefaultParams()
		p.Ops = 150
		p.Pattern = pat
		for r, res := range runOnce(t, p) {
			if res.DistinctPeers < 1 || res.DistinctPeers > 6 {
				t.Errorf("%s: rank %d distinct peers = %d out of range", pat, r, res.DistinctPeers)
			}
		}
	}
}

// TestSeedChangesTraffic: a different seed must actually change the final
// state (guards against the driver ignoring its seed).
func TestSeedChangesTraffic(t *testing.T) {
	p := traffic.DefaultParams()
	p.Ops = 200
	a := runOnce(t, p)
	p.Seed += 17
	b := runOnce(t, p)
	same := true
	for r := range a {
		if a[r].Digest != b[r].Digest {
			same = false
		}
	}
	if same {
		t.Fatal("digest vector identical across different seeds")
	}
}
