// Package upc is a miniature UPC-style PGAS client of the same conduit the
// OpenSHMEM runtime uses. It exists to demonstrate the paper's section IV-C
// design point: the conduit treats the connect payload as an opaque buffer
// that any upper layer may "read, write, or ignore", so a different PGAS
// language runtime — with its own segment descriptor wire format — plugs
// into the same on-demand connection machinery unchanged. (Extending the
// design to UPC and CAF is the paper's stated future work.)
//
// The model implemented is the classic UPC core: THREADS/MYTHREAD, shared
// arrays with round-robin block-cyclic affinity, one-sided element access
// through shared pointers, upc_barrier and upc_all_alloc.
package upc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
)

// amBarrier is the AM handler id for the upc_barrier (the conduit id space
// above both the OpenSHMEM runtime's and the mini-MPI's).
const amBarrier uint8 = 64

// segMagic tags the UPC shared-segment descriptor so a mismatched consumer
// fails loudly; its layout differs from OpenSHMEM's triplet on purpose.
var segMagic = [4]byte{'U', 'P', 'C', '1'}

// Thread is one UPC thread (MYTHREAD).
type Thread struct {
	rank int
	n    int

	conduit *gasnet.Conduit
	mr      *ib.MR
	shared  []byte
	alloc   uint64 // bump allocator over the shared segment

	segMu   sync.Mutex
	segCond *sync.Cond
	segs    []struct {
		base uint64
		rkey uint32
		have bool
	}

	barMu   sync.Mutex
	barCond *sync.Cond
	barSeq  uint64
	inbox   map[[2]uint64]int64 // (seq, src) -> arrival vtime
}

// Options configures a thread.
type Options struct {
	// SharedBytes is the per-thread shared-segment size (default 1 MiB).
	SharedBytes int
	// Mode selects the connection strategy (default on-demand — the point
	// of the exercise).
	Mode gasnet.Mode
}

// Attach initializes one UPC thread over the given PE environment. All
// threads of the job must attach.
func Attach(env shmem.Env, opts Options) *Thread {
	if opts.SharedBytes <= 0 {
		opts.SharedBytes = 1 << 20
	}
	t := &Thread{rank: env.Rank, n: env.NProcs}
	t.segCond = sync.NewCond(&t.segMu)
	t.barCond = sync.NewCond(&t.barMu)
	t.inbox = make(map[[2]uint64]int64)
	t.segs = make([]struct {
		base uint64
		rkey uint32
		have bool
	}, env.NProcs)

	cfg := gasnet.Config{
		Rank: env.Rank, NProcs: env.NProcs, Node: env.Node, PPN: env.PPN,
		HCA: env.HCA, PMI: env.PMI, Clock: env.Clock,
		Mode: opts.Mode, NodeBarrier: env.NodeBarrier,
		ConnectPayload:   t.encodeSeg,
		OnConnectPayload: t.storeSeg,
	}
	t.conduit = gasnet.New(cfg)
	t.conduit.RegisterHandler(amBarrier, func(src int, args [4]uint64, payload []byte, at int64) {
		t.barMu.Lock()
		t.inbox[[2]uint64{args[0], uint64(src)}] = at
		t.barMu.Unlock()
		t.barCond.Broadcast()
	})
	t.conduit.ExchangeEndpoints()
	t.shared = make([]byte, opts.SharedBytes)
	t.mr = env.HCA.RegisterMR(t.shared, env.Clock)
	t.segs[t.rank].base = t.mr.Base()
	t.segs[t.rank].rkey = t.mr.RKey()
	t.segs[t.rank].have = true
	t.conduit.IntraNodeBarrier()
	t.conduit.SetReady()
	return t
}

// encodeSeg is this thread's connect payload: UPC's own descriptor format.
func (t *Thread) encodeSeg() []byte {
	b := make([]byte, 4+4+8+8)
	copy(b, segMagic[:])
	binary.LittleEndian.PutUint32(b[4:], t.mr.RKey())
	binary.LittleEndian.PutUint64(b[8:], t.mr.Base())
	binary.LittleEndian.PutUint64(b[16:], uint64(len(t.shared)))
	return b
}

func (t *Thread) storeSeg(peer int, b []byte, at int64) {
	if len(b) != 24 || string(b[:4]) != string(segMagic[:]) {
		return
	}
	t.segMu.Lock()
	t.segs[peer].rkey = binary.LittleEndian.Uint32(b[4:])
	t.segs[peer].base = binary.LittleEndian.Uint64(b[8:])
	t.segs[peer].have = true
	t.segMu.Unlock()
	t.segCond.Broadcast()
}

// MyThread returns this thread's index (MYTHREAD).
func (t *Thread) MyThread() int { return t.rank }

// Threads returns the job size (THREADS).
func (t *Thread) Threads() int { return t.n }

// Detach shuts the thread's conduit down.
func (t *Thread) Detach() {
	t.Barrier()
	t.conduit.Close()
}

// Stats exposes the conduit counters (endpoints created etc.).
func (t *Thread) Stats() gasnet.Stats { return t.conduit.Stats() }

// SharedArray is a UPC shared array of int64 with block-cyclic layout:
// elements [k*Block, (k+1)*Block) have affinity to thread k % THREADS, like
// "shared [Block] long a[n]".
type SharedArray struct {
	off   uint64 // offset within every thread's shared segment
	N     int
	Block int
}

// AllAlloc is upc_all_alloc: collectively allocates a shared int64 array of
// n elements with the given block size. Every thread must call it with the
// same arguments.
func (t *Thread) AllAlloc(n, block int) SharedArray {
	if block <= 0 {
		block = 1
	}
	blocksTotal := (n + block - 1) / block
	blocksPer := (blocksTotal + t.n - 1) / t.n
	bytesPer := uint64(blocksPer*block) * 8
	off := t.alloc
	t.alloc += (bytesPer + 63) &^ 63
	if t.alloc > uint64(len(t.shared)) {
		panic("upc: shared segment exhausted")
	}
	arr := SharedArray{off: off, N: n, Block: block}
	t.Barrier()
	return arr
}

// owner returns (thread, byte offset) of element i.
func (a SharedArray) owner(i, nthreads int) (int, uint64) {
	blk := i / a.Block
	th := blk % nthreads
	localBlk := blk / nthreads
	localIdx := localBlk*a.Block + i%a.Block
	return th, a.off + uint64(localIdx)*8
}

// Read is a one-sided read of element i (a[i] through a shared pointer).
func (t *Thread) Read(a SharedArray, i int) int64 {
	th, off := a.owner(i, t.n)
	if th == t.rank {
		return int64(t.mr.LoadUint64(int(off)))
	}
	base, rkey := t.segAddr(th)
	var buf [8]byte
	if err := t.conduit.Get(th, base+off, rkey, buf[:]); err != nil {
		panic(err.Error())
	}
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// Write is a one-sided write of element i (a[i] = v).
func (t *Thread) Write(a SharedArray, i int, v int64) {
	th, off := a.owner(i, t.n)
	if th == t.rank {
		t.mr.StoreUint64(int(off), uint64(v))
		return
	}
	base, rkey := t.segAddr(th)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	if err := t.conduit.Put(th, base+off, rkey, buf[:]); err != nil {
		panic(err.Error())
	}
}

// HasAffinity reports whether element i has affinity to this thread — the
// upc_forall affinity test.
func (t *Thread) HasAffinity(a SharedArray, i int) bool {
	th, _ := a.owner(i, t.n)
	return th == t.rank
}

// ForAll iterates i in [0, a.N) executing body only for elements with local
// affinity (upc_forall(i; &a[i])).
func (t *Thread) ForAll(a SharedArray, body func(i int)) {
	for i := 0; i < a.N; i++ {
		if t.HasAffinity(a, i) {
			body(i)
		}
	}
}

// segAddr waits for (and returns) a peer's segment descriptor; with the
// on-demand conduit this arrives on the connect handshake.
func (t *Thread) segAddr(peer int) (uint64, uint32) {
	t.segMu.Lock()
	if t.segs[peer].have {
		defer t.segMu.Unlock()
		return t.segs[peer].base, t.segs[peer].rkey
	}
	t.segMu.Unlock()
	if err := t.conduit.EnsureConnected(peer); err != nil {
		panic(err.Error())
	}
	t.segMu.Lock()
	defer t.segMu.Unlock()
	if !t.segs[peer].have {
		panic(fmt.Sprintf("upc: segment descriptor for thread %d missing after connect", peer))
	}
	return t.segs[peer].base, t.segs[peer].rkey
}

// Barrier is upc_barrier (dissemination, with an implicit fence of
// outstanding writes).
func (t *Thread) Barrier() {
	t.conduit.Quiet()
	if t.n == 1 {
		return
	}
	t.barMu.Lock()
	t.barSeq++
	seq := t.barSeq
	t.barMu.Unlock()
	for dist := 1; dist < t.n; dist *= 2 {
		to := (t.rank + dist) % t.n
		from := (t.rank - dist%t.n + t.n) % t.n
		if err := t.conduit.AMRequestKind(to, amBarrier, [4]uint64{seq, uint64(dist)}, nil, obs.FlowBarrier); err != nil {
			panic(err.Error())
		}
		key := [2]uint64{seq, uint64(from)}
		t.barMu.Lock()
		for {
			if at, ok := t.inbox[key]; ok {
				delete(t.inbox, key)
				t.barMu.Unlock()
				t.conduit.Clock().AdvanceTo(at)
				break
			}
			t.barCond.Wait()
		}
	}
}
