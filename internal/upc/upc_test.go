package upc_test

import (
	"sync"
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/upc"
)

// runThreads launches a mini-UPC job over raw PE environments.
func runThreads(t *testing.T, n int, body func(th *upc.Thread)) {
	t.Helper()
	err := cluster.RunEnvs(cluster.Config{NP: n, PPN: 4, SkipLaunchCost: true},
		func(env shmem.Env) {
			th := upc.Attach(env, upc.Options{Mode: gasnet.OnDemand})
			body(th)
			th.Detach()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUPCIdentity(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	runThreads(t, 4, func(th *upc.Thread) {
		if th.Threads() != 4 {
			t.Errorf("THREADS = %d", th.Threads())
		}
		mu.Lock()
		seen[th.MyThread()] = true
		mu.Unlock()
		th.Barrier()
	})
	if len(seen) != 4 {
		t.Fatalf("only %d threads ran", len(seen))
	}
}

// A shared array written via upc_forall affinity and read globally — the
// whole point: a second PGAS language on the same conduit, with its own
// piggybacked segment descriptor format.
func TestUPCSharedArrayForall(t *testing.T) {
	const n, elems, block = 4, 37, 3
	runThreads(t, n, func(th *upc.Thread) {
		a := th.AllAlloc(elems, block)
		// Each thread writes the elements with local affinity.
		th.ForAll(a, func(i int) {
			th.Write(a, i, int64(i*i))
		})
		th.Barrier()
		// Every thread reads every element one-sided.
		for i := 0; i < elems; i++ {
			if got := th.Read(a, i); got != int64(i*i) {
				t.Errorf("thread %d: a[%d] = %d, want %d", th.MyThread(), i, got, i*i)
				return
			}
		}
		th.Barrier()
	})
}

func TestUPCRemoteWrite(t *testing.T) {
	const n = 3
	runThreads(t, n, func(th *upc.Thread) {
		a := th.AllAlloc(n, 1) // element i has affinity to thread i
		// Everyone writes into the NEXT thread's element (remote write).
		next := (th.MyThread() + 1) % n
		th.Write(a, next, int64(100+th.MyThread()))
		th.Barrier()
		prev := (th.MyThread() - 1 + n) % n
		if got := th.Read(a, th.MyThread()); got != int64(100+prev) {
			t.Errorf("thread %d: own element = %d, want %d", th.MyThread(), got, 100+prev)
		}
		th.Barrier()
	})
}

// The on-demand machinery serves UPC exactly as it serves OpenSHMEM:
// a nearest-neighbour pattern creates only a handful of endpoints.
func TestUPCOnDemandEndpoints(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	eps := make([]int, n)
	runThreads(t, n, func(th *upc.Thread) {
		a := th.AllAlloc(n, 1)
		th.Write(a, (th.MyThread()+1)%n, 7)
		th.Barrier()
		mu.Lock()
		eps[th.MyThread()] = th.Stats().RCQPsCreated
		mu.Unlock()
	})
	for r, e := range eps {
		if e >= n {
			t.Fatalf("thread %d created %d endpoints; on-demand should stay below N", r, e)
		}
		if e == 0 {
			t.Fatalf("thread %d created no endpoints", r)
		}
	}
}

func TestUPCAffinityLayout(t *testing.T) {
	// shared [2] long a[10] over 3 threads: blocks 0..4 -> threads 0,1,2,0,1.
	runThreads(t, 3, func(th *upc.Thread) {
		a := th.AllAlloc(10, 2)
		wantOwner := []int{0, 0, 1, 1, 2, 2, 0, 0, 1, 1}
		for i, w := range wantOwner {
			if got := th.HasAffinity(a, i); got != (w == th.MyThread()) {
				t.Errorf("thread %d: affinity(a[%d]) = %v, owner should be %d", th.MyThread(), i, got, w)
			}
		}
		th.Barrier()
	})
}
