package caf_test

import (
	"sync"
	"testing"

	"goshmem/internal/caf"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func runImages(t *testing.T, n int, body func(im *caf.Image)) {
	t.Helper()
	err := cluster.RunEnvs(cluster.Config{NP: n, PPN: 4, SkipLaunchCost: true},
		func(env shmem.Env) {
			im := caf.Attach(env, caf.Options{Mode: gasnet.OnDemand})
			body(im)
			im.Detach()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCAFIdentity(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	runImages(t, 4, func(im *caf.Image) {
		if im.NumImages() != 4 {
			t.Errorf("num_images = %d", im.NumImages())
		}
		if im.ThisImage() < 1 || im.ThisImage() > 4 {
			t.Errorf("this_image = %d (must be 1-based)", im.ThisImage())
		}
		mu.Lock()
		seen[im.ThisImage()] = true
		mu.Unlock()
		im.SyncAll()
	})
	if len(seen) != 4 {
		t.Fatalf("images seen: %v", seen)
	}
}

// The classic coarray halo pattern: a(i)[me+1] = ... ; sync all ; read own.
func TestCoarrayRemoteSetGet(t *testing.T) {
	const n = 4
	runImages(t, n, func(im *caf.Image) {
		a := im.NewCoarray(8)
		me := im.ThisImage()
		right := me%n + 1
		im.Set(a, 0, right, float64(me)*1.5)
		im.SyncAll()
		left := (me-2+n)%n + 1
		if got := im.Get(a, 0, me); got != float64(left)*1.5 {
			t.Errorf("image %d: a(0) = %v, want %v", me, got, float64(left)*1.5)
		}
		// Remote read across the group.
		if got := im.Get(a, 0, right); got != float64(me)*1.5 {
			t.Errorf("image %d: a(0)[%d] = %v", me, right, got)
		}
		im.SyncAll()
	})
}

func TestSyncImagesPairwise(t *testing.T) {
	const n = 4
	runImages(t, n, func(im *caf.Image) {
		a := im.NewCoarray(4)
		me := im.ThisImage()
		partner := me
		if me%2 == 1 {
			partner = me + 1
		} else {
			partner = me - 1
		}
		if me%2 == 1 {
			im.Set(a, 1, partner, 42)
		}
		im.SyncImages([]int{partner})
		if me%2 == 0 {
			if got := im.Get(a, 1, me); got != 42 {
				t.Errorf("image %d: expected partner's write, got %v", me, got)
			}
		}
		im.SyncAll()
	})
}

func TestCoarrayBoundsChecks(t *testing.T) {
	runImages(t, 2, func(im *caf.Image) {
		a := im.NewCoarray(4)
		for _, bad := range []func(){
			func() { im.Get(a, 4, 1) },
			func() { im.Get(a, -1, 1) },
			func() { im.Get(a, 0, 0) },
			func() { im.Get(a, 0, 3) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("expected panic")
					}
				}()
				bad()
			}()
		}
		im.SyncAll()
	})
}

// Like the UPC test: CAF on the on-demand conduit only connects where
// traffic flows.
func TestCAFOnDemandEndpoints(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	eps := map[int]int{}
	runImages(t, n, func(im *caf.Image) {
		a := im.NewCoarray(2)
		right := im.ThisImage()%n + 1
		im.Set(a, 0, right, 1)
		im.SyncAll()
		mu.Lock()
		eps[im.ThisImage()] = im.Stats().RCQPsCreated
		mu.Unlock()
	})
	for img, e := range eps {
		if e == 0 || e >= n {
			t.Fatalf("image %d created %d endpoints", img, e)
		}
	}
}
