// Package caf is a miniature Co-Array Fortran–style client of the conduit,
// the second of the two languages the paper names when arguing its design
// "is applicable to other PGAS languages such as UPC or CAF". Together with
// internal/upc it demonstrates that the conduit's opaque connect-payload
// hook carries any client's segment descriptor.
//
// The model implemented is CAF's core: every image allocates coarrays with
// identical shape; remote elements are addressed by bracketed image index
// (a(i)[img] becomes Coarray.Get/Set with an image argument); sync all and
// sync images provide ordering.
package caf

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
)

// amSync is the AM id for sync barriers (above shmem's, mpi's and upc's).
const amSync uint8 = 80

// segMagic tags CAF's descriptor wire format (distinct from both
// OpenSHMEM's triplet and UPC's descriptor, on purpose).
var segMagic = [4]byte{'C', 'A', 'F', '2'}

// Image is one CAF image (this_image).
type Image struct {
	rank int
	n    int

	conduit *gasnet.Conduit
	mr      *ib.MR
	heap    []byte
	alloc   uint64

	segMu sync.Mutex
	segs  []struct {
		base uint64
		rkey uint32
		have bool
	}

	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncSeq  uint64
	inbox    map[[2]uint64]struct{}
}

// Options configures an image.
type Options struct {
	// HeapBytes is the coarray heap per image (default 1 MiB).
	HeapBytes int
	// Mode selects the connection strategy (default on-demand).
	Mode gasnet.Mode
}

// Attach initializes one image over a PE environment; all images must call it.
func Attach(env shmem.Env, opts Options) *Image {
	if opts.HeapBytes <= 0 {
		opts.HeapBytes = 1 << 20
	}
	im := &Image{rank: env.Rank, n: env.NProcs}
	im.syncCond = sync.NewCond(&im.syncMu)
	im.inbox = make(map[[2]uint64]struct{})
	im.segs = make([]struct {
		base uint64
		rkey uint32
		have bool
	}, env.NProcs)

	im.conduit = gasnet.New(gasnet.Config{
		Rank: env.Rank, NProcs: env.NProcs, Node: env.Node, PPN: env.PPN,
		HCA: env.HCA, PMI: env.PMI, Clock: env.Clock,
		Mode: opts.Mode, NodeBarrier: env.NodeBarrier,
		ConnectPayload:   im.encodeSeg,
		OnConnectPayload: im.storeSeg,
	})
	im.conduit.RegisterHandler(amSync, func(src int, args [4]uint64, payload []byte, at int64) {
		im.syncMu.Lock()
		im.inbox[[2]uint64{args[0], uint64(src)}] = struct{}{}
		im.syncMu.Unlock()
		im.syncCond.Broadcast()
	})
	im.conduit.ExchangeEndpoints()
	im.heap = make([]byte, opts.HeapBytes)
	im.mr = env.HCA.RegisterMR(im.heap, env.Clock)
	im.segs[im.rank].base = im.mr.Base()
	im.segs[im.rank].rkey = im.mr.RKey()
	im.segs[im.rank].have = true
	im.conduit.IntraNodeBarrier()
	im.conduit.SetReady()
	return im
}

func (im *Image) encodeSeg() []byte {
	b := make([]byte, 4+8+4)
	copy(b, segMagic[:])
	binary.LittleEndian.PutUint64(b[4:], im.mr.Base())
	binary.LittleEndian.PutUint32(b[12:], im.mr.RKey())
	return b
}

func (im *Image) storeSeg(peer int, b []byte, at int64) {
	if len(b) != 16 || string(b[:4]) != string(segMagic[:]) {
		return
	}
	im.segMu.Lock()
	im.segs[peer].base = binary.LittleEndian.Uint64(b[4:])
	im.segs[peer].rkey = binary.LittleEndian.Uint32(b[12:])
	im.segs[peer].have = true
	im.segMu.Unlock()
}

// ThisImage returns this image's 1-based index (CAF convention).
func (im *Image) ThisImage() int { return im.rank + 1 }

// NumImages returns the number of images.
func (im *Image) NumImages() int { return im.n }

// Detach tears the image down (after a final sync).
func (im *Image) Detach() {
	im.SyncAll()
	im.conduit.Close()
}

// Stats exposes the conduit counters.
func (im *Image) Stats() gasnet.Stats { return im.conduit.Stats() }

// Coarray is a coarray of float64 with the same shape on every image
// (real :: a(n)[*]).
type Coarray struct {
	off uint64
	N   int
}

// NewCoarray collectively declares a coarray of n float64 elements. All
// images must call it in the same order.
func (im *Image) NewCoarray(n int) Coarray {
	off := im.alloc
	im.alloc += (uint64(n)*8 + 63) &^ 63
	if im.alloc > uint64(len(im.heap)) {
		panic("caf: coarray heap exhausted")
	}
	ca := Coarray{off: off, N: n}
	im.SyncAll()
	return ca
}

// Set assigns a(i)[img] = v (img is 1-based, as in Fortran).
func (im *Image) Set(a Coarray, i, img int, v float64) {
	im.check(a, i, img)
	if img-1 == im.rank {
		im.mr.StoreUint64(int(a.off)+8*i, mathFloat64bits(v))
		return
	}
	base, rkey := im.segAddr(img - 1)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], mathFloat64bits(v))
	if err := im.conduit.Put(img-1, base+a.off+uint64(8*i), rkey, buf[:]); err != nil {
		panic(err.Error())
	}
}

// Get reads a(i)[img].
func (im *Image) Get(a Coarray, i, img int) float64 {
	im.check(a, i, img)
	if img-1 == im.rank {
		return mathFloat64frombits(im.mr.LoadUint64(int(a.off) + 8*i))
	}
	base, rkey := im.segAddr(img - 1)
	var buf [8]byte
	if err := im.conduit.Get(img-1, base+a.off+uint64(8*i), rkey, buf[:]); err != nil {
		panic(err.Error())
	}
	return mathFloat64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// Local returns the local slice of the coarray for direct computation.
func (im *Image) Local(a Coarray) []float64 {
	out := make([]float64, a.N)
	for i := range out {
		out[i] = mathFloat64frombits(binary.LittleEndian.Uint64(im.heap[a.off+uint64(8*i):]))
	}
	return out
}

func (im *Image) check(a Coarray, i, img int) {
	if i < 0 || i >= a.N {
		panic(fmt.Sprintf("caf: index %d out of bounds [0,%d)", i, a.N))
	}
	if img < 1 || img > im.n {
		panic(fmt.Sprintf("caf: image %d out of range [1,%d]", img, im.n))
	}
}

func (im *Image) segAddr(peer int) (uint64, uint32) {
	im.segMu.Lock()
	if im.segs[peer].have {
		defer im.segMu.Unlock()
		return im.segs[peer].base, im.segs[peer].rkey
	}
	im.segMu.Unlock()
	if err := im.conduit.EnsureConnected(peer); err != nil {
		panic(err.Error())
	}
	im.segMu.Lock()
	defer im.segMu.Unlock()
	if !im.segs[peer].have {
		panic(fmt.Sprintf("caf: descriptor for image %d missing after connect", peer+1))
	}
	return im.segs[peer].base, im.segs[peer].rkey
}

// SyncAll is "sync all": completes outstanding accesses and synchronizes
// every image (dissemination).
func (im *Image) SyncAll() {
	im.conduit.Quiet()
	if im.n == 1 {
		return
	}
	im.syncMu.Lock()
	im.syncSeq++
	seq := im.syncSeq
	im.syncMu.Unlock()
	for dist := 1; dist < im.n; dist *= 2 {
		to := (im.rank + dist) % im.n
		from := (im.rank - dist%im.n + im.n) % im.n
		if err := im.conduit.AMRequestKind(to, amSync, [4]uint64{seq, uint64(dist)}, nil, obs.FlowBarrier); err != nil {
			panic(err.Error())
		}
		im.waitSync(seq, from)
	}
}

// SyncImages is "sync images(list)": pairwise synchronization with the
// given (1-based) images. Every listed image must list this one back.
func (im *Image) SyncImages(images []int) {
	im.conduit.Quiet()
	im.syncMu.Lock()
	im.syncSeq++
	seq := im.syncSeq
	im.syncMu.Unlock()
	for _, img := range images {
		if err := im.conduit.AMRequestKind(img-1, amSync, [4]uint64{seq, 0}, nil, obs.FlowBarrier); err != nil {
			panic(err.Error())
		}
	}
	for _, img := range images {
		im.waitSync(seq, img-1)
	}
}

func (im *Image) waitSync(seq uint64, from int) {
	key := [2]uint64{seq, uint64(from)}
	im.syncMu.Lock()
	for {
		if _, ok := im.inbox[key]; ok {
			delete(im.inbox, key)
			im.syncMu.Unlock()
			return
		}
		im.syncCond.Wait()
	}
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(u uint64) float64 { return math.Float64frombits(u) }
