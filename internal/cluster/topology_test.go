package cluster

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
)

// TestTopologyMatchesPeerSets cross-checks the two independent peer-count
// paths: the matrix-derived degree (obs.DataPeers over recorded flows) must
// equal the conduit's own peer-set count for every PE, and the job-level
// degree average must equal Result.AvgPeers — the Table I metric.
func TestTopologyMatchesPeerSets(t *testing.T) {
	res, err := Run(Config{
		NP: 16, PPN: 8, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
		Obs: obs.Config{Flows: true},
	}, ringApp(3, 512))
	if err != nil {
		t.Fatal(err)
	}
	top := BuildTopology(res)
	if top == nil {
		t.Fatal("no topology despite Flows enabled")
	}
	if len(top.PEs) != 16 {
		t.Fatalf("topology has %d PEs, want 16", len(top.PEs))
	}
	for i, pt := range top.PEs {
		if pt.Peers != res.PEs[i].Peers {
			t.Errorf("PE %d: matrix degree %d != conduit peer count %d",
				pt.Rank, pt.Peers, res.PEs[i].Peers)
		}
	}
	if top.Degree.Avg != res.AvgPeers() {
		t.Errorf("degree avg %v != AvgPeers %v", top.Degree.Avg, res.AvgPeers())
	}
	if top.QPsEstablished == 0 || top.QPsUsed == 0 {
		t.Errorf("waste attribution empty: est=%d used=%d", top.QPsEstablished, top.QPsUsed)
	}

	// The JSON report carries the schema version and the topology section.
	rep := BuildReport(res)
	if rep.SchemaVersion != ReportSchemaVersion || rep.Topology == nil {
		t.Fatalf("report: schema_version=%d topology=%v", rep.SchemaVersion, rep.Topology)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["schema_version"]) != "1" {
		t.Errorf("schema_version in JSON = %s", raw["schema_version"])
	}
	if _, ok := raw["topology"]; !ok {
		t.Error("topology section missing from JSON report")
	}
}

// TestTopologyNilWithoutFlows pins the gating: no Flows, no topology
// section, and the text view degrades gracefully.
func TestTopologyNilWithoutFlows(t *testing.T) {
	res, err := Run(Config{NP: 4, PPN: 2, Mode: gasnet.OnDemand, HeapSize: 1 << 16},
		ringApp(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	if top := BuildTopology(res); top != nil {
		t.Fatalf("topology built without flows: %+v", top)
	}
	if rep := BuildReport(res); rep.Topology != nil {
		t.Fatal("report has topology section without flows")
	}
	var sb strings.Builder
	WriteTopologyText(&sb, res)
	if !strings.Contains(sb.String(), "no flow matrix recorded") {
		t.Fatalf("text view: %q", sb.String())
	}
}

// fanApp drives connection churn from a single client: rank 0 puts to every
// server in turn for several rounds, so a small live-QP cap forces serial
// LRU evictions and reconnects with fully deterministic recency order.
func fanApp(rounds, blockSize int) func(c *shmem.Ctx) {
	return func(c *shmem.Ctx) {
		buf := c.Malloc(blockSize)
		src := make([]byte, blockSize)
		if c.Me() == 0 {
			for r := 0; r < rounds; r++ {
				src[0] = byte(r)
				for p := 1; p < c.NPEs(); p++ {
					c.PutMem(buf, src, p)
					c.Quiet()
				}
			}
		}
		c.BarrierAll()
	}
}

// TestFlowTelemetryByteIdentical is the tentpole determinism invariant: a
// 33-PE fan run must produce byte-identical flow matrices (control column
// included), topology reductions, rendered heatmaps and rendered lifecycle
// timelines across two identical runs — goroutine scheduling must not leak
// into any of them. No QP cap here: without one, every conn event is
// demand-driven at virtual times that are a pure function of the schedule
// (the cap's eviction decisions, by contrast, sample the adapter's live-QP
// count in real time; see TestFlowChurnDataPlaneStable). The PE count is
// odd on purpose: at even np the dissemination barrier's distance-np/2
// round makes both sides of a pair demand the connection simultaneously,
// and which side wins that real-time collision (client vs server role, and
// with it the ctrl column and the timeline) is schedule-dependent. At odd
// np no barrier distance is self-inverse, so every pair's second demand is
// causally ordered behind the first establishment.
func TestFlowTelemetryByteIdentical(t *testing.T) {
	run := func() (*Result, [][]obs.FlowEdge, *TopologyReport, string, string) {
		res, err := Run(Config{
			NP: 33, PPN: 1, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
			Obs: obs.Config{Events: true, Flows: true},
		}, fanApp(2, 256))
		if err != nil {
			t.Fatal(err)
		}
		var heat strings.Builder
		obs.WriteHeatmap(&heat, res.Cfg.NP, res.FlowMatrix())
		var tlText strings.Builder
		obs.WriteTimelines(&tlText, obs.BuildConnTimelines(res.Obs.Events()))
		return res, res.FlowMatrix(), BuildTopology(res), heat.String(), tlText.String()
	}

	_, matA, topA, heatA, tlA := run()
	_, matB, topB, heatB, tlB := run()

	if !reflect.DeepEqual(matA, matB) {
		t.Error("flow matrices differ across identical runs")
	}
	if !reflect.DeepEqual(topA, topB) {
		t.Error("topology reductions differ across identical runs")
	}
	if heatA != heatB {
		t.Error("heatmap renders differ across identical runs")
	}
	if tlA == "" {
		t.Fatal("empty lifecycle timeline")
	}
	if tlA != tlB {
		t.Errorf("lifecycle timelines differ across identical runs:\n--- A\n%s--- B\n%s", tlA, tlB)
	}
	// Every rank-0 client pair must show a completed handshake.
	if !strings.Contains(tlA, "0->32 ") || !strings.Contains(tlA, "ready-client@") {
		t.Errorf("timeline missing expected pairs:\n%s", tlA)
	}
}

// TestFlowChurnDataPlaneStable pins eviction transparency in the matrix: a
// QP cap small enough to force eviction/reconnect churn must not change the
// data-plane flow matrix or the degree distribution — churn adds control
// traffic and lifecycle events, never application traffic. The eviction
// *timing* is legitimately schedule-dependent (the cap samples the
// adapter's live-QP count in real time), so the control column and the
// timelines are checked for shape, not byte-compared.
func TestFlowChurnDataPlaneStable(t *testing.T) {
	run := func(cap int) (*Result, string) {
		res, err := Run(Config{
			NP: 32, PPN: 1, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
			MaxLiveRC: cap,
			Obs:       obs.Config{Events: true, Flows: true},
		}, fanApp(3, 256))
		if err != nil {
			t.Fatal(err)
		}
		var tlText strings.Builder
		obs.WriteTimelines(&tlText, obs.BuildConnTimelines(res.Obs.Events()))
		return res, tlText.String()
	}

	uncapped, _ := run(0)
	capped, tl := run(8)

	if capped.TotalEvictions() == 0 {
		t.Fatal("no evictions under the QP cap; the churn leg tested nothing")
	}
	want := dataOnly(uncapped.FlowMatrix())
	if got := dataOnly(capped.FlowMatrix()); !reflect.DeepEqual(got, want) {
		t.Error("data-plane matrix changed under QP-cap churn")
	}
	ut, ct := BuildTopology(uncapped), BuildTopology(capped)
	if ut.Degree != ct.Degree {
		t.Errorf("degree distribution changed under churn: %+v vs %+v", ut.Degree, ct.Degree)
	}
	// Churn must be visible in the lifecycle view: evictions and at least
	// one re-established pair.
	if !strings.Contains(tl, "evict@") {
		t.Errorf("timeline shows no evictions:\n%s", tl)
	}
	tls := obs.BuildConnTimelines(capped.Obs.Events())
	recon := 0
	for _, c := range tls {
		recon += c.Reconnects
	}
	if recon == 0 {
		t.Error("no pair re-established after eviction")
	}
	// The capped run established more connections than pair-slots that
	// carried data — the waste/churn attribution the report surfaces.
	if ct.QPsEstablished <= ut.QPsEstablished {
		t.Errorf("churn not visible in QPsEstablished: capped %d <= uncapped %d",
			ct.QPsEstablished, ut.QPsEstablished)
	}
}

// dataOnly copies a flow matrix with the control column zeroed: under
// probabilistic fabric faults the control-datagram counts legitimately vary
// (retransmissions are timer-driven), while the data-plane counts are a pure
// function of the application schedule.
func dataOnly(mat [][]obs.FlowEdge) [][]obs.FlowEdge {
	out := make([][]obs.FlowEdge, len(mat))
	for r, edges := range mat {
		for _, e := range edges {
			e.Cells[obs.FlowCtrl] = obs.FlowCell{}
			if e.TotalOps() == 0 {
				continue // edge carried only control traffic
			}
			out[r] = append(out[r], e)
		}
	}
	return out
}

// TestFlowMatrixDataPlaneStableUnderChaos extends the fault-transparency
// invariant (DESIGN.md section 6) to the flow matrix: the data-plane matrix
// and the degree distribution of a run under drops, duplication, flaps and a
// QP cap must be byte-identical to the fault-free run's — resilience may add
// control traffic and virtual time, never application traffic.
func TestFlowMatrixDataPlaneStableUnderChaos(t *testing.T) {
	run := func(faults *ib.FaultInjector) *Result {
		cfg := Config{
			NP: 16, PPN: 8, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
			Faults: faults,
			Obs:    obs.Config{Flows: true},
		}
		if faults != nil {
			cfg.MaxLiveRC = 20
			cfg.Retrans = gasnet.RetransConfig{
				Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
			}
		}
		res, err := Run(cfg, ringApp(5, 1024))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inject := func() *ib.FaultInjector {
		fi := ib.NewFaultInjector(42)
		fi.DropProb = 0.2
		fi.MaxDrops = 100
		fi.DupProb = 0.1
		fi.FlapProb = 0.05
		fi.MaxFlaps = 8
		return fi
	}

	clean := run(nil)
	faulty1 := run(inject())
	faulty2 := run(inject())

	want := dataOnly(clean.FlowMatrix())
	if got := dataOnly(faulty1.FlowMatrix()); !reflect.DeepEqual(got, want) {
		t.Error("data-plane matrix diverged from the fault-free run under chaos")
	}
	if a, b := dataOnly(faulty1.FlowMatrix()), dataOnly(faulty2.FlowMatrix()); !reflect.DeepEqual(a, b) {
		t.Error("data-plane matrix differs across identical seeded chaos runs")
	}

	ct, f1, f2 := BuildTopology(clean), BuildTopology(faulty1), BuildTopology(faulty2)
	if ct.Degree != f1.Degree || f1.Degree != f2.Degree {
		t.Errorf("degree distributions diverged: clean %+v faulty %+v %+v",
			ct.Degree, f1.Degree, f2.Degree)
	}
	if faulty1.TotalLinkFaults() == 0 && faulty1.TotalRetransmits() == 0 {
		t.Error("chaos leg injected nothing; the comparison tested nothing")
	}
}
