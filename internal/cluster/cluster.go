// Package cluster launches simulated OpenSHMEM (and hybrid MPI+OpenSHMEM)
// jobs: it builds the fabric (one HCA per node), the PMI server, and one
// goroutine per PE, each with its own virtual clock starting at the modeled
// process-manager fan-out time. It aggregates per-PE results — start_pes
// breakdowns, job wall time (virtual), endpoint counts, communicating-peer
// counts — which are exactly the quantities the paper's figures plot.
package cluster

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// Config describes a job.
type Config struct {
	// NP is the number of PEs; PPN the PEs per simulated node (default 16,
	// the paper's Cluster-B fill).
	NP  int
	PPN int

	// Mode selects static or on-demand connection management.
	Mode gasnet.Mode
	// BlockingPMI forces blocking PMI even in on-demand mode (ablation).
	BlockingPMI bool
	// SegEx overrides the segment exchange strategy (default follows Mode).
	SegEx shmem.SegExchange
	// GlobalInitBarriers forces global barriers during on-demand init
	// (section IV-E ablation).
	GlobalInitBarriers bool

	// HeapSize is the actual symmetric heap per PE (default 256 KiB);
	// DeclaredHeapSize the size used by the registration cost model
	// (default: HeapSize).
	HeapSize         int
	DeclaredHeapSize int

	// Model overrides the cost model; Faults injects UD and RC faults
	// (drops, duplicates, bounded reordering, link flaps, PE slowdowns,
	// control-frame bit flips).
	Model  *vclock.CostModel
	Faults *ib.FaultInjector

	// PMIFaults injects control-plane faults into the PMI server (slow
	// launcher, dropped/duplicated ops, unavailability windows, a crash
	// that loses un-fenced KVS entries). PMIRetry tunes the client-side
	// retry/timeout/backoff loop that recovers from them (zero fields keep
	// defaults); fault soaks compress it.
	PMIFaults *pmi.FaultInjector
	PMIRetry  pmi.RetryConfig

	// MaxLiveRC caps the live RC queue pairs per HCA: each PE evicts its
	// least-recently-used idle connection before exceeding the cap, and the
	// evicted peer reconnects on demand. Zero means unbounded; on-demand
	// mode only (the fully connected baseline ignores it).
	MaxLiveRC int

	// Resource-exhaustion plane: finite per-adapter budgets. Unlike
	// MaxLiveRC (a soft cap the connection manager polices), these are hard
	// verbs-level limits the adapter itself enforces; the runtimes respond
	// with their degradation ladders (eviction+retry, bounce-buffering,
	// admission rejection) and abort with ExitResourceExhausted only when
	// forward progress is provably impossible. Zero fields are unbounded.
	//
	// QPBudget caps live queue pairs (UD and RC) per HCA; MRBudget caps
	// pinned bytes per HCA; RQDepth bounds each RC queue pair's receive
	// queue (arming receiver-not-ready NAKs and sender credit windows).
	QPBudget int
	MRBudget int64
	RQDepth  int
	// FailQPAllocs / FailMRAllocs schedule injected allocation faults: the
	// Nth (1-based, per adapter) QP or MR allocation attempt fails as if the
	// budget were exhausted. Exercises the degradation ladders without
	// needing a budget tight enough to trip organically.
	FailQPAllocs []int
	FailMRAllocs []int
	// Retrans overrides the conduit's real-time retransmission timing
	// (zero fields keep defaults); fault soaks compress it.
	Retrans gasnet.RetransConfig

	// KillPEs and WedgePEs schedule PE-level faults: a killed PE crashes
	// (fail-stop) at the given virtual time; a wedged PE stops making
	// software progress while its HCA still ACKs at the fabric level.
	KillPEs  []PEFault
	WedgePEs []PEFault

	// Rails is the number of independent network rails (ports per HCA, each
	// on its own switch plane — an independent fault domain). Default 1.
	// Multi-rail enables automatic path migration: RC queue pairs carry a
	// primary and an alternate path, and the connection manager migrates on
	// path error without tearing the connection down.
	Rails int
	// FailPorts, FailRails and Partitions schedule rail-scoped network
	// faults: one HCA port going dark, a whole switch plane dying, and a
	// partition window severing two rank sets on every rail (both sides
	// stay alive but cannot talk until the window heals). All three are
	// virtual-time-scheduled and deterministic, so each injection opens
	// exactly one ledger incident at setup.
	FailPorts  []PortFault
	FailRails  []RailFault
	Partitions []PartitionFault
	// Heartbeat configures the conduit's UD failure detector (zero value:
	// armed automatically only when PE faults are scheduled).
	Heartbeat gasnet.HeartbeatConfig

	// MemstatsEvery, when positive, samples the runtime (live heap bytes,
	// goroutine count) into the engine.* gauge series at that real-time
	// period — the long-soak companion to the boundary census. It requires
	// Obs.Footprint (the census owns the series) and, to be visible, Obs.
	// Gauges.
	MemstatsEvery time.Duration

	// Deadline, when positive, is the job's virtual-time budget; the
	// watchdog terminates the job with exit code 124 when any PE's clock
	// exceeds it. StallTimeout, when positive, terminates the job when no
	// PE makes progress (virtual clocks and fabric deliveries frozen) for
	// that much real time. WatchdogPoll is the check interval (default
	// 20ms real time).
	Deadline     int64
	StallTimeout time.Duration
	WatchdogPoll time.Duration

	// SkipLaunchCost starts clocks at zero instead of the modeled
	// fork/exec fan-out (useful for latency microbenchmarks).
	SkipLaunchCost bool

	// Trace records connection-lifecycle events into Result.Trace
	// (virtual-time-ordered across all PEs). It implies Obs.Events: the
	// trace is a filtered view of the observability plane.
	Trace bool

	// Obs configures the structured observability plane (per-PE multi-layer
	// events, job-wide metric registry). When enabled, Result.Obs exposes
	// the plane for Perfetto export, latency histograms and the startup
	// phase breakdown.
	Obs obs.Config
}

// TraceEvent is one connection-lifecycle event from a traced run.
type TraceEvent struct {
	VT   int64 // virtual time (ns)
	Rank int   // the PE the event occurred on
	Kind string
	Peer int
}

// PEResult is one PE's outcome.
type PEResult struct {
	Rank      int
	Breakdown shmem.InitBreakdown
	InitVT    int64 // start_pes duration (virtual ns)
	FinalVT   int64 // clock when the PE finished Finalize
	Stats     gasnet.Stats
	Peers     int // distinct communicating peers, excluding self

	// ExitCode is the PE's simulated process exit status: 0 on success,
	// 137 crashed, 134 wedged (killed by the launcher), 124 watchdog,
	// otherwise the job-abort code.
	ExitCode int
}

// Result aggregates a job run.
type Result struct {
	Cfg  Config
	PEs  []PEResult
	Wall time.Duration // real time the simulation took

	// JobVT is the modeled job wall clock: launch fan-out through the last
	// PE's finalize plus teardown — what "time ./hello_world" reports.
	JobVT int64

	// Trace holds connection-lifecycle events when Config.Trace was set,
	// deterministically ordered by (virtual time, rank, kind, peer) so two
	// runs of the same causally-serialized job produce identical traces
	// regardless of goroutine scheduling.
	Trace []TraceEvent

	// Obs is the observability plane when Config.Trace or Config.Obs
	// enabled it, else nil.
	Obs *obs.Plane

	// Footprint is the engine self-observability report — census snapshots
	// at every startup boundary and job end, reconciled against measured
	// heap deltas — when Config.Obs.Footprint was set, else nil.
	Footprint *obs.FootprintReport

	// InitAvg and InitMax summarize start_pes across PEs (the paper's
	// initialization-time metric averages over PEs).
	InitAvg int64
	InitMax int64

	HCA []ib.HCAStats

	// Aborted is set when the job terminated abnormally (PE failure,
	// global exit, or watchdog); AbortReason describes why and Dump holds
	// the watchdog's diagnostic state dump when it fired.
	Aborted     bool
	AbortReason string
	Dump        string
}

// AvgPeers returns the mean communicating-peer count (Table I metric).
func (r *Result) AvgPeers() float64 {
	if len(r.PEs) == 0 {
		return 0
	}
	sum := 0
	for _, p := range r.PEs {
		sum += p.Peers
	}
	return float64(sum) / float64(len(r.PEs))
}

// AvgEndpoints returns the mean number of RC endpoints created per PE
// (Figure 9 metric).
func (r *Result) AvgEndpoints() float64 {
	if len(r.PEs) == 0 {
		return 0
	}
	sum := 0
	for _, p := range r.PEs {
		sum += p.Stats.RCQPsCreated
	}
	return float64(sum) / float64(len(r.PEs))
}

// AvgConns returns the mean number of established connections per PE.
func (r *Result) AvgConns() float64 {
	if len(r.PEs) == 0 {
		return 0
	}
	sum := 0
	for _, p := range r.PEs {
		sum += p.Stats.ConnsEstablished
	}
	return float64(sum) / float64(len(r.PEs))
}

// TotalLinkFaults sums the broken-connection detections across PEs.
func (r *Result) TotalLinkFaults() int {
	sum := 0
	for _, p := range r.PEs {
		sum += p.Stats.LinkFaults
	}
	return sum
}

// TotalReconnects sums the connections re-established after a fault or
// eviction across PEs.
func (r *Result) TotalReconnects() int {
	sum := 0
	for _, p := range r.PEs {
		sum += p.Stats.Reconnects
	}
	return sum
}

// TotalEvictions sums the idle connections evicted to honor the live-QP cap
// across PEs.
func (r *Result) TotalEvictions() int {
	sum := 0
	for _, p := range r.PEs {
		sum += p.Stats.Evictions
	}
	return sum
}

// TotalRetransmits sums the UD handshake retransmissions across PEs.
func (r *Result) TotalRetransmits() int {
	sum := 0
	for _, p := range r.PEs {
		sum += p.Stats.Retransmits
	}
	return sum
}

// RunEnvs launches a job but hands each PE its raw substrate environment
// instead of an initialized OpenSHMEM context. Alternative PGAS clients of
// the conduit (the mini-UPC layer, custom runtimes, tests) use it; the body
// is responsible for its own attach/finalize.
func RunEnvs(cfg Config, body func(env shmem.Env)) error {
	if cfg.NP <= 0 {
		return fmt.Errorf("cluster: NP must be positive, got %d", cfg.NP)
	}
	if cfg.PPN <= 0 {
		cfg.PPN = 16
	}
	model := cfg.Model
	if model == nil {
		model = vclock.Default()
	}
	applyRailFaults(&cfg)
	fab := ib.NewFabric(model, cfg.Faults)
	fab.SetRails(cfg.railCount())
	srv := pmi.NewServer(cfg.NP, model)
	srv.SetFaults(cfg.PMIFaults)
	nodes := (cfg.NP + cfg.PPN - 1) / cfg.PPN
	hcas := make([]*ib.HCA, nodes)
	bars := make([]*vclock.VBarrier, nodes)
	limits := cfg.limits()
	for i := 0; i < nodes; i++ {
		hcas[i] = fab.AddHCA()
		if limits != (ib.Limits{}) {
			// Budgets are armed at setup time on a throwaway clock: the slab
			// pre-registration is node bring-up, not any PE's critical path.
			hcas[i].SetLimits(limits, vclock.NewClock(0))
		}
		ppn := cfg.PPN
		if i == nodes-1 {
			ppn = cfg.NP - i*cfg.PPN
		}
		bars[i] = vclock.NewVBarrier(ppn)
	}
	launchVT := int64(0)
	if !cfg.SkipLaunchCost {
		launchVT = model.LaunchCost(cfg.NP, nodes)
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.NP)
	for r := 0; r < cfg.NP; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Errorf("cluster: PE %d panicked: %v\n%s", rank, p, debug.Stack())
				}
			}()
			node := rank / cfg.PPN
			clk := vclock.NewClock(launchVT)
			pmiC := srv.Client(rank, clk)
			pmiC.SetRetry(cfg.PMIRetry)
			body(shmem.Env{
				Rank: rank, NProcs: cfg.NP, Node: node, PPN: cfg.PPN,
				HCA: hcas[node], PMI: pmiC, Clock: clk,
				NodeBarrier: bars[node],
			})
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Run launches the job and executes app on every PE concurrently. It
// returns when every PE has finished and finalized.
func Run(cfg Config, app func(ctx *shmem.Ctx)) (*Result, error) {
	if cfg.NP <= 0 {
		return nil, fmt.Errorf("cluster: NP must be positive, got %d", cfg.NP)
	}
	if cfg.PPN <= 0 {
		cfg.PPN = 16
	}
	if cfg.HeapSize <= 0 {
		cfg.HeapSize = 256 << 10
	}
	model := cfg.Model
	if model == nil {
		model = vclock.Default()
	}
	applyPEFaults(&cfg)
	applyAllocFaults(&cfg)
	applyRailFaults(&cfg)

	obsCfg := cfg.Obs
	if cfg.Trace {
		obsCfg.Events = true
	}
	var plane *obs.Plane
	if obsCfg.Enabled() {
		plane = obs.NewPlane(cfg.NP, obsCfg)
	}
	// The engine census baseline is taken before any job object exists, so
	// later snapshots measure job-owned heap growth only. Every census call
	// below is nil-safe: a disabled footprint plane costs one pointer check.
	census := plane.Census()
	census.Snapshot("baseline", 0)
	// Scheduled PE faults open their incidents at setup: the injection time
	// is the scheduled trigger, known before any PE runs. The failure
	// detector's suspicion/confirmation stamps detection later; the sweep
	// marks them aborted (detection + job abort IS the designed outcome).
	for _, f := range cfg.KillPEs {
		plane.Ledger().Open("pe", "kill", f.Rank, obs.InstJob, f.At)
	}
	for _, f := range cfg.WedgePEs {
		plane.Ledger().Open("pe", "wedge", f.Rank, obs.InstJob, f.At)
	}
	seedRailTelemetry(plane, &cfg)

	fab := ib.NewFabric(model, cfg.Faults)
	fab.SetRails(cfg.railCount())
	srv := pmi.NewServer(cfg.NP, model)
	srv.SetFaults(cfg.PMIFaults)
	nodes := (cfg.NP + cfg.PPN - 1) / cfg.PPN
	hcas := make([]*ib.HCA, nodes)
	bars := make([]*vclock.VBarrier, nodes)
	limits := cfg.limits()
	for i := 0; i < nodes; i++ {
		hcas[i] = fab.AddHCA()
		// Attach the adapter's gauge/ledger hooks before arming budgets so
		// the slab pre-registration is visible to the pinned-bytes gauge.
		hcas[i].AttachObs(plane.Gauges(), plane.Ledger())
		if limits != (ib.Limits{}) {
			// Budgets are armed at setup time on a throwaway clock: the slab
			// pre-registration is node bring-up, not any PE's critical path.
			hcas[i].SetLimits(limits, vclock.NewClock(0))
		}
		ppn := cfg.PPN
		if i == nodes-1 {
			ppn = cfg.NP - i*cfg.PPN
		}
		bars[i] = vclock.NewVBarrier(ppn)
	}

	launchVT := int64(0)
	if !cfg.SkipLaunchCost {
		launchVT = model.LaunchCost(cfg.NP, nodes)
	}

	res := &Result{Cfg: cfg, PEs: make([]PEResult, cfg.NP), Obs: plane}
	clks := make([]*vclock.Clock, cfg.NP)
	for r := 0; r < cfg.NP; r++ {
		clks[r] = vclock.NewClock(launchVT)
	}
	for _, h := range hcas {
		census.Register(h)
	}
	census.Register(srv)
	census.Register(vclockReporter{clks: clks, bars: bars})
	census.Register(engineReporter{res: res})
	census.Snapshot("setup", 0)

	// The init-done census waits for every PE to finish shmem.Attach — the
	// point Fig. 5(a)'s per-PE memory is defined at. Each PE goroutine
	// arrives exactly once (a deferred arrive covers panic paths, so a
	// crashed PE can never strand the barrier), the last arrival triggers
	// the snapshot, and only then are the PEs released into the app: the
	// snapshot must see post-init state, not the first application puts.
	var initWG sync.WaitGroup
	var censusReady chan struct{}
	if census != nil {
		initWG.Add(cfg.NP)
		censusReady = make(chan struct{})
		go func() {
			initWG.Wait()
			census.Snapshot("init-done", maxClockVT(clks))
			close(censusReady)
		}()
	}

	// The -memstats-every soak sampler: wall-clock runtime observations
	// stamped at the engine's current virtual frontier.
	var samplerStop chan struct{}
	if census != nil && cfg.MemstatsEvery > 0 {
		samplerStop = make(chan struct{})
		go func() {
			t := time.NewTicker(cfg.MemstatsEvery)
			defer t.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-t.C:
					census.ObserveRuntime(maxClockVT(clks))
				}
			}
		}()
	}

	wd := newWatchdog(cfg, clks, fab, srv, bars)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.NP)
	for r := 0; r < cfg.NP; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			clk := clks[rank]
			var ctx *shmem.Ctx
			arrived := false
			arrive := func() {
				if censusReady != nil && !arrived {
					arrived = true
					initWG.Done()
				}
			}
			defer func() {
				if p := recover(); p != nil {
					if code, ok := exitCodeForPanic(p); ok {
						// Controlled job abort: record the PE's exit status
						// instead of treating it as a launcher bug.
						pr := PEResult{Rank: rank, ExitCode: code, FinalVT: clk.Now()}
						if ctx != nil {
							pr.Breakdown = ctx.Breakdown()
							pr.InitVT = ctx.InitTime()
							pr.Stats = ctx.Stats()
						}
						res.PEs[rank] = pr
					} else {
						errs <- fmt.Errorf("cluster: PE %d panicked: %v\n%s", rank, p, debug.Stack())
					}
					if ctx != nil {
						// Best-effort finalize so surviving PEs are not
						// stranded in the teardown barrier. A panic inside a
						// collective can still leave peers blocked; the
						// launcher only guarantees recovery for application
						// level panics between collectives.
						func() {
							defer func() { _ = recover() }()
							ctx.Finalize()
						}()
					}
				}
			}()
			// Registered after the recover handler so it runs first on a
			// panic unwind (LIFO): the init barrier is released before the
			// handler's best-effort Finalize can block on peers that are
			// themselves parked on the census gate.
			defer arrive()
			node := rank / cfg.PPN
			pe := plane.PE(rank)
			pe.Span(0, launchVT, obs.LayerCluster, "launch", -1, 0)
			attachVT := clk.Now()
			pmiC := srv.Client(rank, clk)
			pmiC.SetRetry(cfg.PMIRetry)
			ctx = shmem.Attach(shmem.Env{
				Rank: rank, NProcs: cfg.NP, Node: node, PPN: cfg.PPN,
				HCA: hcas[node], PMI: pmiC, Clock: clk,
				NodeBarrier: bars[node],
				Obs:         pe,
			}, shmem.Options{
				Mode: cfg.Mode, BlockingPMI: cfg.BlockingPMI, SegEx: cfg.SegEx,
				HeapSize: cfg.HeapSize, DeclaredHeapSize: cfg.DeclaredHeapSize,
				GlobalInitBarriers: cfg.GlobalInitBarriers,
				MaxLiveRC:          cfg.MaxLiveRC,
				Retrans:            cfg.Retrans,
				Heartbeat:          cfg.Heartbeat,
			})
			pe.Span(attachVT, clk.Now(), obs.LayerCluster, "init", -1, 0)
			wd.register(rank, ctx.Conduit())
			census.Register(ctx.Conduit())
			census.Register(ctx)
			arrive()
			if censusReady != nil {
				// Hold every PE at the init boundary until the census has
				// read post-attach state. Pure real-time synchronization: no
				// clock advances, so virtual-time results are unchanged.
				<-censusReady
			}
			appVT := clk.Now()
			app(ctx)
			pe.Span(appVT, clk.Now(), obs.LayerCluster, "app", -1, 0)
			// Snapshot resource counters before finalize so Table I / Fig. 9
			// metrics reflect the application, not the teardown barrier.
			stats := ctx.Stats()
			peers := ctx.CommunicatingPeers()
			finVT := clk.Now()
			ctx.Finalize()
			pe.Span(finVT, clk.Now(), obs.LayerCluster, "finalize", -1, 0)
			exit := 0
			if err := ctx.Err(); err != nil {
				// The job aborted but this PE was never blocked on the dead
				// peer; it still exits nonzero, like a process killed by the
				// launcher during teardown.
				if code, ok := exitCodeForErr(err); ok {
					exit = code
				} else {
					exit = 1
				}
			}
			res.PEs[rank] = PEResult{
				Rank:      rank,
				Breakdown: ctx.Breakdown(),
				InitVT:    ctx.InitTime(),
				FinalVT:   clk.Now(),
				Stats:     stats,
				Peers:     peers,
				ExitCode:  exit,
			}
		}(r)
	}
	wg.Wait()
	wd.stop()
	if samplerStop != nil {
		close(samplerStop)
	}
	res.Wall = time.Since(start)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	if n, ok := srv.Aborted(); ok {
		res.Aborted = true
		res.AbortReason = n.Reason
	}
	if fired, reason, dump := wd.result(); fired {
		res.Aborted = true
		res.AbortReason = reason
		res.Dump = dump
	}
	for _, p := range res.PEs {
		if p.ExitCode != 0 {
			res.Aborted = true
		}
	}

	var initSum, initMax, finalMax int64
	for _, p := range res.PEs {
		initSum += p.InitVT
		if p.InitVT > initMax {
			initMax = p.InitVT
		}
		if p.FinalVT > finalMax {
			finalMax = p.FinalVT
		}
	}
	res.InitAvg = initSum / int64(cfg.NP)
	res.InitMax = initMax
	res.JobVT = finalMax + model.TeardownBase
	for _, h := range fab.HCAs() {
		res.HCA = append(res.HCA, h.Stats())
	}
	if cfg.Trace {
		// The trace is the connection-lifecycle slice of the plane's event
		// stream. Events() returns it under the full deterministic sort key
		// (VT, rank, layer, kind, peer), fixing the old VT-only ordering that
		// left same-VT events in schedule-dependent order.
		for _, e := range plane.Events() {
			if isConnLifecycle(e) {
				res.Trace = append(res.Trace, TraceEvent{VT: e.VT, Rank: e.Rank, Kind: e.Kind, Peer: e.Peer})
			}
		}
	}
	// Resolve incidents still open at job end before any report is built:
	// the sweep is what turns leftover-open into closed/aborted/unresolved,
	// and the registry mirror below wants final timestamps.
	plane.Ledger().Sweep(res.JobVT, res.Aborted)
	// The job-end census is taken before the registry mirrors below so the
	// mirrored counters cannot perturb the measured heap. Its forced
	// collection also subsumes the old unconditional post-job runtime.GC():
	// with engine telemetry off, plain runs no longer pay a forced
	// collection at all — O(NP^2) dead protocol objects after large static
	// jobs are left to the normal GC pacer (and sweep callers that care run
	// with the census on, where the collection doubles as measurement).
	census.Snapshot("job-end", res.JobVT)
	res.Footprint = census.BuildReport()
	mirrorCounters(plane, res)
	mirrorIncidents(plane)
	return res, nil
}
