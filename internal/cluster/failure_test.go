package cluster

import (
	"strings"
	"testing"
	"time"

	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// runBounded runs the job in a goroutine and fails the test if it does not
// terminate within the bound — the acceptance criterion is that an injected
// PE failure never hangs the launcher.
func runBounded(t *testing.T, cfg Config, app func(c *shmem.Ctx)) *Result {
	t.Helper()
	return runBoundedFor(t, cfg, 30*time.Second, app)
}

// runBoundedFor is runBounded with an explicit real-time bound, for soaks
// whose workload legitimately needs longer under the race detector.
func runBoundedFor(t *testing.T, cfg Config, bound time.Duration, app func(c *shmem.Ctx)) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg, app)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run: %v", o.err)
		}
		return o.res
	case <-time.After(bound):
		t.Fatalf("job hung: Run did not terminate within %v despite injected fault", bound)
		return nil
	}
}

// computeBarrierLoop is the canonical victim workload: alternating compute
// phases and global barriers, so every PE regularly passes through the
// conduit (where fate schedules and liveness errors are observed).
func computeBarrierLoop(iters int, flops float64) func(c *shmem.Ctx) {
	return func(c *shmem.Ctx) {
		for i := 0; i < iters; i++ {
			c.Compute(flops)
			c.BarrierAll()
		}
	}
}

// TestKillPETerminatesJobWithExitCodes injects a fail-stop crash mid-job and
// verifies the whole job terminates in bounded time with launcher-style exit
// codes: 137 for the crashed PE, nonzero for every stranded survivor.
func TestKillPETerminatesJobWithExitCodes(t *testing.T) {
	const np, victim = 8, 5
	cfg := Config{
		NP: np, PPN: 4, Mode: gasnet.OnDemand, HeapSize: 1 << 20,
		KillPEs: []PEFault{{Rank: victim, At: 1 * vclock.Second}},
		Heartbeat: gasnet.HeartbeatConfig{
			Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2,
		},
		Retrans: gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		},
	}
	// 300 x 10ms virtual = 3s of virtual work; the victim crashes at 1s.
	res := runBounded(t, cfg, computeBarrierLoop(300, 2.5e7))

	if !res.Aborted {
		t.Fatal("job with a killed PE did not report Aborted")
	}
	if res.AbortReason == "" {
		t.Error("aborted job has empty AbortReason")
	}
	if got := res.PEs[victim].ExitCode; got != ExitKilled {
		t.Errorf("killed PE exit code = %d, want %d", got, ExitKilled)
	}
	for _, p := range res.PEs {
		if p.ExitCode == 0 {
			t.Errorf("pe %d exited 0 from an aborted job", p.Rank)
		}
	}
	c := res.Counters()
	if c.PEFailures < 1 {
		t.Errorf("PEFailures = %d, want >= 1", c.PEFailures)
	}
	if c.HeartbeatsSent == 0 {
		t.Error("no heartbeats sent while confirming a dead PE")
	}
	if c.AbortsPropagated == 0 {
		t.Error("no abort propagation recorded")
	}
}

// TestWatchdogStallFiresOnWedgedJob disables the failure detector so a
// wedged PE genuinely hangs the job, then verifies the stalled-progress
// watchdog terminates it: exit code 124 for stranded survivors, 134 for the
// wedged PE (killed by the launcher), and a non-empty diagnostic dump.
func TestWatchdogStallFiresOnWedgedJob(t *testing.T) {
	const np, victim = 8, 2
	cfg := Config{
		NP: np, PPN: 4, Mode: gasnet.OnDemand, HeapSize: 1 << 20,
		WedgePEs:     []PEFault{{Rank: victim, At: 1 * vclock.Second}},
		Heartbeat:    gasnet.HeartbeatConfig{Disable: true},
		StallTimeout: 250 * time.Millisecond,
		WatchdogPoll: 10 * time.Millisecond,
	}
	res := runBounded(t, cfg, computeBarrierLoop(300, 2.5e7))

	if !res.Aborted {
		t.Fatal("wedged job did not report Aborted")
	}
	if !strings.Contains(res.AbortReason, "watchdog") {
		t.Errorf("abort reason %q does not mention the watchdog", res.AbortReason)
	}
	if res.Dump == "" {
		t.Error("watchdog fired without a diagnostic state dump")
	}
	if !strings.Contains(res.Dump, "wedged") {
		t.Errorf("state dump does not identify the wedged PE:\n%s", res.Dump)
	}
	if got := res.PEs[victim].ExitCode; got != ExitWedged && got != ExitWatchdog {
		t.Errorf("wedged PE exit code = %d, want %d or %d", got, ExitWedged, ExitWatchdog)
	}
	for _, p := range res.PEs {
		if p.Rank == victim {
			continue
		}
		if p.ExitCode != ExitWatchdog {
			t.Errorf("pe %d exit code = %d, want %d (watchdog)", p.Rank, p.ExitCode, ExitWatchdog)
		}
	}
}

// TestWatchdogDeadlineFires arms only the virtual-time deadline: a job whose
// compute loop runs past the budget is terminated even though it is making
// progress, and PEs that notice the abort via Err() exit 124.
func TestWatchdogDeadlineFires(t *testing.T) {
	cfg := Config{
		NP: 4, PPN: 4, Mode: gasnet.OnDemand, HeapSize: 1 << 20,
		Deadline:     500 * vclock.Millisecond,
		WatchdogPoll: 5 * time.Millisecond,
	}
	res := runBounded(t, cfg, func(c *shmem.Ctx) {
		// 10s of virtual compute against a 0.5s deadline; poll Err so the
		// abort is observed between phases, as a cooperative app would. The
		// real-time sleep paces the loop so the watchdog's poller can see
		// the virtual clock cross the deadline while the job still runs.
		for i := 0; i < 1000 && c.Err() == nil; i++ {
			c.Compute(2.5e7)
			time.Sleep(time.Millisecond)
		}
	})
	if !res.Aborted {
		t.Fatal("job past its deadline did not report Aborted")
	}
	if !strings.Contains(res.AbortReason, "deadline") {
		t.Errorf("abort reason %q does not mention the deadline", res.AbortReason)
	}
	for _, p := range res.PEs {
		if p.ExitCode != ExitWatchdog {
			t.Errorf("pe %d exit code = %d, want %d", p.Rank, p.ExitCode, ExitWatchdog)
		}
	}
}

// TestFaultFreeJobHasZeroFailureCounters is the cluster-level happy-path
// guard: a clean run must show no detector or abort activity and all-zero
// exit codes.
func TestFaultFreeJobHasZeroFailureCounters(t *testing.T) {
	cfg := Config{NP: 8, PPN: 4, Mode: gasnet.OnDemand, HeapSize: 1 << 20}
	res := runBounded(t, cfg, computeBarrierLoop(20, 2.5e7))
	if res.Aborted {
		t.Fatalf("fault-free job reported Aborted: %s", res.AbortReason)
	}
	c := res.Counters()
	if c.PEFailures != 0 || c.HeartbeatsSent != 0 || c.FalseSuspicions != 0 || c.AbortsPropagated != 0 {
		t.Errorf("fault-free run shows failure-detector activity: %+v", c)
	}
	for _, p := range res.PEs {
		if p.ExitCode != 0 {
			t.Errorf("pe %d exit code = %d on a clean run", p.Rank, p.ExitCode)
		}
	}
}
