package cluster

import (
	"strings"

	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
)

// isConnLifecycle selects the conduit's connection-lifecycle and failure
// plane events out of the full gasnet-layer stream (which also carries
// ud-send/ud-recv datagrams, connect spans and heartbeat traffic). These are
// the events Result.Trace has always exposed.
func isConnLifecycle(e obs.Event) bool {
	if e.Layer != obs.LayerGasnet || e.Dur != 0 {
		return false
	}
	if strings.HasPrefix(e.Kind, "conn-") {
		return true
	}
	switch e.Kind {
	case "pe-fail", "suspect", "suspect-clear", "confirm-dead", "abort",
		"path-migrate", "rail-failover",
		"partition-suspend", "partition-heal", "partition-fatal":
		return true
	}
	return false
}

// mirrorCounters publishes the per-PE conduit counters and the per-HCA verbs
// counters into the plane's metric registry after the run. Mirroring once at
// the end keeps the hot path free of double accounting: the layers keep
// their existing cheap struct counters, and the registry is the generic
// aggregated view the CLI reports from.
func mirrorCounters(plane *obs.Plane, res *Result) {
	if plane == nil || !plane.Config().Metrics {
		return
	}
	var t gasnet.Stats
	for _, p := range res.PEs {
		s := p.Stats
		t.QPsCreated += s.QPsCreated
		t.RCQPsCreated += s.RCQPsCreated
		t.ConnsEstablished += s.ConnsEstablished
		t.Retransmits += s.Retransmits
		t.AMsSent += s.AMsSent
		t.PutsIssued += s.PutsIssued
		t.GetsIssued += s.GetsIssued
		t.AtomicsIssued += s.AtomicsIssued
		t.BytesPut += s.BytesPut
		t.BytesGot += s.BytesGot
		t.LinkFaults += s.LinkFaults
		t.Reconnects += s.Reconnects
		t.Evictions += s.Evictions
		t.PEFailures += s.PEFailures
		t.HeartbeatsSent += s.HeartbeatsSent
		t.FalseSuspicions += s.FalseSuspicions
		t.AbortsPropagated += s.AbortsPropagated
		t.PMIRetries += s.PMIRetries
		t.PMITimeouts += s.PMITimeouts
		t.FallbackExchanges += s.FallbackExchanges
		t.CorruptFrames += s.CorruptFrames
		t.CreditStalls += s.CreditStalls
		t.RNRNaks += s.RNRNaks
		t.AllocFailures += s.AllocFailures
		t.BounceFallbacks += s.BounceFallbacks
		t.AdmissionRejects += s.AdmissionRejects
		t.RCCorruptFrames += s.RCCorruptFrames
		t.TornWrites += s.TornWrites
		t.DupOpsSuppressed += s.DupOpsSuppressed
		t.IntegrityRetransmits += s.IntegrityRetransmits
		t.PathMigrations += s.PathMigrations
		t.RailFailovers += s.RailFailovers
		t.PartitionSuspensions += s.PartitionSuspensions
		t.PartitionHeals += s.PartitionHeals
	}
	reg := plane.Registry()
	reg.Counter("gasnet.qps_created").Add(int64(t.QPsCreated))
	reg.Counter("gasnet.rc_qps_created").Add(int64(t.RCQPsCreated))
	reg.Counter("gasnet.conns_established").Add(int64(t.ConnsEstablished))
	reg.Counter("gasnet.retransmits").Add(int64(t.Retransmits))
	reg.Counter("gasnet.ams_sent").Add(t.AMsSent)
	reg.Counter("gasnet.puts_issued").Add(t.PutsIssued)
	reg.Counter("gasnet.gets_issued").Add(t.GetsIssued)
	reg.Counter("gasnet.atomics_issued").Add(t.AtomicsIssued)
	reg.Counter("gasnet.bytes_put").Add(t.BytesPut)
	reg.Counter("gasnet.bytes_got").Add(t.BytesGot)
	reg.Counter("gasnet.link_faults").Add(int64(t.LinkFaults))
	reg.Counter("gasnet.reconnects").Add(int64(t.Reconnects))
	reg.Counter("gasnet.evictions").Add(int64(t.Evictions))
	reg.Counter("gasnet.pe_failures").Add(int64(t.PEFailures))
	reg.Counter("gasnet.heartbeats_sent").Add(int64(t.HeartbeatsSent))
	reg.Counter("gasnet.false_suspicions").Add(int64(t.FalseSuspicions))
	reg.Counter("gasnet.aborts_propagated").Add(int64(t.AbortsPropagated))
	reg.Counter("pmi.retries").Add(int64(t.PMIRetries))
	reg.Counter("pmi.timeouts").Add(int64(t.PMITimeouts))
	reg.Counter("gasnet.fallback_exchanges").Add(int64(t.FallbackExchanges))
	reg.Counter("gasnet.corrupt_frames").Add(int64(t.CorruptFrames))
	reg.Counter("gasnet.credit_stalls").Add(int64(t.CreditStalls))
	reg.Counter("gasnet.rnr_naks").Add(int64(t.RNRNaks))
	reg.Counter("gasnet.alloc_failures").Add(int64(t.AllocFailures))
	reg.Counter("gasnet.bounce_fallbacks").Add(int64(t.BounceFallbacks))
	reg.Counter("gasnet.admission_rejects").Add(int64(t.AdmissionRejects))
	reg.Counter("gasnet.rc_corrupt_frames").Add(int64(t.RCCorruptFrames))
	reg.Counter("gasnet.torn_writes").Add(int64(t.TornWrites))
	reg.Counter("gasnet.dup_ops_suppressed").Add(int64(t.DupOpsSuppressed))
	reg.Counter("gasnet.integrity_retransmits").Add(int64(t.IntegrityRetransmits))
	reg.Counter("gasnet.path_migrations").Add(int64(t.PathMigrations))
	reg.Counter("gasnet.rail_failovers").Add(int64(t.RailFailovers))
	reg.Counter("gasnet.partition_suspensions").Add(int64(t.PartitionSuspensions))
	reg.Counter("gasnet.partition_heals").Add(int64(t.PartitionHeals))
	for _, h := range res.HCA {
		reg.Counter("ib.qps_created_ud").Add(h.QPsCreatedUD)
		reg.Counter("ib.qps_created_rc").Add(h.QPsCreatedRC)
		reg.Counter("ib.rc_established").Add(h.RCEstablished)
		reg.Counter("ib.live_rc").Add(h.LiveRC)
		reg.Counter("ib.msgs_delivered").Add(h.MsgsDelivered)
		reg.Counter("ib.bytes_delivered").Add(h.BytesDelivered)
		reg.Counter("ib.cache_misses").Add(h.CacheMisses)
		reg.Counter("ib.mrs_registered").Add(h.MRsRegistered)
		reg.Counter("ib.bytes_pinned").Add(h.BytesPinned)
		reg.Counter("ib.alloc_failures").Add(h.AllocFailures)
		reg.Counter("ib.rnr_naks").Add(h.RNRNaks)
		reg.Counter("ib.bounced_mrs").Add(h.BouncedMRs)
	}
}

// mirrorIncidents publishes the swept ledger's detection-latency and MTTR
// samples into the metric registry as per-(class, kind) histograms, so the
// generic -metrics machinery (and its JSON serialization) carries MTTR
// attribution without a bespoke code path. Runs after Ledger.Sweep: only
// resolved incidents have final timestamps.
func mirrorIncidents(plane *obs.Plane) {
	if plane == nil || !plane.Config().Metrics {
		return
	}
	led := plane.Ledger()
	if led == nil {
		return
	}
	reg := plane.Registry()
	for _, in := range led.Snapshot() {
		if in.State != obs.IncidentClosed && in.State != obs.IncidentAborted {
			continue
		}
		key := in.Class + "-" + in.Kind
		reg.Hist("incident.detect_ns." + key).Record(in.DetectLatency())
		reg.Hist("incident.mttr_ns." + key).Record(in.MTTR())
	}
}
