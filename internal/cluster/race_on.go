//go:build race

package cluster

// raceEnabled reports whether this binary was built with the race detector.
// A few tests assert byte-identical traces or exact failure classifications
// that hold under production scheduling but not under the detector's heavy
// scheduling perturbation; they skip themselves when this is set.
const raceEnabled = true
