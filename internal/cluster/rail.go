package cluster

import (
	"goshmem/internal/ib"
	"goshmem/internal/obs"
)

// PortFault schedules one HCA port going dark: the adapter with the given
// LID loses its port on one rail at virtual time At (permanently). Paths
// from or to that adapter over that rail are blocked; its other ports and
// every other adapter stay reachable.
type PortFault struct {
	LID  uint16
	Rail int
	At   int64 // virtual time (ns)
}

// RailFault schedules a whole-rail failure: the rail's switch plane dies at
// virtual time At (permanently), blocking every path over it fabric-wide.
type RailFault struct {
	Rail int
	At   int64 // virtual time (ns)
}

// PartitionFault schedules a network partition window: connectivity between
// rank sets A and B is severed on every rail during [At, Heal). Both sides
// stay alive but cannot talk; Heal < 0 means the partition never heals and
// the job exits with ExitPartitioned once the detector's patience runs out.
type PartitionFault struct {
	A, B []int // PE ranks (mapped to their nodes' adapters)
	At   int64 // virtual time (ns)
	Heal int64 // virtual time (ns); < 0 = permanent
}

// railCount returns the configured rail count, clamped to at least one.
func (cfg *Config) railCount() int {
	if cfg.Rails < 1 {
		return 1
	}
	return cfg.Rails
}

// netFaulted reports whether any rail-scoped network fault is scheduled.
func (cfg *Config) netFaulted() bool {
	return len(cfg.FailPorts)+len(cfg.FailRails)+len(cfg.Partitions) > 0
}

// lids maps PE ranks to the LIDs of their nodes' adapters (AddHCA assigns
// LIDs sequentially from 1, one per node), deduplicated in first-appearance
// order: a partition severs whole nodes, so co-located ranks fold together.
func (cfg *Config) lids(ranks []int) []uint16 {
	seen := make(map[uint16]bool, len(ranks))
	out := make([]uint16, 0, len(ranks))
	for _, r := range ranks {
		lid := uint16(r/cfg.PPN + 1)
		if !seen[lid] {
			seen[lid] = true
			out = append(out, lid)
		}
	}
	return out
}

// applyRailFaults installs the port/rail/partition schedules into the fault
// injector, creating one if the config has none.
func applyRailFaults(cfg *Config) {
	if !cfg.netFaulted() {
		return
	}
	if cfg.Faults == nil {
		cfg.Faults = ib.NewFaultInjector(1)
	}
	for _, f := range cfg.FailPorts {
		cfg.Faults.FailPort(f.LID, f.Rail, f.At)
	}
	for _, f := range cfg.FailRails {
		cfg.Faults.FailRail(f.Rail, f.At)
	}
	for _, p := range cfg.Partitions {
		cfg.Faults.Partition(cfg.lids(p.A), cfg.lids(p.B), p.At, p.Heal)
	}
}

// seedRailTelemetry pre-opens the "net" incidents and pre-records the
// schedule-driven per-rail gauges. Network faults are virtual-time schedules,
// fully known at setup: the injection time is the scheduled trigger, so the
// incident opens here (detection is stamped later by the conduits' recovery
// ladder) and the topology gauges are exact regardless of traffic. Instance
// keys keep concurrent faults distinct: a rail failure uses the rail index, a
// port failure packs (LID, rail) into one int, partitions are job-scoped
// (their heal closes all of them symmetrically).
func seedRailTelemetry(plane *obs.Plane, cfg *Config) {
	rails := cfg.railCount()
	if rails == 1 && !cfg.netFaulted() {
		return // single-rail fault-free run: no rail telemetry to seed
	}
	led := plane.Ledger()
	for _, f := range cfg.FailPorts {
		led.Open("net", "port-down", -1, int(f.LID)<<8|f.Rail, f.At)
	}
	for _, f := range cfg.FailRails {
		led.Open("net", "rail-down", -1, f.Rail, f.At)
	}
	for _, p := range cfg.Partitions {
		led.Open("net", "partition", -1, obs.InstJob, p.At)
	}
	g := plane.Gauges()
	for r := 0; r < rails; r++ {
		g.Gauge("net.rail_up", obs.InstRail(r)).Add(0, 1)
	}
	for _, f := range cfg.FailRails {
		g.Gauge("net.rail_up", obs.InstRail(f.Rail)).Add(f.At, -1)
	}
	for _, f := range cfg.FailPorts {
		g.Gauge("net.ports_down", obs.InstRail(f.Rail)).Add(f.At, 1)
	}
	for _, p := range cfg.Partitions {
		g.Gauge("net.partitions_active", obs.InstJob).Add(p.At, 1)
		if p.Heal >= 0 {
			g.Gauge("net.partitions_active", obs.InstJob).Add(p.Heal, -1)
		}
	}
}
