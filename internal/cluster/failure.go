package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/pmi"
	"goshmem/internal/vclock"
)

// PEFault schedules a PE-level fault: the PE crashes (KillPEs) or wedges
// (WedgePEs) the first time its virtual clock reaches At nanoseconds.
type PEFault struct {
	Rank int
	At   int64 // virtual time (ns)
}

// Exit codes the launcher assigns to PEs of an aborted job, following the
// conventions of POSIX job launchers: 128+SIGKILL for a crashed process,
// 128+SIGABRT for a wedged one killed by the launcher, 124 (the timeout(1)
// convention) for a watchdog termination, and the abort code otherwise.
const (
	ExitKilled   = 137 // 128 + SIGKILL: PE crashed (fail-stop)
	ExitWedged   = 134 // 128 + SIGABRT: PE wedged, killed by the launcher
	ExitWatchdog = 124 // hung-job watchdog deadline/stall termination
	// ExitPMIFail: the out-of-band control plane failed permanently (PMI
	// retry budgets exhausted, no fallback left). Raised by the conduit;
	// re-exported here so launcher-side code has all codes in one place.
	ExitPMIFail = gasnet.ExitPMIFailure
	// ExitResourceExhausted: a finite adapter budget left a PE with provably
	// no path to forward progress after every degradation rung was tried.
	ExitResourceExhausted = gasnet.ExitResourceExhausted
	// ExitPartitioned: a peer was unreachable on every rail with no scheduled
	// heal, and the failure detector's bounded patience ran out. Distinct from
	// 1 (peer confirmed dead) and 124 (watchdog): the peer was alive but
	// unreachable, and the job chose to exit rather than wait forever.
	ExitPartitioned = gasnet.ExitPartitioned
)

// exitCodeForErr classifies a liveness error into a per-PE exit code.
// Returns ok=false when err is not part of the failure plane.
func exitCodeForErr(err error) (int, bool) {
	if err == nil {
		return 0, false
	}
	var ce *gasnet.CrashError
	if errors.As(err, &ce) {
		return ExitKilled, true
	}
	var we *gasnet.WedgeError
	if errors.As(err, &we) {
		return ExitWedged, true
	}
	var ae *gasnet.AbortError
	if errors.As(err, &ae) {
		if ae.Code == 0 {
			return 1, true
		}
		return ae.Code, true
	}
	if errors.Is(err, gasnet.ErrPeerDead) {
		return 1, true
	}
	return 0, false
}

// exitCodeForPanic classifies a recovered panic value; the runtime layers
// panic with wrapped liveness errors on controlled job aborts.
func exitCodeForPanic(p any) (int, bool) {
	err, ok := p.(error)
	if !ok {
		return 0, false
	}
	return exitCodeForErr(err)
}

// Counters is the unified failure/resilience counter block aggregated across
// all PEs — one table for the oshrun report instead of ad-hoc blocks.
type Counters struct {
	LinkFaults       int // broken connections detected
	Reconnects       int // connections re-established after fault/eviction
	Evictions        int // idle connections evicted under the QP cap
	Retransmits      int // UD handshake retransmissions
	PEFailures       int // peers confirmed dead by the failure detector
	HeartbeatsSent   int // explicit liveness probes sent
	FalseSuspicions  int // suspicions cleared by later traffic
	AbortsPropagated int // abort datagrams fanned out to peers

	// Control-plane leg (PMI resilience and checksummed UD control frames).
	PMIRetries        int // PMI ops retried after a transient fault
	PMITimeouts       int // PMI ops that failed permanently
	FallbackExchanges int // Iallgather exchanges degraded to Put-Fence-Get
	CorruptFrames     int // UD control frames discarded by checksum

	// Resource-exhaustion leg (finite adapter budgets and backpressure).
	CreditStalls     int // sends that blocked on a zero receive-credit window
	RNRNaks          int // sends NAKed receiver-not-ready and retried
	AllocFailures    int // QP/MR allocations refused (budget or injected)
	BounceFallbacks  int // heap registrations degraded to bounce-buffering
	AdmissionRejects int // connection REQs rejected at a QP cap

	// Data-plane integrity leg (RC payload faults and exactly-once recovery).
	RCCorruptFrames      int // RC payloads damaged in flight and detected
	TornWrites           int // RDMA writes torn mid-transfer by link faults
	DupOpsSuppressed     int // duplicate framed ops suppressed by dedup ledgers
	IntegrityRetransmits int // framed sends replayed after NAK/RTO/reconnect

	// Multi-rail leg (path migration and partition tolerance).
	PathMigrations       int // RC paths migrated to the alternate rail (APM)
	RailFailovers        int // connections rebuilt on another rail after APM failed
	PartitionSuspensions int // peers suspended as partitioned instead of declared dead
	PartitionHeals       int // suspended peers that came back after their partition healed
}

// Counters sums the per-PE failure/resilience counters.
func (r *Result) Counters() Counters {
	var c Counters
	for _, p := range r.PEs {
		c.LinkFaults += p.Stats.LinkFaults
		c.Reconnects += p.Stats.Reconnects
		c.Evictions += p.Stats.Evictions
		c.Retransmits += p.Stats.Retransmits
		c.PEFailures += p.Stats.PEFailures
		c.HeartbeatsSent += p.Stats.HeartbeatsSent
		c.FalseSuspicions += p.Stats.FalseSuspicions
		c.AbortsPropagated += p.Stats.AbortsPropagated
		c.PMIRetries += p.Stats.PMIRetries
		c.PMITimeouts += p.Stats.PMITimeouts
		c.FallbackExchanges += p.Stats.FallbackExchanges
		c.CorruptFrames += p.Stats.CorruptFrames
		c.CreditStalls += p.Stats.CreditStalls
		c.RNRNaks += p.Stats.RNRNaks
		c.AllocFailures += p.Stats.AllocFailures
		c.BounceFallbacks += p.Stats.BounceFallbacks
		c.AdmissionRejects += p.Stats.AdmissionRejects
		c.RCCorruptFrames += p.Stats.RCCorruptFrames
		c.TornWrites += p.Stats.TornWrites
		c.DupOpsSuppressed += p.Stats.DupOpsSuppressed
		c.IntegrityRetransmits += p.Stats.IntegrityRetransmits
		c.PathMigrations += p.Stats.PathMigrations
		c.RailFailovers += p.Stats.RailFailovers
		c.PartitionSuspensions += p.Stats.PartitionSuspensions
		c.PartitionHeals += p.Stats.PartitionHeals
	}
	return c
}

// applyPEFaults installs the kill/wedge schedules into the fault injector,
// creating one if the config has none.
func applyPEFaults(cfg *Config) {
	if len(cfg.KillPEs)+len(cfg.WedgePEs) == 0 {
		return
	}
	if cfg.Faults == nil {
		cfg.Faults = ib.NewFaultInjector(1)
	}
	for _, f := range cfg.KillPEs {
		cfg.Faults.KillPE(f.Rank, f.At)
	}
	for _, f := range cfg.WedgePEs {
		cfg.Faults.WedgePE(f.Rank, f.At)
	}
}

// limits assembles the per-adapter budget block; the zero value leaves the
// whole resource plane disarmed.
func (cfg *Config) limits() ib.Limits {
	return ib.Limits{MaxQPs: cfg.QPBudget, MaxMRBytes: cfg.MRBudget, RQDepth: cfg.RQDepth}
}

// applyAllocFaults installs the injected Nth-allocation fault schedules into
// the fault injector, creating one if the config has none.
func applyAllocFaults(cfg *Config) {
	if len(cfg.FailQPAllocs)+len(cfg.FailMRAllocs) == 0 {
		return
	}
	if cfg.Faults == nil {
		cfg.Faults = ib.NewFaultInjector(1)
	}
	cfg.Faults.FailQPAllocOn(cfg.FailQPAllocs...)
	cfg.Faults.FailMRAllocOn(cfg.FailMRAllocs...)
}

// watchdog is the hung-job detector: it fires when the job's virtual time
// exceeds a deadline or when no PE makes progress (virtual clocks and fabric
// deliveries frozen) for a stretch of real time, then dumps diagnostic state
// and terminates every PE with the watchdog exit code.
type watchdog struct {
	deadline int64         // virtual-time budget (0 = none)
	stall    time.Duration // real-time progress timeout (0 = none)
	poll     time.Duration

	clks []*vclock.Clock
	fab  *ib.Fabric
	srv  *pmi.Server
	bars []*vclock.VBarrier

	mu       sync.Mutex
	conduits map[int]*gasnet.Conduit
	fired    bool
	reason   string
	dump     string

	done chan struct{}
}

func newWatchdog(cfg Config, clks []*vclock.Clock, fab *ib.Fabric, srv *pmi.Server, bars []*vclock.VBarrier) *watchdog {
	if cfg.Deadline <= 0 && cfg.StallTimeout <= 0 {
		return nil
	}
	poll := cfg.WatchdogPoll
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	w := &watchdog{
		deadline: cfg.Deadline, stall: cfg.StallTimeout, poll: poll,
		clks: clks, fab: fab, srv: srv, bars: bars,
		conduits: make(map[int]*gasnet.Conduit),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

// register hands the watchdog one PE's conduit once it exists. If the
// watchdog already fired, the late arrival is aborted immediately.
func (w *watchdog) register(rank int, c *gasnet.Conduit) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.conduits[rank] = c
	fired, reason := w.fired, w.reason
	w.mu.Unlock()
	if fired {
		c.AbortLocal(&gasnet.AbortError{Origin: -1, Dead: -1, Code: ExitWatchdog, Reason: reason})
	}
}

func (w *watchdog) stop() {
	if w == nil {
		return
	}
	close(w.done)
}

// Fired reports whether the watchdog terminated the job, and why.
func (w *watchdog) result() (fired bool, reason, dump string) {
	if w == nil {
		return false, "", ""
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired, w.reason, w.dump
}

func (w *watchdog) maxVT() int64 {
	var m int64
	for _, clk := range w.clks {
		if t := clk.Now(); t > m {
			m = t
		}
	}
	return m
}

// progress is a monotone signature of job activity: total virtual time plus
// total fabric deliveries. A wedged or deadlocked job freezes it.
func (w *watchdog) progress() int64 {
	var sig int64
	for _, clk := range w.clks {
		sig += clk.Now()
	}
	for _, h := range w.fab.HCAs() {
		sig += h.Stats().MsgsDelivered
	}
	return sig
}

func (w *watchdog) run() {
	ticker := time.NewTicker(w.poll)
	defer ticker.Stop()
	lastSig := w.progress()
	lastChange := time.Now()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
		}
		w.mu.Lock()
		fired := w.fired
		w.mu.Unlock()
		if fired {
			// Keep sweeping so conduits registered after the firing (PEs
			// still inside Attach) are aborted too.
			w.abortAll()
			continue
		}
		if w.deadline > 0 {
			if vt := w.maxVT(); vt > w.deadline {
				w.fire(fmt.Sprintf("watchdog: job exceeded virtual-time deadline (%.3fs > %.3fs)",
					vclock.Seconds(vt), vclock.Seconds(w.deadline)))
				continue
			}
		}
		if w.stall > 0 {
			if sig := w.progress(); sig != lastSig {
				lastSig = sig
				lastChange = time.Now()
			} else if time.Since(lastChange) >= w.stall {
				w.fire(fmt.Sprintf("watchdog: no progress (virtual clocks and fabric deliveries frozen) for %v", w.stall))
			}
		}
	}
}

func (w *watchdog) fire(reason string) {
	w.mu.Lock()
	if w.fired {
		w.mu.Unlock()
		return
	}
	w.fired = true
	w.reason = reason
	w.mu.Unlock()

	// Capture diagnostics before tearing anything down.
	dump := w.buildDump(reason)
	w.mu.Lock()
	w.dump = dump
	w.mu.Unlock()

	w.srv.RaiseAbort(pmi.AbortNotice{Origin: -1, Dead: -1, Code: ExitWatchdog, Reason: reason})
	for _, b := range w.bars {
		b.Abort()
	}
	w.abortAll()
}

func (w *watchdog) abortAll() {
	w.mu.Lock()
	reason := w.reason
	cs := make([]*gasnet.Conduit, 0, len(w.conduits))
	for _, c := range w.conduits {
		cs = append(cs, c)
	}
	w.mu.Unlock()
	for _, c := range cs {
		c.AbortLocal(&gasnet.AbortError{Origin: -1, Dead: -1, Code: ExitWatchdog, Reason: reason})
	}
}

// buildDump renders the per-PE diagnostic state dump: QP/connection states,
// in-flight handshakes, queue depths, detector state, clock skew.
func (w *watchdog) buildDump(reason string) string {
	w.mu.Lock()
	ranks := make([]int, 0, len(w.conduits))
	for r := range w.conduits {
		ranks = append(ranks, r)
	}
	snaps := make(map[int]gasnet.HealthSnapshot, len(w.conduits))
	for r, c := range w.conduits {
		snaps[r] = c.HealthSnapshot()
	}
	w.mu.Unlock()
	sort.Ints(ranks)

	var minVT, maxVT int64 = -1, 0
	for _, clk := range w.clks {
		t := clk.Now()
		if minVT < 0 || t < minVT {
			minVT = t
		}
		if t > maxVT {
			maxVT = t
		}
	}
	if minVT < 0 {
		minVT = 0
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", reason)
	fmt.Fprintf(&b, "vclock skew: min=%.6fs max=%.6fs spread=%.6fs\n",
		vclock.Seconds(minVT), vclock.Seconds(maxVT), vclock.Seconds(maxVT-minVT))
	fmt.Fprintf(&b, "%-5s %-12s %-12s %-6s %-8s %-8s %-7s %-5s %-8s %-12s %s\n",
		"pe", "clockVT", "mgrVT", "ready", "connect", "accept", "pending", "held", "outst", "lastReadyVT", "detector")
	for _, r := range ranks {
		s := snaps[r]
		state := "alive"
		if s.Killed {
			state = "killed"
		} else if s.Wedged {
			state = "wedged"
		}
		if len(s.Suspects) > 0 {
			state += fmt.Sprintf(" suspects=%v", s.Suspects)
		}
		if len(s.Suspended) > 0 {
			state += fmt.Sprintf(" partitioned=%v", s.Suspended)
		}
		if len(s.Dead) > 0 {
			state += fmt.Sprintf(" dead=%v", s.Dead)
		}
		fmt.Fprintf(&b, "%-5d %-12.6f %-12.6f %-6d %-8d %-8d %-7d %-5d %-8d %-12.6f %s\n",
			r, vclock.Seconds(s.ClockVT), vclock.Seconds(s.MgrVT),
			s.Ready, s.Connecting, s.Accepted, s.PendingWRs, s.HeldReqs,
			s.Outstanding, vclock.Seconds(s.LastReadyVT), state)
	}
	return b.String()
}
