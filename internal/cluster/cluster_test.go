package cluster_test

import (
	"strings"
	"sync"
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func TestRunBasics(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	res, err := cluster.Run(cluster.Config{NP: 12, PPN: 5, Mode: gasnet.OnDemand},
		func(c *shmem.Ctx) {
			mu.Lock()
			seen[c.Me()] = true
			mu.Unlock()
			c.BarrierAll()
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 {
		t.Fatalf("only %d PEs ran", len(seen))
	}
	if len(res.PEs) != 12 || res.PEs[7].Rank != 7 {
		t.Fatal("results not indexed by rank")
	}
	if res.JobVT <= res.InitMax {
		t.Fatal("job time should exceed init time")
	}
	// 12 PEs at 5 ppn -> 3 nodes -> 3 HCAs.
	if len(res.HCA) != 3 {
		t.Fatalf("HCAs = %d, want 3", len(res.HCA))
	}
}

func TestRunLaunchCostSetsClockOrigin(t *testing.T) {
	with, err := cluster.Run(cluster.Config{NP: 4, PPN: 4, Mode: gasnet.OnDemand},
		func(c *shmem.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	without, err := cluster.Run(cluster.Config{NP: 4, PPN: 4, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	if with.JobVT <= without.JobVT {
		t.Fatalf("launch cost missing: with=%d without=%d", with.JobVT, without.JobVT)
	}
	// Init duration itself should be unaffected by the clock origin.
	diff := with.InitAvg - without.InitAvg
	if diff < 0 {
		diff = -diff
	}
	if diff > with.InitAvg/10 {
		t.Fatalf("init duration should not depend on launch offset: %d vs %d", with.InitAvg, without.InitAvg)
	}
}

func TestRunAppPanicPropagates(t *testing.T) {
	_, err := cluster.Run(cluster.Config{NP: 2, PPN: 2, Mode: gasnet.OnDemand},
		func(c *shmem.Ctx) {
			if c.Me() == 1 {
				panic("boom")
			}
			// PE 0 must not hang on a collective with a dead partner; it
			// simply finishes without synchronizing in this test.
		})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := cluster.Run(cluster.Config{NP: 0}, func(c *shmem.Ctx) {}); err == nil {
		t.Fatal("NP=0 should error")
	}
}

func TestAggregates(t *testing.T) {
	res, err := cluster.Run(cluster.Config{NP: 4, PPN: 2, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			c.P64(a, 1, (c.Me()+1)%4)
			c.BarrierAll()
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPeers() <= 0 || res.AvgEndpoints() <= 0 || res.AvgConns() <= 0 {
		t.Fatalf("aggregates: peers=%v eps=%v conns=%v", res.AvgPeers(), res.AvgEndpoints(), res.AvgConns())
	}
	// On-demand ring: endpoints per PE well below NP+1.
	if res.AvgEndpoints() > 6 {
		t.Fatalf("on-demand ring endpoints = %v", res.AvgEndpoints())
	}
}
