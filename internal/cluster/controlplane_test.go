package cluster

import (
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"goshmem/internal/apps/heat2d"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/pmi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// runHeatCP runs the standard 16-PE heat2d job with an optional control-plane
// (PMI) injector and an optional fabric injector layered together.
func runHeatCP(t *testing.T, pmiFI *pmi.FaultInjector, ibFI *ib.FaultInjector) (heat2d.Result, *Result) {
	t.Helper()
	const np = 16
	var rank0 heat2d.Result
	cfg := Config{
		NP: np, PPN: 8, Mode: gasnet.OnDemand,
		HeapSize:  1 << 20,
		PMIFaults: pmiFI,
		Faults:    ibFI,
	}
	if ibFI != nil {
		cfg.Retrans = gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		}
	}
	res := runBounded(t, cfg, func(c *shmem.Ctx) {
		r := heat2d.Run(c, heat2d.Params{NX: 32, NY: 8 * c.NPEs(), MaxIters: 20, CheckEvery: 5, Tol: 1e-6})
		if c.Me() == 0 {
			rank0 = r
		}
	})
	return rank0, res
}

// TestPMICrashFallbackByteIdentical is the graceful-degradation acceptance
// test: a server crash whose outage outlasts the IAllgather retry budget
// forces every PE onto the blocking Put-Fence-Get ladder, and the job still
// produces byte-identical results. The clean leg doubles as the fault-free
// guard for the new control-plane counters.
func TestPMICrashFallbackByteIdentical(t *testing.T) {
	clean, cleanRes := runHeatCP(t, nil, nil)
	if c := cleanRes.Counters(); c.PMIRetries != 0 || c.PMITimeouts != 0 ||
		c.FallbackExchanges != 0 || c.CorruptFrames != 0 {
		t.Errorf("fault-free run shows control-plane activity: %+v", c)
	}

	// Crash at t=0; the 600ms outage outlasts the default retry budget
	// (~255ms of backoff starting at the ~120ms launch), so the IAllgather
	// launch exhausts on every PE, while the fallback Puts — retrying later —
	// reach the recovered server.
	fi := pmi.NewFaultInjector(1)
	fi.CrashServer(0, 600*vclock.Millisecond)
	faulty, faultyRes := runHeatCP(t, fi, nil)

	if faultyRes.Aborted {
		t.Fatalf("recoverable outage aborted the job: %s", faultyRes.AbortReason)
	}
	if !fi.CrashTripped() {
		t.Fatal("armed server crash never tripped")
	}
	c := faultyRes.Counters()
	if c.FallbackExchanges != 16 {
		t.Errorf("FallbackExchanges = %d, want 16 (every PE degrades together)", c.FallbackExchanges)
	}
	if c.PMITimeouts < 16 {
		t.Errorf("PMITimeouts = %d, want >= 16 (one exhausted launch per PE)", c.PMITimeouts)
	}
	if c.PMIRetries == 0 {
		t.Error("no PMI retries recorded despite the outage")
	}
	if math.Float64bits(clean.Checksum) != math.Float64bits(faulty.Checksum) ||
		math.Float64bits(clean.Residual) != math.Float64bits(faulty.Residual) ||
		clean.Iters != faulty.Iters {
		t.Errorf("results diverged on the fallback path: clean %+v faulty %+v", clean, faulty)
	}
}

// TestPMICrashShortOutageStaysOnIAllgather: when the outage ends inside the
// retry budget, the exchange completes on the non-blocking path — retries
// fire, the fallback does not.
func TestPMICrashShortOutageStaysOnIAllgather(t *testing.T) {
	fi := pmi.NewFaultInjector(1)
	fi.CrashServer(0, 250*vclock.Millisecond)
	_, res := runHeatCP(t, fi, nil)
	if res.Aborted {
		t.Fatalf("short outage aborted the job: %s", res.AbortReason)
	}
	c := res.Counters()
	if c.FallbackExchanges != 0 {
		t.Errorf("FallbackExchanges = %d, want 0 (outage inside the retry budget)", c.FallbackExchanges)
	}
	if c.PMIRetries == 0 {
		t.Error("no retries recorded despite the outage")
	}
}

// TestPMIPermanentCrashAbortsWithTypedExitCode: with recovery disabled the
// retry budgets exhaust, the conduit raises the control-plane abort, and
// every PE exits with the distinct PMI-failure code in bounded time.
func TestPMIPermanentCrashAbortsWithTypedExitCode(t *testing.T) {
	fi := pmi.NewFaultInjector(1)
	fi.CrashServer(0, -1)
	_, res := runHeatCP(t, fi, nil)
	if !res.Aborted {
		t.Fatal("permanently crashed control plane did not abort the job")
	}
	if res.AbortReason == "" {
		t.Error("aborted job has empty AbortReason")
	}
	for _, p := range res.PEs {
		if p.ExitCode != ExitPMIFail {
			t.Errorf("pe %d exit code = %d, want %d", p.Rank, p.ExitCode, ExitPMIFail)
		}
	}
	if c := res.Counters(); c.PMITimeouts == 0 {
		t.Error("no PMI timeouts recorded on a permanent failure")
	}
}

// TestCorruptFramesByteIdentical: bit flips on UD control frames are caught
// by the checksum, recovered by retransmission, and never corrupt results.
func TestCorruptFramesByteIdentical(t *testing.T) {
	clean, _ := runHeatCP(t, nil, nil)

	fi := ib.NewFaultInjector(1)
	fi.CorruptProb = 0.2
	fi.MaxCorrupts = 6
	faulty, faultyRes := runHeatCP(t, nil, fi)

	if faultyRes.Aborted {
		t.Fatalf("corruption run aborted: %s", faultyRes.AbortReason)
	}
	if fi.Corrupts() == 0 {
		t.Fatal("no frames corrupted; the run tested nothing")
	}
	c := faultyRes.Counters()
	if c.CorruptFrames == 0 {
		t.Error("injected corruption was never detected by the checksum")
	}
	if c.CorruptFrames > fi.Corrupts() {
		t.Errorf("detected %d corrupt frames but only %d were injected", c.CorruptFrames, fi.Corrupts())
	}
	if faultyRes.TotalRetransmits() == 0 {
		t.Error("no retransmissions recovered the discarded frames")
	}
	if math.Float64bits(clean.Checksum) != math.Float64bits(faulty.Checksum) ||
		clean.Iters != faulty.Iters {
		t.Errorf("results diverged under frame corruption: clean %+v faulty %+v", clean, faulty)
	}
}

// chaosSeed mirrors the gasnet soak's replay idiom: CHAOS_SEED pins the
// schedule, otherwise the wall clock varies it and failures print the seed.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

// TestChaosControlPlaneSoak layers all three fault legs — control plane (PMI
// drop/slow/dup), fabric (UD drop/dup, link flaps, frame corruption) and, in
// the second leg, a PE failure — under one seed. Leg 1 asserts full fault
// transparency: byte-identical results. Leg 2 asserts the other acceptable
// outcome: a clean, bounded-time abort with launcher-style exit codes.
func TestChaosControlPlaneSoak(t *testing.T) {
	if raceEnabled {
		// The kill-vs-abort exit-code classification races between the
		// chaos injector's SIGKILL and failure propagation from already-dead
		// peers; detector slowdown widens that window and a killed PE can be
		// observed as aborted (exit 1, want 137). Pre-existing timing
		// sensitivity, not a data race.
		t.Skip("exit-code classification is scheduling-sensitive under the race detector")
	}
	seed := chaosSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("replay with CHAOS_SEED=%d", seed)
		}
	}()

	clean, _ := runHeatCP(t, nil, nil)

	newPMIFI := func() *pmi.FaultInjector {
		fi := pmi.NewFaultInjector(seed)
		fi.SlowProb = 0.5
		fi.SlowTime = 200_000 // 0.2ms of launcher jitter
		fi.DropFirstN = 5     // deterministic retry burst
		fi.DropProb = 0.1
		fi.MaxDrops = 40 // bounded: never enough to exhaust a 10-try budget
		fi.DupProb = 0.2
		return fi
	}
	newIBFI := func() *ib.FaultInjector {
		fi := ib.NewFaultInjector(seed)
		fi.DropProb = 0.2
		fi.MaxDrops = 100
		fi.DupProb = 0.1
		fi.FlapProb = 0.05
		fi.MaxFlaps = 8
		fi.CorruptProb = 0.1
		fi.MaxCorrupts = 6
		return fi
	}

	// Leg 1: every fault transparent, results byte-identical.
	pmiFI, ibFI := newPMIFI(), newIBFI()
	faulty, faultyRes := runHeatCP(t, pmiFI, ibFI)
	if faultyRes.Aborted {
		t.Fatalf("transparent-leg run aborted: %s", faultyRes.AbortReason)
	}
	if math.Float64bits(clean.Checksum) != math.Float64bits(faulty.Checksum) ||
		math.Float64bits(clean.Residual) != math.Float64bits(faulty.Residual) ||
		clean.Iters != faulty.Iters {
		t.Errorf("results diverged under layered chaos: clean %+v faulty %+v", clean, faulty)
	}
	if pmiFI.Drops() == 0 || pmiFI.Slowdowns() == 0 {
		t.Errorf("control-plane leg idle: drops=%d slowdowns=%d", pmiFI.Drops(), pmiFI.Slowdowns())
	}
	if c := faultyRes.Counters(); c.PMIRetries == 0 {
		t.Error("no PMI retries despite injected drops")
	}

	// Leg 2: the same chaos plus a mid-job PE crash — the job must end in a
	// clean, bounded-time abort, never a hang or a wrong answer.
	cfg := Config{
		NP: 16, PPN: 8, Mode: gasnet.OnDemand, HeapSize: 1 << 20,
		PMIFaults: newPMIFI(),
		Faults:    newIBFI(),
		KillPEs:   []PEFault{{Rank: 3, At: 1 * vclock.Second}},
		Heartbeat: gasnet.HeartbeatConfig{
			Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2,
		},
		Retrans: gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		},
	}
	res := runBounded(t, cfg, computeBarrierLoop(300, 2.5e7))
	if !res.Aborted {
		t.Fatal("killed-PE leg did not report Aborted")
	}
	if got := res.PEs[3].ExitCode; got != ExitKilled {
		t.Errorf("killed PE exit code = %d, want %d", got, ExitKilled)
	}
	for _, p := range res.PEs {
		if p.ExitCode == 0 {
			t.Errorf("pe %d exited 0 from an aborted job", p.Rank)
		}
	}
}
