package cluster

import (
	"testing"
	"time"

	"goshmem/internal/apps/traffic"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// Churn soak dimensions: 12 PEs on 3 nodes, budgets at roughly half the
// workload's peak demand. The full zipf mesh wants ~45 RC endpoints and 2 MiB
// of pinned heap per adapter; the budgets below force continuous QP eviction,
// one bounced heap per node, credit stalls and transient allocation
// failures, all at once.
const (
	churnNP       = 12
	churnPPN      = 4
	churnHeap     = 1 << 19               // 512 KiB per PE
	churnQPBudget = 24                    // 4 UD + at most 20 RC per adapter
	churnMRBudget = 1<<20 + 1<<19 + 1<<17 // 1.625 MiB: 3 of 4 heaps + slab fit
	churnRQDepth  = 4
	churnLiveRC   = 16
)

func churnParams() traffic.Params {
	// BulkEvery keeps multi-packet RDMA writes in the stream: one-sided
	// torn-write/dropped-packet faults act at link-packet granularity, so
	// without a bulk leg the word-sized traffic could never exercise the
	// partial-landing replay paths the integrity soaks assert on.
	return traffic.Params{SlotsPerPE: 6, Ops: 300, Epochs: 3, Pattern: "zipf",
		ZipfS: 1.3, GetFrac: 0.2, AddFrac: 0.3, QuietEvery: 32,
		BulkEvery: 25, Seed: 77}
}

// runChurn executes the irregular-traffic soak and returns the per-rank
// digest vector plus the cluster result. budgets arms the resource plane
// (QP/MR/receive budgets, QP-cap eviction, injected transient allocation
// failures); chaos layers fabric loss/duplication/flaps on top.
func runChurn(t *testing.T, budgets, chaos bool, seed int64) ([churnNP]uint64, *Result) {
	t.Helper()
	var digests [churnNP]uint64
	var apps [churnNP]traffic.Result
	cfg := Config{
		NP: churnNP, PPN: churnPPN, Mode: gasnet.OnDemand,
		HeapSize: churnHeap,
		// Bounded-termination backstop: the watchdog turns a deadlock or
		// livelock into a visible 124 instead of a hung test run.
		Deadline:     60 * vclock.Second,
		StallTimeout: 30 * time.Second,
	}
	if budgets {
		cfg.QPBudget = churnQPBudget
		cfg.MRBudget = churnMRBudget
		cfg.RQDepth = churnRQDepth
		cfg.MaxLiveRC = churnLiveRC
		// Transient failures past the UD range (allocations 1-4 are the UD
		// endpoints): the retry/evict ladder must absorb them.
		cfg.FailQPAllocs = []int{6, 9}
	}
	if chaos {
		fi := ib.NewFaultInjector(seed)
		fi.DropProb = 0.15
		fi.MaxDrops = 200
		fi.DupProb = 0.1
		fi.FlapProb = 0.03
		fi.MaxFlaps = 6
		cfg.Faults = fi
	}
	if budgets || chaos {
		cfg.Retrans = gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		}
	}
	res, err := Run(cfg, func(c *shmem.Ctx) {
		r := traffic.Run(c, churnParams())
		digests[c.Me()] = r.Digest
		apps[c.Me()] = r
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, a := range apps {
		if a.Puts+a.Gets+a.Adds == 0 {
			t.Fatalf("rank %d issued no traffic", r)
		}
	}
	return digests, res
}

// TestResourceChurnSoak is the tentpole invariant: skewed irregular traffic
// under half-demand budgets, QP-cap churn and fabric chaos must terminate in
// bounded virtual time with data-plane results byte-identical to the
// unbudgeted fault-free run — resource pressure may cost time, never
// correctness — while the pressure counters prove the machinery was
// exercised and the hard budgets were never breached.
func TestResourceChurnSoak(t *testing.T) {
	clean, cleanRes := runChurn(t, false, false, 0)

	const seed = 424242
	first, firstRes := runChurn(t, true, true, seed)
	second, _ := runChurn(t, true, true, seed)

	for r := range clean {
		if first[r] != second[r] {
			t.Errorf("rank %d digest unstable across identical churn runs: %x vs %x", r, first[r], second[r])
		}
		if first[r] != clean[r] {
			t.Errorf("rank %d digest diverged from the fault-free run: %x vs %x", r, first[r], clean[r])
		}
	}
	if firstRes.Aborted {
		t.Fatalf("churn soak aborted: %s", firstRes.AbortReason)
	}

	// The pressure must be real: stalls or NAKs from the finite receive
	// queues, transient allocation failures absorbed by retry, one bounced
	// heap per node, and eviction churn from the live-QP cap.
	c := firstRes.Counters()
	if c.CreditStalls == 0 && c.RNRNaks == 0 {
		t.Errorf("no backpressure recorded under depth-%d receive queues: %+v", churnRQDepth, c)
	}
	if c.AllocFailures == 0 {
		t.Errorf("no allocation failures despite injected schedule: %+v", c)
	}
	if c.BounceFallbacks != churnNP/churnPPN {
		t.Errorf("bounce fallbacks = %d, want exactly one per node (%d): %+v",
			c.BounceFallbacks, churnNP/churnPPN, c)
	}
	if firstRes.TotalEvictions() == 0 {
		t.Errorf("no evictions under live-RC cap %d", churnLiveRC)
	}

	// Hard budgets were never breached (bounded memory / endpoint count).
	for i, h := range firstRes.HCA {
		if h.LiveRC > churnQPBudget-churnPPN {
			t.Errorf("hca %d live RC %d exceeds budget headroom %d", i, h.LiveRC, churnQPBudget-churnPPN)
		}
		if h.BytesPinned > churnMRBudget {
			t.Errorf("hca %d pinned %d bytes past the %d budget", i, h.BytesPinned, churnMRBudget)
		}
	}

	// Fault-free guard: with no budgets armed, the resource plane must be
	// inert on top of the existing resilience-free happy path.
	cc := cleanRes.Counters()
	if cc.CreditStalls != 0 || cc.RNRNaks != 0 || cc.AllocFailures != 0 ||
		cc.BounceFallbacks != 0 || cc.AdmissionRejects != 0 {
		t.Errorf("unbudgeted run shows resource-pressure activity: %+v", cc)
	}
	if cleanRes.Aborted {
		t.Errorf("fault-free soak aborted: %s", cleanRes.AbortReason)
	}
}

// TestResourceBudgetTooSmallExits125: a queue-pair budget that cannot fit a
// single RC endpoint leaves no forward-progress path. The job must terminate
// promptly with ExitResourceExhausted — not hang until the watchdog's 124.
func TestResourceBudgetTooSmallExits125(t *testing.T) {
	const np, ppn = 4, 2
	cfg := Config{
		NP: np, PPN: ppn, Mode: gasnet.OnDemand, HeapSize: 1 << 18,
		QPBudget:     ppn, // the UD endpoints consume the whole budget
		Deadline:     60 * vclock.Second,
		StallTimeout: 30 * time.Second,
	}
	p := traffic.Params{SlotsPerPE: 4, Ops: 50, Pattern: "uniform", Seed: 5}
	res, err := Run(cfg, func(c *shmem.Ctx) {
		traffic.Run(c, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("job with an unsatisfiable QP budget did not abort")
	}
	got125 := false
	for _, pe := range res.PEs {
		if pe.ExitCode == ExitWatchdog {
			t.Errorf("pe %d hit the watchdog (%d): exhaustion did not terminate the job itself", pe.Rank, pe.ExitCode)
		}
		if pe.ExitCode == ExitResourceExhausted {
			got125 = true
		}
	}
	if !got125 {
		codes := make([]int, len(res.PEs))
		for i, pe := range res.PEs {
			codes[i] = pe.ExitCode
		}
		t.Fatalf("no PE exited with %d (resource exhaustion); exit codes: %v",
			ExitResourceExhausted, codes)
	}
}
