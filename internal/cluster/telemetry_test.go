package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"goshmem/internal/apps/traffic"
	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/pmi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// TestGaugeSeriesByteIdenticalFaultFree asserts the gauge tentpole's
// determinism contract: a fixed-seed fault-free run produces a byte-identical
// gauge time-series across repeated runs (the delta log commutes, the export
// fold sorts by virtual time), and the incident ledger stays empty — zero
// faults means zero incidents, reconciled trivially.
func TestGaugeSeriesByteIdenticalFaultFree(t *testing.T) {
	run := func() (*Result, []byte) {
		res, err := Run(Config{
			NP: 9, PPN: 3, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
			Obs: obs.Config{Gauges: true, Incidents: true},
		}, ringApp(3, 512))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteGaugeCSV(&buf, res.Obs.Gauges().Series(obs.DefaultGaugeTick)); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	resA, csvA := run()
	_, csvB := run()
	if !bytes.Equal(csvA, csvB) {
		t.Errorf("fault-free gauge series differ across identical runs (%d vs %d bytes)",
			len(csvA), len(csvB))
	}
	if len(csvA) <= len("gauge,inst,vt_ns,value\n") {
		t.Error("gauge series is empty; the sampler recorded nothing")
	}
	if incs := resA.Obs.Ledger().Snapshot(); len(incs) != 0 {
		t.Errorf("fault-free run recorded %d incidents, want 0: %+v", len(incs), incs)
	}
	ir := BuildIncidentReport(resA)
	if ir == nil || !ir.Reconciled {
		t.Errorf("fault-free run does not reconcile: %+v", ir)
	}
	// The live-QP gauge must show real levels: every HCA ends the run with
	// its UD QPs still live, so finals are positive.
	sawLiveQP := false
	for _, g := range resA.Obs.Gauges().Stats() {
		if g.Name == "ib.live_qps" {
			sawLiveQP = true
			if g.Max <= 0 || g.Final <= 0 {
				t.Errorf("ib.live_qps inst %d: max=%d final=%d, want positive", g.Inst, g.Max, g.Final)
			}
		}
	}
	if !sawLiveQP {
		t.Error("no ib.live_qps gauge recorded")
	}
}

// TestIncidentReconciliationChaosSoak is the incident tentpole's acceptance
// soak: the combined recoverable chaos schedule (UD loss/dup, link flaps,
// silent RC corruption, torn writes, injected allocation failures, PMI
// drop/slow/dup) under one seed must end with every budgeted injected fault
// mapped to exactly one resolved incident carrying detection-latency and MTTR
// stamps, and the MTTR attribution mirrored into the metric registry.
func TestIncidentReconciliationChaosSoak(t *testing.T) {
	seed := chaosSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("replay with CHAOS_SEED=%d", seed)
		}
	}()

	pfi := pmi.NewFaultInjector(seed)
	pfi.SlowProb = 0.5
	pfi.SlowTime = 200_000
	pfi.DropFirstN = 5
	pfi.DropProb = 0.1
	pfi.MaxDrops = 40 // bounded: never enough to exhaust a retry budget
	pfi.DupProb = 0.2

	fi := integrityFI(seed)
	var digests [churnNP]uint64
	cfg := Config{
		NP: churnNP, PPN: churnPPN, Mode: gasnet.OnDemand,
		HeapSize:     churnHeap,
		QPBudget:     churnQPBudget,
		MRBudget:     churnMRBudget,
		RQDepth:      churnRQDepth,
		MaxLiveRC:    churnLiveRC,
		FailQPAllocs: []int{6, 9},
		PMIFaults:    pfi,
		Faults:       fi,
		Deadline:     60 * vclock.Second,
		StallTimeout: 30 * time.Second,
		Retrans: gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		},
		Obs: obs.Config{Metrics: true, Gauges: true, Incidents: true},
	}
	res := runBounded(t, cfg, func(c *shmem.Ctx) {
		digests[c.Me()] = traffic.Run(c, churnParams()).Digest
	})
	if res.Aborted {
		t.Fatalf("recoverable chaos soak aborted: %s", res.AbortReason)
	}
	if fi.Drops() == 0 || fi.Flaps() == 0 || fi.RCCorrupts() == 0 || fi.TornWrites() == 0 {
		t.Fatalf("fault schedule idle: drops=%d flaps=%d corrupts=%d tears=%d",
			fi.Drops(), fi.Flaps(), fi.RCCorrupts(), fi.TornWrites())
	}
	if pfi.Drops() == 0 {
		t.Fatal("control-plane fault schedule idle: no PMI drops")
	}

	ir := BuildIncidentReport(res)
	if ir == nil {
		t.Fatal("incident ledger enabled but report section missing")
	}
	for _, r := range ir.Reconcile {
		if !r.OK {
			t.Errorf("reconciliation mismatch %s/%s: injected=%d recorded=%d resolved=%d",
				r.Class, r.Kind, r.Injected, r.Recorded, r.Resolved)
		}
	}
	if !ir.Reconciled {
		t.Error("chaos soak did not fully reconcile")
	}
	// Resolved incidents must carry real recovery timings: the UD drops are
	// repaired by later deliveries, so their kind row shows positive MTTR.
	for _, k := range ir.Kinds {
		if k.Class == "ud" && k.Kind == "drop" && k.MTTRMaxNS <= 0 {
			t.Errorf("ud/drop incidents closed with no recovery time: %+v", k)
		}
	}
	// The registry mirror must expose the per-kind MTTR attribution.
	sawMTTR := false
	for _, h := range res.Obs.Registry().Hists() {
		if strings.HasPrefix(h.Name, "incident.mttr_ns.") && h.Count > 0 {
			sawMTTR = true
		}
	}
	if !sawMTTR {
		t.Error("no incident.mttr_ns.* histograms mirrored into the registry")
	}
	// The report carries both telemetry sections.
	rep := BuildReport(res)
	if len(rep.Gauges) == 0 {
		t.Error("report has no gauge summary despite the gauge plane being on")
	}
	if rep.Incidents == nil || len(rep.Incidents.Kinds) == 0 {
		t.Error("report has no incident section despite injected faults")
	}
}

// TestIncidentLedgerAbortedRun asserts the deliberate-abort leg: a mid-job PE
// kill opens a "pe" incident at setup, the failure detector's suspicion and
// confirmation stamp its detection, and the sweep resolves it (and everything
// the abort stranded) as aborted — never unresolved.
func TestIncidentLedgerAbortedRun(t *testing.T) {
	cfg := Config{
		NP: 8, PPN: 4, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
		KillPEs: []PEFault{{Rank: 3, At: 150 * vclock.Millisecond}},
		Heartbeat: gasnet.HeartbeatConfig{
			Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2,
		},
		Deadline:     60 * vclock.Second,
		StallTimeout: 30 * time.Second,
		Obs:          obs.Config{Incidents: true},
	}
	res := runBounded(t, cfg, func(c *shmem.Ctx) {
		buf := c.Malloc(256)
		src := make([]byte, 256)
		for i := 0; i < 400; i++ {
			c.PutMem(buf, src, (c.Me()+1)%c.NPEs())
			c.Quiet()
		}
		c.BarrierAll()
	})
	if !res.Aborted {
		t.Fatal("killed-PE run did not abort")
	}
	var pe *obs.Incident
	incs := res.Obs.Ledger().Snapshot()
	for i := range incs {
		if incs[i].Class == "pe" {
			pe = &incs[i]
		}
	}
	if pe == nil {
		t.Fatalf("no pe incident recorded; ledger: %+v", incs)
	}
	if pe.Kind != "kill" || pe.Rank != 3 {
		t.Errorf("pe incident = %s/%d, want kill/3", pe.Kind, pe.Rank)
	}
	if pe.State != obs.IncidentAborted {
		t.Errorf("pe incident state = %s, want aborted", pe.State)
	}
	if pe.InjectVT != 150*vclock.Millisecond {
		t.Errorf("pe incident inject VT = %d, want %d", pe.InjectVT, 150*vclock.Millisecond)
	}
	for _, in := range incs {
		if in.State == obs.IncidentOpen || in.State == obs.IncidentUnresolved {
			t.Errorf("aborted run left incident %s/%s in state %s", in.Class, in.Kind, in.State)
		}
	}
}
