package cluster_test

import (
	"testing"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/shmem"
)

func TestTraceRecordsHandshakeLifecycle(t *testing.T) {
	res, err := cluster.Run(cluster.Config{NP: 4, PPN: 2, Mode: gasnet.OnDemand,
		Trace: true, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			c.P64(a, 1, (c.Me()+1)%4)
			c.BarrierAll()
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := map[string]int{}
	for i, e := range res.Trace {
		kinds[e.Kind]++
		if i > 0 && e.VT < res.Trace[i-1].VT {
			t.Fatal("trace not sorted by virtual time")
		}
		if e.Rank < 0 || e.Rank >= 4 || e.Peer < 0 || e.Peer >= 4 {
			t.Fatalf("bad event %+v", e)
		}
	}
	for _, want := range []string{"conn-initiate", "conn-req-served", "conn-ready-client", "conn-ready-server"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events (got %v)", want, kinds)
		}
	}
	// Every client-side establishment pairs an initiate with a ready.
	if kinds["conn-ready-client"] > kinds["conn-initiate"] {
		t.Errorf("more client-ready than initiate events: %v", kinds)
	}
}

func TestTraceOffByDefault(t *testing.T) {
	res, err := cluster.Run(cluster.Config{NP: 2, PPN: 2, Mode: gasnet.OnDemand, SkipLaunchCost: true},
		func(c *shmem.Ctx) {
			a := c.Malloc(8)
			c.P64(a, 1, 1-c.Me())
			c.BarrierAll()
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Fatalf("trace recorded without Trace=true: %d events", len(res.Trace))
	}
}
