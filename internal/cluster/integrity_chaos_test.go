package cluster

import (
	"testing"
	"time"

	"goshmem/internal/apps/traffic"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/pmi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// integrityFI builds the data-plane fault schedule for the integrity soaks:
// UD loss and duplication under the control plane, link flaps, silent RC
// payload corruption and torn RDMA writes on the data plane — every fault
// class the integrity trailer, dedup ledger and replay-on-reconnect paths
// exist to absorb. All caps are finite so the job always drains.
func integrityFI(seed int64) *ib.FaultInjector {
	fi := ib.NewFaultInjector(seed)
	fi.DropProb = 0.15
	fi.MaxDrops = 150
	fi.DupProb = 0.1
	fi.FlapProb = 0.03
	fi.MaxFlaps = 6
	fi.RCCorruptProb = 0.05
	fi.MaxRCCorrupts = 40
	fi.TornWriteProb = 0.05
	fi.MaxTornWrites = 12
	return fi
}

// runIntegrity executes the zipf traffic workload with the live-RC cap armed
// (so eviction churn interleaves with unacknowledged transfers) and, when fi
// is set, the integrity fault schedule on the fabric.
func runIntegrity(t *testing.T, fi *ib.FaultInjector) ([churnNP]uint64, *Result) {
	t.Helper()
	var digests [churnNP]uint64
	cfg := Config{
		NP: churnNP, PPN: churnPPN, Mode: gasnet.OnDemand,
		HeapSize:     churnHeap,
		MaxLiveRC:    churnLiveRC,
		Deadline:     60 * vclock.Second,
		StallTimeout: 30 * time.Second,
		Faults:       fi,
	}
	if fi != nil {
		cfg.Retrans = gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		}
	}
	res, err := Run(cfg, func(c *shmem.Ctx) {
		digests[c.Me()] = traffic.Run(c, churnParams()).Digest
	})
	if err != nil {
		t.Fatal(err)
	}
	return digests, res
}

// TestIntegrityChaosSoak is the tentpole acceptance test: a seeded run with
// silent RC corruption, torn RDMA writes, link flaps, UD loss and forced
// evictions must produce per-rank digests byte-identical to the fault-free
// run — the faults cost retransmissions and reconnects, never correctness —
// while the integrity counters prove each recovery path actually fired.
func TestIntegrityChaosSoak(t *testing.T) {
	clean, cleanRes := runIntegrity(t, nil)

	const seed = 171717
	fi1 := integrityFI(seed)
	first, firstRes := runIntegrity(t, fi1)
	second, _ := runIntegrity(t, integrityFI(seed))

	for r := range clean {
		if first[r] != second[r] {
			t.Errorf("rank %d digest unstable across identical chaos runs: %x vs %x", r, first[r], second[r])
		}
		if first[r] != clean[r] {
			t.Errorf("rank %d digest diverged from the fault-free run: %x vs %x", r, first[r], clean[r])
		}
	}
	if firstRes.Aborted {
		t.Fatalf("integrity chaos soak aborted: %s", firstRes.AbortReason)
	}

	// Every injected fault class must have actually fired...
	if fi1.RCCorrupts() == 0 || fi1.TornWrites() == 0 || fi1.Flaps() == 0 {
		t.Fatalf("fault schedule idle: corrupts=%d tears=%d flaps=%d",
			fi1.RCCorrupts(), fi1.TornWrites(), fi1.Flaps())
	}
	// ...and every recovery path must have answered: corrupt frames caught by
	// the trailer, torn writes detected and replayed, retransmissions of
	// unacknowledged transfers, and duplicate non-idempotent ops suppressed.
	c := firstRes.Counters()
	if c.RCCorruptFrames == 0 && c.TornWrites == 0 {
		t.Errorf("no data-plane faults observed by the conduit: %+v", c)
	}
	if c.TornWrites == 0 {
		t.Errorf("injected %d tears but the conduit recorded none", fi1.TornWrites())
	}
	if c.IntegrityRetransmits == 0 {
		t.Errorf("no integrity retransmissions despite %d injected data faults",
			fi1.RCCorrupts()+fi1.TornWrites())
	}
	if c.DupOpsSuppressed == 0 {
		t.Errorf("no duplicate ops suppressed despite lost ACKs and replays: %+v", c)
	}
	if firstRes.TotalEvictions() == 0 {
		t.Errorf("no evictions under live-RC cap %d; churn leg idle", churnLiveRC)
	}

	// Fault-free guard: the integrity machinery must be inert without an
	// injector — zero cost on the happy path.
	cc := cleanRes.Counters()
	if cc.RCCorruptFrames != 0 || cc.TornWrites != 0 ||
		cc.DupOpsSuppressed != 0 || cc.IntegrityRetransmits != 0 {
		t.Errorf("fault-free run shows integrity activity: %+v", cc)
	}
}

// TestChaosCombinedSoak is the everything-at-once long-run soak: zipf traffic
// under half-demand resource budgets, the full data-plane fault schedule
// (corruption, tears, flaps, loss) and recoverable control-plane chaos, all
// from one seed. Leg A asserts full transparency — bounded virtual time and
// per-rank digests byte-identical to the clean run. Leg B adds a mid-job PE
// kill and asserts the other acceptable outcome: a clean bounded-time abort
// with launcher-style exit codes, where no surviving rank that completed
// reports a wrong answer.
func TestChaosCombinedSoak(t *testing.T) {
	if raceEnabled {
		// Same scheduling sensitivity as TestChaosControlPlaneSoak: the
		// kill-vs-abort exit-code classification races under detector slowdown.
		t.Skip("exit-code classification is scheduling-sensitive under the race detector")
	}
	seed := chaosSeed(t)
	defer func() {
		if t.Failed() {
			t.Logf("replay with CHAOS_SEED=%d", seed)
		}
	}()

	newPMIFI := func() *pmi.FaultInjector {
		fi := pmi.NewFaultInjector(seed)
		fi.SlowProb = 0.5
		fi.SlowTime = 200_000
		fi.DropFirstN = 5
		fi.DropProb = 0.1
		fi.MaxDrops = 40 // bounded: never enough to exhaust a retry budget
		fi.DupProb = 0.2
		return fi
	}
	combined := func(kill bool) ([churnNP]uint64, *Result) {
		var digests [churnNP]uint64
		cfg := Config{
			NP: churnNP, PPN: churnPPN, Mode: gasnet.OnDemand,
			HeapSize:     churnHeap,
			QPBudget:     churnQPBudget,
			MRBudget:     churnMRBudget,
			RQDepth:      churnRQDepth,
			MaxLiveRC:    churnLiveRC,
			FailQPAllocs: []int{6, 9},
			PMIFaults:    newPMIFI(),
			Faults:       integrityFI(seed),
			Deadline:     60 * vclock.Second,
			StallTimeout: 30 * time.Second,
			Retrans: gasnet.RetransConfig{
				Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
			},
		}
		if kill {
			// Mid-app: launch costs ~120ms of virtual time and the clean app
			// leg runs ~100ms beyond it, so 150ms lands inside the workload.
			cfg.KillPEs = []PEFault{{Rank: 3, At: 150 * vclock.Millisecond}}
			cfg.Heartbeat = gasnet.HeartbeatConfig{
				Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2,
			}
		}
		res := runBounded(t, cfg, func(c *shmem.Ctx) {
			digests[c.Me()] = traffic.Run(c, churnParams()).Digest
		})
		return digests, res
	}

	clean, _ := runIntegrity(t, nil)

	// Leg A: every fault recoverable — transparent, bounded, byte-identical.
	digA, resA := combined(false)
	if resA.Aborted {
		t.Fatalf("combined chaos leg aborted: %s", resA.AbortReason)
	}
	if resA.JobVT >= 60*vclock.Second {
		t.Fatalf("combined chaos leg ran %d vt, past the %d deadline", resA.JobVT, 60*vclock.Second)
	}
	for _, p := range resA.PEs {
		if p.ExitCode != 0 {
			t.Errorf("pe %d exited %d from a recoverable-chaos run", p.Rank, p.ExitCode)
		}
	}
	for r := range clean {
		if digA[r] != clean[r] {
			t.Errorf("rank %d digest diverged under combined chaos: %x vs clean %x", r, digA[r], clean[r])
		}
	}
	cA := resA.Counters()
	if cA.PMIRetries == 0 {
		t.Error("control-plane leg idle: no PMI retries despite injected drops")
	}
	if cA.IntegrityRetransmits == 0 {
		t.Error("data-plane leg idle: no integrity retransmissions")
	}
	if cA.CreditStalls == 0 && cA.RNRNaks == 0 && cA.AllocFailures == 0 {
		t.Errorf("resource leg idle under half-demand budgets: %+v", cA)
	}

	// Leg B: the same chaos plus a fail-stop kill — clean bounded abort,
	// typed exit codes, and no completed rank with a wrong answer.
	digB, resB := combined(true)
	if !resB.Aborted {
		t.Fatal("killed-PE leg did not report Aborted")
	}
	if got := resB.PEs[3].ExitCode; got != ExitKilled {
		t.Errorf("killed PE exit code = %d, want %d", got, ExitKilled)
	}
	for _, p := range resB.PEs {
		if p.ExitCode == 0 {
			t.Errorf("pe %d exited 0 from an aborted job", p.Rank)
		}
	}
	for r := range clean {
		if digB[r] != 0 && digB[r] != clean[r] {
			t.Errorf("rank %d completed with a wrong digest under the kill leg: %x vs clean %x",
				r, digB[r], clean[r])
		}
	}
}
