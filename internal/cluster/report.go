package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
)

// ExchangePath attributes the endpoint-exchange path startup actually took.
// Static mode and -blocking-pmi use Put-Fence-Get by design; an on-demand run
// normally completes on the non-blocking IAllgather, unless the control plane
// lost the exchange and PEs degraded to the blocking fallback ladder.
func (r *Result) ExchangePath() string {
	if r.Cfg.Mode == gasnet.Static || r.Cfg.BlockingPMI {
		return "put-fence-get (blocking)"
	}
	if fb := r.Counters().FallbackExchanges; fb > 0 {
		return fmt.Sprintf("iallgather lost; put-fence-get fallback on %d/%d PEs", fb, r.Cfg.NP)
	}
	return "iallgather (non-blocking)"
}

// ReportSchemaVersion identifies the JSON report's schema so downstream
// tooling (perf-trajectory diffing, CI artifact parsers) can evolve with
// it. Bump on any breaking change to Report's shape.
const ReportSchemaVersion = 1

// Report is the machine-readable summary of a run: job-level timings, per-PE
// outcomes, the startup-phase breakdown, and — when metrics were enabled —
// the full counter and histogram registry. `oshrun -json` serializes it.
type Report struct {
	SchemaVersion int `json:"schema_version"`

	NP      int    `json:"np"`
	PPN     int    `json:"ppn"`
	Mode    string `json:"mode"`
	JobVT   int64  `json:"job_vt_ns"`
	InitAvg int64  `json:"init_avg_ns"`
	InitMax int64  `json:"init_max_ns"`
	WallNS  int64  `json:"wall_ns"`

	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abort_reason,omitempty"`

	// ExchangePath attributes which endpoint-exchange path startup took:
	// the non-blocking IAllgather, the blocking Put-Fence-Get, or the
	// degraded fallback after a lost exchange.
	ExchangePath string `json:"exchange_path"`

	PEs []PEReport `json:"pes"`

	StartupPhases []obs.PEPhases        `json:"startup_phases,omitempty"`
	Counters      []obs.CounterSnapshot `json:"counters,omitempty"`
	Histograms    []obs.HistSnapshot    `json:"histograms,omitempty"`
	DroppedEvents int64                 `json:"dropped_events,omitempty"`

	// Topology is the flow-telemetry section (communication matrix, degree
	// distribution, QP waste attribution); present when flows were recorded.
	Topology *TopologyReport `json:"topology,omitempty"`

	// Gauges summarizes every virtual-time gauge (min/max/final) when the
	// gauge plane was enabled; the full series goes to -timeseries-out.
	Gauges []obs.GaugeStat `json:"gauges,omitempty"`

	// Incidents is the causal-incident section (per-kind MTTR summary and
	// injector-vs-ledger reconciliation) when the ledger was enabled.
	Incidents *IncidentReport `json:"incidents,omitempty"`

	// Footprint is the engine self-observability section (census snapshots,
	// per-subsystem attribution, modeled-vs-measured heap reconciliation)
	// when the footprint plane was enabled. It carries its own
	// obs.FootprintSchemaVersion so the section can evolve independently.
	Footprint *obs.FootprintReport `json:"footprint,omitempty"`
}

// PEReport is one PE's slice of the report.
type PEReport struct {
	Rank         int   `json:"rank"`
	InitVT       int64 `json:"init_vt_ns"`
	FinalVT      int64 `json:"final_vt_ns"`
	Peers        int   `json:"peers"`
	RCQPsCreated int   `json:"rc_qps_created"`
	ExitCode     int   `json:"exit_code"`
}

// BuildReport assembles the report from a finished run. Observability
// sections are present only when the corresponding plane was enabled.
func BuildReport(res *Result) *Report {
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,

		NP:      res.Cfg.NP,
		PPN:     res.Cfg.PPN,
		Mode:    fmt.Sprint(res.Cfg.Mode),
		JobVT:   res.JobVT,
		InitAvg: res.InitAvg,
		InitMax: res.InitMax,
		WallNS:  res.Wall.Nanoseconds(),

		Aborted:     res.Aborted,
		AbortReason: res.AbortReason,

		ExchangePath: res.ExchangePath(),
	}
	for _, p := range res.PEs {
		rep.PEs = append(rep.PEs, PEReport{
			Rank:         p.Rank,
			InitVT:       p.InitVT,
			FinalVT:      p.FinalVT,
			Peers:        p.Peers,
			RCQPsCreated: p.Stats.RCQPsCreated,
			ExitCode:     p.ExitCode,
		})
	}
	if res.Obs != nil {
		rep.StartupPhases = res.Obs.StartupPhases()
		rep.DroppedEvents = res.Obs.Dropped()
		if reg := res.Obs.Registry(); reg != nil {
			rep.Counters = reg.Counters()
			rep.Histograms = reg.Hists()
		}
		rep.Gauges = res.Obs.Gauges().Stats()
		rep.Incidents = BuildIncidentReport(res)
		rep.Footprint = res.Footprint
	}
	rep.Topology = BuildTopology(res)
	return rep
}

// WriteJSON serializes the report with stable key order and indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
