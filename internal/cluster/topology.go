package cluster

import (
	"fmt"
	"io"

	"goshmem/internal/obs"
)

// Topology reduction: turns the per-PE flow matrices recorded by the
// conduits (obs.Config.Flows) into the job-level communication-pattern
// view the paper argues from — who talks to whom, how much, by what kind
// of operation, and how many of the QPs that were paid for actually
// carried application traffic.

// PETopology is one PE's row of the topology report.
type PETopology struct {
	Rank int `json:"rank"`
	// Peers is the data-plane degree: distinct peers (excluding self) this
	// PE sent puts/gets/atomics/AMs/collectives/barriers to, computed from
	// the matrix (it matches the conduit's Table I peer count).
	Peers int `json:"peers"`
	// QPsEstablished counts handshakes this PE completed, re-establishments
	// after eviction or faults included.
	QPsEstablished int `json:"qps_established"`
	// QPsUsed counts distinct destinations (self included) with data-plane
	// traffic — connections that carried at least one application payload.
	QPsUsed int            `json:"qps_used"`
	Edges   []obs.FlowEdge `json:"edges,omitempty"`
}

// TopologyReport is the `topology` section of the job report.
type TopologyReport struct {
	// Kinds names the per-edge cell columns, in obs.FlowKind order.
	Kinds []string `json:"kinds"`
	// Degree is the distribution of data-plane peer degrees across PEs.
	Degree obs.DegreeDist `json:"degree"`
	// QPsEstablished / QPsUsed / QPsWasted attribute connection waste
	// job-wide: established counts completed handshakes (reconnects
	// included), used counts pair-slots that carried application traffic.
	QPsEstablished int `json:"qps_established"`
	QPsUsed        int `json:"qps_used"`
	QPsWasted      int `json:"qps_wasted"`

	PEs []PETopology `json:"pes"`
}

// BuildTopology reduces a finished run's flow matrices. Returns nil when no
// PE recorded flows (obs.Config.Flows disabled).
func BuildTopology(res *Result) *TopologyReport {
	any := false
	for _, p := range res.PEs {
		if len(p.Stats.Flows) > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	top := &TopologyReport{Kinds: obs.FlowKindNames()}
	degrees := make([]int, 0, len(res.PEs))
	for _, p := range res.PEs {
		edges := p.Stats.Flows
		used := 0
		for i := range edges {
			if edges[i].DataOps() > 0 {
				used++
			}
		}
		pt := PETopology{
			Rank:           p.Rank,
			Peers:          obs.DataPeers(p.Rank, edges),
			QPsEstablished: p.Stats.ConnsEstablished,
			QPsUsed:        used,
			Edges:          edges,
		}
		degrees = append(degrees, pt.Peers)
		top.QPsEstablished += pt.QPsEstablished
		top.QPsUsed += pt.QPsUsed
		top.PEs = append(top.PEs, pt)
	}
	top.Degree = obs.DegreeDistribution(degrees)
	if top.QPsEstablished > top.QPsUsed {
		top.QPsWasted = top.QPsEstablished - top.QPsUsed
	}
	return top
}

// FlowMatrix returns the per-rank edge lists (indexed by rank) for the
// heatmap and the reducers in internal/obs.
func (res *Result) FlowMatrix() [][]obs.FlowEdge {
	out := make([][]obs.FlowEdge, res.Cfg.NP)
	for _, p := range res.PEs {
		if p.Rank >= 0 && p.Rank < len(out) {
			out[p.Rank] = p.Stats.Flows
		}
	}
	return out
}

// WriteTopologyText renders the topology report as the `oshrun -topology`
// text view: the bytes-weighted heatmap, the degree table, per-kind totals
// and the waste attribution. Deterministic for a deterministic matrix.
func WriteTopologyText(w io.Writer, res *Result) {
	top := BuildTopology(res)
	if top == nil {
		fmt.Fprintln(w, "topology: no flow matrix recorded (run with -topology or obs flows enabled)")
		return
	}
	obs.WriteHeatmap(w, res.Cfg.NP, res.FlowMatrix())
	fmt.Fprintf(w, "\npeer degree (data-plane, excl. self): min %d  p50 %d  p95 %d  max %d  avg %.2f\n",
		top.Degree.Min, top.Degree.P50, top.Degree.P95, top.Degree.Max, top.Degree.Avg)

	// Per-kind job totals, in kind order.
	var ops, bytes [obs.NumFlowKinds]int64
	for _, pt := range top.PEs {
		for i := range pt.Edges {
			for k := 0; k < int(obs.NumFlowKinds); k++ {
				ops[k] += pt.Edges[i].Cells[k].Ops
				bytes[k] += pt.Edges[i].Cells[k].Bytes
			}
		}
	}
	fmt.Fprintf(w, "\n%-10s %12s %14s\n", "kind", "ops", "bytes")
	for k := 0; k < int(obs.NumFlowKinds); k++ {
		if ops[k] == 0 && bytes[k] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %12d %14d\n", obs.FlowKind(k).String(), ops[k], bytes[k])
	}

	pct := 0.0
	if top.QPsEstablished > 0 {
		pct = 100 * float64(top.QPsWasted) / float64(top.QPsEstablished)
	}
	fmt.Fprintf(w, "\nQPs established %d, carried data %d, never used %d (%.1f%% waste)\n",
		top.QPsEstablished, top.QPsUsed, top.QPsWasted, pct)
}
