package cluster

import (
	"fmt"
	"io"

	"goshmem/internal/obs"
)

// ReconcileRow compares one fault source's injected count against the
// incidents the ledger recorded for it. A row reconciles when every injected
// fault opened exactly one incident AND every one of those incidents was
// resolved — closed by a proven repair or deliberately aborted with the job.
type ReconcileRow struct {
	Class    string `json:"class"`
	Kind     string `json:"kind"`
	Injected int    `json:"injected"`
	Recorded int    `json:"recorded"`
	Resolved int    `json:"resolved"` // closed + aborted
	OK       bool   `json:"ok"`
}

// IncidentReport is the causal-incident section of a run's report: the
// per-(class, kind) detection-latency and MTTR summary plus the
// reconciliation of ledger contents against the fault injectors' own
// counters. `oshrun -incidents` renders it; `-json` embeds it.
type IncidentReport struct {
	Kinds      []obs.IncidentKindSummary `json:"kinds"`
	Reconcile  []ReconcileRow            `json:"reconciliation"`
	Reconciled bool                      `json:"reconciled"`
}

// BuildIncidentReport assembles the incident section from a finished run, or
// returns nil when the incident ledger was not enabled. Call only after the
// run completed (Run sweeps the ledger before returning).
func BuildIncidentReport(res *Result) *IncidentReport {
	led := res.Obs.Ledger()
	if led == nil {
		return nil
	}
	kinds := obs.SummarizeIncidents(led.Snapshot())
	byKey := make(map[[2]string]obs.IncidentKindSummary, len(kinds))
	for _, k := range kinds {
		byKey[[2]string{k.Class, k.Kind}] = k
	}
	consumed := make(map[[2]string]bool, len(kinds))

	// take sums the ledger rows for a set of (class, kind) lanes that share
	// one injector counter (e.g. the fabric's single slowdown counter feeds
	// both ud/slow and rc/slow).
	take := func(keys ...[2]string) (recorded, resolved int) {
		for _, k := range keys {
			consumed[k] = true
			row := byKey[k]
			recorded += row.Total
			resolved += row.Closed + row.Aborted
		}
		return
	}

	fi := res.Cfg.Faults
	pf := res.Cfg.PMIFaults
	crash := 0
	if pf.CrashTripped() {
		crash = 1
	}
	specs := []struct {
		class, kind string
		injected    int
		lanes       [][2]string
	}{
		{"ud", "drop", fi.Drops(), [][2]string{{"ud", "drop"}}},
		{"ud", "dup", fi.Dups(), [][2]string{{"ud", "dup"}}},
		{"ud", "reorder", fi.Reorders(), [][2]string{{"ud", "reorder"}}},
		{"ud", "corrupt", fi.Corrupts(), [][2]string{{"ud", "corrupt"}}},
		{"rc", "flap", fi.Flaps(), [][2]string{{"rc", "flap"}}},
		{"rc", "rc-corrupt", fi.RCCorrupts(), [][2]string{{"rc", "rc-corrupt"}}},
		{"rc", "torn-write", fi.TornWrites(), [][2]string{{"rc", "torn-write"}}},
		{"ud+rc", "slow", fi.Slowdowns(), [][2]string{{"ud", "slow"}, {"rc", "slow"}}},
		{"alloc", "qp+mr", fi.AllocFailsInjected(), [][2]string{{"alloc", "qp"}, {"alloc", "mr"}}},
		{"pe", "kill", len(res.Cfg.KillPEs), [][2]string{{"pe", "kill"}}},
		{"pe", "wedge", len(res.Cfg.WedgePEs), [][2]string{{"pe", "wedge"}}},
		{"net", "port-down", fi.PortFaultsInjected(), [][2]string{{"net", "port-down"}}},
		{"net", "rail-down", fi.RailFaultsInjected(), [][2]string{{"net", "rail-down"}}},
		{"net", "partition", fi.PartitionsInjected(), [][2]string{{"net", "partition"}}},
		{"pmi", "drop", pf.Drops(), [][2]string{{"pmi", "drop"}}},
		{"pmi", "dup", pf.Dups(), [][2]string{{"pmi", "dup"}}},
		{"pmi", "slow", pf.Slowdowns(), [][2]string{{"pmi", "slow"}}},
		{"pmi", "unavail", pf.UnavailHits(), [][2]string{{"pmi", "unavail"}}},
		{"pmi", "crash", crash, [][2]string{{"pmi", "crash"}}},
	}

	rep := &IncidentReport{Kinds: kinds, Reconciled: true}
	for _, sp := range specs {
		recorded, resolved := take(sp.lanes...)
		if sp.injected == 0 && recorded == 0 {
			continue // nothing injected, nothing recorded: omit the noise
		}
		ok := sp.injected == recorded && resolved == recorded
		rep.Reconcile = append(rep.Reconcile, ReconcileRow{
			Class: sp.class, Kind: sp.kind,
			Injected: sp.injected, Recorded: recorded, Resolved: resolved, OK: ok,
		})
		if !ok {
			rep.Reconciled = false
		}
	}
	// Any ledger lane no spec consumed is accounting drift: an instrumented
	// site invented a (class, kind) the reconciliation does not know about.
	for _, k := range kinds {
		key := [2]string{k.Class, k.Kind}
		if consumed[key] {
			continue
		}
		rep.Reconcile = append(rep.Reconcile, ReconcileRow{
			Class: k.Class, Kind: k.Kind,
			Injected: 0, Recorded: k.Total, Resolved: k.Closed + k.Aborted, OK: false,
		})
		rep.Reconciled = false
	}
	return rep
}

// WriteText renders the incident report as the two aligned tables
// `oshrun -incidents` prints: the per-kind MTTR summary, then the
// injector-vs-ledger reconciliation with its verdict line.
func (ir *IncidentReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "incidents:\n")
	if len(ir.Kinds) == 0 {
		fmt.Fprintf(w, "  (none)\n")
	} else {
		fmt.Fprintf(w, "  %-8s %-12s %6s %6s %7s %4s %6s  %12s %12s %12s %12s\n",
			"class", "kind", "total", "closed", "aborted", "open", "unresv",
			"detect-p50", "detect-max", "mttr-p50", "mttr-max")
		for _, k := range ir.Kinds {
			fmt.Fprintf(w, "  %-8s %-12s %6d %6d %7d %4d %6d  %10dns %10dns %10dns %10dns\n",
				k.Class, k.Kind, k.Total, k.Closed, k.Aborted, k.Open, k.Unresolved,
				k.DetectP50NS, k.DetectMaxNS, k.MTTRP50NS, k.MTTRMaxNS)
		}
	}
	fmt.Fprintf(w, "reconciliation:\n")
	if len(ir.Reconcile) == 0 {
		fmt.Fprintf(w, "  (no faults injected)\n")
	} else {
		fmt.Fprintf(w, "  %-8s %-12s %8s %8s %8s  %s\n",
			"class", "kind", "injected", "recorded", "resolved", "ok")
		for _, r := range ir.Reconcile {
			verdict := "ok"
			if !r.OK {
				verdict = "MISMATCH"
			}
			fmt.Fprintf(w, "  %-8s %-12s %8d %8d %8d  %s\n",
				r.Class, r.Kind, r.Injected, r.Recorded, r.Resolved, verdict)
		}
	}
	if ir.Reconciled {
		fmt.Fprintf(w, "reconciled: every injected fault maps to one resolved incident\n")
	} else {
		fmt.Fprintf(w, "RECONCILIATION FAILED: injected faults and ledger incidents disagree\n")
	}
}
