package cluster

import (
	"runtime"
	"unsafe"

	"goshmem/internal/obs"
	"goshmem/internal/vclock"
)

// Engine-census reporters for the launcher's own allocations. The cluster
// layer owns what no subsystem can see: the goroutine population (two per
// PE — app thread and conduit progress thread — plus the watchdog and
// sampler), the per-PE result slots, and the virtual-time machinery.

// engineReporter attributes the launcher's state: the goroutine census and
// the result table. Goroutine stacks live outside the Go heap (OffHeap), so
// the row informs the report without entering heap reconciliation; the
// measured StackInuse recorded in every census snapshot is its cross-check.
type engineReporter struct {
	res *Result
}

func (e engineReporter) Footprint() []obs.FootprintItem {
	ng := int64(runtime.NumGoroutine())
	return []obs.FootprintItem{
		{Subsystem: "cluster", Category: "goroutines",
			Bytes: ng * obs.GoroutineStackEstimate, Objects: ng, OffHeap: true},
		{Subsystem: "cluster", Category: "pe-results",
			Bytes: int64(len(e.res.PEs)) * int64(unsafe.Sizeof(PEResult{})), Objects: int64(len(e.res.PEs))},
	}
}

// vclockReporter attributes the virtual-time engine: one clock per PE and
// one barrier per node. Tiny by design — its presence in the table proves
// the max-plus machinery is NOT where the bytes go.
type vclockReporter struct {
	clks []*vclock.Clock
	bars []*vclock.VBarrier
}

func (v vclockReporter) Footprint() []obs.FootprintItem {
	var clkB, barB int64
	for _, c := range v.clks {
		clkB += c.MemSize()
	}
	for _, b := range v.bars {
		barB += b.MemSize()
	}
	return []obs.FootprintItem{
		{Subsystem: "vclock", Category: "clocks", Bytes: clkB, Objects: int64(len(v.clks))},
		{Subsystem: "vclock", Category: "barriers", Bytes: barB, Objects: int64(len(v.bars))},
	}
}

// maxClockVT is the census timestamp for asynchronous engine observations:
// the furthest any PE has progressed in virtual time.
func maxClockVT(clks []*vclock.Clock) int64 {
	var max int64
	for _, c := range clks {
		if now := c.Now(); now > max {
			max = now
		}
	}
	return max
}
