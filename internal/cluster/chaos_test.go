package cluster

import (
	"math"
	"testing"
	"time"

	"goshmem/internal/apps/heat2d"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/shmem"
)

// runHeat launches a small two-node heat2d job and returns the rank-0
// application result plus the aggregated cluster result.
func runHeat(t *testing.T, faults *ib.FaultInjector, maxLiveRC int) (heat2d.Result, *Result) {
	t.Helper()
	const np = 16
	var rank0 heat2d.Result
	cfg := Config{
		NP: np, PPN: 8, Mode: gasnet.OnDemand,
		HeapSize:  1 << 20,
		Faults:    faults,
		MaxLiveRC: maxLiveRC,
	}
	if faults != nil {
		// Compress recovery timeouts so the faulted run converges quickly.
		cfg.Retrans = gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		}
	}
	res, err := Run(cfg, func(c *shmem.Ctx) {
		r := heat2d.Run(c, heat2d.Params{NX: 32, NY: 8 * c.NPEs(), MaxIters: 20, CheckEvery: 5, Tol: 1e-6})
		if c.Me() == 0 {
			rank0 = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rank0, res
}

// TestChaosRunByteIdenticalResults is the end-to-end fault-transparency
// invariant (DESIGN.md section 6): an application run under link flaps, UD
// loss/duplication and a live-QP cap must produce byte-identical results to
// the fault-free run — the resilience layer may cost virtual time, never
// correctness. It also checks the new counters aggregate into cluster.Result.
func TestChaosRunByteIdenticalResults(t *testing.T) {
	clean, cleanRes := runHeat(t, nil, 0)

	fi := ib.NewFaultInjector(42)
	fi.DropProb = 0.2
	fi.MaxDrops = 100
	fi.DupProb = 0.1
	fi.FlapProb = 0.05
	fi.MaxFlaps = 8
	faulty, faultyRes := runHeat(t, fi, 20) // cap below the 2-node mesh demand

	if math.Float64bits(clean.Checksum) != math.Float64bits(faulty.Checksum) {
		t.Errorf("checksum diverged under faults: clean %v faulty %v", clean.Checksum, faulty.Checksum)
	}
	if math.Float64bits(clean.Residual) != math.Float64bits(faulty.Residual) {
		t.Errorf("residual diverged under faults: clean %v faulty %v", clean.Residual, faulty.Residual)
	}
	if clean.Iters != faulty.Iters {
		t.Errorf("iteration count diverged under faults: clean %d faulty %d", clean.Iters, faulty.Iters)
	}

	if fi.Flaps() == 0 {
		t.Error("no link flaps injected; the faulted leg tested nothing")
	}
	if faultyRes.TotalLinkFaults() == 0 {
		t.Error("no link faults detected despite injected flaps")
	}
	if faultyRes.TotalReconnects() == 0 {
		t.Error("no reconnects recorded in cluster.Result despite flaps")
	}
	if faultyRes.TotalEvictions() == 0 {
		t.Error("no evictions recorded in cluster.Result despite the QP cap")
	}

	// Fault-free guard: without an injector or cap, the resilience machinery
	// must never fire — the happy path pays nothing.
	if n := cleanRes.TotalLinkFaults(); n != 0 {
		t.Errorf("fault-free run recorded %d link faults", n)
	}
	if n := cleanRes.TotalReconnects(); n != 0 {
		t.Errorf("fault-free run recorded %d reconnects", n)
	}
	if n := cleanRes.TotalEvictions(); n != 0 {
		t.Errorf("fault-free run recorded %d evictions", n)
	}
	if n := cleanRes.TotalRetransmits(); n != 0 {
		t.Errorf("fault-free run recorded %d retransmissions", n)
	}
	if c := cleanRes.Counters(); c.PEFailures != 0 || c.HeartbeatsSent != 0 ||
		c.FalseSuspicions != 0 || c.AbortsPropagated != 0 {
		t.Errorf("fault-free run shows failure-detector activity: %+v", c)
	}
	if cleanRes.Aborted {
		t.Errorf("fault-free run reported Aborted: %s", cleanRes.AbortReason)
	}
}
