package cluster

import (
	"testing"

	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
)

func runFootprint(t *testing.T, mode gasnet.Mode, np int) *Result {
	t.Helper()
	res, err := Run(Config{
		NP: np, PPN: 16, Mode: mode, HeapSize: 64 << 10,
		Obs: obs.Config{Footprint: true},
	}, ringApp(1, 512))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFootprintReconcilesNP256 is the acceptance gate: at np=256 in both
// connection modes, the modeled subsystem bytes must tile the measured heap
// delta within the documented tolerance — the drift list stays empty.
func TestFootprintReconcilesNP256(t *testing.T) {
	if testing.Short() {
		t.Skip("np=256 census run in -short mode")
	}
	for _, mode := range []gasnet.Mode{gasnet.Static, gasnet.OnDemand} {
		res := runFootprint(t, mode, 256)
		fp := res.Footprint
		if fp == nil {
			t.Fatalf("%v: footprint plane enabled but report missing", mode)
		}
		if !fp.Reconciled || len(fp.Drift) != 0 {
			for _, d := range fp.Drift {
				t.Errorf("%v: drift row %s: modeled %d vs measured %d (%+.0f%%)",
					mode, d.Label, d.ModeledBytes, d.MeasuredBytes, d.DriftFrac*100)
			}
			t.Fatalf("%v: census failed to tile the heap", mode)
		}
		labels := map[string]obs.CensusSnapshot{}
		for _, s := range fp.Snapshots {
			labels[s.Label] = s
		}
		for _, want := range []string{"baseline", "setup", "init-done", "job-end"} {
			if _, ok := labels[want]; !ok {
				t.Fatalf("%v: missing census snapshot %q", mode, want)
			}
		}
		// Two goroutines per PE (app thread + conduit progress thread) must
		// be alive at the init boundary.
		if got := labels["init-done"].Goroutines; got < 2*256 {
			t.Errorf("%v: init-done goroutine census %d, want >= %d", mode, got, 2*256)
		}
		// The modeled attribution must actually attribute: the dominant
		// subsystems all report bytes at init-done.
		initDone := labels["init-done"]
		sub := initDone.SubsystemHeapBytes()
		for _, s := range []string{"ib", "gasnet", "shmem", "pmi", "obs", "vclock", "cluster"} {
			if sub[s] <= 0 {
				t.Errorf("%v: subsystem %s modeled no bytes at init-done", mode, s)
			}
		}
		// The symmetric heaps alone are np x 64 KiB = 16 MiB of pinned
		// bytes; ib must claim at least that.
		if sub["ib"] < 256*(64<<10) {
			t.Errorf("%v: ib modeled %d bytes, want >= %d (the symmetric heaps)", mode, sub["ib"], 256*(64<<10))
		}
	}
}

// TestFootprintModeledBytesStable pins byte-stability: two identical
// fault-free static runs must model identical per-category numbers. The
// models use exact lengths (never capacities) and deterministic object
// counts, so any instability here is a model reading schedule-dependent
// state. The off-heap goroutine census is exempt — goroutine exit is
// asynchronous, so the job-end count is inherently schedule-dependent.
func TestFootprintModeledBytesStable(t *testing.T) {
	onHeap := func(res *Result) map[string]obs.FootprintItem {
		last := res.Footprint.Snapshots[len(res.Footprint.Snapshots)-1]
		m := map[string]obs.FootprintItem{}
		for _, it := range last.Items {
			if !it.OffHeap {
				m[it.Subsystem+"/"+it.Category] = it
			}
		}
		return m
	}
	a := onHeap(runFootprint(t, gasnet.Static, 64))
	b := onHeap(runFootprint(t, gasnet.Static, 64))
	if len(a) != len(b) {
		t.Fatalf("category sets differ: %d vs %d", len(a), len(b))
	}
	for k, ia := range a {
		if ib, ok := b[k]; !ok || ia != ib {
			t.Errorf("category %s not byte-stable: %+v vs %+v", k, ia, ib)
		}
	}
}

// TestFootprintOffByDefault pins satellite behavior: a plain run creates no
// census, takes no snapshots and — per the gated post-job collection — never
// forces a GC on the caller.
func TestFootprintOffByDefault(t *testing.T) {
	res, err := Run(Config{NP: 8, PPN: 4, Mode: gasnet.OnDemand, HeapSize: 1 << 16}, ringApp(1, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Footprint != nil {
		t.Fatal("plain run produced a footprint report")
	}
	if res.Obs.Census() != nil {
		t.Fatal("plain run created a census")
	}
}

// TestFootprintGaugeSeries checks the engine.* export path end to end: with
// gauges co-enabled the census mirrors heap/goroutine levels and the
// per-subsystem bytes onto the virtual-time grid.
func TestFootprintGaugeSeries(t *testing.T) {
	res, err := Run(Config{
		NP: 16, PPN: 8, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
		Obs: obs.Config{Footprint: true, Gauges: true},
	}, ringApp(1, 256))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"engine.heap_bytes": false, "engine.goroutines": false,
		"engine.bytes.ib": false, "engine.bytes.gasnet": false,
	}
	for _, st := range res.Obs.Gauges().Stats() {
		if _, ok := want[st.Name]; ok {
			want[st.Name] = true
			if st.Inst != obs.InstJob {
				t.Errorf("%s on inst %d, want job-level %d", st.Name, st.Inst, obs.InstJob)
			}
			if st.Max <= 0 {
				t.Errorf("%s never rose above zero", st.Name)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("gauge %s missing", name)
		}
	}
}
