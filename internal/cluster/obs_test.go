package cluster

import (
	"reflect"
	"testing"

	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
)

// ringApp is a 16-PE ring exchange: every PE puts a block to its right
// neighbor, barriers, and reads a block back from its left neighbor. It is
// the workload for the trace-determinism and overhead tests because it
// drives every instrumented layer (puts, gets, barriers, connects).
func ringApp(iters, blockSize int) func(c *shmem.Ctx) {
	return func(c *shmem.Ctx) {
		buf := c.Malloc(blockSize)
		src := make([]byte, blockSize)
		dst := make([]byte, blockSize)
		right := (c.Me() + 1) % c.NPEs()
		left := (c.Me() - 1 + c.NPEs()) % c.NPEs()
		for i := 0; i < iters; i++ {
			src[0] = byte(i)
			c.PutMem(buf, src, right)
			c.BarrierAll()
			c.GetMem(dst, buf, left)
		}
		c.BarrierAll()
	}
}

// TestTraceByteIdenticalAcrossRuns extends the determinism invariant to the
// observability plane: the connection-lifecycle trace of two identical runs
// must be byte-identical, even though goroutine scheduling differs between
// the runs. This is what the secondary sort keys in obs.SortEvents buy —
// with VT-only ordering, same-timestamp events from different PEs would
// serialize in schedule-dependent order.
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	if raceEnabled {
		// On-demand handshake collisions resolve by real-time REQ arrival
		// order, so which connection events exist (abandoned initiates,
		// crossed-REQ resolutions) depends on goroutine scheduling. Under
		// production scheduling the ring app serializes them and traces are
		// byte-identical; the race detector's slowdown perturbs arrival
		// order enough to change event counts. Not a data race — the full
		// suite runs race-instrumented and clean.
		t.Skip("trace byte-identity is scheduling-sensitive under the race detector")
	}
	for _, mode := range []gasnet.Mode{gasnet.OnDemand, gasnet.Static} {
		run := func() []TraceEvent {
			// Odd np, as in TestFlowTelemetryByteIdentical: at even np the
			// dissemination barrier's distance-np/2 round makes both sides of
			// a pair demand the connection in the same round with no
			// happens-before between them, so which side initiates (and thus
			// which lifecycle events exist) is schedule-dependent. At odd np
			// no barrier distance is self-inverse and every pair's second
			// demand is causally ordered behind the first establishment.
			res, err := Run(Config{
				NP: 9, PPN: 3, Mode: mode, HeapSize: 1 << 16, Trace: true,
			}, ringApp(3, 512))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Trace) == 0 {
				t.Fatalf("%v: empty trace", mode)
			}
			return res.Trace
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: traces differ across identical runs (len %d vs %d)", mode, len(a), len(b))
		}
	}
}

// TestStartupPhasesSumToInitVT asserts the phase-tiling invariant in both
// connection modes: per PE, the recorded startup phases are contiguous,
// start at the PE's init start, and their durations sum exactly to the
// reported init virtual time. The phase name sequence must also be
// identical across modes so breakdown tables stay aligned.
func TestStartupPhasesSumToInitVT(t *testing.T) {
	nameSets := map[string][]string{}
	for _, mode := range []gasnet.Mode{gasnet.OnDemand, gasnet.Static} {
		res, err := Run(Config{
			NP: 8, PPN: 4, Mode: mode, HeapSize: 1 << 16,
			Obs: obs.Config{Metrics: true},
		}, func(c *shmem.Ctx) {})
		if err != nil {
			t.Fatal(err)
		}
		pes := res.Obs.StartupPhases()
		if len(pes) != 8 {
			t.Fatalf("%v: got %d PE phase lists, want 8", mode, len(pes))
		}
		var names []string
		for _, pp := range pes {
			if len(pp.Phases) == 0 {
				t.Fatalf("%v: PE %d recorded no phases", mode, pp.Rank)
			}
			var sum int64
			prevEnd := pp.Phases[0].Start
			for _, ph := range pp.Phases {
				if ph.Start != prevEnd {
					t.Errorf("%v: PE %d phase %q starts at %d, want %d (phases must tile)",
						mode, pp.Rank, ph.Name, ph.Start, prevEnd)
				}
				if ph.End < ph.Start {
					t.Errorf("%v: PE %d phase %q has negative duration", mode, pp.Rank, ph.Name)
				}
				prevEnd = ph.End
				sum += ph.Dur()
				if pp.Rank == 0 {
					names = append(names, ph.Name)
				}
			}
			if init := res.PEs[pp.Rank].InitVT; sum != init {
				t.Errorf("%v: PE %d phase sum %d != init VT %d", mode, pp.Rank, sum, init)
			}
		}
		nameSets[mode.String()] = names
	}
	if !reflect.DeepEqual(nameSets["static"], nameSets["on-demand"]) {
		t.Errorf("phase name sequences differ across modes: static=%v on-demand=%v",
			nameSets["static"], nameSets["on-demand"])
	}
}

// TestObsDisabledOverhead is the overhead guard: with observability off,
// every instrumentation site reduces to a nil-receiver check. Rather than
// diffing two noisy wall-clock measurements, it bounds the disabled-path
// cost deterministically: (measured ns per disabled call) x (number of
// instrumentation calls the run actually makes) must stay under 5% of the
// run's wall time. The call count is taken from a fully-enabled replica of
// the same run (every recorded event or histogram sample corresponds to at
// least one instrumentation call), doubled to cover guard-only sites that
// record nothing.
func TestObsDisabledOverhead(t *testing.T) {
	app := ringApp(10, 4096)

	base, err := Run(Config{NP: 16, PPN: 8, Mode: gasnet.OnDemand, HeapSize: 1 << 16}, app)
	if err != nil {
		t.Fatal(err)
	}
	if base.Obs != nil {
		t.Fatal("baseline run unexpectedly created an obs plane")
	}

	full, err := Run(Config{
		NP: 16, PPN: 8, Mode: gasnet.OnDemand, HeapSize: 1 << 16,
		Obs: obs.Config{Events: true, Metrics: true, Gauges: true, Incidents: true, RingCap: -1},
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	calls := int64(len(full.Obs.Events()))
	for _, h := range full.Obs.Registry().Hists() {
		calls += h.Count
	}
	for _, s := range full.Obs.Gauges().Series(obs.DefaultGaugeTick) {
		calls += int64(len(s.Points))
	}
	calls += int64(len(full.Obs.Ledger().Snapshot()))
	calls *= 2 // headroom for Active() guards and counters that recorded nothing
	if calls == 0 {
		t.Fatal("instrumented run recorded nothing; the guard tested nothing")
	}

	perCall := obs.NopCallCost(1 << 20)
	overheadNS := perCall * float64(calls)
	budget := 0.05 * float64(base.Wall.Nanoseconds())
	t.Logf("%d instrumentation calls x %.2f ns = %.0f ns disabled overhead; budget %.0f ns (5%% of %v wall)",
		calls, perCall, overheadNS, budget, base.Wall)
	if overheadNS >= budget {
		t.Errorf("disabled obs path overhead %.0f ns exceeds 5%% budget %.0f ns", overheadNS, budget)
	}
}
