package cluster

import (
	"testing"
	"time"

	"goshmem/internal/apps/traffic"
	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// railCfg is the common scaffold for the multi-rail soaks: the churn traffic
// dimensions on a two-rail fabric, compressed real-time retransmission and
// heartbeat timing (fault soaks must not wait out production timeouts), the
// watchdog as a bounded-termination backstop, and the incident ledger armed
// so every run can be reconciled.
func railCfg() Config {
	return Config{
		NP: churnNP, PPN: churnPPN, Mode: gasnet.OnDemand,
		HeapSize:     churnHeap,
		Rails:        2,
		Deadline:     60 * vclock.Second,
		StallTimeout: 30 * time.Second,
		Retrans: gasnet.RetransConfig{
			Interval: time.Millisecond, BaseRTO: 2 * time.Millisecond, MaxShift: 3,
		},
		Heartbeat: gasnet.HeartbeatConfig{
			Interval: time.Millisecond, SuspectAfter: 2, ConfirmAfter: 2,
		},
		Obs: obs.Config{Metrics: true, Gauges: true, Incidents: true},
	}
}

// runRail executes the zipf traffic workload under cfg and returns the
// per-rank digests.
func runRail(t *testing.T, cfg Config) ([churnNP]uint64, *Result) {
	t.Helper()
	var digests [churnNP]uint64
	// A partitioned run rides many real-time retransmission and probe
	// backoffs; under the race detector one run can take tens of seconds, so
	// the bound is generous — it guards against hanging, not against slow.
	res := runBoundedFor(t, cfg, 120*time.Second, func(c *shmem.Ctx) {
		digests[c.Me()] = traffic.Run(c, churnParams()).Digest
	})
	return digests, res
}

// TestRailFailoverTransparent kills a whole rail mid-workload on a two-rail
// fabric and asserts full transparency: the job completes with per-rank
// digests byte-identical to the clean two-rail run, the recovery was APM or
// rail failover (never a peer-death abort), and the ledger reconciles the
// injected rail fault to exactly one resolved incident.
func TestRailFailoverTransparent(t *testing.T) {
	clean, cleanRes := runRail(t, railCfg())
	if cleanRes.Aborted {
		t.Fatalf("clean two-rail run aborted: %s", cleanRes.AbortReason)
	}
	cc := cleanRes.Counters()
	if cc.PathMigrations != 0 || cc.RailFailovers != 0 || cc.PartitionSuspensions != 0 {
		t.Fatalf("fault-free two-rail run shows rail fault-plane activity: %+v", cc)
	}

	// Launch fan-out runs to ~157ms of virtual time and the RC traffic
	// phase spans roughly 158-170ms, so 160ms lands mid-workload with
	// connections established over both rails — the window where APM (not
	// handshake-time rail selection) is the recovery that fires.
	cfg := railCfg()
	cfg.FailRails = []RailFault{{Rail: 0, At: 160 * vclock.Millisecond}}
	dig, res := runRail(t, cfg)
	if res.Aborted {
		t.Fatalf("rail-failure run aborted: %s", res.AbortReason)
	}
	for r := range clean {
		if dig[r] != clean[r] {
			t.Errorf("rank %d digest diverged after rail failure: %x vs clean %x", r, dig[r], clean[r])
		}
	}
	c := res.Counters()
	if c.PathMigrations+c.RailFailovers == 0 {
		t.Errorf("rail died mid-job but no path migrated and no connection failed over: %+v", c)
	}
	if c.PEFailures != 0 {
		t.Errorf("rail failure misdiagnosed as %d peer deaths", c.PEFailures)
	}

	ir := BuildIncidentReport(res)
	if ir == nil || !ir.Reconciled {
		t.Fatalf("rail-down incident did not reconcile: %+v", ir)
	}

	// The schedule-driven topology gauges must record the rail going dark.
	final := map[int]int64{}
	for _, g := range res.Obs.Gauges().Stats() {
		if g.Name == "net.rail_up" {
			final[obs.InstRailIndex(g.Inst)] = g.Final
		}
	}
	if final[0] != 0 || final[1] != 1 {
		t.Errorf("net.rail_up finals = %v, want rail0=0 rail1=1", final)
	}
}

// TestPartitionHealTransparent severs node 0 from the rest of the fabric on
// every rail for a 150ms window mid-workload. Both sides stay alive; the
// detector must suspend the unreachable peers (never confirm them dead), and
// after the heal the retained-frame replay must deliver every op exactly
// once: digests byte-identical to the clean run, zero false peer deaths,
// every incident reconciled.
func TestPartitionHealTransparent(t *testing.T) {
	clean, _ := runRail(t, railCfg())

	cfg := railCfg()
	cfg.Partitions = []PartitionFault{{
		A: []int{0, 1, 2, 3}, B: []int{4, 5, 6, 7, 8, 9, 10, 11},
		At: 160 * vclock.Millisecond, Heal: 300 * vclock.Millisecond,
	}}
	dig, res := runRail(t, cfg)
	if res.Aborted {
		t.Fatalf("healed-partition run aborted: %s", res.AbortReason)
	}
	for _, p := range res.PEs {
		if p.ExitCode != 0 {
			t.Errorf("pe %d exited %d from a healed-partition run", p.Rank, p.ExitCode)
		}
	}
	for r := range clean {
		if dig[r] != clean[r] {
			t.Errorf("rank %d digest diverged across the partition window: %x vs clean %x", r, dig[r], clean[r])
		}
	}
	c := res.Counters()
	if c.PEFailures != 0 {
		t.Errorf("partition misdiagnosed as %d peer deaths (want suspend-and-retry)", c.PEFailures)
	}
	if c.PartitionSuspensions == 0 {
		t.Error("no peer was suspended during a 150ms full partition")
	}
	if c.PartitionHeals == 0 {
		t.Error("no suspended peer was observed to heal")
	}
	ir := BuildIncidentReport(res)
	if ir == nil || !ir.Reconciled {
		t.Fatalf("partition incident did not reconcile: %+v", ir)
	}
	for _, k := range ir.Kinds {
		if k.Class == "net" && k.Kind == "partition" && k.MTTRMaxNS <= 0 {
			t.Errorf("partition incident closed with non-positive MTTR: %+v", k)
		}
	}
}

// TestIncidentStragglerSweep covers the ledger's straggler path: a scheduled
// network fault that no traffic ever trips is still reconciled — the
// schedule-time Open has no Detect/Act during the run, so the job-complete
// sweep must close it, stamping detection at job end and a nonzero MTTR.
func TestIncidentStragglerSweep(t *testing.T) {
	cfg := railCfg()
	cfg.FailRails = []RailFault{{Rail: 1, At: 1 * vclock.Millisecond}}
	// No traffic at all: every connection the launcher itself needs rides
	// rail selection (which simply avoids the dead rail), and nothing can
	// detect the fault in-band.
	res := runBounded(t, cfg, func(c *shmem.Ctx) {})
	if res.Aborted {
		t.Fatalf("idle run with one dead rail aborted: %s", res.AbortReason)
	}
	ir := BuildIncidentReport(res)
	if ir == nil || !ir.Reconciled {
		t.Fatalf("straggler rail-down incident did not reconcile: %+v", ir)
	}
	found := false
	for _, k := range ir.Kinds {
		if k.Class != "net" || k.Kind != "rail-down" {
			continue
		}
		found = true
		if k.Closed != 1 || k.Total != 1 {
			t.Errorf("straggler rail-down: total=%d closed=%d, want 1/1", k.Total, k.Closed)
		}
		if k.MTTRMaxNS <= 0 {
			t.Errorf("straggler rail-down swept with non-positive MTTR: %+v", k)
		}
		if k.DetectMaxNS <= 0 {
			t.Errorf("straggler rail-down swept with non-positive detection latency (Detect must be stamped at job end): %+v", k)
		}
	}
	if !found {
		t.Fatal("no net/rail-down incident in the report")
	}
	if c := res.Counters(); c.PathMigrations+c.RailFailovers != 0 {
		t.Errorf("idle run recorded data-plane recovery (%+v) — the fault should have been a pure straggler", c)
	}
}

// TestPermanentPartitionExitCode severs the fabric permanently. The job must
// neither hang into the watchdog (124) nor misreport a peer death (exit 1):
// the detector's bounded patience runs out and the job exits with the
// partition code, in virtual time well under the watchdog deadline.
func TestPermanentPartitionExitCode(t *testing.T) {
	cfg := railCfg()
	cfg.Partitions = []PartitionFault{{
		A: []int{0, 1, 2, 3}, B: []int{4, 5, 6, 7, 8, 9, 10, 11},
		At: 160 * vclock.Millisecond, Heal: -1,
	}}
	_, res := runRail(t, cfg)
	if !res.Aborted {
		t.Fatal("permanently partitioned job did not abort")
	}
	sawPartitionExit := false
	for _, p := range res.PEs {
		if p.ExitCode == ExitPartitioned {
			sawPartitionExit = true
		}
		if p.ExitCode == ExitWatchdog {
			t.Errorf("pe %d hit the watchdog; the partition verdict should fire first", p.Rank)
		}
	}
	if !sawPartitionExit {
		codes := make([]int, len(res.PEs))
		for i, p := range res.PEs {
			codes[i] = p.ExitCode
		}
		t.Fatalf("no PE exited with ExitPartitioned (%d); exit codes = %v", ExitPartitioned, codes)
	}
	if res.JobVT >= 60*vclock.Second {
		t.Errorf("permanent partition ran to the watchdog deadline: JobVT=%d", res.JobVT)
	}
	c := res.Counters()
	if c.PartitionSuspensions == 0 {
		t.Error("no suspension recorded before the partition abort")
	}
	if c.PEFailures != 0 {
		t.Errorf("permanent partition misdiagnosed as %d peer deaths", c.PEFailures)
	}
}
