# Build/test entry points. Tier-1 is the gate every change must keep green
# (see ROADMAP.md): build, the full test suite, the full suite again under
# the race detector, and a fast data-plane-integrity smoke. Tier-2 adds vet
# and the fixed-seed chaos soaks (connection lifecycle, PE failure, control
# plane, resource churn, data-plane integrity, combined).

GO ?= go

# Fixed seed for the tier-2 soak so CI runs are reproducible; override with
# CHAOS_SEED=<seed> make soak (failures print the seed to replay).
CHAOS_SEED ?= 1786034998553156286

.PHONY: all tier1 tier2 build test vet race soak smoke incident-smoke rail-smoke footprint-smoke trace-demo bench clean

all: tier1

tier1: build test race smoke incident-smoke rail-smoke footprint-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier2: tier1 vet soak

vet:
	$(GO) vet ./...

# The whole tree, race-instrumented. Two cluster tests assert byte-identical
# traces / exact exit-code classification and skip themselves under the
# detector (see raceEnabled) — every code path still runs instrumented.
race:
	$(GO) test -race -count=1 ./...

soak:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -count=1 -run 'TestChaosSoak|TestChaosRun|TestChaosPEFailureSoak|TestChaosControlPlaneSoak|TestResourceChurnSoak|TestIntegrityChaosSoak|TestChaosCombinedSoak' ./internal/gasnet ./internal/cluster

# Fast end-to-end integrity smoke: one seeded traffic run with silent RC
# corruption, torn RDMA writes and link flaps. The digest printed for this
# seed is byte-identical to the fault-free run; the counters at the end must
# show all three fault classes detected and recovered.
smoke:
	$(GO) run ./cmd/oshrun -np 8 -ppn 4 -app traffic \
		-rc-corrupt 0.05 -torn-writes 0.05 -flap 0.02 -fault-seed 7

# Incident-reconciliation smoke: the same seeded fault mix plus UD loss and
# duplication, with the incident ledger on. oshrun -incidents exits nonzero
# unless every injected fault maps to exactly one resolved incident, so this
# run failing means an injector fired without opening an incident or a
# recovery path stopped closing one.
incident-smoke:
	$(GO) run ./cmd/oshrun -np 8 -ppn 4 -app traffic \
		-drop 0.05 -dup 0.05 -rc-corrupt 0.05 -torn-writes 0.05 -flap 0.02 \
		-fault-seed 7 -incidents

# Multi-rail failover smoke: the same seeded traffic workload on a two-rail
# fabric, clean and with rail 0 killed mid-workload (0.16s virtual lands in
# the RC traffic phase, after handshake-time rail selection is done, so the
# recovery is live-QP path migration). The faulted run must finish with a
# digest byte-identical to the clean run's and reconcile its incident
# (-incidents exits nonzero otherwise).
rail-smoke:
	@clean=$$($(GO) run ./cmd/oshrun -np 8 -ppn 4 -rails 2 -app traffic \
		| grep -o 'digest [0-9a-f]*'); \
	out=$$($(GO) run ./cmd/oshrun -np 8 -ppn 4 -rails 2 -app traffic \
		-fail-rail "0@0.16" -incidents) || \
		{ echo "rail-smoke: faulted run failed (incident reconciliation?)"; exit 1; }; \
	faulted=$$(echo "$$out" | grep -o 'digest [0-9a-f]*'); \
	echo "rail-smoke: clean $$clean / rail-failure $$faulted"; \
	test -n "$$clean" && test "$$clean" = "$$faulted" || \
		{ echo "rail-smoke: DIGEST MISMATCH after rail failure"; exit 1; }

# Engine-observatory smoke: one np=64 run with the footprint census on,
# checked end to end through the -json export — the schema-versioned
# footprint section must be present and the modeled bytes must tile the
# measured heap (reconciled). Seconds of wall time; guards the whole
# census -> report -> JSON path.
footprint-smoke:
	@out=$$($(GO) run ./cmd/oshrun -np 64 -ppn 16 -footprint -json) || \
		{ echo "footprint-smoke: run failed"; exit 1; }; \
	echo "$$out" | grep -q '"footprint"' || \
		{ echo "footprint-smoke: -json output missing footprint section"; exit 1; }; \
	echo "$$out" | grep -q '"tolerance_frac"' || \
		{ echo "footprint-smoke: footprint section missing its schema fields"; exit 1; }; \
	echo "$$out" | grep -q '"reconciled": true' || \
		{ echo "footprint-smoke: census did not reconcile against the measured heap"; exit 1; }; \
	echo "footprint-smoke: census reconciled at np=64"

# Write an 8-PE sample Perfetto trace (open trace-demo.json at
# https://ui.perfetto.dev) plus the text report with phase breakdown,
# counters, latency histograms, and the communication-topology view
# (traffic heatmap, peer degrees, QP waste).
trace-demo:
	$(GO) run ./cmd/oshrun -np 8 -ppn 4 -app heat2d -trace-out=trace-demo.json -metrics -topology

# Record the perf trajectory: run the fixed startup/latency/phase suite and
# write BENCH_<date>.json (schema-versioned; nightly CI uploads it).
bench:
	$(GO) run ./cmd/bench

clean:
	$(GO) clean ./...
	rm -f trace-demo.json
