// Command osu is a port of the OSU OpenSHMEM microbenchmark suite (v4.4,
// the version the paper's section V-A uses) onto the simulated runtime. It
// prints OSU-style tables of virtual-time latencies.
//
//	osu -bench put|get|atomics|barrier|reduce|collect|put_bw [-np N] [-conn MODE]
//
// Like the originals: put/get run between two PEs on two nodes; collectives
// run across -np PEs; numbers are averaged over -iters iterations after
// warmup. The -conn flag selects the connection design under test.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/obs"
	"goshmem/internal/shmem"
)

// withHist mirrors the -hist flag: it turns on the observability plane's
// metric registry so each benchmark can print latency percentiles alongside
// the OSU-style averages.
var withHist bool

// obsCfg is the cluster observability config for the current flags.
func obsCfg() obs.Config { return obs.Config{Metrics: withHist} }

// printHists dumps the run's non-empty latency histograms (percentiles in
// virtual µs), OSU-style: averages hide tails, percentiles do not.
func printHists(res *cluster.Result) {
	if !withHist || res == nil || res.Obs == nil {
		return
	}
	reg := res.Obs.Registry()
	if reg == nil {
		return
	}
	fmt.Println()
	fmt.Println("# OSU OpenSHMEM Latency Percentiles (simulated, virtual time)")
	fmt.Printf("%-28s%-10s%-12s%-12s%-12s%-12s\n", "# Histogram", "Count", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)")
	for _, h := range reg.Hists() {
		if h.Count == 0 {
			continue
		}
		fmt.Printf("%-28s%-10d%-12.2f%-12.2f%-12.2f%-12.2f\n", h.Name, h.Count,
			float64(h.P50)/1000, float64(h.P95)/1000, float64(h.P99)/1000, float64(h.Max)/1000)
	}
}

func main() {
	bench := flag.String("bench", "put", "put | get | atomics | barrier | reduce | collect | put_bw")
	np := flag.Int("np", 64, "PEs for collective benchmarks")
	ppn := flag.Int("ppn", 8, "PEs per node")
	conn := flag.String("conn", "ondemand", "static | ondemand")
	iters := flag.Int("iters", 200, "timed iterations per size")
	maxSize := flag.Int("max", 1<<20, "largest message size")
	hist := flag.Bool("hist", false, "also print latency percentiles (p50/p95/p99/max) from the obs plane")
	flag.Parse()
	withHist = *hist

	mode := gasnet.OnDemand
	if *conn == "static" {
		mode = gasnet.Static
	}

	sizes := []int{1}
	for s := 2; s <= *maxSize; s *= 2 {
		sizes = append(sizes, s)
	}

	switch *bench {
	case "put", "get":
		runPutGet(*bench, mode, sizes, *iters)
	case "atomics":
		runAtomics(mode, *iters)
	case "barrier":
		runBarrier(mode, *np, *ppn, *iters)
	case "reduce", "collect":
		runCollective(*bench, mode, *np, *ppn, minInt(*maxSize, 2048), *iters)
	case "put_bw":
		runPutBW(mode, sizes, *iters)
	default:
		fmt.Fprintf(os.Stderr, "osu: unknown -bench %q\n", *bench)
		os.Exit(2)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func header(name string, cols ...string) {
	fmt.Printf("# OSU OpenSHMEM %s Test (simulated, virtual time)\n", name)
	for _, c := range cols {
		fmt.Printf("%-16s", c)
	}
	fmt.Println()
}

func runPutGet(which string, mode gasnet.Mode, sizes []int, iters int) {
	max := sizes[len(sizes)-1]
	results := map[int]float64{}
	var mu sync.Mutex
	res, err := cluster.Run(cluster.Config{NP: 2, PPN: 1, Mode: mode, SkipLaunchCost: true, Obs: obsCfg(),
		HeapSize: max}, func(c *shmem.Ctx) {
		buf := c.Malloc(max)
		scratch := make([]byte, max)
		for _, size := range sizes {
			c.BarrierAll()
			if c.Me() == 0 {
				t0 := c.Clock().Now()
				for i := 0; i < iters; i++ {
					if which == "put" {
						c.PutMem(buf, scratch[:size], 1)
						c.Quiet()
					} else {
						c.GetMem(scratch[:size], buf, 1)
					}
				}
				mu.Lock()
				results[size] = float64(c.Clock().Now()-t0) / float64(iters) / 1000
				mu.Unlock()
			}
		}
		c.BarrierAll()
	})
	die(err)
	header("shmem_"+which+"mem Latency", "# Size", "Latency (us)")
	for _, s := range sizes {
		fmt.Printf("%-16d%-16.2f\n", s, results[s])
	}
	printHists(res)
}

func runAtomics(mode gasnet.Mode, iters int) {
	type row struct {
		op string
		fn func(c *shmem.Ctx, a shmem.SymAddr)
	}
	ops := []row{
		{"shmem_long_fadd", func(c *shmem.Ctx, a shmem.SymAddr) { c.FetchAddInt64(a, 1, 1) }},
		{"shmem_long_finc", func(c *shmem.Ctx, a shmem.SymAddr) { c.FetchIncInt64(a, 1) }},
		{"shmem_long_add", func(c *shmem.Ctx, a shmem.SymAddr) { c.AddInt64(a, 1, 1) }},
		{"shmem_long_inc", func(c *shmem.Ctx, a shmem.SymAddr) { c.IncInt64(a, 1) }},
		{"shmem_long_cswap", func(c *shmem.Ctx, a shmem.SymAddr) { c.CompareSwapInt64(a, 0, 1, 1) }},
		{"shmem_long_swap", func(c *shmem.Ctx, a shmem.SymAddr) { c.SwapInt64(a, 1, 1) }},
	}
	results := map[string]float64{}
	var mu sync.Mutex
	res, err := cluster.Run(cluster.Config{NP: 2, PPN: 1, Mode: mode, SkipLaunchCost: true, Obs: obsCfg(),
		HeapSize: 4096}, func(c *shmem.Ctx) {
		a := c.Malloc(8)
		for _, op := range ops {
			c.BarrierAll()
			if c.Me() == 0 {
				t0 := c.Clock().Now()
				for i := 0; i < iters; i++ {
					op.fn(c, a)
				}
				mu.Lock()
				results[op.op] = float64(c.Clock().Now()-t0) / float64(iters) / 1000
				mu.Unlock()
			}
		}
		c.BarrierAll()
	})
	die(err)
	header("Atomic Operation Rate", "# Operation", "Latency (us)")
	for _, op := range ops {
		fmt.Printf("%-24s%-16.2f\n", op.op, results[op.op])
	}
	printHists(res)
}

func runBarrier(mode gasnet.Mode, np, ppn, iters int) {
	var lat float64
	var mu sync.Mutex
	res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: mode, SkipLaunchCost: true, Obs: obsCfg(),
		HeapSize: 4096}, func(c *shmem.Ctx) {
		c.BarrierAll()
		c.BarrierAll()
		t0 := c.Clock().Now()
		for i := 0; i < iters; i++ {
			c.BarrierAll()
		}
		if c.Me() == 0 {
			mu.Lock()
			lat = float64(c.Clock().Now()-t0) / float64(iters) / 1000
			mu.Unlock()
		}
	})
	die(err)
	header("shmem_barrier_all Latency", "# PEs", "Latency (us)")
	fmt.Printf("%-16d%-16.2f\n", np, lat)
	printHists(res)
}

func runCollective(which string, mode gasnet.Mode, np, ppn, maxSize, iters int) {
	sizes := []int{4}
	for s := 8; s <= maxSize; s *= 2 {
		sizes = append(sizes, s)
	}
	results := map[int]float64{}
	var mu sync.Mutex
	res, err := cluster.Run(cluster.Config{NP: np, PPN: ppn, Mode: mode, SkipLaunchCost: true, Obs: obsCfg(),
		HeapSize: 4096}, func(c *shmem.Ctx) {
		contrib := make([]byte, maxSize)
		fcontrib := make([]float64, maxSize/8+1)
		c.FCollectBytes(contrib[:1])
		c.ReduceFloat64(shmem.OpSum, fcontrib[:1])
		c.BarrierAll()
		c.BarrierAll()
		for _, size := range sizes {
			c.BarrierAll()
			t0 := c.Clock().Now()
			for i := 0; i < iters; i++ {
				if which == "collect" {
					c.FCollectBytes(contrib[:size])
				} else {
					c.ReduceFloat64(shmem.OpSum, fcontrib[:size/8+1])
				}
			}
			if c.Me() == 0 {
				mu.Lock()
				results[size] = float64(c.Clock().Now()-t0) / float64(iters) / 1000
				mu.Unlock()
			}
		}
	})
	die(err)
	header("shmem_"+which+" Latency ("+fmt.Sprint(np)+" PEs)", "# Size", "Latency (us)")
	for _, s := range sizes {
		fmt.Printf("%-16d%-16.2f\n", s, results[s])
	}
	printHists(res)
}

func runPutBW(mode gasnet.Mode, sizes []int, iters int) {
	const window = 32
	max := sizes[len(sizes)-1]
	results := map[int]float64{}
	var mu sync.Mutex
	res, err := cluster.Run(cluster.Config{NP: 2, PPN: 1, Mode: mode, SkipLaunchCost: true, Obs: obsCfg(),
		HeapSize: max * window}, func(c *shmem.Ctx) {
		buf := c.Malloc(max * window)
		scratch := make([]byte, max)
		for _, size := range sizes {
			c.BarrierAll()
			if c.Me() == 0 {
				t0 := c.Clock().Now()
				for it := 0; it < iters; it++ {
					for w := 0; w < window; w++ {
						c.PutMem(buf+shmem.SymAddr(w*size), scratch[:size], 1)
					}
					c.Quiet()
				}
				dt := float64(c.Clock().Now() - t0)
				mu.Lock()
				results[size] = float64(size) * window * float64(iters) / dt * 1e9 / (1 << 20)
				mu.Unlock()
			}
		}
		c.BarrierAll()
	})
	die(err)
	header("shmem_putmem Bandwidth", "# Size", "MB/s")
	for _, s := range sizes {
		fmt.Printf("%-16d%-16.1f\n", s, results[s])
	}
	printHists(res)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(1)
	}
}
