// Command oshrun launches one application kernel on the simulated cluster,
// like `oshrun -np N ./app` launches an OpenSHMEM program:
//
//	oshrun -np 64 -ppn 8 -conn ondemand -app heat2d
//
// Applications: hello, heat2d, ep, mg, bt, sp, graph500.
// It reports the start_pes breakdown, total job time (virtual), and the
// resource usage counters the paper studies. The fault plane is exposed for
// resilience experiments: -drop/-dup/-flap/-slow inject fabric faults,
// -kill-pe/-wedge-pe schedule PE failures, and -deadline arms the hung-job
// watchdog.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"goshmem/internal/apps/graph500"
	"goshmem/internal/apps/heat2d"
	"goshmem/internal/apps/nas"
	"goshmem/internal/cluster"
	"goshmem/internal/gasnet"
	"goshmem/internal/ib"
	"goshmem/internal/mpi"
	"goshmem/internal/shmem"
	"goshmem/internal/vclock"
)

// parsePEFaults parses a comma-separated list of "rank@seconds" schedules
// (virtual seconds) into PE fault entries.
func parsePEFaults(flagName, s string) []cluster.PEFault {
	if s == "" {
		return nil
	}
	var out []cluster.PEFault
	for _, item := range strings.Split(s, ",") {
		rankStr, atStr, ok := strings.Cut(strings.TrimSpace(item), "@")
		if !ok {
			fmt.Fprintf(os.Stderr, "oshrun: -%s wants rank@seconds, got %q\n", flagName, item)
			os.Exit(2)
		}
		rank, err1 := strconv.Atoi(rankStr)
		at, err2 := strconv.ParseFloat(atStr, 64)
		if err1 != nil || err2 != nil || at < 0 {
			fmt.Fprintf(os.Stderr, "oshrun: -%s wants rank@seconds, got %q\n", flagName, item)
			os.Exit(2)
		}
		out = append(out, cluster.PEFault{Rank: rank, At: int64(at * float64(vclock.Second))})
	}
	return out
}

func main() {
	np := flag.Int("np", 16, "number of PEs")
	ppn := flag.Int("ppn", 8, "PEs per simulated node")
	conn := flag.String("conn", "ondemand", "connection mode: static | ondemand")
	app := flag.String("app", "hello", "application: hello | heat2d | ep | mg | bt | sp | graph500")
	class := flag.String("class", "S", "NAS class: S | A | B")
	blockingPMI := flag.Bool("blocking-pmi", false, "use blocking Put-Fence-Get instead of PMIX_Iallgather")
	trace := flag.Int("trace", 0, "print the first N connection-lifecycle events (virtual-time ordered)")
	qpCap := flag.Int("qp-cap", 0, "cap live RC queue pairs per HCA; idle connections are LRU-evicted (0 = unbounded; on-demand mode only)")

	faultSeed := flag.Int64("fault-seed", 1, "fault-injector RNG seed (deterministic per seed)")
	drop := flag.Float64("drop", 0, "probability a UD datagram is dropped")
	dup := flag.Float64("dup", 0, "probability a UD datagram is duplicated")
	flap := flag.Float64("flap", 0, "probability an RC operation suffers a link fault")
	slow := flag.Float64("slow", 0, "probability an operation charges extra virtual time (PE slowdown)")
	slowTime := flag.Float64("slow-time", 100, "slowdown charge in virtual microseconds")
	killPE := flag.String("kill-pe", "", "crash PEs at virtual times: rank@seconds[,rank@seconds...]")
	wedgePE := flag.String("wedge-pe", "", "wedge PEs (stop progress, keep fabric ACKs) at virtual times: rank@seconds[,...]")
	deadline := flag.Float64("deadline", 0, "virtual-time job deadline in seconds; the watchdog aborts the job past it (0 = none)")
	flag.Parse()

	mode := gasnet.OnDemand
	switch *conn {
	case "static":
		mode = gasnet.Static
	case "ondemand", "on-demand":
		mode = gasnet.OnDemand
	default:
		fmt.Fprintf(os.Stderr, "oshrun: unknown -conn %q\n", *conn)
		os.Exit(2)
	}
	cls := nas.Class((*class)[0])

	var body func(c *shmem.Ctx)
	switch *app {
	case "hello":
		body = func(c *shmem.Ctx) {
			if c.Me() == 0 {
				fmt.Printf("Hello World from %d PEs\n", c.NPEs())
			}
		}
	case "heat2d":
		body = func(c *shmem.Ctx) {
			r := heat2d.Run(c, heat2d.Params{NX: 64, NY: 8 * c.NPEs(), MaxIters: 50, CheckEvery: 10, Tol: 1e-4})
			if c.Me() == 0 {
				fmt.Printf("heat2d: %d iters, residual %.3g, checksum %.6f\n", r.Iters, r.Residual, r.Checksum)
			}
		}
	case "ep":
		body = func(c *shmem.Ctx) {
			r := nas.EP(c, nas.EPParamsFor(cls))
			if c.Me() == 0 {
				fmt.Printf("EP class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "mg":
		body = func(c *shmem.Ctx) {
			r := nas.MG(c, nas.MGParamsFor(cls))
			if c.Me() == 0 {
				fmt.Printf("MG class %c: checksum %.6f, residual %.3g\n", cls, r.Checksum, r.Residual)
			}
		}
	case "bt":
		body = func(c *shmem.Ctx) {
			r := nas.BT(c, cls)
			if c.Me() == 0 {
				fmt.Printf("BT class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "sp":
		body = func(c *shmem.Ctx) {
			r := nas.SP(c, cls)
			if c.Me() == 0 {
				fmt.Printf("SP class %c: checksum %.6f\n", cls, r.Checksum)
			}
		}
	case "graph500":
		body = func(c *shmem.Ctx) {
			m := mpi.New(c.Conduit())
			r := graph500.Run(c, m, graph500.DefaultParams())
			if c.Me() == 0 {
				fmt.Printf("graph500: reached %d, traversed %d, valid=%v\n",
					r.ReachedSum, r.TraversedSum, r.ValidationOK)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "oshrun: unknown -app %q\n", *app)
		os.Exit(2)
	}

	var faults *ib.FaultInjector
	if *drop > 0 || *dup > 0 || *flap > 0 || *slow > 0 {
		faults = ib.NewFaultInjector(*faultSeed)
		faults.DropProb = *drop
		faults.DupProb = *dup
		faults.FlapProb = *flap
		faults.SlowProb = *slow
		faults.SlowTime = int64(*slowTime * float64(vclock.Microsecond))
	}

	cfg := cluster.Config{
		NP: *np, PPN: *ppn, Mode: mode, BlockingPMI: *blockingPMI,
		HeapSize: 8 << 20, Trace: *trace > 0, MaxLiveRC: *qpCap,
		Faults:   faults,
		KillPEs:  parsePEFaults("kill-pe", *killPE),
		WedgePEs: parsePEFaults("wedge-pe", *wedgePE),
		Deadline: int64(*deadline * float64(vclock.Second)),
	}
	res, err := cluster.Run(cfg, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oshrun:", err)
		os.Exit(1)
	}

	if *trace > 0 {
		fmt.Printf("\n--- connection trace (first %d of %d events) ---\n", min(*trace, len(res.Trace)), len(res.Trace))
		for i, e := range res.Trace {
			if i >= *trace {
				break
			}
			fmt.Printf("%12.6fs  pe %4d  %-20s peer %d\n", vclock.Seconds(e.VT), e.Rank, e.Kind, e.Peer)
		}
	}

	b := res.PEs[0].Breakdown
	fmt.Printf("\n--- job report (%s, %d PEs, %d ppn) ---\n", mode, *np, *ppn)
	fmt.Printf("start_pes avg:      %8.3fs  (conn %.3fs, pmi %.3fs, memreg %.3fs, shmem %.3fs, other %.3fs)\n",
		vclock.Seconds(res.InitAvg), vclock.Seconds(b.ConnectionSetup), vclock.Seconds(b.PMIExchange),
		vclock.Seconds(b.MemoryReg), vclock.Seconds(b.SharedMemSetup), vclock.Seconds(b.Other))
	fmt.Printf("job time (virtual): %8.3fs\n", vclock.Seconds(res.JobVT))
	fmt.Printf("avg RC endpoints/PE: %7.1f   avg peers/PE: %.1f   (simulated in %v real)\n",
		res.AvgEndpoints(), res.AvgPeers(), res.Wall.Round(1e6))

	// One unified failure/resilience table: link-level recovery and
	// PE-failure counters side by side.
	if c := res.Counters(); c != (cluster.Counters{}) {
		fmt.Printf("\n--- resilience counters (all PEs) ---\n")
		fmt.Printf("%-16s %8d    %-16s %8d\n", "link faults", c.LinkFaults, "pe failures", c.PEFailures)
		fmt.Printf("%-16s %8d    %-16s %8d\n", "reconnects", c.Reconnects, "heartbeats sent", c.HeartbeatsSent)
		fmt.Printf("%-16s %8d    %-16s %8d\n", "evictions", c.Evictions, "false suspicions", c.FalseSuspicions)
		fmt.Printf("%-16s %8d    %-16s %8d\n", "retransmits", c.Retransmits, "aborts propagated", c.AbortsPropagated)
	}

	if res.Aborted {
		fmt.Printf("\n--- job aborted ---\n%s\n", res.AbortReason)
		if res.Dump != "" {
			fmt.Printf("\n--- watchdog state dump ---\n%s", res.Dump)
		}
		maxCode := 1
		fmt.Printf("per-PE exit codes:\n")
		for _, p := range res.PEs {
			fmt.Printf("  pe %4d: exit %d\n", p.Rank, p.ExitCode)
			if p.ExitCode > maxCode {
				maxCode = p.ExitCode
			}
		}
		os.Exit(maxCode)
	}
}
